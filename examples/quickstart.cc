// Quickstart: the object-swapping mechanism in ~100 lines.
//
// Builds a managed object graph split into swap-clusters, wires a nearby
// "dumb" store device, swaps a cluster out under explicit control, and
// shows that traversal faults it back in transparently.
//
//   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "obiswap/obiswap.h"

using namespace obiswap;  // NOLINT
using runtime::ClassBuilder;
using runtime::Object;
using runtime::Value;
using runtime::ValueKind;

int main() {
  // --- 1. a managed runtime (the "mobile device's VM") --------------------
  runtime::Runtime rt(/*process_id=*/1, /*capacity_bytes=*/1 << 20);

  // --- 2. an application class, described by metadata ----------------------
  const runtime::ClassInfo* contact_cls =
      *rt.types().Register(ClassBuilder("Contact")
                               .Field("name", ValueKind::kStr)
                               .Field("next", ValueKind::kRef)
                               .Method("name",
                                       [](runtime::Runtime& r, Object* self,
                                          std::vector<Value>&) {
                                         return Result<Value>(
                                             r.GetFieldAt(self, 0));
                                       })
                               .Method("next",
                                       [](runtime::Runtime& r, Object* self,
                                          std::vector<Value>&) {
                                         return Result<Value>(
                                             r.GetFieldAt(self, 1));
                                       }));

  // --- 3. the wireless neighbourhood: one nearby store device --------------
  net::Network network;
  net::Discovery discovery(network);
  DeviceId pda(1), shelf(2);
  network.AddDevice(pda);
  network.AddDevice(shelf);
  network.SetInRange(pda, shelf, true);
  net::StoreNode store(shelf, /*capacity=*/1 << 20);  // just stores XML text
  discovery.Announce(&store);
  net::StoreClient client(network, discovery, pda);

  // --- 4. the swapping manager hooks into the runtime ----------------------
  swap::SwappingManager manager(rt);
  manager.AttachStore(&client, &discovery);

  // --- 5. build a contact list across two swap-clusters --------------------
  SwapClusterId friends = manager.NewSwapCluster();
  SwapClusterId archive = manager.NewSwapCluster();
  const char* names[] = {"ada", "brian", "edsger", "grace", "tony", "barbara"};
  {
    runtime::LocalScope scope(rt.heap());
    Object** prev = scope.Add(nullptr);
    for (int i = 5; i >= 0; --i) {
      Object* contact = rt.New(contact_cls);
      OBISWAP_CHECK(manager.Place(contact, i < 3 ? friends : archive).ok());
      OBISWAP_CHECK(rt.SetField(contact, "name", Value::Str(names[i])).ok());
      if (*prev != nullptr) {
        OBISWAP_CHECK(rt.SetField(contact, "next", Value::Ref(*prev)).ok());
      }
      *prev = contact;
    }
    OBISWAP_CHECK(rt.SetGlobal("contacts", Value::Ref(*prev)).ok());
  }
  std::printf("built 6 contacts in 2 swap-clusters; heap = %zu bytes\n",
              rt.heap().used_bytes());

  // --- 6. swap the archive half out to the shelf ----------------------------
  Result<SwapKey> key = manager.SwapOut(archive);
  OBISWAP_CHECK(key.ok());
  rt.heap().Collect();
  std::printf(
      "swapped 'archive' out (key %llu, %zu XML bytes on the shelf); heap "
      "= %zu bytes\n",
      (unsigned long long)key->value(), store.used_bytes(),
      rt.heap().used_bytes());

  // --- 7. traverse: the swapped cluster faults back transparently -----------
  std::printf("traversal: ");
  Value cursor = *rt.GetGlobal("contacts");
  while (cursor.is_ref() && cursor.ref() != nullptr) {
    Result<Value> name = rt.Invoke(cursor.ref(), "name");
    OBISWAP_CHECK(name.ok());
    std::printf("%s ", name->as_str().c_str());
    cursor = *rt.Invoke(cursor.ref(), "next");
  }
  std::printf("\nswap-ins: %llu, shelf entries now: %zu (dropped on reload)\n",
              (unsigned long long)manager.stats().swap_ins,
              store.entry_count());
  return 0;
}
