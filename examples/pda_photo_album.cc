// The paper's Figure-2 scenario, end to end: a PDA browses a photo album
// whose metadata far exceeds its heap. The context manager watches memory,
// XML policies drive the swapping manager, and the album's swap-clusters
// spill to whatever store devices are in the room.
//
//   ./build/examples/pda_photo_album
#include <cstdio>

#include "obiswap/obiswap.h"

using namespace obiswap;  // NOLINT
using runtime::ClassBuilder;
using runtime::LocalScope;
using runtime::Object;
using runtime::Value;
using runtime::ValueKind;

namespace {

constexpr int kAlbums = 12;
constexpr int kPhotosPerAlbum = 40;
constexpr size_t kPdaHeap = 96 * 1024;  // a very small PDA

const runtime::ClassInfo* RegisterPhoto(runtime::Runtime& rt) {
  return *rt.types().Register(
      ClassBuilder("Photo")
          .Field("caption", ValueKind::kStr)
          .Field("thumbnail", ValueKind::kStr)  // opaque bytes
          .Field("next", ValueKind::kRef)
          .Method("caption",
                  [](runtime::Runtime& r, Object* self, std::vector<Value>&) {
                    return Result<Value>(r.GetFieldAt(self, 0));
                  })
          .Method("next",
                  [](runtime::Runtime& r, Object* self, std::vector<Value>&) {
                    return Result<Value>(r.GetFieldAt(self, 2));
                  }));
}

const runtime::ClassInfo* RegisterAlbum(runtime::Runtime& rt) {
  return *rt.types().Register(
      ClassBuilder("Album")
          .Field("title", ValueKind::kStr)
          .Field("first_photo", ValueKind::kRef)
          .Field("next_album", ValueKind::kRef)
          .Method("title",
                  [](runtime::Runtime& r, Object* self, std::vector<Value>&) {
                    return Result<Value>(r.GetFieldAt(self, 0));
                  })
          .Method("first_photo",
                  [](runtime::Runtime& r, Object* self, std::vector<Value>&) {
                    return Result<Value>(r.GetFieldAt(self, 1));
                  })
          .Method("next_album",
                  [](runtime::Runtime& r, Object* self, std::vector<Value>&) {
                    return Result<Value>(r.GetFieldAt(self, 2));
                  }));
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarn);

  // The room: a PDA, a desktop PC, and a friend's PDA — the paper's
  // "myriad of small memory-enabled devices ... available to any user".
  net::Network network;
  net::Discovery discovery(network);
  DeviceId pda(1), desktop(2), friend_pda(3);
  for (DeviceId device : {pda, desktop, friend_pda}) network.AddDevice(device);
  network.SetInRange(pda, desktop, true);
  network.SetInRange(pda, friend_pda, true);
  net::StoreNode desktop_store(desktop, 8 * 1024 * 1024);
  net::StoreNode friend_store(friend_pda, 512 * 1024);
  discovery.Announce(&desktop_store);
  discovery.Announce(&friend_store);
  net::StoreClient client(network, discovery, pda);

  // The PDA's managed runtime + middleware.
  runtime::Runtime rt(1, kPdaHeap);
  const runtime::ClassInfo* photo_cls = RegisterPhoto(rt);
  const runtime::ClassInfo* album_cls = RegisterAlbum(rt);
  context::EventBus bus;
  context::PropertyRegistry props;
  swap::SwappingManager::Options swap_options;
  swap_options.codec = "lz77";  // thumbnails ride a 700 Kbps link
  swap::SwappingManager manager(rt, swap_options);
  manager.AttachStore(&client, &discovery);
  manager.AttachBus(&bus);
  manager.InstallPressureHandler();
  context::MemoryMonitor memory(rt.heap(), bus, props, 0.85, 0.60);
  context::ConnectivityMonitor connectivity(network, discovery, pda, bus,
                                            props);

  // Declarative policy, exactly as §4 describes ("policies ... coded in
  // XML"): under pressure, evict the least-recently-browsed album.
  policy::PolicyEngine engine(bus, props);
  OBISWAP_CHECK(policy::RegisterSwapActions(engine, rt, manager).ok());
  auto rules = engine.LoadXml(R"(
    <policies>
      <policy name="evict-cold-album" on="memory-pressure" priority="10"
              when="net.nearby_stores gt 0">
        <action name="swap-out-victim"/>
      </policy>
    </policies>)");
  OBISWAP_CHECK(rules.ok());
  connectivity.Poll();

  bus.Subscribe(context::kEventClusterSwappedOut,
                [](const context::Event& event) {
                  std::printf("  [middleware] album cluster %lld -> device "
                              "%lld (%lld XML bytes)\n",
                              (long long)event.GetIntOr("swap_cluster", -1),
                              (long long)event.GetIntOr("device", -1),
                              (long long)event.GetIntOr("bytes", -1));
                });
  bus.Subscribe(context::kEventClusterSwappedIn,
                [](const context::Event& event) {
                  std::printf("  [middleware] album cluster %lld faulted "
                              "back in\n",
                              (long long)event.GetIntOr("swap_cluster", -1));
                });

  // Build the album chain: each album (and its photos) is one swap-cluster.
  std::printf("importing %d albums x %d photos into a %zu-byte heap...\n",
              kAlbums, kPhotosPerAlbum, kPdaHeap);
  {
    // Root slots are REUSED per iteration: a slot per album would pin every
    // album for the whole import, and pinned objects cannot be freed even
    // after their cluster swaps out.
    LocalScope scope(rt.heap());
    Object** chain = scope.Add(nullptr);
    Object** album_slot = scope.Add(nullptr);
    Object** photo_chain = scope.Add(nullptr);
    for (int a = kAlbums - 1; a >= 0; --a) {
      SwapClusterId cluster = manager.NewSwapCluster();
      *album_slot = rt.New(album_cls);
      OBISWAP_CHECK(manager.Place(*album_slot, cluster).ok());
      OBISWAP_CHECK(rt.SetField(*album_slot, "title",
                                Value::Str("album-" + std::to_string(a)))
                        .ok());
      *photo_chain = nullptr;
      for (int p = kPhotosPerAlbum - 1; p >= 0; --p) {
        Object* photo = rt.New(photo_cls);
        OBISWAP_CHECK(manager.Place(photo, cluster).ok());
        OBISWAP_CHECK(
            rt.SetField(photo, "caption",
                        Value::Str("a" + std::to_string(a) + "/p" +
                                   std::to_string(p)))
                .ok());
        OBISWAP_CHECK(rt.SetField(photo, "thumbnail",
                                  Value::Str(std::string(96, '\x42')))
                          .ok());
        if (*photo_chain != nullptr) {
          OBISWAP_CHECK(
              rt.SetField(photo, "next", Value::Ref(*photo_chain)).ok());
        }
        *photo_chain = photo;
      }
      OBISWAP_CHECK(
          rt.SetField(*album_slot, "first_photo", Value::Ref(*photo_chain))
              .ok());
      if (*chain != nullptr) {
        OBISWAP_CHECK(
            rt.SetField(*album_slot, "next_album", Value::Ref(*chain)).ok());
      }
      *chain = *album_slot;
      *photo_chain = nullptr;
      memory.Poll();  // the context manager notices rising occupancy
    }
    OBISWAP_CHECK(rt.SetGlobal("albums", Value::Ref(*chain)).ok());
  }
  std::printf("import done: heap %zu/%zu bytes, %llu albums evicted during "
              "import\n\n",
              rt.heap().used_bytes(), kPdaHeap,
              (unsigned long long)manager.stats().swap_outs);

  // Browse every album; cold ones fault back in (and others spill out).
  // Iteration cursors live in globals — the paper's model (variables belong
  // to swap-cluster-0), and the only GC-safe place for them: middleware
  // activity (Poll -> policy -> swap-out -> collection) may run between
  // invocations, and plain C++ locals are not roots.
  std::printf("browsing all albums...\n");
  int albums_seen = 0;
  int photos_seen = 0;
  OBISWAP_CHECK(rt.SetGlobal("album", *rt.GetGlobal("albums")).ok());
  for (;;) {
    Value album = *rt.GetGlobal("album");
    if (!album.is_ref() || album.ref() == nullptr) break;
    Result<Value> title = rt.Invoke(album.ref(), "title");
    OBISWAP_CHECK(title.ok());
    ++albums_seen;
    OBISWAP_CHECK(
        rt.SetGlobal("photo", *rt.Invoke(album.ref(), "first_photo")).ok());
    for (;;) {
      Value photo = *rt.GetGlobal("photo");
      if (!photo.is_ref() || photo.ref() == nullptr) break;
      ++photos_seen;
      OBISWAP_CHECK(
          rt.SetGlobal("photo", *rt.Invoke(photo.ref(), "next")).ok());
    }
    memory.Poll();
    album = *rt.GetGlobal("album");
    OBISWAP_CHECK(
        rt.SetGlobal("album", *rt.Invoke(album.ref(), "next_album")).ok());
  }
  std::printf("\nbrowsed %d albums / %d photos without ever exceeding the "
              "heap.\n",
              albums_seen, photos_seen);
  std::printf("stats: swap-outs %llu, swap-ins %llu, desktop holds %zu "
              "clusters, friend's PDA %zu\n",
              (unsigned long long)manager.stats().swap_outs,
              (unsigned long long)manager.stats().swap_ins,
              desktop_store.entry_count(), friend_store.entry_count());
  std::printf("virtual link time spent: %.1f ms at 700 Kbps\n",
              network.clock().now_ms());
  OBISWAP_CHECK(albums_seen == kAlbums);
  OBISWAP_CHECK(photos_seen == kAlbums * kPhotosPerAlbum);
  return 0;
}
