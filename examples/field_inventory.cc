// Disconnected work with transactions: a field technician's inventory app.
//
// The device replicates a parts inventory, goes out of range, edits stock
// counts inside an optimistic transaction, and commits on reconnection.
// A colleague's device commits first on one shared part, so the second
// commit conflicts, rolls back locally, and succeeds after refreshing.
// Swapping runs underneath: cold inventory sections spill to a shelf PC.
//
//   ./build/examples/field_inventory
#include <cstdio>

#include "obiswap/obiswap.h"

using namespace obiswap;  // NOLINT
using runtime::ClassBuilder;
using runtime::LocalScope;
using runtime::Object;
using runtime::Value;
using runtime::ValueKind;

namespace {

constexpr int kParts = 40;
constexpr DeviceId kTech(1);
constexpr DeviceId kColleague(2);
constexpr DeviceId kDepot(100);
constexpr DeviceId kShelf(3);

const runtime::ClassInfo* RegisterPart(runtime::Runtime& rt) {
  return *rt.types().Register(
      ClassBuilder("Part")
          .Field("name", ValueKind::kStr)
          .Field("stock", ValueKind::kInt)
          .Field("next", ValueKind::kRef)
          .Method("stock",
                  [](runtime::Runtime& r, Object* self, std::vector<Value>&) {
                    return Result<Value>(r.GetFieldAt(self, 1));
                  })
          .Method("next",
                  [](runtime::Runtime& r, Object* self, std::vector<Value>&) {
                    return Result<Value>(r.GetFieldAt(self, 2));
                  }));
}

}  // namespace

int main() {
  // Depot server with the master inventory.
  runtime::Runtime depot_rt(9);
  const runtime::ClassInfo* part_cls = RegisterPart(depot_rt);
  replication::ReplicationServer depot(depot_rt, /*cluster_size=*/10);
  tx::TxMaster tx_master(depot);
  std::vector<ObjectId> part_oids;
  {
    LocalScope scope(depot_rt.heap());
    Object** chain = scope.Add(nullptr);
    for (int i = kParts - 1; i >= 0; --i) {
      Object* part = depot_rt.New(part_cls);
      OBISWAP_CHECK(depot_rt
                        .SetField(part, "name",
                                  Value::Str("part-" + std::to_string(i)))
                        .ok());
      OBISWAP_CHECK(depot_rt.SetField(part, "stock", Value::Int(100)).ok());
      if (*chain != nullptr)
        OBISWAP_CHECK(depot_rt.SetField(part, "next", Value::Ref(*chain)).ok());
      *chain = part;
      part_oids.insert(part_oids.begin(), part->oid());
    }
    OBISWAP_CHECK(depot.PublishRoot("inventory", *chain).ok());
  }
  std::printf("depot: %d parts published, all stock at 100\n", kParts);

  // The technician's device: network, shelf store, middleware, replication.
  net::Network network;
  net::Discovery discovery(network);
  for (DeviceId device : {kTech, kColleague, kDepot, kShelf}) {
    network.AddDevice(device);
  }
  network.SetInRange(kTech, kDepot, true);
  network.SetInRange(kTech, kShelf, true);
  net::StoreNode shelf(kShelf, 8 * 1024 * 1024);
  discovery.Announce(&shelf);
  net::StoreClient store_client(network, discovery, kTech);

  runtime::Runtime rt(1);
  RegisterPart(rt);
  context::EventBus bus;
  swap::SwappingManager manager(rt);
  manager.AttachStore(&store_client, &discovery);
  manager.AttachBus(&bus);
  replication::ReplicationService repl_service(depot);
  replication::NetworkLink link(network, kTech, kDepot, repl_service);
  replication::DeviceEndpoint endpoint(rt, link, kTech, &bus);
  tx::TxService tx_service(tx_master);
  tx::TxManager tx(rt, endpoint, &manager,
                   tx::NetworkCommit(network, kTech, kDepot, tx_service));

  // Replicate everything while in range of the depot.
  Object* root = *endpoint.FetchRoot("inventory");
  OBISWAP_CHECK(rt.SetGlobal("inventory", Value::Ref(root)).ok());
  OBISWAP_CHECK(rt.SetGlobal("cur", *rt.GetGlobal("inventory")).ok());
  int replicated = 0;
  for (;;) {
    Value cur = *rt.GetGlobal("cur");
    if (!cur.is_ref() || cur.ref() == nullptr) break;
    ++replicated;
    OBISWAP_CHECK(rt.SetGlobal("cur", *rt.Invoke(cur.ref(), "next")).ok());
  }
  std::printf("technician: replicated %d parts over the depot link\n",
              replicated);

  // Drive out of range and work disconnected, inside a transaction.
  network.SetInRange(kTech, kDepot, false);
  std::printf("\n-- out of range of the depot; editing offline --\n");
  OBISWAP_CHECK(tx.Begin().ok());
  for (int i = 0; i < 5; ++i) {
    Object* part = endpoint.FindReplica(part_oids[static_cast<size_t>(i)]);
    OBISWAP_CHECK(part != nullptr);
    OBISWAP_CHECK(tx.Write(part, "stock", Value::Int(100 - 10 * (i + 1))).ok());
  }
  std::printf("edited 5 stock counts locally (tx still open)\n");

  // Commit while unreachable: the transaction survives to retry.
  Status early = tx.Commit();
  std::printf("commit while disconnected: %s\n", early.ToString().c_str());
  OBISWAP_CHECK(early.code() == StatusCode::kUnavailable);
  OBISWAP_CHECK(tx.in_transaction());

  // Meanwhile a colleague (validated against the same versions) takes the
  // last units of part-2 directly at the depot.
  {
    tx::WriteSet rival;
    rival.tx_id = 999;
    rival.validations.emplace_back(part_oids[2], 1);
    rival.updates.push_back(
        tx::FieldUpdate{part_oids[2], "stock", Value::Int(0)});
    auto outcome = tx_master.Commit(rival);
    OBISWAP_CHECK(outcome.ok() && outcome->committed);
    std::printf("colleague committed part-2 stock=0 at the depot\n");
  }

  // Back in range: our commit now CONFLICTS on part-2 and rolls back.
  network.SetInRange(kTech, kDepot, true);
  Status conflicted = tx.Commit();
  std::printf("\n-- back in range --\ncommit: %s\n",
              conflicted.ToString().c_str());
  OBISWAP_CHECK(conflicted.code() == StatusCode::kFailedPrecondition);
  Object* part2 = endpoint.FindReplica(part_oids[2]);
  std::printf("local part-2 stock after rollback: %lld (replicated value)\n",
              (long long)rt.GetField(part2, "stock")->as_int());

  // Refresh the conflicting part from the depot (pulls the colleague's
  // stock count and the new version), then retry without touching it.
  auto refreshed = endpoint.RefreshValues(part_oids[2]);
  OBISWAP_CHECK(refreshed.ok());
  std::printf("refreshed part-2 from the depot: stock=%lld, version=%llu\n",
              (long long)rt.GetField(part2, "stock")->as_int(),
              (unsigned long long)*refreshed);
  OBISWAP_CHECK(tx.Begin().ok());
  for (int i = 0; i < 5; ++i) {
    if (i == 2) continue;  // the colleague's part: leave it alone
    Object* part = endpoint.FindReplica(part_oids[static_cast<size_t>(i)]);
    OBISWAP_CHECK(tx.Write(part, "stock", Value::Int(100 - 10 * (i + 1))).ok());
  }
  OBISWAP_CHECK(tx.Commit().ok());
  std::printf("retried commit without part-2: OK\n");

  // The depot reflects exactly the committed state.
  std::printf("\ndepot stock now:");
  for (int i = 0; i < 5; ++i) {
    Object* master = nullptr;
    depot_rt.heap().ForEachObject([&](Object* obj) {
      if (obj->oid() == part_oids[static_cast<size_t>(i)]) master = obj;
    });
    std::printf(" part-%d=%lld", i,
                (long long)depot_rt.GetField(master, "stock")->as_int());
  }
  std::printf("\ntransactions: %llu committed, %llu conflicted; master "
              "versions bumped to %llu/%llu/.../%llu\n",
              (unsigned long long)tx.stats().committed,
              (unsigned long long)tx.stats().conflicted,
              (unsigned long long)tx_master.VersionOf(part_oids[0]),
              (unsigned long long)tx_master.VersionOf(part_oids[1]),
              (unsigned long long)tx_master.VersionOf(part_oids[4]));
  return 0;
}
