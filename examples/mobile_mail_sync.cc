// Mobile mail client: incremental replication + swapping + DGC, over the
// simulated wireless network.
//
// A mail server publishes a mailbox (folders of messages). The phone
// replicates lazily — folders fault in cluster by cluster as the user opens
// them — while the swapping layer keeps the phone's tiny heap within budget
// by spilling cold folders to a nearby laptop. Deleting a folder lets the
// DGC tell the server its replicas are gone.
//
//   ./build/examples/mobile_mail_sync
#include <cstdio>

#include "obiswap/obiswap.h"

using namespace obiswap;  // NOLINT
using runtime::ClassBuilder;
using runtime::LocalScope;
using runtime::Object;
using runtime::Value;
using runtime::ValueKind;

namespace {

constexpr int kFolders = 6;
constexpr int kMessagesPerFolder = 30;

const runtime::ClassInfo* RegisterMessage(runtime::Runtime& rt) {
  return *rt.types().Register(
      ClassBuilder("Message")
          .Field("subject", ValueKind::kStr)
          .Field("body", ValueKind::kStr)
          .Field("next", ValueKind::kRef)
          .Method("subject",
                  [](runtime::Runtime& r, Object* self, std::vector<Value>&) {
                    return Result<Value>(r.GetFieldAt(self, 0));
                  })
          .Method("next",
                  [](runtime::Runtime& r, Object* self, std::vector<Value>&) {
                    return Result<Value>(r.GetFieldAt(self, 2));
                  }));
}

const runtime::ClassInfo* RegisterFolder(runtime::Runtime& rt) {
  return *rt.types().Register(
      ClassBuilder("Folder")
          .Field("name", ValueKind::kStr)
          .Field("first", ValueKind::kRef)
          .Field("next", ValueKind::kRef)
          .Method("name",
                  [](runtime::Runtime& r, Object* self, std::vector<Value>&) {
                    return Result<Value>(r.GetFieldAt(self, 0));
                  })
          .Method("first",
                  [](runtime::Runtime& r, Object* self, std::vector<Value>&) {
                    return Result<Value>(r.GetFieldAt(self, 1));
                  })
          .Method("next",
                  [](runtime::Runtime& r, Object* self, std::vector<Value>&) {
                    return Result<Value>(r.GetFieldAt(self, 2));
                  }));
}

/// Builds the server-side mailbox; returns the first folder.
Object* BuildMailbox(runtime::Runtime& rt) {
  const runtime::ClassInfo* folder_cls = rt.types().Find("Folder");
  const runtime::ClassInfo* message_cls = rt.types().Find("Message");
  LocalScope scope(rt.heap());
  Object** folder_chain = scope.Add(nullptr);
  for (int f = kFolders - 1; f >= 0; --f) {
    Object* folder = rt.New(folder_cls);
    Object** folder_slot = scope.Add(folder);
    OBISWAP_CHECK(rt.SetField(folder, "name",
                              Value::Str("folder-" + std::to_string(f)))
                      .ok());
    Object** message_chain = scope.Add(nullptr);
    for (int m = kMessagesPerFolder - 1; m >= 0; --m) {
      Object* message = rt.New(message_cls);
      OBISWAP_CHECK(
          rt.SetField(message, "subject",
                      Value::Str("f" + std::to_string(f) + "/msg" +
                                 std::to_string(m)))
              .ok());
      OBISWAP_CHECK(rt.SetField(message, "body",
                                Value::Str(std::string(200, 'm')))
                        .ok());
      if (*message_chain != nullptr) {
        OBISWAP_CHECK(
            rt.SetField(message, "next", Value::Ref(*message_chain)).ok());
      }
      *message_chain = message;
    }
    OBISWAP_CHECK(
        rt.SetField(*folder_slot, "first", Value::Ref(*message_chain)).ok());
    if (*folder_chain != nullptr) {
      OBISWAP_CHECK(
          rt.SetField(*folder_slot, "next", Value::Ref(*folder_chain)).ok());
    }
    *folder_chain = *folder_slot;
  }
  return *folder_chain;
}

}  // namespace

int main() {
  // --- the network: phone, mail server, a laptop willing to store XML ----
  net::Network network;
  net::Discovery discovery(network);
  DeviceId phone(1), mail_server(10), laptop(2);
  for (DeviceId device : {phone, mail_server, laptop}) {
    network.AddDevice(device);
  }
  network.SetInRange(phone, mail_server, true);
  network.SetInRange(phone, laptop, true);
  net::StoreNode laptop_store(laptop, 16 * 1024 * 1024);
  discovery.Announce(&laptop_store);
  net::StoreClient store_client(network, discovery, phone);

  // --- the mail server: master runtime + replication service --------------
  runtime::Runtime server_rt(9);
  RegisterMessage(server_rt);
  RegisterFolder(server_rt);
  replication::ReplicationServer server(server_rt, /*cluster_size=*/16);
  dgc::DgcServer dgc_server(server);
  Object* mailbox = BuildMailbox(server_rt);
  OBISWAP_CHECK(server.PublishRoot("mailbox", mailbox).ok());
  replication::ReplicationService service(server);
  std::printf("server: published %d folders x %d messages (%zu objects)\n",
              kFolders, kMessagesPerFolder,
              server_rt.heap().live_objects());

  // --- the phone: tiny heap, full middleware stack --------------------------
  runtime::Runtime phone_rt(1, /*capacity_bytes=*/64 * 1024);
  RegisterMessage(phone_rt);
  RegisterFolder(phone_rt);
  context::EventBus bus;
  swap::SwappingManager::Options options;
  options.clusters_per_swap_cluster = 2;  // ~32 objects per swap unit
  options.codec = "lz77";
  swap::SwappingManager manager(phone_rt, options);
  manager.AttachStore(&store_client, &discovery);
  manager.AttachBus(&bus);
  manager.InstallPressureHandler();
  replication::NetworkLink link(network, phone, mail_server, service);
  replication::DeviceEndpoint endpoint(phone_rt, link, phone, &bus);
  dgc::DgcClient dgc_client(phone_rt, endpoint, &manager,
                            dgc::DirectRelease(server));

  // --- open the mailbox: lazy replication ------------------------------------
  Object* root = *endpoint.FetchRoot("mailbox");
  OBISWAP_CHECK(phone_rt.SetGlobal("mailbox", Value::Ref(root)).ok());
  std::printf(
      "phone: fetched mailbox root (a replication proxy, %llu faults so "
      "far)\n\n",
      (unsigned long long)endpoint.stats().object_faults);

  // Read every folder: replication faults clusters in; the pressure
  // handler spills cold ones to the laptop. Cursors live in globals (the
  // paper's swap-cluster-0 variables): replication faults and swap-outs
  // run inside the loop's invocations, and only rooted cursors survive the
  // collections they trigger.
  OBISWAP_CHECK(
      phone_rt.SetGlobal("folder", *phone_rt.GetGlobal("mailbox")).ok());
  int messages_read = 0;
  for (;;) {
    Value folder = *phone_rt.GetGlobal("folder");
    if (!folder.is_ref() || folder.ref() == nullptr) break;
    Result<Value> name = phone_rt.Invoke(folder.ref(), "name");
    OBISWAP_CHECK(name.ok());
    int in_folder = 0;
    OBISWAP_CHECK(phone_rt
                      .SetGlobal("message",
                                 *phone_rt.Invoke(folder.ref(), "first"))
                      .ok());
    for (;;) {
      Value message = *phone_rt.GetGlobal("message");
      if (!message.is_ref() || message.ref() == nullptr) break;
      ++in_folder;
      OBISWAP_CHECK(phone_rt
                        .SetGlobal("message",
                                   *phone_rt.Invoke(message.ref(), "next"))
                        .ok());
    }
    messages_read += in_folder;
    std::printf("  read %-10s %3d messages   (heap %6zu B, swapped-out "
                "clusters so far: %llu)\n",
                name->as_str().c_str(), in_folder,
                phone_rt.heap().used_bytes(),
                (unsigned long long)manager.stats().swap_outs);
    folder = *phone_rt.GetGlobal("folder");
    OBISWAP_CHECK(phone_rt
                      .SetGlobal("folder",
                                 *phone_rt.Invoke(folder.ref(), "next"))
                      .ok());
  }
  phone_rt.RemoveGlobal("folder");
  phone_rt.RemoveGlobal("message");
  std::printf(
      "\nread all %d messages; replication: %llu clusters / %llu objects; "
      "link moved %llu bytes\n",
      messages_read, (unsigned long long)endpoint.stats().clusters_replicated,
      (unsigned long long)endpoint.stats().objects_replicated,
      (unsigned long long)network.stats().bytes_moved);
  std::printf("laptop now stores %zu swapped clusters (%zu bytes of XML)\n",
              laptop_store.entry_count(), laptop_store.used_bytes());

  // --- DGC: the server tracks what the phone holds ----------------------------
  OBISWAP_CHECK(dgc_client.RunCycle().ok());
  std::printf("\nDGC: server holds %zu scions for the phone\n",
              dgc_server.ScionCount(phone));

  // The user deletes the mailbox; replicas die, swapped XML is dropped,
  // scions are released.
  phone_rt.RemoveGlobal("mailbox");
  phone_rt.heap().Collect();
  phone_rt.heap().Collect();
  Result<size_t> released = dgc_client.RunCycle();
  OBISWAP_CHECK(released.ok());
  std::printf(
      "deleted mailbox: DGC released %zu replicas; scions left: %zu; "
      "laptop entries left: %zu\n",
      *released, dgc_server.ScionCount(phone), laptop_store.entry_count());
  OBISWAP_CHECK(messages_read == kFolders * kMessagesPerFolder);
  return 0;
}
