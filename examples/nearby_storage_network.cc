// The paper's closing vision: "a myriad of small memory-enabled devices
// with wireless connectivity, scattered all-over, available to any user
// either to store data or to relay communications."
//
// A PDA works next to a shifting population of store devices. Devices
// announce themselves, fill up, wander out of range and come back; the
// middleware spreads swapped clusters across whatever is reachable and
// copes when a cluster's store is temporarily gone.
//
//   ./build/examples/nearby_storage_network
#include <cstdio>

#include "obiswap/obiswap.h"
#include "workload/list_workload.h"

using namespace obiswap;  // NOLINT
using runtime::Value;

int main() {
  net::Network network(/*seed=*/2026);
  net::Discovery discovery(network);
  DeviceId pda(1);
  network.AddDevice(pda);
  net::StoreClient client(network, discovery, pda);

  runtime::Runtime rt(1);
  const runtime::ClassInfo* node_cls = workload::RegisterNodeClass(rt);
  context::EventBus bus;
  context::PropertyRegistry props;
  swap::SwappingManager manager(rt);
  manager.AttachStore(&client, &discovery);
  manager.AttachBus(&bus);
  context::ConnectivityMonitor connectivity(network, discovery, pda, bus,
                                            props);
  bus.Subscribe(context::kEventConnectivityChanged,
                [&](const context::Event& event) {
                  std::printf("  [context] connectivity changed: %lld "
                              "stores nearby, %lld bytes free\n",
                              (long long)event.GetIntOr("nearby_count", 0),
                              (long long)event.GetIntOr("nearby_free_bytes",
                                                        0));
                });

  // Three small store devices with different capacities.
  std::vector<std::unique_ptr<net::StoreNode>> stores;
  auto add_store = [&](uint32_t id, size_t capacity) {
    DeviceId device(id);
    network.AddDevice(device);
    network.SetInRange(pda, device, true);
    stores.push_back(std::make_unique<net::StoreNode>(device, capacity));
    discovery.Announce(stores.back().get());
    connectivity.Poll();
    return stores.back().get();
  };
  std::printf("a picture frame, a printer and a kiosk come into range:\n");
  net::StoreNode* frame = add_store(2, 8 * 1024);
  net::StoreNode* printer = add_store(3, 24 * 1024);
  net::StoreNode* kiosk = add_store(4, 10 * 1024 * 1024);

  // Build 8 swap-clusters of 25 objects and push them all out.
  auto clusters = workload::BuildList(rt, &manager, node_cls, 200, 25,
                                      "data");
  std::printf("\nswapping out all %zu clusters (stores picked by free "
              "space):\n", clusters.size());
  for (SwapClusterId id : clusters) {
    Result<SwapKey> key = manager.SwapOut(id);
    OBISWAP_CHECK(key.ok());
    const swap::SwapClusterInfo* info = manager.registry().Find(id);
    std::printf("  cluster %u -> device %u (%zu B)\n", id.value(),
                info->replicas[0].device.value(),
                info->swapped_payload_bytes);
  }
  rt.heap().Collect();
  std::printf("placement: frame=%zu printer=%zu kiosk=%zu entries\n",
              frame->entry_count(), printer->entry_count(),
              kiosk->entry_count());

  // The kiosk (holding most clusters) goes out of range mid-session.
  std::printf("\nthe kiosk wanders out of range...\n");
  network.SetInRange(pda, kiosk->device(), false);
  connectivity.Poll();
  auto sum = ::obiswap::workload::TimeMs([] {});  // (silence unused warning)
  (void)sum;

  Value cursor = *rt.GetGlobal("data");
  Result<Value> first_try = rt.Invoke(cursor.ref(), "get_value");
  if (!first_try.ok()) {
    std::printf("  traversal blocked as expected: %s\n",
                first_try.status().ToString().c_str());
  } else {
    std::printf("  head cluster was on a reachable store; value %lld\n",
                (long long)first_try->as_int());
  }

  std::printf("...and comes back.\n");
  network.SetInRange(pda, kiosk->device(), true);
  connectivity.Poll();

  // Now the full traversal succeeds, faulting clusters from all stores.
  int64_t total = 0;
  int steps = 0;
  cursor = *rt.GetGlobal("data");
  while (cursor.is_ref() && cursor.ref() != nullptr) {
    total += rt.Invoke(cursor.ref(), "get_value")->as_int();
    cursor = *rt.Invoke(cursor.ref(), "next");
    ++steps;
  }
  std::printf("\nfull traversal: %d objects, sum %lld (expected %d)\n",
              steps, (long long)total, 200 * 199 / 2);
  std::printf("swap-ins: %llu; store entries left: frame=%zu printer=%zu "
              "kiosk=%zu\n",
              (unsigned long long)manager.stats().swap_ins,
              frame->entry_count(), printer->entry_count(),
              kiosk->entry_count());

  // Finally: spill everything out again, then discard the data entirely —
  // the middleware tells the stores to drop the now-unreachable XML.
  for (SwapClusterId id : clusters) {
    OBISWAP_CHECK(manager.SwapOut(id).ok());
  }
  std::printf("\ndiscarding the data; unreachable swapped clusters are "
              "dropped from the stores:\n");
  rt.RemoveGlobal("data");
  rt.heap().Collect();
  rt.heap().Collect();
  std::printf("  drops issued: %llu; entries left: frame=%zu printer=%zu "
              "kiosk=%zu\n",
              (unsigned long long)manager.stats().drops,
              frame->entry_count(), printer->entry_count(),
              kiosk->entry_count());
  OBISWAP_CHECK(total == 200 * 199 / 2);
  return 0;
}
