#!/usr/bin/env bash
# Build, test, run every benchmark and every example. The benchmark and
# test transcripts land in test_output.txt / bench_output.txt at the repo
# root (the files EXPERIMENTS.md numbers come from).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "===== $(basename "$b") =====" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
done

for e in build/examples/*; do
  [ -f "$e" ] && [ -x "$e" ] || continue
  echo "===== example: $(basename "$e") ====="
  "$e"
done
