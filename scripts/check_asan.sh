#!/usr/bin/env bash
# Builds the tree with AddressSanitizer + UBSan and runs the full test
# suite. A separate build dir keeps the instrumented artifacts away from
# the regular build. Extra args are forwarded to the configure step.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-asan}"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S . -DOBISWAP_SANITIZE=address,undefined "$@"
cmake --build "$BUILD_DIR" -j"$JOBS"
(cd "$BUILD_DIR" && ctest --output-on-failure -j"$JOBS")
