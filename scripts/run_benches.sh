#!/usr/bin/env bash
# Runs every benchmark binary, passing --json so benches that support the
# machine-readable contract drop their BENCH_<name>.json next to the repo
# root. CI diffs those files; humans read the transcript.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"

if [ ! -d "$BUILD_DIR" ]; then
  cmake -B "$BUILD_DIR" -S .
fi
cmake --build "$BUILD_DIR" -j"$JOBS"

: > bench_output.txt
for b in "$BUILD_DIR"/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "===== $(basename "$b") =====" | tee -a bench_output.txt
  # Benches that have not adopted the --json contract either ignore the
  # flag or (google-benchmark binaries) reject it: retry bare.
  if ! "$b" --json 2>&1 | tee -a bench_output.txt; then
    echo "--- $(basename "$b") rejected --json; rerunning without it ---" \
      | tee -a bench_output.txt
    "$b" 2>&1 | tee -a bench_output.txt
  fi
done

echo
echo "json artifacts:"
ls -1 BENCH_*.json 2>/dev/null || echo "  (none)"

# Benches that have adopted the --json contract must actually have produced
# their artifact; a missing file means the contract regressed.
expected=(
  BENCH_fig5_traversal.json
  BENCH_baseline_compare.json
  BENCH_swap_latency.json
  BENCH_local_vs_remote.json
  BENCH_churn_recovery.json
  BENCH_prefetch_stall.json
)
missing=0
for f in "${expected[@]}"; do
  if [ ! -f "$f" ]; then
    echo "missing expected artifact: $f" >&2
    missing=1
  fi
done
exit "$missing"
