#!/usr/bin/env bash
# Runs every benchmark binary, passing --json so benches that support the
# machine-readable contract drop their BENCH_<name>.json next to the repo
# root, and --trace so the telemetry-instrumented benches additionally dump
# BENCH_<name>_trace.json (Chrome trace_event format, load at
# chrome://tracing). CI diffs the json and archives both; humans read the
# transcript.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"

if [ ! -d "$BUILD_DIR" ]; then
  cmake -B "$BUILD_DIR" -S .
fi
cmake --build "$BUILD_DIR" -j"$JOBS"

: > bench_output.txt
for b in "$BUILD_DIR"/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name="$(basename "$b")"
  echo "===== $name =====" | tee -a bench_output.txt
  # Benches that have not adopted the --json/--trace contract either ignore
  # the flags or (google-benchmark binaries) reject them: retry bare.
  if ! "$b" --json "--trace=BENCH_${name}_trace.json" 2>&1 \
      | tee -a bench_output.txt; then
    echo "--- $name rejected --json/--trace; rerunning without them ---" \
      | tee -a bench_output.txt
    "$b" 2>&1 | tee -a bench_output.txt
  fi
done

echo
echo "json artifacts:"
ls -1 BENCH_*.json 2>/dev/null || echo "  (none)"

# Benches that have adopted the --json contract must actually have produced
# their artifact; a missing file means the contract regressed.
expected=(
  BENCH_fig5_traversal.json
  BENCH_baseline_compare.json
  BENCH_swap_latency.json
  BENCH_local_vs_remote.json
  BENCH_churn_recovery.json
  BENCH_prefetch_stall.json
  BENCH_crash_recovery.json
  BENCH_degraded_mode.json
)
# Telemetry-instrumented benches must also drop a span trace.
expected_traces=(
  BENCH_swap_latency_trace.json
  BENCH_local_vs_remote_trace.json
  BENCH_churn_recovery_trace.json
  BENCH_prefetch_stall_trace.json
  BENCH_degraded_mode_trace.json
)
failed=0
for f in "${expected[@]}"; do
  if [ ! -f "$f" ]; then
    echo "missing expected artifact: $f (bench $f regressed the --json contract)" >&2
    failed=1
  fi
done
for f in "${expected_traces[@]}"; do
  if [ ! -f "$f" ]; then
    echo "missing expected trace: $f (bench regressed the --trace contract)" >&2
    failed=1
  fi
done

# A present-but-malformed artifact is worse than a missing one: CI would
# diff garbage. Validate every artifact structurally and name the offending
# bench on failure. Result tables must be valid JSON with a non-empty
# "rows" array; traces must be valid Chrome trace JSON with a non-empty
# "traceEvents" array.
if command -v python3 >/dev/null 2>&1; then
  for f in BENCH_*.json; do
    [ -f "$f" ] || continue
    if ! python3 - "$f" <<'PYEOF'
import json, sys
path = sys.argv[1]
bench = path.replace("BENCH_", "").replace("_trace.json", "").replace(".json", "")
try:
    with open(path) as fh:
        doc = json.load(fh)
except (OSError, ValueError) as err:
    sys.exit(f"bench '{bench}': malformed artifact {path}: {err}")
key = "traceEvents" if path.endswith("_trace.json") else "rows"
items = doc.get(key)
if not isinstance(items, list) or not items:
    sys.exit(f"bench '{bench}': artifact {path} has empty or missing '{key}'")
PYEOF
    then
      failed=1
    fi
  done
else
  # No python3: at least reject empty files.
  for f in BENCH_*.json; do
    [ -f "$f" ] || continue
    if [ ! -s "$f" ]; then
      echo "bench '$(basename "$f" .json)': artifact $f is empty" >&2
      failed=1
    fi
  done
fi

exit "$failed"
