#!/usr/bin/env bash
# Runs every benchmark binary, passing --json so benches that support the
# machine-readable contract drop their BENCH_<name>.json next to the repo
# root. CI diffs those files; humans read the transcript.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"

if [ ! -d "$BUILD_DIR" ]; then
  cmake -B "$BUILD_DIR" -S .
fi
cmake --build "$BUILD_DIR" -j"$JOBS"

: > bench_output.txt
for b in "$BUILD_DIR"/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "===== $(basename "$b") =====" | tee -a bench_output.txt
  # --json is ignored by benches that have not adopted the contract yet.
  "$b" --json 2>&1 | tee -a bench_output.txt
done

echo
echo "json artifacts:"
ls -1 BENCH_*.json 2>/dev/null || echo "  (none)"
