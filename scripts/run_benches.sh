#!/usr/bin/env bash
# Runs every benchmark binary, passing --json so benches that support the
# machine-readable contract drop their BENCH_<name>.json next to the repo
# root, and --trace so the telemetry-instrumented benches additionally dump
# BENCH_<name>_trace.json (Chrome trace_event format, load at
# chrome://tracing). CI diffs the json and archives both; humans read the
# transcript.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"

if [ ! -d "$BUILD_DIR" ]; then
  cmake -B "$BUILD_DIR" -S .
fi
cmake --build "$BUILD_DIR" -j"$JOBS"

: > bench_output.txt
for b in "$BUILD_DIR"/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name="$(basename "$b")"
  echo "===== $name =====" | tee -a bench_output.txt
  # Benches that have not adopted the --json/--trace contract either ignore
  # the flags or (google-benchmark binaries) reject them: retry bare.
  if ! "$b" --json "--trace=BENCH_${name}_trace.json" 2>&1 \
      | tee -a bench_output.txt; then
    echo "--- $name rejected --json/--trace; rerunning without them ---" \
      | tee -a bench_output.txt
    "$b" 2>&1 | tee -a bench_output.txt
  fi
done

echo
echo "json artifacts:"
ls -1 BENCH_*.json 2>/dev/null || echo "  (none)"

# Benches that have adopted the --json contract must actually have produced
# their artifact; a missing file means the contract regressed.
expected=(
  BENCH_fig5_traversal.json
  BENCH_baseline_compare.json
  BENCH_swap_latency.json
  BENCH_local_vs_remote.json
  BENCH_churn_recovery.json
  BENCH_prefetch_stall.json
  BENCH_crash_recovery.json
  BENCH_degraded_mode.json
  BENCH_tier_hierarchy.json
  BENCH_fleet_scale.json
  BENCH_overload_storm.json
)
# Telemetry-instrumented benches must also drop a span trace.
expected_traces=(
  BENCH_swap_latency_trace.json
  BENCH_local_vs_remote_trace.json
  BENCH_churn_recovery_trace.json
  BENCH_prefetch_stall_trace.json
  BENCH_degraded_mode_trace.json
  BENCH_tier_hierarchy_trace.json
  BENCH_overload_storm_trace.json
)
failed=0
for f in "${expected[@]}"; do
  if [ ! -f "$f" ]; then
    echo "missing expected artifact: $f (bench $f regressed the --json contract)" >&2
    failed=1
  fi
done
for f in "${expected_traces[@]}"; do
  if [ ! -f "$f" ]; then
    echo "missing expected trace: $f (bench regressed the --trace contract)" >&2
    failed=1
  fi
done

# A present-but-malformed artifact is worse than a missing one: CI would
# diff garbage. Validate every artifact structurally and name the offending
# bench on failure. Result tables must be valid JSON with a non-empty
# "rows" array; traces must be valid Chrome trace JSON with a non-empty
# "traceEvents" array.
if command -v python3 >/dev/null 2>&1; then
  for f in BENCH_*.json; do
    [ -f "$f" ] || continue
    if ! python3 - "$f" <<'PYEOF'
import json, sys
path = sys.argv[1]
bench = path.replace("BENCH_", "").replace("_trace.json", "").replace(".json", "")
try:
    with open(path) as fh:
        doc = json.load(fh)
except (OSError, ValueError) as err:
    sys.exit(f"bench '{bench}': malformed artifact {path}: {err}")
key = "traceEvents" if path.endswith("_trace.json") else "rows"
items = doc.get(key)
if not isinstance(items, list) or not items:
    sys.exit(f"bench '{bench}': artifact {path} has empty or missing '{key}'")
PYEOF
    then
      failed=1
    fi
  done
else
  # No python3: at least reject empty files.
  for f in BENCH_*.json; do
    [ -f "$f" ] || continue
    if [ ! -s "$f" ]; then
      echo "bench '$(basename "$f" .json)': artifact $f is empty" >&2
      failed=1
    fi
  done
fi

# Wire-format sweep contract: every (mode, write ratio) row must report
# bytes_on_link, it must be the sum of the out/in counters, and the delta
# mode must keep at most half of binary-full's bytes on the link at the 10%
# write ratio (the same gate the bench enforces in-process — re-checked here
# from the artifact so a silent bench regression cannot pass CI).
if command -v python3 >/dev/null 2>&1 && [ -f BENCH_swap_latency.json ]; then
  if ! python3 - BENCH_swap_latency.json <<'PYEOF'
import json, sys
with open(sys.argv[1]) as fh:
    rows = json.load(fh)["rows"]
sweep = [r for r in rows if r.get("table") == "wire_format_sweep"]
want = {(m, p) for m in ("xml", "binary", "delta")
        for p in (0, 10, 25, 50, 75, 100)}
have = {(r["mode"], r["write_pct"]) for r in sweep}
if have != want:
    sys.exit(f"swap_latency: wire_format_sweep rows mismatch: "
             f"missing {sorted(want - have)}, extra {sorted(have - want)}")
for r in sweep:
    if r["bytes_on_link"] != r["bytes_swapped_out"] + r["bytes_swapped_in"]:
        sys.exit(f"swap_latency: bytes_on_link != out + in in row {r}")
by_key = {(r["mode"], r["write_pct"]): r["bytes_on_link"] for r in sweep}
delta, binary = by_key[("delta", 10)], by_key[("binary", 10)]
if delta * 2 > binary:
    sys.exit(f"swap_latency: delta bytes_on_link at 10% writes ({delta}) "
             f"exceeds 50% of binary-full ({binary})")
print(f"wire-format gate: delta {delta} <= 50% of binary {binary} at "
      f"10% writes — ok")
PYEOF
  then
    failed=1
  fi
fi

# Tier-hierarchy contract: the gate row the bench computed in-process is
# re-checked from the artifact (the bare-rerun fallback above would mask a
# nonzero bench exit): p95 demand-fault stall must improve >= 5x over
# remote-only, fewer bytes must cross the radio, and neither configuration
# may leave a swapped cluster short of K remote replicas.
if command -v python3 >/dev/null 2>&1 && [ -f BENCH_tier_hierarchy.json ]; then
  if ! python3 - BENCH_tier_hierarchy.json <<'PYEOF'
import json, sys
with open(sys.argv[1]) as fh:
    rows = json.load(fh)["rows"]
by_config = {r["config"]: r for r in rows}
for config in ("remote-only", "tiered", "gate"):
    if config not in by_config:
        sys.exit(f"tier_hierarchy: missing '{config}' row")
gate = by_config["gate"]
for name in ("stall_gate", "radio_gate", "durability_gate", "values_gate"):
    if gate.get(name) != "ok":
        sys.exit(f"tier_hierarchy: {name} failed: {gate}")
remote, tiered = by_config["remote-only"], by_config["tiered"]
if tiered["p95_stall_us"] * 5 > remote["p95_stall_us"]:
    sys.exit(f"tier_hierarchy: p95 stall {tiered['p95_stall_us']} not 5x "
             f"better than remote-only {remote['p95_stall_us']}")
if tiered["radio_bytes"] >= remote["radio_bytes"]:
    sys.exit(f"tier_hierarchy: tiered radio bytes {tiered['radio_bytes']} "
             f"not below remote-only {remote['radio_bytes']}")
if tiered["replicas_short_of_k"] or remote["replicas_short_of_k"]:
    sys.exit("tier_hierarchy: a swapped cluster is short of K remote replicas")
print(f"tier gate: p95 {remote['p95_stall_us']} -> {tiered['p95_stall_us']} us, "
      f"radio {remote['radio_bytes']} -> {tiered['radio_bytes']} B — ok")
PYEOF
  then
    failed=1
  fi
fi

# Fleet-scale contract: re-check the gate row the bench computed in-process
# (the bare-rerun fallback above would mask a nonzero bench exit): the
# rendezvous placement must keep max/mean store fill <= 1.35, the
# incremental monitors must touch <= 10% of the legacy baseline's per-poll
# replica records under the outage churn, and every cluster must be back at
# K replicas with none lost.
if command -v python3 >/dev/null 2>&1 && [ -f BENCH_fleet_scale.json ]; then
  if ! python3 - BENCH_fleet_scale.json <<'PYEOF'
import json, sys
with open(sys.argv[1]) as fh:
    rows = json.load(fh)["rows"]
by_config = {r["config"]: r for r in rows}
for config in ("directory", "legacy-walk", "gate"):
    if config not in by_config:
        sys.exit(f"fleet_scale: missing '{config}' row")
gate = by_config["gate"]
for name in ("balance_gate", "scan_gate", "recovery_gate"):
    if gate.get(name) != "ok":
        sys.exit(f"fleet_scale: {name} failed: {gate}")
directory = by_config["directory"]
if directory["devices"] < 500 or directory["stores"] < 200:
    sys.exit(f"fleet_scale: fleet too small: {directory['devices']} devices "
             f"x {directory['stores']} stores (need >= 500 x 200)")
if directory["balance_max_over_mean"] > 1.35:
    sys.exit(f"fleet_scale: balance {directory['balance_max_over_mean']} "
             f"exceeds 1.35")
if gate["scan_per_poll_ratio"] > 0.10:
    sys.exit(f"fleet_scale: per-poll churn scan ratio "
             f"{gate['scan_per_poll_ratio']} exceeds 0.10")
if directory["clusters_below_k"] or directory["clusters_lost"]:
    sys.exit(f"fleet_scale: {directory['clusters_below_k']} clusters below "
             f"K, {directory['clusters_lost']} lost after recovery")
print(f"fleet gate: balance {directory['balance_max_over_mean']:.3f}, "
      f"churn scans/poll {gate['incremental_scan_per_poll']:.0f} vs "
      f"baseline {gate['baseline_scan_per_poll']:.0f}, recovery "
      f"{directory['recovery_polls']} polls — ok")
PYEOF
  then
    failed=1
  fi
fi

# Overload-storm contract: re-check the three gates from the artifact (the
# bare-rerun fallback above would mask a nonzero bench exit). With the
# overload controls on, the demand-fault p95 stall must beat the unbounded
# baseline by >= 3x, retry amplification (wire attempts / logical calls over
# the storm window) must stay <= 2.0 while the unbudgeted baseline exceeds
# it, the controls-on run must actually shed, and both runs must converge
# back to K with no cluster lost.
if command -v python3 >/dev/null 2>&1 && [ -f BENCH_overload_storm.json ]; then
  if ! python3 - BENCH_overload_storm.json <<'PYEOF'
import json, sys
with open(sys.argv[1]) as fh:
    rows = json.load(fh)["rows"]
by_config = {r["config"]: r for r in rows}
for config in ("controls-on", "controls-off", "gate"):
    if config not in by_config:
        sys.exit(f"overload_storm: missing '{config}' row")
gate = by_config["gate"]
for name in ("stall_gate", "amplification_gate", "recovery_gate"):
    if gate.get(name) != "ok":
        sys.exit(f"overload_storm: {name} failed: {gate}")
on, off = by_config["controls-on"], by_config["controls-off"]
ratio = off["p95_stall_us"] / max(on["p95_stall_us"], 1)
if ratio < 3.0:
    sys.exit(f"overload_storm: p95 stall off/on {ratio:.2f}x below 3x "
             f"(off {off['p95_stall_us']} us, on {on['p95_stall_us']} us)")
if on["retry_amplification"] > 2.0:
    sys.exit(f"overload_storm: controls-on amplification "
             f"{on['retry_amplification']} exceeds 2.0")
if off["retry_amplification"] <= 2.0:
    sys.exit(f"overload_storm: controls-off amplification "
             f"{off['retry_amplification']} never exceeded 2.0 — the storm "
             f"did not stress the retry path")
if on["store_sheds"] == 0:
    sys.exit("overload_storm: controls-on run never shed — the storm did "
             "not saturate the pool")
for row in (on, off):
    if row["clusters_below_k"] or row["clusters_lost"]:
        sys.exit(f"overload_storm: {row['config']} ended with "
                 f"{row['clusters_below_k']} clusters below K, "
                 f"{row['clusters_lost']} lost")
    if row["recovery_polls"] < 0:
        sys.exit(f"overload_storm: {row['config']} never converged")
print(f"overload gate: p95 stall off/on {ratio:.2f}x, amplification "
      f"on {on['retry_amplification']:.2f} vs off "
      f"{off['retry_amplification']:.2f}, sheds {on['store_sheds']} — ok")
PYEOF
  then
    failed=1
  fi
fi

exit "$failed"
