// Tiny JSON emitter for the benchmark harnesses: every bench can dump its
// result table as {"rows":[{...},...]} next to its human-readable stdout,
// so CI and the experiment scripts diff numbers instead of scraping text.
// Deliberately minimal — flat rows of string/integer/double fields only.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "telemetry/telemetry.h"

namespace obiswap::benchjson {

class JsonWriter {
 public:
  void BeginRow() {
    rows_.emplace_back();
    first_field_ = true;
  }
  void Add(const std::string& key, int64_t value) {
    Field(key, std::to_string(value));
  }
  void Add(const std::string& key, uint64_t value) {
    Field(key, std::to_string(value));
  }
  void Add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    Field(key, buf);
  }
  void Add(const std::string& key, const std::string& value) {
    Field(key, "\"" + Escape(value) + "\"");
  }

  std::string ToString() const {
    std::string out = "{\"rows\":[";
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (i > 0) out += ",";
      out += "{" + rows_[i] + "}";
    }
    out += "]}\n";
    return out;
  }

  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::string text = ToString();
    size_t written = std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    return written == text.size();
  }

 private:
  static std::string Escape(const std::string& raw) {
    std::string out;
    for (char c : raw) {
      if (c == '"' || c == '\\') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    return out;
  }

  void Field(const std::string& key, const std::string& rendered) {
    if (rows_.empty()) BeginRow();
    if (!first_field_) rows_.back() += ",";
    first_field_ = false;
    rows_.back() += "\"" + Escape(key) + "\":" + rendered;
  }

  std::vector<std::string> rows_;
  bool first_field_ = true;
};

/// The conventional CLI contract: `bench --json [path]` writes `writer` to
/// `path` (default `default_path`) after the human-readable run. Returns
/// true if a --json flag was present (and handled).
inline bool MaybeWriteJson(int argc, char** argv, const JsonWriter& writer,
                           const std::string& default_path) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) != "--json") continue;
    std::string path =
        (i + 1 < argc && argv[i + 1][0] != '-') ? argv[i + 1] : default_path;
    if (writer.WriteFile(path)) {
      std::printf("\njson written to %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", path.c_str());
    }
    return true;
  }
  return false;
}

/// The trace half of the CLI contract: `bench --trace=<path>` dumps the
/// bench's span tracer as Chrome trace_event JSON after the run (load it
/// at chrome://tracing or ui.perfetto.dev). Empty string = flag absent.
inline std::string TracePath(int argc, char** argv) {
  const std::string prefix = "--trace=";
  for (int i = 1; i < argc; ++i) {
    std::string arg(argv[i]);
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return "";
}

/// Writes `telemetry`'s trace to the `--trace=<path>` target, if given.
/// Returns false only when the flag was present and the write failed.
inline bool MaybeWriteTrace(int argc, char** argv,
                            const telemetry::Telemetry& telemetry) {
  std::string path = TracePath(argc, argv);
  if (path.empty()) return true;
  if (!telemetry.DumpTrace(path).ok()) {
    std::fprintf(stderr, "failed to write trace to %s\n", path.c_str());
    return false;
  }
  std::printf("trace written to %s (%zu spans, %llu dropped)\n", path.c_str(),
              telemetry.tracer().completed_count(),
              static_cast<unsigned long long>(telemetry.tracer().dropped_count()));
  return true;
}

}  // namespace obiswap::benchjson
