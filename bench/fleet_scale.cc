// Fleet-scale gate: 500 device runtimes against a 200-store shared pool in
// one deterministic virtual-time simulation.
//
// This is the bench the single-device tables cannot produce: every device
// owns a full middleware stack (runtime, swapping manager, rendezvous
// placement directory, incremental durability monitor) but they all share
// one simulated network, one store pool and one virtual clock. The script
// is the paper's environment at building scale — steady swap activity,
// then a correlated outage that silently kills 20% of the store pool at
// once, then the recovery convergence that follows.
//
// The binary enforces three gates in-process and exits nonzero if any
// fails (CI runs it as a regression tripwire):
//   1. placement balance: max store fill / mean store fill <= 1.35 over
//      the live pool after recovery (rendezvous + bounded load);
//   2. incremental durability: across the churn episode — from the outage
//      until every monitor is fully reconciled again — the per-poll replica
//      records the incremental monitors examined are <= 10% of what the
//      legacy full-scan monitors examined per poll under the same outage
//      (the legacy run is the baseline, not an idealized sweep: a legacy
//      departure rescans the whole registry per departed store);
//   3. recovery convergence: after the 20% correlated outage every cluster
//      is back at K replicas and none was lost.
//
// A legacy-walk baseline at the same scale (linear nearby-store placement,
// full monitor scans) runs alongside for the comparison table; it is not
// gated — it exists to show what the directory buys.
//
// `--json [path]` dumps the table to BENCH_fleet_scale.json.
#include <cstdio>
#include <string>

#include "bench_json.h"
#include "obiswap/obiswap.h"

namespace {

using namespace obiswap;  // NOLINT

constexpr size_t kDevices = 500;
constexpr size_t kStores = 200;
constexpr int kClustersPerDevice = 4;
constexpr int kObjectsPerCluster = 12;
constexpr size_t kReplicationFactor = 2;
constexpr int kActivityRounds = 3;
constexpr double kOutageFraction = 0.20;
constexpr int kMaxRecoveryPolls = 100;

constexpr double kBalanceGate = 1.35;
constexpr double kScanGate = 0.10;

struct Run {
  fleet::FleetReport report;
  size_t stores_killed = 0;
  int recovery_polls = -1;  ///< -1: never converged
  /// Replica records examined / examinable across the churn episode: from
  /// the outage until a whole poll passes with no monitor touching
  /// anything (the fleet is reconciled and quiet again).
  uint64_t churn_scan = 0;
  uint64_t churn_full_scan = 0;
  int churn_polls = 0;
  bool build_ok = false;
};

fleet::FleetOptions Options(bool use_directory) {
  fleet::FleetOptions options;
  options.devices = kDevices;
  options.stores = kStores;
  options.clusters_per_device = kClustersPerDevice;
  options.objects_per_cluster = kObjectsPerCluster;
  options.replication_factor = kReplicationFactor;
  options.use_directory = use_directory;
  return options;
}

/// Activity rounds, a 20% correlated store outage, recovery to K.
Run Exercise(bool use_directory) {
  Run run;
  fleet::FleetDriver driver(Options(use_directory));
  Status built = driver.Build();
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n", built.ToString().c_str());
    return run;
  }
  run.build_ok = true;
  OBISWAP_CHECK(driver.RunRounds(kActivityRounds).ok());
  fleet::FleetReport before = driver.Report();
  run.stores_killed = driver.InjectCorrelatedOutage(kOutageFraction);
  Result<int> recovered = driver.RunUntilRecovered(kMaxRecoveryPolls);
  if (recovered.ok()) run.recovery_polls = *recovered;
  run.churn_polls = run.recovery_polls < 0 ? kMaxRecoveryPolls
                                           : run.recovery_polls;
  // The incremental churn episode ends when the monitors are quiet again,
  // not when the last replica lands: post-repair refreshes drain over the
  // next polls. (Legacy monitors never go quiet — every poll is a full
  // sweep — so their episode is just the recovery window.)
  if (use_directory) {
    for (int settle = 0; settle < 10; ++settle) {
      uint64_t scanned = driver.Report().scan_replicas;
      driver.PollAll();
      ++run.churn_polls;
      if (driver.Report().scan_replicas == scanned) break;
    }
  }
  run.report = driver.Report();
  run.churn_scan = run.report.scan_replicas - before.scan_replicas;
  run.churn_full_scan =
      run.report.full_scan_replicas - before.full_scan_replicas;
  return run;
}

double ChurnScanRatio(const Run& run) {
  if (run.churn_full_scan == 0) return 1.0;
  return static_cast<double>(run.churn_scan) /
         static_cast<double>(run.churn_full_scan);
}

/// Replica records examined per poll across the run's churn episode.
double ChurnScanPerPoll(const Run& run) {
  if (run.churn_polls <= 0) return 0.0;
  return static_cast<double>(run.churn_scan) /
         static_cast<double>(run.churn_polls);
}

void AddRow(benchjson::JsonWriter& json, const char* config, const Run& run) {
  const fleet::FleetReport& r = run.report;
  const double scan_ratio = ChurnScanRatio(run);
  std::printf(
      "%-12s  %4zu dev  %3zu/%3zu stores live  balance %.3f  "
      "churn scan %llu/%llu (%.1f%%)  re-repl %llu  recovery %d polls  "
      "%.0f swaps/s\n",
      config, kDevices, r.live_stores, kStores, r.balance_max_over_mean,
      (unsigned long long)run.churn_scan,
      (unsigned long long)run.churn_full_scan, scan_ratio * 100.0,
      (unsigned long long)r.replicas_re_replicated, run.recovery_polls,
      r.swap_ops_per_s);
  json.BeginRow();
  json.Add("config", std::string(config));
  json.Add("devices", static_cast<uint64_t>(kDevices));
  json.Add("stores", static_cast<uint64_t>(kStores));
  json.Add("live_stores", static_cast<uint64_t>(r.live_stores));
  json.Add("stores_killed", static_cast<uint64_t>(run.stores_killed));
  json.Add("swap_outs", r.swap_outs);
  json.Add("swap_ins", r.swap_ins);
  json.Add("swap_ops_per_s", r.swap_ops_per_s);
  json.Add("replicas_placed", r.replicas_placed);
  json.Add("fleet_placements", r.fleet_placements);
  json.Add("balance_max_over_mean", r.balance_max_over_mean);
  json.Add("stores_departed", r.stores_departed);
  json.Add("replicas_re_replicated", r.replicas_re_replicated);
  json.Add("scan_replicas", r.scan_replicas);
  json.Add("full_scan_replicas", r.full_scan_replicas);
  json.Add("churn_scan_replicas", run.churn_scan);
  json.Add("churn_full_scan_replicas", run.churn_full_scan);
  json.Add("churn_polls", static_cast<int64_t>(run.churn_polls));
  json.Add("churn_scan_per_poll", ChurnScanPerPoll(run));
  json.Add("churn_scan_ratio", scan_ratio);
  json.Add("recovery_polls", static_cast<int64_t>(run.recovery_polls));
  json.Add("clusters_below_k", static_cast<uint64_t>(r.clusters_below_k));
  json.Add("clusters_lost", static_cast<uint64_t>(r.clusters_lost));
  json.Add("virtual_us", r.virtual_us);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("fleet_scale: %zu devices x %zu stores, K=%zu, "
              "%d clusters/device, %d%% correlated outage\n\n",
              kDevices, kStores, kReplicationFactor, kClustersPerDevice,
              static_cast<int>(kOutageFraction * 100));

  benchjson::JsonWriter json;
  Run directory = Exercise(/*use_directory=*/true);
  Run legacy = Exercise(/*use_directory=*/false);
  if (!directory.build_ok || !legacy.build_ok) return 1;
  AddRow(json, "directory", directory);
  AddRow(json, "legacy-walk", legacy);

  const fleet::FleetReport& r = directory.report;
  // Per-poll replica touches under churn, incremental vs the legacy
  // full-scan baseline under the identical outage script.
  const double incremental_per_poll = ChurnScanPerPoll(directory);
  const double baseline_per_poll = ChurnScanPerPoll(legacy);
  const double scan_ratio = baseline_per_poll <= 0.0
                                ? 1.0
                                : incremental_per_poll / baseline_per_poll;
  const bool balance_gate =
      r.balance_max_over_mean > 0.0 && r.balance_max_over_mean <= kBalanceGate;
  const bool scan_gate = scan_ratio <= kScanGate;
  // The greedy outage spares any store whose death would strand a cluster's
  // last replica (the scripted failure is survivable by construction), so
  // the realized kill count can fall short of the 20% target once victims
  // saturate the replica graph — require at least a tenth of the pool
  // (half the nominal target) actually went down.
  const bool recovery_gate = directory.recovery_polls >= 0 &&
                             directory.stores_killed >= kStores / 10 &&
                             r.clusters_below_k == 0 && r.clusters_lost == 0 &&
                             r.replicas_re_replicated > 0;
  std::printf(
      "\ngates: balance %.3f (need <= %.2f) %s | churn scans/poll %.0f vs "
      "baseline %.0f (%.1f%%, need <= %.0f%%) %s | %zu stores killed, "
      "recovered in %d polls, %zu below K, %zu lost %s\n",
      r.balance_max_over_mean, kBalanceGate, balance_gate ? "ok" : "FAIL",
      incremental_per_poll, baseline_per_poll, scan_ratio * 100.0,
      kScanGate * 100.0, scan_gate ? "ok" : "FAIL", directory.stores_killed,
      directory.recovery_polls, r.clusters_below_k, r.clusters_lost,
      recovery_gate ? "ok" : "FAIL");

  json.BeginRow();
  json.Add("config", std::string("gate"));
  json.Add("incremental_scan_per_poll", incremental_per_poll);
  json.Add("baseline_scan_per_poll", baseline_per_poll);
  json.Add("scan_per_poll_ratio", scan_ratio);
  json.Add("balance_gate", std::string(balance_gate ? "ok" : "fail"));
  json.Add("scan_gate", std::string(scan_gate ? "ok" : "fail"));
  json.Add("recovery_gate", std::string(recovery_gate ? "ok" : "fail"));

  benchjson::MaybeWriteJson(argc, argv, json, "BENCH_fleet_scale.json");
  return balance_gate && scan_gate && recovery_gate ? 0 : 1;
}
