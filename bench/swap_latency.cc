// §3 supplement: swap-out / swap-in latency over the 700 Kbps link as a
// function of swap-cluster size, and the XML payload sizes involved. Not a
// figure in the paper (the paper's evaluation is CPU-side), but it
// quantifies the transfer half of the design: the store devices are dumb,
// so every byte of XML rides the slow link.
//
// Second table: the clean-image write-ratio sweep. A cluster thrashes in
// and out of the device; between cycles a fraction of the reloads write a
// field. Clean cycles re-swap-out by revalidating the retained store copy
// (zero payload bytes on the link) and fault back in from the payload
// cache; dirty cycles pay the full serialize + ship + fetch cost. The
// dirty/clean latency ratio is the headline: at the paper-ish 64 KB
// cluster size the clean path must be >=5x faster.
//
// `--json [path]` additionally dumps both tables to BENCH_swap_latency.json.
// `--trace=<path>` dumps every swap/RPC span of the whole run as Chrome
// trace_event JSON — one track per sweep configuration, virtual-clock
// timestamps, so the serialize/compress/ship breakdown is inspectable at
// chrome://tracing.
#include <cstdio>
#include <string>

#include "bench_json.h"
#include "obiswap/obiswap.h"
#include "workload/list_workload.h"

namespace {

using namespace obiswap;  // NOLINT

struct StoreWorld {
  StoreWorld()
      : network(1), discovery(network), store(DeviceId(2), 256 * 1024 * 1024),
        client(network, discovery, DeviceId(1)) {
    network.AddDevice(DeviceId(1));
    network.AddDevice(DeviceId(2));
    network.SetInRange(DeviceId(1), DeviceId(2), true);
    discovery.Announce(&store);
  }
  net::Network network;
  net::Discovery discovery;
  net::StoreNode store;
  net::StoreClient client;
};

void SizeSweep(benchjson::JsonWriter& json, telemetry::Telemetry* trace) {
  std::printf("%8s %10s %12s %12s %12s %12s\n", "objects", "codec",
              "payload B", "B/object", "swap-out ms", "swap-in ms");

  for (const char* codec : {"identity", "lz77"}) {
    for (int size : {20, 50, 100, 200, 500}) {
      StoreWorld world;
      runtime::Runtime rt(1);
      const runtime::ClassInfo* cls = workload::RegisterNodeClass(rt);
      swap::SwappingManager::Options options;
      options.codec = codec;
      swap::SwappingManager manager(rt, options);
      manager.AttachStore(&world.client, &world.discovery);
      // Each configuration renders as its own named track; each world has
      // its own virtual clock, so re-attach per iteration.
      trace->tracer().BeginTrack("size_sweep " + std::string(codec) + " n=" +
                                 std::to_string(size));
      trace->AttachClock(&world.network.clock());
      manager.AttachTelemetry(trace);
      world.client.AttachTelemetry(trace);
      // One cluster of exactly `size` objects plus a root holder.
      auto clusters =
          workload::BuildList(rt, &manager, cls, size, size, "head");
      OBISWAP_CHECK(clusters.size() == 1);

      uint64_t clock0 = world.network.clock().now_us();
      Result<SwapKey> key = manager.SwapOut(clusters[0]);
      OBISWAP_CHECK(key.ok());
      uint64_t out_us = world.network.clock().now_us() - clock0;
      const swap::SwapClusterInfo* info =
          manager.registry().Find(clusters[0]);
      size_t payload = info->swapped_payload_bytes;

      clock0 = world.network.clock().now_us();
      OBISWAP_CHECK(manager.SwapIn(clusters[0]).ok());
      uint64_t in_us = world.network.clock().now_us() - clock0;

      std::printf("%8d %10s %12zu %12.1f %12.1f %12.1f\n", size, codec,
                  payload, static_cast<double>(payload) / size,
                  out_us / 1000.0, in_us / 1000.0);
      json.BeginRow();
      json.Add("table", std::string("size_sweep"));
      json.Add("objects", static_cast<int64_t>(size));
      json.Add("codec", std::string(codec));
      json.Add("payload_bytes", static_cast<uint64_t>(payload));
      json.Add("swap_out_ms", out_us / 1000.0);
      json.Add("swap_in_ms", in_us / 1000.0);
    }
  }
}

// One write-ratio configuration: `cycles` swap-out/swap-in rounds of a
// single cluster sized to ~64 KB of identity XML; `write_pct`% of the
// reload cycles write one field before the next swap-out.
void WriteRatioRun(int write_pct, int cycles, benchjson::JsonWriter& json,
                   telemetry::Telemetry* trace) {
  constexpr int kClusterObjects = 580;  // ~64 KB serialized (identity)
  StoreWorld world;
  runtime::Runtime rt(1);
  const runtime::ClassInfo* cls = workload::RegisterNodeClass(rt);
  swap::SwappingManager manager(rt, swap::SwappingManager::Options());
  manager.AttachStore(&world.client, &world.discovery);
  manager.set_swap_in_cache_bytes(1 << 20);
  trace->tracer().BeginTrack("write_ratio " + std::to_string(write_pct) +
                             "% of " + std::to_string(cycles) + " cycles");
  trace->AttachClock(&world.network.clock());
  manager.AttachTelemetry(trace);
  world.client.AttachTelemetry(trace);
  auto clusters = workload::BuildList(rt, &manager, cls, kClusterObjects,
                                      kClusterObjects, "head");
  OBISWAP_CHECK(clusters.size() == 1);
  runtime::Object* head = rt.GetGlobal("head")->ref();

  uint64_t dirty_out_us = 0, clean_out_us = 0;
  int dirty_outs = 0, clean_outs = 0;
  for (int c = 1; c <= cycles; ++c) {
    if (c > 1) {
      // Fault the cluster back in; on scheduled cycles, write one field.
      // Integer schedule: cycle c writes iff the running write quota
      // (c*pct/100) ticked up — spreads pct% of writes evenly.
      OBISWAP_CHECK(rt.Invoke(head, "get_value").ok());
      if ((c * write_pct) / 100 > ((c - 1) * write_pct) / 100) {
        OBISWAP_CHECK(
            rt.Invoke(head, "set_value", {runtime::Value::Int(c)}).ok());
      }
    }
    uint64_t before_clean = manager.stats().clean_swap_outs;
    uint64_t t0 = world.network.clock().now_us();
    OBISWAP_CHECK(manager.SwapOut(clusters[0]).ok());
    uint64_t took = world.network.clock().now_us() - t0;
    if (manager.stats().clean_swap_outs > before_clean) {
      clean_out_us += took;
      ++clean_outs;
    } else {
      dirty_out_us += took;
      ++dirty_outs;
    }
  }
  OBISWAP_CHECK(manager.SwapIn(clusters[0]).ok());

  const swap::SwappingManager::Stats& stats = manager.stats();
  double dirty_ms = dirty_outs > 0 ? dirty_out_us / 1000.0 / dirty_outs : 0.0;
  // The clean path does no network or flash I/O, so virtual time charges it
  // 0 us; floor at 1 us to keep the speedup ratio finite.
  double clean_ms =
      clean_outs > 0
          ? (clean_out_us > 0 ? clean_out_us / 1000.0 / clean_outs : 0.001)
          : 0.0;
  double speedup = (dirty_ms > 0 && clean_ms > 0) ? dirty_ms / clean_ms : 0.0;
  std::printf("%8d%% %7d %7d %12.1f %12.3f %9.0fx %12llu %12llu %6llu\n",
              write_pct, dirty_outs, clean_outs, dirty_ms, clean_ms, speedup,
              (unsigned long long)stats.bytes_swapped_out,
              (unsigned long long)stats.bytes_swap_transfer_saved,
              (unsigned long long)stats.cache_hits);
  json.BeginRow();
  json.Add("table", std::string("write_ratio_sweep"));
  json.Add("write_pct", static_cast<int64_t>(write_pct));
  json.Add("cycles", static_cast<int64_t>(cycles));
  json.Add("dirty_swap_outs", static_cast<int64_t>(dirty_outs));
  json.Add("clean_swap_outs", static_cast<int64_t>(clean_outs));
  json.Add("dirty_out_ms", dirty_ms);
  json.Add("clean_out_ms", clean_ms);
  json.Add("clean_speedup", speedup);
  json.Add("bytes_swapped_out", stats.bytes_swapped_out);
  json.Add("bytes_transfer_saved", stats.bytes_swap_transfer_saved);
  json.Add("cache_hits", stats.cache_hits);
  json.Add("bytes_on_link", stats.bytes_swapped_out + stats.bytes_swapped_in);
}

// One wire-format configuration of the delta sweep: `cycles` swap rounds of
// one cluster; `write_pct`% of the reloads write a field before the next
// swap-out. "xml" and "binary" ship the full document on every dirty cycle;
// "delta" (binary + delta_swap_out) ships only the OSWD difference against
// the retained base. Returns the total payload bytes that crossed the link
// (out + in) — the headline the delta machinery exists to shrink.
uint64_t WireFormatRun(const std::string& mode, int write_pct, int cycles,
                       benchjson::JsonWriter& json,
                       telemetry::Telemetry* trace) {
  constexpr int kClusterObjects = 580;
  StoreWorld world;
  runtime::Runtime rt(1);
  const runtime::ClassInfo* cls = workload::RegisterNodeClass(rt);
  swap::SwappingManager::Options options;
  options.wire_format = mode == "xml" ? "xml" : "binary";
  options.delta_swap_out = mode == "delta";
  options.swap_in_cache_bytes = 1 << 20;
  swap::SwappingManager manager(rt, options);
  manager.AttachStore(&world.client, &world.discovery);
  trace->tracer().BeginTrack("wire_format " + mode + " " +
                             std::to_string(write_pct) + "%");
  trace->AttachClock(&world.network.clock());
  manager.AttachTelemetry(trace);
  world.client.AttachTelemetry(trace);
  auto clusters = workload::BuildList(rt, &manager, cls, kClusterObjects,
                                      kClusterObjects, "head");
  OBISWAP_CHECK(clusters.size() == 1);
  runtime::Object* head = rt.GetGlobal("head")->ref();

  uint64_t total_us = 0;
  for (int c = 1; c <= cycles; ++c) {
    if (c > 1) {
      OBISWAP_CHECK(rt.Invoke(head, "get_value").ok());
      if ((c * write_pct) / 100 > ((c - 1) * write_pct) / 100) {
        OBISWAP_CHECK(
            rt.Invoke(head, "set_value", {runtime::Value::Int(c)}).ok());
      }
    }
    uint64_t t0 = world.network.clock().now_us();
    OBISWAP_CHECK(manager.SwapOut(clusters[0]).ok());
    OBISWAP_CHECK(manager.SwapIn(clusters[0]).ok());
    total_us += world.network.clock().now_us() - t0;
  }

  const swap::SwappingManager::Stats& stats = manager.stats();
  const uint64_t on_link = stats.bytes_swapped_out + stats.bytes_swapped_in;
  std::printf("%8s %7d%% %12llu %12llu %12llu %8llu %8llu %10.1f\n",
              mode.c_str(), write_pct,
              (unsigned long long)stats.bytes_swapped_out,
              (unsigned long long)stats.bytes_swapped_in,
              (unsigned long long)on_link,
              (unsigned long long)stats.delta_swap_outs,
              (unsigned long long)stats.delta_fallbacks, total_us / 1000.0);
  json.BeginRow();
  json.Add("table", std::string("wire_format_sweep"));
  json.Add("mode", mode);
  json.Add("write_pct", static_cast<int64_t>(write_pct));
  json.Add("cycles", static_cast<int64_t>(cycles));
  json.Add("bytes_swapped_out", stats.bytes_swapped_out);
  json.Add("bytes_swapped_in", stats.bytes_swapped_in);
  json.Add("bytes_on_link", on_link);
  json.Add("delta_swap_outs", stats.delta_swap_outs);
  json.Add("delta_fallbacks", stats.delta_fallbacks);
  json.Add("delta_bytes_shipped", stats.delta_bytes_shipped);
  json.Add("delta_bytes_saved", stats.delta_bytes_saved);
  json.Add("swap_ms", total_us / 1000.0);
  return on_link;
}

}  // namespace

int main(int argc, char** argv) {
  benchjson::JsonWriter json;
  telemetry::Telemetry::Options trace_options;
  trace_options.tracer_capacity = 1 << 16;  // the whole run, no drops
  telemetry::Telemetry trace(trace_options);
  std::printf(
      "Swap-cluster transfer costs over the paper's 700 Kbps Bluetooth "
      "link (virtual time)\n\n");
  SizeSweep(json, &trace);
  std::printf(
      "\nreading: latency scales linearly with serialized size; lz77 "
      "trades host CPU for ~3-6x\nless link time, which dominates on "
      "Bluetooth-class links.\n");

  std::printf(
      "\nClean-image write-ratio sweep: 12 swap cycles of one ~64 KB "
      "cluster, payload cache on\n\n");
  std::printf("%9s %7s %7s %12s %12s %10s %12s %12s %6s\n", "writes",
              "dirty", "clean", "dirty ms", "clean ms", "speedup",
              "out bytes", "saved bytes", "hits");
  for (int pct : {0, 25, 50, 75, 100}) {
    WriteRatioRun(pct, /*cycles=*/12, json, &trace);
  }
  std::printf(
      "\nreading: a clean re-swap-out revalidates the retained store copy "
      "and ships zero payload\nbytes, and the paired fault-in decodes from "
      "the payload cache — the link only carries\nbytes for cycles that "
      "wrote. At 0%% writes only the first swap-out ever transfers.\n");

  std::printf(
      "\nWire-format write-ratio sweep: 20 swap cycles of one %d-object "
      "cluster, payload cache on\n\n",
      580);
  std::printf("%8s %8s %12s %12s %12s %8s %8s %10s\n", "mode", "writes",
              "out bytes", "in bytes", "on link", "deltas", "fallbk",
              "swap ms");
  uint64_t binary_at_10 = 0, delta_at_10 = 0;
  for (const char* mode : {"xml", "binary", "delta"}) {
    for (int pct : {0, 10, 25, 50, 75, 100}) {
      uint64_t on_link = WireFormatRun(mode, pct, /*cycles=*/20, json, &trace);
      if (pct == 10 && std::string(mode) == "binary") binary_at_10 = on_link;
      if (pct == 10 && std::string(mode) == "delta") delta_at_10 = on_link;
    }
  }
  std::printf(
      "\nreading: clean cycles ship zero payload bytes in every mode; what "
      "the modes change is\nthe dirty cycles — binary shaves the XML tag "
      "overhead, delta ships only the fields that\nchanged against the "
      "retained base (the paired swap-in decodes the merged document\n"
      "straight from the payload cache, so it costs no link bytes either).\n");

  // Regression gate: at a 10% write ratio the delta mode must put at most
  // half the bytes on the link that full binary payloads do.
  if (delta_at_10 * 2 > binary_at_10) {
    std::fprintf(stderr,
                 "FAIL: delta bytes on link at 10%% writes (%llu) exceed "
                 "50%% of binary-full (%llu)\n",
                 (unsigned long long)delta_at_10,
                 (unsigned long long)binary_at_10);
    return 1;
  }
  std::printf(
      "\ngate: delta on-link bytes at 10%% writes = %llu <= 50%% of "
      "binary-full %llu — ok\n",
      (unsigned long long)delta_at_10, (unsigned long long)binary_at_10);

  benchjson::MaybeWriteJson(argc, argv, json, "BENCH_swap_latency.json");
  if (!benchjson::MaybeWriteTrace(argc, argv, trace)) return 1;
  return 0;
}
