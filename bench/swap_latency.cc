// §3 supplement: swap-out / swap-in latency over the 700 Kbps link as a
// function of swap-cluster size, and the XML payload sizes involved. Not a
// figure in the paper (the paper's evaluation is CPU-side), but it
// quantifies the transfer half of the design: the store devices are dumb,
// so every byte of XML rides the slow link.
//
// Second table: the clean-image write-ratio sweep. A cluster thrashes in
// and out of the device; between cycles a fraction of the reloads write a
// field. Clean cycles re-swap-out by revalidating the retained store copy
// (zero payload bytes on the link) and fault back in from the payload
// cache; dirty cycles pay the full serialize + ship + fetch cost. The
// dirty/clean latency ratio is the headline: at the paper-ish 64 KB
// cluster size the clean path must be >=5x faster.
//
// `--json [path]` additionally dumps both tables to BENCH_swap_latency.json.
// `--trace=<path>` dumps every swap/RPC span of the whole run as Chrome
// trace_event JSON — one track per sweep configuration, virtual-clock
// timestamps, so the serialize/compress/ship breakdown is inspectable at
// chrome://tracing.
#include <cstdio>
#include <string>

#include "bench_json.h"
#include "obiswap/obiswap.h"
#include "workload/list_workload.h"

namespace {

using namespace obiswap;  // NOLINT

struct StoreWorld {
  StoreWorld()
      : network(1), discovery(network), store(DeviceId(2), 256 * 1024 * 1024),
        client(network, discovery, DeviceId(1)) {
    network.AddDevice(DeviceId(1));
    network.AddDevice(DeviceId(2));
    network.SetInRange(DeviceId(1), DeviceId(2), true);
    discovery.Announce(&store);
  }
  net::Network network;
  net::Discovery discovery;
  net::StoreNode store;
  net::StoreClient client;
};

void SizeSweep(benchjson::JsonWriter& json, telemetry::Telemetry* trace) {
  std::printf("%8s %10s %12s %12s %12s %12s\n", "objects", "codec",
              "payload B", "B/object", "swap-out ms", "swap-in ms");

  for (const char* codec : {"identity", "lz77"}) {
    for (int size : {20, 50, 100, 200, 500}) {
      StoreWorld world;
      runtime::Runtime rt(1);
      const runtime::ClassInfo* cls = workload::RegisterNodeClass(rt);
      swap::SwappingManager::Options options;
      options.codec = codec;
      swap::SwappingManager manager(rt, options);
      manager.AttachStore(&world.client, &world.discovery);
      // Each configuration renders as its own named track; each world has
      // its own virtual clock, so re-attach per iteration.
      trace->tracer().BeginTrack("size_sweep " + std::string(codec) + " n=" +
                                 std::to_string(size));
      trace->AttachClock(&world.network.clock());
      manager.AttachTelemetry(trace);
      world.client.AttachTelemetry(trace);
      // One cluster of exactly `size` objects plus a root holder.
      auto clusters =
          workload::BuildList(rt, &manager, cls, size, size, "head");
      OBISWAP_CHECK(clusters.size() == 1);

      uint64_t clock0 = world.network.clock().now_us();
      Result<SwapKey> key = manager.SwapOut(clusters[0]);
      OBISWAP_CHECK(key.ok());
      uint64_t out_us = world.network.clock().now_us() - clock0;
      const swap::SwapClusterInfo* info =
          manager.registry().Find(clusters[0]);
      size_t payload = info->swapped_payload_bytes;

      clock0 = world.network.clock().now_us();
      OBISWAP_CHECK(manager.SwapIn(clusters[0]).ok());
      uint64_t in_us = world.network.clock().now_us() - clock0;

      std::printf("%8d %10s %12zu %12.1f %12.1f %12.1f\n", size, codec,
                  payload, static_cast<double>(payload) / size,
                  out_us / 1000.0, in_us / 1000.0);
      json.BeginRow();
      json.Add("table", std::string("size_sweep"));
      json.Add("objects", static_cast<int64_t>(size));
      json.Add("codec", std::string(codec));
      json.Add("payload_bytes", static_cast<uint64_t>(payload));
      json.Add("swap_out_ms", out_us / 1000.0);
      json.Add("swap_in_ms", in_us / 1000.0);
    }
  }
}

// One write-ratio configuration: `cycles` swap-out/swap-in rounds of a
// single cluster sized to ~64 KB of identity XML; `write_pct`% of the
// reload cycles write one field before the next swap-out.
void WriteRatioRun(int write_pct, int cycles, benchjson::JsonWriter& json,
                   telemetry::Telemetry* trace) {
  constexpr int kClusterObjects = 580;  // ~64 KB serialized (identity)
  StoreWorld world;
  runtime::Runtime rt(1);
  const runtime::ClassInfo* cls = workload::RegisterNodeClass(rt);
  swap::SwappingManager manager(rt, swap::SwappingManager::Options());
  manager.AttachStore(&world.client, &world.discovery);
  manager.set_swap_in_cache_bytes(1 << 20);
  trace->tracer().BeginTrack("write_ratio " + std::to_string(write_pct) +
                             "% of " + std::to_string(cycles) + " cycles");
  trace->AttachClock(&world.network.clock());
  manager.AttachTelemetry(trace);
  world.client.AttachTelemetry(trace);
  auto clusters = workload::BuildList(rt, &manager, cls, kClusterObjects,
                                      kClusterObjects, "head");
  OBISWAP_CHECK(clusters.size() == 1);
  runtime::Object* head = rt.GetGlobal("head")->ref();

  uint64_t dirty_out_us = 0, clean_out_us = 0;
  int dirty_outs = 0, clean_outs = 0;
  for (int c = 1; c <= cycles; ++c) {
    if (c > 1) {
      // Fault the cluster back in; on scheduled cycles, write one field.
      // Integer schedule: cycle c writes iff the running write quota
      // (c*pct/100) ticked up — spreads pct% of writes evenly.
      OBISWAP_CHECK(rt.Invoke(head, "get_value").ok());
      if ((c * write_pct) / 100 > ((c - 1) * write_pct) / 100) {
        OBISWAP_CHECK(
            rt.Invoke(head, "set_value", {runtime::Value::Int(c)}).ok());
      }
    }
    uint64_t before_clean = manager.stats().clean_swap_outs;
    uint64_t t0 = world.network.clock().now_us();
    OBISWAP_CHECK(manager.SwapOut(clusters[0]).ok());
    uint64_t took = world.network.clock().now_us() - t0;
    if (manager.stats().clean_swap_outs > before_clean) {
      clean_out_us += took;
      ++clean_outs;
    } else {
      dirty_out_us += took;
      ++dirty_outs;
    }
  }
  OBISWAP_CHECK(manager.SwapIn(clusters[0]).ok());

  const swap::SwappingManager::Stats& stats = manager.stats();
  double dirty_ms = dirty_outs > 0 ? dirty_out_us / 1000.0 / dirty_outs : 0.0;
  // The clean path does no network or flash I/O, so virtual time charges it
  // 0 us; floor at 1 us to keep the speedup ratio finite.
  double clean_ms =
      clean_outs > 0
          ? (clean_out_us > 0 ? clean_out_us / 1000.0 / clean_outs : 0.001)
          : 0.0;
  double speedup = (dirty_ms > 0 && clean_ms > 0) ? dirty_ms / clean_ms : 0.0;
  std::printf("%8d%% %7d %7d %12.1f %12.3f %9.0fx %12llu %12llu %6llu\n",
              write_pct, dirty_outs, clean_outs, dirty_ms, clean_ms, speedup,
              (unsigned long long)stats.bytes_swapped_out,
              (unsigned long long)stats.bytes_swap_transfer_saved,
              (unsigned long long)stats.cache_hits);
  json.BeginRow();
  json.Add("table", std::string("write_ratio_sweep"));
  json.Add("write_pct", static_cast<int64_t>(write_pct));
  json.Add("cycles", static_cast<int64_t>(cycles));
  json.Add("dirty_swap_outs", static_cast<int64_t>(dirty_outs));
  json.Add("clean_swap_outs", static_cast<int64_t>(clean_outs));
  json.Add("dirty_out_ms", dirty_ms);
  json.Add("clean_out_ms", clean_ms);
  json.Add("clean_speedup", speedup);
  json.Add("bytes_swapped_out", stats.bytes_swapped_out);
  json.Add("bytes_transfer_saved", stats.bytes_swap_transfer_saved);
  json.Add("cache_hits", stats.cache_hits);
}

}  // namespace

int main(int argc, char** argv) {
  benchjson::JsonWriter json;
  telemetry::Telemetry::Options trace_options;
  trace_options.tracer_capacity = 1 << 16;  // the whole run, no drops
  telemetry::Telemetry trace(trace_options);
  std::printf(
      "Swap-cluster transfer costs over the paper's 700 Kbps Bluetooth "
      "link (virtual time)\n\n");
  SizeSweep(json, &trace);
  std::printf(
      "\nreading: latency scales linearly with serialized size; lz77 "
      "trades host CPU for ~3-6x\nless link time, which dominates on "
      "Bluetooth-class links.\n");

  std::printf(
      "\nClean-image write-ratio sweep: 12 swap cycles of one ~64 KB "
      "cluster, payload cache on\n\n");
  std::printf("%9s %7s %7s %12s %12s %10s %12s %12s %6s\n", "writes",
              "dirty", "clean", "dirty ms", "clean ms", "speedup",
              "out bytes", "saved bytes", "hits");
  for (int pct : {0, 25, 50, 75, 100}) {
    WriteRatioRun(pct, /*cycles=*/12, json, &trace);
  }
  std::printf(
      "\nreading: a clean re-swap-out revalidates the retained store copy "
      "and ships zero payload\nbytes, and the paired fault-in decodes from "
      "the payload cache — the link only carries\nbytes for cycles that "
      "wrote. At 0%% writes only the first swap-out ever transfers.\n");

  benchjson::MaybeWriteJson(argc, argv, json, "BENCH_swap_latency.json");
  if (!benchjson::MaybeWriteTrace(argc, argv, trace)) return 1;
  return 0;
}
