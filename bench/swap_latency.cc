// §3 supplement: swap-out / swap-in latency over the 700 Kbps link as a
// function of swap-cluster size, and the XML payload sizes involved. Not a
// figure in the paper (the paper's evaluation is CPU-side), but it
// quantifies the transfer half of the design: the store devices are dumb,
// so every byte of XML rides the slow link.
#include <cstdio>

#include "obiswap/obiswap.h"
#include "workload/list_workload.h"

namespace {

using namespace obiswap;  // NOLINT

struct StoreWorld {
  StoreWorld()
      : network(1), discovery(network), store(DeviceId(2), 256 * 1024 * 1024),
        client(network, discovery, DeviceId(1)) {
    network.AddDevice(DeviceId(1));
    network.AddDevice(DeviceId(2));
    network.SetInRange(DeviceId(1), DeviceId(2), true);
    discovery.Announce(&store);
  }
  net::Network network;
  net::Discovery discovery;
  net::StoreNode store;
  net::StoreClient client;
};

}  // namespace

int main() {
  std::printf(
      "Swap-cluster transfer costs over the paper's 700 Kbps Bluetooth "
      "link (virtual time)\n\n");
  std::printf("%8s %10s %12s %12s %12s %12s\n", "objects", "codec",
              "payload B", "B/object", "swap-out ms", "swap-in ms");

  for (const char* codec : {"identity", "lz77"}) {
    for (int size : {20, 50, 100, 200, 500}) {
      StoreWorld world;
      runtime::Runtime rt(1);
      const runtime::ClassInfo* cls = workload::RegisterNodeClass(rt);
      swap::SwappingManager::Options options;
      options.codec = codec;
      swap::SwappingManager manager(rt, options);
      manager.AttachStore(&world.client, &world.discovery);
      // One cluster of exactly `size` objects plus a root holder.
      auto clusters =
          workload::BuildList(rt, &manager, cls, size, size, "head");
      OBISWAP_CHECK(clusters.size() == 1);

      uint64_t clock0 = world.network.clock().now_us();
      Result<SwapKey> key = manager.SwapOut(clusters[0]);
      OBISWAP_CHECK(key.ok());
      uint64_t out_us = world.network.clock().now_us() - clock0;
      const swap::SwapClusterInfo* info =
          manager.registry().Find(clusters[0]);
      size_t payload = info->swapped_payload_bytes;

      clock0 = world.network.clock().now_us();
      OBISWAP_CHECK(manager.SwapIn(clusters[0]).ok());
      uint64_t in_us = world.network.clock().now_us() - clock0;

      std::printf("%8d %10s %12zu %12.1f %12.1f %12.1f\n", size, codec,
                  payload, static_cast<double>(payload) / size,
                  out_us / 1000.0, in_us / 1000.0);
    }
  }
  std::printf(
      "\nreading: latency scales linearly with serialized size; lz77 "
      "trades host CPU for ~3-6x\nless link time, which dominates on "
      "Bluetooth-class links.\n");
  return 0;
}
