// Tiered swap hierarchy gate: re-fault stalls with the compressed-RAM +
// flash tiers in front of the remote stores vs the paper's remote-only
// configuration.
//
// The workload is the tier stack's reason to exist: a working set swapped
// out and demand-faulted back round after round. Remote-only, every
// re-fault pays full radio latency; tiered, the swap-out parks the payload
// in the fastest local tier and the re-fault is served at memory (or
// flash) speed while the durability sweep writes the payload back to K
// remote replicas in the background.
//
// The binary enforces three gates in-process and exits nonzero if any
// fails (CI runs it as a regression tripwire):
//   1. p95 demand-fault stall improves >= 5x over remote-only;
//   2. fewer bytes cross the radio (re-faults stop being radio traffic);
//   3. every swapped cluster still reaches K remote replicas — the tiers
//      accelerate, they never weaken durability.
//
// `--json [path]` dumps the table to BENCH_tier_hierarchy.json and
// `--trace=<path>` the span trace.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "obiswap/obiswap.h"
#include "workload/list_workload.h"

namespace {

using namespace obiswap;  // NOLINT

constexpr int kClusters = 8;
constexpr int kNodesPerCluster = 20;
constexpr int kRounds = 10;
constexpr size_t kReplicationFactor = 2;

struct Run {
  std::vector<uint64_t> stall_us;  ///< one sample per demand fault
  uint64_t radio_bytes = 0;
  uint64_t flash_wear_bytes = 0;
  uint64_t ram_hits = 0;
  uint64_t flash_hits = 0;
  uint64_t demotions = 0;
  uint64_t write_backs = 0;
  size_t replicas_short = 0;  ///< swapped clusters below K at the end
  bool values_intact = false;
};

/// Sums `get_value` along the list by mediated invocation; the cursor lives
/// in a global so middleware activity between steps cannot collect it.
Result<int64_t> SumList(runtime::Runtime& rt, const std::string& global) {
  using runtime::Value;
  OBISWAP_ASSIGN_OR_RETURN(Value start, rt.GetGlobal(global));
  OBISWAP_RETURN_IF_ERROR(rt.SetGlobal("__sum_cursor", start));
  int64_t sum = 0;
  int guard = 0;
  for (;;) {
    Value cursor = *rt.GetGlobal("__sum_cursor");
    if (!cursor.is_ref() || cursor.ref() == nullptr) break;
    OBISWAP_ASSIGN_OR_RETURN(Value value, rt.Invoke(cursor.ref(), "get_value"));
    sum += value.as_int();
    OBISWAP_ASSIGN_OR_RETURN(Value next, rt.Invoke(cursor.ref(), "next"));
    OBISWAP_RETURN_IF_ERROR(rt.SetGlobal("__sum_cursor", next));
    if (++guard > 1000000)
      return InternalError("list traversal did not terminate");
  }
  rt.RemoveGlobal("__sum_cursor");
  return sum;
}

uint64_t Percentile(std::vector<uint64_t> samples, double pct) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  size_t index = static_cast<size_t>(pct / 100.0 * (samples.size() - 1));
  return samples[index];
}

Run Measure(bool tiered, telemetry::Telemetry* trace) {
  net::Network network;
  net::Discovery discovery(network);
  DeviceId pda(1), shelf(2), printer(3);
  network.AddDevice(pda);
  for (DeviceId store_dev : {shelf, printer}) {
    network.AddDevice(store_dev);
    network.SetInRange(pda, store_dev, true);
  }
  net::StoreNode shelf_store(shelf, 64 * 1024 * 1024);
  net::StoreNode printer_store(printer, 64 * 1024 * 1024);
  discovery.Announce(&shelf_store);
  discovery.Announce(&printer_store);
  net::StoreClient client(network, discovery, pda);
  persist::FlashStore flash(pda, 8 * 1024 * 1024, network.clock());
  swap::IntentJournal journal(&flash);

  runtime::Runtime rt(1);
  const runtime::ClassInfo* cls = workload::RegisterNodeClass(rt);
  // Outlives the manager: ~SwappingManager unsubscribes from the bus.
  context::EventBus bus;
  swap::SwappingManager::Options options;
  options.replication_factor = kReplicationFactor;
  // No payload cache: every demand fault pays the real fetch path, so the
  // stall samples compare the tiers against the radio, not the cache.
  options.swap_in_cache_bytes = 0;
  swap::SwappingManager manager(rt, options);
  manager.AttachStore(&client, &discovery);
  manager.AttachBus(&bus);
  manager.AttachClock(&network.clock());
  manager.AttachLocalStore(&flash);
  manager.AttachIntentJournal(&journal);
  trace->tracer().BeginTrack(tiered ? "tiered" : "remote-only");
  trace->AttachClock(&network.clock());
  manager.AttachTelemetry(trace);

  tier::TierManager::Options tier_options;
  tier_options.mode = tier::TierMode::kAll;
  // Sized so roughly half the working set fits compressed in RAM and the
  // rest spills to flash: both local tiers show up in the fault profile.
  tier_options.ram_bytes = 2 * 1024;
  tier_options.flash_slot_bytes = 1024;
  tier_options.flash_slots = 512;
  tier::TierManager tiers(&flash, tier_options);
  if (tiered) manager.AttachTierManager(&tiers);

  swap::DurabilityMonitor monitor(manager, discovery, pda, bus, nullptr);

  std::vector<SwapClusterId> clusters = workload::BuildList(
      rt, &manager, cls, kClusters * kNodesPerCluster, kNodesPerCluster,
      "head");

  Run run;
  for (int round = 0; round < kRounds; ++round) {
    for (SwapClusterId id : clusters) {
      // Odd rounds dirty the cluster first: the clean re-adopt shortcut is
      // off the table and the full payload must move (to a tier or to the
      // radio) — the tier stack has to absorb real swap-out traffic, not
      // just serve a warm read cache.
      if (round % 2 == 1) manager.MarkDirty(id);
      OBISWAP_CHECK(manager.SwapOut(id).ok());
    }
    // The maintenance tick between swap-out and re-fault: tier write-backs
    // top every remote group up to K in the background.
    monitor.Poll();
    for (SwapClusterId id : clusters) {
      const uint64_t t0 = network.clock().now_us();
      OBISWAP_CHECK(manager.SwapIn(id).ok());
      run.stall_us.push_back(network.clock().now_us() - t0);
    }
  }
  // Final durability audit: leave the set swapped, let the sweep settle,
  // then count clusters whose remote group is short of K.
  for (SwapClusterId id : clusters) OBISWAP_CHECK(manager.SwapOut(id).ok());
  monitor.Poll();
  for (SwapClusterId id : clusters) {
    const swap::SwapClusterInfo* info = manager.registry().Find(id);
    const std::vector<swap::ReplicaLocation>* replicas =
        info != nullptr ? info->ActiveReplicas() : nullptr;
    size_t remote = 0;
    if (replicas != nullptr) {
      for (const swap::ReplicaLocation& replica : *replicas)
        if (replica.device != pda) ++remote;
    }
    if (remote < kReplicationFactor) ++run.replicas_short;
  }

  run.radio_bytes = network.stats().bytes_moved;
  run.flash_wear_bytes = flash.stats().bytes_written;
  run.ram_hits = tiers.stats().ram_hits;
  run.flash_hits = tiers.stats().flash_hits;
  run.demotions = tiers.stats().demotions;
  run.write_backs = tiers.stats().write_backs;
  auto sum = SumList(rt, "head");
  const int n = kClusters * kNodesPerCluster;
  run.values_intact = sum.ok() && *sum == int64_t{n} * (n - 1) / 2;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  benchjson::JsonWriter json;
  telemetry::Telemetry::Options trace_options;
  trace_options.tracer_capacity = 1 << 16;
  telemetry::Telemetry trace(trace_options);
  std::printf(
      "Tiered swap hierarchy: re-fault stalls, %d clusters x %d rounds, "
      "virtual us\n\n",
      kClusters, kRounds);

  Run remote = Measure(/*tiered=*/false, &trace);
  Run tiered = Measure(/*tiered=*/true, &trace);

  struct Row {
    const char* config;
    const Run* run;
  };
  const uint64_t p95_remote = Percentile(remote.stall_us, 95);
  const uint64_t p95_tiered = Percentile(tiered.stall_us, 95);
  std::printf("%12s %10s %10s %10s %12s %9s %10s %11s\n", "config", "p50 us",
              "p95 us", "max us", "radio B", "ram hits", "flash hits",
              "write-backs");
  for (const Row& row : {Row{"remote-only", &remote}, Row{"tiered", &tiered}}) {
    const Run& r = *row.run;
    std::printf("%12s %10llu %10llu %10llu %12llu %9llu %10llu %11llu\n",
                row.config, (unsigned long long)Percentile(r.stall_us, 50),
                (unsigned long long)Percentile(r.stall_us, 95),
                (unsigned long long)Percentile(r.stall_us, 100),
                (unsigned long long)r.radio_bytes,
                (unsigned long long)r.ram_hits,
                (unsigned long long)r.flash_hits,
                (unsigned long long)r.write_backs);
    json.BeginRow();
    json.Add("config", std::string(row.config));
    json.Add("p50_stall_us", Percentile(r.stall_us, 50));
    json.Add("p95_stall_us", Percentile(r.stall_us, 95));
    json.Add("max_stall_us", Percentile(r.stall_us, 100));
    json.Add("radio_bytes", r.radio_bytes);
    json.Add("flash_wear_bytes", r.flash_wear_bytes);
    json.Add("ram_hits", r.ram_hits);
    json.Add("flash_hits", r.flash_hits);
    json.Add("demotions", r.demotions);
    json.Add("write_backs", r.write_backs);
    json.Add("replicas_short_of_k", static_cast<uint64_t>(r.replicas_short));
    json.Add("values_intact", std::string(r.values_intact ? "yes" : "no"));
  }

  // The gates. A p95 of zero (pure RAM hits cost no virtual time) is the
  // best possible outcome — clamp the denominator so the ratio stays
  // finite.
  const double speedup = static_cast<double>(p95_remote) /
                         static_cast<double>(std::max<uint64_t>(p95_tiered, 1));
  const bool stall_gate = speedup >= 5.0;
  const bool radio_gate = tiered.radio_bytes < remote.radio_bytes;
  const bool durability_gate =
      tiered.replicas_short == 0 && remote.replicas_short == 0;
  const bool intact_gate = tiered.values_intact && remote.values_intact;
  std::printf(
      "\ngates: p95 %llu -> %llu us (%.1fx, need >= 5x) %s | radio %llu -> "
      "%llu B %s | replicas at K %s | values %s\n",
      (unsigned long long)p95_remote, (unsigned long long)p95_tiered, speedup,
      stall_gate ? "ok" : "FAIL", (unsigned long long)remote.radio_bytes,
      (unsigned long long)tiered.radio_bytes, radio_gate ? "ok" : "FAIL",
      durability_gate ? "ok" : "FAIL", intact_gate ? "ok" : "FAIL");

  json.BeginRow();
  json.Add("config", std::string("gate"));
  json.Add("p95_speedup", speedup);
  json.Add("stall_gate", std::string(stall_gate ? "ok" : "fail"));
  json.Add("radio_gate", std::string(radio_gate ? "ok" : "fail"));
  json.Add("durability_gate", std::string(durability_gate ? "ok" : "fail"));
  json.Add("values_gate", std::string(intact_gate ? "ok" : "fail"));

  benchjson::MaybeWriteJson(argc, argv, json, "BENCH_tier_hierarchy.json");
  if (!benchjson::MaybeWriteTrace(argc, argv, trace)) return 1;
  return stall_gate && radio_gate && durability_gate && intact_gate ? 0 : 1;
}
