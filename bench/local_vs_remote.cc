// Ablation: swapping to a nearby device vs parking on the local flash
// (Persistence module fallback). The paper prefers nearby devices — this
// quantifies when that wins: flash has no radio latency but slow writes,
// wears out, and consumes the device's own storage; Bluetooth pays latency
// + 700 Kbps but the bytes leave the device entirely.
//
// `--json [path]` additionally dumps the table to BENCH_local_vs_remote.json.
#include <cstdio>

#include "bench_json.h"
#include "obiswap/obiswap.h"
#include "workload/list_workload.h"

namespace {

using namespace obiswap;  // NOLINT

struct Run {
  double out_ms;
  double in_ms;
  uint64_t flash_wear_bytes;
  uint64_t radio_bytes;
};

Run Measure(int objects, bool remote, telemetry::Telemetry* trace) {
  net::Network network;
  net::Discovery discovery(network);
  DeviceId pda(1), shelf(2);
  network.AddDevice(pda);
  network.AddDevice(shelf);
  net::StoreNode store(shelf, 64 * 1024 * 1024);
  net::StoreClient client(network, discovery, pda);
  persist::FlashStore flash(pda, 64 * 1024 * 1024, network.clock());

  runtime::Runtime rt(1);
  const runtime::ClassInfo* cls = workload::RegisterNodeClass(rt);
  swap::SwappingManager manager(rt);
  trace->tracer().BeginTrack(std::string(remote ? "remote" : "flash") +
                             " n=" + std::to_string(objects));
  trace->AttachClock(&network.clock());
  manager.AttachTelemetry(trace);
  client.AttachTelemetry(trace);
  if (remote) {
    network.SetInRange(pda, shelf, true);
    discovery.Announce(&store);
    manager.AttachStore(&client, &discovery);
  } else {
    manager.AttachLocalStore(&flash);
  }

  auto clusters =
      workload::BuildList(rt, &manager, cls, objects, objects, "head");
  uint64_t t0 = network.clock().now_us();
  OBISWAP_CHECK(manager.SwapOut(clusters[0]).ok());
  uint64_t out_us = network.clock().now_us() - t0;
  t0 = network.clock().now_us();
  OBISWAP_CHECK(manager.SwapIn(clusters[0]).ok());
  uint64_t in_us = network.clock().now_us() - t0;
  return Run{out_us / 1000.0, in_us / 1000.0, flash.stats().bytes_written,
             network.stats().bytes_moved};
}

/// One demand fault served by each level of the tier hierarchy: where a
/// payload sits decides the whole stall. `tier` is "ram", "flash", or
/// "remote" (the heap row is the trivial baseline — the object never left).
uint64_t MeasureTierFetch(const std::string& tier, int objects,
                          uint64_t* bytes_on_radio,
                          telemetry::Telemetry* trace) {
  net::Network network;
  net::Discovery discovery(network);
  DeviceId pda(1), shelf(2);
  network.AddDevice(pda);
  network.AddDevice(shelf);
  network.SetInRange(pda, shelf, true);
  net::StoreNode store(shelf, 64 * 1024 * 1024);
  discovery.Announce(&store);
  net::StoreClient client(network, discovery, pda);
  persist::FlashStore flash(pda, 64 * 1024 * 1024, network.clock());
  swap::IntentJournal journal(&flash);

  runtime::Runtime rt(1);
  const runtime::ClassInfo* cls = workload::RegisterNodeClass(rt);
  // Outlives the manager: ~SwappingManager unsubscribes from the bus.
  context::EventBus bus;
  swap::SwappingManager::Options options;
  options.replication_factor = 1;
  options.swap_in_cache_bytes = 0;  // the fetch path, not the payload cache
  swap::SwappingManager manager(rt, options);
  manager.AttachStore(&client, &discovery);
  manager.AttachBus(&bus);
  manager.AttachClock(&network.clock());
  manager.AttachLocalStore(&flash);
  manager.AttachIntentJournal(&journal);
  trace->tracer().BeginTrack("tier=" + tier);
  trace->AttachClock(&network.clock());
  manager.AttachTelemetry(trace);

  tier::TierManager::Options tier_options;
  tier_options.mode = tier == "ram"     ? tier::TierMode::kRam
                      : tier == "flash" ? tier::TierMode::kFlash
                                        : tier::TierMode::kOff;
  tier_options.ram_bytes = 1 << 16;
  tier_options.flash_slot_bytes = 1024;
  tier_options.flash_slots = 512;
  tier::TierManager tiers(&flash, tier_options);
  manager.AttachTierManager(&tiers);
  swap::DurabilityMonitor monitor(manager, discovery, pda, bus, nullptr);

  auto clusters =
      workload::BuildList(rt, &manager, cls, objects, objects, "tier_head");
  OBISWAP_CHECK(manager.SwapOut(clusters[0]).ok());
  monitor.Poll();  // write the tier copy back so the replica group is whole
  const uint64_t t0 = network.clock().now_us();
  OBISWAP_CHECK(manager.SwapIn(clusters[0]).ok());
  *bytes_on_radio = network.stats().bytes_moved;
  return network.clock().now_us() - t0;
}

}  // namespace

int main(int argc, char** argv) {
  benchjson::JsonWriter json;
  telemetry::Telemetry::Options trace_options;
  trace_options.tracer_capacity = 1 << 16;
  telemetry::Telemetry trace(trace_options);
  std::printf(
      "Swap destination ablation: nearby store (Bluetooth 700 Kbps) vs "
      "local flash, virtual ms\n\n");
  std::printf("%8s %14s %14s %14s %14s %14s\n", "objects", "remote out",
              "remote in", "flash out", "flash in", "flash wear B");
  for (int objects : {20, 100, 500}) {
    Run remote = Measure(objects, /*remote=*/true, &trace);
    Run local = Measure(objects, /*remote=*/false, &trace);
    std::printf("%8d %14.1f %14.1f %14.1f %14.1f %14llu\n", objects,
                remote.out_ms, remote.in_ms, local.out_ms, local.in_ms,
                (unsigned long long)local.flash_wear_bytes);
    json.BeginRow();
    json.Add("objects", static_cast<int64_t>(objects));
    json.Add("remote_out_ms", remote.out_ms);
    json.Add("remote_in_ms", remote.in_ms);
    json.Add("remote_radio_bytes", remote.radio_bytes);
    json.Add("flash_out_ms", local.out_ms);
    json.Add("flash_in_ms", local.in_ms);
    json.Add("flash_wear_bytes", local.flash_wear_bytes);
  }
  // Per-tier breakdown: the same demand fault, served by each level of
  // the swap hierarchy. Rows carry tier="heap|ram|flash|remote" so the
  // JSON consumer can plot the fetch ladder directly.
  constexpr int kTierObjects = 100;
  std::printf("\nper-tier demand-fault fetch, %d objects:\n", kTierObjects);
  std::printf("%8s %14s %14s\n", "tier", "fetch us", "radio B");
  for (const char* level : {"heap", "ram", "flash", "remote"}) {
    uint64_t fetch_us = 0, radio_bytes = 0;
    if (std::string(level) != "heap")
      fetch_us = MeasureTierFetch(level, kTierObjects, &radio_bytes, &trace);
    std::printf("%8s %14llu %14llu\n", level, (unsigned long long)fetch_us,
                (unsigned long long)radio_bytes);
    json.BeginRow();
    json.Add("tier", std::string(level));
    json.Add("objects", static_cast<int64_t>(kTierObjects));
    json.Add("fetch_us", fetch_us);
    json.Add("radio_bytes", radio_bytes);
  }
  std::printf(
      "\nreading: flash avoids radio latency (wins at small clusters and "
      "slow links) but every\nswap-out wears the medium and occupies the "
      "device's own storage — the paper's vision of\nborrowing *other* "
      "devices' memory avoids both.\n");
  benchjson::MaybeWriteJson(argc, argv, json, "BENCH_local_vs_remote.json");
  if (!benchjson::MaybeWriteTrace(argc, argv, trace)) return 1;
  return 0;
}
