// §4 ablation: the assign() iteration optimization (paper tests B1 vs B2,
// extended to a wider swap-cluster-size sweep). The paper claims "the
// speed-up provided by the optimizations described is more than five-fold
// in all cases"; this harness measures the B1/B2 ratio and the proxy churn
// each variant generates.
#include <cstdio>
#include <memory>

#include "obiswap/obiswap.h"
#include "workload/list_workload.h"

namespace {

using namespace obiswap;  // NOLINT
using runtime::Object;
using runtime::Value;

constexpr int kListSize = 10000;
constexpr int kReps = 7;

struct Sample {
  double ms;
  uint64_t proxies_created;
};

Sample RunIteration(int cluster_size, bool assign) {
  runtime::Runtime rt(1);
  const runtime::ClassInfo* cls = workload::RegisterNodeClass(rt);
  swap::SwappingManager manager(rt);
  workload::BuildList(rt, &manager, cls, kListSize, cluster_size, "head");

  uint64_t created_before = 0;
  double ms = workload::MedianTimeMs(kReps, [&] {
    Result<Value> start =
        rt.Invoke(rt.GetGlobal("head")->ref(), "probe", {Value::Int(0)});
    OBISWAP_CHECK(start.ok());
    OBISWAP_CHECK(rt.SetGlobal("cur", *start).ok());
    if (assign) {
      OBISWAP_CHECK(manager.Assign(rt.GetGlobal("cur")->ref()).ok());
    }
    created_before = manager.stats().proxies_created;
    int steps = 0;
    for (;;) {
      Value cur = *rt.GetGlobal("cur");
      if (!cur.is_ref() || cur.ref() == nullptr) break;
      Result<Value> next = rt.Invoke(cur.ref(), "next");
      OBISWAP_CHECK(next.ok());
      OBISWAP_CHECK(rt.SetGlobal("cur", *next).ok());
      ++steps;
    }
    OBISWAP_CHECK(steps == kListSize);
  });
  return Sample{ms, manager.stats().proxies_created - created_before};
}

}  // namespace

int main() {
  workload::RunWithBigStack([] {
    std::printf(
        "assign() ablation (paper §4 / tests B1 vs B2), %d-object list\n\n",
        kListSize);
    std::printf("%8s %12s %12s %10s %16s %16s\n", "cluster", "B1 ms",
                "B2 ms", "speed-up", "B1 proxies/iter", "B2 proxies/iter");
    for (int size : {10, 20, 50, 100, 200, 500}) {
      Sample b1 = RunIteration(size, /*assign=*/false);
      Sample b2 = RunIteration(size, /*assign=*/true);
      std::printf("%8d %12.1f %12.1f %9.1fx %16.2f %16.2f\n", size, b1.ms,
                  b2.ms, b1.ms / b2.ms,
                  static_cast<double>(b1.proxies_created) / kListSize,
                  static_cast<double>(b2.proxies_created) / kListSize);
    }
    std::printf(
        "\npaper claim: B2 is >5x faster than B1 at every size because B1 "
        "creates (and the LGC\nreclaims) one cluster-0 proxy per returned "
        "reference while B2's proxy patches itself.\n");
  });
  return 0;
}
