// §5 memory-overhead claims: "a naive [approach] would have one proxy per
// each object and all references mediated by them. Common application
// objects are small. So, this could potentially double memory occupation
// when fully-loaded ... even when all objects were swapped, the proxies
// would still remain."
//
// Measures resident heap bytes for a 10000 x 64-byte list under three
// designs — no mediation, swap-clusters (sizes swept), and the naive
// per-object-surrogate baseline — both fully loaded and after swapping
// everything out.
#include <cstdio>
#include <memory>

#include "obiswap/obiswap.h"
#include "workload/list_workload.h"

namespace {

using namespace obiswap;  // NOLINT
using runtime::Object;
using runtime::Value;

constexpr int kListSize = 10000;

struct StoreWorld {
  StoreWorld()
      : network(1), discovery(network), store(DeviceId(2), 64 * 1024 * 1024),
        client(network, discovery, DeviceId(1)) {
    network.AddDevice(DeviceId(1));
    network.AddDevice(DeviceId(2));
    network.SetInRange(DeviceId(1), DeviceId(2), true);
    discovery.Announce(&store);
  }
  net::Network network;
  net::Discovery discovery;
  net::StoreNode store;
  net::StoreClient client;
};

size_t Collected(runtime::Runtime& rt) {
  rt.heap().Collect();
  rt.heap().Collect();
  return rt.heap().used_bytes();
}

}  // namespace

int main() {
  std::printf(
      "Memory overhead (paper §5 discussion): resident heap bytes for "
      "%d x 64-byte objects\n\n",
      kListSize);
  std::printf("%-28s %14s %14s %10s\n", "design", "fully loaded",
              "all swapped", "proxies");

  // --- no mediation (plain VM) ---------------------------------------------
  size_t baseline_bytes = 0;
  {
    runtime::Runtime rt(1);
    const runtime::ClassInfo* cls = workload::RegisterNodeClass(rt);
    workload::BuildList(rt, nullptr, cls, kListSize, kListSize, "head");
    baseline_bytes = Collected(rt);
    std::printf("%-28s %14zu %14s %10s\n", "no mediation", baseline_bytes,
                "-", "0");
  }

  // --- swap-clusters at the paper's sizes ------------------------------------
  for (int size : {20, 50, 100}) {
    StoreWorld world;
    runtime::Runtime rt(1);
    const runtime::ClassInfo* cls = workload::RegisterNodeClass(rt);
    swap::SwappingManager manager(rt);
    manager.AttachStore(&world.client, &world.discovery);
    auto clusters =
        workload::BuildList(rt, &manager, cls, kListSize, size, "head");
    size_t loaded = Collected(rt);
    for (SwapClusterId id : clusters) {
      Result<SwapKey> key = manager.SwapOut(id);
      OBISWAP_CHECK(key.ok());
    }
    size_t swapped = Collected(rt);
    std::string label = "swap-clusters/" + std::to_string(size);
    std::printf("%-28s %14zu %14zu %10llu   (+%.1f%% loaded vs none)\n",
                label.c_str(), loaded, swapped,
                (unsigned long long)manager.stats().proxies_created,
                100.0 * (static_cast<double>(loaded) -
                         static_cast<double>(baseline_bytes)) /
                    static_cast<double>(baseline_bytes));
  }

  // --- naive per-object surrogates ---------------------------------------------
  {
    StoreWorld world;
    runtime::Runtime rt(1);
    const runtime::ClassInfo* cls = workload::RegisterNodeClass(rt);
    baseline::NaiveProxyManager manager(rt);
    manager.AttachStore(&world.client, &world.discovery);
    workload::BuildList(rt, nullptr, cls, kListSize, kListSize, "head");
    size_t loaded = Collected(rt);

    // Swap every object out individually.
    std::vector<Object*> objects;
    rt.heap().ForEachObject([&](Object* obj) {
      if (obj->kind() == runtime::ObjectKind::kRegular) objects.push_back(obj);
    });
    OBISWAP_CHECK(manager.SwapOutObjects(objects).ok());
    size_t swapped = Collected(rt);
    std::printf("%-28s %14zu %14zu %10zu   (+%.1f%% loaded vs none)\n",
                "naive per-object surrogate", loaded, swapped,
                manager.LiveProxyCount(),
                100.0 * (static_cast<double>(loaded) -
                         static_cast<double>(baseline_bytes)) /
                    static_cast<double>(baseline_bytes));
  }

  std::printf(
      "\npaper's claims: naive ~doubles fully-loaded occupation for small "
      "objects and keeps\nits surrogates after swapping; swap-cluster "
      "proxies cost ~1/cluster-size and the\nswapped residue is just "
      "replacement-objects + inbound proxies.\n");
  return 0;
}
