// Figure 5 reproduction: "Performance penalty of Object-Swapping w.r.t.
// swap-cluster size and graph transversals."
//
// Four tests over a list of 10000 64-byte objects with quasi-empty methods,
// each run with swap-clusters of 20, 50 and 100 objects and with
// object-swapping disabled entirely (the NO SWAP-CLUSTERS lower bound):
//
//   A1 — recursive traversal passing an int depth; swap-cluster-proxies are
//        invoked only at the 10000/size boundary crossings.
//   A2 — A1 plus an inner recursion of depth 10 at every step that returns
//        a reference (discarded); every inner recursion that crosses a
//        boundary creates a swap-cluster-proxy that the LGC later reclaims.
//   B1 — full iteration with a global variable: every returned reference is
//        mediated by a *fresh* cluster-0 proxy (the §4 pathology).
//   B2 — B1 with the assign() optimization: the proxy patches itself.
//
// Paper values (ms): A1 43/38/36/35, A2 467/398/377/305, B1 339/331/296/36,
// B2 64/51/49/36 for sizes 20/50/100/none. We reproduce the *shape* — see
// EXPERIMENTS.md.
//
// `--json [path]` additionally dumps the grid to BENCH_fig5_traversal.json.
#include <cstdio>
#include <memory>
#include <optional>

#include "bench_json.h"
#include "obiswap/obiswap.h"
#include "workload/list_workload.h"

namespace {

using namespace obiswap;            // NOLINT
using runtime::Object;
using runtime::Value;
using workload::BuildList;
using workload::MedianTimeMs;
using workload::RegisterNodeClass;

constexpr int kListSize = 10000;
constexpr int kReps = 9;

/// One benchmark configuration: a runtime with (or without) the swapping
/// layer and the 10000-node list already built.
struct Config {
  explicit Config(std::optional<int> cluster_size) {
    rt = std::make_unique<runtime::Runtime>(1);
    node_cls = RegisterNodeClass(*rt);
    if (cluster_size.has_value()) {
      manager = std::make_unique<swap::SwappingManager>(*rt);
      BuildList(*rt, manager.get(), node_cls, kListSize, *cluster_size,
                "head");
    } else {
      BuildList(*rt, nullptr, node_cls, kListSize, kListSize, "head");
    }
  }

  Object* Head() { return rt->GetGlobal("head")->ref(); }

  std::unique_ptr<runtime::Runtime> rt;
  std::unique_ptr<swap::SwappingManager> manager;
  const runtime::ClassInfo* node_cls = nullptr;
};

double RunA1(Config& config) {
  // A1 is fast on modern hardware; amplify each sample to escape timer and
  // GC-scheduling noise, then report per-traversal time.
  constexpr int kInner = 20;
  return MedianTimeMs(kReps, [&] {
    for (int i = 0; i < kInner; ++i) {
      Result<Value> depth =
          config.rt->Invoke(config.Head(), "step", {Value::Int(0)});
      OBISWAP_CHECK(depth.ok());
      OBISWAP_CHECK(depth->as_int() == kListSize - 1);
    }
  }) / kInner;
}

double RunA2(Config& config) {
  return MedianTimeMs(kReps, [&] {
    Result<Value> depth =
        config.rt->Invoke(config.Head(), "walk", {Value::Int(0)});
    OBISWAP_CHECK(depth.ok());
    OBISWAP_CHECK(depth->as_int() == kListSize - 1);
  });
}

/// Full iteration with a global variable ("cur"), as in the paper's B
/// tests: each step invokes next() on the object behind the global and
/// re-assigns the global.
double RunB(Config& config, bool assign) {
  return MedianTimeMs(kReps, [&] {
    // Obtain a dedicated iteration reference (probe(0) returns a mediated
    // self-reference): assign() patches the proxy in place, so the loop
    // variable must not alias the head global's proxy.
    Result<Value> start =
        config.rt->Invoke(config.Head(), "probe", {Value::Int(0)});
    OBISWAP_CHECK(start.ok());
    OBISWAP_CHECK(config.rt->SetGlobal("cur", *start).ok());
    if (assign) {
      Object* cursor = config.rt->GetGlobal("cur")->ref();
      OBISWAP_CHECK(config.manager->Assign(cursor).ok());
    }
    int steps = 0;
    for (;;) {
      Value cur = *config.rt->GetGlobal("cur");
      if (!cur.is_ref() || cur.ref() == nullptr) break;
      Result<Value> next = config.rt->Invoke(cur.ref(), "next");
      OBISWAP_CHECK(next.ok());
      OBISWAP_CHECK(config.rt->SetGlobal("cur", *next).ok());
      ++steps;
    }
    OBISWAP_CHECK(steps == kListSize);
  });
}

}  // namespace

int main(int argc, char** argv) {
  benchjson::JsonWriter json;
  workload::RunWithBigStack([&json] {
    std::printf(
        "Figure 5: Performance penalty of Object-Swapping w.r.t. "
        "swap-cluster size and graph transversals\n");
    std::printf("list: %d objects x 64 bytes, %d reps, median wall ms\n\n",
                kListSize, kReps);

    const std::optional<int> kSizes[] = {20, 50, 100, std::nullopt};
    double results[4][4] = {};

    for (int col = 0; col < 4; ++col) {
      {
        Config config(kSizes[col]);
        results[0][col] = RunA1(config);
        results[1][col] = RunA2(config);
      }
      {
        // Fresh graph for the B tests (A2 leaves proxy garbage behind).
        Config config(kSizes[col]);
        results[2][col] = RunB(config, /*assign=*/false);
        if (kSizes[col].has_value()) {
          results[3][col] = RunB(config, /*assign=*/true);
        } else {
          results[3][col] = RunB(config, /*assign=*/false);
        }
      }
    }

    const char* kRowNames[] = {"A1", "A2", "B1", "B2"};
    const double kPaper[4][4] = {{43, 38, 36, 35},
                                 {467, 398, 377, 305},
                                 {339, 331, 296, 36},
                                 {64, 51, 49, 36}};

    for (int row = 0; row < 4; ++row) {
      for (int col = 0; col < 4; ++col) {
        json.BeginRow();
        json.Add("test", std::string(kRowNames[row]));
        json.Add("cluster_size",
                 static_cast<int64_t>(kSizes[col].value_or(0)));
        json.Add("measured_ms", results[row][col]);
        json.Add("paper_ms", kPaper[row][col]);
      }
    }

    std::printf("%-6s %10s %10s %10s %16s\n", "test", "20", "50", "100",
                "NO SWAP-CLUSTERS");
    for (int row = 0; row < 4; ++row) {
      std::printf("%-6s %10.1f %10.1f %10.1f %16.1f\n", kRowNames[row],
                  results[row][0], results[row][1], results[row][2],
                  results[row][3]);
      std::printf("%-6s %10.0f %10.0f %10.0f %16.0f   (paper, iPAQ 3360)\n",
                  "", kPaper[row][0], kPaper[row][1], kPaper[row][2],
                  kPaper[row][3]);
    }

    std::printf("\nshape checks (measured):\n");
    auto overhead = [&](int row, int col) {
      return 100.0 * (results[row][col] - results[row][3]) / results[row][3];
    };
    std::printf(
        "  A1 overhead vs no-swap: %+.0f%% (20), %+.0f%% (50), %+.0f%% "
        "(100)  [paper max +16%%, shrinking]\n",
        overhead(0, 0), overhead(0, 1), overhead(0, 2));
    std::printf(
        "  A2 overhead vs no-swap: %+.0f%% (20), %+.0f%% (50), %+.0f%% "
        "(100)  [paper max +53%%, shrinking]\n",
        overhead(1, 0), overhead(1, 1), overhead(1, 2));
    std::printf(
        "  B1 overhead vs no-swap: %+.0f%% (20), %+.0f%% (50), %+.0f%% "
        "(100)  [paper ~+800%%, roughly flat]\n",
        overhead(2, 0), overhead(2, 1), overhead(2, 2));
    std::printf(
        "  B2 speed-up over B1:    %.1fx (20), %.1fx (50), %.1fx (100)  "
        "[paper >5x in all cases]\n",
        results[2][0] / results[3][0], results[2][1] / results[3][1],
        results[2][2] / results[3][2]);
  });
  benchjson::MaybeWriteJson(argc, argv, json, "BENCH_fig5_traversal.json");
  return 0;
}
