// §5/§6 comparison: object-swapping vs the naive per-object migration
// baseline (related work [1,5,6]) vs in-heap compression (related work
// [2,3]).
//
// Scenario: a PDA must evict a 1000-object region of its heap. For each
// design we report: host CPU time to evict (the paper's energy argument —
// compression burns CPU), virtual network time on the 700 Kbps link,
// store round-trips, heap bytes actually freed, and host CPU time to bring
// the data back.
//
// `--json [path]` additionally dumps the table to BENCH_baseline_compare.json.
#include <cstdio>
#include <vector>

#include "bench_json.h"
#include "obiswap/obiswap.h"
#include "workload/list_workload.h"

namespace {

using namespace obiswap;  // NOLINT
using runtime::Object;
using runtime::Value;
using workload::TimeMs;

constexpr int kListSize = 1000;
constexpr int kClusterSize = 50;

struct StoreWorld {
  StoreWorld()
      : network(1), discovery(network), store(DeviceId(2), 64 * 1024 * 1024),
        client(network, discovery, DeviceId(1)) {
    network.AddDevice(DeviceId(1));
    network.AddDevice(DeviceId(2));
    network.SetInRange(DeviceId(1), DeviceId(2), true);
    discovery.Announce(&store);
  }
  net::Network network;
  net::Discovery discovery;
  net::StoreNode store;
  net::StoreClient client;
};

struct Row {
  const char* name;
  double evict_host_ms;
  double network_virtual_ms;
  uint64_t round_trips;
  long long bytes_freed;
  double restore_host_ms;
  double restore_network_ms;
};

void Print(const Row& row, benchjson::JsonWriter& json) {
  std::printf("%-26s %12.2f %12.1f %8llu %12lld %12.2f %12.1f\n", row.name,
              row.evict_host_ms, row.network_virtual_ms,
              (unsigned long long)row.round_trips, row.bytes_freed,
              row.restore_host_ms, row.restore_network_ms);
  json.BeginRow();
  json.Add("design", std::string(row.name));
  json.Add("evict_host_ms", row.evict_host_ms);
  json.Add("evict_network_ms", row.network_virtual_ms);
  json.Add("round_trips", row.round_trips);
  json.Add("bytes_freed", static_cast<int64_t>(row.bytes_freed));
  json.Add("restore_host_ms", row.restore_host_ms);
  json.Add("restore_network_ms", row.restore_network_ms);
}

int64_t VerifySum(runtime::Runtime& rt, const std::string& global) {
  Value cursor = *rt.GetGlobal(global);
  int64_t sum = 0;
  while (cursor.is_ref() && cursor.ref() != nullptr) {
    sum += rt.Invoke(cursor.ref(), "get_value")->as_int();
    cursor = *rt.Invoke(cursor.ref(), "next");
  }
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  benchjson::JsonWriter json;
  const int64_t expected = int64_t{kListSize} * (kListSize - 1) / 2;
  std::printf(
      "Baseline comparison (§5/§6): evicting a %d-object region "
      "(clusters of %d)\n\n",
      kListSize, kClusterSize);
  std::printf("%-26s %12s %12s %8s %12s %12s %12s\n", "design",
              "evict ms", "net ms(v)", "trips", "bytes freed", "restore ms",
              "net ms(v)");

  // --- object-swapping (this paper) ---------------------------------------
  std::fprintf(stderr, "[progress] starting: object-swapping (this paper)\n");
  {
    StoreWorld world;
    runtime::Runtime rt(1);
    const runtime::ClassInfo* cls = workload::RegisterNodeClass(rt);
    swap::SwappingManager manager(rt);
    manager.AttachStore(&world.client, &world.discovery);
    auto clusters =
        workload::BuildList(rt, &manager, cls, kListSize, kClusterSize,
                            "head");
    rt.heap().Collect();
    size_t before = rt.heap().used_bytes();
    uint64_t clock0 = world.network.clock().now_us();
    double evict_ms = TimeMs([&] {
      for (SwapClusterId id : clusters) {
        OBISWAP_CHECK(manager.SwapOut(id).ok());
      }
      rt.heap().Collect();
    });
    uint64_t evict_net = world.network.clock().now_us() - clock0;
    long long freed = static_cast<long long>(before) -
                      static_cast<long long>(rt.heap().used_bytes());
    uint64_t trips = manager.stats().swap_outs;
    clock0 = world.network.clock().now_us();
    double restore_ms = TimeMs([&] {
      OBISWAP_CHECK(VerifySum(rt, "head") == expected);
    });
    uint64_t restore_net = world.network.clock().now_us() - clock0;
    Print(Row{"object-swapping", evict_ms, evict_net / 1000.0, trips, freed,
              restore_ms, restore_net / 1000.0}, json);
  }

  // --- object-swapping + lz77 payloads ---------------------------------------
  std::fprintf(stderr, "[progress] starting: object-swapping + lz77 payloads\n");
  {
    StoreWorld world;
    runtime::Runtime rt(1);
    const runtime::ClassInfo* cls = workload::RegisterNodeClass(rt);
    swap::SwappingManager::Options options;
    options.codec = "lz77";
    swap::SwappingManager manager(rt, options);
    manager.AttachStore(&world.client, &world.discovery);
    auto clusters =
        workload::BuildList(rt, &manager, cls, kListSize, kClusterSize,
                            "head");
    rt.heap().Collect();
    size_t before = rt.heap().used_bytes();
    uint64_t clock0 = world.network.clock().now_us();
    double evict_ms = TimeMs([&] {
      for (SwapClusterId id : clusters) {
        OBISWAP_CHECK(manager.SwapOut(id).ok());
      }
      rt.heap().Collect();
    });
    uint64_t evict_net = world.network.clock().now_us() - clock0;
    long long freed = static_cast<long long>(before) -
                      static_cast<long long>(rt.heap().used_bytes());
    clock0 = world.network.clock().now_us();
    double restore_ms = TimeMs([&] {
      OBISWAP_CHECK(VerifySum(rt, "head") == expected);
    });
    uint64_t restore_net = world.network.clock().now_us() - clock0;
    Print(Row{"object-swapping + lz77", evict_ms, evict_net / 1000.0,
              manager.stats().swap_outs, freed, restore_ms,
              restore_net / 1000.0}, json);
  }

  // --- naive per-object migration ----------------------------------------------
  std::fprintf(stderr, "[progress] starting: naive per-object migration\n");
  {
    StoreWorld world;
    runtime::Runtime rt(1);
    const runtime::ClassInfo* cls = workload::RegisterNodeClass(rt);
    baseline::NaiveProxyManager manager(rt);
    manager.AttachStore(&world.client, &world.discovery);
    workload::BuildList(rt, nullptr, cls, kListSize, kListSize, "head");
    rt.heap().Collect();
    size_t before = rt.heap().used_bytes();
    std::vector<Object*> objects;
    rt.heap().ForEachObject([&](Object* obj) {
      if (obj->kind() == runtime::ObjectKind::kRegular) objects.push_back(obj);
    });
    uint64_t clock0 = world.network.clock().now_us();
    double evict_ms = TimeMs([&] {
      OBISWAP_CHECK(manager.SwapOutObjects(objects).ok());
      rt.heap().Collect();
    });
    uint64_t evict_net = world.network.clock().now_us() - clock0;
    long long freed = static_cast<long long>(before) -
                      static_cast<long long>(rt.heap().used_bytes());
    uint64_t trips = manager.stats().store_round_trips;
    clock0 = world.network.clock().now_us();
    double restore_ms = TimeMs([&] {
      OBISWAP_CHECK(VerifySum(rt, "head") == expected);
    });
    uint64_t restore_net = world.network.clock().now_us() - clock0;
    Print(Row{"naive per-object migration", evict_ms, evict_net / 1000.0,
              trips, freed, restore_ms, restore_net / 1000.0}, json);
  }

  // --- in-heap compression -----------------------------------------------------
  std::fprintf(stderr, "[progress] starting: in-heap compression\n");
  {
    runtime::Runtime rt(1);
    const runtime::ClassInfo* cls = workload::RegisterNodeClass(rt);
    baseline::CompressionSwapper swapper(rt, "lz77");
    workload::BuildList(rt, nullptr, cls, kListSize, kListSize, "head");
    rt.heap().Collect();
    size_t before = rt.heap().used_bytes();
    double evict_ms = TimeMs([&] {
      OBISWAP_CHECK(swapper.CompressGlobal("head").ok());
      rt.heap().Collect();
    });
    long long freed = static_cast<long long>(before) -
                      static_cast<long long>(rt.heap().used_bytes());
    double restore_ms = TimeMs([&] {
      OBISWAP_CHECK(swapper.DecompressGlobal("head").ok());
      OBISWAP_CHECK(VerifySum(rt, "head") == expected);
    });
    Print(Row{"in-heap compression (lz77)", evict_ms, 0.0, 0, freed,
              restore_ms, 0.0}, json);
  }

  std::printf(
      "\npaper's expectations: swapping frees (almost) everything for one "
      "round-trip per cluster;\nthe migration baseline pays a round-trip "
      "per OBJECT (latency-bound on Bluetooth) and keeps\nits surrogates; "
      "compression needs no network but burns CPU (energy) and leaves the "
      "compressed\npool resident.\n");
  benchjson::MaybeWriteJson(argc, argv, json, "BENCH_baseline_compare.json");
  return 0;
}
