// §2 supplement (Communication Services cost): XML serialization /
// deserialization throughput for cluster documents, XML parse/write, and
// the payload codecs. Uses google-benchmark.
#include <benchmark/benchmark.h>

#include "obiswap/obiswap.h"
#include "workload/list_workload.h"

namespace {

using namespace obiswap;  // NOLINT
using runtime::LocalScope;
using runtime::Object;
using runtime::Value;

/// Builds a self-contained cluster of `n` nodes and returns (runtime, members).
struct ClusterGraph {
  explicit ClusterGraph(int n) : scope(rt.heap()) {
    cls = workload::RegisterNodeClass(rt);
    Object* prev = nullptr;
    for (int i = 0; i < n; ++i) {
      Object* node = rt.New(cls);
      scope.Add(node);
      OBISWAP_CHECK(rt.SetField(node, "value", Value::Int(i)).ok());
      if (prev != nullptr) {
        OBISWAP_CHECK(rt.SetField(prev, "next", Value::Ref(node)).ok());
      }
      members.push_back(node);
      prev = node;
    }
  }

  Result<serialization::SerializedCluster> Serialize() {
    auto describe = [](Object*) -> Result<serialization::ExternalRef> {
      return InternalError("self-contained");
    };
    return serialization::SerializeCluster(rt, 1, members, describe);
  }

  runtime::Runtime rt{1};
  LocalScope scope;
  const runtime::ClassInfo* cls = nullptr;
  std::vector<Object*> members;
};

void BM_SerializeCluster(benchmark::State& state) {
  ClusterGraph graph(static_cast<int>(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    auto serialized = graph.Serialize();
    OBISWAP_CHECK(serialized.ok());
    bytes = serialized->payload.size();
    benchmark::DoNotOptimize(serialized->payload);
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes) *
                          static_cast<int64_t>(state.iterations()));
  state.counters["doc_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_SerializeCluster)->Arg(20)->Arg(50)->Arg(100)->Arg(500);

void BM_DeserializeCluster(benchmark::State& state) {
  ClusterGraph graph(static_cast<int>(state.range(0)));
  auto serialized = graph.Serialize();
  OBISWAP_CHECK(serialized.ok());
  auto resolve = [](const serialization::ExternalRef&) -> Result<Object*> {
    return InternalError("self-contained");
  };
  runtime::Runtime target(2);
  workload::RegisterNodeClass(target);
  serialization::DeserializeOptions options;
  options.expected_id = 1;
  for (auto _ : state) {
    auto members = serialization::DeserializeCluster(target, serialized->payload,
                                                     options, resolve);
    OBISWAP_CHECK(members.ok());
    benchmark::DoNotOptimize(members);
    state.PauseTiming();
    target.heap().Collect();  // keep the heap from accumulating copies
    state.ResumeTiming();
  }
  state.SetBytesProcessed(static_cast<int64_t>(serialized->payload.size()) *
                          static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_DeserializeCluster)->Arg(20)->Arg(100)->Arg(500);

void BM_XmlParse(benchmark::State& state) {
  ClusterGraph graph(static_cast<int>(state.range(0)));
  auto serialized = graph.Serialize();
  OBISWAP_CHECK(serialized.ok());
  for (auto _ : state) {
    auto doc = xml::Parse(serialized->payload);
    OBISWAP_CHECK(doc.ok());
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(serialized->payload.size()) *
                          static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_XmlParse)->Arg(100)->Arg(500);

void BM_CodecCompress(benchmark::State& state) {
  ClusterGraph graph(200);
  auto serialized = graph.Serialize();
  OBISWAP_CHECK(serialized.ok());
  const compress::Codec* codec =
      compress::FindCodec(state.range(0) == 0 ? "rle" : "lz77");
  size_t out_bytes = 0;
  for (auto _ : state) {
    auto compressed = codec->Compress(serialized->payload);
    OBISWAP_CHECK(compressed.ok());
    out_bytes = compressed->size();
    benchmark::DoNotOptimize(compressed);
  }
  state.SetBytesProcessed(static_cast<int64_t>(serialized->payload.size()) *
                          static_cast<int64_t>(state.iterations()));
  state.counters["ratio"] =
      static_cast<double>(serialized->payload.size()) /
      static_cast<double>(out_bytes);
  state.SetLabel(codec->name());
}
BENCHMARK(BM_CodecCompress)->Arg(0)->Arg(1);

void BM_CodecDecompress(benchmark::State& state) {
  ClusterGraph graph(200);
  auto serialized = graph.Serialize();
  OBISWAP_CHECK(serialized.ok());
  const compress::Codec* codec = compress::FindCodec("lz77");
  auto compressed_result = codec->Compress(serialized->payload);
  OBISWAP_CHECK(compressed_result.ok());
  std::string compressed = std::move(*compressed_result);
  for (auto _ : state) {
    auto restored = codec->Decompress(compressed);
    OBISWAP_CHECK(restored.ok());
    benchmark::DoNotOptimize(restored);
  }
  state.SetBytesProcessed(static_cast<int64_t>(serialized->payload.size()) *
                          static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CodecDecompress);

}  // namespace

BENCHMARK_MAIN();
