// Churn recovery: how the durability layer (K-replica placement + the
// DurabilityMonitor) responds when store devices permanently wander off.
//
// The harness swaps a clustered list out across a pool of stores, then
// repeatedly kills one store (silent departure — the monitor must notice
// via missed polls) while a fresh store joins. Swept over the replication
// factor K and the churn period (virtual time between departures). Emits:
//
//   * replicas lost      — replica records that died with departed stores
//   * re-replicated KB   — payload bytes copied to restore K
//   * recovery ms        — mean virtual time from a departure to the point
//                          every surviving cluster is back at K replicas
//                          (includes the miss-threshold detection window)
//   * clusters lost      — swapped clusters that cannot be swapped in after
//                          the run (all replicas gone = real data loss)
//
// Expected shape: K=1 turns every unlucky departure into a lost cluster;
// K>=2 converts departures into bounded recovery latency and extra radio
// bytes, with zero loss as long as the churn period exceeds the detection +
// re-replication time.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_json.h"
#include "obiswap/obiswap.h"
#include "workload/list_workload.h"

namespace {

using namespace obiswap;  // NOLINT

constexpr int kObjects = 160;
constexpr int kPerCluster = 20;
constexpr int kStorePool = 4;
constexpr int kDepartures = 6;
constexpr uint64_t kPollUs = 250'000;  // monitor cadence: 4 Hz virtual
constexpr size_t kStoreCapacity = 8 * 1024 * 1024;

struct RunResult {
  uint64_t replicas_lost = 0;
  uint64_t re_replicated_bytes = 0;
  double mean_recovery_ms = 0.0;
  int recovered_departures = 0;
  int clusters_lost = 0;
};

RunResult RunChurn(size_t replication_factor, uint64_t churn_period_us,
                   telemetry::Telemetry* trace) {
  net::Network network(11);
  net::Discovery discovery(network);
  DeviceId pda(1);
  network.AddDevice(pda);

  runtime::Runtime rt(1);
  const runtime::ClassInfo* cls = workload::RegisterNodeClass(rt);
  swap::SwappingManager::Options options;
  options.replication_factor = replication_factor;
  swap::SwappingManager manager(rt, options);
  net::StoreClient client(network, discovery, pda);
  context::EventBus bus;
  manager.AttachStore(&client, &discovery);
  manager.AttachBus(&bus);
  trace->tracer().BeginTrack("churn K=" + std::to_string(replication_factor) +
                             " period_s=" +
                             std::to_string(churn_period_us / 1000000));
  trace->AttachClock(&network.clock());
  manager.AttachTelemetry(trace);
  client.AttachTelemetry(trace);
  swap::DurabilityMonitor monitor(manager, discovery, pda, bus);

  std::vector<std::unique_ptr<net::StoreNode>> stores;
  std::vector<bool> departed;
  uint32_t next_device = 2;
  auto add_store = [&]() {
    DeviceId device(next_device++);
    network.AddDevice(device);
    network.SetInRange(pda, device, true);
    stores.push_back(std::make_unique<net::StoreNode>(device, kStoreCapacity));
    departed.push_back(false);
    discovery.Announce(stores.back().get());
  };
  for (int i = 0; i < kStorePool; ++i) add_store();

  auto clusters =
      workload::BuildList(rt, &manager, cls, kObjects, kPerCluster, "head");
  for (SwapClusterId id : clusters) OBISWAP_CHECK(manager.SwapOut(id).ok());
  monitor.Poll();

  auto all_at_full_k = [&]() {
    for (SwapClusterId id : clusters) {
      const swap::SwapClusterInfo* info = manager.registry().Find(id);
      if (info->state != swap::SwapState::kSwapped) continue;
      if (info->replicas.empty()) continue;  // unrecoverable, not "healing"
      if (info->replicas.size() < replication_factor) return false;
    }
    return true;
  };

  RunResult result;
  double recovery_ms_total = 0.0;
  for (int round = 0; round < kDepartures; ++round) {
    // The live store holding the most payload departs, silently; a fresh
    // (empty) store joins at the same moment.
    size_t victim = 0;
    size_t victim_entries = 0;
    for (size_t i = 0; i < stores.size(); ++i) {
      if (departed[i]) continue;
      if (stores[i]->entry_count() >= victim_entries) {
        victim = i;
        victim_entries = stores[i]->entry_count();
      }
    }
    network.RemoveDevice(stores[victim]->device());
    departed[victim] = true;
    add_store();

    uint64_t departure_at = network.clock().now_us();
    bool recovered = false;
    while (network.clock().now_us() - departure_at < churn_period_us) {
      network.clock().Advance(kPollUs);
      monitor.Poll();
      if (!recovered && all_at_full_k()) {
        recovered = true;
        recovery_ms_total +=
            (network.clock().now_us() - departure_at) / 1000.0;
        ++result.recovered_departures;
        // Idle out the rest of the period (no work left to do).
      }
    }
  }

  for (SwapClusterId id : clusters) {
    if (manager.StateOf(id) != swap::SwapState::kSwapped) continue;
    if (!manager.SwapIn(id).ok()) ++result.clusters_lost;
  }
  result.replicas_lost = manager.stats().replicas_forgotten;
  result.re_replicated_bytes = manager.stats().bytes_re_replicated;
  result.mean_recovery_ms = result.recovered_departures > 0
                                ? recovery_ms_total /
                                      result.recovered_departures
                                : 0.0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  benchjson::JsonWriter json;
  telemetry::Telemetry::Options trace_options;
  trace_options.tracer_capacity = 1 << 16;
  telemetry::Telemetry trace(trace_options);
  std::printf(
      "Churn recovery: %d store departures, %d-store pool, %d clusters "
      "(poll every %.0f virtual ms, %d-poll miss threshold)\n\n",
      kDepartures, kStorePool, (kObjects + kPerCluster - 1) / kPerCluster,
      kPollUs / 1000.0, 3);
  std::printf("%3s %10s %14s %16s %14s %14s\n", "K", "period s",
              "replicas lost", "re-replic. KB", "recovery ms",
              "clusters lost");
  for (uint64_t period_us : {2'000'000ull, 10'000'000ull}) {
    for (size_t k : {1u, 2u, 3u}) {
      RunResult run = RunChurn(k, period_us, &trace);
      std::printf("%3zu %10.0f %14llu %16.1f %14.1f %14d\n", k,
                  period_us / 1e6, (unsigned long long)run.replicas_lost,
                  run.re_replicated_bytes / 1024.0, run.mean_recovery_ms,
                  run.clusters_lost);
      json.BeginRow();
      json.Add("replication_factor", static_cast<int64_t>(k));
      json.Add("churn_period_s", period_us / 1e6);
      json.Add("replicas_lost", run.replicas_lost);
      json.Add("re_replicated_bytes", run.re_replicated_bytes);
      json.Add("mean_recovery_ms", run.mean_recovery_ms);
      json.Add("clusters_lost", static_cast<int64_t>(run.clusters_lost));
    }
  }
  std::printf(
      "\nreading: K=1 has nothing to recover from — a departed store takes "
      "its clusters with it.\nK>=2 pays ~K transfers per swap-out plus the "
      "re-replication bytes above, and in exchange\nevery departure becomes "
      "bounded recovery latency (detection window + one store-to-store\n"
      "copy per lost replica) instead of data loss.\n");
  benchjson::MaybeWriteJson(argc, argv, json, "BENCH_churn_recovery.json");
  if (!benchjson::MaybeWriteTrace(argc, argv, trace)) return 1;
  return 0;
}
