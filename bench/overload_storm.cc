// Overload-storm gate: a correlated outage plus a demand-fault storm
// against tightly queued stores, with the overload controls on vs off.
//
// The scripted failure is the fleet's worst hour: steady swap activity, a
// correlated outage that silently kills a chunk of the store pool, then
// every device demand-faulting clusters while all the durability monitors
// re-replicate the dead replicas through the same surviving stores — whose
// admission queues are deliberately tightened to a couple of slots so the
// pool saturates and sheds. Both configurations face the identical storm;
// the only difference is the overload machinery:
//
//   controls-on:  a tight bounded queue with store-side priority shedding
//                 (demand > swap-out > hedge > prefetch > maintenance),
//                 per-store client retry budgets (retries earn tokens only
//                 from successes), and AIMD pacing of the repair sweep /
//                 tier write-back / prefetch drain. Excess load is refused
//                 with retry-after pushback, so demand delay stays bounded
//                 by the queue it is guaranteed a share of.
//   controls-off: the same service model but an effectively unbounded FIFO
//                 — nothing is ever refused, so the saturated pool absorbs
//                 every request and the backlog (and with it every demand
//                 fault's queueing delay) grows for as long as the storm
//                 offers more work than the survivors can serve. Retries
//                 are unbudgeted, repair sweeps open-loop.
//
// Gates (exit nonzero on failure; CI re-checks them from the JSON):
//   1. demand-fault p95 stall: controls-on must be >= 3x better than off —
//      shedding keeps the demand path's queue share and budgets stop the
//      backoff/retry-after sleeps from taxing every fault;
//   2. retry amplification (wire attempts / logical calls over the storm
//      window): <= 2.0 with controls on while the off run exceeds it — the
//      storm must not multiply itself through the radio;
//   3. recovery: both runs converge back to K with no cluster lost, and
//      the on run actually shed (the storm saturated the pool).
//
// `--json [path]` dumps the table to BENCH_overload_storm.json;
// `--trace=<path>` dumps the per-phase span trace.
#include <cstdio>
#include <string>

#include "bench_json.h"
#include "obiswap/obiswap.h"

namespace {

using namespace obiswap;  // NOLINT

constexpr size_t kDevices = 48;
constexpr size_t kStores = 16;
constexpr int kClustersPerDevice = 3;
constexpr int kObjectsPerCluster = 10;
// Three replicas per cluster: the outage injector refuses to orphan a
// cluster, and at K=2 almost every store pair backs one, so it can only
// find a couple of independent victims. K=3 lets the scripted outage
// actually take down the requested fraction of the pool.
constexpr size_t kReplicationFactor = 3;
constexpr int kSteadyRounds = 2;
constexpr double kOutageFraction = 0.75;
constexpr int kStormPolls = 12;
constexpr int kMaxRecoveryPolls = 400;
/// Six misses mark a silent store departed: the dead stores stay announced
/// for half the storm, so demand and re-replication traffic keep colliding
/// with them — and the unbudgeted baseline burns its full retry series
/// against every dead replica until detection finally prunes them.
constexpr int kMissThreshold = 6;

// The storm-mode service model: one service slot per store, with a service
// time past the pool's storm-time inter-arrival gap so the survivors are
// genuinely oversubscribed. The bounded configuration grants one waiting
// slot (demand keeps it, maintenance gets none); the unbounded baseline
// queues everything.
constexpr size_t kQueueConcurrency = 1;
constexpr size_t kQueueLimit = 1;
constexpr size_t kUnboundedQueueLimit = 1'000'000;
constexpr uint64_t kQueueServiceUs = 2'000'000;

constexpr double kStallGate = 3.0;          ///< off p95 / on p95 must reach
constexpr double kAmplificationGate = 2.0;  ///< on must stay under; off over

struct Run {
  fleet::StormReport storm;
  fleet::FleetReport report;        ///< final, post-recovery
  uint64_t storm_logical_calls = 0;  ///< storm-window StoreClient calls
  uint64_t storm_wire_attempts = 0;  ///< storm-window envelopes on the radio
  size_t stores_killed = 0;
  int recovery_polls = -1;  ///< -1: never converged
  bool build_ok = false;
};

double Amplification(const Run& run) {
  if (run.storm_logical_calls == 0) return 0.0;
  return static_cast<double>(run.storm_wire_attempts) /
         static_cast<double>(run.storm_logical_calls);
}

/// Steady rounds, tight queues, a correlated outage, the demand storm,
/// recovery to K — identical script for both configurations.
Run Exercise(bool controls_on, telemetry::Telemetry* trace) {
  Run run;
  fleet::FleetOptions options;
  options.devices = kDevices;
  options.stores = kStores;
  options.clusters_per_device = kClustersPerDevice;
  options.objects_per_cluster = kObjectsPerCluster;
  options.replication_factor = kReplicationFactor;
  options.miss_threshold = kMissThreshold;
  options.overload_controls = controls_on;
  fleet::FleetDriver driver(options);

  const char* tag = controls_on ? "controls-on" : "controls-off";
  Status built = driver.Build();
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n", built.ToString().c_str());
    return run;
  }
  run.build_ok = true;
  // The network — and the virtual clock the spans stamp from — exists
  // only after Build().
  trace->AttachClock(&driver.clock());
  {
    telemetry::ScopedSpan span(trace, std::string("build:") + tag, "storm");
    OBISWAP_CHECK(driver.RunRounds(kSteadyRounds).ok());
  }

  // Queues tighten only after the build/steady phase — setup traffic is
  // never queued, the storm alone runs against saturating stores. Both
  // configurations pay the same per-request service cost; only the
  // admission bound differs.
  net::StoreNode::QueueOptions queue;
  queue.enabled = true;
  queue.concurrency = kQueueConcurrency;
  queue.queue_limit = controls_on ? kQueueLimit : kUnboundedQueueLimit;
  queue.service_time_us = kQueueServiceUs;
  queue.priority_shedding = controls_on;
  driver.ConfigureStoreQueues(queue);

  run.stores_killed = driver.InjectCorrelatedOutage(kOutageFraction);
  fleet::FleetReport before = driver.Report();
  {
    telemetry::ScopedSpan span(trace, std::string("storm:") + tag, "storm");
    Result<fleet::StormReport> storm = driver.RunRecoveryStorm(kStormPolls);
    OBISWAP_CHECK(storm.ok());
    run.storm = *storm;
  }
  fleet::FleetReport after = driver.Report();
  run.storm_logical_calls = after.logical_calls - before.logical_calls;
  run.storm_wire_attempts = after.wire_attempts - before.wire_attempts;

  {
    telemetry::ScopedSpan span(trace, std::string("recover:") + tag,
                               "storm");
    Result<int> recovered = driver.RunUntilRecovered(kMaxRecoveryPolls);
    if (recovered.ok()) run.recovery_polls = *recovered;
  }
  run.report = driver.Report();
  return run;
}

void AddRow(benchjson::JsonWriter& json, const char* config, const Run& run) {
  const fleet::FleetReport& r = run.report;
  std::printf(
      "%-13s  %3zu/%3zu stores live  p95 stall %7llu us (max %llu)  "
      "%llu faults (%llu failed)  amp %.2f  sheds %llu  "
      "budget-stops %llu  recovery %d polls\n",
      config, r.live_stores, kStores,
      (unsigned long long)run.storm.p95_stall_us,
      (unsigned long long)run.storm.max_stall_us,
      (unsigned long long)run.storm.demand_faults,
      (unsigned long long)run.storm.demand_failures, Amplification(run),
      (unsigned long long)r.store_sheds,
      (unsigned long long)r.retry_budget_exhausted, run.recovery_polls);
  json.BeginRow();
  json.Add("config", std::string(config));
  json.Add("devices", static_cast<uint64_t>(kDevices));
  json.Add("stores", static_cast<uint64_t>(kStores));
  json.Add("live_stores", static_cast<uint64_t>(r.live_stores));
  json.Add("stores_killed", static_cast<uint64_t>(run.stores_killed));
  json.Add("storm_polls", static_cast<int64_t>(run.storm.polls));
  json.Add("demand_faults", run.storm.demand_faults);
  json.Add("demand_failures", run.storm.demand_failures);
  json.Add("p95_stall_us", run.storm.p95_stall_us);
  json.Add("max_stall_us", run.storm.max_stall_us);
  json.Add("total_stall_us", run.storm.total_stall_us);
  json.Add("storm_logical_calls", run.storm_logical_calls);
  json.Add("storm_wire_attempts", run.storm_wire_attempts);
  json.Add("retry_amplification", Amplification(run));
  json.Add("client_pushbacks", r.client_pushbacks);
  json.Add("store_sheds", r.store_sheds);
  json.Add("shed_demand", r.store_sheds_by_class[0]);
  json.Add("shed_swap_out", r.store_sheds_by_class[1]);
  json.Add("shed_hedge", r.store_sheds_by_class[2]);
  json.Add("shed_prefetch", r.store_sheds_by_class[3]);
  json.Add("shed_maintenance", r.store_sheds_by_class[4]);
  json.Add("queue_wait_us", r.queue_wait_us);
  json.Add("max_queue_depth", r.max_queue_depth);
  json.Add("retry_budget_exhausted", r.retry_budget_exhausted);
  json.Add("repairs_paced", r.repairs_paced);
  json.Add("recovery_polls", static_cast<int64_t>(run.recovery_polls));
  json.Add("clusters_below_k", static_cast<uint64_t>(r.clusters_below_k));
  json.Add("clusters_lost", static_cast<uint64_t>(r.clusters_lost));
  json.Add("virtual_us", r.virtual_us);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "overload_storm: %zu devices x %zu stores, K=%zu, %d%% correlated "
      "outage,\n%d-poll demand storm against %zu+%zu-slot store queues "
      "(%llu us service)\n\n",
      kDevices, kStores, kReplicationFactor,
      static_cast<int>(kOutageFraction * 100), kStormPolls,
      kQueueConcurrency, kQueueLimit, (unsigned long long)kQueueServiceUs);

  telemetry::Telemetry trace;
  benchjson::JsonWriter json;
  Run on = Exercise(/*controls_on=*/true, &trace);
  Run off = Exercise(/*controls_on=*/false, &trace);
  if (!on.build_ok || !off.build_ok) return 1;
  AddRow(json, "controls-on", on);
  AddRow(json, "controls-off", off);

  // Gate 1: demand-fault p95 stall, on vs off.
  const double on_p95 =
      static_cast<double>(on.storm.p95_stall_us > 0 ? on.storm.p95_stall_us
                                                    : 1);
  const double stall_ratio =
      static_cast<double>(off.storm.p95_stall_us) / on_p95;
  const bool stall_gate =
      off.storm.p95_stall_us > 0 && stall_ratio >= kStallGate;

  // Gate 2: retry amplification over the storm window.
  const double on_amp = Amplification(on);
  const double off_amp = Amplification(off);
  const bool amplification_gate = on_amp > 0.0 &&
                                  on_amp <= kAmplificationGate &&
                                  off_amp > kAmplificationGate;

  // Gate 3: the storm was real (the pool shed under controls-on) and both
  // runs still converged back to K without losing a cluster.
  const bool recovery_gate =
      on.report.store_sheds > 0 && on.recovery_polls >= 0 &&
      off.recovery_polls >= 0 && on.report.clusters_below_k == 0 &&
      on.report.clusters_lost == 0 && off.report.clusters_below_k == 0 &&
      off.report.clusters_lost == 0;

  std::printf(
      "\ngates: p95 stall off/on %.2fx (need >= %.1fx) %s | amplification "
      "on %.2f (need <= %.1f) vs off %.2f (need > %.1f) %s | sheds %llu, "
      "recovered on=%d off=%d polls, lost %zu/%zu %s\n",
      stall_ratio, kStallGate, stall_gate ? "ok" : "FAIL", on_amp,
      kAmplificationGate, off_amp, kAmplificationGate,
      amplification_gate ? "ok" : "FAIL",
      (unsigned long long)on.report.store_sheds, on.recovery_polls,
      off.recovery_polls, on.report.clusters_lost, off.report.clusters_lost,
      recovery_gate ? "ok" : "FAIL");

  json.BeginRow();
  json.Add("config", std::string("gate"));
  json.Add("stall_ratio", stall_ratio);
  json.Add("on_amplification", on_amp);
  json.Add("off_amplification", off_amp);
  json.Add("stall_gate", std::string(stall_gate ? "ok" : "fail"));
  json.Add("amplification_gate",
           std::string(amplification_gate ? "ok" : "fail"));
  json.Add("recovery_gate", std::string(recovery_gate ? "ok" : "fail"));

  benchjson::MaybeWriteJson(argc, argv, json, "BENCH_overload_storm.json");
  if (!benchjson::MaybeWriteTrace(argc, argv, trace)) return 1;
  return stall_gate && amplification_gate && recovery_gate ? 0 : 1;
}
