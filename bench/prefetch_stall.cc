// Predictive prefetch: demand-fault stall on list traversals, swept over
// predictor confidence x prefetch budget x mode.
//
// Two workloads over a clustered list (the paper's §5 shape, scaled down):
//
//   sequential — learn one pass with everything loaded, swap every cluster
//     out, traverse once. The transition graph is a perfect chain, so full
//     prefetch should collapse N demand faults into 1 (the first), with the
//     rest speculatively loaded ahead of the cursor.
//   cyclic — shrink the heap so only ~2/3 of the list fits, install the
//     pressure handler, and loop passes over the list. The working set
//     cycles through the heap; prefetch races the cursor under real memory
//     pressure, where the headroom gates decide between staging payloads
//     into the cache and full speculative swap-in.
//
// Headline check (printed at the end): with full prefetch the sequential
// workload's demand-fault swap-ins drop >= 50% vs. prefetch off, and the
// total prefetch waste stays within the configured budget.
//
// `--json [path]` dumps the sweep to BENCH_prefetch_stall.json.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "obiswap/obiswap.h"
#include "workload/list_workload.h"

namespace {

using namespace obiswap;  // NOLINT

constexpr int kNodes = 240;
constexpr int kPerCluster = 20;  // -> 12 swap-clusters
constexpr int64_t kExpectedSum =
    static_cast<int64_t>(kNodes) * (kNodes - 1) / 2;
// Smaller than the 12-cluster working set (~2 payloads), so cache-mode
// staging actually has to fetch — swap-out's own cache inserts cover only
// the most recent clusters.
constexpr size_t kCacheBytes = 8 * 1024;

struct StoreWorld {
  StoreWorld()
      : network(1), discovery(network), store(DeviceId(2), 256 * 1024 * 1024),
        client(network, discovery, DeviceId(1)) {
    network.AddDevice(DeviceId(1));
    network.AddDevice(DeviceId(2));
    network.SetInRange(DeviceId(1), DeviceId(2), true);
    discovery.Announce(&store);
  }
  net::Network network;
  net::Discovery discovery;
  net::StoreNode store;
  net::StoreClient client;
};

// Global-cursor iteration (the paper's pattern: loop variables live in
// swap-cluster-0), summing get_value along the list.
int64_t TraverseSum(runtime::Runtime& rt) {
  using runtime::Value;
  Value start = *rt.GetGlobal("head");
  OBISWAP_CHECK(rt.SetGlobal("cursor", start).ok());
  int64_t sum = 0;
  for (;;) {
    Value cursor = *rt.GetGlobal("cursor");
    if (!cursor.is_ref() || cursor.ref() == nullptr) break;
    Result<Value> value = rt.Invoke(cursor.ref(), "get_value");
    OBISWAP_CHECK(value.ok());
    sum += value->as_int();
    Result<Value> next = rt.Invoke(cursor.ref(), "next");
    OBISWAP_CHECK(next.ok());
    OBISWAP_CHECK(rt.SetGlobal("cursor", *next).ok());
  }
  rt.RemoveGlobal("cursor");
  return sum;
}

void SwapAllOut(swap::SwappingManager& manager,
                const std::vector<SwapClusterId>& clusters) {
  for (SwapClusterId id : clusters) {
    if (manager.StateOf(id) == swap::SwapState::kLoaded) {
      OBISWAP_CHECK(manager.SwapOut(id).ok());
    }
  }
}

struct RowResult {
  uint64_t demand_swap_ins = 0;
  uint64_t prefetch_wastes = 0;
};

RowResult RunConfig(const std::string& workload, prefetch::PrefetchMode mode,
                    double confidence, size_t budget,
                    benchjson::JsonWriter& json,
                    telemetry::Telemetry* trace) {
  StoreWorld world;
  runtime::Runtime rt(1);
  const runtime::ClassInfo* cls = workload::RegisterNodeClass(rt);
  context::EventBus bus;
  swap::SwappingManager::Options mopts;
  mopts.swap_in_cache_bytes = kCacheBytes;
  swap::SwappingManager manager(rt, mopts);
  manager.AttachStore(&world.client, &world.discovery);
  manager.AttachBus(&bus);
  trace->tracer().BeginTrack(workload + " mode=" +
                             std::to_string(static_cast<int>(mode)) +
                             " conf=" + std::to_string(confidence) +
                             " budget=" + std::to_string(budget));
  trace->AttachClock(&world.network.clock());
  manager.AttachTelemetry(trace);
  world.client.AttachTelemetry(trace);
  manager.AttachClock(&world.network.clock());

  std::vector<SwapClusterId> clusters =
      workload::BuildList(rt, &manager, cls, kNodes, kPerCluster, "head");

  prefetch::Prefetcher::Options popts;
  popts.mode = mode;
  popts.budget = budget;
  popts.confidence_threshold = confidence;
  popts.max_predictions = 2;
  prefetch::Prefetcher prefetcher(rt, manager, bus, popts);
  prefetcher.AttachClock(&world.network.clock());

  // What the memory monitor's relief policy would do: evict LRU clusters
  // until heap occupancy is back under `target` of capacity. Pressure alone
  // only frees exactly what the faulting allocation needs, which would pin
  // free headroom at ~0 and starve the prefetcher's gates.
  auto relieve = [&](double target) {
    while (static_cast<double>(rt.heap().used_bytes()) >
           static_cast<double>(rt.heap().capacity_bytes()) * target) {
      if (!manager.SwapOutVictim().ok()) break;
    }
  };

  int learning_passes = 0;
  int measured_passes = 0;
  if (workload == "sequential") {
    // Learn the chain with everything resident, then measure one cold pass.
    OBISWAP_CHECK(TraverseSum(rt) == kExpectedSum);
    learning_passes = 1;
    SwapAllOut(manager, clusters);
  } else {
    // Cyclic thrash: only ~2/3 of the list fits. The pressure handler
    // evicts as demand swap-ins refill the heap; relief between passes
    // restores the headroom the speculative tiers gate on. Pass 1 is the
    // warm-up/learning pass (it also learns the wrap-around edge).
    manager.InstallPressureHandler();
    rt.heap().set_capacity_bytes(rt.heap().used_bytes() * 2 / 3);
    relieve(0.70);
    OBISWAP_CHECK(TraverseSum(rt) == kExpectedSum);
    learning_passes = 1;
    measured_passes = 3;
  }

  const swap::SwappingManager::Stats& stats = manager.stats();
  const uint64_t swap_ins0 = stats.swap_ins;
  const uint64_t prefetched0 = stats.prefetched_swap_ins;
  const uint64_t stages0 = stats.prefetch_stages;
  const uint64_t hits0 = stats.prefetch_hits;
  const uint64_t cache_hits0 = stats.cache_hits;
  const uint64_t wastes0 = stats.prefetch_wastes;
  const uint64_t stall0 = stats.demand_fault_stall_us;
  const uint64_t clock0 = world.network.clock().now_us();

  if (workload == "sequential") {
    OBISWAP_CHECK(TraverseSum(rt) == kExpectedSum);
    measured_passes = 1;
  } else {
    for (int pass = 0; pass < measured_passes; ++pass) {
      relieve(0.70);
      OBISWAP_CHECK(TraverseSum(rt) == kExpectedSum);
    }
  }
  const uint64_t elapsed_us = world.network.clock().now_us() - clock0;
  // Evicting everything at the end converts any still-outstanding
  // speculative work into counted waste, so the waste column is the honest
  // total for the run.
  SwapAllOut(manager, clusters);

  RowResult row;
  row.demand_swap_ins =
      (stats.swap_ins - swap_ins0) - (stats.prefetched_swap_ins - prefetched0);
  row.prefetch_wastes = stats.prefetch_wastes - wastes0;
  uint64_t prefetched = stats.prefetched_swap_ins - prefetched0;
  uint64_t staged = stats.prefetch_stages - stages0;
  uint64_t hits = stats.prefetch_hits - hits0;
  uint64_t cache_hits = stats.cache_hits - cache_hits0;
  double stall_ms = (stats.demand_fault_stall_us - stall0) / 1000.0;
  double elapsed_ms = elapsed_us / 1000.0;
  const prefetch::Prefetcher::Stats& pstats = prefetcher.stats();

  std::printf("%10s %6s %6.2f %6zu %7llu %9llu %7llu %6llu %6llu %7llu"
              " %10.1f %10.1f\n",
              workload.c_str(), prefetch::PrefetchModeName(mode), confidence,
              budget, (unsigned long long)row.demand_swap_ins,
              (unsigned long long)prefetched, (unsigned long long)staged,
              (unsigned long long)hits, (unsigned long long)cache_hits,
              (unsigned long long)row.prefetch_wastes, stall_ms, elapsed_ms);

  json.BeginRow();
  json.Add("table", std::string("stall_sweep"));
  json.Add("workload", workload);
  json.Add("mode", std::string(prefetch::PrefetchModeName(mode)));
  json.Add("confidence", confidence);
  json.Add("budget", static_cast<int64_t>(budget));
  json.Add("clusters", static_cast<int64_t>(clusters.size()));
  json.Add("measured_passes", static_cast<int64_t>(measured_passes));
  json.Add("learning_passes", static_cast<int64_t>(learning_passes));
  json.Add("demand_swap_ins", row.demand_swap_ins);
  json.Add("prefetched_swap_ins", prefetched);
  json.Add("prefetch_stages", staged);
  json.Add("prefetch_hits", hits);
  json.Add("cache_hits", cache_hits);
  json.Add("prefetch_wastes", row.prefetch_wastes);
  json.Add("demand_stall_ms", stall_ms);
  json.Add("elapsed_virtual_ms", elapsed_ms);
  json.Add("predictions", pstats.predictions);
  json.Add("budget_deferred", pstats.budget_deferred);
  json.Add("headroom_blocked", pstats.headroom_blocked);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  benchjson::JsonWriter json;
  telemetry::Telemetry::Options trace_options;
  trace_options.tracer_capacity = 1 << 16;
  telemetry::Telemetry trace(trace_options);
  std::printf(
      "Predictive prefetch: demand faults and stall under confidence x "
      "budget sweep\n(%d nodes, %d per cluster, cache %zu KB, virtual "
      "time)\n\n",
      kNodes, kPerCluster, kCacheBytes / 1024);
  std::printf("%10s %6s %6s %6s %7s %9s %7s %6s %6s %7s %10s %10s\n",
              "workload", "mode", "conf", "budget", "demand", "prefetch",
              "staged", "hits", "c-hit", "waste", "stall ms", "total ms");

  RowResult seq_off;
  RowResult seq_full_best;
  bool have_full = false;
  for (const std::string& workload : {std::string("sequential"),
                                      std::string("cyclic")}) {
    RowResult off = RunConfig(workload, prefetch::PrefetchMode::kOff,
                              /*confidence=*/0.4, /*budget=*/2, json, &trace);
    if (workload == "sequential") seq_off = off;
    for (prefetch::PrefetchMode mode : {prefetch::PrefetchMode::kCacheOnly,
                                        prefetch::PrefetchMode::kFull}) {
      for (double confidence : {0.4, 0.9}) {
        for (size_t budget : {size_t{1}, size_t{2}, size_t{4}}) {
          RowResult row = RunConfig(workload, mode, confidence, budget, json, &trace);
          if (workload == "sequential" &&
              mode == prefetch::PrefetchMode::kFull && !have_full) {
            seq_full_best = row;  // first full config: conf 0.4, budget 1
            have_full = true;
          }
          // The budget bounds *outstanding* speculation; over a one-pass
          // run that also bounds total waste. (Cyclic runs three passes
          // under churn, so the per-moment bound doesn't sum to a total.)
          if (workload == "sequential") {
            OBISWAP_CHECK(row.prefetch_wastes <= budget);
          }
        }
      }
    }
    std::printf("\n");
  }

  bool halved = have_full &&
                seq_full_best.demand_swap_ins * 2 <= seq_off.demand_swap_ins;
  std::printf(
      "check: sequential demand swap-ins %llu (off) -> %llu (full prefetch): "
      "%s; waste bounded by budget in every configuration\n",
      (unsigned long long)seq_off.demand_swap_ins,
      (unsigned long long)seq_full_best.demand_swap_ins,
      halved ? ">=50% reduction OK" : "REDUCTION BELOW TARGET");
  std::printf(
      "\nreading: the learned chain is deterministic, so edge confidence "
      "saturates at 1.0 and\nthe threshold sweep is flat here (it bites on "
      "branchy access patterns). Full prefetch\nturns all but the first "
      "sequential fault into speculative loads consumed as hits;\ncache "
      "mode keeps the faults but moves fetch+decompress off the critical "
      "path, which\nshows up as the stall-ms drop. Under cyclic thrash the "
      "headroom gates throttle\nspeculation instead of deepening the "
      "pressure spiral.\n");

  benchjson::MaybeWriteJson(argc, argv, json, "BENCH_prefetch_stall.json");
  if (!benchjson::MaybeWriteTrace(argc, argv, trace)) return 1;
  return halved ? 0 : 1;
}
