// Degraded-mode chaos bench: demand-fault behavior when the store
// neighborhood turns sick, with and without hedged failover fetch.
//
// The harness places 8 clusters across a 4-store pool at K=2, warms the
// HealthTracker's latency distribution with healthy traffic, then applies
// one degradation to the store(s) holding the most payload:
//
//   none        — control
//   slow        — 3 s link setup latency (the store answers, glacially)
//   lossy       — 60% transfer loss (the store answers, eventually)
//   dead        — offline (silent departure; the monitor must notice)
//   correlated  — 3 of 4 stores die at once (forces brownout: healthy < K)
//
// Each (scenario, hedging) run then measures 6 rounds of demand swap-ins
// (stall = virtual time per fault) with DurabilityMonitor polls in
// between. Gates, enforced by the exit code:
//
//   * availability — every demand fault on a cluster with >= 1 replica on
//     an online store MUST succeed, in every scenario, hedged or not (the
//     hedge's abandoned-primary retry is what keeps this true);
//   * hedging      — p99 stall under `slow` must improve >= 2x with
//     hedging on versus off.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"
#include "obiswap/obiswap.h"
#include "workload/list_workload.h"

namespace {

using namespace obiswap;  // NOLINT

constexpr int kObjects = 160;
constexpr int kPerCluster = 20;
constexpr int kStorePool = 4;
constexpr int kWarmRounds = 2;
constexpr int kRounds = 6;
constexpr uint64_t kPollUs = 250'000;  // monitor cadence: 4 Hz virtual
constexpr size_t kStoreCapacity = 8 * 1024 * 1024;

enum class Kind { kNone, kSlow, kLossy, kDead, kCorrelated };

struct Scenario {
  const char* name;
  Kind kind;
};

constexpr Scenario kScenarios[] = {
    {"none", Kind::kNone},           {"slow", Kind::kSlow},
    {"lossy", Kind::kLossy},         {"dead", Kind::kDead},
    {"correlated", Kind::kCorrelated},
};

struct RunResult {
  uint64_t covered_attempts = 0;
  uint64_t covered_successes = 0;
  uint64_t uncovered_attempts = 0;
  uint64_t p50_us = 0;
  uint64_t p95_us = 0;
  uint64_t p99_us = 0;
  uint64_t hedged_fetches = 0;
  uint64_t hedge_wins = 0;
  uint64_t hedge_wastes = 0;
  uint64_t failover_fetches = 0;
  uint64_t breaker_trips = 0;
  uint64_t breaker_rejections = 0;
  uint64_t brownout_entries = 0;
  int clusters_lost = 0;
  bool available() const { return covered_successes == covered_attempts; }
};

uint64_t Percentile(std::vector<uint64_t> samples, double pct) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  size_t rank = static_cast<size_t>((pct / 100.0) * samples.size() + 0.999999);
  if (rank == 0) rank = 1;
  if (rank > samples.size()) rank = samples.size();
  return samples[rank - 1];
}

RunResult RunScenario(const Scenario& scenario, bool hedging,
                      telemetry::Telemetry* trace) {
  net::Network network(11);
  net::Discovery discovery(network);
  DeviceId pda(1);
  network.AddDevice(pda);

  runtime::Runtime rt(1);
  const runtime::ClassInfo* cls = workload::RegisterNodeClass(rt);
  swap::SwappingManager::Options options;
  options.replication_factor = 2;
  swap::SwappingManager manager(rt, options);
  net::StoreClient client(network, discovery, pda);
  context::EventBus bus;
  manager.AttachStore(&client, &discovery);
  manager.AttachBus(&bus);
  manager.AttachClock(&network.clock());
  trace->tracer().BeginTrack(std::string("degraded ") + scenario.name +
                             (hedging ? " hedged" : " plain"));
  trace->AttachClock(&network.clock());
  manager.AttachTelemetry(trace);
  client.AttachTelemetry(trace);

  net::HealthTracker tracker(&network.clock());
  client.AttachHealth(&tracker);
  manager.AttachHealth(&tracker);
  manager.set_hedged_fetch(hedging);
  swap::DurabilityMonitor monitor(manager, discovery, pda, bus);
  monitor.AttachHealth(&tracker);

  std::vector<std::unique_ptr<net::StoreNode>> stores;
  for (int i = 0; i < kStorePool; ++i) {
    DeviceId device(2 + i);
    network.AddDevice(device);
    network.SetInRange(pda, device, true);
    stores.push_back(std::make_unique<net::StoreNode>(device, kStoreCapacity));
    discovery.Announce(stores.back().get());
  }

  auto clusters =
      workload::BuildList(rt, &manager, cls, kObjects, kPerCluster, "head");

  // Warm-up: healthy swap-out/in cycles populate the tracker's success
  // latency histogram, so the hedge deadline is live before degradation.
  for (int round = 0; round < kWarmRounds; ++round) {
    for (SwapClusterId id : clusters) OBISWAP_CHECK(manager.SwapOut(id).ok());
    network.clock().Advance(kPollUs);
    monitor.Poll();
    for (SwapClusterId id : clusters) OBISWAP_CHECK(manager.SwapIn(id).ok());
    network.clock().Advance(kPollUs);
    monitor.Poll();
  }
  for (SwapClusterId id : clusters) OBISWAP_CHECK(manager.SwapOut(id).ok());

  // Degrade the store(s) holding the most payload — the ones demand
  // fetches are most likely to hit first.
  std::vector<net::StoreNode*> by_load;
  for (auto& store : stores) by_load.push_back(store.get());
  std::sort(by_load.begin(), by_load.end(),
            [](net::StoreNode* a, net::StoreNode* b) {
              return a->entry_count() > b->entry_count();
            });
  net::LinkParams degraded_link;
  switch (scenario.kind) {
    case Kind::kNone:
      break;
    case Kind::kSlow:
      degraded_link.latency_us = 3'000'000;
      network.SetLinkParams(pda, by_load[0]->device(), degraded_link);
      break;
    case Kind::kLossy:
      degraded_link.loss_rate = 0.6;
      network.SetLinkParams(pda, by_load[0]->device(), degraded_link);
      break;
    case Kind::kDead:
      network.SetOnline(by_load[0]->device(), false);
      break;
    case Kind::kCorrelated:
      for (int i = 0; i < 3; ++i)
        network.SetOnline(by_load[i]->device(), false);
      break;
  }
  network.clock().Advance(kPollUs);
  monitor.Poll();

  RunResult result;
  std::vector<uint64_t> stalls_us;
  for (int round = 0; round < kRounds; ++round) {
    for (SwapClusterId id : clusters) {
      if (manager.StateOf(id) != swap::SwapState::kSwapped) continue;
      const swap::SwapClusterInfo* info = manager.registry().Find(id);
      bool covered = false;
      for (const swap::ReplicaLocation& replica : info->replicas)
        if (network.IsOnline(replica.device)) covered = true;
      uint64_t before = network.clock().now_us();
      bool ok = manager.SwapIn(id).ok();
      if (covered) {
        ++result.covered_attempts;
        if (ok) {
          ++result.covered_successes;
          stalls_us.push_back(network.clock().now_us() - before);
        }
      } else {
        ++result.uncovered_attempts;
      }
    }
    for (SwapClusterId id : clusters) {
      if (manager.StateOf(id) == swap::SwapState::kLoaded)
        (void)manager.SwapOut(id);
    }
    network.clock().Advance(kPollUs);
    monitor.Poll();
  }

  for (SwapClusterId id : clusters) {
    const swap::SwapClusterInfo* info = manager.registry().Find(id);
    if (manager.StateOf(id) == swap::SwapState::kSwapped &&
        (info == nullptr || info->replicas.empty()))
      ++result.clusters_lost;
  }
  result.p50_us = Percentile(stalls_us, 50);
  result.p95_us = Percentile(stalls_us, 95);
  result.p99_us = Percentile(stalls_us, 99);
  result.hedged_fetches = manager.stats().hedged_fetches;
  result.hedge_wins = manager.stats().hedge_wins;
  result.hedge_wastes = manager.stats().hedge_wastes;
  result.failover_fetches = manager.stats().failover_fetches;
  result.breaker_trips = tracker.stats().trips;
  result.breaker_rejections = client.stats().breaker_rejections;
  result.brownout_entries = manager.stats().brownout_entries;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  benchjson::JsonWriter json;
  telemetry::Telemetry::Options trace_options;
  trace_options.tracer_capacity = 1 << 16;
  telemetry::Telemetry trace(trace_options);
  std::printf(
      "Degraded mode: %d clusters over a %d-store pool at K=2, %d demand "
      "rounds per run\n(breakers on; hedge deadline = tracker p95; poll "
      "every %.0f virtual ms)\n\n",
      (kObjects + kPerCluster - 1) / kPerCluster, kStorePool, kRounds,
      kPollUs / 1000.0);
  std::printf("%11s %6s %6s %10s %10s %10s %6s %6s %6s %6s %5s\n", "scenario",
              "hedge", "avail", "p50 ms", "p95 ms", "p99 ms", "hedges",
              "wins", "fails", "rejs", "lost");

  bool availability_ok = true;
  uint64_t slow_p99_plain = 0;
  uint64_t slow_p99_hedged = 0;
  for (const Scenario& scenario : kScenarios) {
    for (bool hedging : {false, true}) {
      RunResult run = RunScenario(scenario, hedging, &trace);
      if (!run.available()) availability_ok = false;
      if (scenario.kind == Kind::kSlow)
        (hedging ? slow_p99_hedged : slow_p99_plain) = run.p99_us;
      double avail_pct =
          run.covered_attempts == 0
              ? 100.0
              : 100.0 * run.covered_successes / run.covered_attempts;
      std::printf("%11s %6s %5.1f%% %10.1f %10.1f %10.1f %6llu %6llu %6llu "
                  "%6llu %5d\n",
                  scenario.name, hedging ? "on" : "off", avail_pct,
                  run.p50_us / 1000.0, run.p95_us / 1000.0,
                  run.p99_us / 1000.0,
                  (unsigned long long)run.hedged_fetches,
                  (unsigned long long)run.hedge_wins,
                  (unsigned long long)run.failover_fetches,
                  (unsigned long long)run.breaker_rejections,
                  run.clusters_lost);
      json.BeginRow();
      json.Add("scenario", std::string(scenario.name));
      json.Add("hedging", static_cast<int64_t>(hedging ? 1 : 0));
      json.Add("covered_attempts", run.covered_attempts);
      json.Add("covered_successes", run.covered_successes);
      json.Add("uncovered_attempts", run.uncovered_attempts);
      json.Add("availability_pct", avail_pct);
      json.Add("p50_stall_ms", run.p50_us / 1000.0);
      json.Add("p95_stall_ms", run.p95_us / 1000.0);
      json.Add("p99_stall_ms", run.p99_us / 1000.0);
      json.Add("hedged_fetches", run.hedged_fetches);
      json.Add("hedge_wins", run.hedge_wins);
      json.Add("hedge_wastes", run.hedge_wastes);
      json.Add("failover_fetches", run.failover_fetches);
      json.Add("breaker_trips", run.breaker_trips);
      json.Add("breaker_rejections", run.breaker_rejections);
      json.Add("brownout_entries", run.brownout_entries);
      json.Add("clusters_lost", static_cast<int64_t>(run.clusters_lost));
    }
  }

  std::printf(
      "\nreading: a slow store taxes every unhedged fault with its full "
      "latency; the hedge abandons it\nat the tracker's p95 and serves from "
      "a healthy replica, at worst re-trying the abandoned copy\n(so "
      "availability never drops below the sequential walk's). Dead and "
      "lossy stores trip their\nbreakers and leave the rotation; correlated "
      "death drops below K healthy stores and enters\nbrownout (reduced-K "
      "placement, deferred re-replication debt).\n");

  int failed = 0;
  if (!availability_ok) {
    std::fprintf(stderr,
                 "GATE FAILED: a demand fault with >= 1 online replica did "
                 "not succeed\n");
    failed = 1;
  }
  if (slow_p99_plain == 0 || slow_p99_hedged == 0 ||
      slow_p99_hedged * 2 > slow_p99_plain) {
    std::fprintf(stderr,
                 "GATE FAILED: hedged p99 under one-slow-store must improve "
                 ">= 2x (plain %llu us vs hedged %llu us)\n",
                 (unsigned long long)slow_p99_plain,
                 (unsigned long long)slow_p99_hedged);
    failed = 1;
  }

  benchjson::MaybeWriteJson(argc, argv, json, "BENCH_degraded_mode.json");
  if (!benchjson::MaybeWriteTrace(argc, argv, trace)) return 1;
  return failed;
}
