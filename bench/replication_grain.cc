// §2 supplement: the replication cluster's "adaptable size". Sweeps the
// grain and measures what a full first traversal of a 2000-object list
// costs over the 700 Kbps link: faults (round-trips), bytes shipped, and
// virtual time. Small grains pay latency per fault; large grains ship
// speculative bytes — the trade-off the Policy Engine's
// set-replication-cluster-size action tunes at runtime.
#include <cstdio>

#include "obiswap/obiswap.h"
#include "workload/list_workload.h"

namespace {

using namespace obiswap;  // NOLINT
using runtime::LocalScope;
using runtime::Object;
using runtime::Value;

constexpr int kListSize = 2000;
constexpr DeviceId kPda(1);
constexpr DeviceId kServerDev(100);

}  // namespace

int main() {
  std::printf(
      "Replication grain sweep: first full traversal of a %d-object list "
      "over 700 Kbps\n\n",
      kListSize);
  std::printf("%8s %8s %14s %14s %12s\n", "grain", "faults", "bytes shipped",
              "net ms(v)", "overhead/obj");

  for (size_t grain : {1, 4, 16, 64, 256}) {
    net::Network network;
    network.AddDevice(kPda);
    network.AddDevice(kServerDev);
    network.SetInRange(kPda, kServerDev, true);

    runtime::Runtime server_rt(9);
    const runtime::ClassInfo* server_cls =
        workload::RegisterNodeClass(server_rt);
    replication::ReplicationServer server(server_rt, grain);
    {
      LocalScope scope(server_rt.heap());
      Object** head = scope.Add(nullptr);
      for (int i = kListSize - 1; i >= 0; --i) {
        Object* node = server_rt.New(server_cls);
        OBISWAP_CHECK(server_rt.SetField(node, "value", Value::Int(i)).ok());
        if (*head != nullptr)
          OBISWAP_CHECK(
              server_rt.SetField(node, "next", Value::Ref(*head)).ok());
        *head = node;
      }
      OBISWAP_CHECK(server.PublishRoot("list", *head).ok());
    }
    replication::ReplicationService service(server);
    replication::NetworkLink link(network, kPda, kServerDev, service);

    runtime::Runtime device_rt(1);
    workload::RegisterNodeClass(device_rt);
    replication::DeviceEndpoint endpoint(device_rt, link, kPda, nullptr);

    Object* root = *endpoint.FetchRoot("list");
    OBISWAP_CHECK(device_rt.SetGlobal("list", Value::Ref(root)).ok());
    OBISWAP_CHECK(device_rt.SetGlobal("cur", *device_rt.GetGlobal("list"))
                      .ok());
    int64_t sum = 0;
    for (;;) {
      Value cur = *device_rt.GetGlobal("cur");
      if (!cur.is_ref() || cur.ref() == nullptr) break;
      sum += device_rt.Invoke(cur.ref(), "get_value")->as_int();
      OBISWAP_CHECK(
          device_rt.SetGlobal("cur", *device_rt.Invoke(cur.ref(), "next"))
              .ok());
    }
    OBISWAP_CHECK(sum == int64_t{kListSize} * (kListSize - 1) / 2);

    uint64_t faults = endpoint.stats().object_faults;
    uint64_t bytes = network.stats().bytes_moved;
    double net_ms = network.clock().now_ms();
    std::printf("%8zu %8llu %14llu %14.1f %12.1f\n", grain,
                (unsigned long long)faults, (unsigned long long)bytes,
                net_ms, static_cast<double>(bytes) / kListSize - 0.0);
  }
  std::printf(
      "\nreading: tiny grains are latency-bound (one 30 ms round-trip per "
      "object); large grains\namortize round-trips but raise per-fault "
      "stall time. The policy engine adapts this knob\nat runtime "
      "(set-replication-cluster-size).\n");
  return 0;
}
