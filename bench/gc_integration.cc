// §3 supplement: cost of the LGC cooperation. Measures (a) collection time
// with swap-cluster bookkeeping present (proxy finalizers cleaning manager
// tables), and (b) the end-to-end path from "swapped cluster becomes
// unreachable" to "store device instructed to drop the XML".
#include <cstdio>

#include "obiswap/obiswap.h"
#include "workload/list_workload.h"

namespace {

using namespace obiswap;  // NOLINT
using runtime::Value;

struct StoreWorld {
  StoreWorld()
      : network(1), discovery(network), store(DeviceId(2), 256 * 1024 * 1024),
        client(network, discovery, DeviceId(1)) {
    network.AddDevice(DeviceId(1));
    network.AddDevice(DeviceId(2));
    network.SetInRange(DeviceId(1), DeviceId(2), true);
    discovery.Announce(&store);
  }
  net::Network network;
  net::Discovery discovery;
  net::StoreNode store;
  net::StoreClient client;
};

}  // namespace

int main() {
  // (a) collection cost with proxy-table finalizers, vs plain heap.
  std::printf("LGC cooperation costs\n\n");
  std::printf("(a) full collection of a 10000-object list + its proxies\n");
  std::printf("%-34s %12s %14s\n", "configuration", "collect ms",
              "finalizers run");
  {
    runtime::Runtime rt(1);
    const runtime::ClassInfo* cls = workload::RegisterNodeClass(rt);
    workload::BuildList(rt, nullptr, cls, 10000, 10000, "head");
    double ms = workload::TimeMs([&] { rt.heap().Collect(); });
    std::printf("%-34s %12.2f %14llu\n", "no mediation", ms,
                (unsigned long long)rt.heap().stats().finalizers_run);
  }
  for (int size : {20, 100}) {
    runtime::Runtime rt(1);
    const runtime::ClassInfo* cls = workload::RegisterNodeClass(rt);
    swap::SwappingManager manager(rt);
    workload::BuildList(rt, &manager, cls, 10000, size, "head");
    // Create proxy churn, then drop everything so finalizers fire.
    Value cursor = *rt.GetGlobal("head");
    for (int i = 0; i < 2000 && cursor.is_ref(); ++i) {
      cursor = *rt.Invoke(cursor.ref(), "next");
    }
    rt.RemoveGlobal("head");
    uint64_t fin_before = rt.heap().stats().finalizers_run;
    double ms = workload::TimeMs([&] {
      rt.heap().Collect();
      rt.heap().Collect();
    });
    std::string label = "swap-clusters/" + std::to_string(size) +
                        " (all dead)";
    std::printf("%-34s %12.2f %14llu\n", label.c_str(), ms,
                (unsigned long long)(rt.heap().stats().finalizers_run -
                                     fin_before));
  }

  // (b) unreachable swapped clusters -> store drops.
  std::printf(
      "\n(b) drop path: N swapped clusters become garbage -> store told to "
      "discard\n");
  std::printf("%-10s %14s %12s %12s\n", "clusters", "store entries",
              "gc+drop ms", "drops sent");
  for (int cluster_count : {5, 20, 50}) {
    StoreWorld world;
    runtime::Runtime rt(1);
    const runtime::ClassInfo* cls = workload::RegisterNodeClass(rt);
    swap::SwappingManager manager(rt);
    manager.AttachStore(&world.client, &world.discovery);
    auto clusters = workload::BuildList(rt, &manager, cls,
                                        cluster_count * 20, 20, "head");
    for (SwapClusterId id : clusters) {
      OBISWAP_CHECK(manager.SwapOut(id).ok());
    }
    size_t entries = world.store.entry_count();
    rt.RemoveGlobal("head");
    double ms = workload::TimeMs([&] {
      rt.heap().Collect();  // proxies die
      rt.heap().Collect();  // replacements die -> finalizers drop
    });
    std::printf("%-10d %14zu %12.2f %12llu\n", cluster_count, entries, ms,
                (unsigned long long)manager.stats().drops);
    OBISWAP_CHECK(world.store.entry_count() == 0);
  }
  std::printf(
      "\nreading: GC cooperation is proportional to dead middleware "
      "objects; dropping swapped\nclusters is one store round-trip per "
      "dead replacement-object, issued from its finalizer.\n");
  return 0;
}
