// Crash-consistency costs: what the write-ahead intent journal adds to the
// swap hot path, and what a restart costs as a function of how much state
// was swapped out when the process died.
//
// Table 1 — journal overhead: the swap_latency size sweep re-run twice per
// configuration, with and without an intent journal attached. The journal
// persists its image to local flash at every WAL boundary (begin+intents,
// commit), so its cost is real virtual flash time on the hot path. The
// acceptance gate is overhead <= 5% of the unjournaled swap cycle at every
// size; the binary exits nonzero past the gate so CI fails loudly.
//
// Table 2 — recovery cost: N clusters are swapped out, the process "dies"
// mid-swap-out (injected crash), and SwappingManager::Recover() replays
// the journal, rolls the torn op back, and re-verifies every swapped
// replica by checksum. Verification dominates: recovery time scales with
// the swapped population, not with the journal (which stays a few hundred
// bytes thanks to compaction).
//
// `--json [path]` dumps both tables to BENCH_crash_recovery.json.
#include <cstdio>
#include <string>

#include "bench_json.h"
#include "obiswap/obiswap.h"
#include "workload/list_workload.h"

namespace {

using namespace obiswap;  // NOLINT

constexpr double kOverheadGatePct = 5.0;

struct BenchWorld {
  explicit BenchWorld(bool with_journal)
      : network(1),
        discovery(network),
        store_a(DeviceId(2), 256 * 1024 * 1024),
        store_b(DeviceId(3), 256 * 1024 * 1024),
        client(network, discovery, DeviceId(1)),
        flash(DeviceId(1), 64 * 1024 * 1024, network.clock()),
        journal(&flash),
        manager(rt, Options()) {
    network.AddDevice(DeviceId(1));
    network.AddDevice(DeviceId(2));
    network.AddDevice(DeviceId(3));
    network.SetInRange(DeviceId(1), DeviceId(2), true);
    network.SetInRange(DeviceId(1), DeviceId(3), true);
    discovery.Announce(&store_a);
    discovery.Announce(&store_b);
    manager.AttachStore(&client, &discovery);
    manager.AttachClock(&network.clock());
    manager.AttachLocalStore(&flash);
    if (with_journal) manager.AttachIntentJournal(&journal);
    faults.AttachClock(&network.clock());
    manager.AttachFaultInjector(&faults);
  }

  static swap::SwappingManager::Options Options() {
    swap::SwappingManager::Options options;
    options.replication_factor = 2;
    return options;
  }

  net::Network network;
  net::Discovery discovery;
  net::StoreNode store_a;
  net::StoreNode store_b;
  net::StoreClient client;
  persist::FlashStore flash;
  swap::IntentJournal journal;
  swap::FaultInjector faults;
  runtime::Runtime rt{1};
  swap::SwappingManager manager;
};

/// One size configuration: `cycles` dirty swap-out/swap-in rounds of one
/// cluster. Returns total virtual time of the swap loop in microseconds.
uint64_t SwapCycleRun(BenchWorld& world, int objects, int cycles) {
  const runtime::ClassInfo* cls = workload::RegisterNodeClass(world.rt);
  auto clusters = workload::BuildList(world.rt, &world.manager, cls, objects,
                                      objects, "head");
  OBISWAP_CHECK(clusters.size() == 1);
  uint64_t t0 = world.network.clock().now_us();
  for (int c = 0; c < cycles; ++c) {
    OBISWAP_CHECK(world.manager.SwapOut(clusters[0]).ok());
    OBISWAP_CHECK(world.manager.SwapIn(clusters[0]).ok());
    world.manager.MarkDirty(clusters[0]);  // force the full path every cycle
  }
  return world.network.clock().now_us() - t0;
}

bool OverheadSweep(benchjson::JsonWriter& json) {
  constexpr int kCycles = 8;
  bool within_gate = true;
  std::printf("%8s %14s %14s %10s %14s\n", "objects", "plain ms",
              "journaled ms", "overhead", "journal B");
  for (int objects : {20, 100, 500}) {
    BenchWorld plain(/*with_journal=*/false);
    uint64_t plain_us = SwapCycleRun(plain, objects, kCycles);
    BenchWorld journaled(/*with_journal=*/true);
    uint64_t journaled_us = SwapCycleRun(journaled, objects, kCycles);
    double overhead_pct =
        plain_us > 0
            ? 100.0 * (static_cast<double>(journaled_us) - plain_us) / plain_us
            : 0.0;
    uint64_t journal_bytes = journaled.journal.stats().persisted_bytes;
    if (overhead_pct > kOverheadGatePct) within_gate = false;
    std::printf("%8d %14.1f %14.1f %9.2f%% %14llu\n", objects,
                plain_us / 1000.0, journaled_us / 1000.0, overhead_pct,
                static_cast<unsigned long long>(journal_bytes));
    json.BeginRow();
    json.Add("table", std::string("journal_overhead"));
    json.Add("objects", static_cast<int64_t>(objects));
    json.Add("cycles", static_cast<int64_t>(kCycles));
    json.Add("plain_ms", plain_us / 1000.0);
    json.Add("journaled_ms", journaled_us / 1000.0);
    json.Add("overhead_pct", overhead_pct);
    json.Add("journal_bytes", journal_bytes);
    json.Add("journal_persists", journaled.journal.stats().persists);
  }
  return within_gate;
}

void RecoverySweep(benchjson::JsonWriter& json) {
  constexpr int kPerCluster = 10;
  std::printf("%10s %12s %12s %12s %12s %12s\n", "swapped", "recover ms",
              "verified", "discarded", "rolled back", "journal B");
  for (int swapped : {4, 16, 64}) {
    BenchWorld world(/*with_journal=*/true);
    const runtime::ClassInfo* cls = workload::RegisterNodeClass(world.rt);
    // One extra cluster stays loaded so the torn swap-out has a victim.
    int objects = (swapped + 1) * kPerCluster;
    auto clusters = workload::BuildList(world.rt, &world.manager, cls,
                                        objects, kPerCluster, "head");
    OBISWAP_CHECK(static_cast<int>(clusters.size()) == swapped + 1);
    for (int i = 1; i <= swapped; ++i)
      OBISWAP_CHECK(world.manager.SwapOut(clusters[i]).ok());

    // Die mid-swap-out of the remaining cluster, then restart. (Hit
    // ordinals count from Reset; the population swap-outs above already
    // traversed this point.)
    world.faults.Reset();
    world.faults.Arm("swap_out.ship_replica", swap::FaultKind::kCrash);
    OBISWAP_CHECK(!world.manager.SwapOut(clusters[0]).ok());
    OBISWAP_CHECK(world.manager.crashed());
    uint64_t journal_bytes = world.journal.stats().persisted_bytes;
    Result<swap::SwappingManager::RecoveryReport> report =
        world.manager.Recover();
    OBISWAP_CHECK(report.ok());
    OBISWAP_CHECK(report->rolled_back == 1);
    double recover_ms = world.manager.stats().recovery_us / 1000.0;
    std::printf("%10d %12.1f %12zu %12zu %12zu %12llu\n", swapped, recover_ms,
                report->replicas_verified, report->replicas_discarded,
                report->rolled_back,
                static_cast<unsigned long long>(journal_bytes));
    json.BeginRow();
    json.Add("table", std::string("recovery_cost"));
    json.Add("swapped_clusters", static_cast<int64_t>(swapped));
    json.Add("recover_ms", recover_ms);
    json.Add("replicas_verified",
             static_cast<uint64_t>(report->replicas_verified));
    json.Add("replicas_discarded",
             static_cast<uint64_t>(report->replicas_discarded));
    json.Add("rolled_back", static_cast<uint64_t>(report->rolled_back));
    json.Add("pending_ops", static_cast<uint64_t>(report->pending_ops));
    json.Add("journal_bytes", journal_bytes);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchjson::JsonWriter json;
  std::printf(
      "Intent-journal overhead on the swap hot path (8 dirty swap "
      "cycles, virtual time, 2 replicas)\n\n");
  bool within_gate = OverheadSweep(json);
  std::printf(
      "\nreading: every swap-out persists the journal twice "
      "(begin+intents, commit) to local\nflash; the flash write is tiny "
      "next to shipping the payload over the 700 Kbps link,\nso the "
      "journal stays well under the %.0f%% gate and shrinks relatively as "
      "clusters grow.\n",
      kOverheadGatePct);

  std::printf(
      "\nRestart cost vs swapped population (crash mid-swap-out, then "
      "Recover())\n\n");
  RecoverySweep(json);
  std::printf(
      "\nreading: recovery replays the (compacted, few-hundred-byte) "
      "journal in one flash read,\nrolls the torn op back, and spends the "
      "rest re-verifying every swapped replica by\nchecksum fetch — cost "
      "is linear in swapped state, independent of journal size.\n");

  benchjson::MaybeWriteJson(argc, argv, json, "BENCH_crash_recovery.json");
  if (!within_gate) {
    std::fprintf(stderr, "FAIL: journal overhead exceeded %.1f%% gate\n",
                 kOverheadGatePct);
    return 1;
  }
  return 0;
}
