// Tests for the paper's core contribution: swap-cluster mediation rules,
// swap-out/swap-in, replacement-objects, GC cooperation, identity, and the
// assign() iteration optimization.
#include <gtest/gtest.h>

#include "test_support.h"

namespace obiswap::swap {
namespace {

using runtime::LocalScope;
using runtime::Object;
using runtime::ObjectKind;
using runtime::Value;
using ::obiswap::testing::BuildClusteredList;
using ::obiswap::testing::CheckMediationInvariant;
using ::obiswap::testing::MiddlewareWorld;
using ::obiswap::testing::RegisterNodeClass;
using ::obiswap::testing::SumList;

class SwapFixture : public ::testing::Test {
 protected:
  SwapFixture() : node_cls_(RegisterNodeClass(world_.rt)) {
    world_.AddStore(/*device=*/2, /*capacity=*/10 * 1024 * 1024);
  }

  /// Head proxy stored in the given global.
  Object* HeadRef(const std::string& global = "head") {
    return world_.rt.GetGlobal(global)->ref();
  }

  MiddlewareWorld world_;
  const runtime::ClassInfo* node_cls_;
};

// ------------------------------------------------------- mediation rules --

TEST_F(SwapFixture, SameClusterStoresStayRaw) {
  auto clusters = BuildClusteredList(world_.rt, world_.manager, node_cls_,
                                     /*n=*/5, /*per_cluster=*/5, "head");
  EXPECT_EQ(clusters.size(), 1u);
  // Only the global's cluster-0 proxy exists: intra-cluster links are raw.
  EXPECT_EQ(world_.manager.stats().proxies_created, 1u);
  EXPECT_EQ(CheckMediationInvariant(world_.rt), "");
}

TEST_F(SwapFixture, CrossClusterStoresGetProxies) {
  auto clusters = BuildClusteredList(world_.rt, world_.manager, node_cls_,
                                     /*n=*/10, /*per_cluster=*/5, "head");
  EXPECT_EQ(clusters.size(), 2u);
  // One boundary proxy (node4 -> node5) + the head's cluster-0 proxy.
  EXPECT_EQ(world_.manager.stats().proxies_created, 2u);
  EXPECT_EQ(CheckMediationInvariant(world_.rt), "");
}

TEST_F(SwapFixture, GlobalStoresAreCluster0Mediated) {
  BuildClusteredList(world_.rt, world_.manager, node_cls_, 3, 3, "head");
  Object* head = HeadRef();
  ASSERT_TRUE(IsSwapProxy(head));
  EXPECT_EQ(ProxySource(head), kSwapCluster0);
}

TEST_F(SwapFixture, ProxyReusedAcrossSamePair) {
  // Two distinct fields in cluster A referencing the same object in B reuse
  // one proxy ("only a swap-cluster-proxy is required").
  SwapClusterId a = world_.manager.NewSwapCluster();
  SwapClusterId b = world_.manager.NewSwapCluster();
  LocalScope scope(world_.rt.heap());
  Object* holder1 = world_.rt.New(node_cls_);
  Object* holder2 = world_.rt.New(node_cls_);
  Object* target = world_.rt.New(node_cls_);
  scope.Add(holder1);
  scope.Add(holder2);
  scope.Add(target);
  ASSERT_TRUE(world_.manager.Place(holder1, a).ok());
  ASSERT_TRUE(world_.manager.Place(holder2, a).ok());
  ASSERT_TRUE(world_.manager.Place(target, b).ok());
  ASSERT_TRUE(world_.rt.SetField(holder1, "next", Value::Ref(target)).ok());
  ASSERT_TRUE(world_.rt.SetField(holder2, "next", Value::Ref(target)).ok());
  EXPECT_EQ(world_.rt.GetFieldAt(holder1, 0).ref(),
            world_.rt.GetFieldAt(holder2, 0).ref());
  EXPECT_EQ(world_.manager.stats().proxies_created, 1u);
  EXPECT_GE(world_.manager.stats().proxies_reused, 1u);
}

TEST_F(SwapFixture, DifferentSourcePairsGetDifferentProxies) {
  SwapClusterId a = world_.manager.NewSwapCluster();
  SwapClusterId b = world_.manager.NewSwapCluster();
  SwapClusterId c = world_.manager.NewSwapCluster();
  LocalScope scope(world_.rt.heap());
  Object* in_a = world_.rt.New(node_cls_);
  Object* in_b = world_.rt.New(node_cls_);
  Object* target = world_.rt.New(node_cls_);
  scope.Add(in_a);
  scope.Add(in_b);
  scope.Add(target);
  ASSERT_TRUE(world_.manager.Place(in_a, a).ok());
  ASSERT_TRUE(world_.manager.Place(in_b, b).ok());
  ASSERT_TRUE(world_.manager.Place(target, c).ok());
  ASSERT_TRUE(world_.rt.SetField(in_a, "next", Value::Ref(target)).ok());
  ASSERT_TRUE(world_.rt.SetField(in_b, "next", Value::Ref(target)).ok());
  // "an object in swap-cluster-X, if referenced from two different
  // swap-clusters, will be necessarily represented by two different
  // swap-cluster-proxies".
  EXPECT_NE(world_.rt.GetFieldAt(in_a, 0).ref(),
            world_.rt.GetFieldAt(in_b, 0).ref());
  EXPECT_EQ(world_.manager.stats().proxies_created, 2u);
}

TEST_F(SwapFixture, StoringProxyBackIntoItsTargetClusterDismantles) {
  SwapClusterId a = world_.manager.NewSwapCluster();
  SwapClusterId b = world_.manager.NewSwapCluster();
  LocalScope scope(world_.rt.heap());
  Object* in_a = world_.rt.New(node_cls_);
  Object* in_b = world_.rt.New(node_cls_);
  Object* also_in_b = world_.rt.New(node_cls_);
  scope.Add(in_a);
  scope.Add(in_b);
  scope.Add(also_in_b);
  ASSERT_TRUE(world_.manager.Place(in_a, a).ok());
  ASSERT_TRUE(world_.manager.Place(in_b, b).ok());
  ASSERT_TRUE(world_.manager.Place(also_in_b, b).ok());
  // a -> b proxy.
  ASSERT_TRUE(world_.rt.SetField(in_a, "next", Value::Ref(in_b)).ok());
  Object* proxy = world_.rt.GetFieldAt(in_a, 0).ref();
  ASSERT_TRUE(IsSwapProxy(proxy));
  // Handing that proxy to an object *inside* b dismantles it (rule iii).
  ASSERT_TRUE(world_.rt.SetField(also_in_b, "next", Value::Ref(proxy)).ok());
  EXPECT_EQ(world_.rt.GetFieldAt(also_in_b, 0).ref(), in_b);
  EXPECT_GE(world_.manager.stats().proxies_dismantled, 1u);
}

TEST_F(SwapFixture, InvocationThroughProxyForwards) {
  BuildClusteredList(world_.rt, world_.manager, node_cls_, 10, 5, "head");
  Object* head = HeadRef();
  auto value = world_.rt.Invoke(head, "get_value");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->as_int(), 0);
  EXPECT_GE(world_.manager.stats().boundary_crossings, 1u);
}

TEST_F(SwapFixture, RecursionCrossesBoundariesTransparently) {
  BuildClusteredList(world_.rt, world_.manager, node_cls_, 40, 10, "head");
  auto depth = world_.rt.Invoke(HeadRef(), "step", {Value::Int(0)});
  ASSERT_TRUE(depth.ok()) << depth.status().ToString();
  EXPECT_EQ(depth->as_int(), 39);
  // One crossing entering the list + 3 internal boundaries.
  EXPECT_EQ(world_.manager.stats().boundary_crossings, 4u);
}

TEST_F(SwapFixture, ReturnsAcrossBoundaryCreateFreshProxies) {
  BuildClusteredList(world_.rt, world_.manager, node_cls_, 20, 10, "head");
  uint64_t before = world_.manager.stats().proxies_created;
  // probe(15) from the head walks across the boundary and returns a
  // reference to an object in the second cluster; the proxy chain mediates
  // the return with a fresh cluster-0 proxy.
  auto reached = world_.rt.Invoke(HeadRef(), "probe", {Value::Int(15)});
  ASSERT_TRUE(reached.ok());
  ASSERT_TRUE(reached->is_ref());
  Object* result = reached->ref();
  ASSERT_TRUE(IsSwapProxy(result));
  EXPECT_EQ(ProxySource(result), kSwapCluster0);
  EXPECT_GT(world_.manager.stats().proxies_created, before);
  auto value = world_.rt.Invoke(result, "get_value");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->as_int(), 15);
}

TEST_F(SwapFixture, ReturnIntoOwnClusterIsRaw) {
  // probe that stays within the first cluster returns ... through the
  // cluster-0 head proxy, so the result is mediated for cluster 0. Check
  // the *internal* case instead: an object's method returning a same-
  // cluster ref must yield a raw object at the direct-call level.
  BuildClusteredList(world_.rt, world_.manager, node_cls_, 10, 10, "head");
  Object* head = HeadRef();
  Object* raw_head = ProxyTarget(head);
  ASSERT_EQ(raw_head->kind(), ObjectKind::kRegular);
  auto next = world_.rt.Invoke(raw_head, "next");  // direct, same cluster
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->ref()->kind(), ObjectKind::kRegular);
}

TEST_F(SwapFixture, ArgumentsAreMediatedIntoTargetContext) {
  // Pass a reference argument across a boundary; the callee stores it; the
  // stored value must be mediated for the callee's cluster.
  const runtime::ClassInfo* keeper_cls = *world_.rt.types().Register(
      runtime::ClassBuilder("Keeper")
          .Field("kept", runtime::ValueKind::kRef)
          .Method("keep", [](runtime::Runtime& rt, Object* self,
                             std::vector<Value>& args) -> Result<Value> {
            OBISWAP_RETURN_IF_ERROR(rt.SetFieldAt(self, 0, args[0]));
            return Value::Nil();
          }));
  SwapClusterId a = world_.manager.NewSwapCluster();
  SwapClusterId b = world_.manager.NewSwapCluster();
  LocalScope scope(world_.rt.heap());
  Object* keeper = world_.rt.New(keeper_cls);
  Object* payload = world_.rt.New(node_cls_);
  scope.Add(keeper);
  scope.Add(payload);
  ASSERT_TRUE(world_.manager.Place(keeper, a).ok());
  ASSERT_TRUE(world_.manager.Place(payload, b).ok());
  // Call keeper through a cluster-0 proxy, passing a cluster-0 view of the
  // payload.
  ASSERT_TRUE(world_.rt.SetGlobal("keeper", Value::Ref(keeper)).ok());
  ASSERT_TRUE(world_.rt.SetGlobal("payload", Value::Ref(payload)).ok());
  Object* keeper_proxy = world_.rt.GetGlobal("keeper")->ref();
  Value payload_proxy = *world_.rt.GetGlobal("payload");
  ASSERT_TRUE(
      world_.rt.Invoke(keeper_proxy, "keep", {payload_proxy}).ok());
  Object* stored = world_.rt.GetFieldAt(keeper, 0).ref();
  ASSERT_TRUE(IsSwapProxy(stored));
  EXPECT_EQ(ProxySource(stored), a);
  EXPECT_EQ(ProxyTargetSc(stored), b);
  EXPECT_EQ(CheckMediationInvariant(world_.rt), "");
}

// ------------------------------------------------------------- swap-out --

TEST_F(SwapFixture, SwapOutDetachesAndFreesMemory) {
  auto clusters = BuildClusteredList(world_.rt, world_.manager, node_cls_,
                                     100, 50, "head");
  world_.rt.heap().Collect();
  size_t before_bytes = world_.rt.heap().used_bytes();
  size_t before_objects = world_.rt.heap().live_objects();

  auto key = world_.manager.SwapOut(clusters[1]);
  ASSERT_TRUE(key.ok()) << key.status().ToString();
  EXPECT_EQ(world_.manager.StateOf(clusters[1]), SwapState::kSwapped);
  EXPECT_EQ(world_.stores[0]->entry_count(), 1u);

  world_.rt.heap().Collect();
  EXPECT_LT(world_.rt.heap().live_objects(), before_objects - 40);
  EXPECT_LT(world_.rt.heap().used_bytes(), before_bytes - 50 * 64);
  EXPECT_EQ(CheckMediationInvariant(world_.rt), "");
}

TEST_F(SwapFixture, SwapOutPatchesInboundProxiesToReplacement) {
  auto clusters = BuildClusteredList(world_.rt, world_.manager, node_cls_,
                                     20, 10, "head");
  ASSERT_TRUE(world_.manager.SwapOut(clusters[0]).ok());
  Object* head = HeadRef();
  ASSERT_TRUE(IsSwapProxy(head));
  EXPECT_TRUE(IsReplacement(ProxyTarget(head)));
}

TEST_F(SwapFixture, TransparentSwapInOnInvocation) {
  auto clusters = BuildClusteredList(world_.rt, world_.manager, node_cls_,
                                     30, 10, "head");
  ASSERT_TRUE(world_.manager.SwapOut(clusters[0]).ok());
  world_.rt.heap().Collect();
  // Touching the swapped cluster through the head proxy faults it back.
  auto value = world_.rt.Invoke(HeadRef(), "get_value");
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  EXPECT_EQ(value->as_int(), 0);
  EXPECT_EQ(world_.manager.StateOf(clusters[0]), SwapState::kLoaded);
  EXPECT_EQ(world_.manager.stats().swap_ins, 1u);
  // The store entry is retained as a clean image (the cluster has not been
  // written since the reload) so a re-swap-out can reuse it.
  EXPECT_EQ(world_.stores[0]->entry_count(), 1u);
  // The first write invalidates the image and releases the store copy.
  auto cursor = world_.rt.Invoke(HeadRef(), "probe", {Value::Int(3)});
  ASSERT_TRUE(cursor.ok());
  ASSERT_TRUE(world_.rt.SetGlobal("cursor", *cursor).ok());
  ASSERT_TRUE(world_.rt
                  .Invoke(world_.rt.GetGlobal("cursor")->ref(), "set_value",
                          {Value::Int(9)})
                  .ok());
  EXPECT_EQ(world_.stores[0]->entry_count(), 0u);
  EXPECT_EQ(world_.manager.stats().clean_image_invalidations, 1u);
  EXPECT_EQ(CheckMediationInvariant(world_.rt), "");
}

TEST_F(SwapFixture, FullTraversalAcrossSwappedClustersIsCorrect) {
  const int n = 60;
  auto clusters = BuildClusteredList(world_.rt, world_.manager, node_cls_,
                                     n, 20, "head");
  ASSERT_TRUE(world_.manager.SwapOut(clusters[1]).ok());
  ASSERT_TRUE(world_.manager.SwapOut(clusters[2]).ok());
  world_.rt.heap().Collect();
  auto sum = SumList(world_.rt, "head");
  ASSERT_TRUE(sum.ok()) << sum.status().ToString();
  EXPECT_EQ(*sum, n * (n - 1) / 2);
  EXPECT_EQ(world_.manager.stats().swap_ins, 2u);
}

TEST_F(SwapFixture, DataSurvivesSwapRoundTrip) {
  auto clusters = BuildClusteredList(world_.rt, world_.manager, node_cls_,
                                     10, 5, "head");
  // Mutate a value, swap its cluster out and back, check the mutation. The
  // returned proxy must be rooted (globals are the application-level way).
  auto target = world_.rt.Invoke(HeadRef(), "probe", {Value::Int(7)});
  ASSERT_TRUE(target.ok());
  ASSERT_TRUE(world_.rt.SetGlobal("cursor", *target).ok());
  ASSERT_TRUE(
      world_.rt.Invoke(target->ref(), "set_value", {Value::Int(777)}).ok());
  ASSERT_TRUE(world_.manager.SwapOut(clusters[1]).ok());
  world_.rt.heap().Collect();
  auto value = world_.rt.Invoke(world_.rt.GetGlobal("cursor")->ref(),
                                "get_value");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->as_int(), 777);
}

TEST_F(SwapFixture, ReplacementKeepsDownstreamClustersAlive) {
  // Figure 4: cluster 4 only referenced from cluster 2; swapping 2 must
  // keep 4 alive through ReplacementObject-2's outbound proxies.
  auto clusters = BuildClusteredList(world_.rt, world_.manager, node_cls_,
                                     30, 10, "head");
  world_.rt.heap().Collect();
  size_t live_before = world_.rt.heap().live_objects();
  ASSERT_TRUE(world_.manager.SwapOut(clusters[1]).ok());
  world_.rt.heap().Collect();
  // Only the middle cluster's 10 objects die; the tail cluster survives.
  EXPECT_GE(world_.rt.heap().live_objects() + 12, live_before - 10);
  auto sum = SumList(world_.rt, "head");
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, 30 * 29 / 2);
}

TEST_F(SwapFixture, CleanReswapReusesKeyDirtyReswapMintsFresh) {
  auto clusters = BuildClusteredList(world_.rt, world_.manager, node_cls_,
                                     10, 10, "head");
  auto key1 = world_.manager.SwapOut(clusters[0]);
  ASSERT_TRUE(key1.ok());
  ASSERT_TRUE(world_.manager.SwapIn(clusters[0]).ok());
  // Untouched since the swap-in: the re-swap-out reuses the retained store
  // entry under the same key, shipping nothing.
  auto key2 = world_.manager.SwapOut(clusters[0]);
  ASSERT_TRUE(key2.ok());
  EXPECT_EQ(key1->value(), key2->value());
  EXPECT_EQ(world_.manager.stats().clean_swap_outs, 1u);
  EXPECT_EQ(world_.stores[0]->entry_count(), 1u);
  // A write after the next swap-in dirties the cluster; the following
  // swap-out serializes afresh under a fresh key.
  ASSERT_TRUE(world_.manager.SwapIn(clusters[0]).ok());
  auto cursor = world_.rt.Invoke(HeadRef(), "probe", {Value::Int(2)});
  ASSERT_TRUE(cursor.ok());
  ASSERT_TRUE(world_.rt.SetGlobal("cursor", *cursor).ok());
  ASSERT_TRUE(world_.rt
                  .Invoke(world_.rt.GetGlobal("cursor")->ref(), "set_value",
                          {Value::Int(5)})
                  .ok());
  auto key3 = world_.manager.SwapOut(clusters[0]);
  ASSERT_TRUE(key3.ok());
  EXPECT_NE(key2->value(), key3->value());
  EXPECT_EQ(world_.manager.stats().clean_swap_outs, 1u);
  EXPECT_EQ(world_.stores[0]->entry_count(), 1u);
}

// ----------------------------------------------- clean-image swap cache --

TEST_F(SwapFixture, SwapThrashShipsBytesOnlyOnce) {
  auto clusters = BuildClusteredList(world_.rt, world_.manager, node_cls_,
                                     20, 10, "head");
  ASSERT_TRUE(world_.manager.SwapOut(clusters[0]).ok());
  const uint64_t shipped_once = world_.manager.stats().bytes_swapped_out;
  ASSERT_GT(shipped_once, 0u);
  // Thrash: the untouched cluster bounces in and out. Only the first
  // swap-out moved payload bytes; every later one reuses the store copy.
  for (int cycle = 0; cycle < 3; ++cycle) {
    ASSERT_TRUE(world_.manager.SwapIn(clusters[0]).ok());
    ASSERT_TRUE(world_.manager.SwapOut(clusters[0]).ok());
  }
  EXPECT_EQ(world_.manager.stats().bytes_swapped_out, shipped_once);
  EXPECT_EQ(world_.manager.stats().clean_swap_outs, 3u);
  EXPECT_GT(world_.manager.stats().bytes_swap_transfer_saved, 0u);
  EXPECT_EQ(world_.stores[0]->entry_count(), 1u);
  // A single field write forces the next swap-out back onto the full
  // serialize-and-ship path.
  ASSERT_TRUE(world_.manager.SwapIn(clusters[0]).ok());
  auto cursor = world_.rt.Invoke(HeadRef(), "probe", {Value::Int(1)});
  ASSERT_TRUE(cursor.ok());
  ASSERT_TRUE(world_.rt.SetGlobal("cursor", *cursor).ok());
  ASSERT_TRUE(world_.rt
                  .Invoke(world_.rt.GetGlobal("cursor")->ref(), "set_value",
                          {Value::Int(100)})
                  .ok());
  ASSERT_TRUE(world_.manager.SwapOut(clusters[0]).ok());
  EXPECT_GT(world_.manager.stats().bytes_swapped_out, shipped_once);
  EXPECT_EQ(world_.manager.stats().clean_swap_outs, 3u);
  // Data survives the thrash (node 1's value is now 100: 190 - 1 + 100).
  EXPECT_EQ(*SumList(world_.rt, "head"), 289);
}

TEST_F(SwapFixture, PayloadCacheServesRepeatSwapInWithoutFetch) {
  world_.manager.set_swap_in_cache_bytes(1 << 20);
  auto clusters = BuildClusteredList(world_.rt, world_.manager, node_cls_,
                                     20, 10, "head");
  ASSERT_TRUE(world_.manager.SwapOut(clusters[0]).ok());
  // Swap-out seeded the cache: the swap-in decodes from device memory and
  // never touches the radio.
  ASSERT_TRUE(world_.manager.SwapIn(clusters[0]).ok());
  EXPECT_EQ(world_.manager.stats().cache_hits, 1u);
  EXPECT_EQ(world_.manager.stats().bytes_swapped_in, 0u);
  EXPECT_EQ(world_.manager.payload_cache().stats().hits, 1u);
  EXPECT_GT(world_.manager.stats().bytes_swap_transfer_saved, 0u);
  EXPECT_EQ(*SumList(world_.rt, "head"), 190);  // reads only
  // A clean re-swap-out keeps the payload epoch, so the entry stays valid.
  ASSERT_TRUE(world_.manager.SwapOut(clusters[0]).ok());
  ASSERT_TRUE(world_.manager.SwapIn(clusters[0]).ok());
  EXPECT_EQ(world_.manager.stats().cache_hits, 2u);
  EXPECT_EQ(world_.manager.stats().bytes_swapped_in, 0u);
}

TEST_F(SwapFixture, SwapInWithStrayInboundProxyFailsAtomically) {
  // Regression: an inbound proxy whose target oid is missing from the
  // swapped payload used to abort SwapIn *mid-patch*, leaving some proxies
  // retargeted at fresh objects while the cluster stayed kSwapped. The
  // validation must run before any mutation.
  auto clusters = BuildClusteredList(world_.rt, world_.manager, node_cls_,
                                     20, 10, "head");
  LocalScope scope(world_.rt.heap());
  Object* holder = world_.rt.New(node_cls_);
  scope.Add(holder);
  ASSERT_TRUE(world_.manager.Place(holder, clusters[0]).ok());
  // An object labeled into clusters[1] behind the registry's back: it is
  // never a registered member, so the serializer will not include it — but
  // storing it from clusters[0] mints a real inbound proxy.
  Object* bogus = world_.rt.New(node_cls_);
  scope.Add(bogus);
  bogus->set_swap_cluster(clusters[1]);
  ASSERT_TRUE(world_.rt.SetField(holder, "next", Value::Ref(bogus)).ok());
  ASSERT_TRUE(IsSwapProxy(world_.rt.GetFieldAt(holder, 0).ref()));

  ASSERT_TRUE(world_.manager.SwapOut(clusters[1]).ok());
  Status torn = world_.manager.SwapIn(clusters[1]);
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(torn.code(), StatusCode::kInternal);
  // All-or-nothing: the cluster is still swapped and the legitimate
  // boundary proxy (node9 -> node10) still targets the replacement.
  EXPECT_EQ(world_.manager.StateOf(clusters[1]), SwapState::kSwapped);
  Object* cursor = ProxyTarget(HeadRef());
  for (int i = 0; i < 9; ++i) cursor = world_.rt.GetFieldAt(cursor, 0).ref();
  Object* boundary = world_.rt.GetFieldAt(cursor, 0).ref();
  ASSERT_TRUE(IsSwapProxy(boundary));
  EXPECT_TRUE(IsReplacement(ProxyTarget(boundary)));

  // Once the stray proxy dies, the same swap-in succeeds and the data is
  // intact.
  ASSERT_TRUE(world_.rt.SetFieldAt(holder, 0, Value::Nil()).ok());
  world_.rt.heap().Collect();
  ASSERT_TRUE(world_.manager.SwapIn(clusters[1]).ok());
  EXPECT_EQ(*SumList(world_.rt, "head"), 190);
  EXPECT_EQ(CheckMediationInvariant(world_.rt), "");
}

TEST_F(SwapFixture, FailedStoreAttemptReusesTheMintedKey) {
  // Regression: every failed store attempt used to burn a fresh SwapKey.
  // A crashed store still announces itself — and with the most free space
  // it sorts first, so the healthy fixture store is tried second.
  net::StoreNode* dead = world_.AddStore(3, 20 * 1024 * 1024);
  net::StoreNode::FaultPlan plan;
  plan.crash_after_ops = 0;  // the very next operation kills it
  dead->InjectFaults(plan);
  auto clusters = BuildClusteredList(world_.rt, world_.manager, node_cls_,
                                     10, 10, "head");
  auto key = world_.manager.SwapOut(clusters[0]);
  ASSERT_TRUE(key.ok()) << key.status().ToString();
  EXPECT_GE(dead->stats().faulted_ops, 1u);  // the dead store went first
  EXPECT_EQ(world_.stores[0]->entry_count(), 1u);
  // The key refused by the dead store was reused on the healthy one: it is
  // still the very first key this manager ever minted.
  EXPECT_EQ(key->value() & 0xffffffffu, 1u);
}

TEST(SwapPlacementTest, SwapOutGivesUpAfterBoundedStoreFailures) {
  // Regression: placement used to walk the entire candidate list however
  // long, retrying forever against a sick neighborhood.
  swap::SwappingManager::Options options;
  options.max_consecutive_store_failures = 2;
  MiddlewareWorld world{options};
  const runtime::ClassInfo* node_cls = RegisterNodeClass(world.rt);
  std::vector<net::StoreNode*> dead;
  for (uint32_t device = 2; device <= 6; ++device) {
    net::StoreNode* node = world.AddStore(device, 1 << 20);
    net::StoreNode::FaultPlan plan;
    plan.crash_after_ops = 0;
    node->InjectFaults(plan);
    dead.push_back(node);
  }
  auto clusters =
      BuildClusteredList(world.rt, world.manager, node_cls, 10, 10, "head");
  auto key = world.manager.SwapOut(clusters[0]);
  ASSERT_FALSE(key.ok());
  EXPECT_EQ(key.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(world.manager.StateOf(clusters[0]), swap::SwapState::kLoaded);
  EXPECT_EQ(world.manager.stats().swap_out_failures, 1u);
  int stores_tried = 0;
  for (net::StoreNode* node : dead) {
    if (node->stats().faulted_ops > 0) ++stores_tried;
  }
  EXPECT_EQ(stores_tried, 2);  // the bound, not all five candidates
  EXPECT_EQ(*SumList(world.rt, "head"), 45);  // data untouched
}

// ----------------------------------------------- payload cache (unit) --

TEST(PayloadCacheTest, LruEvictionRespectsByteBudget) {
  PayloadCache cache(100);
  cache.Put(SwapClusterId(1), 1, std::string(40, 'a'));
  cache.Put(SwapClusterId(2), 1, std::string(40, 'b'));
  EXPECT_EQ(cache.entry_count(), 2u);
  // Touch cluster 1 so cluster 2 becomes the LRU victim.
  EXPECT_NE(cache.Get(SwapClusterId(1), 1), nullptr);
  cache.Put(SwapClusterId(3), 1, std::string(40, 'c'));
  EXPECT_EQ(cache.entry_count(), 2u);
  EXPECT_NE(cache.Get(SwapClusterId(1), 1), nullptr);
  EXPECT_EQ(cache.Get(SwapClusterId(2), 1), nullptr);
  EXPECT_NE(cache.Get(SwapClusterId(3), 1), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.bytes(), cache.budget_bytes());
}

TEST(PayloadCacheTest, EpochMismatchMissesAndPutReplaces) {
  PayloadCache cache(1 << 10);
  cache.Put(SwapClusterId(1), 1, "old");
  EXPECT_EQ(cache.Get(SwapClusterId(1), 2), nullptr);  // stale epoch
  cache.Put(SwapClusterId(1), 2, "new");
  EXPECT_EQ(cache.entry_count(), 1u);  // one entry per cluster
  const std::string* hit = cache.Get(SwapClusterId(1), 2);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "new");
  EXPECT_EQ(cache.Get(SwapClusterId(1), 1), nullptr);
}

TEST(PayloadCacheTest, SameKeyDifferentSizeOverwriteKeepsBytesExact) {
  // Regression guard: a Put over an existing key with a different payload
  // size must account exactly one entry at the NEW size — no stale bytes
  // from the replaced payload, no double-counting.
  PayloadCache cache(100);
  cache.Put(SwapClusterId(1), 1, std::string(40, 'a'));
  EXPECT_EQ(cache.bytes(), 40u);
  // Shrink.
  cache.Put(SwapClusterId(1), 2, std::string(10, 'b'));
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.bytes(), 10u);
  // Grow.
  cache.Put(SwapClusterId(1), 3, std::string(60, 'c'));
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.bytes(), 60u);
  // The overwrite must also refresh recency: cluster 1 was re-Put last,
  // so inserting a filler that overflows the budget evicts cluster 2.
  cache.Put(SwapClusterId(2), 1, std::string(30, 'd'));
  EXPECT_EQ(cache.bytes(), 90u);
  cache.Get(SwapClusterId(2), 1);          // 2 is now MRU
  cache.Put(SwapClusterId(1), 4, std::string(65, 'e'));  // re-Put: 1 is MRU
  cache.Put(SwapClusterId(3), 1, std::string(30, 'f'));  // overflow
  EXPECT_EQ(cache.Get(SwapClusterId(2), 1), nullptr);    // LRU evicted
  EXPECT_NE(cache.Get(SwapClusterId(1), 4), nullptr);
  EXPECT_NE(cache.Get(SwapClusterId(3), 1), nullptr);
  EXPECT_EQ(cache.bytes(), 95u);
  EXPECT_LE(cache.bytes(), cache.budget_bytes());
}

TEST(PayloadCacheTest, DisabledAndOversizedPutsAreNoOps) {
  PayloadCache off(0);
  off.Put(SwapClusterId(1), 1, "x");
  EXPECT_EQ(off.entry_count(), 0u);
  PayloadCache small(4);
  small.Put(SwapClusterId(1), 1, "toolarge");
  EXPECT_EQ(small.entry_count(), 0u);
  small.Put(SwapClusterId(2), 1, "ok");
  EXPECT_EQ(small.entry_count(), 1u);
  // Shrinking the budget to zero empties and disables the cache.
  small.set_budget_bytes(0);
  EXPECT_EQ(small.entry_count(), 0u);
  EXPECT_EQ(small.Get(SwapClusterId(2), 1), nullptr);
}

// ------------------------------------------------------ error conditions --

TEST_F(SwapFixture, SwapOutErrors) {
  auto clusters = BuildClusteredList(world_.rt, world_.manager, node_cls_,
                                     10, 5, "head");
  // Unknown cluster.
  EXPECT_EQ(world_.manager.SwapOut(SwapClusterId(999)).status().code(),
            StatusCode::kNotFound);
  // Swap-cluster-0 is never registered.
  EXPECT_EQ(world_.manager.SwapOut(kSwapCluster0).status().code(),
            StatusCode::kNotFound);
  // Double swap.
  ASSERT_TRUE(world_.manager.SwapOut(clusters[0]).ok());
  EXPECT_EQ(world_.manager.SwapOut(clusters[0]).status().code(),
            StatusCode::kFailedPrecondition);
  // Swap-in of a loaded cluster.
  EXPECT_EQ(world_.manager.SwapIn(clusters[1]).code(),
            StatusCode::kFailedPrecondition);
  // Empty cluster.
  SwapClusterId empty = world_.manager.NewSwapCluster();
  EXPECT_EQ(world_.manager.SwapOut(empty).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(SwapFixture, SwapOutWithoutNearbyStoreIsUnavailable) {
  auto clusters = BuildClusteredList(world_.rt, world_.manager, node_cls_,
                                     10, 5, "head");
  world_.network.SetOnline(world_.stores[0]->device(), false);
  auto key = world_.manager.SwapOut(clusters[0]);
  ASSERT_FALSE(key.ok());
  EXPECT_EQ(key.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(world_.manager.StateOf(clusters[0]), SwapState::kLoaded);
  EXPECT_EQ(world_.manager.stats().swap_out_failures, 1u);
}

TEST_F(SwapFixture, SwapInFailsWhileStoreOutOfRangeThenRecovers) {
  auto clusters = BuildClusteredList(world_.rt, world_.manager, node_cls_,
                                     10, 5, "head");
  ASSERT_TRUE(world_.manager.SwapOut(clusters[0]).ok());
  world_.rt.heap().Collect();
  DeviceId store_dev = world_.stores[0]->device();
  world_.network.SetInRange(MiddlewareWorld::kDevice, store_dev, false);
  auto value = world_.rt.Invoke(HeadRef(), "get_value");
  ASSERT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(world_.manager.StateOf(clusters[0]), SwapState::kSwapped);
  // The store comes back into range: the same invocation now succeeds.
  world_.network.SetInRange(MiddlewareWorld::kDevice, store_dev, true);
  value = world_.rt.Invoke(HeadRef(), "get_value");
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  EXPECT_EQ(value->as_int(), 0);
}

TEST_F(SwapFixture, CorruptedStorePayloadIsDataLoss) {
  auto clusters = BuildClusteredList(world_.rt, world_.manager, node_cls_,
                                     10, 5, "head");
  auto key = world_.manager.SwapOut(clusters[0]);
  ASSERT_TRUE(key.ok());
  // Corrupt the stored bytes behind the middleware's back.
  net::StoreNode* store = world_.stores[0].get();
  std::string blob = *store->Fetch(*key);
  blob[blob.size() / 2] ^= 0x01;
  ASSERT_TRUE(store->Drop(*key).ok());
  ASSERT_TRUE(store->Store(*key, blob).ok());
  auto value = world_.rt.Invoke(HeadRef(), "get_value");
  ASSERT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kDataLoss);
}

TEST_F(SwapFixture, StoreFullTriesNextDevice) {
  net::StoreNode* tiny = world_.stores[0].get();
  // Fill the first store almost completely.
  ASSERT_TRUE(
      tiny->Store(SwapKey(9999),
                  std::string(tiny->capacity_bytes() - 10, 'x'))
          .ok());
  net::StoreNode* big = world_.AddStore(3, 10 * 1024 * 1024);
  auto clusters = BuildClusteredList(world_.rt, world_.manager, node_cls_,
                                     20, 20, "head");
  ASSERT_TRUE(world_.manager.SwapOut(clusters[0]).ok());
  EXPECT_EQ(big->entry_count(), 1u);
}

// --------------------------------------------------------- GC integration --

TEST_F(SwapFixture, UnreachableSwappedClusterIsDroppedFromStore) {
  auto clusters = BuildClusteredList(world_.rt, world_.manager, node_cls_,
                                     10, 10, "head");
  int dropped_events = 0;
  world_.bus.Subscribe(context::kEventClusterDropped,
                       [&](const context::Event&) { ++dropped_events; });
  ASSERT_TRUE(world_.manager.SwapOut(clusters[0]).ok());
  EXPECT_EQ(world_.stores[0]->entry_count(), 1u);
  // Drop the only application reference; replacement becomes garbage.
  world_.rt.RemoveGlobal("head");
  world_.rt.heap().Collect();
  world_.rt.heap().Collect();  // proxy dies first, then the replacement
  EXPECT_EQ(world_.stores[0]->entry_count(), 0u);
  EXPECT_EQ(world_.manager.StateOf(clusters[0]), SwapState::kDropped);
  EXPECT_EQ(world_.manager.stats().drops, 1u);
  EXPECT_EQ(dropped_events, 1);
}

TEST_F(SwapFixture, ReachableSwappedClusterIsPreservedOnStore) {
  auto clusters = BuildClusteredList(world_.rt, world_.manager, node_cls_,
                                     10, 10, "head");
  ASSERT_TRUE(world_.manager.SwapOut(clusters[0]).ok());
  for (int i = 0; i < 3; ++i) world_.rt.heap().Collect();
  // Still referenced by the head global: must stay on the store.
  EXPECT_EQ(world_.stores[0]->entry_count(), 1u);
  EXPECT_EQ(world_.manager.StateOf(clusters[0]), SwapState::kSwapped);
}

TEST_F(SwapFixture, ProxyFinalizersCleanTables) {
  BuildClusteredList(world_.rt, world_.manager, node_cls_, 10, 5, "head");
  uint64_t created = world_.manager.stats().proxies_created;
  ASSERT_GT(created, 0u);
  world_.rt.RemoveGlobal("head");
  world_.rt.heap().Collect();
  EXPECT_EQ(world_.manager.stats().proxies_finalized, created);
}

// ------------------------------------------------------- victim selection --

TEST_F(SwapFixture, LruVictimIsLeastRecentlyCrossed) {
  auto clusters = BuildClusteredList(world_.rt, world_.manager, node_cls_,
                                     40, 10, "head");
  // Touch the tail clusters by full traversal, then touch cluster 0 again.
  ASSERT_TRUE(SumList(world_.rt, "head").ok());
  ASSERT_TRUE(world_.rt.Invoke(HeadRef(), "get_value").ok());
  auto victim = world_.manager.SwapOutVictim();
  ASSERT_TRUE(victim.ok()) << victim.status().ToString();
  // The head cluster was just touched; the victim must be a later one.
  EXPECT_NE(*victim, clusters[0]);
}

TEST_F(SwapFixture, PressureHandlerSwapsOutAutomatically) {
  // Small heap: building a large list forces pressure-driven swap-outs.
  MiddlewareWorld small_world{swap::SwappingManager::Options(),
                              /*heap_capacity=*/160 * 1024};
  const runtime::ClassInfo* node_cls = RegisterNodeClass(small_world.rt);
  small_world.AddStore(2, 10 * 1024 * 1024);
  small_world.manager.InstallPressureHandler();
  // ~700 nodes x (64B payload + overhead) overflows 160 KiB several times.
  BuildClusteredList(small_world.rt, small_world.manager, node_cls, 700, 50,
                     "head");
  EXPECT_GT(small_world.manager.stats().swap_outs, 0u);
  EXPECT_GT(small_world.stores[0]->entry_count(), 0u);
  // And the data is still all there.
  auto sum = SumList(small_world.rt, "head");
  ASSERT_TRUE(sum.ok()) << sum.status().ToString();
  EXPECT_EQ(*sum, 700 * 699 / 2);
}

// ------------------------------------------------------ assign optimization --

TEST_F(SwapFixture, AssignValidation) {
  BuildClusteredList(world_.rt, world_.manager, node_cls_, 10, 5, "head");
  Object* head = HeadRef();
  ASSERT_TRUE(world_.manager.Assign(head).ok());
  // Non-proxies and non-cluster-0 proxies are rejected.
  EXPECT_EQ(world_.manager.Assign(ProxyTarget(head)).code(),
            StatusCode::kInvalidArgument);
  Object* raw_head = ProxyTarget(head);
  Object* boundary = world_.rt.GetFieldAt(raw_head, 0).ref();
  // Walk to the cluster boundary to find an inter-cluster proxy.
  while (!IsSwapProxy(boundary)) {
    raw_head = boundary;
    boundary = world_.rt.GetFieldAt(raw_head, 0).ref();
  }
  EXPECT_EQ(world_.manager.Assign(boundary).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(SwapFixture, AssignedProxyPatchesItselfDuringIteration) {
  const int n = 50;
  BuildClusteredList(world_.rt, world_.manager, node_cls_, n, 10, "head");
  Object* cursor = HeadRef();
  ASSERT_TRUE(world_.manager.Assign(cursor).ok());
  uint64_t created_before = world_.manager.stats().proxies_created;
  int64_t sum = 0;
  Object* current = cursor;
  for (int i = 0; i < n; ++i) {
    sum += world_.rt.Invoke(current, "get_value")->as_int();
    Value next = *world_.rt.Invoke(current, "next");
    if (!next.is_ref() || next.ref() == nullptr) break;
    // B2 semantics: the proxy returns itself, already re-targeted.
    EXPECT_EQ(next.ref(), cursor);
    current = next.ref();
  }
  EXPECT_EQ(sum, n * (n - 1) / 2);
  EXPECT_EQ(world_.manager.stats().proxies_created, created_before);
  EXPECT_GE(world_.manager.stats().assigned_patches,
            static_cast<uint64_t>(n - 2));
}

TEST_F(SwapFixture, UnassignedIterationCreatesProxyPerStep) {
  const int n = 50;
  BuildClusteredList(world_.rt, world_.manager, node_cls_, n, 10, "head");
  uint64_t created_before = world_.manager.stats().proxies_created;
  auto sum = SumList(world_.rt, "head");  // B1-style iteration
  ASSERT_TRUE(sum.ok());
  // One fresh cluster-0 proxy per returned reference.
  EXPECT_GE(world_.manager.stats().proxies_created - created_before,
            static_cast<uint64_t>(n - 2));
}

TEST_F(SwapFixture, AssignedProxySurvivesSwapOfVisitedClusters) {
  const int n = 30;
  auto clusters = BuildClusteredList(world_.rt, world_.manager, node_cls_,
                                     n, 10, "head");
  Object* cursor = HeadRef();
  ASSERT_TRUE(world_.manager.Assign(cursor).ok());
  // Iterate halfway.
  Object* current = cursor;
  for (int i = 0; i < 14; ++i) {
    current = world_.rt.Invoke(current, "next")->ref();
  }
  // Swap out the cluster the assigned proxy currently points into.
  SwapClusterId pointed = ProxyTargetSc(cursor);
  ASSERT_TRUE(world_.manager.SwapOut(pointed).ok());
  EXPECT_TRUE(IsReplacement(ProxyTarget(cursor)));
  // Continue iterating: transparent swap-in, traversal completes.
  int64_t seen = world_.rt.Invoke(cursor, "get_value")->as_int();
  EXPECT_EQ(seen, 14);
}

// ---------------------------------------------------------------- identity --

TEST_F(SwapFixture, IdentityThroughDifferentProxies) {
  SwapClusterId a = world_.manager.NewSwapCluster();
  SwapClusterId b = world_.manager.NewSwapCluster();
  SwapClusterId c = world_.manager.NewSwapCluster();
  LocalScope scope(world_.rt.heap());
  Object* in_a = world_.rt.New(node_cls_);
  Object* in_b = world_.rt.New(node_cls_);
  Object* target = world_.rt.New(node_cls_);
  scope.Add(in_a);
  scope.Add(in_b);
  scope.Add(target);
  ASSERT_TRUE(world_.manager.Place(in_a, a).ok());
  ASSERT_TRUE(world_.manager.Place(in_b, b).ok());
  ASSERT_TRUE(world_.manager.Place(target, c).ok());
  ASSERT_TRUE(world_.rt.SetField(in_a, "next", Value::Ref(target)).ok());
  ASSERT_TRUE(world_.rt.SetField(in_b, "next", Value::Ref(target)).ok());
  Object* proxy_a = world_.rt.GetFieldAt(in_a, 0).ref();
  Object* proxy_b = world_.rt.GetFieldAt(in_b, 0).ref();
  ASSERT_NE(proxy_a, proxy_b);
  EXPECT_TRUE(world_.rt.SameObject(proxy_a, proxy_b));
  EXPECT_TRUE(world_.rt.SameObject(proxy_a, target));
  Object* other = world_.rt.New(node_cls_);
  scope.Add(other);
  EXPECT_FALSE(world_.rt.SameObject(proxy_a, other));
}

TEST_F(SwapFixture, IdentityHoldsWhileSwapped) {
  auto clusters = BuildClusteredList(world_.rt, world_.manager, node_cls_,
                                     10, 5, "head");
  Object* head = HeadRef();
  Object* raw = ProxyTarget(head);
  ASSERT_TRUE(world_.manager.SwapOut(clusters[0]).ok());
  // head proxy now targets the replacement but keeps the identity.
  Object* head_after = HeadRef();
  EXPECT_TRUE(world_.rt.SameObject(head_after, head));
  EXPECT_EQ(ProxyTargetOid(head_after).value(), raw->oid().value());
}

// -------------------------------------------------------------- compression --

TEST_F(SwapFixture, CompressedSwapRoundTrips) {
  swap::SwappingManager::Options options;
  options.codec = "lz77";
  MiddlewareWorld world{options};
  const runtime::ClassInfo* node_cls = RegisterNodeClass(world.rt);
  world.AddStore(2, 10 * 1024 * 1024);
  auto clusters =
      BuildClusteredList(world.rt, world.manager, node_cls, 50, 25, "head");
  ASSERT_TRUE(world.manager.SwapOut(clusters[1]).ok());
  // XML compresses well: stored payload much smaller than identity codec.
  const SwapClusterInfo* info = world.manager.registry().Find(clusters[1]);
  EXPECT_LT(info->swapped_payload_bytes, 3000u);
  auto sum = SumList(world.rt, "head");
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, 50 * 49 / 2);
}

// ------------------------------------------------------ adaptive grouping --

TEST_F(SwapFixture, MergeDismantlesBoundaryProxies) {
  auto clusters = BuildClusteredList(world_.rt, world_.manager, node_cls_,
                                     20, 10, "head");
  // The node4->node5... boundary: exactly one inter-cluster proxy.
  EXPECT_EQ(world_.manager.InboundProxyCount(clusters[1]), 1u);
  uint64_t dismantled_before = world_.manager.stats().proxies_dismantled;
  ASSERT_TRUE(
      world_.manager.MergeSwapClusters(clusters[0], clusters[1]).ok());
  EXPECT_GT(world_.manager.stats().proxies_dismantled, dismantled_before);
  EXPECT_EQ(world_.manager.registry().Find(clusters[1]), nullptr);
  EXPECT_EQ(CheckMediationInvariant(world_.rt), "");
  // The boundary link is raw again: walk from the head's raw object to the
  // 10th node without meeting a proxy.
  Object* cursor = ProxyTarget(HeadRef());
  for (int i = 0; i < 15; ++i) {
    ASSERT_EQ(cursor->kind(), ObjectKind::kRegular) << "at " << i;
    cursor = world_.rt.GetFieldAt(cursor, 0).ref();
  }
  // And traversal + data still work.
  EXPECT_EQ(*SumList(world_.rt, "head"), 190);
}

TEST_F(SwapFixture, MergedClusterSwapsAsOneUnit) {
  auto clusters = BuildClusteredList(world_.rt, world_.manager, node_cls_,
                                     20, 10, "head");
  ASSERT_TRUE(
      world_.manager.MergeSwapClusters(clusters[0], clusters[1]).ok());
  ASSERT_TRUE(world_.manager.SwapOut(clusters[0]).ok());
  const SwapClusterInfo* info = world_.manager.registry().Find(clusters[0]);
  EXPECT_EQ(info->swapped_object_count, 20u);  // all 20 in one unit
  world_.rt.heap().Collect();
  EXPECT_EQ(*SumList(world_.rt, "head"), 190);
}

TEST_F(SwapFixture, MergeErrorCases) {
  auto clusters = BuildClusteredList(world_.rt, world_.manager, node_cls_,
                                     20, 10, "head");
  EXPECT_FALSE(world_.manager.MergeSwapClusters(clusters[0], clusters[0]).ok());
  EXPECT_EQ(
      world_.manager.MergeSwapClusters(clusters[0], SwapClusterId(99)).code(),
      StatusCode::kNotFound);
  ASSERT_TRUE(world_.manager.SwapOut(clusters[1]).ok());
  EXPECT_EQ(world_.manager.MergeSwapClusters(clusters[0], clusters[1]).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(SwapFixture, SplitCreatesBoundaryProxies) {
  auto clusters = BuildClusteredList(world_.rt, world_.manager, node_cls_,
                                     20, 20, "head");
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(world_.manager.stats().proxies_created, 1u);  // head proxy only
  // Move the tail half (values 10..19) into a new cluster.
  std::vector<Object*> tail;
  Object* cursor = ProxyTarget(HeadRef());
  for (int i = 0; i < 20; ++i) {
    if (i >= 10) tail.push_back(cursor);
    Object* next = world_.rt.GetFieldAt(cursor, 0).ref();
    cursor = next;
  }
  auto fresh = world_.manager.SplitSwapCluster(clusters[0], tail);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_EQ(CheckMediationInvariant(world_.rt), "");
  // Exactly one new boundary proxy (node9 -> node10).
  EXPECT_EQ(world_.manager.InboundProxyCount(*fresh), 1u);
  EXPECT_EQ(*SumList(world_.rt, "head"), 190);
  // The split-off half swaps independently.
  ASSERT_TRUE(world_.manager.SwapOut(*fresh).ok());
  world_.rt.heap().Collect();
  EXPECT_EQ(*SumList(world_.rt, "head"), 190);
}

TEST_F(SwapFixture, SplitThenMergeRoundTrips) {
  auto clusters = BuildClusteredList(world_.rt, world_.manager, node_cls_,
                                     30, 30, "head");
  std::vector<Object*> tail;
  Object* cursor = ProxyTarget(HeadRef());
  for (int i = 0; i < 30; ++i) {
    if (i >= 15) tail.push_back(cursor);
    cursor = world_.rt.GetFieldAt(cursor, 0).ref();
  }
  auto fresh = world_.manager.SplitSwapCluster(clusters[0], tail);
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(world_.manager.MergeSwapClusters(clusters[0], *fresh).ok());
  EXPECT_EQ(CheckMediationInvariant(world_.rt), "");
  EXPECT_EQ(*SumList(world_.rt, "head"), 435);
  // After the round trip the interior is proxy-free again.
  cursor = ProxyTarget(HeadRef());
  for (int i = 0; i < 29; ++i) {
    cursor = world_.rt.GetFieldAt(cursor, 0).ref();
    ASSERT_EQ(cursor->kind(), ObjectKind::kRegular) << "at " << i;
  }
}

TEST_F(SwapFixture, SplitErrorCases) {
  auto clusters = BuildClusteredList(world_.rt, world_.manager, node_cls_,
                                     10, 5, "head");
  EXPECT_FALSE(world_.manager.SplitSwapCluster(clusters[0], {}).ok());
  // Member of the wrong cluster.
  Object* wrong = ProxyTarget(world_.rt.GetGlobal("head")->ref());
  EXPECT_FALSE(
      world_.manager.SplitSwapCluster(clusters[1], {wrong}).ok());
  // Swapped cluster cannot split.
  ASSERT_TRUE(world_.manager.SwapOut(clusters[1]).ok());
  EXPECT_EQ(world_.manager
                .SplitSwapCluster(clusters[1], {wrong})
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(SwapQuantitativeTest, InnerRecursionProxyRateMatchesPaperPrediction) {
  // Paper §5 on test A2 at cluster size 20: an extra swap-cluster-proxy is
  // created "for roughly half of the object references returned by the
  // inner recursions (recall these have a maximum depth of 10)". With
  // depth-10 probes from every position and clusters of k, the crossing
  // probability is exactly 10/k.
  for (int k : {20, 50, 100}) {
    MiddlewareWorld world;
    const runtime::ClassInfo* node_cls = RegisterNodeClass(world.rt);
    const int n = 1000;
    BuildClusteredList(world.rt, world.manager, node_cls, n, k, "head");
    uint64_t before = world.manager.stats().proxies_created;
    auto depth = world.rt.Invoke(world.rt.GetGlobal("head")->ref(), "walk",
                                 {Value::Int(0)});
    ASSERT_TRUE(depth.ok()) << depth.status().ToString();
    double created =
        static_cast<double>(world.manager.stats().proxies_created - before);
    double expected = static_cast<double>(n) * 10.0 / k;
    EXPECT_NEAR(created / expected, 1.0, 0.15)
        << "k=" << k << " created=" << created << " expected~" << expected;
  }
}

TEST(SwapReentrancyTest, SwapInUnderPressureEvictsAnotherCluster) {
  // The hardest interleaving: a swap-in's deserialization does not fit, so
  // the pressure handler must evict a *different* (loaded, inactive)
  // cluster mid-swap-in. The cluster being swapped in is in kSwapped state
  // and must never be chosen as its own victim.
  MiddlewareWorld world{swap::SwappingManager::Options(),
                        /*heap_capacity=*/48 * 1024};
  const runtime::ClassInfo* node_cls = RegisterNodeClass(world.rt);
  world.AddStore(2, 10 * 1024 * 1024);
  world.manager.InstallPressureHandler();

  // Five clusters of 60 x ~270B objects (~80 KiB total): at most two fit
  // in the 48 KiB heap at any moment.
  auto clusters =
      BuildClusteredList(world.rt, world.manager, node_cls, 300, 60, "head");
  // Building already forced at least one eviction.
  EXPECT_GT(world.manager.stats().swap_outs, 0u);

  // Repeated full traversals: every pass needs swap-ins whose allocations
  // evict whichever cluster is coldest at that moment.
  for (int round = 0; round < 4; ++round) {
    auto sum = SumList(world.rt, "head");
    ASSERT_TRUE(sum.ok()) << "round " << round << ": "
                          << sum.status().ToString();
    EXPECT_EQ(*sum, 300 * 299 / 2);
  }
  EXPECT_GT(world.manager.stats().swap_ins, 3u);
  EXPECT_EQ(CheckMediationInvariant(world.rt), "");
  // Heap never exceeded capacity by more than middleware overcommit slack.
  EXPECT_LE(world.rt.heap().used_bytes(), 48u * 1024 + 32 * 1024);
}

// ----------------------------------------------------------- misc surface --

TEST_F(SwapFixture, InboundProxyCountTracksLiveProxies) {
  auto clusters = BuildClusteredList(world_.rt, world_.manager, node_cls_,
                                     20, 10, "head");
  // head's cluster: one cluster-0 proxy inbound; second cluster: one
  // boundary proxy inbound.
  EXPECT_EQ(world_.manager.InboundProxyCount(clusters[0]), 1u);
  EXPECT_EQ(world_.manager.InboundProxyCount(clusters[1]), 1u);
  // Dropping the head global kills its proxy; the count prunes it.
  world_.rt.RemoveGlobal("head");
  world_.rt.heap().Collect();
  EXPECT_EQ(world_.manager.InboundProxyCount(clusters[0]), 0u);
}

TEST_F(SwapFixture, DirectInvocationOnReplacementIsRejected) {
  auto clusters = BuildClusteredList(world_.rt, world_.manager, node_cls_,
                                     10, 10, "head");
  ASSERT_TRUE(world_.manager.SwapOut(clusters[0]).ok());
  Object* replacement = ProxyTarget(HeadRef());
  ASSERT_TRUE(IsReplacement(replacement));
  auto result = world_.rt.Invoke(replacement, "get_value");
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(SwapFixture, StoreMinFreeBytesOptionFiltersStores) {
  swap::SwappingManager::Options options;
  options.store_min_free_bytes = 1 << 20;  // demand 1 MiB free
  MiddlewareWorld world{options};
  const runtime::ClassInfo* node_cls = RegisterNodeClass(world.rt);
  world.AddStore(2, 64 * 1024);  // too small to qualify
  auto clusters =
      BuildClusteredList(world.rt, world.manager, node_cls, 10, 10, "head");
  auto key = world.manager.SwapOut(clusters[0]);
  ASSERT_FALSE(key.ok());
  EXPECT_EQ(key.status().code(), StatusCode::kUnavailable);
  world.AddStore(3, 4 * 1024 * 1024);  // qualifies
  EXPECT_TRUE(world.manager.SwapOut(clusters[0]).ok());
}

TEST_F(SwapFixture, VictimSelectionRunsDryWhenAllSwapped) {
  auto clusters = BuildClusteredList(world_.rt, world_.manager, node_cls_,
                                     20, 10, "head");
  ASSERT_TRUE(world_.manager.SwapOutVictim().ok());
  ASSERT_TRUE(world_.manager.SwapOutVictim().ok());
  auto dry = world_.manager.SwapOutVictim();
  ASSERT_FALSE(dry.ok());
  EXPECT_EQ(dry.status().code(), StatusCode::kFailedPrecondition);
  (void)clusters;
}

TEST_F(SwapFixture, BadCodecOptionAborts) {
  swap::SwappingManager::Options options;
  options.codec = "zstd";  // not a registered codec
  EXPECT_DEATH(
      { swap::SwappingManager manager(world_.rt, options); }, "CHECK");
}

// --------------------------------------------------------------- events --

TEST_F(SwapFixture, SwapEventsPublished) {
  auto clusters = BuildClusteredList(world_.rt, world_.manager, node_cls_,
                                     10, 5, "head");
  std::vector<std::string> seen;
  int64_t out_objects = -1;
  int64_t out_device = -1;
  int64_t out_bytes = -1;
  world_.bus.SubscribeAll([&](const context::Event& event) {
    seen.push_back(event.type());
    if (event.type() == context::kEventClusterSwappedOut) {
      out_objects = event.GetIntOr("objects", -1);
      out_device = event.GetIntOr("device", -1);
      out_bytes = event.GetIntOr("bytes", -1);
    }
  });
  ASSERT_TRUE(world_.manager.SwapOut(clusters[0]).ok());
  ASSERT_TRUE(world_.manager.SwapIn(clusters[0]).ok());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], context::kEventClusterSwappedOut);
  EXPECT_EQ(seen[1], context::kEventClusterSwappedIn);
  EXPECT_EQ(out_objects, 5);
  EXPECT_EQ(out_device, 2);
  EXPECT_GT(out_bytes, 100);
}

}  // namespace
}  // namespace obiswap::swap
