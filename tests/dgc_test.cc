// Tests for the device<->server reference-listing DGC.
#include <gtest/gtest.h>

#include "test_support.h"

namespace obiswap::dgc {
namespace {

using runtime::LocalScope;
using runtime::Object;
using runtime::Value;
using ::obiswap::testing::MiddlewareWorld;
using ::obiswap::testing::RegisterNodeClass;
using ::obiswap::testing::SumList;

class DgcFixture : public ::testing::Test {
 protected:
  DgcFixture()
      : server_rt_(9),
        server_(server_rt_, /*cluster_size=*/5),
        dgc_server_(server_),
        link_(server_) {
    server_cls_ = RegisterNodeClass(server_rt_);
    world_.AddStore(2, 10 * 1024 * 1024);
    RegisterNodeClass(world_.rt);
    endpoint_ = std::make_unique<replication::DeviceEndpoint>(
        world_.rt, link_, MiddlewareWorld::kDevice, &world_.bus);
    client_ = std::make_unique<DgcClient>(world_.rt, *endpoint_,
                                          &world_.manager,
                                          DirectRelease(server_));
  }

  Object* PublishList(int n) {
    LocalScope scope(server_rt_.heap());
    Object** head = scope.Add(nullptr);
    for (int i = n - 1; i >= 0; --i) {
      Object* node = server_rt_.New(server_cls_);
      OBISWAP_CHECK(server_rt_.SetField(node, "value", Value::Int(i)).ok());
      if (*head != nullptr)
        OBISWAP_CHECK(
            server_rt_.SetField(node, "next", Value::Ref(*head)).ok());
      *head = node;
    }
    OBISWAP_CHECK(server_.PublishRoot("list", *head).ok());
    return *head;
  }

  void ReplicateAll() {
    Object* root = *endpoint_->FetchRoot("list");
    OBISWAP_CHECK(world_.rt.SetGlobal("list", Value::Ref(root)).ok());
    OBISWAP_CHECK(SumList(world_.rt, "list").ok());
  }

  runtime::Runtime server_rt_;
  replication::ReplicationServer server_;
  DgcServer dgc_server_;
  replication::DirectLink link_;
  MiddlewareWorld world_;
  std::unique_ptr<replication::DeviceEndpoint> endpoint_;
  std::unique_ptr<DgcClient> client_;
  const runtime::ClassInfo* server_cls_ = nullptr;
};

TEST_F(DgcFixture, ShippingCreatesScions) {
  PublishList(10);
  ReplicateAll();
  EXPECT_EQ(dgc_server_.ScionCount(MiddlewareWorld::kDevice), 10u);
  EXPECT_EQ(dgc_server_.stats().scions_created, 10u);
}

TEST_F(DgcFixture, ScionsPinMasterObjectsAcrossMasterGc) {
  Object* head = PublishList(5);
  ReplicateAll();
  // Unpublish on the master: without scions the list would die.
  server_rt_.RemoveGlobal("__obiwan_root_list");
  server_rt_.heap().Collect();
  EXPECT_EQ(server_rt_.heap().live_objects(), 5u);
  EXPECT_TRUE(dgc_server_.HasScion(MiddlewareWorld::kDevice, head->oid()));
}

TEST_F(DgcFixture, DeviceReleaseFreesMasterObjects) {
  PublishList(5);
  ReplicateAll();
  server_rt_.RemoveGlobal("__obiwan_root_list");
  // Device drops its whole replica graph.
  world_.rt.RemoveGlobal("list");
  auto released = client_->RunCycle();
  ASSERT_TRUE(released.ok());
  EXPECT_EQ(*released, 5u);
  EXPECT_EQ(dgc_server_.TotalScions(), 0u);
  server_rt_.heap().Collect();
  EXPECT_EQ(server_rt_.heap().live_objects(), 0u);
}

TEST_F(DgcFixture, CycleWithNoChangesReleasesNothing) {
  PublishList(5);
  ReplicateAll();
  ASSERT_TRUE(client_->RunCycle().ok());  // baseline snapshot
  auto released = client_->RunCycle();
  ASSERT_TRUE(released.ok());
  EXPECT_EQ(*released, 0u);
  EXPECT_EQ(dgc_server_.ScionCount(MiddlewareWorld::kDevice), 5u);
}

TEST_F(DgcFixture, SwappedOutClustersAreStillHeld) {
  PublishList(10);
  ReplicateAll();
  ASSERT_TRUE(client_->RunCycle().ok());
  // Swap out every swap-cluster formed from the replicated list.
  size_t swapped = 0;
  for (SwapClusterId id : world_.manager.registry().Ids()) {
    if (world_.manager.SwapOut(id).ok()) ++swapped;
  }
  ASSERT_GT(swapped, 0u);
  // The replicas are gone from the heap, but they live on the store — the
  // DGC cycle must NOT release them.
  auto released = client_->RunCycle();
  ASSERT_TRUE(released.ok());
  EXPECT_EQ(*released, 0u);
  EXPECT_EQ(dgc_server_.ScionCount(MiddlewareWorld::kDevice), 10u);
  // And the data is still recoverable.
  auto sum = SumList(world_.rt, "list");
  ASSERT_TRUE(sum.ok()) << sum.status().ToString();
  EXPECT_EQ(*sum, 45);
}

TEST_F(DgcFixture, DroppedSwappedClusterIsReleased) {
  PublishList(10);
  ReplicateAll();
  ASSERT_TRUE(client_->RunCycle().ok());
  for (SwapClusterId id : world_.manager.registry().Ids()) {
    ASSERT_TRUE(world_.manager.SwapOut(id).ok());
  }
  // Drop the application's only reference: replacement objects die, the
  // stored XML is discarded, and the next DGC cycle releases the oids.
  world_.rt.RemoveGlobal("list");
  world_.rt.heap().Collect();
  world_.rt.heap().Collect();
  auto released = client_->RunCycle();
  ASSERT_TRUE(released.ok());
  EXPECT_EQ(*released, 10u);
  EXPECT_EQ(dgc_server_.TotalScions(), 0u);
}

TEST_F(DgcFixture, PartialReleaseKeepsRemainingScions) {
  PublishList(10);  // clusters of 5 -> 2 swap-clusters on the device
  ReplicateAll();
  ASSERT_TRUE(client_->RunCycle().ok());
  // Cut the list after the 5th node (drop the tail swap-cluster), keeping
  // the head cluster alive through the global.
  Object* head_proxy = world_.rt.GetGlobal("list")->ref();
  Object* cursor = head_proxy;
  for (int i = 0; i < 4; ++i) {
    cursor = world_.rt.Invoke(cursor, "next")->ref();
  }
  ASSERT_TRUE(world_.rt.SetGlobal("cursor4", Value::Ref(cursor)).ok());
  ASSERT_TRUE(
      world_.rt.Invoke(cursor, "set_value", {Value::Int(4)}).ok());
  // Sever: node4.next = nil (through the mediated cursor).
  Object* raw4 = swap::ProxyTarget(world_.rt.GetGlobal("cursor4")->ref());
  ASSERT_TRUE(world_.rt.SetField(raw4, "next", Value::Nil()).ok());
  auto released = client_->RunCycle();
  ASSERT_TRUE(released.ok());
  EXPECT_EQ(*released, 5u);
  EXPECT_EQ(dgc_server_.ScionCount(MiddlewareWorld::kDevice), 5u);
}

TEST_F(DgcFixture, TwoDevicesHoldIndependentScions) {
  Object* head = PublishList(5);
  ReplicateAll();
  // A second device replicates the same list.
  runtime::Runtime rt2(2);
  RegisterNodeClass(rt2);
  replication::DeviceEndpoint endpoint2(rt2, link_, DeviceId(2), nullptr);
  Object* root2 = *endpoint2.FetchRoot("list");
  ASSERT_TRUE(rt2.SetGlobal("list", Value::Ref(root2)).ok());
  ASSERT_TRUE(SumList(rt2, "list").ok());
  EXPECT_EQ(dgc_server_.ScionCount(DeviceId(2)), 5u);

  // Device 1 releases; device 2's scions keep the masters alive.
  world_.rt.RemoveGlobal("list");
  ASSERT_TRUE(client_->RunCycle().ok());
  EXPECT_EQ(dgc_server_.ScionCount(MiddlewareWorld::kDevice), 0u);
  server_rt_.RemoveGlobal("__obiwan_root_list");
  server_rt_.heap().Collect();
  EXPECT_EQ(server_rt_.heap().live_objects(), 5u);
  EXPECT_TRUE(dgc_server_.HasScion(DeviceId(2), head->oid()));
}

}  // namespace
}  // namespace obiswap::dgc
