// Tests for the binary wire format (OSWB), cluster deltas (OSWD), and the
// delta swap-out/swap-in pipeline.
//
// Three layers:
//   1. XML <-> binary parity: both serializers must reconstruct the same
//      heap state from the same members, across hostile values (NaN, ±inf,
//      -0.0, INT64_MIN/MAX, empty strings, all 256 byte values).
//   2. Delta algebra: Apply(base, Diff(base, fresh)) == fresh byte-for-byte
//      (the encoder is canonical), under a deterministic random-mutation
//      fuzz; tampered deltas and wrong bases are rejected.
//   3. End-to-end: a dirty re-swap-out under wire_format="binary" +
//      delta_swap_out ships an OSWD delta, the next swap-in merges it (from
//      the cached base or by fetching the base replicas), and crashes at
//      the delta-specific fault points recover with full invariants.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "serialization/graph_binary.h"
#include "test_support.h"

namespace obiswap {
namespace {

using runtime::ClassBuilder;
using runtime::ClassInfo;
using runtime::LocalScope;
using runtime::Object;
using runtime::ObjectKind;
using runtime::Runtime;
using runtime::Value;
using runtime::ValueKind;
using serialization::ApplyClusterDelta;
using serialization::DeserializeCluster;
using serialization::DeserializeClusterAny;
using serialization::DeserializeClusterBinary;
using serialization::DeserializeOptions;
using serialization::DiffClusterPayloads;
using serialization::ExternalRef;
using serialization::IsBinaryClusterPayload;
using serialization::IsClusterDeltaPayload;
using serialization::SerializeCluster;
using serialization::SerializeClusterBinary;
using ::obiswap::testing::BuildClusteredList;
using ::obiswap::testing::CheckMediationInvariant;
using ::obiswap::testing::MiddlewareWorld;
using ::obiswap::testing::RegisterNodeClass;
using ::obiswap::testing::SumList;

// ----------------------------------------------------------- test graphs --

void RegisterItem(Runtime& rt) {
  *rt.types().Register(ClassBuilder("Item")
                           .Field("next", ValueKind::kRef)
                           .Field("count", ValueKind::kInt)
                           .Field("weight", ValueKind::kReal)
                           .Field("label", ValueKind::kStr)
                           .Field("extra"));
}

class WireFormatFixture : public ::testing::Test {
 protected:
  WireFormatFixture() {
    RegisterItem(rt_);
    cls_ = rt_.types().Find("Item");
    ext_cls_ = *rt_.types().Register(
        ClassBuilder("Ext").Kind(ObjectKind::kReplicationProxy));
  }

  Object* NewItem(LocalScope& scope, int64_t count) {
    Object* obj = rt_.New(cls_);
    scope.Add(obj);
    OBISWAP_CHECK(rt_.SetField(obj, "count", Value::Int(count)).ok());
    return obj;
  }

  static Result<ExternalRef> NoExternals(Object*) {
    return InternalError("unexpected external ref");
  }
  static Result<Object*> ResolveNone(const ExternalRef&) {
    return InternalError("unexpected external ref");
  }
  /// Describes any non-member target by identity (byte-level delta tests
  /// never resolve, so every object is describable).
  static Result<ExternalRef> DescribeAny(Object* target) {
    ExternalRef ref;
    ref.oid = target->oid();
    ref.class_name = target->cls().name();
    return ref;
  }

  Runtime rt_;
  const ClassInfo* cls_ = nullptr;
  const ClassInfo* ext_cls_ = nullptr;
};

/// A string exercising every byte value, including NUL and the C0 control
/// range the XML escaper must round-trip.
std::string AllBytes() {
  std::string s;
  for (int i = 0; i < 256; ++i) s.push_back(static_cast<char>(i));
  return s;
}

/// Value equality for parity checks: reals compare by semantic value with
/// NaN == NaN (XML canonicalizes NaN payloads; binary keeps bit patterns —
/// both are faithful round-trips of "a NaN").
void ExpectSameValue(const Value& a, const Value& b, const std::string& at) {
  if (a.is_nil() || b.is_nil()) {
    EXPECT_TRUE(a.is_nil() && b.is_nil()) << at;
    return;
  }
  ASSERT_EQ(a.kind(), b.kind()) << at;
  switch (a.kind()) {
    case ValueKind::kInt:
      EXPECT_EQ(a.as_int(), b.as_int()) << at;
      break;
    case ValueKind::kReal:
      if (std::isnan(a.as_real())) {
        EXPECT_TRUE(std::isnan(b.as_real())) << at;
      } else {
        // Covers ±inf and distinguishes -0.0 from 0.0.
        EXPECT_EQ(std::signbit(a.as_real()), std::signbit(b.as_real())) << at;
        EXPECT_EQ(a.as_real(), b.as_real()) << at;
      }
      break;
    case ValueKind::kStr:
      EXPECT_EQ(a.as_str(), b.as_str()) << at;
      break;
    default:
      FAIL() << at << ": unexpected kind";
  }
}

/// Asserts two deserialized member lists describe the same heap state:
/// same identities and classes, scalar slots equal, local refs pointing at
/// the same member index, external refs at objects of the same class.
void ExpectSameHeapState(const std::vector<Object*>& a,
                         const std::vector<Object*>& b) {
  ASSERT_EQ(a.size(), b.size());
  std::unordered_map<const Object*, size_t> index_a, index_b;
  for (size_t i = 0; i < a.size(); ++i) {
    index_a[a[i]] = i;
    index_b[b[i]] = i;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    const std::string at = "member " + std::to_string(i);
    EXPECT_EQ(a[i]->oid(), b[i]->oid()) << at;
    EXPECT_EQ(a[i]->cls().name(), b[i]->cls().name()) << at;
    ASSERT_EQ(a[i]->slot_count(), b[i]->slot_count()) << at;
    for (size_t s = 0; s < a[i]->slot_count(); ++s) {
      const std::string here = at + " slot " + std::to_string(s);
      const Value& va = a[i]->RawSlot(s);
      const Value& vb = b[i]->RawSlot(s);
      if (va.is_ref() || vb.is_ref()) {
        ASSERT_TRUE(va.is_ref() && vb.is_ref()) << here;
        if (va.ref() == nullptr || vb.ref() == nullptr) {
          EXPECT_TRUE(va.ref() == nullptr && vb.ref() == nullptr) << here;
          continue;
        }
        auto ia = index_a.find(va.ref());
        auto ib = index_b.find(vb.ref());
        if (ia != index_a.end() || ib != index_b.end()) {
          ASSERT_TRUE(ia != index_a.end() && ib != index_b.end()) << here;
          EXPECT_EQ(ia->second, ib->second) << here;
        } else {
          EXPECT_EQ(va.ref()->cls().name(), vb.ref()->cls().name()) << here;
        }
        continue;
      }
      ExpectSameValue(va, vb, here);
    }
  }
}

// ------------------------------------------------------- binary round trip --

TEST_F(WireFormatFixture, BinaryRoundTripsHostileValues) {
  LocalScope scope(rt_.heap());
  Object* a = NewItem(scope, std::numeric_limits<int64_t>::min());
  Object* b = NewItem(scope, std::numeric_limits<int64_t>::max());
  Object* c = NewItem(scope, -1);
  ASSERT_TRUE(
      rt_.SetField(a, "weight",
                   Value::Real(std::numeric_limits<double>::quiet_NaN()))
          .ok());
  ASSERT_TRUE(
      rt_.SetField(b, "weight",
                   Value::Real(-std::numeric_limits<double>::infinity()))
          .ok());
  ASSERT_TRUE(rt_.SetField(c, "weight", Value::Real(-0.0)).ok());
  ASSERT_TRUE(rt_.SetField(a, "label", Value::Str("")).ok());
  ASSERT_TRUE(rt_.SetField(b, "label", Value::Str(AllBytes())).ok());
  ASSERT_TRUE(rt_.SetField(a, "next", Value::Ref(b)).ok());
  ASSERT_TRUE(rt_.SetField(c, "next", Value::Ref(c)).ok());  // self-cycle

  auto serialized = SerializeClusterBinary(rt_, 11, {a, b, c}, NoExternals);
  ASSERT_TRUE(serialized.ok()) << serialized.status().ToString();
  EXPECT_TRUE(IsBinaryClusterPayload(serialized->payload));
  EXPECT_FALSE(IsClusterDeltaPayload(serialized->payload));

  Runtime rt2;
  RegisterItem(rt2);
  DeserializeOptions options;
  options.expected_id = 11;
  auto members =
      DeserializeClusterBinary(rt2, serialized->payload, options, ResolveNone);
  ASSERT_TRUE(members.ok()) << members.status().ToString();
  ASSERT_EQ(members->size(), 3u);
  Object* a2 = (*members)[0];
  Object* b2 = (*members)[1];
  Object* c2 = (*members)[2];
  EXPECT_EQ(a2->RawSlot(1).as_int(), std::numeric_limits<int64_t>::min());
  EXPECT_EQ(b2->RawSlot(1).as_int(), std::numeric_limits<int64_t>::max());
  EXPECT_EQ(c2->RawSlot(1).as_int(), -1);
  // Binary reals are bit-exact.
  uint64_t nan_bits_in, nan_bits_out;
  double nan_in = std::numeric_limits<double>::quiet_NaN();
  double nan_out = a2->RawSlot(2).as_real();
  std::memcpy(&nan_bits_in, &nan_in, sizeof(nan_bits_in));
  std::memcpy(&nan_bits_out, &nan_out, sizeof(nan_bits_out));
  EXPECT_EQ(nan_bits_in, nan_bits_out);
  EXPECT_EQ(b2->RawSlot(2).as_real(),
            -std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::signbit(c2->RawSlot(2).as_real()));
  EXPECT_EQ(a2->RawSlot(3).as_str(), "");
  EXPECT_EQ(b2->RawSlot(3).as_str(), AllBytes());
  EXPECT_EQ(a2->RawSlot(0).ref(), b2);
  EXPECT_EQ(c2->RawSlot(0).ref(), c2);
  EXPECT_TRUE(a2->RawSlot(4).is_nil());
}

TEST_F(WireFormatFixture, XmlAndBinaryReconstructTheSameHeapState) {
  LocalScope scope(rt_.heap());
  Object* a = NewItem(scope, 7);
  Object* b = NewItem(scope, -42);
  Object* external = rt_.New(ext_cls_);
  scope.Add(external);
  ASSERT_TRUE(rt_.SetField(a, "weight", Value::Real(0.1)).ok());
  ASSERT_TRUE(rt_.SetField(b, "weight",
                           Value::Real(std::numeric_limits<double>::infinity()))
                  .ok());
  ASSERT_TRUE(rt_.SetField(a, "label", Value::Str(AllBytes())).ok());
  ASSERT_TRUE(rt_.SetField(b, "label", Value::Str("plain")).ok());
  ASSERT_TRUE(rt_.SetField(a, "next", Value::Ref(b)).ok());
  b->RawSlotMutable(0) = Value::Ref(external);

  auto xml = SerializeCluster(rt_, 5, {a, b}, DescribeAny);
  auto bin = SerializeClusterBinary(rt_, 5, {a, b}, DescribeAny);
  ASSERT_TRUE(xml.ok()) << xml.status().ToString();
  ASSERT_TRUE(bin.ok()) << bin.status().ToString();
  ASSERT_EQ(xml->outbound.size(), bin->outbound.size());
  // The tag-free encoding is what pays for the delta machinery: the same
  // document must cost fewer bytes in binary.
  EXPECT_LT(bin->payload.size(), xml->payload.size());

  Runtime rt_xml, rt_bin;
  RegisterItem(rt_xml);
  RegisterItem(rt_bin);
  auto make_resolver = [](Runtime& rt) {
    const ClassInfo* ext = *rt.types().Register(
        ClassBuilder("Ext").Kind(ObjectKind::kReplicationProxy));
    return [&rt, ext](const ExternalRef& ref) -> Result<Object*> {
      EXPECT_EQ(ref.class_name, "Ext");
      return rt.New(ext);
    };
  };
  DeserializeOptions options;
  options.expected_id = 5;
  auto from_xml =
      DeserializeClusterAny(rt_xml, xml->payload, options,
                            make_resolver(rt_xml));
  auto from_bin =
      DeserializeClusterAny(rt_bin, bin->payload, options,
                            make_resolver(rt_bin));
  ASSERT_TRUE(from_xml.ok()) << from_xml.status().ToString();
  ASSERT_TRUE(from_bin.ok()) << from_bin.status().ToString();
  ExpectSameHeapState(*from_xml, *from_bin);
}

TEST_F(WireFormatFixture, BinaryEncodingIsCanonical) {
  LocalScope scope(rt_.heap());
  Object* a = NewItem(scope, 1);
  Object* b = NewItem(scope, 2);
  ASSERT_TRUE(rt_.SetField(a, "next", Value::Ref(b)).ok());
  auto first = SerializeClusterBinary(rt_, 3, {a, b}, NoExternals);
  auto second = SerializeClusterBinary(rt_, 3, {a, b}, NoExternals);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->payload, second->payload);
}

TEST_F(WireFormatFixture, BinaryRejectsTamperingIdMismatchAndGarbage) {
  LocalScope scope(rt_.heap());
  Object* a = NewItem(scope, 1234);
  ASSERT_TRUE(rt_.SetField(a, "label", Value::Str("payload")).ok());
  auto serialized = SerializeClusterBinary(rt_, 6, {a}, NoExternals);
  ASSERT_TRUE(serialized.ok());

  DeserializeOptions options;
  options.expected_id = 6;
  // Every single-byte corruption past the magic must be rejected (digest,
  // bounds checks, or strict structure) — never silently mis-decoded.
  for (size_t i = 4; i < serialized->payload.size(); ++i) {
    std::string tampered = serialized->payload;
    tampered[i] = static_cast<char>(tampered[i] ^ 0x20);
    auto members = DeserializeClusterBinary(rt_, tampered, options,
                                            ResolveNone);
    if (!members.ok()) continue;
    // A flip may survive decoding only by reproducing equivalent content
    // (e.g. a varint redundant encoding is impossible here, but keep the
    // check honest): the decoded state must match the original.
    ASSERT_EQ((*members).size(), 1u) << "flip at " << i;
    EXPECT_EQ((*members)[0]->RawSlot(1).as_int(), 1234) << "flip at " << i;
    EXPECT_EQ((*members)[0]->RawSlot(3).as_str(), "payload")
        << "flip at " << i;
  }

  DeserializeOptions wrong_id;
  wrong_id.expected_id = 7;
  EXPECT_FALSE(
      DeserializeClusterBinary(rt_, serialized->payload, wrong_id, ResolveNone)
          .ok());
  EXPECT_FALSE(DeserializeClusterAny(rt_, "", options, ResolveNone).ok());
  EXPECT_FALSE(DeserializeClusterAny(rt_, "OSWX????", options, ResolveNone)
                   .ok());
}

TEST_F(WireFormatFixture, BinaryRejectsSchemaSkew) {
  LocalScope scope(rt_.heap());
  Object* a = NewItem(scope, 9);
  auto serialized = SerializeClusterBinary(rt_, 2, {a}, NoExternals);
  ASSERT_TRUE(serialized.ok());

  // Same class name, different field count: the field-order encoding must
  // detect the skew instead of shifting every value by one slot.
  Runtime skewed;
  *skewed.types().Register(ClassBuilder("Item")
                               .Field("next", ValueKind::kRef)
                               .Field("count", ValueKind::kInt));
  DeserializeOptions options;
  options.expected_id = 2;
  auto members =
      DeserializeClusterBinary(skewed, serialized->payload, options,
                               ResolveNone);
  EXPECT_FALSE(members.ok());

  Runtime empty;  // class not registered at all
  EXPECT_FALSE(
      DeserializeClusterBinary(empty, serialized->payload, options,
                               ResolveNone)
          .ok());
}

// ----------------------------------------------------------- delta algebra --

TEST_F(WireFormatFixture, DeltaReproducesFreshByteForByte) {
  LocalScope scope(rt_.heap());
  std::vector<Object*> members;
  for (int i = 0; i < 8; ++i) {
    Object* obj = NewItem(scope, i);
    if (!members.empty())
      OBISWAP_CHECK(
          rt_.SetField(members.back(), "next", Value::Ref(obj)).ok());
    members.push_back(obj);
  }
  auto base = SerializeClusterBinary(rt_, 1, members, NoExternals);
  ASSERT_TRUE(base.ok());

  // One int field out of 8 members changes.
  ASSERT_TRUE(rt_.SetField(members[3], "count", Value::Int(999)).ok());
  auto fresh = SerializeClusterBinary(rt_, 1, members, NoExternals);
  ASSERT_TRUE(fresh.ok());

  auto delta = DiffClusterPayloads(base->payload, fresh->payload);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_TRUE(IsClusterDeltaPayload(*delta));
  // A one-field change must cost far less than the full document.
  EXPECT_LT(delta->size(), fresh->payload.size() / 2);

  auto merged = ApplyClusterDelta(base->payload, *delta);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(*merged, fresh->payload);
}

TEST_F(WireFormatFixture, DeltaHandlesMembershipChanges) {
  LocalScope scope(rt_.heap());
  std::vector<Object*> members;
  for (int i = 0; i < 6; ++i) members.push_back(NewItem(scope, i));
  for (int i = 0; i + 1 < 6; ++i)
    ASSERT_TRUE(
        rt_.SetField(members[i], "next", Value::Ref(members[i + 1])).ok());
  auto base = SerializeClusterBinary(rt_, 4, members, NoExternals);
  ASSERT_TRUE(base.ok());

  // Remove the middle member (re-linking around it) and append a new one:
  // member indices shift, so carried refs must be remapped by oid.
  Object* removed = members[3];
  ASSERT_TRUE(
      rt_.SetField(members[2], "next", Value::Ref(members[4])).ok());
  members.erase(members.begin() + 3);
  (void)removed;
  Object* added = NewItem(scope, 100);
  ASSERT_TRUE(rt_.SetField(members.back(), "next", Value::Ref(added)).ok());
  members.push_back(added);

  auto fresh = SerializeClusterBinary(rt_, 4, members, NoExternals);
  ASSERT_TRUE(fresh.ok());
  auto delta = DiffClusterPayloads(base->payload, fresh->payload);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  auto merged = ApplyClusterDelta(base->payload, *delta);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(*merged, fresh->payload);
}

TEST_F(WireFormatFixture, DeltaRejectsWrongBaseAndTampering) {
  LocalScope scope(rt_.heap());
  Object* a = NewItem(scope, 1);
  auto base = SerializeClusterBinary(rt_, 1, {a}, NoExternals);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(rt_.SetField(a, "count", Value::Int(2)).ok());
  auto mid = SerializeClusterBinary(rt_, 1, {a}, NoExternals);
  ASSERT_TRUE(mid.ok());
  ASSERT_TRUE(rt_.SetField(a, "count", Value::Int(3)).ok());
  auto fresh = SerializeClusterBinary(rt_, 1, {a}, NoExternals);
  ASSERT_TRUE(fresh.ok());

  auto delta = DiffClusterPayloads(mid->payload, fresh->payload);
  ASSERT_TRUE(delta.ok());

  // Applied against the wrong base: base-digest mismatch, kDataLoss.
  auto wrong = ApplyClusterDelta(base->payload, *delta);
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kDataLoss);

  // Any corrupted delta byte must fail apply, never merge wrong bytes.
  for (size_t i = 4; i < delta->size(); ++i) {
    std::string tampered = *delta;
    tampered[i] = static_cast<char>(tampered[i] ^ 0x01);
    auto merged = ApplyClusterDelta(mid->payload, tampered);
    if (merged.ok()) {
      EXPECT_EQ(*merged, fresh->payload) << "flip at " << i;
    }
  }

  // Mismatched cluster ids are rejected at diff time.
  auto other = SerializeClusterBinary(rt_, 2, {a}, NoExternals);
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(DiffClusterPayloads(base->payload, other->payload).ok());
  // Non-binary inputs are rejected.
  EXPECT_FALSE(DiffClusterPayloads("<cluster/>", fresh->payload).ok());
  EXPECT_FALSE(ApplyClusterDelta("<cluster/>", *delta).ok());
}

// Deterministic LCG (no libc rand dependence so failures replay exactly).
class Lcg {
 public:
  explicit Lcg(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return state_ >> 17;
  }
  uint64_t Below(uint64_t n) { return Next() % n; }

 private:
  uint64_t state_;
};

TEST_F(WireFormatFixture, DeltaFuzzRandomMutations) {
  Lcg rng(0xB1DA5u);
  const double reals[] = {0.0,
                          -0.0,
                          1.5,
                          -3.25e8,
                          1e-300,
                          std::numeric_limits<double>::quiet_NaN(),
                          std::numeric_limits<double>::infinity(),
                          -std::numeric_limits<double>::infinity()};
  const char* strings[] = {"", "a", "hello <&> world", "\x01\x02\x7f",
                           "longer string with some bulk to diff against"};

  LocalScope scope(rt_.heap());
  // A stable pool of external targets (described by identity, never
  // resolved — the fuzz compares bytes, not heaps).
  std::vector<Object*> externals;
  for (int i = 0; i < 3; ++i) {
    externals.push_back(rt_.New(ext_cls_));
    scope.Add(externals.back());
  }

  std::vector<Object*> members;
  for (int i = 0; i < 10; ++i) members.push_back(NewItem(scope, i));

  auto mutate_value = [&](Object* obj) {
    switch (rng.Below(4)) {
      case 0:
        OBISWAP_CHECK(
            rt_.SetField(obj, "count",
                         Value::Int(static_cast<int64_t>(rng.Next()) -
                                    static_cast<int64_t>(rng.Below(2) << 62)))
                .ok());
        break;
      case 1:
        OBISWAP_CHECK(
            rt_.SetField(obj, "weight", Value::Real(reals[rng.Below(8)]))
                .ok());
        break;
      case 2:
        OBISWAP_CHECK(
            rt_.SetField(obj, "label", Value::Str(strings[rng.Below(5)]))
                .ok());
        break;
      case 3: {
        // Retarget the ref slot: nil, a member, or an external.
        uint64_t pick = rng.Below(members.size() + externals.size() + 1);
        Value target = Value::Nil();
        if (pick < members.size()) {
          target = Value::Ref(members[pick]);
        } else if (pick < members.size() + externals.size()) {
          target = Value::Ref(externals[pick - members.size()]);
        }
        obj->RawSlotMutable(0) = target;
        break;
      }
    }
  };

  for (int round = 0; round < 30; ++round) {
    auto base = SerializeClusterBinary(rt_, 1, members, DescribeAny);
    ASSERT_TRUE(base.ok()) << "round " << round << ": "
                           << base.status().ToString();

    // 1-6 random mutations, occasionally including membership churn.
    const uint64_t mutations = 1 + rng.Below(6);
    for (uint64_t m = 0; m < mutations; ++m) {
      switch (rng.Below(8)) {
        case 6:  // add a member
          members.push_back(
              NewItem(scope, static_cast<int64_t>(rng.Next())));
          break;
        case 7:  // remove a member (it stays alive; refs to it go external)
          if (members.size() > 2)
            members.erase(members.begin() +
                          static_cast<ptrdiff_t>(rng.Below(members.size())));
          break;
        default:
          mutate_value(members[rng.Below(members.size())]);
          break;
      }
    }

    auto fresh = SerializeClusterBinary(rt_, 1, members, DescribeAny);
    ASSERT_TRUE(fresh.ok()) << "round " << round << ": "
                            << fresh.status().ToString();
    auto delta = DiffClusterPayloads(base->payload, fresh->payload);
    ASSERT_TRUE(delta.ok()) << "round " << round << ": "
                            << delta.status().ToString();
    auto merged = ApplyClusterDelta(base->payload, *delta);
    ASSERT_TRUE(merged.ok()) << "round " << round << ": "
                             << merged.status().ToString();
    ASSERT_EQ(*merged, fresh->payload) << "round " << round;
    // Unchanged document → the delta degenerates to pure identity and
    // still applies.
    auto self_delta = DiffClusterPayloads(fresh->payload, fresh->payload);
    ASSERT_TRUE(self_delta.ok()) << "round " << round;
    auto self_merged = ApplyClusterDelta(fresh->payload, *self_delta);
    ASSERT_TRUE(self_merged.ok()) << "round " << round;
    EXPECT_EQ(*self_merged, fresh->payload) << "round " << round;
  }
}

// ----------------------------------------------------- delta swap pipeline --

constexpr int kNodes = 20;
constexpr int kPerCluster = 10;
constexpr int64_t kBaseSum = kNodes * (kNodes - 1) / 2;

swap::SwappingManager::Options DeltaOptions() {
  swap::SwappingManager::Options options;
  options.wire_format = "binary";
  options.delta_swap_out = true;
  options.swap_in_cache_bytes = 64 * 1024;
  return options;
}

class DeltaSwapFixture : public ::testing::Test {
 protected:
  explicit DeltaSwapFixture(
      swap::SwappingManager::Options options = DeltaOptions())
      : world_(options), node_cls_(RegisterNodeClass(world_.rt)) {
    world_.AddStore(2, 1 << 20);
    world_.AddStore(3, 1 << 20);
    clusters_ = BuildClusteredList(world_.rt, world_.manager, node_cls_,
                                   kNodes, kPerCluster, "head");
  }

  /// Writes `value` into the head node through the mediated path (the
  /// runtime write barrier is what marks the cluster dirty).
  void SetHeadValue(int64_t value) {
    Object* head = world_.rt.GetGlobal("head")->ref();
    auto result =
        world_.rt.Invoke(head, "set_value", {Value::Int(value)});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }

  int64_t Sum() {
    auto sum = SumList(world_.rt, "head");
    OBISWAP_CHECK(sum.ok());
    return *sum;
  }

  /// Purges the payload cache (0 empties and disables) and re-enables it.
  void PurgeCache() {
    world_.manager.set_swap_in_cache_bytes(0);
    world_.manager.set_swap_in_cache_bytes(64 * 1024);
  }

  MiddlewareWorld world_;
  const runtime::ClassInfo* node_cls_;
  std::vector<SwapClusterId> clusters_;
};

TEST_F(DeltaSwapFixture, DirtyReSwapOutShipsDelta) {
  swap::SwappingManager& m = world_.manager;
  ASSERT_TRUE(m.SwapOut(clusters_[0]).ok());
  const uint64_t full_bytes = m.stats().bytes_swapped_out;
  ASSERT_GT(full_bytes, 0u);
  ASSERT_TRUE(m.SwapIn(clusters_[0]).ok());

  SetHeadValue(100);
  EXPECT_GE(m.stats().fields_marked_dirty, 1u);

  ASSERT_TRUE(m.SwapOut(clusters_[0]).ok());
  EXPECT_EQ(m.stats().delta_swap_outs, 1u);
  EXPECT_EQ(m.stats().delta_fallbacks, 0u);
  EXPECT_GT(m.stats().delta_bytes_saved, 0u);
  const uint64_t delta_bytes = m.stats().bytes_swapped_out - full_bytes;
  // The acceptance bar: a one-field change ships well under half the full
  // payload.
  EXPECT_LE(delta_bytes * 2, full_bytes);

  ASSERT_TRUE(m.SwapIn(clusters_[0]).ok());
  EXPECT_GE(m.stats().delta_base_cache_hits, 1u);
  EXPECT_EQ(Sum(), kBaseSum - 0 + 100);
  EXPECT_EQ(CheckMediationInvariant(world_.rt), "");
}

TEST_F(DeltaSwapFixture, DeltaSwapInFetchesBaseWhenCacheCold) {
  swap::SwappingManager& m = world_.manager;
  ASSERT_TRUE(m.SwapOut(clusters_[0]).ok());
  ASSERT_TRUE(m.SwapIn(clusters_[0]).ok());
  SetHeadValue(100);
  ASSERT_TRUE(m.SwapOut(clusters_[0]).ok());
  ASSERT_EQ(m.stats().delta_swap_outs, 1u);

  // Drop the cached base: the swap-in must fetch the base replicas and the
  // delta, and merge.
  PurgeCache();
  const uint64_t base_hits = m.stats().delta_base_cache_hits;
  ASSERT_TRUE(m.SwapIn(clusters_[0]).ok());
  EXPECT_EQ(m.stats().delta_base_cache_hits, base_hits);
  EXPECT_EQ(Sum(), kBaseSum + 100);
  EXPECT_EQ(CheckMediationInvariant(world_.rt), "");
}

TEST_F(DeltaSwapFixture, SecondDirtyRoundDiffsAgainstTheSameBase) {
  swap::SwappingManager& m = world_.manager;
  ASSERT_TRUE(m.SwapOut(clusters_[0]).ok());
  ASSERT_TRUE(m.SwapIn(clusters_[0]).ok());
  SetHeadValue(100);
  ASSERT_TRUE(m.SwapOut(clusters_[0]).ok());
  ASSERT_TRUE(m.SwapIn(clusters_[0]).ok());
  SetHeadValue(200);
  // The second delta supersedes the first (diffed against the same base,
  // not chained) — its replicas are released, not leaked.
  ASSERT_TRUE(m.SwapOut(clusters_[0]).ok());
  EXPECT_EQ(m.stats().delta_swap_outs, 2u);
  ASSERT_TRUE(m.SwapIn(clusters_[0]).ok());
  EXPECT_EQ(Sum(), kBaseSum + 200);
  m.FlushPendingDrops();
  // Store-key accounting: every stored entry is a current replica record
  // (delta group + base group + any retained image groups).
  size_t recorded = 0;
  for (SwapClusterId id : m.registry().Ids()) {
    const swap::SwapClusterInfo* info = m.registry().Find(id);
    if (info == nullptr) continue;
    if (info->state == swap::SwapState::kSwapped) {
      recorded += info->replicas.size() + info->base_replicas.size();
    } else if (info->state == swap::SwapState::kLoaded &&
               info->clean_image.has_value()) {
      recorded += info->clean_image->replicas.size() +
                  info->clean_image->base_replicas.size();
    }
  }
  size_t stored = 0;
  for (const auto& store : world_.stores) stored += store->entry_count();
  EXPECT_EQ(stored, recorded);
}

TEST_F(DeltaSwapFixture, FallsBackToFullPayloadWhenBaseEvicted) {
  swap::SwappingManager& m = world_.manager;
  ASSERT_TRUE(m.SwapOut(clusters_[0]).ok());
  ASSERT_TRUE(m.SwapIn(clusters_[0]).ok());
  SetHeadValue(100);
  // Evict the cached base before the dirty re-swap-out: no base to diff
  // against, so the full payload ships (correctness over savings).
  PurgeCache();
  ASSERT_TRUE(m.SwapOut(clusters_[0]).ok());
  EXPECT_EQ(m.stats().delta_swap_outs, 0u);
  EXPECT_EQ(m.stats().delta_fallbacks, 1u);
  ASSERT_TRUE(m.SwapIn(clusters_[0]).ok());
  EXPECT_EQ(Sum(), kBaseSum + 100);
}

class XmlModeFixture : public DeltaSwapFixture {
 protected:
  static swap::SwappingManager::Options XmlOptions() {
    swap::SwappingManager::Options options = DeltaOptions();
    options.wire_format = "xml";  // delta flag set but format is text
    return options;
  }
  XmlModeFixture() : DeltaSwapFixture(XmlOptions()) {}
};

TEST_F(XmlModeFixture, XmlModeNeverShipsDeltas) {
  swap::SwappingManager& m = world_.manager;
  ASSERT_TRUE(m.SwapOut(clusters_[0]).ok());
  ASSERT_TRUE(m.SwapIn(clusters_[0]).ok());
  SetHeadValue(100);
  ASSERT_TRUE(m.SwapOut(clusters_[0]).ok());
  EXPECT_EQ(m.stats().delta_swap_outs, 0u);
  EXPECT_EQ(m.stats().delta_fallbacks, 0u);
  ASSERT_TRUE(m.SwapIn(clusters_[0]).ok());
  EXPECT_EQ(Sum(), kBaseSum + 100);
  EXPECT_EQ(CheckMediationInvariant(world_.rt), "");
}

TEST_F(DeltaSwapFixture, WireFormatSwitchMidFlightIsSniffed) {
  swap::SwappingManager& m = world_.manager;
  // Swap out in binary, flip the flag to xml while swapped: the swap-in
  // sniffs the payload bytes, not the current flag.
  ASSERT_TRUE(m.SwapOut(clusters_[0]).ok());
  ASSERT_TRUE(m.set_wire_format("xml").ok());
  PurgeCache();  // force the fetch + deserialize path
  ASSERT_TRUE(m.SwapIn(clusters_[0]).ok());
  EXPECT_EQ(Sum(), kBaseSum);
  // And the reverse: out in xml, back to binary before the swap-in.
  ASSERT_TRUE(m.SwapOut(clusters_[1]).ok());
  ASSERT_TRUE(m.set_wire_format("binary").ok());
  PurgeCache();
  ASSERT_TRUE(m.SwapIn(clusters_[1]).ok());
  EXPECT_EQ(Sum(), kBaseSum);
  EXPECT_FALSE(m.set_wire_format("msgpack").ok());
}

// ------------------------------------------------- delta crash consistency --

swap::SwappingManager::Options DeltaCrashOptions() {
  swap::SwappingManager::Options options = DeltaOptions();
  options.replication_factor = 2;
  options.codec = "rle";
  return options;
}

/// A MiddlewareWorld wired for delta crash testing: local flash, intent
/// journal, fault injector; binary wire format with delta swap-out on.
struct DeltaCrashWorld {
  DeltaCrashWorld()
      : world(DeltaCrashOptions()),
        flash(MiddlewareWorld::kDevice, 1 << 20, world.network.clock()),
        journal(&flash) {
    world.manager.AttachClock(&world.network.clock());
    world.manager.AttachLocalStore(&flash);
    world.manager.AttachIntentJournal(&journal);
    faults.AttachClock(&world.network.clock());
    world.manager.AttachFaultInjector(&faults);
    node_cls = RegisterNodeClass(world.rt);
    world.AddStore(2, 1 << 20);
    world.AddStore(3, 1 << 20);
    clusters = BuildClusteredList(world.rt, world.manager, node_cls, kNodes,
                                  kPerCluster, "head");
  }

  /// Mediated head write; returns false if it could not run (crashed).
  bool SetHead(int64_t value) {
    if (world.manager.crashed()) return false;
    Value head = *world.rt.GetGlobal("head");
    return world.rt.Invoke(head.ref(), "set_value", {Value::Int(value)})
        .ok();
  }

  MiddlewareWorld world;
  persist::FlashStore flash;
  swap::IntentJournal journal;
  swap::FaultInjector faults;
  const runtime::ClassInfo* node_cls = nullptr;
  std::vector<SwapClusterId> clusters;
};

/// The scripted delta pipeline the crash sweep replays: full round trip,
/// two delta swap-outs against the same base (cache-hit merge, then a
/// cold-cache merge that must fetch the base replicas). Tracks the sum the
/// surviving heap must still produce.
void RunDeltaScenario(DeltaCrashWorld& w, int64_t* expected_sum) {
  swap::SwappingManager& m = w.world.manager;
  SwapClusterId c0 = w.clusters[0];
  const auto alive = [&] { return !m.crashed(); };
  *expected_sum = kBaseSum;
  if (alive()) (void)m.SwapOut(c0);
  if (alive()) (void)m.SwapIn(c0);
  if (w.SetHead(100)) *expected_sum = kBaseSum + 100;
  if (alive()) (void)m.SwapOut(c0);   // delta #1 (swap_out.diff)
  if (alive()) (void)m.SwapIn(c0);    // merge from cached base
  if (w.SetHead(200)) *expected_sum = kBaseSum + 200;
  if (alive()) (void)m.SwapOut(c0);   // delta #2, supersedes #1
  if (alive()) {
    m.set_swap_in_cache_bytes(0);     // purge the cached base
    m.set_swap_in_cache_bytes(64 * 1024);
  }
  if (alive()) (void)m.SwapIn(c0);    // merge via swap_in.fetch_base
}

size_t DeltaReplicaRecords(swap::SwappingManager& m) {
  size_t total = 0;
  for (SwapClusterId id : m.registry().Ids()) {
    const swap::SwapClusterInfo* info = m.registry().Find(id);
    if (info == nullptr) continue;
    if (info->state == swap::SwapState::kSwapped) {
      total += info->replicas.size() + info->base_replicas.size();
    } else if (info->state == swap::SwapState::kLoaded &&
               info->clean_image.has_value()) {
      total += info->clean_image->replicas.size() +
               info->clean_image->base_replicas.size();
    }
  }
  return total;
}

size_t DeltaStoredEntries(DeltaCrashWorld& w) {
  size_t total = 0;
  for (const auto& store : w.world.stores) total += store->entry_count();
  total += w.flash.entry_count();
  if (w.flash.Contains(w.journal.flash_key())) --total;  // the journal
  return total;
}

void ExpectDeltaWorldIntact(DeltaCrashWorld& w, int64_t expected_sum,
                            const std::string& label) {
  EXPECT_EQ(CheckMediationInvariant(w.world.rt), "") << label;
  Result<int64_t> sum = SumList(w.world.rt, "head");
  ASSERT_TRUE(sum.ok()) << label << ": " << sum.status().ToString();
  EXPECT_EQ(*sum, expected_sum) << label;
  w.world.manager.FlushPendingDrops();
  EXPECT_EQ(w.world.manager.pending_drop_count(), 0u) << label;
  EXPECT_EQ(DeltaStoredEntries(w), DeltaReplicaRecords(w.world.manager))
      << label << ": leaked or lost store keys";
}

TEST(DeltaCrashSweepTest, EveryFaultPointCrashRecoversWithFullInvariants) {
  // Clean run: enumerate the traversed (point, hits) universe — it must
  // include the delta-specific points or the scenario rotted.
  std::vector<std::pair<std::string, uint64_t>> universe;
  {
    DeltaCrashWorld clean;
    int64_t expected = 0;
    RunDeltaScenario(clean, &expected);
    ASSERT_FALSE(clean.world.manager.crashed());
    ASSERT_EQ(clean.world.manager.stats().delta_swap_outs, 2u);
    for (const auto& [point, hits] : clean.faults.hit_counts())
      universe.emplace_back(point, hits);
    ASSERT_GE(clean.faults.hits("swap_out.diff"), 2u);
    ASSERT_GE(clean.faults.hits("swap_in.fetch_base"), 1u);
    ExpectDeltaWorldIntact(clean, expected, "clean run");
  }

  for (const auto& [point, hits] : universe) {
    for (uint64_t nth = 1; nth <= hits; ++nth) {
      const std::string label =
          "crash at " + point + " hit " + std::to_string(nth);
      DeltaCrashWorld w;
      w.faults.Arm(point, swap::FaultKind::kCrash, nth);
      int64_t expected = 0;
      RunDeltaScenario(w, &expected);
      ASSERT_EQ(w.faults.stats().crashes, 1u) << label;
      ASSERT_TRUE(w.world.manager.crashed()) << label;
      auto report = w.world.manager.Recover();
      ASSERT_TRUE(report.ok()) << label << ": "
                               << report.status().ToString();
      // Immediate recovery never loses data: the heap copy survives any
      // torn delta op.
      EXPECT_EQ(report->clusters_lost, 0u) << label;
      ExpectDeltaWorldIntact(w, expected, label);
      // The recovered world must still be able to delta-swap: one more
      // full round trip through the same cluster.
      swap::SwappingManager& m = w.world.manager;
      if (m.StateOf(w.clusters[0]) == swap::SwapState::kSwapped) {
        ASSERT_TRUE(m.SwapIn(w.clusters[0]).ok()) << label;
      }
      ASSERT_TRUE(w.SetHead(300)) << label;
      ASSERT_TRUE(m.SwapOut(w.clusters[0]).ok()) << label;
      ASSERT_TRUE(m.SwapIn(w.clusters[0]).ok()) << label;
      Result<int64_t> sum = SumList(w.world.rt, "head");
      ASSERT_TRUE(sum.ok()) << label;
      EXPECT_EQ(*sum, kBaseSum + 300) << label;
    }
  }
}

TEST(DeltaCrashSweepTest, EveryFaultPointErrorUnwindsCleanly) {
  std::vector<std::pair<std::string, uint64_t>> universe;
  {
    DeltaCrashWorld clean;
    int64_t expected = 0;
    RunDeltaScenario(clean, &expected);
    for (const auto& [point, hits] : clean.faults.hit_counts())
      universe.emplace_back(point, hits);
  }

  for (const auto& [point, hits] : universe) {
    for (uint64_t nth = 1; nth <= hits; ++nth) {
      const std::string label =
          "error at " + point + " hit " + std::to_string(nth);
      DeltaCrashWorld w;
      w.faults.Arm(point, swap::FaultKind::kError, nth);
      int64_t expected = 0;
      RunDeltaScenario(w, &expected);
      ASSERT_EQ(w.faults.stats().errors, 1u) << label;
      ASSERT_FALSE(w.world.manager.crashed()) << label;
      auto report = w.world.manager.Recover();
      ASSERT_TRUE(report.ok()) << label;
      // Every op the pipeline opened was committed or aborted before the
      // error surfaced (the modeled exception: a failed commit write).
      if (point.find("journal_commit") == std::string::npos) {
        EXPECT_EQ(report->pending_ops, 0u) << label;
      }
      ExpectDeltaWorldIntact(w, expected, label);
    }
  }
}

}  // namespace
}  // namespace obiswap
