// Tests for incremental replication: server clusters, device faults, proxy
// replacement, the network transport, and integration with swapping.
#include <gtest/gtest.h>

#include "test_support.h"

namespace obiswap::replication {
namespace {

using runtime::LocalScope;
using runtime::Object;
using runtime::ObjectKind;
using runtime::Value;
using ::obiswap::testing::RegisterNodeClass;

constexpr DeviceId kPda(1);
constexpr DeviceId kServerDev(100);

class ReplicationFixture : public ::testing::Test {
 protected:
  ReplicationFixture()
      : server_rt_(/*process_id=*/9),
        server_(server_rt_, /*cluster_size=*/4),
        link_(server_),
        endpoint_(device_rt_, link_, kPda, &bus_) {
    server_cls_ = RegisterNodeClass(server_rt_);
    device_cls_ = RegisterNodeClass(device_rt_);
  }

  /// Builds an n-node list on the server and publishes its head.
  Object* PublishList(int n, const std::string& name = "list") {
    LocalScope scope(server_rt_.heap());
    Object** head = scope.Add(nullptr);
    for (int i = n - 1; i >= 0; --i) {
      Object* node = server_rt_.New(server_cls_);
      OBISWAP_CHECK(server_rt_.SetField(node, "value", Value::Int(i)).ok());
      if (*head != nullptr) {
        OBISWAP_CHECK(
            server_rt_.SetField(node, "next", Value::Ref(*head)).ok());
      }
      *head = node;
    }
    OBISWAP_CHECK(server_.PublishRoot(name, *head).ok());
    return *head;
  }

  runtime::Runtime server_rt_;
  runtime::Runtime device_rt_;
  ReplicationServer server_;
  DirectLink link_;
  context::EventBus bus_;
  DeviceEndpoint endpoint_;
  const runtime::ClassInfo* server_cls_ = nullptr;
  const runtime::ClassInfo* device_cls_ = nullptr;
};

// ---------------------------------------------------------------- server --

TEST_F(ReplicationFixture, PublishAndGetRoot) {
  Object* head = PublishList(4);
  auto info = server_.GetRoot("list");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->oid, head->oid());
  EXPECT_EQ(info->class_name, "Node");
  EXPECT_FALSE(server_.GetRoot("nope").ok());
  EXPECT_EQ(server_.PublishRoot("list", head).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(ReplicationFixture, PublishedRootsSurviveMasterGc) {
  Object* head = PublishList(4);
  server_rt_.heap().Collect();
  EXPECT_EQ(server_rt_.heap().live_objects(), 4u);
  (void)head;
}

TEST_F(ReplicationFixture, FetchClusterRespectsClusterSize) {
  Object* head = PublishList(10);
  auto reply = server_.FetchCluster(kPda, head->oid());
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->object_count, 4u);  // cluster_size = 4
  EXPECT_EQ(server_.SentCount(kPda), 4u);
}

TEST_F(ReplicationFixture, FetchOfAlreadyHeldObjectFails) {
  Object* head = PublishList(4);
  ASSERT_TRUE(server_.FetchCluster(kPda, head->oid()).ok());
  EXPECT_EQ(server_.FetchCluster(kPda, head->oid()).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ReplicationFixture, UnknownOidIsNotFound) {
  PublishList(2);
  EXPECT_EQ(server_.FetchCluster(kPda, ObjectId(424242)).status().code(),
            StatusCode::kNotFound);
}

TEST_F(ReplicationFixture, SessionsAreIndependentPerDevice) {
  Object* head = PublishList(4);
  ASSERT_TRUE(server_.FetchCluster(kPda, head->oid()).ok());
  EXPECT_TRUE(server_.FetchCluster(DeviceId(2), head->oid()).ok());
  server_.ForgetDevice(kPda);
  EXPECT_EQ(server_.SentCount(kPda), 0u);
  EXPECT_TRUE(server_.FetchCluster(kPda, head->oid()).ok());
}

TEST_F(ReplicationFixture, AdaptableClusterSize) {
  Object* head = PublishList(10);
  server_.set_cluster_size(10);
  auto reply = server_.FetchCluster(kPda, head->oid());
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->object_count, 10u);
}

// ---------------------------------------------------------------- device --

TEST_F(ReplicationFixture, RootArrivesAsProxyAndFaultsOnInvoke) {
  PublishList(8);
  auto root = endpoint_.FetchRoot("list");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ((*root)->kind(), ObjectKind::kReplicationProxy);
  ASSERT_TRUE(device_rt_.SetGlobal("list", Value::Ref(*root)).ok());

  auto value = device_rt_.Invoke(*root, "get_value");
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  EXPECT_EQ(value->as_int(), 0);
  EXPECT_EQ(endpoint_.stats().object_faults, 1u);
  EXPECT_EQ(endpoint_.stats().objects_replicated, 4u);
}

TEST_F(ReplicationFixture, ProxyReplacementPatchesGlobals) {
  PublishList(8);
  Object* proxy = *endpoint_.FetchRoot("list");
  ASSERT_TRUE(device_rt_.SetGlobal("list", Value::Ref(proxy)).ok());
  ASSERT_TRUE(device_rt_.Invoke(proxy, "get_value").ok());
  // After replication the global must point at the replica, not the proxy.
  Object* now = device_rt_.GetGlobal("list")->ref();
  EXPECT_EQ(now->kind(), ObjectKind::kRegular);
  EXPECT_GE(endpoint_.stats().references_patched, 1u);
}

TEST_F(ReplicationFixture, IncrementalTraversalFaultsClusterByCluster) {
  PublishList(12);  // 3 clusters of 4
  Object* root = *endpoint_.FetchRoot("list");
  ASSERT_TRUE(device_rt_.SetGlobal("list", Value::Ref(root)).ok());
  auto sum = ::obiswap::testing::SumList(device_rt_, "list");
  ASSERT_TRUE(sum.ok()) << sum.status().ToString();
  EXPECT_EQ(*sum, 66);
  EXPECT_EQ(endpoint_.stats().clusters_replicated, 3u);
  EXPECT_EQ(endpoint_.stats().objects_replicated, 12u);
  EXPECT_EQ(server_.SentCount(kPda), 12u);
}

TEST_F(ReplicationFixture, ReplicasKeepGlobalIdentity) {
  Object* master_head = PublishList(4);
  Object* root = *endpoint_.FetchRoot("list");
  ASSERT_TRUE(device_rt_.SetGlobal("list", Value::Ref(root)).ok());
  ASSERT_TRUE(device_rt_.Invoke(root, "get_value").ok());
  Object* replica = endpoint_.FindReplica(master_head->oid());
  ASSERT_NE(replica, nullptr);
  EXPECT_EQ(replica->oid(), master_head->oid());
  EXPECT_EQ(replica->cluster().valid(), true);
}

TEST_F(ReplicationFixture, RecursionAcrossUnreplicatedTailFaults) {
  PublishList(12);
  Object* root = *endpoint_.FetchRoot("list");
  ASSERT_TRUE(device_rt_.SetGlobal("list", Value::Ref(root)).ok());
  auto depth = device_rt_.Invoke(root, "step", {Value::Int(0)});
  ASSERT_TRUE(depth.ok()) << depth.status().ToString();
  EXPECT_EQ(depth->as_int(), 11);
  EXPECT_EQ(endpoint_.stats().clusters_replicated, 3u);
}

TEST_F(ReplicationFixture, MaterializePrefetchesWithoutInvocation) {
  Object* master_head = PublishList(4);
  auto replica = endpoint_.Materialize(master_head->oid());
  ASSERT_TRUE(replica.ok());
  EXPECT_EQ((*replica)->kind(), ObjectKind::kRegular);
  EXPECT_EQ(endpoint_.stats().object_faults, 1u);
}

TEST_F(ReplicationFixture, ClusterReplicatedEventsPublished) {
  PublishList(8);
  std::vector<int64_t> counts;
  bus_.Subscribe(context::kEventClusterReplicated,
                 [&](const context::Event& event) {
                   counts.push_back(event.GetIntOr("count", -1));
                 });
  Object* root = *endpoint_.FetchRoot("list");
  ASSERT_TRUE(device_rt_.SetGlobal("list", Value::Ref(root)).ok());
  ASSERT_TRUE(::obiswap::testing::SumList(device_rt_, "list").ok());
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 4);
  EXPECT_EQ(counts[1], 4);
}

// ---------------------------------------------------------- value refresh --

TEST_F(ReplicationFixture, RefreshValuesPullsMasterState) {
  Object* master_head = PublishList(4);
  Object* root = *endpoint_.FetchRoot("list");
  ASSERT_TRUE(device_rt_.SetGlobal("list", Value::Ref(root)).ok());
  ASSERT_TRUE(device_rt_.Invoke(root, "get_value").ok());  // replicate
  // The master changes a value after replication.
  ASSERT_TRUE(server_rt_.SetField(master_head, "value", Value::Int(42)).ok());
  Object* replica = endpoint_.FindReplica(master_head->oid());
  ASSERT_NE(replica, nullptr);
  EXPECT_EQ(device_rt_.GetField(replica, "value")->as_int(), 0);  // stale
  auto version = endpoint_.RefreshValues(master_head->oid());
  ASSERT_TRUE(version.ok()) << version.status().ToString();
  EXPECT_EQ(device_rt_.GetField(replica, "value")->as_int(), 42);
}

TEST_F(ReplicationFixture, RefreshRequiresResidentReplica) {
  PublishList(4);
  auto result = endpoint_.RefreshValues(ObjectId(999999));
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ReplicationFixture, RefreshDoesNotTouchStructure) {
  Object* master_head = PublishList(4);
  Object* root = *endpoint_.FetchRoot("list");
  ASSERT_TRUE(device_rt_.SetGlobal("list", Value::Ref(root)).ok());
  ASSERT_TRUE(::obiswap::testing::SumList(device_rt_, "list").ok());
  Object* replica = endpoint_.FindReplica(master_head->oid());
  Object* next_before = device_rt_.GetFieldAt(replica, 0).ref();
  // Master relinks its head; refresh must NOT propagate that.
  ASSERT_TRUE(server_rt_.SetField(master_head, "next", Value::Nil()).ok());
  ASSERT_TRUE(endpoint_.RefreshValues(master_head->oid()).ok());
  EXPECT_EQ(device_rt_.GetFieldAt(replica, 0).ref(), next_before);
}

// ------------------------------------------------------------- transport --

class TransportFixture : public ReplicationFixture {
 protected:
  TransportFixture()
      : service_(server_),
        net_link_(network_, kPda, kServerDev, service_),
        net_endpoint_(net_device_rt_, net_link_, kPda, nullptr) {
    network_.AddDevice(kPda);
    network_.AddDevice(kServerDev);
    network_.SetInRange(kPda, kServerDev, true);
    RegisterNodeClass(net_device_rt_);
  }

  net::Network network_;
  ReplicationService service_;
  NetworkLink net_link_;
  runtime::Runtime net_device_rt_;
  DeviceEndpoint net_endpoint_;
};

TEST_F(TransportFixture, ReplicationOverTheBridgeWorks) {
  PublishList(8);
  Object* root = *net_endpoint_.FetchRoot("list");
  ASSERT_TRUE(net_device_rt_.SetGlobal("list", Value::Ref(root)).ok());
  auto sum = ::obiswap::testing::SumList(net_device_rt_, "list");
  ASSERT_TRUE(sum.ok()) << sum.status().ToString();
  EXPECT_EQ(*sum, 28);
  EXPECT_GT(network_.stats().transfers, 0u);
  EXPECT_GT(network_.clock().now_us(), 0u);
}

TEST_F(TransportFixture, ServerOutOfRangeIsUnavailable) {
  PublishList(4);
  network_.SetInRange(kPda, kServerDev, false);
  auto root = net_endpoint_.FetchRoot("list");
  ASSERT_FALSE(root.ok());
  EXPECT_EQ(root.status().code(), StatusCode::kUnavailable);
}

TEST_F(TransportFixture, RemoteErrorsCrossTheBridge) {
  PublishList(4);
  auto missing = net_link_.GetRoot("missing");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST_F(TransportFixture, ClusterPayloadSurvivesEnvelope) {
  PublishList(4);
  auto info = net_link_.GetRoot("list");
  ASSERT_TRUE(info.ok());
  auto reply = net_link_.FetchCluster(kPda, info->oid);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->object_count, 4u);
  EXPECT_NE(reply->xml.find("<swap-cluster"), std::string::npos);
}

// ------------------------------------------- replication + swapping glue --

TEST(ReplicationSwapTest, ReplicatedClustersBecomeSwapClusters) {
  using ::obiswap::testing::MiddlewareWorld;
  runtime::Runtime server_rt(9);
  const runtime::ClassInfo* server_cls = RegisterNodeClass(server_rt);
  ReplicationServer server(server_rt, /*cluster_size=*/5);

  swap::SwappingManager::Options options;
  options.clusters_per_swap_cluster = 2;
  MiddlewareWorld world{options};
  RegisterNodeClass(world.rt);
  world.AddStore(2, 10 * 1024 * 1024);
  DirectLink link(server);
  DeviceEndpoint endpoint(world.rt, link, MiddlewareWorld::kDevice,
                          &world.bus);

  // Publish a 20-node list; 4 replication clusters -> 2 swap-clusters.
  {
    LocalScope scope(server_rt.heap());
    Object** head = scope.Add(nullptr);
    for (int i = 19; i >= 0; --i) {
      Object* node = server_rt.New(server_cls);
      OBISWAP_CHECK(server_rt.SetField(node, "value", Value::Int(i)).ok());
      if (*head != nullptr)
        OBISWAP_CHECK(server_rt.SetField(node, "next", Value::Ref(*head)).ok());
      *head = node;
    }
    OBISWAP_CHECK(server.PublishRoot("list", *head).ok());
  }

  Object* root = *endpoint.FetchRoot("list");
  ASSERT_TRUE(world.rt.SetGlobal("list", Value::Ref(root)).ok());
  auto sum = ::obiswap::testing::SumList(world.rt, "list");
  ASSERT_TRUE(sum.ok()) << sum.status().ToString();
  EXPECT_EQ(*sum, 190);

  // 4 replication clusters grouped 2-per-swap-cluster.
  EXPECT_EQ(world.manager.registry().size(), 2u);
  for (SwapClusterId id : world.manager.registry().Ids()) {
    const swap::SwapClusterInfo* info = world.manager.registry().Find(id);
    EXPECT_EQ(info->replication_clusters.size(), 2u);
  }
  EXPECT_EQ(::obiswap::testing::CheckMediationInvariant(world.rt), "");

  // The replicated graph can now swap like any local graph.
  SwapClusterId first = world.manager.registry().Ids()[0];
  ASSERT_TRUE(world.manager.SwapOut(first).ok()) ;
  world.rt.heap().Collect();
  auto sum2 = ::obiswap::testing::SumList(world.rt, "list");
  ASSERT_TRUE(sum2.ok()) << sum2.status().ToString();
  EXPECT_EQ(*sum2, 190);
}

}  // namespace
}  // namespace obiswap::replication
