// Tests for the event bus, property registry, and the memory/connectivity
// monitors (Context Management).
#include <gtest/gtest.h>

#include "context/context.h"
#include "context/events.h"
#include "net/bridge.h"
#include "runtime/runtime.h"

namespace obiswap::context {
namespace {

// ------------------------------------------------------------------- bus --

TEST(EventBusTest, DeliversToTypeSubscribers) {
  EventBus bus;
  int count = 0;
  bus.Subscribe("ping", [&](const Event&) { ++count; });
  bus.Publish(Event("ping"));
  bus.Publish(Event("pong"));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(bus.published_count(), 2u);
}

TEST(EventBusTest, SubscribeAllSeesEverything) {
  EventBus bus;
  int count = 0;
  bus.SubscribeAll([&](const Event&) { ++count; });
  bus.Publish(Event("a"));
  bus.Publish(Event("b"));
  EXPECT_EQ(count, 2);
}

TEST(EventBusTest, UnsubscribeStopsDelivery) {
  EventBus bus;
  int count = 0;
  uint64_t token = bus.Subscribe("x", [&](const Event&) { ++count; });
  bus.Publish(Event("x"));
  bus.Unsubscribe(token);
  bus.Publish(Event("x"));
  EXPECT_EQ(count, 1);
}

TEST(EventBusTest, HandlersRunInSubscriptionOrder) {
  EventBus bus;
  std::vector<int> order;
  bus.Subscribe("x", [&](const Event&) { order.push_back(1); });
  bus.Subscribe("x", [&](const Event&) { order.push_back(2); });
  bus.Publish(Event("x"));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(EventBusTest, ReentrantPublishIsDelivered) {
  EventBus bus;
  int follow_ups = 0;
  bus.Subscribe("trigger", [&](const Event&) {
    bus.Publish(Event("follow-up"));
  });
  bus.Subscribe("follow-up", [&](const Event&) { ++follow_ups; });
  bus.Publish(Event("trigger"));
  EXPECT_EQ(follow_ups, 1);
}

TEST(EventBusTest, HandlerMaySubscribeDuringDispatch) {
  EventBus bus;
  int late = 0;
  bus.Subscribe("x", [&](const Event&) {
    bus.Subscribe("x", [&](const Event&) { ++late; });
  });
  bus.Publish(Event("x"));  // must not crash or invoke the new handler
  EXPECT_EQ(late, 0);
  bus.Publish(Event("x"));
  EXPECT_EQ(late, 1);
}

TEST(EventBusTest, HandlerMayUnsubscribeItselfDuringDispatch) {
  EventBus bus;
  int calls = 0;
  uint64_t token = 0;
  token = bus.Subscribe("x", [&](const Event&) {
    ++calls;
    bus.Unsubscribe(token);
  });
  bus.Publish(Event("x"));
  bus.Publish(Event("x"));
  EXPECT_EQ(calls, 1);
}

TEST(EventBusTest, UnsubscribingLaterHandlerTakesEffectNextPublish) {
  // Publish iterates over a *copy* of the handler list, so a handler that
  // unsubscribes a later handler does not suppress it for the in-flight
  // dispatch — only for subsequent ones. This pins down the documented
  // snapshot semantics.
  EventBus bus;
  int second_calls = 0;
  uint64_t second = 0;
  bus.Subscribe("x", [&](const Event&) { bus.Unsubscribe(second); });
  second = bus.Subscribe("x", [&](const Event&) { ++second_calls; });
  bus.Publish(Event("x"));
  EXPECT_EQ(second_calls, 1);  // still ran this dispatch
  bus.Publish(Event("x"));
  EXPECT_EQ(second_calls, 1);  // gone for the next one
}

TEST(EventBusTest, SubscribeAllHandlerMayUnsubscribeItself) {
  EventBus bus;
  int calls = 0;
  uint64_t token = 0;
  token = bus.SubscribeAll([&](const Event&) {
    ++calls;
    bus.Unsubscribe(token);
  });
  bus.Publish(Event("a"));
  bus.Publish(Event("b"));
  EXPECT_EQ(calls, 1);
}

TEST(EventBusTest, PublishFromInsideHandlerSeesConsistentCounts) {
  // A handler that re-publishes must not disturb delivery of the outer
  // event to the remaining handlers (copy semantics again), and both
  // events count toward published_count().
  EventBus bus;
  std::vector<std::string> order;
  bus.Subscribe("outer", [&](const Event&) {
    order.push_back("outer-1");
    bus.Publish(Event("inner"));
  });
  bus.Subscribe("inner", [&](const Event&) { order.push_back("inner"); });
  bus.Subscribe("outer", [&](const Event&) { order.push_back("outer-2"); });
  bus.Publish(Event("outer"));
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "outer-1");
  EXPECT_EQ(order[1], "inner");
  EXPECT_EQ(order[2], "outer-2");
  EXPECT_EQ(bus.published_count(), 2u);
}

TEST(EventTest, GetIntOrFallsBack) {
  Event event("e");
  event.Set("present", int64_t{5}).Set("text", std::string("7"));
  EXPECT_EQ(event.GetIntOr("present", -1), 5);
  EXPECT_EQ(event.GetIntOr("absent", -1), -1);
  // A string-typed property is not an int: the fallback wins (no coercion).
  EXPECT_EQ(event.GetIntOr("text", -1), -1);
}

TEST(EventTest, PropertiesRoundTrip) {
  Event event("e");
  event.Set("name", std::string("cluster-2")).Set("count", int64_t{7});
  EXPECT_EQ(*event.GetString("name"), "cluster-2");
  EXPECT_EQ(*event.GetInt("count"), 7);
  EXPECT_EQ(event.GetIntOr("missing", -1), -1);
  EXPECT_FALSE(event.GetString("missing").ok());
  EXPECT_FALSE(event.GetInt("missing").ok());
}

// ------------------------------------------------------------ properties --

TEST(PropertyRegistryTest, TypedAccess) {
  PropertyRegistry props;
  props.SetInt("a", 3);
  props.SetReal("b", 1.5);
  props.SetString("c", "text");
  EXPECT_EQ(*props.GetInt("a"), 3);
  EXPECT_DOUBLE_EQ(*props.GetReal("b"), 1.5);
  EXPECT_EQ(*props.GetString("c"), "text");
  EXPECT_FALSE(props.GetInt("b").ok());
  EXPECT_TRUE(props.Has("a"));
  EXPECT_FALSE(props.Has("zzz"));
}

TEST(PropertyRegistryTest, NumericCoercesInts) {
  PropertyRegistry props;
  props.SetInt("n", 4);
  props.SetReal("r", 0.5);
  EXPECT_DOUBLE_EQ(*props.GetNumeric("n"), 4.0);
  EXPECT_DOUBLE_EQ(*props.GetNumeric("r"), 0.5);
  props.SetString("s", "x");
  EXPECT_FALSE(props.GetNumeric("s").ok());
}

// -------------------------------------------------------- memory monitor --

TEST(MemoryMonitorTest, EdgeTriggeredPressureAndRelief) {
  runtime::Runtime rt(1, 100 * 1024);
  EventBus bus;
  PropertyRegistry props;
  MemoryMonitor monitor(rt.heap(), bus, props, 0.80, 0.50);
  int pressure = 0;
  int relief = 0;
  bus.Subscribe(kEventMemoryPressure, [&](const Event&) { ++pressure; });
  bus.Subscribe(kEventMemoryRelief, [&](const Event&) { ++relief; });

  const runtime::ClassInfo* cls =
      *rt.types().Register(runtime::ClassBuilder("Pad").PayloadBytes(8192));
  runtime::LocalScope scope(rt.heap());
  monitor.Poll();
  EXPECT_EQ(pressure, 0);
  EXPECT_FALSE(monitor.under_pressure());

  std::vector<runtime::Object**> pads;
  while (rt.heap().used_bytes() <
         static_cast<size_t>(0.85 * 100 * 1024)) {
    pads.push_back(scope.Add(rt.New(cls)));
  }
  monitor.Poll();
  monitor.Poll();  // edge-triggered: only one event
  EXPECT_EQ(pressure, 1);
  EXPECT_TRUE(monitor.under_pressure());
  EXPECT_GT(*props.GetReal("mem.used_ratio"), 0.8);

  // Drop most pads and collect: relief crossing.
  for (auto** pad : pads) *pad = nullptr;
  rt.heap().Collect();
  monitor.Poll();
  monitor.Poll();
  EXPECT_EQ(relief, 1);
  EXPECT_FALSE(monitor.under_pressure());
}

TEST(MemoryMonitorTest, UnboundedHeapNeverPressures) {
  runtime::Runtime rt;  // SIZE_MAX capacity
  EventBus bus;
  PropertyRegistry props;
  MemoryMonitor monitor(rt.heap(), bus, props);
  int pressure = 0;
  bus.Subscribe(kEventMemoryPressure, [&](const Event&) { ++pressure; });
  monitor.Poll();
  EXPECT_EQ(pressure, 0);
  EXPECT_DOUBLE_EQ(monitor.used_ratio(), 0.0);
}

// -------------------------------------------------- connectivity monitor --

TEST(ConnectivityMonitorTest, PublishesOnStoreSetChanges) {
  net::Network network;
  net::Discovery discovery(network);
  EventBus bus;
  PropertyRegistry props;
  DeviceId pda(1);
  DeviceId store_dev(2);
  network.AddDevice(pda);
  network.AddDevice(store_dev);
  ConnectivityMonitor monitor(network, discovery, pda, bus, props);
  int changes = 0;
  bus.Subscribe(kEventConnectivityChanged, [&](const Event&) { ++changes; });

  monitor.Poll();  // nothing nearby yet
  EXPECT_EQ(changes, 0);

  net::StoreNode store(store_dev, 4096);
  discovery.Announce(&store);
  network.SetInRange(pda, store_dev, true);
  monitor.Poll();
  EXPECT_EQ(changes, 1);
  EXPECT_EQ(monitor.nearby().size(), 1u);
  EXPECT_EQ(*props.GetInt("net.nearby_stores"), 1);
  EXPECT_EQ(*props.GetInt("net.nearby_free_bytes"), 4096);

  monitor.Poll();  // unchanged set: no event
  EXPECT_EQ(changes, 1);

  network.SetOnline(store_dev, false);  // store wanders off
  monitor.Poll();
  EXPECT_EQ(changes, 2);
  EXPECT_TRUE(monitor.nearby().empty());
}

}  // namespace
}  // namespace obiswap::context
