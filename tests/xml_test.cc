// Tests for the XML document model, writer and parser.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "xml/node.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace obiswap::xml {
namespace {

// ------------------------------------------------------------------ node --

TEST(XmlNodeTest, ElementBasics) {
  auto node = Node::Element("swap-cluster");
  EXPECT_FALSE(node->is_text());
  EXPECT_EQ(node->name(), "swap-cluster");
  EXPECT_TRUE(node->children().empty());
}

TEST(XmlNodeTest, SetAndFindAttr) {
  auto node = Node::Element("object");
  node->SetAttr("class", "Node");
  node->SetIntAttr("oid", 42);
  ASSERT_NE(node->FindAttr("class"), nullptr);
  EXPECT_EQ(*node->FindAttr("class"), "Node");
  EXPECT_EQ(*node->GetIntAttr("oid"), 42);
  EXPECT_EQ(node->FindAttr("missing"), nullptr);
}

TEST(XmlNodeTest, SetAttrReplacesExisting) {
  auto node = Node::Element("x");
  node->SetAttr("k", "1");
  node->SetAttr("k", "2");
  EXPECT_EQ(node->attrs().size(), 1u);
  EXPECT_EQ(*node->FindAttr("k"), "2");
}

TEST(XmlNodeTest, GetAttrErrors) {
  auto node = Node::Element("x");
  EXPECT_FALSE(node->GetAttr("absent").ok());
  node->SetAttr("n", "abc");
  EXPECT_FALSE(node->GetIntAttr("n").ok());
  EXPECT_EQ(*node->GetIntAttrOr("absent", 9), 9);
}

TEST(XmlNodeTest, ChildrenAndInnerText) {
  auto root = Node::Element("root");
  root->AddElement("a");
  root->AddText("hello ");
  root->AddElement("b")->SetAttr("x", "1");
  root->AddText("world");
  EXPECT_EQ(root->InnerText(), "hello world");
  EXPECT_NE(root->FindChild("a"), nullptr);
  EXPECT_NE(root->FindChild("b"), nullptr);
  EXPECT_EQ(root->FindChild("c"), nullptr);
  EXPECT_EQ(root->FindChildren("a").size(), 1u);
  EXPECT_EQ(root->SubtreeSize(), 5u);
}

// ---------------------------------------------------------------- writer --

TEST(XmlWriterTest, EmptyElement) {
  auto node = Node::Element("empty");
  EXPECT_EQ(Write(*node), "<empty/>");
}

TEST(XmlWriterTest, AttributesAndText) {
  auto node = Node::Element("f");
  node->SetAttr("n", "next");
  node->AddText("12");
  EXPECT_EQ(Write(*node), "<f n=\"next\">12</f>");
}

TEST(XmlWriterTest, EscapesTextAndAttrs) {
  auto node = Node::Element("e");
  node->SetAttr("a", "x<y&\"z'");
  node->AddText("1<2 & 3>2");
  std::string out = Write(*node);
  EXPECT_EQ(out,
            "<e a=\"x&lt;y&amp;&quot;z&apos;\">1&lt;2 &amp; 3&gt;2</e>");
}

TEST(XmlWriterTest, Declaration) {
  auto node = Node::Element("r");
  WriteOptions options;
  options.declaration = true;
  std::string out = Write(*node, options);
  EXPECT_TRUE(out.find("<?xml") == 0);
}

TEST(XmlWriterTest, PrettyNests) {
  auto root = Node::Element("a");
  root->AddElement("b")->AddElement("c");
  WriteOptions options;
  options.pretty = true;
  std::string out = Write(*root, options);
  EXPECT_NE(out.find("  <b>"), std::string::npos);
  EXPECT_NE(out.find("    <c/>"), std::string::npos);
}

// ---------------------------------------------------------------- parser --

TEST(XmlParserTest, MinimalDocument) {
  auto result = Parse("<root/>");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ((*result)->name(), "root");
}

TEST(XmlParserTest, AttributesBothQuoteStyles) {
  auto result = Parse("<o class=\"Node\" oid='7'/>");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*(*result)->FindAttr("class"), "Node");
  EXPECT_EQ(*(*result)->GetIntAttr("oid"), 7);
}

TEST(XmlParserTest, NestedElementsAndText) {
  auto result = Parse("<a><b>hi</b><c x=\"1\"/>tail</a>");
  ASSERT_TRUE(result.ok());
  const Node& root = **result;
  ASSERT_NE(root.FindChild("b"), nullptr);
  EXPECT_EQ(root.FindChild("b")->InnerText(), "hi");
  EXPECT_EQ(root.InnerText(), "tail");
}

TEST(XmlParserTest, EntityDecoding) {
  auto result = Parse("<t a=\"&lt;&amp;&gt;\">&quot;&apos;&#65;&#x42;</t>");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*(*result)->FindAttr("a"), "<&>");
  EXPECT_EQ((*result)->InnerText(), "\"'AB");
}

TEST(XmlParserTest, NumericEntityUtf8) {
  auto result = Parse("<t>&#233;&#x20AC;</t>");  // é €
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->InnerText(), "\xC3\xA9\xE2\x82\xAC");
}

TEST(XmlParserTest, CommentsSkipped) {
  auto result = Parse("<!-- head --><a><!-- in -->x<!-- out --></a>");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->InnerText(), "x");
}

TEST(XmlParserTest, CdataPreserved) {
  auto result = Parse("<a><![CDATA[1<2&3]]></a>");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->InnerText(), "1<2&3");
}

TEST(XmlParserTest, DeclarationAndDoctypeSkipped) {
  auto result = Parse(
      "<?xml version=\"1.0\"?><!DOCTYPE policies><policies/>");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->name(), "policies");
}

TEST(XmlParserTest, WhitespaceInTags) {
  auto result = Parse("<a  x = \"1\"   y='2' ></a>");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*(*result)->FindAttr("x"), "1");
  EXPECT_EQ(*(*result)->FindAttr("y"), "2");
}

struct BadInput {
  const char* label;
  const char* text;
};

class XmlParserErrorTest : public ::testing::TestWithParam<BadInput> {};

TEST_P(XmlParserErrorTest, RejectsMalformedInput) {
  auto result = Parse(GetParam().text);
  EXPECT_FALSE(result.ok()) << GetParam().label;
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, XmlParserErrorTest,
    ::testing::Values(
        BadInput{"empty", ""},
        BadInput{"text_only", "just text"},
        BadInput{"unterminated_tag", "<a"},
        BadInput{"unterminated_element", "<a><b></b>"},
        BadInput{"mismatched_close", "<a></b>"},
        BadInput{"trailing_garbage", "<a/><b/>"},
        BadInput{"bad_entity", "<a>&nope;</a>"},
        BadInput{"unterminated_entity", "<a>&amp</a>"},
        BadInput{"lt_in_attr", "<a x=\"<\"/>"},
        BadInput{"unquoted_attr", "<a x=1/>"},
        BadInput{"duplicate_attr", "<a x=\"1\" x=\"2\"/>"},
        BadInput{"unterminated_comment", "<a><!-- x</a>"},
        BadInput{"unterminated_cdata", "<a><![CDATA[x</a>"},
        BadInput{"bad_char_ref", "<a>&#xZZ;</a>"},
        BadInput{"char_ref_out_of_range", "<a>&#x110000;</a>"}),
    [](const ::testing::TestParamInfo<BadInput>& info) {
      return info.param.label;
    });

TEST(XmlParserTest, ErrorsReportLineNumbers) {
  auto result = Parse("<a>\n<b>\n</c>\n</a>");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos)
      << result.status().ToString();
}

// ------------------------------------------------------------ round trip --

// Property: Write(Parse(Write(tree))) == Write(tree) for random trees.
std::unique_ptr<Node> RandomTree(Rng& rng, int depth) {
  auto node = Node::Element("n" + std::to_string(rng.NextBelow(5)));
  int attrs = static_cast<int>(rng.NextBelow(3));
  for (int i = 0; i < attrs; ++i) {
    node->SetAttr("a" + std::to_string(i),
                  "v<&\"'" + std::to_string(rng.Next() % 1000));
  }
  if (depth < 3) {
    int children = static_cast<int>(rng.NextBelow(4));
    for (int i = 0; i < children; ++i) {
      if (rng.NextBool(0.3)) {
        node->AddText("text & <stuff> " + std::to_string(rng.NextBelow(100)));
      } else {
        node->AddChild(RandomTree(rng, depth + 1));
      }
    }
  }
  return node;
}

class XmlRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(XmlRoundTripTest, WriteParseWriteIsStable) {
  Rng rng(GetParam());
  auto tree = RandomTree(rng, 0);
  std::string first = Write(*tree);
  auto parsed = Parse(first);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << first;
  EXPECT_EQ(Write(**parsed), first);
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlRoundTripTest,
                         ::testing::Range<uint64_t>(1, 21));

// Property: mutated documents never crash the parser — they either parse
// (the mutation hit text content) or fail cleanly with kDataLoss.
class XmlFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(XmlFuzzTest, MutatedDocumentsFailCleanly) {
  Rng rng(GetParam() * 7919);
  auto tree = RandomTree(rng, 0);
  std::string valid = Write(*tree);
  for (int round = 0; round < 200; ++round) {
    std::string mutated = valid;
    int edits = 1 + static_cast<int>(rng.NextBelow(4));
    for (int e = 0; e < edits && !mutated.empty(); ++e) {
      size_t pos = rng.NextBelow(mutated.size());
      switch (rng.NextBelow(3)) {
        case 0:  // flip to a random byte (including NUL and specials)
          mutated[pos] = static_cast<char>(rng.NextBelow(256));
          break;
        case 1:  // delete a byte
          mutated.erase(pos, 1);
          break;
        case 2:  // duplicate a byte
          mutated.insert(pos, 1, mutated[pos]);
          break;
      }
    }
    auto result = Parse(mutated);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
    } else {
      // A surviving parse must itself round-trip.
      std::string rewritten = Write(**result);
      auto reparsed = Parse(rewritten);
      ASSERT_TRUE(reparsed.ok()) << rewritten;
    }
  }
}

TEST_P(XmlFuzzTest, TruncationsFailCleanly) {
  Rng rng(GetParam() * 104729);
  auto tree = RandomTree(rng, 0);
  std::string valid = Write(*tree);
  for (size_t cut = 0; cut < valid.size(); cut += 1 + rng.NextBelow(3)) {
    auto result = Parse(valid.substr(0, cut));
    if (result.ok()) {
      // Only possible when the prefix happens to be a complete document.
      EXPECT_EQ(Write(**result), valid.substr(0, cut));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlFuzzTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace obiswap::xml
