// Durability layer tests: K-replica placement, failover swap-in under
// departure / corruption / crash, the DurabilityMonitor's churn recovery
// (forget + re-replicate + evacuate), the deferred-drop retry queue, the
// store retry idempotency + backoff satellites, and the policy hook that
// raises the replication factor when stores churn.
#include <gtest/gtest.h>

#include "test_support.h"

namespace obiswap {
namespace {

using runtime::Value;
using ::obiswap::testing::BuildClusteredList;
using ::obiswap::testing::MiddlewareWorld;
using ::obiswap::testing::RegisterNodeClass;
using ::obiswap::testing::SumList;

constexpr int kListLength = 12;
constexpr int64_t kListSum = kListLength * (kListLength - 1) / 2;

swap::SwappingManager::Options TwoReplicaOptions() {
  swap::SwappingManager::Options options;
  options.replication_factor = 2;
  return options;
}

/// The StoreNode a world-owned store list holds for `device`.
net::StoreNode* NodeFor(MiddlewareWorld& world, DeviceId device) {
  for (auto& store : world.stores) {
    if (store->device() == device) return store.get();
  }
  return nullptr;
}

TEST(ReplicationTest, SwapOutPlacesKReplicasOnDistinctDevices) {
  MiddlewareWorld world(TwoReplicaOptions());
  const runtime::ClassInfo* node_cls = RegisterNodeClass(world.rt);
  net::StoreNode* store_a = world.AddStore(2, 1 << 20);
  net::StoreNode* store_b = world.AddStore(3, 1 << 20);
  auto clusters = BuildClusteredList(world.rt, world.manager, node_cls,
                                     kListLength, kListLength, "head");

  ASSERT_TRUE(world.manager.SwapOut(clusters[0]).ok());
  const swap::SwapClusterInfo* info =
      world.manager.registry().Find(clusters[0]);
  ASSERT_EQ(info->replicas.size(), 2u);
  EXPECT_NE(info->replicas[0].device, info->replicas[1].device);
  EXPECT_NE(info->replicas[0].key, info->replicas[1].key);
  EXPECT_EQ(store_a->entry_count() + store_b->entry_count(), 2u);
  EXPECT_EQ(world.manager.stats().replicas_placed, 2u);
  EXPECT_EQ(world.manager.stats().under_replicated_outs, 0u);

  // Swap-in retains both replicas as the cluster's clean image; the first
  // write invalidates it and broadcasts the drop to every replica.
  ASSERT_TRUE(world.manager.SwapIn(clusters[0]).ok());
  EXPECT_EQ(store_a->entry_count() + store_b->entry_count(), 2u);
  ASSERT_NE(info->ActiveReplicas(), nullptr);
  EXPECT_EQ(info->ActiveReplicas()->size(), 2u);
  EXPECT_EQ(*SumList(world.rt, "head"), kListSum);  // walk reads, no writes
  world.manager.MarkDirty(clusters[0]);
  EXPECT_EQ(store_a->entry_count() + store_b->entry_count(), 0u);
  EXPECT_EQ(world.manager.pending_drop_count(), 0u);
}

TEST(ReplicationTest, SwapInSurvivesPermanentPrimaryDeparture) {
  MiddlewareWorld world(TwoReplicaOptions());
  const runtime::ClassInfo* node_cls = RegisterNodeClass(world.rt);
  world.AddStore(2, 1 << 20);
  world.AddStore(3, 1 << 20);
  auto clusters = BuildClusteredList(world.rt, world.manager, node_cls,
                                     kListLength, kListLength, "head");

  ASSERT_TRUE(world.manager.SwapOut(clusters[0]).ok());
  const swap::SwapClusterInfo* info =
      world.manager.registry().Find(clusters[0]);
  DeviceId primary = info->replicas[0].device;
  DeviceId survivor = info->replicas[1].device;
  world.network.SetOnline(primary, false);

  ASSERT_TRUE(world.manager.SwapIn(clusters[0]).ok());
  EXPECT_EQ(*SumList(world.rt, "head"), kListSum);
  // Both replicas are retained as the clean image (the primary's copy is
  // out of range, not gone). The first write invalidates the image: the
  // survivor's copy drops immediately, the departed primary's is parked.
  EXPECT_EQ(NodeFor(world, survivor)->entry_count(), 1u);
  world.manager.MarkDirty(clusters[0]);
  EXPECT_EQ(NodeFor(world, survivor)->entry_count(), 0u);
  EXPECT_EQ(world.manager.pending_drop_count(), 1u);
  EXPECT_EQ(world.manager.stats().drops_deferred, 1u);
  EXPECT_EQ(NodeFor(world, primary)->entry_count(), 1u);

  // ...and drained when it reconnects.
  world.network.SetOnline(primary, true);
  EXPECT_EQ(world.manager.FlushPendingDrops(), 1u);
  EXPECT_EQ(world.manager.pending_drop_count(), 0u);
  EXPECT_EQ(NodeFor(world, primary)->entry_count(), 0u);
}

TEST(ReplicationTest, CorruptedFirstReplicaFailsOverWithDataLossCounted) {
  MiddlewareWorld world(TwoReplicaOptions());
  const runtime::ClassInfo* node_cls = RegisterNodeClass(world.rt);
  world.AddStore(2, 1 << 20);
  world.AddStore(3, 1 << 20);
  auto clusters = BuildClusteredList(world.rt, world.manager, node_cls,
                                     kListLength, kListLength, "head");

  ASSERT_TRUE(world.manager.SwapOut(clusters[0]).ok());
  const swap::SwapClusterInfo* info =
      world.manager.registry().Find(clusters[0]);
  // At-rest corruption on the replica the fetch order tries first.
  ASSERT_TRUE(NodeFor(world, info->replicas[0].device)
                  ->CorruptStoredPayload(info->replicas[0].key)
                  .ok());

  ASSERT_TRUE(world.manager.SwapIn(clusters[0]).ok());
  EXPECT_GE(world.manager.stats().data_loss_failovers, 1u);
  EXPECT_EQ(world.manager.stats().failover_fetches, 1u);
  EXPECT_EQ(*SumList(world.rt, "head"), kListSum);
}

TEST(ReplicationTest, CrashedStoreFailsOverToSurvivor) {
  MiddlewareWorld world(TwoReplicaOptions());
  const runtime::ClassInfo* node_cls = RegisterNodeClass(world.rt);
  world.AddStore(2, 1 << 20);
  world.AddStore(3, 1 << 20);
  auto clusters = BuildClusteredList(world.rt, world.manager, node_cls,
                                     kListLength, kListLength, "head");

  ASSERT_TRUE(world.manager.SwapOut(clusters[0]).ok());
  const swap::SwapClusterInfo* info =
      world.manager.registry().Find(clusters[0]);
  net::StoreNode* primary = NodeFor(world, info->replicas[0].device);
  net::StoreNode::FaultPlan plan;
  plan.crash_after_ops = 0;  // the very next operation kills it
  primary->InjectFaults(plan);

  ASSERT_TRUE(world.manager.SwapIn(clusters[0]).ok());
  EXPECT_TRUE(primary->crashed());
  EXPECT_GE(primary->stats().faulted_ops, 1u);
  EXPECT_EQ(world.manager.stats().failover_fetches, 1u);
  EXPECT_EQ(*SumList(world.rt, "head"), kListSum);
}

TEST(DurabilityMonitorTest, UnderReplicatedSwapOutIsToppedUpByPoll) {
  MiddlewareWorld world(TwoReplicaOptions());
  const runtime::ClassInfo* node_cls = RegisterNodeClass(world.rt);
  world.AddStore(2, 1 << 20);  // only one store in range at swap-out time
  auto clusters = BuildClusteredList(world.rt, world.manager, node_cls,
                                     kListLength, kListLength, "head");

  ASSERT_TRUE(world.manager.SwapOut(clusters[0]).ok());
  EXPECT_EQ(world.manager.stats().under_replicated_outs, 1u);
  const swap::SwapClusterInfo* info =
      world.manager.registry().Find(clusters[0]);
  ASSERT_EQ(info->replicas.size(), 1u);

  int re_replicated_events = 0;
  world.bus.Subscribe(context::kEventReReplicated,
                      [&](const context::Event&) { ++re_replicated_events; });
  swap::DurabilityMonitor monitor(world.manager, world.discovery,
                                  MiddlewareWorld::kDevice, world.bus);
  net::StoreNode* late_store = world.AddStore(3, 1 << 20);
  monitor.Poll();

  EXPECT_EQ(info->replicas.size(), 2u);
  EXPECT_EQ(late_store->entry_count(), 1u);
  EXPECT_EQ(re_replicated_events, 1);
  EXPECT_EQ(monitor.stats().clusters_re_replicated, 1u);
  EXPECT_EQ(world.manager.stats().re_replications, 1u);
  EXPECT_GT(world.manager.stats().bytes_re_replicated, 0u);
  ASSERT_TRUE(world.manager.SwapIn(clusters[0]).ok());
  EXPECT_EQ(*SumList(world.rt, "head"), kListSum);
}

TEST(DurabilityMonitorTest, SilentDepartureIsPresumedAfterMissedPolls) {
  MiddlewareWorld world(TwoReplicaOptions());
  const runtime::ClassInfo* node_cls = RegisterNodeClass(world.rt);
  world.AddStore(2, 1 << 20);
  world.AddStore(3, 1 << 20);
  world.AddStore(4, 1 << 20);
  auto clusters = BuildClusteredList(world.rt, world.manager, node_cls,
                                     kListLength, kListLength, "head");
  ASSERT_TRUE(world.manager.SwapOut(clusters[0]).ok());
  const swap::SwapClusterInfo* info =
      world.manager.registry().Find(clusters[0]);
  DeviceId lost = info->replicas[0].device;

  int departed_events = 0, lost_events = 0;
  world.bus.Subscribe(context::kEventStoreDeparted,
                      [&](const context::Event&) { ++departed_events; });
  world.bus.Subscribe(context::kEventReplicaLost,
                      [&](const context::Event&) { ++lost_events; });
  swap::DurabilityMonitor monitor(world.manager, world.discovery,
                                  MiddlewareWorld::kDevice, world.bus);
  monitor.Poll();  // baseline: everyone reachable

  // The store vanishes without withdrawing — radio silence, permanently.
  world.network.RemoveDevice(lost);
  monitor.Poll();
  monitor.Poll();
  EXPECT_EQ(departed_events, 0);  // still within the miss threshold
  monitor.Poll();                 // third consecutive miss: presumed gone
  EXPECT_EQ(departed_events, 1);
  EXPECT_EQ(lost_events, 1);
  EXPECT_EQ(monitor.stats().replicas_lost, 1u);
  EXPECT_EQ(world.manager.stats().replicas_forgotten, 1u);

  // The same poll already re-replicated onto the spare store.
  ASSERT_EQ(info->replicas.size(), 2u);
  EXPECT_FALSE(info->HasReplicaOn(lost));
  monitor.Poll();  // no re-fire while the silence streak continues
  EXPECT_EQ(departed_events, 1);

  ASSERT_TRUE(world.manager.SwapIn(clusters[0]).ok());
  EXPECT_EQ(*SumList(world.rt, "head"), kListSum);
}

TEST(DurabilityMonitorTest, WithdrawnAnnouncementCountsAsDeparture) {
  MiddlewareWorld world(TwoReplicaOptions());
  const runtime::ClassInfo* node_cls = RegisterNodeClass(world.rt);
  world.AddStore(2, 1 << 20);
  world.AddStore(3, 1 << 20);
  world.AddStore(4, 1 << 20);
  auto clusters = BuildClusteredList(world.rt, world.manager, node_cls,
                                     kListLength, kListLength, "head");
  ASSERT_TRUE(world.manager.SwapOut(clusters[0]).ok());
  const swap::SwapClusterInfo* info =
      world.manager.registry().Find(clusters[0]);
  DeviceId leaving = info->replicas[0].device;

  swap::DurabilityMonitor monitor(world.manager, world.discovery,
                                  MiddlewareWorld::kDevice, world.bus);
  monitor.Poll();
  world.discovery.Withdraw(leaving);
  monitor.Poll();  // withdrawal is an explicit departure: no miss window

  EXPECT_EQ(monitor.stats().stores_departed, 1u);
  ASSERT_EQ(info->replicas.size(), 2u);
  EXPECT_FALSE(info->HasReplicaOn(leaving));
  ASSERT_TRUE(world.manager.SwapIn(clusters[0]).ok());
  EXPECT_EQ(*SumList(world.rt, "head"), kListSum);
}

TEST(DurabilityMonitorTest, GracefulWithdrawalEvacuatesReplicas) {
  MiddlewareWorld world;  // K = 1: evacuation must move the only copy
  const runtime::ClassInfo* node_cls = RegisterNodeClass(world.rt);
  world.AddStore(2, 1 << 20);
  world.AddStore(3, 1 << 20);
  auto clusters = BuildClusteredList(world.rt, world.manager, node_cls,
                                     kListLength, kListLength, "head");
  ASSERT_TRUE(world.manager.SwapOut(clusters[0]).ok());
  const swap::SwapClusterInfo* info =
      world.manager.registry().Find(clusters[0]);
  ASSERT_EQ(info->replicas.size(), 1u);
  DeviceId leaving = info->replicas[0].device;

  swap::DurabilityMonitor monitor(world.manager, world.discovery,
                                  MiddlewareWorld::kDevice, world.bus);
  Result<size_t> moved = monitor.OnStoreWithdrawing(leaving);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(*moved, 1u);
  EXPECT_EQ(monitor.stats().evacuated_replicas, 1u);
  ASSERT_EQ(info->replicas.size(), 1u);
  EXPECT_NE(info->replicas[0].device, leaving);
  EXPECT_EQ(NodeFor(world, leaving)->entry_count(), 0u);

  world.discovery.Withdraw(leaving);
  world.network.RemoveDevice(leaving);
  ASSERT_TRUE(world.manager.SwapIn(clusters[0]).ok());
  EXPECT_EQ(*SumList(world.rt, "head"), kListSum);
}

TEST(DurabilityMonitorTest, CleanImageReplicaLossIsReReplicated) {
  // A loaded-but-clean cluster's retained store copies are maintained like
  // swapped replicas: losing one to churn tops the image back up to K, so
  // the zero-transfer re-swap-out keeps working.
  MiddlewareWorld world(TwoReplicaOptions());
  const runtime::ClassInfo* node_cls = RegisterNodeClass(world.rt);
  world.AddStore(2, 1 << 20);
  world.AddStore(3, 1 << 20);
  world.AddStore(4, 1 << 20);
  auto clusters = BuildClusteredList(world.rt, world.manager, node_cls,
                                     kListLength, kListLength, "head");
  ASSERT_TRUE(world.manager.SwapOut(clusters[0]).ok());
  ASSERT_TRUE(world.manager.SwapIn(clusters[0]).ok());
  const swap::SwapClusterInfo* info =
      world.manager.registry().Find(clusters[0]);
  ASSERT_NE(info->ActiveReplicas(), nullptr);
  ASSERT_EQ(info->ActiveReplicas()->size(), 2u);
  DeviceId lost = (*info->ActiveReplicas())[0].device;

  swap::DurabilityMonitor monitor(world.manager, world.discovery,
                                  MiddlewareWorld::kDevice, world.bus);
  monitor.Poll();
  world.discovery.Withdraw(lost);
  monitor.Poll();  // forget the image replica, then top back up to K

  ASSERT_NE(info->ActiveReplicas(), nullptr);
  EXPECT_EQ(info->ActiveReplicas()->size(), 2u);
  EXPECT_FALSE(info->HasReplicaOn(lost));
  EXPECT_EQ(world.manager.stats().replicas_forgotten, 1u);
  EXPECT_EQ(world.manager.stats().re_replications, 1u);

  // The refreshed image still powers a zero-transfer re-swap-out.
  uint64_t shipped = world.manager.stats().bytes_swapped_out;
  ASSERT_TRUE(world.manager.SwapOut(clusters[0]).ok());
  EXPECT_EQ(world.manager.stats().clean_swap_outs, 1u);
  EXPECT_EQ(world.manager.stats().bytes_swapped_out, shipped);
  EXPECT_EQ(*SumList(world.rt, "head"), kListSum);
}

TEST(DurabilityMonitorTest, CleanImageLosingAllReplicasIsInvalidated) {
  // When churn eats the image's last replica there is nothing to reuse:
  // the image must be invalidated — the next swap-out re-serializes.
  // Never a stale fetch.
  MiddlewareWorld world;  // K = 1: the image holds exactly one replica
  const runtime::ClassInfo* node_cls = RegisterNodeClass(world.rt);
  world.AddStore(2, 1 << 20);
  world.AddStore(3, 1 << 20);
  auto clusters = BuildClusteredList(world.rt, world.manager, node_cls,
                                     kListLength, kListLength, "head");
  ASSERT_TRUE(world.manager.SwapOut(clusters[0]).ok());
  ASSERT_TRUE(world.manager.SwapIn(clusters[0]).ok());
  const swap::SwapClusterInfo* info =
      world.manager.registry().Find(clusters[0]);
  ASSERT_NE(info->ActiveReplicas(), nullptr);
  ASSERT_EQ(info->ActiveReplicas()->size(), 1u);
  DeviceId lost = (*info->ActiveReplicas())[0].device;

  swap::DurabilityMonitor monitor(world.manager, world.discovery,
                                  MiddlewareWorld::kDevice, world.bus);
  monitor.Poll();
  world.discovery.Withdraw(lost);
  monitor.Poll();

  EXPECT_EQ(info->ActiveReplicas(), nullptr);
  EXPECT_FALSE(info->clean_image.has_value());
  EXPECT_GE(world.manager.stats().clean_image_invalidations, 1u);

  uint64_t shipped = world.manager.stats().bytes_swapped_out;
  ASSERT_TRUE(world.manager.SwapOut(clusters[0]).ok());
  EXPECT_EQ(world.manager.stats().clean_swap_outs, 0u);
  EXPECT_GT(world.manager.stats().bytes_swapped_out, shipped);
  EXPECT_FALSE(info->HasReplicaOn(lost));
  EXPECT_EQ(*SumList(world.rt, "head"), kListSum);
}

TEST(DurabilityTest, FinalizerDropBroadcastsToAllReplicas) {
  MiddlewareWorld world;
  const runtime::ClassInfo* node_cls = RegisterNodeClass(world.rt);
  net::StoreNode* store_a = world.AddStore(2, 1 << 20);
  net::StoreNode* store_b = world.AddStore(3, 1 << 20);
  auto clusters = BuildClusteredList(world.rt, world.manager, node_cls,
                                     kListLength, kListLength, "head");
  ASSERT_TRUE(world.manager.SwapOut(clusters[0]).ok());

  // Raise K after the fact and top up, so the cluster's replicas carry
  // *different* keys than the original swap-out placed — the finalizer
  // must drop through the registry's current list (epoch match), not a
  // location baked into the replacement-object.
  world.manager.set_replication_factor(2);
  Result<size_t> added = world.manager.ReReplicate(clusters[0]);
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(*added, 1u);
  EXPECT_EQ(store_a->entry_count() + store_b->entry_count(), 2u);

  world.rt.RemoveGlobal("head");
  world.rt.heap().Collect();

  EXPECT_EQ(world.manager.StateOf(clusters[0]), swap::SwapState::kDropped);
  EXPECT_EQ(world.manager.stats().drops, 2u);
  EXPECT_EQ(store_a->entry_count() + store_b->entry_count(), 0u);
}

TEST(StoreClientTest, RetriedStoreOfIdenticalContentIsIdempotent) {
  MiddlewareWorld world;
  net::StoreNode* store = world.AddStore(2, 1 << 20);
  SwapKey key(42);

  ASSERT_TRUE(world.client.Store(store->device(), key, "payload-a").ok());
  // A duplicate delivery of the same envelope (lost response, client
  // retried) must read as success, not kAlreadyExists...
  EXPECT_TRUE(world.client.Store(store->device(), key, "payload-a").ok());
  EXPECT_EQ(store->entry_count(), 1u);
  // ...while a genuine key collision with different content still fails.
  Status clash = world.client.Store(store->device(), key, "payload-b");
  EXPECT_EQ(clash.code(), StatusCode::kAlreadyExists);
}

TEST(StoreClientTest, RetryBackoffAdvancesVirtualClock) {
  MiddlewareWorld world;
  net::StoreNode* store = world.AddStore(2, 1 << 20);
  net::LinkParams dead;
  dead.loss_rate = 1.0;  // every attempt is lost: the client exhausts retries
  world.network.SetLinkParams(MiddlewareWorld::kDevice, store->device(), dead);

  uint64_t before = world.network.clock().now_us();
  Status status = world.client.Store(store->device(), SwapKey(7), "x");
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  // Three attempts, exponential waits before the 2nd and 3rd: base + 2*base,
  // each stretched by at most 50% deterministic per-key jitter.
  uint64_t base = world.client.retry_backoff_us();
  EXPECT_GE(world.client.stats().backoff_us, 3 * base);
  EXPECT_LE(world.client.stats().backoff_us, 3 * base + (3 * base) / 2);
  EXPECT_GE(world.network.clock().now_us() - before, 3 * base);
}

TEST(NetworkTest, OutageWindowsScriptDeterministicFlapping) {
  net::Network network(1);
  DeviceId device(9);
  network.AddDevice(device);
  network.FlapDevice(device, /*first_down_us=*/100, /*down_us=*/50,
                     /*period_us=*/200, /*count=*/2);

  EXPECT_TRUE(network.IsOnline(device));  // t=0: before the first window
  network.clock().Advance(120);           // t=120: inside window 1
  EXPECT_TRUE(network.InOutage(device));
  EXPECT_FALSE(network.IsOnline(device));
  network.clock().Advance(60);            // t=180: between windows
  EXPECT_TRUE(network.IsOnline(device));
  network.clock().Advance(140);           // t=320: inside window 2
  EXPECT_FALSE(network.IsOnline(device));
  network.ClearOutages(device);
  EXPECT_TRUE(network.IsOnline(device));
}

TEST(PolicyTest, StoreChurnRaisesReplicationFactorThroughRule) {
  MiddlewareWorld world;
  const runtime::ClassInfo* node_cls = RegisterNodeClass(world.rt);
  world.AddStore(2, 1 << 20);
  world.AddStore(3, 1 << 20);
  (void)BuildClusteredList(world.rt, world.manager, node_cls, kListLength,
                           kListLength, "head");

  context::PropertyRegistry props;
  policy::PolicyEngine engine(world.bus, props);
  ASSERT_TRUE(policy::RegisterSwapActions(engine, world.rt, world.manager)
                  .ok());
  Result<size_t> rules = engine.LoadXml(R"(
    <policies>
      <policy name="replicate-harder" on="store-departed"
              when="swap.store_churn ge 1">
        <action name="set-replication-factor">
          <param name="factor" value="3"/>
        </action>
      </policy>
    </policies>)");
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  ASSERT_EQ(*rules, 1u);

  swap::DurabilityMonitor monitor(world.manager, world.discovery,
                                  MiddlewareWorld::kDevice, world.bus,
                                  &props);
  monitor.Poll();
  ASSERT_EQ(world.manager.options().replication_factor, 1u);
  world.discovery.Withdraw(DeviceId(2));
  monitor.Poll();

  EXPECT_EQ(engine.stats().actions_fired, 1u);
  EXPECT_EQ(world.manager.options().replication_factor, 3u);
}

}  // namespace
}  // namespace obiswap
