// Chaos property tests: long randomized sequences of application mutations
// (field writes, re-linking), swapping operations, collections and store
// connectivity churn, validated against a shadow model after every phase.
// The invariants under test:
//   * values and graph structure always match the model, through any
//     interleaving of swap-outs, faults, and GC;
//   * the mediation invariant never breaks;
//   * kUnavailable is the only acceptable deviation, and only while the
//     needed store is out of range.
#include <gtest/gtest.h>

#include "test_support.h"

namespace obiswap {
namespace {

using runtime::Object;
using runtime::Value;
using ::obiswap::testing::CheckMediationInvariant;
using ::obiswap::testing::MiddlewareWorld;

constexpr int kObjects = 60;
constexpr int kPerCluster = 10;
constexpr int kOps = 400;

/// Node class with a re-linking method (mutations must flow through
/// mediated invocation, like real application code).
const runtime::ClassInfo* RegisterChaosNode(runtime::Runtime& rt) {
  return *rt.types().Register(
      runtime::ClassBuilder("ChaosNode")
          .Field("next", runtime::ValueKind::kRef)
          .Field("value", runtime::ValueKind::kInt)
          .PayloadBytes(64)
          .Method("get_value",
                  [](runtime::Runtime& r, Object* self, std::vector<Value>&) {
                    return Result<Value>(r.GetFieldAt(self, 1));
                  })
          .Method("set_value",
                  [](runtime::Runtime& r, Object* self,
                     std::vector<Value>& args) -> Result<Value> {
                    OBISWAP_RETURN_IF_ERROR(r.SetFieldAt(self, 1, args[0]));
                    return Value::Nil();
                  })
          .Method("next",
                  [](runtime::Runtime& r, Object* self, std::vector<Value>&) {
                    return Result<Value>(r.GetFieldAt(self, 0));
                  })
          .Method("link",
                  [](runtime::Runtime& r, Object* self,
                     std::vector<Value>& args) -> Result<Value> {
                    OBISWAP_RETURN_IF_ERROR(r.SetFieldAt(self, 0, args[0]));
                    return Value::Nil();
                  }));
}

struct Model {
  std::vector<int64_t> values;
  std::vector<int> next;  // -1 = nil
};

class ChaosFixture : public ::testing::TestWithParam<uint64_t> {
 protected:
  ChaosFixture() : rng_(GetParam()) {
    node_cls_ = RegisterChaosNode(world_.rt);
    store_a_ = world_.AddStore(2, 8 * 1024 * 1024);
    store_b_ = world_.AddStore(3, 8 * 1024 * 1024);
    model_.values.resize(kObjects, 0);
    model_.next.resize(kObjects, -1);
    // Every object is a root (global) so reachability never depends on the
    // mutable links; clusters of kPerCluster consecutive objects.
    int cluster_count = (kObjects + kPerCluster - 1) / kPerCluster;
    for (int c = 0; c < cluster_count; ++c)
      clusters_.push_back(world_.manager.NewSwapCluster());
    for (int i = 0; i < kObjects; ++i) {
      runtime::LocalScope scope(world_.rt.heap());
      Object* obj = world_.rt.New(node_cls_);
      scope.Add(obj);
      OBISWAP_CHECK(
          world_.manager.Place(obj, clusters_[i / kPerCluster]).ok());
      OBISWAP_CHECK(
          world_.rt.SetGlobal(Global(i), Value::Ref(obj)).ok());
    }
  }

  static std::string Global(int index) {
    return "o" + std::to_string(index);
  }

  /// The cluster-0 proxy for object i.
  Object* Handle(int index) {
    return world_.rt.GetGlobal(Global(index))->ref();
  }

  bool StoreOfClusterReachable(SwapClusterId id) {
    const swap::SwapClusterInfo* info = world_.manager.registry().Find(id);
    if (info->state != swap::SwapState::kSwapped) return true;
    for (const swap::ReplicaLocation& replica : info->replicas) {
      if (world_.network.IsOnline(replica.device) &&
          world_.network.InRange(MiddlewareWorld::kDevice, replica.device)) {
        return true;
      }
    }
    return false;
  }

  /// Verifies object i's value and the value sequence reachable from it
  /// (bounded walk — links may form cycles).
  void VerifyFrom(int start) {
    // Skip verification if any swapped cluster's store is unreachable: the
    // walk may legitimately fail with kUnavailable then.
    for (SwapClusterId id : clusters_) {
      if (!StoreOfClusterReachable(id)) return;
    }
    int model_index = start;
    ASSERT_TRUE(world_.rt
                    .SetGlobal("cursor", *world_.rt.GetGlobal(Global(start)))
                    .ok());
    for (int steps = 0; steps <= kObjects + 2; ++steps) {
      Value cursor = *world_.rt.GetGlobal("cursor");
      if (model_index < 0) {
        ASSERT_TRUE(!cursor.is_ref() || cursor.ref() == nullptr)
            << "walk longer than model";
        return;
      }
      ASSERT_TRUE(cursor.is_ref() && cursor.ref() != nullptr)
          << "walk shorter than model at step " << steps;
      Result<Value> value = world_.rt.Invoke(cursor.ref(), "get_value");
      ASSERT_TRUE(value.ok()) << value.status().ToString();
      ASSERT_EQ(value->as_int(), model_.values[model_index])
          << "value mismatch at step " << steps;
      Result<Value> next = world_.rt.Invoke(cursor.ref(), "next");
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      ASSERT_TRUE(world_.rt.SetGlobal("cursor", *next).ok());
      model_index = model_.next[model_index];
    }
  }

  MiddlewareWorld world_;
  const runtime::ClassInfo* node_cls_ = nullptr;
  net::StoreNode* store_a_ = nullptr;
  net::StoreNode* store_b_ = nullptr;
  std::vector<SwapClusterId> clusters_;
  Model model_;
  Rng rng_;
};

TEST_P(ChaosFixture, RandomOperationsMatchShadowModel) {
  for (int op = 0; op < kOps; ++op) {
    switch (rng_.NextBelow(10)) {
      case 0:
      case 1:
      case 2: {  // write a value through the mediated handle
        int i = static_cast<int>(rng_.NextBelow(kObjects));
        int64_t v = rng_.NextInt(-1000, 1000);
        SwapClusterId cluster = clusters_[i / kPerCluster];
        Status status = world_.rt
                            .Invoke(Handle(i), "set_value", {Value::Int(v)})
                            .status();
        if (status.ok()) {
          model_.values[static_cast<size_t>(i)] = v;
        } else {
          ASSERT_EQ(status.code(), StatusCode::kUnavailable);
          ASSERT_FALSE(StoreOfClusterReachable(cluster));
        }
        break;
      }
      case 3:
      case 4: {  // re-link i -> j (possibly cross-cluster, possibly cyclic)
        int i = static_cast<int>(rng_.NextBelow(kObjects));
        Value target = Value::Nil();
        int j = -1;
        if (rng_.NextBool(0.8)) {
          j = static_cast<int>(rng_.NextBelow(kObjects));
          target = *world_.rt.GetGlobal(Global(j));
        }
        Status status =
            world_.rt.Invoke(Handle(i), "link", {target}).status();
        if (status.ok()) {
          model_.next[static_cast<size_t>(i)] = j;
        } else {
          ASSERT_EQ(status.code(), StatusCode::kUnavailable);
        }
        break;
      }
      case 5: {  // swap out a random cluster (any failure is acceptable)
        SwapClusterId id = clusters_[rng_.NextBelow(clusters_.size())];
        (void)world_.manager.SwapOut(id);
        break;
      }
      case 6: {  // explicit swap-in of a random cluster
        SwapClusterId id = clusters_[rng_.NextBelow(clusters_.size())];
        if (world_.manager.StateOf(id) == swap::SwapState::kSwapped &&
            StoreOfClusterReachable(id)) {
          ASSERT_TRUE(world_.manager.SwapIn(id).ok());
        }
        break;
      }
      case 7: {  // collection
        world_.rt.heap().Collect();
        break;
      }
      case 8: {  // store churn
        net::StoreNode* store = rng_.NextBool(0.5) ? store_a_ : store_b_;
        world_.network.SetOnline(store->device(),
                                 !world_.network.IsOnline(store->device()));
        break;
      }
      case 9: {  // verify a random walk right now
        VerifyFrom(static_cast<int>(rng_.NextBelow(kObjects)));
        break;
      }
    }
    std::string violation = CheckMediationInvariant(world_.rt);
    ASSERT_EQ(violation, "") << "after op " << op;
  }

  // Final: bring every store back, reload everything, verify all objects.
  world_.network.SetOnline(store_a_->device(), true);
  world_.network.SetOnline(store_b_->device(), true);
  for (SwapClusterId id : clusters_) {
    if (world_.manager.StateOf(id) == swap::SwapState::kSwapped) {
      ASSERT_TRUE(world_.manager.SwapIn(id).ok());
    }
  }
  for (int i = 0; i < kObjects; ++i) {
    VerifyFrom(i);
    if (::testing::Test::HasFatalFailure()) return;
  }
  // Reloaded-but-unwritten clusters legitimately retain clean-image store
  // entries; dirty everything and drain deferred drops, then the stores
  // must hold nothing.
  for (SwapClusterId id : clusters_) world_.manager.MarkDirty(id);
  world_.manager.FlushPendingDrops();
  EXPECT_EQ(store_a_->entry_count() + store_b_->entry_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosFixture,
                         ::testing::Range<uint64_t>(1, 13));

// Lossy links + store churn + one permanent departure, with K = 2.
// Stores flap on a fixed schedule (one at a time), every message can be
// lost, and halfway through one store leaves for good. The durability
// monitor runs alongside; at the end every cluster must still be loadable
// from a survivor and every value must match the shadow model — replication
// must turn churn into latency, never into data loss. (Store emptiness is
// NOT asserted: a store op whose response is lost through all retries can
// legitimately orphan one entry until the deferred-drop queue drains.)
TEST(ChurnChaosTest, LossyLinksAndChurningStoresLoseNoDataWithTwoReplicas) {
  swap::SwappingManager::Options options;
  options.replication_factor = 2;
  MiddlewareWorld world(options);
  net::LinkParams lossy;
  lossy.loss_rate = 0.08;
  world.network.SetDefaultLinkParams(lossy);
  const runtime::ClassInfo* node_cls = RegisterChaosNode(world.rt);
  std::vector<net::StoreNode*> stores = {world.AddStore(2, 8 * 1024 * 1024),
                                         world.AddStore(3, 8 * 1024 * 1024),
                                         world.AddStore(4, 8 * 1024 * 1024)};
  swap::DurabilityMonitor monitor(world.manager, world.discovery,
                                  MiddlewareWorld::kDevice, world.bus);

  Model model;
  model.values.resize(kObjects, 0);
  model.next.resize(kObjects, -1);
  std::vector<SwapClusterId> clusters;
  int cluster_count = (kObjects + kPerCluster - 1) / kPerCluster;
  for (int c = 0; c < cluster_count; ++c)
    clusters.push_back(world.manager.NewSwapCluster());
  auto global = [](int i) { return "o" + std::to_string(i); };
  for (int i = 0; i < kObjects; ++i) {
    runtime::LocalScope scope(world.rt.heap());
    Object* obj = world.rt.New(node_cls);
    scope.Add(obj);
    ASSERT_TRUE(world.manager.Place(obj, clusters[i / kPerCluster]).ok());
    ASSERT_TRUE(world.rt.SetGlobal(global(i), Value::Ref(obj)).ok());
  }

  Rng rng(99);
  DeviceId departed;  // invalid until the permanent departure happens
  for (int op = 0; op < kOps; ++op) {
    // Scripted churn, one store at a time: store (op/40 mod 3) is offline
    // for the second half of every 40-op window.
    for (size_t s = 0; s < stores.size(); ++s) {
      DeviceId device = stores[s]->device();
      if (device == departed) continue;
      bool down = (op / 40) % stores.size() == s && op % 40 >= 20;
      world.network.SetOnline(device, !down);
    }
    if (op == kOps / 2) {
      // Permanent, unannounced departure of whatever store currently
      // holds the most replicas.
      departed = stores[0]->device();
      world.network.RemoveDevice(departed);
    }
    if (op % 10 == 0) monitor.Poll();

    switch (rng.NextBelow(8)) {
      case 0:
      case 1:
      case 2: {  // write through the mediated handle
        int i = static_cast<int>(rng.NextBelow(kObjects));
        int64_t v = rng.NextInt(-1000, 1000);
        Object* handle = world.rt.GetGlobal(global(i))->ref();
        Status status =
            world.rt.Invoke(handle, "set_value", {Value::Int(v)}).status();
        if (status.ok()) {
          model.values[static_cast<size_t>(i)] = v;
        } else {
          // Loss or unreachable replicas: the write did not land.
          ASSERT_EQ(status.code(), StatusCode::kUnavailable);
        }
        break;
      }
      case 3: {  // re-link
        int i = static_cast<int>(rng.NextBelow(kObjects));
        Value target = Value::Nil();
        int j = -1;
        if (rng.NextBool(0.8)) {
          j = static_cast<int>(rng.NextBelow(kObjects));
          target = *world.rt.GetGlobal(global(j));
        }
        Object* handle = world.rt.GetGlobal(global(i))->ref();
        Status status = world.rt.Invoke(handle, "link", {target}).status();
        if (status.ok()) {
          model.next[static_cast<size_t>(i)] = j;
        } else {
          ASSERT_EQ(status.code(), StatusCode::kUnavailable);
        }
        break;
      }
      case 4:
      case 5: {  // swap a random cluster out (any failure tolerated)
        (void)world.manager.SwapOut(clusters[rng.NextBelow(clusters.size())]);
        break;
      }
      case 6: {  // swap a random cluster in (kUnavailable tolerated)
        SwapClusterId id = clusters[rng.NextBelow(clusters.size())];
        if (world.manager.StateOf(id) == swap::SwapState::kSwapped) {
          Status status = world.manager.SwapIn(id);
          if (!status.ok())
            ASSERT_EQ(status.code(), StatusCode::kUnavailable);
        }
        break;
      }
      case 7: {
        world.rt.heap().Collect();
        break;
      }
    }
    std::string violation = CheckMediationInvariant(world.rt);
    ASSERT_EQ(violation, "") << "after op " << op;
  }

  // Settle: survivors online, links clean, monitor finishes recovery.
  for (net::StoreNode* store : stores) {
    if (store->device() != departed)
      world.network.SetOnline(store->device(), true);
  }
  world.network.SetDefaultLinkParams(net::LinkParams());
  for (int i = 0; i < 5; ++i) monitor.Poll();

  // No data loss: every swapped cluster still has a fetchable replica on a
  // surviving store, and every value matches the shadow model.
  for (SwapClusterId id : clusters) {
    const swap::SwapClusterInfo* info = world.manager.registry().Find(id);
    if (info->state != swap::SwapState::kSwapped) continue;
    ASSERT_FALSE(info->replicas.empty()) << "cluster " << id.ToString();
    ASSERT_TRUE(world.manager.SwapIn(id).ok()) << "cluster " << id.ToString();
  }
  for (int i = 0; i < kObjects; ++i) {
    Object* handle = world.rt.GetGlobal(global(i))->ref();
    Result<Value> value = world.rt.Invoke(handle, "get_value");
    ASSERT_TRUE(value.ok()) << value.status().ToString();
    EXPECT_EQ(value->as_int(), model.values[static_cast<size_t>(i)])
        << "object " << i;
  }
  EXPECT_GT(world.manager.stats().replicas_placed,
            world.manager.stats().swap_outs);
}

}  // namespace
}  // namespace obiswap
