// Chaos property tests: long randomized sequences of application mutations
// (field writes, re-linking), swapping operations, collections and store
// connectivity churn, validated against a shadow model after every phase.
// The invariants under test:
//   * values and graph structure always match the model, through any
//     interleaving of swap-outs, faults, and GC;
//   * the mediation invariant never breaks;
//   * kUnavailable is the only acceptable deviation, and only while the
//     needed store is out of range.
#include <gtest/gtest.h>

#include "test_support.h"

namespace obiswap {
namespace {

using runtime::Object;
using runtime::Value;
using ::obiswap::testing::CheckMediationInvariant;
using ::obiswap::testing::MiddlewareWorld;

constexpr int kObjects = 60;
constexpr int kPerCluster = 10;
constexpr int kOps = 400;

/// Node class with a re-linking method (mutations must flow through
/// mediated invocation, like real application code).
const runtime::ClassInfo* RegisterChaosNode(runtime::Runtime& rt) {
  return *rt.types().Register(
      runtime::ClassBuilder("ChaosNode")
          .Field("next", runtime::ValueKind::kRef)
          .Field("value", runtime::ValueKind::kInt)
          .PayloadBytes(64)
          .Method("get_value",
                  [](runtime::Runtime& r, Object* self, std::vector<Value>&) {
                    return Result<Value>(r.GetFieldAt(self, 1));
                  })
          .Method("set_value",
                  [](runtime::Runtime& r, Object* self,
                     std::vector<Value>& args) -> Result<Value> {
                    OBISWAP_RETURN_IF_ERROR(r.SetFieldAt(self, 1, args[0]));
                    return Value::Nil();
                  })
          .Method("next",
                  [](runtime::Runtime& r, Object* self, std::vector<Value>&) {
                    return Result<Value>(r.GetFieldAt(self, 0));
                  })
          .Method("link",
                  [](runtime::Runtime& r, Object* self,
                     std::vector<Value>& args) -> Result<Value> {
                    OBISWAP_RETURN_IF_ERROR(r.SetFieldAt(self, 0, args[0]));
                    return Value::Nil();
                  }));
}

struct Model {
  std::vector<int64_t> values;
  std::vector<int> next;  // -1 = nil
};

class ChaosFixture : public ::testing::TestWithParam<uint64_t> {
 protected:
  ChaosFixture() : rng_(GetParam()) {
    node_cls_ = RegisterChaosNode(world_.rt);
    store_a_ = world_.AddStore(2, 8 * 1024 * 1024);
    store_b_ = world_.AddStore(3, 8 * 1024 * 1024);
    model_.values.resize(kObjects, 0);
    model_.next.resize(kObjects, -1);
    // Every object is a root (global) so reachability never depends on the
    // mutable links; clusters of kPerCluster consecutive objects.
    int cluster_count = (kObjects + kPerCluster - 1) / kPerCluster;
    for (int c = 0; c < cluster_count; ++c)
      clusters_.push_back(world_.manager.NewSwapCluster());
    for (int i = 0; i < kObjects; ++i) {
      runtime::LocalScope scope(world_.rt.heap());
      Object* obj = world_.rt.New(node_cls_);
      scope.Add(obj);
      OBISWAP_CHECK(
          world_.manager.Place(obj, clusters_[i / kPerCluster]).ok());
      OBISWAP_CHECK(
          world_.rt.SetGlobal(Global(i), Value::Ref(obj)).ok());
    }
  }

  static std::string Global(int index) {
    return "o" + std::to_string(index);
  }

  /// The cluster-0 proxy for object i.
  Object* Handle(int index) {
    return world_.rt.GetGlobal(Global(index))->ref();
  }

  bool StoreOfClusterReachable(SwapClusterId id) {
    const swap::SwapClusterInfo* info = world_.manager.registry().Find(id);
    if (info->state != swap::SwapState::kSwapped) return true;
    return world_.network.IsOnline(info->store_device) &&
           world_.network.InRange(MiddlewareWorld::kDevice,
                                  info->store_device);
  }

  /// Verifies object i's value and the value sequence reachable from it
  /// (bounded walk — links may form cycles).
  void VerifyFrom(int start) {
    // Skip verification if any swapped cluster's store is unreachable: the
    // walk may legitimately fail with kUnavailable then.
    for (SwapClusterId id : clusters_) {
      if (!StoreOfClusterReachable(id)) return;
    }
    int model_index = start;
    ASSERT_TRUE(world_.rt
                    .SetGlobal("cursor", *world_.rt.GetGlobal(Global(start)))
                    .ok());
    for (int steps = 0; steps <= kObjects + 2; ++steps) {
      Value cursor = *world_.rt.GetGlobal("cursor");
      if (model_index < 0) {
        ASSERT_TRUE(!cursor.is_ref() || cursor.ref() == nullptr)
            << "walk longer than model";
        return;
      }
      ASSERT_TRUE(cursor.is_ref() && cursor.ref() != nullptr)
          << "walk shorter than model at step " << steps;
      Result<Value> value = world_.rt.Invoke(cursor.ref(), "get_value");
      ASSERT_TRUE(value.ok()) << value.status().ToString();
      ASSERT_EQ(value->as_int(), model_.values[model_index])
          << "value mismatch at step " << steps;
      Result<Value> next = world_.rt.Invoke(cursor.ref(), "next");
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      ASSERT_TRUE(world_.rt.SetGlobal("cursor", *next).ok());
      model_index = model_.next[model_index];
    }
  }

  MiddlewareWorld world_;
  const runtime::ClassInfo* node_cls_ = nullptr;
  net::StoreNode* store_a_ = nullptr;
  net::StoreNode* store_b_ = nullptr;
  std::vector<SwapClusterId> clusters_;
  Model model_;
  Rng rng_;
};

TEST_P(ChaosFixture, RandomOperationsMatchShadowModel) {
  for (int op = 0; op < kOps; ++op) {
    switch (rng_.NextBelow(10)) {
      case 0:
      case 1:
      case 2: {  // write a value through the mediated handle
        int i = static_cast<int>(rng_.NextBelow(kObjects));
        int64_t v = rng_.NextInt(-1000, 1000);
        SwapClusterId cluster = clusters_[i / kPerCluster];
        Status status = world_.rt
                            .Invoke(Handle(i), "set_value", {Value::Int(v)})
                            .status();
        if (status.ok()) {
          model_.values[static_cast<size_t>(i)] = v;
        } else {
          ASSERT_EQ(status.code(), StatusCode::kUnavailable);
          ASSERT_FALSE(StoreOfClusterReachable(cluster));
        }
        break;
      }
      case 3:
      case 4: {  // re-link i -> j (possibly cross-cluster, possibly cyclic)
        int i = static_cast<int>(rng_.NextBelow(kObjects));
        Value target = Value::Nil();
        int j = -1;
        if (rng_.NextBool(0.8)) {
          j = static_cast<int>(rng_.NextBelow(kObjects));
          target = *world_.rt.GetGlobal(Global(j));
        }
        Status status =
            world_.rt.Invoke(Handle(i), "link", {target}).status();
        if (status.ok()) {
          model_.next[static_cast<size_t>(i)] = j;
        } else {
          ASSERT_EQ(status.code(), StatusCode::kUnavailable);
        }
        break;
      }
      case 5: {  // swap out a random cluster (any failure is acceptable)
        SwapClusterId id = clusters_[rng_.NextBelow(clusters_.size())];
        (void)world_.manager.SwapOut(id);
        break;
      }
      case 6: {  // explicit swap-in of a random cluster
        SwapClusterId id = clusters_[rng_.NextBelow(clusters_.size())];
        if (world_.manager.StateOf(id) == swap::SwapState::kSwapped &&
            StoreOfClusterReachable(id)) {
          ASSERT_TRUE(world_.manager.SwapIn(id).ok());
        }
        break;
      }
      case 7: {  // collection
        world_.rt.heap().Collect();
        break;
      }
      case 8: {  // store churn
        net::StoreNode* store = rng_.NextBool(0.5) ? store_a_ : store_b_;
        world_.network.SetOnline(store->device(),
                                 !world_.network.IsOnline(store->device()));
        break;
      }
      case 9: {  // verify a random walk right now
        VerifyFrom(static_cast<int>(rng_.NextBelow(kObjects)));
        break;
      }
    }
    std::string violation = CheckMediationInvariant(world_.rt);
    ASSERT_EQ(violation, "") << "after op " << op;
  }

  // Final: bring every store back, reload everything, verify all objects.
  world_.network.SetOnline(store_a_->device(), true);
  world_.network.SetOnline(store_b_->device(), true);
  for (SwapClusterId id : clusters_) {
    if (world_.manager.StateOf(id) == swap::SwapState::kSwapped) {
      ASSERT_TRUE(world_.manager.SwapIn(id).ok());
    }
  }
  for (int i = 0; i < kObjects; ++i) {
    VerifyFrom(i);
    if (::testing::Test::HasFatalFailure()) return;
  }
  // Stores hold nothing once everything is loaded again.
  EXPECT_EQ(store_a_->entry_count() + store_b_->entry_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosFixture,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace obiswap
