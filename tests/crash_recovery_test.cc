// Crash-consistency tests: the write-ahead intent journal, the fault
// injector, and SwappingManager::Recover().
//
// The centerpiece is the crash-everywhere sweep: a clean run of a scripted
// pipeline scenario enumerates every (fault point, hit ordinal) actually
// traversed; then each pair is re-run with a crash armed there, the torn
// world is recovered, and the full-heap invariants are asserted — the
// mediation invariant holds, the workload still reads every value, and no
// store key leaks (every stored entry is accounted for by a replica list).
// The same sweep runs with error-kind faults (every stage's clean unwind)
// and the journal image is fuzzed byte-by-byte (truncation + bit flips).
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "test_support.h"

namespace obiswap {
namespace {

using runtime::Object;
using runtime::Value;
using swap::FaultInjector;
using swap::FaultKind;
using swap::IntentJournal;
using swap::IntentOp;
using swap::ReplicaLocation;
using swap::SwapState;
using ::obiswap::testing::BuildClusteredList;
using ::obiswap::testing::CheckMediationInvariant;
using ::obiswap::testing::MiddlewareWorld;
using ::obiswap::testing::RegisterNodeClass;
using ::obiswap::testing::SumList;

constexpr int kNodes = 30;
constexpr int kPerCluster = 10;
constexpr int64_t kExpectedSum = kNodes * (kNodes - 1) / 2;

swap::SwappingManager::Options CrashOptions() {
  swap::SwappingManager::Options options;
  options.replication_factor = 2;
  options.swap_in_cache_bytes = 64 * 1024;
  options.codec = "rle";
  return options;
}

/// Tier configurations for the tiered variants of the chaos runs. The
/// sweeps use the flash tier only: every tier entry is then flash-resident,
/// which keeps the store-key accounting exact (`stored == replicas + tier
/// entries`) and survives the crash.
tier::TierManager::Options FlashTierOptions() {
  tier::TierManager::Options options;
  options.mode = tier::TierMode::kFlash;
  options.flash_slot_bytes = 512;
  options.flash_slots = 256;
  return options;
}

tier::TierManager::Options RamTierOptions() {
  tier::TierManager::Options options;
  options.mode = tier::TierMode::kRam;
  options.ram_bytes = 1 << 16;
  return options;
}

/// A MiddlewareWorld wired for crash testing: local flash (shared by the
/// journal), intent journal, fault injector, durability monitor, and —
/// when tier options are given — the tier stack sharing the same flash.
struct CrashWorld {
  explicit CrashWorld(
      std::optional<tier::TierManager::Options> tier_options = std::nullopt)
      : world(CrashOptions()),
        flash(MiddlewareWorld::kDevice, 1 << 20, world.network.clock()),
        journal(&flash),
        monitor(world.manager, world.discovery, MiddlewareWorld::kDevice,
                world.bus, nullptr) {
    world.manager.AttachClock(&world.network.clock());
    world.manager.AttachLocalStore(&flash);
    world.manager.AttachIntentJournal(&journal);
    if (tier_options.has_value()) {
      tiers = std::make_unique<tier::TierManager>(&flash, *tier_options);
      world.manager.AttachTierManager(tiers.get());
    }
    faults.AttachClock(&world.network.clock());
    world.manager.AttachFaultInjector(&faults);
    node_cls = RegisterNodeClass(world.rt);
    world.AddStore(2, 1 << 20);
    world.AddStore(3, 1 << 20);
    world.AddStore(4, 1 << 20);
    clusters = BuildClusteredList(world.rt, world.manager, node_cls, kNodes,
                                  kPerCluster, "head");
  }

  MiddlewareWorld world;
  persist::FlashStore flash;
  IntentJournal journal;
  std::unique_ptr<tier::TierManager> tiers;
  FaultInjector faults;
  swap::DurabilityMonitor monitor;
  const runtime::ClassInfo* node_cls = nullptr;
  std::vector<SwapClusterId> clusters;
};

/// The scripted pipeline scenario the sweeps replay. Deterministic, and
/// identical up to the moment an armed fault fires, so any (point, hit)
/// pair recorded by a clean run fires at the same place in a faulted run.
/// Each step tolerates failure (error-kind sweeps exercise clean unwinds)
/// but the script stops at a crash — a crashed manager only recovers.
void RunScenario(CrashWorld& w) {
  swap::SwappingManager& m = w.world.manager;
  const std::vector<SwapClusterId>& c = w.clusters;
  const auto alive = [&] { return !m.crashed(); };
  // Full dirty swap-out, demand swap-in, then the clean re-swap-out of the
  // retained image, and the cache-served swap-in after it.
  if (alive()) (void)m.SwapOut(c[1]);
  if (alive()) (void)m.SwapIn(c[1]);
  if (alive()) (void)m.SwapOut(c[1]);
  if (alive()) (void)m.SwapIn(c[1]);
  // First write since the round-trip: releases the clean image's replicas
  // through the journaled drop path.
  if (alive()) m.MarkDirty(c[1]);
  // Speculative pipeline: stage a swapped payload, then prefetch it in.
  if (alive()) (void)m.SwapOut(c[2]);
  if (alive()) (void)m.PrefetchStage(c[2]);
  if (alive()) (void)m.SwapIn(c[2], /*prefetch=*/true);
  // Replica maintenance: lose one of c0's replicas, let the durability
  // poll re-replicate, then evacuate a store wholesale.
  if (alive()) (void)m.SwapOut(c[0]);
  if (alive()) (void)m.ForgetReplica(c[0], DeviceId(2));
  if (alive()) w.monitor.Poll();
  if (alive()) (void)m.EvacuateReplicas(DeviceId(3));
}

/// The tiered variant: every tier fault point — flash admission, write-back
/// through the durability poll, the tier-served demand fault, promotion —
/// sits on this path. The payload cache is drained (budget 0) before the
/// demand faults so they reach the tier probe instead of the cache.
void RunTierScenario(CrashWorld& w) {
  swap::SwappingManager& m = w.world.manager;
  const std::vector<SwapClusterId>& c = w.clusters;
  const auto alive = [&] { return !m.crashed(); };
  // Tier swap-out: the payload lands in flash slots, remote group empty.
  if (alive()) (void)m.SwapOut(c[1]);
  // The poll repays the write-back debt: remote replicas reach K.
  if (alive()) w.monitor.Poll();
  // Drain the cache, then demand-fault through the tier probe (flash hit,
  // then the promotion attempt — a no-op in flash-only mode, but the fault
  // point is traversed).
  if (alive()) m.set_swap_in_cache_bytes(0);
  if (alive()) (void)m.SwapIn(c[1]);
  if (alive()) m.set_swap_in_cache_bytes(64 * 1024);
  // First write after the round-trip: invalidates the retained image and
  // releases its tier copy through the journaled drop path.
  if (alive()) m.MarkDirty(c[1]);
  // Speculative pipeline served by the tier: stage, then prefetch in.
  if (alive()) (void)m.SwapOut(c[2]);
  if (alive()) m.set_swap_in_cache_bytes(0);
  if (alive()) m.set_swap_in_cache_bytes(64 * 1024);
  if (alive()) (void)m.PrefetchStage(c[2]);
  if (alive()) (void)m.SwapIn(c[2], /*prefetch=*/true);
  // A second tier swap-out and its write-back poll.
  if (alive()) (void)m.SwapOut(c[0]);
  if (alive()) w.monitor.Poll();
}

size_t TotalActiveReplicas(swap::SwappingManager& m) {
  size_t total = 0;
  for (SwapClusterId id : m.registry().Ids()) {
    const swap::SwapClusterInfo* info = m.registry().Find(id);
    if (info == nullptr) continue;
    const std::vector<ReplicaLocation>* active = info->ActiveReplicas();
    if (active != nullptr) total += active->size();
  }
  return total;
}

size_t TotalStoredEntries(CrashWorld& w) {
  size_t total = 0;
  for (const auto& store : w.world.stores) total += store->entry_count();
  total += w.flash.entry_count();
  if (w.flash.Contains(w.journal.flash_key())) --total;  // the journal itself
  return total;
}

/// The post-recovery acceptance bar, applied after every chaos run: the
/// mediation invariant holds, every value is still readable through the
/// mediated path, and — once deferred drops drain — the stores hold
/// exactly the keys the replica lists (plus, in a tiered world, the
/// tier-owned flash entries) account for. The tier term is exact because
/// the chaos worlds run the flash tier only: every tier entry is
/// flash-resident, so `entry_count()` is its share of the stored keys.
void ExpectWorldIntact(CrashWorld& w, const std::string& label) {
  EXPECT_EQ(CheckMediationInvariant(w.world.rt), "") << label;
  Result<int64_t> sum = SumList(w.world.rt, "head");
  ASSERT_TRUE(sum.ok()) << label << ": " << sum.status().ToString();
  EXPECT_EQ(*sum, kExpectedSum) << label;
  w.world.manager.FlushPendingDrops();
  EXPECT_EQ(w.world.manager.pending_drop_count(), 0u) << label;
  const size_t tier_entries = w.tiers != nullptr ? w.tiers->entry_count() : 0;
  EXPECT_EQ(TotalStoredEntries(w),
            TotalActiveReplicas(w.world.manager) + tier_entries)
      << label << ": leaked or lost store keys";
}

// ------------------------------------------------- crash-everywhere sweep --

TEST(CrashSweepTest, EveryFaultPointCrashRecoversWithFullInvariants) {
  // Clean run: enumerate the traversed (point, hits) universe.
  std::vector<std::pair<std::string, uint64_t>> universe;
  {
    CrashWorld clean;
    RunScenario(clean);
    ASSERT_FALSE(clean.world.manager.crashed());
    // Snapshot the universe before the invariant check: its verification
    // traversal faults clusters back in, which would count hits the
    // faulted runs (which stop at RunScenario) never reach.
    for (const auto& [point, hits] : clean.faults.hit_counts())
      universe.emplace_back(point, hits);
    ASSERT_GE(universe.size(), 20u)
        << "scenario no longer covers the pipeline";
    ExpectWorldIntact(clean, "clean run");
  }

  for (const auto& [point, hits] : universe) {
    for (uint64_t nth = 1; nth <= hits; ++nth) {
      const std::string label =
          "crash at " + point + " hit " + std::to_string(nth);
      CrashWorld w;
      w.faults.Arm(point, FaultKind::kCrash, nth);
      RunScenario(w);
      ASSERT_EQ(w.faults.stats().crashes, 1u) << label;
      ASSERT_TRUE(w.world.manager.crashed()) << label;
      Result<swap::SwappingManager::RecoveryReport> report =
          w.world.manager.Recover();
      ASSERT_TRUE(report.ok()) << label << ": "
                               << report.status().ToString();
      EXPECT_FALSE(w.world.manager.crashed()) << label;
      // Immediate recovery never loses data: the heap copy survives any
      // torn op, so every cluster is either rolled back or rolled forward
      // onto verified replicas.
      EXPECT_EQ(report->clusters_lost, 0u) << label;
      ExpectWorldIntact(w, label);
    }
  }
}

TEST(CrashSweepTest, EveryFaultPointErrorUnwindsCleanlyAndJournalStaysTight) {
  std::vector<std::pair<std::string, uint64_t>> universe;
  {
    CrashWorld clean;
    RunScenario(clean);  // hit counts snapshotted before any verification
    for (const auto& [point, hits] : clean.faults.hit_counts())
      universe.emplace_back(point, hits);
  }

  for (const auto& [point, hits] : universe) {
    for (uint64_t nth = 1; nth <= hits; ++nth) {
      const std::string label =
          "error at " + point + " hit " + std::to_string(nth);
      CrashWorld w;
      w.faults.Arm(point, FaultKind::kError, nth);
      RunScenario(w);
      ASSERT_EQ(w.faults.stats().errors, 1u) << label;
      ASSERT_FALSE(w.world.manager.crashed()) << label;
      // A clean error path must leave no dangling begin record: every op
      // the pipeline opened was committed or aborted before returning. The
      // one modeled exception is a failed commit *write* — the op is fully
      // applied and recovery rolls it to a consistent state.
      Result<swap::SwappingManager::RecoveryReport> report =
          w.world.manager.Recover();
      ASSERT_TRUE(report.ok()) << label;
      if (point.find("journal_commit") == std::string::npos) {
        EXPECT_EQ(report->pending_ops, 0u) << label;
      }
      ExpectWorldIntact(w, label);
    }
  }
}

TEST(CrashSweepTest, DelayFaultsOnlyCostVirtualTime) {
  CrashWorld w;
  const uint64_t before = w.world.network.clock().now_us();
  w.faults.Arm("swap_out.ship_replica", FaultKind::kDelay, 1,
               /*delay_us=*/250000);
  RunScenario(w);
  EXPECT_FALSE(w.world.manager.crashed());
  EXPECT_EQ(w.faults.stats().delays, 1u);
  EXPECT_GE(w.world.network.clock().now_us() - before, 250000u);
  ExpectWorldIntact(w, "delay");
}

// ------------------------------------------------ tiered chaos sweeps -----

TEST(TierCrashSweepTest, EveryFaultPointCrashRecoversWithTiers) {
  // Clean tiered run: enumerate the traversed universe and require the
  // tier-specific points to be on it — otherwise the sweep would silently
  // stop covering the tier pipeline.
  std::vector<std::pair<std::string, uint64_t>> universe;
  {
    CrashWorld clean(FlashTierOptions());
    RunTierScenario(clean);
    ASSERT_FALSE(clean.world.manager.crashed());
    for (const auto& [point, hits] : clean.faults.hit_counts())
      universe.emplace_back(point, hits);
    for (const char* want : {"swap_out.tier_flash", "swap_in.tier_fetch",
                             "tier.promote", "tier.write_back"}) {
      bool traversed = false;
      for (const auto& [point, hits] : universe)
        traversed = traversed || point == want;
      EXPECT_TRUE(traversed) << want << " not traversed by the tier scenario";
    }
    EXPECT_GE(clean.world.manager.stats().tier_swap_outs, 2u);
    EXPECT_GE(clean.world.manager.stats().tier_swap_ins, 1u);
    ExpectWorldIntact(clean, "clean tier run");
  }

  for (const auto& [point, hits] : universe) {
    for (uint64_t nth = 1; nth <= hits; ++nth) {
      const std::string label =
          "tier crash at " + point + " hit " + std::to_string(nth);
      CrashWorld w(FlashTierOptions());
      w.faults.Arm(point, FaultKind::kCrash, nth);
      RunTierScenario(w);
      ASSERT_EQ(w.faults.stats().crashes, 1u) << label;
      ASSERT_TRUE(w.world.manager.crashed()) << label;
      Result<swap::SwappingManager::RecoveryReport> report =
          w.world.manager.Recover();
      ASSERT_TRUE(report.ok()) << label << ": "
                               << report.status().ToString();
      // The flash tier survives the crash, so no torn point may lose a
      // cluster: a tier-only payload is either rolled back onto the heap
      // copy or re-verified on flash at recovery.
      EXPECT_EQ(report->clusters_lost, 0u) << label;
      ExpectWorldIntact(w, label);
    }
  }
}

TEST(TierCrashSweepTest, EveryFaultPointErrorUnwindsCleanlyWithTiers) {
  std::vector<std::pair<std::string, uint64_t>> universe;
  {
    CrashWorld clean(FlashTierOptions());
    RunTierScenario(clean);
    for (const auto& [point, hits] : clean.faults.hit_counts())
      universe.emplace_back(point, hits);
  }

  for (const auto& [point, hits] : universe) {
    for (uint64_t nth = 1; nth <= hits; ++nth) {
      const std::string label =
          "tier error at " + point + " hit " + std::to_string(nth);
      CrashWorld w(FlashTierOptions());
      w.faults.Arm(point, FaultKind::kError, nth);
      RunTierScenario(w);
      ASSERT_EQ(w.faults.stats().errors, 1u) << label;
      ASSERT_FALSE(w.world.manager.crashed()) << label;
      Result<swap::SwappingManager::RecoveryReport> report =
          w.world.manager.Recover();
      ASSERT_TRUE(report.ok()) << label;
      if (point.find("journal_commit") == std::string::npos) {
        EXPECT_EQ(report->pending_ops, 0u) << label;
      }
      ExpectWorldIntact(w, label);
    }
  }
}

// ------------------------------------------------------ targeted recovery --

TEST(CrashRecoveryTest, TornSwapOutBeforeShipRollsBackAndReclaimsNothing) {
  CrashWorld w;
  // The replica intent is journaled and persisted, but the crash lands
  // before the store RPC: recovery rolls the cluster back to loaded and
  // the journaled key resolves to a no-op orphan drop.
  w.faults.Arm("swap_out.ship_replica", FaultKind::kCrash, 1);
  Result<SwapKey> key = w.world.manager.SwapOut(w.clusters[1]);
  ASSERT_FALSE(key.ok());
  ASSERT_TRUE(w.world.manager.crashed());

  auto report = w.world.manager.Recover();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->pending_ops, 1u);
  EXPECT_EQ(report->rolled_back, 1u);
  EXPECT_EQ(report->rolled_forward, 0u);
  EXPECT_GE(report->orphan_drops_enqueued, 1u);
  EXPECT_EQ(w.world.manager.StateOf(w.clusters[1]), SwapState::kLoaded);
  ExpectWorldIntact(w, "pre-ship rollback");
}

TEST(CrashRecoveryTest, TornSwapOutAtCommitRollsBackThroughPatchedProxies) {
  CrashWorld w;
  // Every side effect is applied (replicas shipped, proxies patched,
  // state flipped to swapped) — only the commit is missing. With the
  // members still on the heap, recovery prefers the heap copy: proxies
  // are re-pointed at the live members and the replicas reclaimed.
  w.faults.Arm("swap_out.journal_commit", FaultKind::kCrash, 1);
  (void)w.world.manager.SwapOut(w.clusters[1]);
  ASSERT_TRUE(w.world.manager.crashed());

  auto report = w.world.manager.Recover();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->rolled_back, 1u);
  EXPECT_GT(report->proxies_restored, 0u);
  EXPECT_EQ(w.world.manager.StateOf(w.clusters[1]), SwapState::kLoaded);
  ExpectWorldIntact(w, "at-commit rollback");
}

TEST(CrashRecoveryTest, TornSwapOutRollsForwardOnceHeapCopyIsCollected) {
  CrashWorld w;
  // Same torn point, but a GC runs before recovery (a restart that came
  // late): the original members are garbage once the proxies point at the
  // replacement. Recovery must go the other way — verify a journaled
  // replica against the journaled checksum and adopt the swapped state.
  w.faults.Arm("swap_out.journal_commit", FaultKind::kCrash, 1);
  (void)w.world.manager.SwapOut(w.clusters[1]);
  ASSERT_TRUE(w.world.manager.crashed());
  w.world.rt.heap().Collect();

  auto report = w.world.manager.Recover();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->rolled_forward, 1u);
  EXPECT_EQ(report->rolled_back, 0u);
  EXPECT_EQ(report->clusters_lost, 0u);
  EXPECT_EQ(w.world.manager.StateOf(w.clusters[1]), SwapState::kSwapped);
  // The adopted replicas re-verify against the journaled checksum, and the
  // payload is still fully readable through a demand swap-in.
  EXPECT_GT(report->replicas_verified, 0u);
  ExpectWorldIntact(w, "roll-forward");
}

TEST(CrashRecoveryTest, TornSwapInRollsBackToReplacement) {
  CrashWorld w;
  ASSERT_TRUE(w.world.manager.SwapOut(w.clusters[1]).ok());
  w.faults.Arm("swap_in.patch_proxy", FaultKind::kCrash, 1);
  ASSERT_FALSE(w.world.manager.SwapIn(w.clusters[1]).ok());
  ASSERT_TRUE(w.world.manager.crashed());

  auto report = w.world.manager.Recover();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->rolled_back, 1u);
  EXPECT_EQ(w.world.manager.StateOf(w.clusters[1]), SwapState::kSwapped);
  ExpectWorldIntact(w, "swap-in rollback");
}

TEST(CrashRecoveryTest, CrashedManagerRefusesEverythingUntilRecovered) {
  CrashWorld w;
  w.faults.Arm("swap_out.serialize", FaultKind::kCrash, 1);
  ASSERT_FALSE(w.world.manager.SwapOut(w.clusters[0]).ok());
  ASSERT_TRUE(w.world.manager.crashed());

  EXPECT_EQ(w.world.manager.SwapOut(w.clusters[1]).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(w.world.manager.SwapIn(w.clusters[1]).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(w.world.manager.PrefetchStage(w.clusters[1]).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(w.world.manager.ReReplicate(w.clusters[1]).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(w.world.manager.EvacuateReplicas(DeviceId(2)).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(w.world.manager.FlushPendingDrops(), 0u);
  const uint64_t polls_before = w.monitor.stats().polls;
  w.monitor.Poll();  // a crashed manager is not driven by maintenance
  EXPECT_EQ(w.monitor.stats().polls, polls_before);

  ASSERT_TRUE(w.world.manager.Recover().ok());
  EXPECT_FALSE(w.world.manager.crashed());
  EXPECT_TRUE(w.world.manager.SwapOut(w.clusters[1]).ok());
  EXPECT_TRUE(w.world.manager.SwapIn(w.clusters[1]).ok());
  EXPECT_EQ(w.world.manager.stats().recoveries, 1u);
}

TEST(CrashRecoveryTest, RecoveryEmitsEventsAndCountsTime) {
  CrashWorld w;
  size_t recovery_ops = 0;
  size_t completions = 0;
  w.world.bus.Subscribe(context::kEventRecoveryOp,
                        [&](const context::Event&) { ++recovery_ops; });
  w.world.bus.Subscribe(context::kEventRecoveryCompleted,
                        [&](const context::Event& event) {
                          ++completions;
                          EXPECT_EQ(event.GetIntOr("pending_ops", -1), 1);
                          EXPECT_EQ(event.GetIntOr("rolled_back", -1), 1);
                          EXPECT_EQ(event.GetIntOr("clusters_lost", -1), 0);
                        });
  w.faults.Arm("swap_out.ship_replica", FaultKind::kCrash, 1);
  (void)w.world.manager.SwapOut(w.clusters[1]);
  ASSERT_TRUE(w.world.manager.Recover().ok());
  EXPECT_EQ(recovery_ops, 1u);
  EXPECT_EQ(completions, 1u);
  // Stats flow into the registry-backed snapshot, journal costs included.
  std::string json = w.world.manager.StatsJson();
  EXPECT_NE(json.find("\"recoveries\":1"), std::string::npos);
  EXPECT_NE(json.find("\"journal_bytes\":"), std::string::npos);
  EXPECT_NE(json.find("\"journal_append_us\":"), std::string::npos);
  EXPECT_GT(w.journal.stats().persisted_bytes, 0u);
}

// ------------------------------------------ partial-replica leak (fix) -----

TEST(CrashRecoveryTest, FailedSwapOutReleasesPartiallyPlacedReplicas) {
  CrashWorld w;
  // Replicas land on stores, then replacement allocation fails: the
  // placed replicas must be released (not silently dropped one-by-one
  // with their errors ignored) and the journal op aborted.
  const size_t entries_before = TotalStoredEntries(w);
  w.faults.Arm("swap_out.build_replacement", FaultKind::kError, 1);
  Result<SwapKey> key = w.world.manager.SwapOut(w.clusters[1]);
  ASSERT_FALSE(key.ok());
  ASSERT_FALSE(w.world.manager.crashed());
  w.world.manager.FlushPendingDrops();
  EXPECT_EQ(TotalStoredEntries(w), entries_before)
      << "partially placed replicas leaked";
  EXPECT_EQ(w.world.manager.stats().swap_out_failures, 1u);
  EXPECT_EQ(w.world.manager.StateOf(w.clusters[1]), SwapState::kLoaded);
  auto report = w.world.manager.Recover();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->pending_ops, 0u) << "abort record missing";
}

// ------------------------------------------------- tiered torn recovery ---

TEST(CrashRecoveryTest, CrashAtRamTierAdmissionRollsBackToLoaded) {
  CrashWorld w(RamTierOptions());
  // The crash lands between the journaled begin and the RAM admission: no
  // tier copy exists, no replica was ever placed, and the begin record was
  // never persisted (the RAM placement journals no replica intent — there
  // is no flash key to reclaim). Recovery finds nothing pending and the
  // heap copy simply remains authoritative.
  w.faults.Arm("swap_out.tier_ram", FaultKind::kCrash, 1);
  ASSERT_FALSE(w.world.manager.SwapOut(w.clusters[1]).ok());
  ASSERT_TRUE(w.world.manager.crashed());

  auto report = w.world.manager.Recover();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->clusters_lost, 0u);
  EXPECT_EQ(w.world.manager.StateOf(w.clusters[1]), SwapState::kLoaded);
  EXPECT_EQ(w.tiers->entry_count(), 0u);
  ExpectWorldIntact(w, "ram-tier admission rollback");
}

TEST(CrashRecoveryTest, RamTierLossAtRecoveryIsCountedAndContained) {
  CrashWorld w(RamTierOptions());
  swap::SwappingManager& m = w.world.manager;
  // A committed tier swap-out whose only copy is the volatile RAM pool —
  // the write-back poll never ran. The crash (on an unrelated operation)
  // models a restart: recovery wipes the RAM pool, and with no flash copy
  // and no remote replica the payload is genuinely gone. This is the
  // window the write-back policy exists to keep short; the report must
  // name the casualty instead of pretending.
  ASSERT_TRUE(m.SwapOut(w.clusters[1]).ok());
  ASSERT_EQ(m.stats().tier_swap_outs, 1u);
  ASSERT_TRUE(w.tiers->PendingWriteBack(w.clusters[1]));
  // Hit ordinals are cumulative: the serialize point already fired once
  // during the committed swap-out above.
  w.faults.Arm("swap_out.serialize", FaultKind::kCrash, 2);
  ASSERT_FALSE(m.SwapOut(w.clusters[2]).ok());
  ASSERT_TRUE(m.crashed());

  auto report = m.Recover();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->tier_ram_entries_lost, 1u);
  EXPECT_EQ(report->clusters_lost, 1u);
  EXPECT_EQ(w.tiers->entry_count(), 0u);
  // The payload cache is as volatile as the RAM pool but the same-process
  // harness keeps it across the modeled restart — drain it so the demand
  // fault sees what a rebooted device would see.
  m.set_swap_in_cache_bytes(0);
  // The lost cluster fails loudly; the rest of the world is untouched.
  EXPECT_FALSE(m.SwapIn(w.clusters[1]).ok());
  m.set_swap_in_cache_bytes(64 * 1024);
  EXPECT_EQ(w.world.manager.StateOf(w.clusters[2]), SwapState::kLoaded);
  EXPECT_EQ(CheckMediationInvariant(w.world.rt), "");
  ASSERT_TRUE(m.SwapOut(w.clusters[0]).ok());
  ASSERT_TRUE(m.SwapIn(w.clusters[0]).ok());
}

TEST(CrashRecoveryTest, CrashDuringTierWriteBackKeepsFlashCopyAuthoritative) {
  CrashWorld w(FlashTierOptions());
  swap::SwappingManager& m = w.world.manager;
  ASSERT_TRUE(m.SwapOut(w.clusters[1]).ok());
  ASSERT_EQ(m.stats().tier_swap_outs, 1u);
  {
    const swap::SwapClusterInfo* info = m.registry().Find(w.clusters[1]);
    ASSERT_NE(info, nullptr);
    ASSERT_TRUE(info->replicas.empty()) << "payload should be tier-only";
  }
  // The poll crashes at the write-back fetch: the remote group is still
  // empty, the flash copy is the payload's only home.
  w.faults.Arm("tier.write_back", FaultKind::kCrash, 1);
  w.monitor.Poll();
  ASSERT_TRUE(m.crashed());

  auto report = m.Recover();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->clusters_lost, 0u);
  EXPECT_GE(report->tier_flash_verified, 1u);
  // The durability debt survived recovery; the next poll repays it.
  EXPECT_TRUE(w.tiers->PendingWriteBack(w.clusters[1]));
  w.monitor.Poll();
  const swap::SwapClusterInfo* info = m.registry().Find(w.clusters[1]);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->replicas.size(), 2u);
  EXPECT_FALSE(w.tiers->PendingWriteBack(w.clusters[1]));
  ExpectWorldIntact(w, "tier write-back crash");
}

// ------------------------------------------------- journal torn images ----

IntentJournal::ParseResult BuildFuzzImage(std::string* image_out) {
  net::SimClock clock;
  persist::FlashStore flash(DeviceId(1), 1 << 20, clock);
  // Retain completed-op records (the default compacts them away at commit)
  // so the fuzzed image holds both a committed and a torn operation.
  IntentJournal::Options options;
  options.compact_record_limit = 64;
  IntentJournal journal(&flash, options);
  uint64_t committed = journal.BeginOp(IntentOp::kSwapOut, SwapClusterId(7),
                                       3, 0xAB12, {101, 102}, {900});
  journal.NoteReplicaIntent(committed, DeviceId(2), SwapKey(11));
  journal.NoteReplicaIntent(committed, DeviceId(3), SwapKey(12));
  OBISWAP_CHECK(journal.Commit(committed).ok());
  uint64_t torn = journal.BeginOp(IntentOp::kSwapIn, SwapClusterId(8), 4,
                                  0xCD34, {103}, {});
  journal.NoteReplicaIntent(torn, DeviceId(3), SwapKey(13));
  journal.NoteProgress(torn, 2);
  OBISWAP_CHECK(journal.Persist().ok());
  *image_out = *flash.Fetch(journal.flash_key());
  return IntentJournal::Parse(*image_out);
}

TEST(IntentJournalTornWriteTest, TruncationAtEveryByteKeepsAnExactPrefix) {
  std::string image;
  IntentJournal::ParseResult full = BuildFuzzImage(&image);
  ASSERT_EQ(full.skipped, 0u);
  ASSERT_EQ(full.records.size(), 7u);  // 2 begins, 3 intents, 1 commit, 1 progress
  ASSERT_EQ(full.bad_tail_bytes, 0u);

  for (size_t len = 0; len <= image.size(); ++len) {
    IntentJournal::ParseResult torn =
        IntentJournal::Parse(std::string_view(image).substr(0, len));
    ASSERT_LE(torn.records.size(), full.records.size()) << "len " << len;
    // Torn tails shrink the record list from the end — they never invent
    // or reorder records.
    for (size_t i = 0; i < torn.records.size(); ++i) {
      EXPECT_EQ(torn.records[i].seq, full.records[i].seq) << "len " << len;
      EXPECT_EQ(torn.records[i].type, full.records[i].type) << "len " << len;
    }
    if (len < image.size()) {
      EXPECT_LT(torn.records.size(), full.records.size())
          << "len " << len << ": a truncated image parsed as complete";
    }
  }
}

TEST(IntentJournalTornWriteTest, TruncatedImageLoadsTheSurvivingOps) {
  std::string image;
  (void)BuildFuzzImage(&image);

  for (size_t len = 0; len <= image.size(); ++len) {
    net::SimClock clock;
    persist::FlashStore flash(DeviceId(1), 1 << 20, clock);
    OBISWAP_CHECK(flash.Store(IntentJournal::Options().key,
                              image.substr(0, len))
                      .ok());
    IntentJournal journal(&flash);
    Result<std::vector<IntentJournal::PendingOp>> pending =
        journal.LoadForRecovery();
    ASSERT_TRUE(pending.ok()) << "len " << len;
    // At most one op can be pending at any cut: either the first op (its
    // commit record was truncated away, so it resurfaces uncommitted) or
    // the second (its begin survived; its commit never existed) — never
    // both, because the second op's records follow the first's commit.
    ASSERT_LE(pending->size(), 1u) << "len " << len;
    if (!pending->empty()) {
      const IntentJournal::PendingOp& op = (*pending)[0];
      if (op.cluster == SwapClusterId(7)) {
        EXPECT_EQ(op.op, IntentOp::kSwapOut) << "len " << len;
      } else {
        EXPECT_EQ(op.cluster, SwapClusterId(8)) << "len " << len;
        EXPECT_EQ(op.op, IntentOp::kSwapIn) << "len " << len;
      }
    }
    // The fence epoch always outranks whatever was stored.
    EXPECT_GE(journal.epoch(), 2u) << "len " << len;
  }
}

TEST(IntentJournalTornWriteTest, BitFlipAtEveryByteIsDetectedNeverInvented) {
  std::string image;
  IntentJournal::ParseResult full = BuildFuzzImage(&image);

  auto matches_original = [&](const swap::JournalRecord& record) {
    for (const swap::JournalRecord& original : full.records) {
      if (original.seq == record.seq && original.type == record.type &&
          original.device == record.device && original.key == record.key &&
          original.payload_checksum == record.payload_checksum) {
        return true;
      }
    }
    return false;
  };

  for (size_t pos = 0; pos < image.size(); ++pos) {
    std::string flipped = image;
    flipped[pos] = static_cast<char>(flipped[pos] ^ (1 << (pos % 8)));
    IntentJournal::ParseResult parsed = IntentJournal::Parse(flipped);
    // A single flipped bit may cost records (CRC reject, broken framing,
    // stale fence) but must never fabricate one.
    for (const swap::JournalRecord& record : parsed.records) {
      EXPECT_TRUE(matches_original(record))
          << "pos " << pos << " invented record seq " << record.seq;
    }
    if (parsed.records.size() < full.records.size()) {
      EXPECT_GT(parsed.skipped + parsed.bad_tail_bytes +
                    (parsed.epoch == full.epoch ? 0u : 1u),
                0u)
          << "pos " << pos << " lost records without accounting";
    }

    // And the full recovery path stays calm on the same corrupt image.
    net::SimClock clock;
    persist::FlashStore flash(DeviceId(1), 1 << 20, clock);
    OBISWAP_CHECK(flash.Store(IntentJournal::Options().key, flipped).ok());
    IntentJournal journal(&flash);
    EXPECT_TRUE(journal.LoadForRecovery().ok()) << "pos " << pos;
  }
}

TEST(IntentJournalTornWriteTest, StaleEpochRecordsAreFenced) {
  net::SimClock clock;
  persist::FlashStore flash(DeviceId(1), 1 << 20, clock);
  {
    IntentJournal journal(&flash);
    // Restart once so the persisted header epoch moves past 1.
    OBISWAP_CHECK(journal.LoadForRecovery().ok());
    uint64_t seq = journal.BeginOp(IntentOp::kSwapOut, SwapClusterId(5), 1,
                                   0, {1}, {});
    journal.NoteReplicaIntent(seq, DeviceId(2), SwapKey(50));
    OBISWAP_CHECK(journal.Persist().ok());
  }
  std::string image = *flash.Fetch(IntentJournal::Options().key);
  // Append a record stamped with the pre-restart epoch: a stale survivor
  // from an older incarnation that compaction never reached.
  swap::JournalRecord stale;
  stale.epoch = 1;
  stale.seq = 99;
  stale.type = swap::RecordType::kBegin;
  stale.op = IntentOp::kDrop;
  IntentJournal::EncodeRecord(stale, &image);
  OBISWAP_CHECK(flash.Store(IntentJournal::Options().key, image).ok());

  IntentJournal journal(&flash);
  Result<std::vector<IntentJournal::PendingOp>> pending =
      journal.LoadForRecovery();
  ASSERT_TRUE(pending.ok());
  ASSERT_EQ(pending->size(), 1u);  // the real op, not the stale one
  EXPECT_EQ((*pending)[0].cluster, SwapClusterId(5));
  EXPECT_EQ(journal.stats().records_skipped, 1u);
}

TEST(IntentJournalTest, CompactionDropsCompletedOpsAndKeepsInFlight) {
  net::SimClock clock;
  persist::FlashStore flash(DeviceId(1), 1 << 20, clock);
  IntentJournal::Options options;
  options.compact_record_limit = 8;
  IntentJournal journal(&flash, options);
  uint64_t open_seq = journal.BeginOp(IntentOp::kSwapIn, SwapClusterId(42),
                                      1, 0, {}, {});
  journal.NoteReplicaIntent(open_seq, DeviceId(9), SwapKey(77));
  for (int i = 0; i < 16; ++i) {
    uint64_t seq = journal.BeginOp(IntentOp::kSwapOut,
                                   SwapClusterId(100 + i), 1, 0, {}, {});
    journal.NoteReplicaIntent(seq, DeviceId(2), SwapKey(200 + i));
    OBISWAP_CHECK(journal.Commit(seq).ok());
  }
  EXPECT_GT(journal.stats().compactions, 0u);
  EXPECT_LE(journal.record_count(), options.compact_record_limit + 3);
  // The in-flight op survives every compaction round.
  Result<std::vector<IntentJournal::PendingOp>> pending =
      journal.LoadForRecovery();
  ASSERT_TRUE(pending.ok());
  ASSERT_EQ(pending->size(), 1u);
  EXPECT_EQ((*pending)[0].seq, open_seq);
  ASSERT_EQ((*pending)[0].replica_intents.size(), 1u);
  EXPECT_EQ((*pending)[0].replica_intents[0].key, SwapKey(77));
}

}  // namespace
}  // namespace obiswap
