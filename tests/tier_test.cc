// Tests for the tiered swap hierarchy: the TierManager's compressed-RAM
// pool and wear-levelled flash slots in isolation, and the SwappingManager
// integration — tier placement on swap-out, fastest-first probing with
// promotion on swap-in, asynchronous write-back toward the remote replica
// group, and the tiers-disabled parity guarantee.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/checksum.h"
#include "test_support.h"

namespace obiswap {
namespace {

using policy::PolicyEngine;
using policy::RegisterTierActions;
using swap::ReplicaLocation;
using tier::ParseTierMode;
using tier::TierHit;
using tier::TierManager;
using tier::TierMode;
using tier::TierModeName;
using ::obiswap::testing::BuildClusteredList;
using ::obiswap::testing::MiddlewareWorld;
using ::obiswap::testing::RegisterNodeClass;
using ::obiswap::testing::SumList;

// A store-form payload: the frame-compressed document a remote store would
// hold, exactly what the manager hands the tier. Reconcile and the probe
// verify by decompressing the frame and checksumming the document.
struct Payload {
  std::string text;   ///< compressed frame (what the tier stores)
  uint32_t checksum;  ///< Adler-32 of the decompressed document
};

Payload MakePayload(const std::string& doc) {
  const compress::Codec* codec = compress::FindCodec("lz77");
  auto framed = compress::FrameCompress(*codec, doc);
  OBISWAP_CHECK(framed.ok());
  return Payload{*framed, Adler32(doc)};
}

/// Deterministic noise the codec cannot shrink, for tests whose budget
/// arithmetic must not be disturbed by compression.
std::string IncompressibleDoc(size_t n, uint32_t seed) {
  std::string out;
  out.reserve(n);
  uint32_t x = seed * 2654435761u + 12345u;
  for (size_t i = 0; i < n; ++i) {
    x = x * 1664525u + 1013904223u;
    out.push_back(static_cast<char>('!' + (x >> 24) % 90));
  }
  return out;
}

// ----------------------------------------------------------- TierManager --

TEST(TierModeTest, NamesRoundTripAndBadNamesAreRejected) {
  for (TierMode mode :
       {TierMode::kOff, TierMode::kRam, TierMode::kFlash, TierMode::kAll}) {
    auto parsed = ParseTierMode(TierModeName(mode));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_EQ(ParseTierMode("turbo").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TierManagerTest, RamAdmitServesExactEpochAndPinningBlocksEviction) {
  TierManager::Options options;
  options.ram_bytes = 256;
  options.mode = TierMode::kRam;
  TierManager tiers(nullptr, options);
  Payload p = MakePayload(IncompressibleDoc(150, 1));
  ASSERT_LE(p.text.size(), 256u);

  ASSERT_TRUE(tiers.AdmitRam(SwapClusterId(1), 3, p.checksum, p.text));
  TierHit hit = TierHit::kNone;
  auto probed = tiers.Probe(SwapClusterId(1), 3, p.checksum, &hit);
  ASSERT_TRUE(probed.ok());
  EXPECT_EQ(*probed, p.text);
  EXPECT_EQ(hit, TierHit::kRam);
  // A stale epoch or checksum never serves the copy.
  EXPECT_FALSE(tiers.Probe(SwapClusterId(1), 2, p.checksum, &hit).ok());
  EXPECT_FALSE(tiers.Probe(SwapClusterId(1), 3, p.checksum + 1, &hit).ok());

  // The entry is pinned (write-back still owed): another cluster that
  // does not fit alongside it is rejected, not admitted over it.
  EXPECT_TRUE(tiers.PendingWriteBack(SwapClusterId(1)));
  Payload q = MakePayload(IncompressibleDoc(150, 2));
  ASSERT_GT(q.text.size() + tiers.ram_bytes_used(), tiers.ram_bytes_budget());
  EXPECT_FALSE(tiers.AdmitRam(SwapClusterId(2), 1, q.checksum, q.text));
  EXPECT_EQ(tiers.stats().ram_rejects, 1u);

  // Written back: the entry becomes a pure read cache and LRU eviction
  // may reclaim it for the next admission.
  tiers.MarkWrittenBack(SwapClusterId(1));
  EXPECT_FALSE(tiers.PendingWriteBack(SwapClusterId(1)));
  EXPECT_EQ(tiers.stats().write_backs, 1u);
  ASSERT_TRUE(tiers.AdmitRam(SwapClusterId(2), 1, q.checksum, q.text));
  EXPECT_GE(tiers.stats().ram_evictions, 1u);
  EXPECT_FALSE(tiers.Probe(SwapClusterId(1), 3, p.checksum, &hit).ok());
}

TEST(TierManagerTest, RamPoolRecompressesWhenItPays) {
  TierManager::Options options;
  options.ram_bytes = 1 << 16;
  options.mode = TierMode::kRam;
  TierManager tiers(nullptr, options);
  // An RLE-style doc compressed with lz77 still leaves slack a second
  // squeeze can claim... but the robust assertion is the round-trip: the
  // probe returns the exact store-form payload whether or not the pool
  // wrapped it, and any saving is accounted.
  std::string doc;
  for (int i = 0; i < 200; ++i) doc += "<node value=\"42\"/>";
  Payload p = MakePayload(doc);
  ASSERT_TRUE(tiers.AdmitRam(SwapClusterId(5), 1, p.checksum, p.text));
  EXPECT_LE(tiers.ram_bytes_used(), p.text.size());
  TierHit hit = TierHit::kNone;
  auto probed = tiers.Probe(SwapClusterId(5), 1, p.checksum, &hit);
  ASSERT_TRUE(probed.ok());
  EXPECT_EQ(*probed, p.text);
  EXPECT_EQ(tiers.ram_bytes_used() + tiers.stats().ram_bytes_saved,
            p.text.size());
}

TEST(TierManagerTest, FlashPlacementIsWearAware) {
  net::SimClock clock;
  persist::FlashStore flash(DeviceId(1), 1 << 20, clock);
  TierManager::Options options;
  options.mode = TierMode::kFlash;
  options.flash_slot_bytes = 64;
  options.flash_slots = 4;
  TierManager tiers(&flash, options);
  Payload p = MakePayload(IncompressibleDoc(100, 3));
  const size_t need =
      (p.text.size() + options.flash_slot_bytes - 1) / options.flash_slot_bytes;
  ASSERT_LE(need, 2u) << "payload grew past the test's slot budget";

  // First admission takes the least-worn slots: 0..need-1.
  ASSERT_TRUE(
      tiers.AdmitFlash(SwapClusterId(1), 1, p.checksum, SwapKey(100), p.text)
          .ok());
  EXPECT_EQ(tiers.flash_slots_used(), need);
  for (size_t s = 0; s < need; ++s) EXPECT_EQ(tiers.slot_wear(s), 1u);

  // Released and re-admitted: the freed slots now carry wear, so the
  // least-write-count-first allocator moves to the untouched ones.
  tiers.Release(SwapClusterId(1));
  EXPECT_EQ(tiers.flash_slots_used(), 0u);
  ASSERT_TRUE(
      tiers.AdmitFlash(SwapClusterId(2), 1, p.checksum, SwapKey(101), p.text)
          .ok());
  for (size_t s = 0; s < need; ++s)
    EXPECT_EQ(tiers.slot_wear(need + s), 1u) << "slot " << need + s;
  for (size_t s = 0; s < need; ++s)
    EXPECT_EQ(tiers.slot_wear(s), 1u) << "slot " << s << " worn again";
}

TEST(TierManagerTest, FlashSlotCapacityRejectsWhenPinnedAndEvictsWhenNot) {
  net::SimClock clock;
  persist::FlashStore flash(DeviceId(1), 1 << 20, clock);
  TierManager::Options options;
  options.mode = TierMode::kFlash;
  options.flash_slot_bytes = 32;
  options.flash_slots = 2;
  TierManager tiers(&flash, options);
  Payload p = MakePayload(IncompressibleDoc(40, 4));
  ASSERT_GT(p.text.size(), options.flash_slot_bytes) << "need 2 slots";
  ASSERT_TRUE(
      tiers.AdmitFlash(SwapClusterId(1), 1, p.checksum, SwapKey(1), p.text)
          .ok());
  EXPECT_EQ(tiers.flash_slots_used(), 2u);

  // Partition full of a pinned entry: admission fails loudly.
  Payload q = MakePayload("second");
  EXPECT_EQ(
      tiers.AdmitFlash(SwapClusterId(2), 1, q.checksum, SwapKey(2), q.text)
          .code(),
      StatusCode::kResourceExhausted);
  EXPECT_EQ(tiers.stats().flash_rejects, 1u);

  // Unpinned, the LRU entry makes way — and its flash bytes are dropped.
  tiers.MarkWrittenBack(SwapClusterId(1));
  ASSERT_TRUE(
      tiers.AdmitFlash(SwapClusterId(2), 1, q.checksum, SwapKey(2), q.text)
          .ok());
  EXPECT_EQ(tiers.stats().flash_evictions, 1u);
  EXPECT_FALSE(flash.Contains(SwapKey(1)));
  EXPECT_TRUE(flash.Contains(SwapKey(2)));
}

TEST(TierManagerTest, RamEvictionDemotesSoleCopiesToFlashAndSparesThemLRU) {
  net::SimClock clock;
  persist::FlashStore flash(DeviceId(1), 1 << 20, clock);
  TierManager::Options options;
  options.mode = TierMode::kAll;
  options.ram_bytes = 256;
  options.flash_slot_bytes = 64;
  options.flash_slots = 8;
  TierManager tiers(&flash, options);
  uint64_t next_key = 500;
  tiers.set_key_source([&next_key] { return SwapKey(next_key++); });

  Payload p = MakePayload(IncompressibleDoc(150, 5));
  Payload q = MakePayload(IncompressibleDoc(150, 6));
  ASSERT_GT(p.text.size() + q.text.size(), 256u) << "both fit; no eviction";
  ASSERT_TRUE(tiers.AdmitRam(SwapClusterId(1), 1, p.checksum, p.text));
  tiers.MarkWrittenBack(SwapClusterId(1));

  // The next admission squeezes the read-cache entry out of the pool —
  // but with free flash slots it is demoted, not dropped, and the next
  // probe is a flash hit instead of a radio fault.
  ASSERT_TRUE(tiers.AdmitRam(SwapClusterId(2), 1, q.checksum, q.text));
  EXPECT_EQ(tiers.stats().ram_evictions, 1u);
  EXPECT_EQ(tiers.stats().demotions, 1u);
  TierHit hit = TierHit::kNone;
  auto probed = tiers.Probe(SwapClusterId(1), 1, p.checksum, &hit);
  ASSERT_TRUE(probed.ok());
  EXPECT_EQ(*probed, p.text);
  EXPECT_EQ(hit, TierHit::kFlash);

  // Promotion-driven eviction demotes too: promoting cluster 1 back up
  // squeezes cluster 2 (a sole RAM copy) out of the pool, and it slides
  // down into free flash slots instead of falling out of the tier.
  tiers.MarkWrittenBack(SwapClusterId(2));
  tiers.PromoteToRam(SwapClusterId(1), *probed);
  EXPECT_EQ(tiers.stats().demotions, 2u);
  EXPECT_TRUE(tiers.Probe(SwapClusterId(2), 1, q.checksum, &hit).ok());
  EXPECT_EQ(hit, TierHit::kFlash);

  // Without a key source (or free slots) the old behavior stands: the
  // sole RAM copy is simply dropped.
  tiers.set_key_source(nullptr);
  Payload r = MakePayload(IncompressibleDoc(150, 7));
  tiers.Release(SwapClusterId(1));
  tiers.Release(SwapClusterId(2));
  ASSERT_TRUE(tiers.AdmitRam(SwapClusterId(3), 1, r.checksum, r.text));
  tiers.MarkWrittenBack(SwapClusterId(3));
  ASSERT_TRUE(tiers.AdmitRam(SwapClusterId(4), 2, p.checksum, p.text));
  EXPECT_EQ(tiers.stats().demotions, 2u) << "no key source, no demotion";
  EXPECT_FALSE(tiers.Probe(SwapClusterId(3), 1, r.checksum, &hit).ok());
}

TEST(TierManagerTest, ProbeSelfHealsAFlashEntryDroppedBehindItsBack) {
  net::SimClock clock;
  persist::FlashStore flash(DeviceId(1), 1 << 20, clock);
  TierManager::Options options;
  options.mode = TierMode::kFlash;
  options.flash_slot_bytes = 64;
  options.flash_slots = 8;
  TierManager tiers(&flash, options);
  Payload p = MakePayload("soon to vanish behind the tier's back");
  ASSERT_TRUE(
      tiers.AdmitFlash(SwapClusterId(3), 1, p.checksum, SwapKey(9), p.text)
          .ok());
  ASSERT_TRUE(flash.Drop(SwapKey(9)).ok());  // e.g. an orphan-drop drain

  TierHit hit = TierHit::kNone;
  EXPECT_FALSE(tiers.Probe(SwapClusterId(3), 1, p.checksum, &hit).ok());
  EXPECT_EQ(tiers.stats().flash_discards, 1u);
  EXPECT_EQ(tiers.flash_slots_used(), 0u) << "slots of the dead entry leak";
  EXPECT_EQ(tiers.entry_count(), 0u);
}

TEST(TierManagerTest, NewerAdmissionSupersedesTheOlderEpochEverywhere) {
  net::SimClock clock;
  persist::FlashStore flash(DeviceId(1), 1 << 20, clock);
  TierManager::Options options;
  options.mode = TierMode::kAll;
  options.ram_bytes = 4096;
  options.flash_slot_bytes = 64;
  options.flash_slots = 8;
  TierManager tiers(&flash, options);
  Payload p1 = MakePayload("epoch one payload");
  Payload p2 = MakePayload("epoch two payload, fresher");
  ASSERT_TRUE(
      tiers.AdmitFlash(SwapClusterId(4), 1, p1.checksum, SwapKey(21), p1.text)
          .ok());
  // The RAM admission of the NEXT epoch releases the flash copy of the old
  // one: the tier holds exactly one payload generation per cluster.
  ASSERT_TRUE(tiers.AdmitRam(SwapClusterId(4), 2, p2.checksum, p2.text));
  EXPECT_EQ(tiers.entry_count(), 1u);
  EXPECT_FALSE(flash.Contains(SwapKey(21)));
  EXPECT_EQ(tiers.flash_slots_used(), 0u);
  TierHit hit = TierHit::kNone;
  EXPECT_FALSE(tiers.Probe(SwapClusterId(4), 1, p1.checksum, &hit).ok());
  EXPECT_TRUE(tiers.Probe(SwapClusterId(4), 2, p2.checksum, &hit).ok());

  // Epoch-scoped release ignores a mismatched generation and retires an
  // exact match.
  tiers.Release(SwapClusterId(4), 1, p1.checksum);
  EXPECT_EQ(tiers.entry_count(), 1u);
  tiers.Release(SwapClusterId(4), 2, p2.checksum);
  EXPECT_EQ(tiers.entry_count(), 0u);
}

TEST(TierManagerTest, RamPoolDoesNotSurviveRecoveryButFlashDoes) {
  net::SimClock clock;
  persist::FlashStore flash(DeviceId(1), 1 << 20, clock);
  TierManager::Options options;
  options.mode = TierMode::kAll;
  options.ram_bytes = 1 << 16;
  options.flash_slot_bytes = 64;
  options.flash_slots = 16;
  TierManager tiers(&flash, options);
  Payload ram_only = MakePayload("volatile payload, ram only");
  Payload on_flash = MakePayload("durable payload, flash backed");
  ASSERT_TRUE(tiers.AdmitRam(SwapClusterId(1), 1, ram_only.checksum,
                             ram_only.text));
  ASSERT_TRUE(tiers.AdmitFlash(SwapClusterId(2), 1, on_flash.checksum,
                               SwapKey(31), on_flash.text)
                  .ok());
  // Promote the flash entry so it is resident in both tiers.
  TierHit hit = TierHit::kNone;
  auto probed = tiers.Probe(SwapClusterId(2), 1, on_flash.checksum, &hit);
  ASSERT_TRUE(probed.ok());
  tiers.PromoteToRam(SwapClusterId(2), *probed);
  EXPECT_EQ(tiers.stats().promotions, 1u);

  EXPECT_EQ(tiers.DropRamPoolForRecovery(), 1u);  // only the RAM-only one
  EXPECT_EQ(tiers.stats().ram_entries_lost, 1u);
  EXPECT_EQ(tiers.ram_bytes_used(), 0u);
  EXPECT_FALSE(tiers.Probe(SwapClusterId(1), 1, ram_only.checksum, &hit).ok());
  // The both-tier entry survives as flash-only.
  ASSERT_TRUE(tiers.Probe(SwapClusterId(2), 1, on_flash.checksum, &hit).ok());
  EXPECT_EQ(hit, TierHit::kFlash);
}

TEST(TierManagerTest, ReconcileKeepsVerifiedWantedEntriesAndDropsTheRest) {
  net::SimClock clock;
  persist::FlashStore flash(DeviceId(1), 1 << 20, clock);
  TierManager::Options options;
  options.mode = TierMode::kFlash;
  options.flash_slot_bytes = 64;
  options.flash_slots = 16;
  TierManager tiers(&flash, options);
  Payload wanted = MakePayload("still wanted after the restart");
  Payload stale = MakePayload("cluster re-swapped at another epoch");
  Payload corrupt = MakePayload("flash bytes rotted under this one");
  ASSERT_TRUE(tiers.AdmitFlash(SwapClusterId(1), 1, wanted.checksum,
                               SwapKey(41), wanted.text)
                  .ok());
  ASSERT_TRUE(tiers.AdmitFlash(SwapClusterId(2), 1, stale.checksum,
                               SwapKey(42), stale.text)
                  .ok());
  ASSERT_TRUE(tiers.AdmitFlash(SwapClusterId(3), 1, corrupt.checksum,
                               SwapKey(43), corrupt.text)
                  .ok());
  ASSERT_TRUE(flash.Store(SwapKey(43), "not a frame at all").ok());

  TierManager::ReconcileOutcome outcome = tiers.ReconcileAfterRestart(
      [](SwapClusterId id, uint64_t, uint32_t) {
        return id != SwapClusterId(2);  // cluster 2 moved on
      });
  EXPECT_EQ(outcome.verified, 1u);
  EXPECT_EQ(outcome.discarded, 2u);
  EXPECT_TRUE(tiers.HasFlashCopy(SwapClusterId(1), 1, wanted.checksum));
  EXPECT_EQ(tiers.FlashKey(SwapClusterId(1)), SwapKey(41));
  EXPECT_FALSE(tiers.FlashKey(SwapClusterId(2)).valid());
  EXPECT_EQ(tiers.entry_count(), 1u);
  EXPECT_FALSE(flash.Contains(SwapKey(42)));
  EXPECT_FALSE(flash.Contains(SwapKey(43)));
  // Survivors stay pinned: the durability sweep re-queues their write-back.
  EXPECT_TRUE(tiers.PendingWriteBack(SwapClusterId(1)));
}

TEST(TierManagerTest, ShrinkingBudgetsEvictsUnpinnedEntriesOnly) {
  net::SimClock clock;
  persist::FlashStore flash(DeviceId(1), 1 << 20, clock);
  TierManager::Options options;
  options.mode = TierMode::kAll;
  options.ram_bytes = 1 << 16;
  options.flash_slot_bytes = 64;
  options.flash_slots = 16;
  TierManager tiers(&flash, options);
  Payload pinned = MakePayload("pinned: write-back still owed here");
  Payload loose = MakePayload("unpinned read-cache entry");
  ASSERT_TRUE(tiers.AdmitRam(SwapClusterId(1), 1, pinned.checksum,
                             pinned.text));
  ASSERT_TRUE(tiers.AdmitRam(SwapClusterId(2), 1, loose.checksum, loose.text));
  tiers.MarkWrittenBack(SwapClusterId(2));

  tiers.set_ram_bytes(1);  // far below either entry
  EXPECT_EQ(tiers.ram_bytes_budget(), 1u);
  // The unpinned entry went; the pinned one overhangs until written back.
  TierHit hit = TierHit::kNone;
  EXPECT_FALSE(tiers.Probe(SwapClusterId(2), 1, loose.checksum, &hit).ok());
  EXPECT_TRUE(tiers.Probe(SwapClusterId(1), 1, pinned.checksum, &hit).ok());
  EXPECT_GT(tiers.ram_bytes_used(), tiers.ram_bytes_budget());

  // Same for flash slots.
  ASSERT_TRUE(tiers.AdmitFlash(SwapClusterId(3), 1, loose.checksum,
                               SwapKey(51), loose.text)
                  .ok());
  tiers.MarkWrittenBack(SwapClusterId(3));
  tiers.set_flash_slots(0);
  EXPECT_EQ(tiers.flash_slots_used(), 0u);
  EXPECT_FALSE(flash.Contains(SwapKey(51)));
}

TEST(TierManagerTest, StatsSnapshotKeysStayInFrozenOrder) {
  TierManager tiers(nullptr);
  auto snapshot = tiers.StatsSnapshot();
  const auto& keys = TierManager::StatKeys();
  ASSERT_EQ(snapshot.size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(snapshot[i].first, keys[i]);
    EXPECT_EQ(snapshot[i].second, 0u);
  }
}

// ------------------------------------------------- manager integration --

swap::SwappingManager::Options TierIntegrationOptions() {
  swap::SwappingManager::Options options;
  options.replication_factor = 2;
  options.swap_in_cache_bytes = 0;  // let the tiers serve re-faults
  options.codec = "rle";
  return options;
}

/// A MiddlewareWorld with the full tier stack wired in: local flash shared
/// by the journal and the flash tier, TierManager, durability monitor.
struct TierWorld {
  explicit TierWorld(TierManager::Options tier_options,
                     bool attach_tier = true)
      : world(TierIntegrationOptions()),
        flash(MiddlewareWorld::kDevice, 1 << 20, world.network.clock()),
        journal(&flash),
        tiers(&flash, tier_options),
        monitor(world.manager, world.discovery, MiddlewareWorld::kDevice,
                world.bus, nullptr) {
    world.manager.AttachClock(&world.network.clock());
    world.manager.AttachLocalStore(&flash);
    world.manager.AttachIntentJournal(&journal);
    if (attach_tier) world.manager.AttachTierManager(&tiers);
    node_cls = RegisterNodeClass(world.rt);
    world.AddStore(2, 1 << 20);
    world.AddStore(3, 1 << 20);
    clusters = BuildClusteredList(world.rt, world.manager, node_cls, 30, 10,
                                  "head");
  }

  MiddlewareWorld world;
  persist::FlashStore flash;
  swap::IntentJournal journal;
  TierManager tiers;
  swap::DurabilityMonitor monitor;
  const runtime::ClassInfo* node_cls = nullptr;
  std::vector<SwapClusterId> clusters;
};

TierManager::Options AllTiersOptions() {
  TierManager::Options options;
  options.mode = TierMode::kAll;
  options.ram_bytes = 1 << 16;
  options.flash_slot_bytes = 512;
  options.flash_slots = 64;
  return options;
}

TEST(TierIntegrationTest, SwapOutLandsInTierAndWriteBackReachesK) {
  TierWorld w(AllTiersOptions());
  swap::SwappingManager& m = w.world.manager;
  ASSERT_TRUE(m.SwapOut(w.clusters[1]).ok());
  EXPECT_EQ(m.stats().tier_swap_outs, 1u);
  EXPECT_EQ(m.stats().replicas_placed, 0u) << "payload went to the radio";

  // The swap-out did not reach any remote store — the tier holds the only
  // copy, pinned as write-back debt.
  const swap::SwapClusterInfo* info = m.registry().Find(w.clusters[1]);
  ASSERT_NE(info, nullptr);
  EXPECT_TRUE(info->replicas.empty());
  EXPECT_TRUE(w.tiers.PendingWriteBack(w.clusters[1]));

  // The durability poll repays the debt: the remote group is topped up to
  // K and the tier entry unpinned into a read cache.
  w.monitor.Poll();
  info = m.registry().Find(w.clusters[1]);
  ASSERT_EQ(info->replicas.size(), 2u);
  for (const ReplicaLocation& replica : info->replicas)
    EXPECT_NE(replica.device, MiddlewareWorld::kDevice)
        << "write-back must land off-device";
  EXPECT_FALSE(w.tiers.PendingWriteBack(w.clusters[1]));
  EXPECT_EQ(w.tiers.stats().write_backs, 1u);

  // The re-fault is served by the tier, not the radio.
  const uint64_t radio_bytes_before = m.stats().bytes_swapped_in;
  ASSERT_TRUE(m.SwapIn(w.clusters[1]).ok());
  EXPECT_EQ(m.stats().tier_swap_ins, 1u);
  EXPECT_EQ(m.stats().bytes_swapped_in, radio_bytes_before);
  EXPECT_GE(w.tiers.stats().ram_hits + w.tiers.stats().flash_hits, 1u);
  auto sum = SumList(w.world.rt, "head");
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, 30 * 29 / 2);
}

TEST(TierIntegrationTest, FlashHitIsPromotedIntoTheRamPool) {
  TierManager::Options options = AllTiersOptions();
  options.mode = TierMode::kFlash;  // admission lands on flash
  TierWorld w(options);
  swap::SwappingManager& m = w.world.manager;
  ASSERT_TRUE(m.SwapOut(w.clusters[1]).ok());
  ASSERT_EQ(w.tiers.stats().flash_admits, 1u);

  // Open the RAM pool, then fault: the flash hit is copied up so the next
  // re-fault of the cluster runs at memory speed.
  w.tiers.set_mode(TierMode::kAll);
  ASSERT_TRUE(m.SwapIn(w.clusters[1]).ok());
  EXPECT_EQ(w.tiers.stats().flash_hits, 1u);
  EXPECT_EQ(w.tiers.stats().promotions, 1u);
  EXPECT_GT(w.tiers.ram_bytes_used(), 0u);

  ASSERT_TRUE(m.SwapOut(w.clusters[1]).ok());  // re-swap: fresh admission
  ASSERT_TRUE(m.SwapIn(w.clusters[1]).ok());
  EXPECT_GE(w.tiers.stats().ram_hits, 1u);
}

TEST(TierIntegrationTest, ModeGatesAdmissionButNeverStrandsPinnedEntries) {
  TierWorld w(AllTiersOptions());
  swap::SwappingManager& m = w.world.manager;
  ASSERT_TRUE(m.SwapOut(w.clusters[1]).ok());
  ASSERT_TRUE(w.tiers.PendingWriteBack(w.clusters[1]));

  // Flip admission off mid-flight: the pinned entry still serves probes
  // and still drains through the durability sweep.
  w.tiers.set_mode(TierMode::kOff);
  ASSERT_TRUE(m.SwapOut(w.clusters[2]).ok());
  EXPECT_EQ(m.stats().tier_swap_outs, 1u) << "admission was not gated";
  EXPECT_GT(m.stats().replicas_placed, 0u);
  w.monitor.Poll();
  EXPECT_FALSE(w.tiers.PendingWriteBack(w.clusters[1]));
  const swap::SwapClusterInfo* info = m.registry().Find(w.clusters[1]);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->replicas.size(), 2u);
  ASSERT_TRUE(m.SwapIn(w.clusters[1]).ok());
  ASSERT_TRUE(m.SwapIn(w.clusters[2]).ok());
}

TEST(TierIntegrationTest, DetachedAndModeOffWorldsAreByteIdentical) {
  // Three worlds run the same scenario: no TierManager at all, one
  // attached but switched off, and the stats/clock must not diverge — the
  // off-tier configuration is behavior-identical, and the stats snapshot
  // carries the same (zeroed) key set either way.
  auto run = [](TierWorld& w) {
    swap::SwappingManager& m = w.world.manager;
    OBISWAP_CHECK(m.SwapOut(w.clusters[0]).ok());
    OBISWAP_CHECK(m.SwapIn(w.clusters[0]).ok());
    OBISWAP_CHECK(m.SwapOut(w.clusters[1]).ok());
    w.monitor.Poll();
    OBISWAP_CHECK(m.SwapIn(w.clusters[1]).ok());
  };
  TierManager::Options off = AllTiersOptions();
  off.mode = TierMode::kOff;
  TierWorld with_tier(off, /*attach_tier=*/true);
  TierWorld without(AllTiersOptions(), /*attach_tier=*/false);
  run(with_tier);
  run(without);
  EXPECT_EQ(with_tier.world.manager.StatsJson(),
            without.world.manager.StatsJson());
  EXPECT_EQ(with_tier.world.network.clock().now_us(),
            without.world.network.clock().now_us());
  EXPECT_EQ(with_tier.tiers.entry_count(), 0u);
}

TEST(TierIntegrationTest, StatsSnapshotAlwaysCarriesTierKeys) {
  MiddlewareWorld world;  // no tier attached at all
  std::string json = world.manager.StatsJson();
  for (std::string_view key : TierManager::StatKeys()) {
    EXPECT_NE(json.find("\"" + std::string(key) + "\":"), std::string::npos)
        << key;
  }
  EXPECT_NE(json.find("\"tier_swap_outs\":0"), std::string::npos);
  EXPECT_NE(json.find("\"tier_swap_ins\":0"), std::string::npos);
}

// ----------------------------------------------------------- policy knobs --

TEST(TierPolicyTest, ActionsResizeAndGateTheTiers) {
  TierWorld w(AllTiersOptions());
  context::PropertyRegistry props;
  PolicyEngine engine(w.world.bus, props);
  ASSERT_TRUE(RegisterTierActions(engine, w.tiers).ok());
  auto added = engine.LoadXml(R"(
    <policies>
      <policy name="shrink-ram" on="memory-pressure">
        <action name="set-tier-bytes">
          <param name="tier" value="ram"/>
          <param name="bytes" value="8192"/>
        </action>
      </policy>
      <policy name="shrink-flash" on="memory-pressure">
        <action name="set-tier-bytes">
          <param name="tier" value="flash"/>
          <param name="bytes" value="16384"/>
        </action>
      </policy>
      <policy name="kill-tiers" on="app-background">
        <action name="set-tier-mode">
          <param name="mode" value="off"/>
        </action>
      </policy>
    </policies>)");
  ASSERT_TRUE(added.ok()) << added.status().ToString();

  w.world.bus.Publish(context::Event("memory-pressure"));
  EXPECT_EQ(w.tiers.ram_bytes_budget(), 8192u);
  EXPECT_EQ(w.tiers.flash_slots_total(), 16384u / w.tiers.flash_slot_bytes());
  EXPECT_TRUE(w.tiers.enabled());

  w.world.bus.Publish(context::Event("app-background"));
  EXPECT_EQ(w.tiers.mode(), TierMode::kOff);
  EXPECT_FALSE(w.tiers.enabled());
  EXPECT_EQ(engine.stats().action_failures, 0u);
}

TEST(TierPolicyTest, BadActionParamsFailLoudly) {
  TierWorld w(AllTiersOptions());
  context::PropertyRegistry props;
  PolicyEngine engine(w.world.bus, props);
  ASSERT_TRUE(RegisterTierActions(engine, w.tiers).ok());
  auto added = engine.LoadXml(R"(
    <policies>
      <policy name="bad-tier" on="tick-a">
        <action name="set-tier-bytes">
          <param name="tier" value="tape"/>
          <param name="bytes" value="1"/>
        </action>
      </policy>
      <policy name="bad-mode" on="tick-b">
        <action name="set-tier-mode">
          <param name="mode" value="turbo"/>
        </action>
      </policy>
    </policies>)");
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  w.world.bus.Publish(context::Event("tick-a"));
  w.world.bus.Publish(context::Event("tick-b"));
  EXPECT_EQ(engine.stats().action_failures, 2u);
  EXPECT_EQ(w.tiers.mode(), TierMode::kAll) << "a bad mode name applied";
}

}  // namespace
}  // namespace obiswap
