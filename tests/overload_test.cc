// Overload-resilience tests: StoreNode admission control (fluid backlog,
// per-class shedding limits, retry-after math), the StoreClient's pushback
// handling (retry-after pacing, terminal statuses, the deadline edge, the
// per-store retry budget), HealthTracker pushback neutrality, the AIMD
// pacer, the policy actions, the knobs-off byte-parity contract, and the
// correlated-outage recovery storm on the FleetDriver.
#include <gtest/gtest.h>

#include "test_support.h"

namespace obiswap {
namespace {

using net::HealthTracker;
using net::IsPushback;
using net::Priority;
using net::StoreClient;
using net::StoreNode;
using ::obiswap::testing::BuildClusteredList;
using ::obiswap::testing::MiddlewareWorld;
using ::obiswap::testing::RegisterNodeClass;

constexpr uint64_t kService = 1'000'000;  ///< 1 s of work per admitted op

StoreNode::QueueOptions TightQueue(bool shedding = false) {
  StoreNode::QueueOptions queue;
  queue.enabled = true;
  queue.concurrency = 1;
  queue.queue_limit = 2;
  queue.service_time_us = kService;
  queue.priority_shedding = shedding;
  return queue;
}

// ------------------------------------------------- StoreNode admission --

TEST(StoreAdmissionTest, DisabledQueueAlwaysAdmitsAtZeroCost) {
  StoreNode node(DeviceId(2), 1 << 20);
  for (int i = 0; i < 100; ++i) {
    StoreNode::AdmitResult result = node.Admit(0, Priority::kMaintenance);
    EXPECT_TRUE(result.admitted);
    EXPECT_EQ(result.queue_wait_us, 0u);
  }
  EXPECT_EQ(node.stats().admitted, 0u);
  EXPECT_EQ(node.stats().shed_total, 0u);
}

TEST(StoreAdmissionTest, BoundedQueueFillsAndRejectsWithRetryAfter) {
  StoreNode node(DeviceId(2), 1 << 20);
  node.ConfigureQueue(TightQueue());  // 1 server + 2 waiting slots

  // Back-to-back arrivals (no clock movement): each admit stacks one
  // service time of backlog and the queueing delay is the backlog ahead.
  for (uint64_t i = 0; i < 3; ++i) {
    StoreNode::AdmitResult r = node.Admit(0, Priority::kDemandSwapIn);
    ASSERT_TRUE(r.admitted) << i;
    EXPECT_EQ(r.depth, i);
    EXPECT_EQ(r.queue_wait_us, i * kService + kService) << i;
  }
  // Fourth arrival: depth 3 at limit 3 — shed, with an honest hint of when
  // the tail slot frees (backlog beyond the queue-capacity work).
  StoreNode::AdmitResult shed = node.Admit(0, Priority::kDemandSwapIn);
  EXPECT_FALSE(shed.admitted);
  EXPECT_EQ(shed.depth, 3u);
  EXPECT_EQ(shed.retry_after_us, kService);
  EXPECT_EQ(node.stats().admitted, 3u);
  EXPECT_EQ(node.stats().shed_total, 1u);
  EXPECT_EQ(node.stats().shed_by_class[0], 1u);
  EXPECT_EQ(node.stats().max_queue_depth, 3u);

  // The backlog drains at `concurrency` server-us per clock-us: two
  // service times later there is room again.
  StoreNode::AdmitResult later =
      node.Admit(2 * kService, Priority::kDemandSwapIn);
  EXPECT_TRUE(later.admitted);
  EXPECT_EQ(later.depth, 1u);
}

TEST(StoreAdmissionTest, PrioritySheddingDropsLowestClassesFirst) {
  StoreNode node(DeviceId(2), 1 << 20);
  StoreNode::QueueOptions queue;
  queue.enabled = true;
  queue.concurrency = 1;
  queue.queue_limit = 4;
  queue.service_time_us = kService;
  queue.priority_shedding = true;
  node.ConfigureQueue(queue);
  // Per-class depth limits: demand 5, swap-out 4, hedge 3, prefetch 2,
  // maintenance 1 (class p keeps (4-p)/4 of the waiting slots).

  ASSERT_TRUE(node.Admit(0, Priority::kMaintenance).admitted);  // depth 0
  // One outstanding request already locks maintenance out while every
  // higher class still has room.
  EXPECT_FALSE(node.Admit(0, Priority::kMaintenance).admitted);
  ASSERT_TRUE(node.Admit(0, Priority::kPrefetch).admitted);     // depth 1
  EXPECT_FALSE(node.Admit(0, Priority::kPrefetch).admitted);    // depth 2
  ASSERT_TRUE(node.Admit(0, Priority::kHedgedFetch).admitted);
  EXPECT_FALSE(node.Admit(0, Priority::kHedgedFetch).admitted);  // depth 3
  ASSERT_TRUE(node.Admit(0, Priority::kSwapOut).admitted);
  EXPECT_FALSE(node.Admit(0, Priority::kSwapOut).admitted);      // depth 4
  ASSERT_TRUE(node.Admit(0, Priority::kDemandSwapIn).admitted);
  EXPECT_FALSE(node.Admit(0, Priority::kDemandSwapIn).admitted);  // depth 5

  EXPECT_EQ(node.stats().admitted, 5u);
  EXPECT_EQ(node.stats().shed_total, 5u);
  for (int p = 0; p < net::kPriorityClasses; ++p)
    EXPECT_EQ(node.stats().shed_by_class[p], 1u) << p;
  // Lower classes see a *longer* retry-after (their slot frees later).
  uint64_t demand_wait =
      node.Admit(0, Priority::kDemandSwapIn).retry_after_us;
  uint64_t maintenance_wait =
      node.Admit(0, Priority::kMaintenance).retry_after_us;
  EXPECT_GT(maintenance_wait, demand_wait);
}

// ----------------------------------------------- client pushback handling --

TEST(PushbackClientTest, RetryHonorsTheRetryAfterHint) {
  MiddlewareWorld world;
  StoreNode* store = world.AddStore(2, 1 << 20);
  store->ConfigureQueue(TightQueue());

  // Three stores saturate the queue (transfer time drains almost nothing
  // against 1 s of service each)...
  for (uint64_t k = 1; k <= 3; ++k)
    ASSERT_TRUE(world.client.Store(DeviceId(2), SwapKey(k), "<xml/>").ok());
  EXPECT_EQ(world.client.stats().pushbacks, 0u);
  EXPECT_GT(world.client.stats().queue_wait_us, 0u);

  // ...so the fourth is shed once, waits out the store's own hint (not an
  // exponential guess) and lands on the retry.
  uint64_t clock_before = world.network.clock().now_us();
  uint64_t backoff_before = world.client.stats().backoff_us;
  ASSERT_TRUE(world.client.Store(DeviceId(2), SwapKey(4), "<xml/>").ok());
  const StoreClient::Stats& stats = world.client.stats();
  EXPECT_EQ(stats.pushbacks, 1u);
  EXPECT_EQ(stats.pushback_retries, 1u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.wire_attempts, 5u);
  EXPECT_GE(stats.max_store_queue_depth, 3u);
  // The gap the client waited is exactly the shed backlog's drain time —
  // within one service slot of the hint, charged as backoff.
  uint64_t waited = stats.backoff_us - backoff_before;
  EXPECT_GE(waited, kService / 2);
  EXPECT_LE(waited, 2 * kService);
  EXPECT_GE(world.network.clock().now_us() - clock_before, waited);
  EXPECT_EQ(store->stats().shed_total, 1u);
  EXPECT_EQ(store->stats().admitted, 4u);
}

TEST(PushbackClientTest, TerminalRemoteStatusesNeverRetry) {
  MiddlewareWorld world;
  world.AddStore(2, 64);  // 64 bytes: the second store cannot fit

  // Remote kNotFound: one attempt, no retries.
  uint64_t attempts_before = world.client.stats().wire_attempts;
  auto missing = world.client.Fetch(DeviceId(2), SwapKey(99));
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(world.client.stats().wire_attempts, attempts_before + 1);
  EXPECT_EQ(world.client.stats().retries, 0u);

  // Remote capacity exhaustion is kResourceExhausted but NOT pushback —
  // still terminal, still one attempt.
  ASSERT_TRUE(world.client.Store(DeviceId(2), SwapKey(1), "<x/>").ok());
  attempts_before = world.client.stats().wire_attempts;
  Status full = world.client.Store(DeviceId(2), SwapKey(2),
                                   std::string(128, 'y'));
  EXPECT_EQ(full.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(IsPushback(full));
  EXPECT_EQ(world.client.stats().wire_attempts, attempts_before + 1);
  EXPECT_EQ(world.client.stats().retries, 0u);
}

TEST(PushbackClientTest, RetryAfterPastTheDeadlineFailsFast) {
  MiddlewareWorld world;
  StoreNode* store = world.AddStore(2, 1 << 20);
  store->ConfigureQueue(TightQueue());
  for (uint64_t k = 1; k <= 3; ++k)
    ASSERT_TRUE(world.client.Store(DeviceId(2), SwapKey(k), "<xml/>").ok());

  // The shed response's retry-after (~1 s) cannot fit a 200 ms rpc budget
  // (one round trip is ~62 ms of link time): the call must fail
  // kDeadlineExceeded immediately instead of sleeping toward a deadline it
  // already knows it will miss.
  uint64_t clock_before = world.network.clock().now_us();
  Status late = world.client.Store(DeviceId(2), SwapKey(4), "<xml/>",
                                   /*deadline_us=*/200'000);
  EXPECT_EQ(late.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(world.client.stats().deadline_failures, 1u);
  EXPECT_EQ(world.client.stats().pushbacks, 1u);
  EXPECT_EQ(world.client.stats().pushback_retries, 0u);
  // No sleep happened: one round trip of link time, nowhere near the
  // retry-after hint (and under the deadline itself).
  EXPECT_LT(world.network.clock().now_us() - clock_before, 200'000u);
}

TEST(PushbackClientTest, ExhaustedRetryBudgetFailsWithoutTheRadio) {
  MiddlewareWorld world;
  StoreNode* store = world.AddStore(2, 1 << 20);
  store->ConfigureQueue(TightQueue());
  StoreClient::RetryBudgetOptions budget;
  budget.enabled = true;
  budget.initial_centitokens = 0;  // nothing banked: no retry is covered
  world.client.set_retry_budget(budget);

  for (uint64_t k = 1; k <= 3; ++k)
    ASSERT_TRUE(world.client.Store(DeviceId(2), SwapKey(k), "<xml/>").ok());
  // Each success banked 10 centitokens = 30 total, still under the 100 a
  // retry costs: the shed call surfaces the pushback untouched.
  uint64_t attempts_before = world.client.stats().wire_attempts;
  Status shed = world.client.Store(DeviceId(2), SwapKey(4), "<xml/>");
  EXPECT_TRUE(IsPushback(shed)) << shed.ToString();
  EXPECT_EQ(world.client.stats().wire_attempts, attempts_before + 1);
  EXPECT_EQ(world.client.stats().retry_budget_exhausted, 1u);
  EXPECT_EQ(world.client.stats().retry_budget_earned, 30u);
  EXPECT_EQ(world.client.stats().retry_budget_spent, 0u);
  EXPECT_EQ(world.client.stats().pushback_retries, 0u);

  // Offline store, same shape: the one transport failure is not followed
  // by budget-less retries (nor their backoff clock cost).
  world.network.SetOnline(DeviceId(2), false);
  attempts_before = world.client.stats().wire_attempts;
  Status down = world.client.Store(DeviceId(2), SwapKey(5), "<xml/>");
  EXPECT_EQ(down.code(), StatusCode::kUnavailable);
  EXPECT_EQ(world.client.stats().wire_attempts, attempts_before + 1);
  EXPECT_EQ(world.client.stats().retry_budget_exhausted, 2u);
}

TEST(PushbackClientTest, SuccessesReplenishTheBudget) {
  MiddlewareWorld world;
  world.AddStore(2, 1 << 20);
  StoreClient::RetryBudgetOptions budget;
  budget.enabled = true;
  budget.initial_centitokens = 0;
  budget.max_centitokens = 120;
  budget.earn_per_success = 10;
  world.client.set_retry_budget(budget);

  // Twelve successes fill the bucket to its cap; a thirteenth earns only
  // the headroom (zero at the cap).
  for (uint64_t k = 1; k <= 13; ++k)
    ASSERT_TRUE(world.client.Store(DeviceId(2), SwapKey(k), "<xml/>").ok());
  EXPECT_EQ(world.client.stats().retry_budget_earned, 120u);

  // Now a dead store: the bucket covers one 100-centitoken retry, then
  // exhausts — three configured attempts, two allowed on the wire.
  world.network.SetOnline(DeviceId(2), false);
  uint64_t attempts_before = world.client.stats().wire_attempts;
  Status down = world.client.Store(DeviceId(2), SwapKey(99), "<xml/>");
  EXPECT_EQ(down.code(), StatusCode::kUnavailable);
  EXPECT_EQ(world.client.stats().wire_attempts, attempts_before + 2);
  EXPECT_EQ(world.client.stats().retry_budget_spent, 100u);
  EXPECT_EQ(world.client.stats().retry_budget_exhausted, 1u);
}

// ------------------------------------------------ health: pushback neutral --

TEST(HealthPushbackTest, PushbackNeverFeedsTheBreaker) {
  net::SimClock clock;
  HealthTracker health(&clock);
  const DeviceId store(2);

  // Two real failures put the store one failure from tripping...
  health.RecordOutcome(store, false, 1000);
  health.RecordOutcome(store, false, 1000);
  ASSERT_EQ(health.Find(store)->consecutive_failures, 2u);
  double error_rate_before = health.Find(store)->ewma_error_rate;

  // ...and a storm of shed responses moves none of the breaker inputs:
  // no streak growth, no EWMA sample, no trip. An overloaded store is
  // healthy; it asked us to come back later.
  for (int i = 0; i < 50; ++i) health.RecordPushback(store);
  EXPECT_EQ(health.StateOf(store), net::BreakerState::kClosed);
  EXPECT_EQ(health.Find(store)->consecutive_failures, 2u);
  EXPECT_EQ(health.Find(store)->ewma_error_rate, error_rate_before);
  EXPECT_EQ(health.Find(store)->attempts, 2u);
  EXPECT_EQ(health.stats().trips, 0u);
  EXPECT_EQ(health.stats().pushbacks_recorded, 50u);

  // The third *real* failure still trips it — neutrality, not immunity.
  health.RecordOutcome(store, false, 1000);
  EXPECT_EQ(health.StateOf(store), net::BreakerState::kOpen);
}

TEST(HealthPushbackTest, ShedHalfOpenProbeClosesTheBreaker) {
  net::SimClock clock;
  HealthTracker health(&clock);
  const DeviceId store(2);
  for (int i = 0; i < 3; ++i) health.RecordOutcome(store, false, 1000);
  ASSERT_EQ(health.StateOf(store), net::BreakerState::kOpen);

  clock.Advance(health.options().open_cooldown_us + 1);
  ASSERT_TRUE(health.AllowRequest(store));  // the half-open probe
  ASSERT_EQ(health.StateOf(store), net::BreakerState::kHalfOpen);
  // The probe reached a live-but-saturated store: transport worked, so the
  // breaker closes rather than leaving the probe dangling forever.
  health.RecordPushback(store);
  EXPECT_EQ(health.StateOf(store), net::BreakerState::kClosed);
  EXPECT_EQ(health.stats().closes, 1u);
  EXPECT_FALSE(health.Find(store)->probe_in_flight);
}

// --------------------------------------------------------------- AIMD pacer --

TEST(AimdPacerTest, DisabledAdmitsEverything) {
  AimdPacer pacer;
  pacer.BeginWindow();
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(pacer.Admit());
  EXPECT_EQ(pacer.stats().deferred, 0u);
}

TEST(AimdPacerTest, CapOpensAdditivelyAndHalvesOnPushback) {
  AimdPacer::Options options;
  options.enabled = true;
  options.initial_cap = 4;
  options.min_cap = 1;
  options.max_cap = 6;
  AimdPacer pacer(options);

  pacer.BeginWindow();
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(pacer.Admit()) << i;
  EXPECT_FALSE(pacer.Admit());  // cap reached within the window
  EXPECT_EQ(pacer.stats().deferred, 1u);

  pacer.OnSuccess();
  pacer.OnSuccess();
  pacer.OnSuccess();  // saturates at max_cap
  EXPECT_EQ(pacer.cap(), 6u);
  pacer.BeginWindow();  // fresh window, carried-over cap
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(pacer.Admit()) << i;
  EXPECT_FALSE(pacer.Admit());

  pacer.OnPushback();
  EXPECT_EQ(pacer.cap(), 3u);
  pacer.OnPushback();
  pacer.OnPushback();
  pacer.OnPushback();
  EXPECT_EQ(pacer.cap(), 1u);  // floored at min_cap
  EXPECT_EQ(pacer.stats().backoffs, 4u);
}

// ------------------------------------------------------------ policy knobs --

TEST(OverloadPolicyTest, ActionsConfigureStoresAndTheClient) {
  MiddlewareWorld world;
  StoreNode* a = world.AddStore(2, 1 << 20);
  StoreNode* b = world.AddStore(3, 1 << 20);
  context::PropertyRegistry props;
  policy::PolicyEngine engine(world.bus, props);
  ASSERT_TRUE(policy::RegisterOverloadActions(engine, world.discovery,
                                              world.client)
                  .ok());
  auto added = engine.LoadXml(R"(
    <policies>
      <policy name="brace-queues" on="storm-warning">
        <action name="set-store-queue">
          <param name="enabled" value="1"/>
          <param name="concurrency" value="3"/>
          <param name="queue_limit" value="5"/>
          <param name="service_time_us" value="2000"/>
        </action>
      </policy>
      <policy name="brace-shedding" on="storm-warning">
        <action name="set-priority-shedding">
          <param name="enabled" value="1"/>
        </action>
      </policy>
      <policy name="brace-budget" on="storm-warning">
        <action name="set-retry-budget">
          <param name="enabled" value="1"/>
          <param name="earn" value="20"/>
          <param name="cost" value="50"/>
        </action>
      </policy>
      <policy name="stand-down" on="storm-over">
        <action name="set-store-queue">
          <param name="enabled" value="0"/>
        </action>
      </policy>
    </policies>)");
  ASSERT_TRUE(added.ok()) << added.status().ToString();

  world.bus.Publish(context::Event("storm-warning"));
  EXPECT_EQ(engine.stats().action_failures, 0u);
  for (StoreNode* node : {a, b}) {
    EXPECT_TRUE(node->queue_options().enabled);
    EXPECT_EQ(node->queue_options().concurrency, 3u);
    EXPECT_EQ(node->queue_options().queue_limit, 5u);
    EXPECT_EQ(node->queue_options().service_time_us, 2000u);
    EXPECT_TRUE(node->queue_options().priority_shedding);
  }
  EXPECT_TRUE(world.client.annotate_priority());
  EXPECT_TRUE(world.client.retry_budget().enabled);
  EXPECT_EQ(world.client.retry_budget().earn_per_success, 20u);
  EXPECT_EQ(world.client.retry_budget().cost_per_retry, 50u);

  // Disabling the queue keeps the shedding flag (separate knob).
  world.bus.Publish(context::Event("storm-over"));
  EXPECT_FALSE(a->queue_options().enabled);
  EXPECT_TRUE(a->queue_options().priority_shedding);
}

// ------------------------------------------------------ knobs-off parity --

TEST(OverloadParityTest, DisabledKnobsAreByteIdentical) {
  // Two worlds, same scenario. One is plain; the other has every overload
  // surface wired but switched off: a configured-disabled store queue, a
  // disabled retry budget, disabled pacer options with non-default caps.
  // StatsJson and the virtual clock must not diverge by one byte/us, and
  // the frozen snapshot must carry the new keys at zero.
  auto run = [](MiddlewareWorld& world) {
    const runtime::ClassInfo* cls = RegisterNodeClass(world.rt);
    swap::DurabilityMonitor monitor(world.manager, world.discovery,
                                    MiddlewareWorld::kDevice, world.bus);
    auto clusters =
        BuildClusteredList(world.rt, world.manager, cls, 24, 12, "head");
    for (SwapClusterId id : clusters)
      OBISWAP_CHECK(world.manager.SwapOut(id).ok());
    monitor.Poll();
    OBISWAP_CHECK(world.manager.SwapIn(clusters[0]).ok());
    world.manager.MarkDirty(clusters[0]);
    OBISWAP_CHECK(world.manager.SwapOut(clusters[0]).ok());
    monitor.Poll();
  };

  swap::SwappingManager::Options wired_options;
  wired_options.write_back_pacer.enabled = false;
  wired_options.write_back_pacer.initial_cap = 2;  // ignored while disabled

  MiddlewareWorld plain;
  MiddlewareWorld wired(wired_options);
  for (uint32_t id = 2; id <= 4; ++id) plain.AddStore(id, 1 << 20);
  for (uint32_t id = 2; id <= 4; ++id) {
    StoreNode* store = wired.AddStore(id, 1 << 20);
    StoreNode::QueueOptions queue = TightQueue(/*shedding=*/true);
    queue.enabled = false;  // wired but off: must admit at zero cost
    store->ConfigureQueue(queue);
  }
  StoreClient::RetryBudgetOptions budget;
  budget.enabled = false;
  budget.initial_centitokens = 0;  // would fast-fail everything if live
  wired.client.set_retry_budget(budget);
  wired.client.set_annotate_priority(false);

  run(plain);
  run(wired);
  EXPECT_EQ(plain.manager.StatsJson(), wired.manager.StatsJson());
  EXPECT_EQ(plain.network.clock().now_us(), wired.network.clock().now_us());

  std::string json = plain.manager.StatsJson();
  for (const char* key :
       {"\"net.pushbacks\":0", "\"net.pushback_retries\":0",
        "\"net.retry_budget_exhausted\":0", "\"net.shed_demand\":0",
        "\"net.shed_swap_out\":0", "\"net.shed_hedge\":0",
        "\"net.shed_prefetch\":0", "\"net.shed_maintenance\":0",
        "\"store_queue_depth\":0", "\"write_backs_paced\":0"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

// ----------------------------------------------------- fleet recovery storm --

TEST(RecoveryStormTest, StormConvergesAndAccountingBalances) {
  fleet::FleetOptions options;
  options.devices = 6;
  options.stores = 8;
  options.clusters_per_device = 3;
  options.objects_per_cluster = 6;
  options.overload_controls = true;
  fleet::FleetDriver driver(options);
  ASSERT_TRUE(driver.Build().ok());
  ASSERT_TRUE(driver.RunRounds(1).ok());

  // Tighten every surviving store's queue *after* the steady phase, then
  // hit the pool with a correlated outage plus demand traffic. The service
  // time must exceed one call's own link time (~85 ms: 2 x 30 ms latency
  // plus payload) or the backlog drains faster than it builds.
  StoreNode::QueueOptions queue;
  queue.enabled = true;
  queue.concurrency = 1;
  queue.queue_limit = 2;
  queue.service_time_us = 250'000;
  queue.priority_shedding = true;
  driver.ConfigureStoreQueues(queue);

  size_t killed = driver.InjectCorrelatedOutage(0.3);
  ASSERT_GE(killed, 1u);
  auto storm = driver.RunRecoveryStorm(6);
  ASSERT_TRUE(storm.ok()) << storm.status().ToString();
  EXPECT_EQ(storm->polls, 6);
  EXPECT_GT(storm->demand_faults, 0u);
  EXPECT_GE(storm->p95_stall_us, 0u);
  EXPECT_GE(storm->max_stall_us, storm->p95_stall_us);

  // Recovery must still converge with the tight queues in place (the AIMD
  // pacers spread the repair traffic over polls instead of flooding).
  auto polls = driver.RunUntilRecovered(400);
  ASSERT_TRUE(polls.ok()) << polls.status().ToString();

  fleet::FleetReport report = driver.Report();
  EXPECT_EQ(report.clusters_lost, 0u);
  EXPECT_EQ(report.clusters_below_k, 0u);
  EXPECT_GT(report.store_sheds, 0u);
  EXPECT_GT(report.queue_wait_us, 0u);
  EXPECT_GT(report.wire_attempts, report.logical_calls);

  // Conservation: every shed the stores counted arrived at exactly one
  // client as a pushback, class by class — nothing lost, nothing double-
  // counted, even under the outage.
  EXPECT_EQ(report.client_pushbacks, report.store_sheds);
  for (int p = 0; p < net::kPriorityClasses; ++p)
    EXPECT_EQ(report.client_pushbacks_by_class[p],
              report.store_sheds_by_class[p])
        << net::PriorityName(static_cast<Priority>(p));
}

}  // namespace
}  // namespace obiswap
