// Tests for local persistence: FlashStore, the swapping manager's local
// fallback, and the runtime's extended weak references.
#include <gtest/gtest.h>

#include "test_support.h"

namespace obiswap {
namespace {

using persist::FlashParams;
using persist::FlashStore;
using runtime::LocalScope;
using runtime::Object;
using runtime::Value;
using ::obiswap::testing::BuildClusteredList;
using ::obiswap::testing::MiddlewareWorld;
using ::obiswap::testing::RegisterNodeClass;
using ::obiswap::testing::SumList;

// ------------------------------------------------------------ FlashStore --

TEST(FlashStoreTest, StoreFetchDrop) {
  net::SimClock clock;
  FlashStore flash(DeviceId(1), 4096, clock);
  ASSERT_TRUE(flash.Store(SwapKey(1), "payload").ok());
  EXPECT_TRUE(flash.Contains(SwapKey(1)));
  EXPECT_EQ(*flash.Fetch(SwapKey(1)), "payload");
  ASSERT_TRUE(flash.Drop(SwapKey(1)).ok());
  EXPECT_FALSE(flash.Contains(SwapKey(1)));
  EXPECT_EQ(flash.used_bytes(), 0u);
}

TEST(FlashStoreTest, CapacityAndDuplicates) {
  net::SimClock clock;
  FlashStore flash(DeviceId(1), 10, clock);
  ASSERT_TRUE(flash.Store(SwapKey(1), "12345").ok());
  EXPECT_EQ(flash.Store(SwapKey(2), "123456").code(),
            StatusCode::kResourceExhausted);
  EXPECT_TRUE(flash.Store(SwapKey(1), "12345").ok());  // idempotent
  // Overwriting an existing key replaces the entry in place (the intent
  // journal re-persists its image under one reserved key).
  ASSERT_TRUE(flash.Store(SwapKey(1), "other").ok());
  EXPECT_EQ(*flash.Fetch(SwapKey(1)), "other");
  EXPECT_FALSE(flash.Fetch(SwapKey(9)).ok());
  EXPECT_FALSE(flash.Drop(SwapKey(9)).ok());
}

TEST(FlashStoreTest, OverwriteAccountsBySizeDelta) {
  net::SimClock clock;
  persist::FlashParams params;
  params.op_latency_us = 0;
  FlashStore flash(DeviceId(1), 100, clock, params);
  ASSERT_TRUE(flash.Store(SwapKey(1), std::string(40, 'a')).ok());
  EXPECT_EQ(flash.used_bytes(), 40u);
  EXPECT_EQ(flash.stats().bytes_written, 40u);

  // Re-store with different content of a larger size: used_bytes moves by
  // the delta (no double-count), wear is charged for the bytes written.
  ASSERT_TRUE(flash.Store(SwapKey(1), std::string(60, 'b')).ok());
  EXPECT_EQ(flash.used_bytes(), 60u);
  EXPECT_EQ(flash.entry_count(), 1u);
  EXPECT_EQ(flash.stats().bytes_written, 40u + 60u);
  EXPECT_EQ(flash.stats().overwrites, 1u);

  // Shrinking overwrite frees the difference.
  ASSERT_TRUE(flash.Store(SwapKey(1), std::string(10, 'c')).ok());
  EXPECT_EQ(flash.used_bytes(), 10u);
  EXPECT_EQ(flash.stats().overwrites, 2u);

  // Capacity check is against the post-replacement footprint: a 100-byte
  // payload fits because the old 10 bytes are reclaimed by the same op...
  ASSERT_TRUE(flash.Store(SwapKey(1), std::string(100, 'd')).ok());
  EXPECT_EQ(flash.used_bytes(), 100u);
  // ...but a second key cannot squeeze in, and a failed store leaves the
  // old entry untouched.
  EXPECT_EQ(flash.Store(SwapKey(2), "x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(flash.Fetch(SwapKey(1))->size(), 100u);

  // Identical re-store stays free: no wear, no overwrite counted.
  const uint64_t wear = flash.stats().bytes_written;
  const uint64_t overwrites = flash.stats().overwrites;
  ASSERT_TRUE(flash.Store(SwapKey(1), std::string(100, 'd')).ok());
  EXPECT_EQ(flash.stats().bytes_written, wear);
  EXPECT_EQ(flash.stats().overwrites, overwrites);
}

TEST(FlashStoreTest, CapacityIsReconfigurable) {
  net::SimClock clock;
  FlashStore flash(DeviceId(1), 10, clock);
  ASSERT_TRUE(flash.Store(SwapKey(1), "12345678").ok());

  // Growing admits what previously overflowed.
  EXPECT_EQ(flash.Store(SwapKey(2), "1234").code(),
            StatusCode::kResourceExhausted);
  ASSERT_TRUE(flash.set_capacity_bytes(20).ok());
  EXPECT_EQ(flash.capacity_bytes(), 20u);
  ASSERT_TRUE(flash.Store(SwapKey(2), "1234").ok());
  EXPECT_EQ(flash.free_bytes(), 8u);

  // Shrinking below the stored bytes is refused and changes nothing; the
  // store never drops data to fit a new partition size.
  EXPECT_EQ(flash.set_capacity_bytes(11).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(flash.capacity_bytes(), 20u);
  EXPECT_TRUE(flash.Contains(SwapKey(1)));
  EXPECT_TRUE(flash.Contains(SwapKey(2)));

  // Shrinking to exactly the stored bytes is allowed — the store is full.
  ASSERT_TRUE(flash.set_capacity_bytes(12).ok());
  EXPECT_EQ(flash.free_bytes(), 0u);
  EXPECT_EQ(flash.Store(SwapKey(3), "x").code(),
            StatusCode::kResourceExhausted);
}

TEST(FlashStoreTest, AsymmetricAccessCosts) {
  net::SimClock clock;
  FlashParams params;
  params.op_latency_us = 0;
  params.read_us_per_kib = 100;
  params.write_us_per_kib = 1000;
  FlashStore flash(DeviceId(1), 1 << 20, clock, params);
  std::string blob(10 * 1024, 'x');
  uint64_t t0 = clock.now_us();
  ASSERT_TRUE(flash.Store(SwapKey(1), blob).ok());
  uint64_t write_cost = clock.now_us() - t0;
  t0 = clock.now_us();
  ASSERT_TRUE(flash.Fetch(SwapKey(1)).ok());
  uint64_t read_cost = clock.now_us() - t0;
  EXPECT_EQ(write_cost, 10u * 1000);
  EXPECT_EQ(read_cost, 10u * 100);
  EXPECT_EQ(flash.stats().bytes_written, blob.size());
}

// --------------------------------------------------- local swap fallback --

TEST(LocalFallbackTest, SwapsLocallyWhenNoDeviceNearby) {
  MiddlewareWorld world;  // NO stores added
  const runtime::ClassInfo* node_cls = RegisterNodeClass(world.rt);
  FlashStore flash(MiddlewareWorld::kDevice, 1 << 20,
                   world.network.clock());
  world.manager.AttachLocalStore(&flash);
  auto clusters =
      BuildClusteredList(world.rt, world.manager, node_cls, 20, 10, "head");
  ASSERT_TRUE(world.manager.SwapOut(clusters[0]).ok());
  EXPECT_EQ(flash.entry_count(), 1u);
  EXPECT_EQ(world.manager.stats().local_swap_outs, 1u);
  // Transparent reload from flash. The flash entry is retained as a clean
  // image until the cluster is written.
  auto sum = SumList(world.rt, "head");
  ASSERT_TRUE(sum.ok()) << sum.status().ToString();
  EXPECT_EQ(*sum, 190);
  EXPECT_EQ(flash.entry_count(), 1u);
  world.manager.MarkDirty(clusters[0]);
  EXPECT_EQ(flash.entry_count(), 0u);  // image invalidated, entry dropped
}

TEST(LocalFallbackTest, RemoteStorePreferredOverFlash) {
  MiddlewareWorld world;
  const runtime::ClassInfo* node_cls = RegisterNodeClass(world.rt);
  net::StoreNode* remote = world.AddStore(2, 1 << 20);
  FlashStore flash(MiddlewareWorld::kDevice, 1 << 20,
                   world.network.clock());
  world.manager.AttachLocalStore(&flash);
  auto clusters =
      BuildClusteredList(world.rt, world.manager, node_cls, 10, 10, "head");
  ASSERT_TRUE(world.manager.SwapOut(clusters[0]).ok());
  EXPECT_EQ(remote->entry_count(), 1u);
  EXPECT_EQ(flash.entry_count(), 0u);
  EXPECT_EQ(world.manager.stats().local_swap_outs, 0u);
}

TEST(LocalFallbackTest, FlashTakesOverWhenStoresWanderOff) {
  MiddlewareWorld world;
  const runtime::ClassInfo* node_cls = RegisterNodeClass(world.rt);
  net::StoreNode* remote = world.AddStore(2, 1 << 20);
  FlashStore flash(MiddlewareWorld::kDevice, 1 << 20,
                   world.network.clock());
  world.manager.AttachLocalStore(&flash);
  auto clusters =
      BuildClusteredList(world.rt, world.manager, node_cls, 20, 10, "head");
  ASSERT_TRUE(world.manager.SwapOut(clusters[0]).ok());  // -> remote
  world.network.SetOnline(remote->device(), false);
  ASSERT_TRUE(world.manager.SwapOut(clusters[1]).ok());  // -> flash
  EXPECT_EQ(flash.entry_count(), 1u);
  EXPECT_EQ(world.manager.stats().local_swap_outs, 1u);
  // Cluster 0 is unreachable on the offline remote; cluster 1 reloads from
  // flash regardless of connectivity.
  const swap::SwapClusterInfo* info1 =
      world.manager.registry().Find(clusters[1]);
  ASSERT_EQ(info1->replicas.size(), 1u);
  EXPECT_EQ(info1->replicas[0].device, MiddlewareWorld::kDevice);
  ASSERT_TRUE(world.manager.SwapIn(clusters[1]).ok());
  auto blocked = world.manager.SwapIn(clusters[0]);
  EXPECT_EQ(blocked.code(), StatusCode::kUnavailable);
}

TEST(LocalFallbackTest, DropPathReachesFlash) {
  MiddlewareWorld world;
  const runtime::ClassInfo* node_cls = RegisterNodeClass(world.rt);
  FlashStore flash(MiddlewareWorld::kDevice, 1 << 20,
                   world.network.clock());
  world.manager.AttachLocalStore(&flash);
  auto clusters =
      BuildClusteredList(world.rt, world.manager, node_cls, 10, 10, "head");
  ASSERT_TRUE(world.manager.SwapOut(clusters[0]).ok());
  world.rt.RemoveGlobal("head");
  world.rt.heap().Collect();
  world.rt.heap().Collect();
  EXPECT_EQ(flash.entry_count(), 0u);
  EXPECT_EQ(world.manager.StateOf(clusters[0]), swap::SwapState::kDropped);
}

TEST(LocalFallbackTest, FullFlashAndNoStoresFailsCleanly) {
  MiddlewareWorld world;
  const runtime::ClassInfo* node_cls = RegisterNodeClass(world.rt);
  FlashStore flash(MiddlewareWorld::kDevice, 16, world.network.clock());
  world.manager.AttachLocalStore(&flash);
  auto clusters =
      BuildClusteredList(world.rt, world.manager, node_cls, 10, 10, "head");
  auto key = world.manager.SwapOut(clusters[0]);
  ASSERT_FALSE(key.ok());
  EXPECT_EQ(key.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(world.manager.StateOf(clusters[0]), swap::SwapState::kLoaded);
}

// ------------------------------------------------ extended weak references --

TEST(ExtendedWeakRefTest, PersistRunsOnceBeforeReclamation) {
  runtime::Runtime rt;
  const runtime::ClassInfo* cls = RegisterNodeClass(rt);
  int persisted = 0;
  int64_t seen_value = -1;
  runtime::WeakRef cell;
  {
    LocalScope scope(rt.heap());
    Object* obj = rt.New(cls);
    scope.Add(obj);
    ASSERT_TRUE(rt.SetField(obj, "value", Value::Int(42)).ok());
    cell = rt.heap().NewExtendedWeakRef(obj, [&](Object* dying) {
      ++persisted;
      seen_value = dying->RawSlot(1).as_int();  // object still intact
    });
    rt.heap().Collect();
    EXPECT_EQ(persisted, 0);  // still rooted
  }
  rt.heap().Collect();
  EXPECT_EQ(persisted, 1);
  EXPECT_EQ(seen_value, 42);
  EXPECT_TRUE(cell->cleared());
  rt.heap().Collect();
  EXPECT_EQ(persisted, 1);  // never again
  EXPECT_EQ(rt.heap().stats().extended_persists, 1u);
}

TEST(ExtendedWeakRefTest, DroppedHolderSkipsPersist) {
  runtime::Runtime rt;
  const runtime::ClassInfo* cls = RegisterNodeClass(rt);
  int persisted = 0;
  {
    runtime::WeakRef cell = rt.heap().NewExtendedWeakRef(
        rt.New(cls), [&](Object*) { ++persisted; });
    // Holder drops the extended reference before the object dies.
  }
  rt.heap().Collect();
  EXPECT_EQ(persisted, 0);
}

TEST(ExtendedWeakRefTest, PersistToFlashRoundTrip) {
  // The related-work use case end-to-end: persist a dying object's XML to
  // flash, then restore it.
  runtime::Runtime rt;
  const runtime::ClassInfo* cls = RegisterNodeClass(rt);
  net::SimClock clock;
  FlashStore flash(DeviceId(1), 1 << 20, clock);
  std::string saved_xml;
  runtime::WeakRef cell;  // the holder must keep the extended reference
  {
    LocalScope scope(rt.heap());
    Object* obj = rt.New(cls);
    scope.Add(obj);
    ASSERT_TRUE(rt.SetField(obj, "value", Value::Int(1234)).ok());
    cell = rt.heap().NewExtendedWeakRef(obj, [&](Object* dying) {
      auto describe =
          [](Object*) -> Result<serialization::ExternalRef> {
        return InternalError("self-contained");
      };
      auto doc = serialization::SerializeCluster(rt, 0, {dying}, describe);
      OBISWAP_CHECK(doc.ok());
      saved_xml = doc->payload;
    });
  }
  rt.heap().Collect();
  ASSERT_FALSE(saved_xml.empty());
  ASSERT_TRUE(flash.Store(SwapKey(1), saved_xml).ok());

  // Restore.
  auto resolve = [](const serialization::ExternalRef&) -> Result<Object*> {
    return InternalError("self-contained");
  };
  serialization::DeserializeOptions options;
  options.expected_id = 0;
  auto members =
      serialization::DeserializeCluster(rt, *flash.Fetch(SwapKey(1)),
                                        options, resolve);
  ASSERT_TRUE(members.ok());
  EXPECT_EQ((*members)[0]->RawSlot(1).as_int(), 1234);
}

}  // namespace
}  // namespace obiswap
