// Tests for object-graph <-> XML serialization.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "serialization/graph_xml.h"
#include "xml/parser.h"

namespace obiswap::serialization {
namespace {

using runtime::ClassBuilder;
using runtime::ClassInfo;
using runtime::LocalScope;
using runtime::Object;
using runtime::Runtime;
using runtime::Value;
using runtime::ValueKind;

class SerializationFixture : public ::testing::Test {
 protected:
  SerializationFixture() {
    cls_ = *rt_.types().Register(ClassBuilder("Item")
                                     .Field("next", ValueKind::kRef)
                                     .Field("count", ValueKind::kInt)
                                     .Field("weight", ValueKind::kReal)
                                     .Field("label", ValueKind::kStr)
                                     .Field("extra"));
    ext_cls_ = *rt_.types().Register(
        ClassBuilder("Ext").Kind(runtime::ObjectKind::kReplicationProxy));
  }

  Object* NewItem(LocalScope& scope, int64_t count) {
    Object* obj = rt_.New(cls_);
    scope.Add(obj);
    OBISWAP_CHECK(rt_.SetField(obj, "count", Value::Int(count)).ok());
    return obj;
  }

  static Result<ExternalRef> NoExternals(Object*) {
    return InternalError("unexpected external ref");
  }
  static Result<Object*> ResolveNone(const ExternalRef&) {
    return InternalError("unexpected external ref");
  }

  Runtime rt_;
  const ClassInfo* cls_ = nullptr;
  const ClassInfo* ext_cls_ = nullptr;
};

TEST_F(SerializationFixture, RoundTripsAllValueKinds) {
  LocalScope scope(rt_.heap());
  Object* a = NewItem(scope, 42);
  ASSERT_TRUE(rt_.SetField(a, "weight", Value::Real(2.5)).ok());
  ASSERT_TRUE(rt_.SetField(a, "label", Value::Str("hello <&> world")).ok());
  // "extra" stays nil.
  auto serialized = SerializeCluster(rt_, 3, {a}, NoExternals);
  ASSERT_TRUE(serialized.ok()) << serialized.status().ToString();

  Runtime rt2;
  *rt2.types().Register(ClassBuilder("Item")
                            .Field("next", ValueKind::kRef)
                            .Field("count", ValueKind::kInt)
                            .Field("weight", ValueKind::kReal)
                            .Field("label", ValueKind::kStr)
                            .Field("extra"));
  DeserializeOptions options;
  options.expected_id = 3;
  auto members = DeserializeCluster(rt2, serialized->payload, options,
                                    ResolveNone);
  ASSERT_TRUE(members.ok()) << members.status().ToString();
  ASSERT_EQ(members->size(), 1u);
  Object* b = (*members)[0];
  EXPECT_EQ(b->oid(), a->oid());
  EXPECT_EQ(b->RawSlot(1).as_int(), 42);
  EXPECT_DOUBLE_EQ(b->RawSlot(2).as_real(), 2.5);
  EXPECT_EQ(b->RawSlot(3).as_str(), "hello <&> world");
  EXPECT_TRUE(b->RawSlot(4).is_nil());
}

TEST_F(SerializationFixture, IntraClusterRefsResolveLocally) {
  LocalScope scope(rt_.heap());
  Object* a = NewItem(scope, 1);
  Object* b = NewItem(scope, 2);
  Object* c = NewItem(scope, 3);
  ASSERT_TRUE(rt_.SetField(a, "next", Value::Ref(b)).ok());
  ASSERT_TRUE(rt_.SetField(b, "next", Value::Ref(c)).ok());
  ASSERT_TRUE(rt_.SetField(c, "next", Value::Ref(a)).ok());  // cycle

  auto serialized = SerializeCluster(rt_, 1, {a, b, c}, NoExternals);
  ASSERT_TRUE(serialized.ok());
  DeserializeOptions options;
  options.expected_id = 1;
  auto members =
      DeserializeCluster(rt_, serialized->payload, options, ResolveNone);
  ASSERT_TRUE(members.ok()) << members.status().ToString();
  ASSERT_EQ(members->size(), 3u);
  EXPECT_EQ((*members)[0]->RawSlot(0).ref(), (*members)[1]);
  EXPECT_EQ((*members)[1]->RawSlot(0).ref(), (*members)[2]);
  EXPECT_EQ((*members)[2]->RawSlot(0).ref(), (*members)[0]);
}

TEST_F(SerializationFixture, ExternalRefsGoThroughCallbacks) {
  LocalScope scope(rt_.heap());
  Object* a = NewItem(scope, 1);
  Object* b = NewItem(scope, 2);
  Object* external = rt_.New(ext_cls_);
  scope.Add(external);
  a->RawSlotMutable(0) = Value::Ref(external);
  b->RawSlotMutable(4) = Value::Ref(external);  // same target twice

  int describes = 0;
  auto describe = [&](Object* target) -> Result<ExternalRef> {
    ++describes;
    ExternalRef ref;
    ref.oid = target->oid();
    ref.class_name = target->cls().name();
    return ref;
  };
  auto serialized = SerializeCluster(rt_, 9, {a, b}, describe);
  ASSERT_TRUE(serialized.ok());
  // Same external target appears once in the outbound list.
  EXPECT_EQ(serialized->outbound.size(), 1u);
  EXPECT_EQ(serialized->outbound[0], external);

  Object* replacement_target = rt_.New(ext_cls_);
  scope.Add(replacement_target);
  int resolves = 0;
  auto resolve = [&](const ExternalRef& ref) -> Result<Object*> {
    ++resolves;
    EXPECT_EQ(ref.index, 0u);
    EXPECT_EQ(ref.class_name, "Ext");
    return replacement_target;
  };
  DeserializeOptions options;
  options.expected_id = 9;
  auto members = DeserializeCluster(rt_, serialized->payload, options, resolve);
  ASSERT_TRUE(members.ok()) << members.status().ToString();
  EXPECT_EQ(resolves, 2);
  EXPECT_EQ((*members)[0]->RawSlot(0).ref(), replacement_target);
  EXPECT_EQ((*members)[1]->RawSlot(4).ref(), replacement_target);
}

TEST_F(SerializationFixture, DescribeErrorAbortsSerialization) {
  LocalScope scope(rt_.heap());
  Object* a = NewItem(scope, 1);
  Object* stranger = NewItem(scope, 2);
  a->RawSlotMutable(0) = Value::Ref(stranger);  // not a member
  auto serialized = SerializeCluster(rt_, 1, {a}, NoExternals);
  EXPECT_FALSE(serialized.ok());
  EXPECT_EQ(serialized.status().code(), StatusCode::kInternal);
}

TEST_F(SerializationFixture, DuplicateMemberRejected) {
  LocalScope scope(rt_.heap());
  Object* a = NewItem(scope, 1);
  auto serialized = SerializeCluster(rt_, 1, {a, a}, NoExternals);
  EXPECT_FALSE(serialized.ok());
}

TEST_F(SerializationFixture, SwapClusterLabelAssigned) {
  LocalScope scope(rt_.heap());
  Object* a = NewItem(scope, 5);
  auto serialized = SerializeCluster(rt_, 4, {a}, NoExternals);
  ASSERT_TRUE(serialized.ok());
  DeserializeOptions options;
  options.expected_id = 4;
  options.assign_swap_cluster = SwapClusterId(4);
  auto members =
      DeserializeCluster(rt_, serialized->payload, options, ResolveNone);
  ASSERT_TRUE(members.ok());
  EXPECT_EQ((*members)[0]->swap_cluster(), SwapClusterId(4));
}

TEST_F(SerializationFixture, IdMismatchRejected) {
  LocalScope scope(rt_.heap());
  Object* a = NewItem(scope, 1);
  auto serialized = SerializeCluster(rt_, 7, {a}, NoExternals);
  ASSERT_TRUE(serialized.ok());
  DeserializeOptions options;
  options.expected_id = 8;
  auto members =
      DeserializeCluster(rt_, serialized->payload, options, ResolveNone);
  ASSERT_FALSE(members.ok());
  EXPECT_EQ(members.status().code(), StatusCode::kDataLoss);
}

TEST_F(SerializationFixture, ChecksumDetectsTampering) {
  LocalScope scope(rt_.heap());
  Object* a = NewItem(scope, 1234);
  ASSERT_TRUE(rt_.SetField(a, "label", Value::Str("payload")).ok());
  auto serialized = SerializeCluster(rt_, 1, {a}, NoExternals);
  ASSERT_TRUE(serialized.ok());
  // Tamper with the int payload in the text.
  std::string tampered = serialized->payload;
  size_t pos = tampered.find("1234");
  ASSERT_NE(pos, std::string::npos);
  tampered.replace(pos, 4, "4321");
  DeserializeOptions options;
  options.expected_id = 1;
  auto members = DeserializeCluster(rt_, tampered, options, ResolveNone);
  ASSERT_FALSE(members.ok());
  EXPECT_EQ(members.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(members.status().message().find("checksum"), std::string::npos);
}

TEST_F(SerializationFixture, ChecksumCanBeSkipped) {
  LocalScope scope(rt_.heap());
  Object* a = NewItem(scope, 1234);
  auto serialized = SerializeCluster(rt_, 1, {a}, NoExternals);
  std::string tampered = serialized->payload;
  size_t pos = tampered.find("1234");
  tampered.replace(pos, 4, "4321");
  DeserializeOptions options;
  options.expected_id = 1;
  options.verify_checksum = false;
  auto members = DeserializeCluster(rt_, tampered, options, ResolveNone);
  ASSERT_TRUE(members.ok());
  EXPECT_EQ((*members)[0]->RawSlot(1).as_int(), 4321);
}

TEST_F(SerializationFixture, UnknownClassRejected) {
  LocalScope scope(rt_.heap());
  Object* a = NewItem(scope, 1);
  auto serialized = SerializeCluster(rt_, 1, {a}, NoExternals);
  Runtime empty_rt;  // Item not registered here
  DeserializeOptions options;
  options.expected_id = 1;
  auto members =
      DeserializeCluster(empty_rt, serialized->payload, options, ResolveNone);
  ASSERT_FALSE(members.ok());
  EXPECT_NE(members.status().message().find("unknown class"),
            std::string::npos);
}

TEST_F(SerializationFixture, GarbageInputRejected) {
  DeserializeOptions options;
  EXPECT_FALSE(DeserializeCluster(rt_, "", options, ResolveNone).ok());
  EXPECT_FALSE(DeserializeCluster(rt_, "<wrong/>", options,
                                  ResolveNone).ok());
  EXPECT_FALSE(DeserializeCluster(rt_, "<swap-cluster id=\"1\"/>", options,
                                  ResolveNone).ok());
}

TEST_F(SerializationFixture, PreservesReplicationClusterLabels) {
  LocalScope scope(rt_.heap());
  Object* a = NewItem(scope, 1);
  a->set_cluster(ClusterId(12));
  auto serialized = SerializeCluster(rt_, 1, {a}, NoExternals);
  ASSERT_TRUE(serialized.ok());
  DeserializeOptions options;
  options.expected_id = 1;
  auto members =
      DeserializeCluster(rt_, serialized->payload, options, ResolveNone);
  ASSERT_TRUE(members.ok());
  EXPECT_EQ((*members)[0]->cluster(), ClusterId(12));
}

// Property: random graphs round-trip exactly (structure + payloads).
class SerializationPropertyTest : public SerializationFixture,
                                  public ::testing::WithParamInterface<int> {
};

TEST_P(SerializationPropertyTest, RandomGraphRoundTrips) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  LocalScope scope(rt_.heap());
  int n = 2 + static_cast<int>(rng.NextBelow(30));
  std::vector<Object*> members;
  for (int i = 0; i < n; ++i) {
    Object* obj = NewItem(scope, rng.NextInt(-1000, 1000));
    ASSERT_TRUE(
        rt_.SetField(obj, "weight", Value::Real(rng.NextDouble())).ok());
    if (rng.NextBool(0.5)) {
      ASSERT_TRUE(rt_.SetField(obj, "label",
                               Value::Str(std::string(rng.NextBelow(64),
                                                      'x')))
                      .ok());
    }
    members.push_back(obj);
  }
  for (int i = 0; i < n; ++i) {
    if (rng.NextBool(0.7)) {
      members[i]->RawSlotMutable(0) =
          Value::Ref(members[rng.NextBelow(static_cast<uint64_t>(n))]);
    }
  }
  auto serialized = SerializeCluster(rt_, 2, members, NoExternals);
  ASSERT_TRUE(serialized.ok());
  DeserializeOptions options;
  options.expected_id = 2;
  auto restored =
      DeserializeCluster(rt_, serialized->payload, options, ResolveNone);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->size(), members.size());
  for (size_t i = 0; i < members.size(); ++i) {
    Object* original = members[i];
    Object* copy = (*restored)[i];
    EXPECT_EQ(copy->oid(), original->oid());
    EXPECT_EQ(copy->RawSlot(1).as_int(), original->RawSlot(1).as_int());
    EXPECT_DOUBLE_EQ(copy->RawSlot(2).as_real(),
                     original->RawSlot(2).as_real());
    EXPECT_EQ(copy->RawSlot(3).as_str(), original->RawSlot(3).as_str());
    // Ref structure: same member index.
    const Value& orig_ref = original->RawSlot(0);
    const Value& copy_ref = copy->RawSlot(0);
    ASSERT_EQ(orig_ref.is_ref(), copy_ref.is_ref());
    if (orig_ref.is_ref()) {
      size_t orig_index =
          std::find(members.begin(), members.end(), orig_ref.ref()) -
          members.begin();
      EXPECT_EQ(copy_ref.ref(), (*restored)[orig_index]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializationPropertyTest,
                         ::testing::Range(1, 16));

}  // namespace
}  // namespace obiswap::serialization
