// Tests for the predictive prefetch subsystem: the fault-history recorder's
// transition graph, the predictor's confidence gate, the manager's staging
// and speculative swap-in paths with their hit/waste accounting, the
// prefetcher's budget/headroom gates, and the policy actions that tune it.
#include <gtest/gtest.h>

#include <string>

#include "test_support.h"

namespace obiswap::prefetch {
namespace {

using ::obiswap::testing::BuildClusteredList;
using ::obiswap::testing::MiddlewareWorld;
using ::obiswap::testing::RegisterNodeClass;
using ::obiswap::testing::SumList;

// ------------------------------------------------------------- recorder --

TEST(FaultHistoryTest, LearnsTemporalAdjacency) {
  FaultHistoryRecorder recorder;
  recorder.OnEnter(SwapClusterId(1));
  recorder.OnEnter(SwapClusterId(2));
  recorder.OnEnter(SwapClusterId(3));

  auto from1 = recorder.Successors(SwapClusterId(1));
  ASSERT_EQ(from1.size(), 1u);
  EXPECT_EQ(from1[0].id, SwapClusterId(2));
  EXPECT_DOUBLE_EQ(from1[0].confidence, 1.0);

  auto from2 = recorder.Successors(SwapClusterId(2));
  ASSERT_EQ(from2.size(), 1u);
  EXPECT_EQ(from2[0].id, SwapClusterId(3));
  EXPECT_TRUE(recorder.Successors(SwapClusterId(3)).empty());
}

TEST(FaultHistoryTest, IgnoresCluster0DuplicatesAndInvalid) {
  FaultHistoryRecorder recorder;
  recorder.OnEnter(SwapClusterId(1));
  recorder.OnEnter(kSwapCluster0);   // ambient cluster: never a prediction
  recorder.OnEnter(SwapClusterId());  // invalid
  recorder.OnEnter(SwapClusterId(1));  // consecutive duplicate
  recorder.OnEnter(SwapClusterId(2));

  EXPECT_EQ(recorder.edge_count(), 1u);
  auto from1 = recorder.Successors(SwapClusterId(1));
  ASSERT_EQ(from1.size(), 1u);
  EXPECT_EQ(from1[0].id, SwapClusterId(2));
}

TEST(FaultHistoryTest, ConfidenceSplitsAcrossSuccessors) {
  FaultHistoryRecorder recorder;
  // 1 -> 2 three times, 1 -> 3 once (sequence broken between pairs so the
  // reverse edges 2->1 / 3->1 never form).
  for (int i = 0; i < 3; ++i) {
    recorder.OnEnter(SwapClusterId(1));
    recorder.OnEnter(SwapClusterId(2));
    recorder.BreakSequence();
  }
  recorder.OnEnter(SwapClusterId(1));
  recorder.OnEnter(SwapClusterId(3));
  recorder.BreakSequence();

  auto successors = recorder.Successors(SwapClusterId(1));
  ASSERT_EQ(successors.size(), 2u);
  EXPECT_EQ(successors[0].id, SwapClusterId(2));  // heaviest first
  EXPECT_DOUBLE_EQ(successors[0].confidence, 0.75);
  EXPECT_EQ(successors[1].id, SwapClusterId(3));
  EXPECT_DOUBLE_EQ(successors[1].confidence, 0.25);
  EXPECT_TRUE(recorder.Successors(SwapClusterId(2)).empty());
}

TEST(FaultHistoryTest, EdgeWeightsDecayInVirtualTime) {
  net::SimClock clock;
  FaultHistoryRecorder::Options options;
  options.half_life_us = 1000;
  FaultHistoryRecorder recorder(options);
  recorder.AttachClock(&clock);

  recorder.OnEnter(SwapClusterId(1));
  recorder.OnEnter(SwapClusterId(2));
  recorder.BreakSequence();
  clock.Advance(1000);  // one half-life
  recorder.OnEnter(SwapClusterId(1));
  recorder.OnEnter(SwapClusterId(3));

  auto successors = recorder.Successors(SwapClusterId(1));
  ASSERT_EQ(successors.size(), 2u);
  EXPECT_EQ(successors[0].id, SwapClusterId(3));  // fresh edge outranks
  EXPECT_DOUBLE_EQ(successors[0].weight, 1.0);
  EXPECT_EQ(successors[1].id, SwapClusterId(2));
  EXPECT_DOUBLE_EQ(successors[1].weight, 0.5);
  EXPECT_NEAR(successors[0].confidence, 2.0 / 3.0, 1e-9);
}

TEST(FaultHistoryTest, EvictsLightestSuccessorBeyondCap) {
  FaultHistoryRecorder::Options options;
  options.max_successors = 2;
  FaultHistoryRecorder recorder(options);

  for (int i = 0; i < 2; ++i) {  // 1->2 twice: the heavy edge
    recorder.OnEnter(SwapClusterId(1));
    recorder.OnEnter(SwapClusterId(2));
    recorder.BreakSequence();
  }
  recorder.OnEnter(SwapClusterId(1));
  recorder.OnEnter(SwapClusterId(3));  // the light edge
  recorder.BreakSequence();
  recorder.OnEnter(SwapClusterId(1));
  recorder.OnEnter(SwapClusterId(4));  // cap hit: evicts 1->3

  EXPECT_EQ(recorder.stats().edges_evicted, 1u);
  auto successors = recorder.Successors(SwapClusterId(1));
  ASSERT_EQ(successors.size(), 2u);
  EXPECT_EQ(successors[0].id, SwapClusterId(2));
  EXPECT_EQ(successors[1].id, SwapClusterId(4));
}

TEST(FaultHistoryTest, ForgetRemovesClusterFromBothSides) {
  FaultHistoryRecorder recorder;
  recorder.OnEnter(SwapClusterId(1));
  recorder.OnEnter(SwapClusterId(2));
  recorder.OnEnter(SwapClusterId(3));
  recorder.Forget(SwapClusterId(2));

  EXPECT_TRUE(recorder.Successors(SwapClusterId(1)).empty());
  EXPECT_TRUE(recorder.Successors(SwapClusterId(2)).empty());
  EXPECT_EQ(recorder.edge_count(), 0u);
}

TEST(FaultHistoryTest, AttachLearnsFromSwapEvents) {
  context::EventBus bus;
  FaultHistoryRecorder recorder;
  recorder.Attach(&bus);

  auto swapped_in = [&](int64_t sc, int64_t prefetch) {
    bus.Publish(context::Event(context::kEventClusterSwappedIn)
                    .Set("swap_cluster", sc)
                    .Set("prefetch", prefetch));
  };
  swapped_in(1, 0);
  swapped_in(2, 0);
  swapped_in(3, 1);  // speculative: must not be learned as an entry
  swapped_in(4, 0);

  auto from2 = recorder.Successors(SwapClusterId(2));
  ASSERT_EQ(from2.size(), 1u);
  EXPECT_EQ(from2[0].id, SwapClusterId(4));  // 3 was skipped
  EXPECT_TRUE(recorder.Successors(SwapClusterId(3)).empty());

  // Swap-out of the last-entered cluster breaks the sequence...
  bus.Publish(context::Event(context::kEventClusterSwappedOut)
                  .Set("swap_cluster", int64_t{4}));
  EXPECT_EQ(recorder.stats().sequence_breaks, 1u);
  swapped_in(5, 0);  // ...so no 4->5 edge forms
  EXPECT_TRUE(recorder.Successors(SwapClusterId(4)).empty());

  // A dropped cluster is forgotten entirely.
  bus.Publish(context::Event(context::kEventClusterDropped)
                  .Set("swap_cluster", int64_t{2}));
  EXPECT_TRUE(recorder.Successors(SwapClusterId(1)).empty());
}

// ------------------------------------------------------------ predictor --

TEST(PredictorTest, ConfidenceThresholdAndCapFilter) {
  FaultHistoryRecorder recorder;
  for (int i = 0; i < 3; ++i) {
    recorder.OnEnter(SwapClusterId(1));
    recorder.OnEnter(SwapClusterId(2));
    recorder.BreakSequence();
  }
  recorder.OnEnter(SwapClusterId(1));
  recorder.OnEnter(SwapClusterId(3));
  recorder.BreakSequence();

  Predictor predictor(recorder);  // defaults: threshold 0.4, max 2
  auto picks = predictor.Predict(SwapClusterId(1));
  ASSERT_EQ(picks.size(), 1u);  // conf 0.25 for cluster 3: filtered
  EXPECT_EQ(picks[0], SwapClusterId(2));

  predictor.set_confidence_threshold(0.1);
  picks = predictor.Predict(SwapClusterId(1));
  ASSERT_EQ(picks.size(), 2u);
  EXPECT_EQ(picks[0], SwapClusterId(2));
  EXPECT_EQ(picks[1], SwapClusterId(3));

  predictor.set_max_predictions(1);
  picks = predictor.Predict(SwapClusterId(1));
  ASSERT_EQ(picks.size(), 1u);
  EXPECT_EQ(picks[0], SwapClusterId(2));

  EXPECT_TRUE(predictor.Predict(SwapClusterId(9)).empty());
}

TEST(PrefetchModeTest, ParseRoundTrips) {
  EXPECT_EQ(*ParsePrefetchMode("off"), PrefetchMode::kOff);
  EXPECT_EQ(*ParsePrefetchMode("cache"), PrefetchMode::kCacheOnly);
  EXPECT_EQ(*ParsePrefetchMode("full"), PrefetchMode::kFull);
  EXPECT_FALSE(ParsePrefetchMode("banana").ok());
  EXPECT_STREQ(PrefetchModeName(PrefetchMode::kCacheOnly), "cache");
}

// -------------------------------------------- manager speculative paths --

class PrefetchFixture : public ::testing::Test {
 protected:
  PrefetchFixture() {
    node_cls_ = RegisterNodeClass(world_.rt);
    world_.AddStore(2, 10 * 1024 * 1024);
    clusters_ = BuildClusteredList(world_.rt, world_.manager, node_cls_,
                                   /*n=*/60, /*per_cluster=*/20, "head");
  }

  MiddlewareWorld world_;
  const runtime::ClassInfo* node_cls_ = nullptr;
  std::vector<SwapClusterId> clusters_;
};

TEST_F(PrefetchFixture, PrefetchStageRequiresCacheAndSwappedState) {
  // Cache disabled (the default): staging has nowhere to put the payload.
  ASSERT_TRUE(world_.manager.SwapOut(clusters_[0]).ok());
  EXPECT_EQ(world_.manager.PrefetchStage(clusters_[0]).code(),
            StatusCode::kFailedPrecondition);
  // A loaded cluster cannot be staged either.
  world_.manager.set_swap_in_cache_bytes(1 << 20);
  EXPECT_FALSE(world_.manager.PrefetchStage(clusters_[1]).ok());
}

TEST_F(PrefetchFixture, PrefetchStageServesLaterDemandFaultFromCache) {
  // Swap out while the cache is disabled so the payload is NOT retained,
  // then enable the cache: the stage must do a real fetch.
  ASSERT_TRUE(world_.manager.SwapOut(clusters_[0]).ok());
  world_.manager.set_swap_in_cache_bytes(1 << 20);

  ASSERT_TRUE(world_.manager.PrefetchStage(clusters_[0]).ok());
  EXPECT_EQ(world_.manager.stats().prefetch_stages, 1u);
  EXPECT_GT(world_.manager.stats().prefetch_stage_bytes, 0u);
  EXPECT_EQ(world_.manager.PrefetchOutstanding(), 1u);
  // Staging is not a swap-in: the cluster stays swapped.
  EXPECT_EQ(world_.manager.StateOf(clusters_[0]), swap::SwapState::kSwapped);

  // Re-staging a staged-and-cached cluster is a no-op, not double credit.
  ASSERT_TRUE(world_.manager.PrefetchStage(clusters_[0]).ok());
  EXPECT_EQ(world_.manager.stats().prefetch_stages, 1u);

  uint64_t radio_before = world_.network.stats().bytes_moved;
  ASSERT_TRUE(world_.manager.SwapIn(clusters_[0]).ok());
  EXPECT_EQ(world_.network.stats().bytes_moved, radio_before);  // no radio
  EXPECT_EQ(world_.manager.stats().prefetch_hits, 1u);
  EXPECT_EQ(world_.manager.stats().cache_hits, 1u);
  EXPECT_EQ(world_.manager.PrefetchOutstanding(), 0u);
}

TEST_F(PrefetchFixture, SpeculativeSwapInHitOnEntryWasteOnEviction) {
  ASSERT_TRUE(world_.manager.SwapOut(clusters_[1]).ok());
  ASSERT_TRUE(world_.manager.SwapIn(clusters_[1], /*prefetch=*/true).ok());
  EXPECT_EQ(world_.manager.stats().prefetched_swap_ins, 1u);
  EXPECT_EQ(world_.manager.PrefetchOutstanding(), 1u);

  int hit_events = 0;
  world_.bus.Subscribe(context::kEventPrefetchHit,
                       [&](const context::Event&) { ++hit_events; });
  // Touching the cluster consumes the speculation as a hit.
  ASSERT_TRUE(SumList(world_.rt, "head").ok());
  EXPECT_EQ(world_.manager.stats().prefetch_hits, 1u);
  EXPECT_EQ(hit_events, 1);
  EXPECT_EQ(world_.manager.PrefetchOutstanding(), 0u);

  // A speculative load evicted before any touch is a waste.
  ASSERT_TRUE(world_.manager.SwapOut(clusters_[2]).ok());
  ASSERT_TRUE(world_.manager.SwapIn(clusters_[2], /*prefetch=*/true).ok());
  int waste_events = 0;
  world_.bus.Subscribe(context::kEventPrefetchWaste,
                       [&](const context::Event&) { ++waste_events; });
  ASSERT_TRUE(world_.manager.SwapOut(clusters_[2]).ok());
  EXPECT_EQ(world_.manager.stats().prefetch_wastes, 1u);
  EXPECT_EQ(waste_events, 1);
  EXPECT_EQ(world_.manager.PrefetchOutstanding(), 0u);
}

// ------------------------------------------------------ full prefetcher --

TEST_F(PrefetchFixture, ChainsAlongLearnedSequence) {
  Prefetcher::Options options;
  options.mode = PrefetchMode::kFull;
  options.budget = 2;
  Prefetcher prefetcher(world_.rt, world_.manager, world_.bus, options);

  // Learning pass with everything resident: crossings teach 1->2->3.
  ASSERT_TRUE(SumList(world_.rt, "head").ok());
  EXPECT_GE(prefetcher.recorder().edge_count(), 2u);
  for (SwapClusterId id : clusters_) {
    ASSERT_TRUE(world_.manager.SwapOut(id).ok());
  }

  uint64_t swap_ins0 = world_.manager.stats().swap_ins;
  auto sum = SumList(world_.rt, "head");
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, 60 * 59 / 2);

  // One demand fault on the first cluster; the rest arrived speculatively
  // ahead of the cursor and were consumed as hits.
  EXPECT_EQ(world_.manager.stats().prefetched_swap_ins, 2u);
  EXPECT_EQ(world_.manager.stats().prefetch_hits, 2u);
  EXPECT_EQ(world_.manager.stats().prefetch_wastes, 0u);
  EXPECT_EQ(world_.manager.stats().swap_ins - swap_ins0, 3u);
  EXPECT_EQ(prefetcher.stats().demand_faults, 1u);
  EXPECT_EQ(prefetcher.stats().speculative_swap_ins, 2u);
}

TEST_F(PrefetchFixture, OffModeLearnsButNeverActs) {
  Prefetcher prefetcher(world_.rt, world_.manager, world_.bus);  // kOff
  ASSERT_TRUE(SumList(world_.rt, "head").ok());
  for (SwapClusterId id : clusters_) {
    ASSERT_TRUE(world_.manager.SwapOut(id).ok());
  }
  ASSERT_TRUE(SumList(world_.rt, "head").ok());

  EXPECT_GE(prefetcher.recorder().edge_count(), 2u);  // learning still on
  EXPECT_EQ(world_.manager.stats().prefetched_swap_ins, 0u);
  EXPECT_EQ(world_.manager.stats().prefetch_stages, 0u);
  EXPECT_EQ(world_.manager.stats().prefetch_hits, 0u);
  EXPECT_EQ(world_.manager.PrefetchOutstanding(), 0u);
  EXPECT_EQ(prefetcher.stats().predictions, 0u);
}

TEST_F(PrefetchFixture, BudgetZeroDefersAllSpeculation) {
  Prefetcher::Options options;
  options.mode = PrefetchMode::kFull;
  options.budget = 0;
  Prefetcher prefetcher(world_.rt, world_.manager, world_.bus, options);

  ASSERT_TRUE(SumList(world_.rt, "head").ok());
  for (SwapClusterId id : clusters_) {
    ASSERT_TRUE(world_.manager.SwapOut(id).ok());
  }
  ASSERT_TRUE(SumList(world_.rt, "head").ok());

  EXPECT_EQ(world_.manager.stats().prefetched_swap_ins, 0u);
  EXPECT_GT(prefetcher.stats().budget_deferred, 0u);
}

TEST_F(PrefetchFixture, InsufficientHeadroomBlocksAllSpeculation) {
  // free_fraction() is at most 1.0, so a stage gate above 1 is
  // unsatisfiable — every drain attempt must stop at the headroom check
  // and nothing speculative may touch the store.
  Prefetcher::Options options;
  options.mode = PrefetchMode::kFull;
  options.stage_headroom = 1.1;
  Prefetcher prefetcher(world_.rt, world_.manager, world_.bus, options);

  ASSERT_TRUE(SumList(world_.rt, "head").ok());
  for (SwapClusterId id : clusters_) {
    ASSERT_TRUE(world_.manager.SwapOut(id).ok());
  }
  ASSERT_TRUE(world_.manager.SwapIn(clusters_[0]).ok());

  EXPECT_EQ(world_.manager.stats().prefetched_swap_ins, 0u);
  EXPECT_EQ(world_.manager.stats().prefetch_stages, 0u);
  EXPECT_GT(prefetcher.stats().headroom_blocked, 0u);
}

TEST_F(PrefetchFixture, FullModeDegradesToStagingBelowSwapInHeadroom) {
  // Stage gate satisfiable, swap-in gate not: kFull must fall back to
  // staging payloads instead of fully swapping clusters in.
  Prefetcher::Options options;
  options.mode = PrefetchMode::kFull;
  options.stage_headroom = 0.0;
  options.swap_in_headroom = 1.1;
  Prefetcher prefetcher(world_.rt, world_.manager, world_.bus, options);

  ASSERT_TRUE(SumList(world_.rt, "head").ok());
  for (SwapClusterId id : clusters_) {
    ASSERT_TRUE(world_.manager.SwapOut(id).ok());
  }
  // Enable the cache only now: the swap-outs above did not retain their
  // payloads, so every stage below is a real speculative fetch.
  world_.manager.set_swap_in_cache_bytes(1 << 20);
  ASSERT_TRUE(SumList(world_.rt, "head").ok());

  EXPECT_EQ(world_.manager.stats().prefetched_swap_ins, 0u);
  EXPECT_EQ(prefetcher.stats().speculative_swap_ins, 0u);
  EXPECT_GT(world_.manager.stats().prefetch_stages, 0u);
  EXPECT_GT(world_.manager.stats().prefetch_hits, 0u);
}

// -------------------------------------------------------- policy tuning --

TEST_F(PrefetchFixture, PolicyActionsTuneModeAndBudget) {
  Prefetcher prefetcher(world_.rt, world_.manager, world_.bus);
  context::PropertyRegistry props;
  policy::PolicyEngine engine(world_.bus, props);
  ASSERT_TRUE(policy::RegisterPrefetchActions(engine, prefetcher).ok());

  auto rule = [](const std::string& name, const std::string& on,
                 const std::string& action,
                 policy::ActionParams params) {
    policy::PolicyRule r;
    r.name = name;
    r.on_event = on;
    r.action = action;
    r.params = std::move(params);
    return r;
  };
  ASSERT_TRUE(engine
                  .AddRule(rule("mode", "go-full", "set-prefetch-mode",
                                {{"mode", "full"}}))
                  .ok());
  ASSERT_TRUE(engine
                  .AddRule(rule("budget", "go-full", "set-prefetch-budget",
                                {{"budget", "5"}}))
                  .ok());
  world_.bus.Publish(context::Event("go-full"));
  EXPECT_EQ(prefetcher.options().mode, PrefetchMode::kFull);
  EXPECT_EQ(prefetcher.options().budget, 5u);
  EXPECT_EQ(engine.stats().action_failures, 0u);

  // Bad parameters fail the action without touching the prefetcher.
  ASSERT_TRUE(engine
                  .AddRule(rule("bad-mode", "go-bad", "set-prefetch-mode",
                                {{"mode", "banana"}}))
                  .ok());
  ASSERT_TRUE(engine
                  .AddRule(rule("bad-budget", "go-bad", "set-prefetch-budget",
                                {{"budget", "-3"}}))
                  .ok());
  ASSERT_TRUE(engine
                  .AddRule(rule("no-param", "go-bad", "set-prefetch-budget",
                                {}))
                  .ok());
  world_.bus.Publish(context::Event("go-bad"));
  EXPECT_EQ(engine.stats().action_failures, 3u);
  EXPECT_EQ(prefetcher.options().mode, PrefetchMode::kFull);
  EXPECT_EQ(prefetcher.options().budget, 5u);
}

// ------------------------------------------------------- stats snapshot --

TEST_F(PrefetchFixture, StatsSnapshotFoldsManagerAndCacheCounters) {
  world_.manager.set_swap_in_cache_bytes(1 << 20);
  ASSERT_TRUE(world_.manager.SwapOut(clusters_[0]).ok());
  ASSERT_TRUE(world_.manager.SwapIn(clusters_[0]).ok());

  auto snapshot = world_.manager.StatsSnapshot();
  auto find = [&](const std::string& key) -> const uint64_t* {
    for (const auto& [name, value] : snapshot) {
      if (name == key) return &value;
    }
    return nullptr;
  };
  ASSERT_NE(find("swap_outs"), nullptr);
  EXPECT_EQ(*find("swap_outs"), 1u);
  ASSERT_NE(find("swap_ins"), nullptr);
  EXPECT_EQ(*find("swap_ins"), 1u);
  ASSERT_NE(find("prefetch_stages"), nullptr);
  ASSERT_NE(find("payload_cache_hits"), nullptr);
  ASSERT_NE(find("payload_cache_entries"), nullptr);
  EXPECT_EQ(*find("payload_cache_hits"),
            world_.manager.payload_cache().stats().hits);

  std::string json = world_.manager.StatsJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"swap_ins\":1"), std::string::npos);
  EXPECT_NE(json.find("\"payload_cache_hits\":"), std::string::npos);
}

}  // namespace
}  // namespace obiswap::prefetch
