// Tests for the managed runtime: type registry, heap/GC, weak refs,
// finalizers, handle scopes, capacity pressure, fields, globals, invocation.
#include <gtest/gtest.h>

#include <vector>

#include "runtime/runtime.h"

namespace obiswap::runtime {
namespace {

class RuntimeFixture : public ::testing::Test {
 protected:
  RuntimeFixture() {
    node_cls_ = *rt_.types().Register(
        ClassBuilder("Node")
            .Field("next", ValueKind::kRef)
            .Field("value", ValueKind::kInt)
            .Field("name", ValueKind::kStr)
            .PayloadBytes(64)
            .Method("get_value",
                    [](Runtime& rt, Object* self, std::vector<Value>&) {
                      return Result<Value>(rt.GetFieldAt(self, 1));
                    })
            .Method("next",
                    [](Runtime& rt, Object* self, std::vector<Value>&) {
                      return Result<Value>(rt.GetFieldAt(self, 0));
                    })
            .Method("add",
                    [](Runtime&, Object*, std::vector<Value>& args) {
                      return Result<Value>(Value::Int(args[0].as_int() +
                                                      args[1].as_int()));
                    }));
  }

  /// Builds a rooted linked list of `n` nodes; returns the head.
  Object* MakeList(int n, const char* global_name = "head") {
    LocalScope scope(rt_.heap());
    Object* head = nullptr;
    for (int i = n - 1; i >= 0; --i) {
      Object** guard = scope.Add(head);  // keep previous head alive
      Object* node = rt_.New(node_cls_);
      OBISWAP_CHECK(rt_.SetField(node, "value", Value::Int(i)).ok());
      if (head != nullptr) {
        OBISWAP_CHECK(rt_.SetField(node, "next", Value::Ref(*guard)).ok());
      }
      head = node;
    }
    OBISWAP_CHECK(rt_.SetGlobal(global_name, Value::Ref(head)).ok());
    return head;
  }

  Runtime rt_;
  const ClassInfo* node_cls_ = nullptr;
};

// --------------------------------------------------------------- classes --

TEST_F(RuntimeFixture, ClassRegistration) {
  EXPECT_EQ(rt_.types().Find("Node"), node_cls_);
  EXPECT_EQ(rt_.types().Find("Missing"), nullptr);
  EXPECT_EQ(rt_.types().Find(node_cls_->id()), node_cls_);
  EXPECT_EQ(node_cls_->fields().size(), 3u);
  EXPECT_EQ(node_cls_->FieldIndex("value"), 1u);
  EXPECT_EQ(node_cls_->FieldIndex("nope"), ClassInfo::kNpos);
  EXPECT_NE(node_cls_->FindMethod("add"), nullptr);
  EXPECT_EQ(node_cls_->FindMethod("nope"), nullptr);
}

TEST_F(RuntimeFixture, DuplicateClassNameRejected) {
  auto result = rt_.types().Register(ClassBuilder("Node"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(RuntimeFixture, ObjectIdsAreUniqueAndNamespaced) {
  Object* a = rt_.New(node_cls_);
  Object* b = rt_.New(node_cls_);
  EXPECT_NE(a->oid(), b->oid());
  EXPECT_EQ(a->oid().value() >> 48, 1u);  // process id 1
  Runtime other(7);
  const ClassInfo* cls = *other.types().Register(ClassBuilder("X"));
  EXPECT_EQ(other.New(cls)->oid().value() >> 48, 7u);
}

// ---------------------------------------------------------------- fields --

TEST_F(RuntimeFixture, FieldRoundTrip) {
  LocalScope scope(rt_.heap());
  Object* node = rt_.New(node_cls_);
  scope.Add(node);
  ASSERT_TRUE(rt_.SetField(node, "value", Value::Int(9)).ok());
  ASSERT_TRUE(rt_.SetField(node, "name", Value::Str("n9")).ok());
  EXPECT_EQ(rt_.GetField(node, "value")->as_int(), 9);
  EXPECT_EQ(rt_.GetField(node, "name")->as_str(), "n9");
  EXPECT_TRUE(rt_.GetField(node, "next")->is_nil());
}

TEST_F(RuntimeFixture, FieldTypeEnforced) {
  Object* node = rt_.New(node_cls_);
  EXPECT_FALSE(rt_.SetField(node, "value", Value::Str("oops")).ok());
  EXPECT_TRUE(rt_.SetField(node, "value", Value::Nil()).ok());  // nil allowed
}

TEST_F(RuntimeFixture, UnknownFieldErrors) {
  Object* node = rt_.New(node_cls_);
  EXPECT_EQ(rt_.GetField(node, "zap").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(rt_.SetField(node, "zap", Value::Int(1)).code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(rt_.SetFieldAt(node, 99, Value::Int(1)).ok());
}

TEST_F(RuntimeFixture, NullObjectErrors) {
  EXPECT_FALSE(rt_.GetField(nullptr, "x").ok());
  EXPECT_FALSE(rt_.SetField(nullptr, "x", Value::Nil()).ok());
  EXPECT_FALSE(rt_.Invoke(nullptr, "m").ok());
}

TEST_F(RuntimeFixture, StringFieldAdjustsAccounting) {
  LocalScope scope(rt_.heap());
  Object* node = rt_.New(node_cls_);
  scope.Add(node);
  size_t before = rt_.heap().used_bytes();
  ASSERT_TRUE(
      rt_.SetField(node, "name", Value::Str(std::string(10000, 'x'))).ok());
  EXPECT_GT(rt_.heap().used_bytes(), before + 9000);
  ASSERT_TRUE(rt_.SetField(node, "name", Value::Str("")).ok());
  EXPECT_LT(rt_.heap().used_bytes(), before + 1000);
}

// --------------------------------------------------------------- globals --

TEST_F(RuntimeFixture, GlobalsRoundTrip) {
  ASSERT_TRUE(rt_.SetGlobal("counter", Value::Int(3)).ok());
  EXPECT_EQ(rt_.GetGlobal("counter")->as_int(), 3);
  EXPECT_TRUE(rt_.HasGlobal("counter"));
  rt_.RemoveGlobal("counter");
  EXPECT_FALSE(rt_.HasGlobal("counter"));
  EXPECT_FALSE(rt_.GetGlobal("counter").ok());
}

TEST_F(RuntimeFixture, GlobalsAreGcRoots) {
  MakeList(10);
  rt_.heap().Collect();
  EXPECT_GE(rt_.heap().live_objects(), 10u);
  rt_.RemoveGlobal("head");
  rt_.heap().Collect();
  EXPECT_EQ(rt_.heap().live_objects(), 0u);
}

// ------------------------------------------------------------ invocation --

TEST_F(RuntimeFixture, DirectInvocation) {
  LocalScope scope(rt_.heap());
  Object* node = rt_.New(node_cls_);
  scope.Add(node);
  ASSERT_TRUE(rt_.SetField(node, "value", Value::Int(5)).ok());
  auto result = rt_.Invoke(node, "get_value");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->as_int(), 5);
  EXPECT_EQ(rt_.stats().direct_invocations, 1u);
}

TEST_F(RuntimeFixture, InvocationWithArgs) {
  Object* node = rt_.New(node_cls_);
  auto result = rt_.Invoke(node, "add", {Value::Int(2), Value::Int(40)});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->as_int(), 42);
}

TEST_F(RuntimeFixture, UnknownMethodErrors) {
  Object* node = rt_.New(node_cls_);
  EXPECT_EQ(rt_.Invoke(node, "fly").status().code(), StatusCode::kNotFound);
}

TEST_F(RuntimeFixture, CurrentSwapClusterTracksReceiver) {
  const ClassInfo* probe = *rt_.types().Register(ClassBuilder("Probe").Method(
      "whoami", [](Runtime& rt, Object*, std::vector<Value>&) {
        return Result<Value>(
            Value::Int(static_cast<int64_t>(rt.CurrentSwapCluster().value())));
      }));
  LocalScope scope(rt_.heap());
  Object* obj = rt_.New(probe);
  scope.Add(obj);
  obj->set_swap_cluster(SwapClusterId(5));
  EXPECT_EQ(rt_.CurrentSwapCluster(), kSwapCluster0);
  EXPECT_EQ(rt_.Invoke(obj, "whoami")->as_int(), 5);
  EXPECT_EQ(rt_.CurrentSwapCluster(), kSwapCluster0);
}

TEST_F(RuntimeFixture, NewObjectsInheritCreatorsSwapCluster) {
  const ClassInfo* node_cls = node_cls_;
  const ClassInfo* factory = *rt_.types().Register(
      ClassBuilder("Factory").Method(
          "make", [node_cls](Runtime& rt, Object*, std::vector<Value>&) {
            return Result<Value>(Value::Ref(rt.New(node_cls)));
          }));
  LocalScope scope(rt_.heap());
  Object* obj = rt_.New(factory);
  scope.Add(obj);
  obj->set_swap_cluster(SwapClusterId(9));
  auto result = rt_.Invoke(obj, "make");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ref()->swap_cluster(), SwapClusterId(9));
}

// --------------------------------------------------------------- heap/GC --

TEST_F(RuntimeFixture, UnreachableObjectsAreCollected) {
  for (int i = 0; i < 100; ++i) rt_.New(node_cls_);
  rt_.heap().Collect();
  EXPECT_EQ(rt_.heap().live_objects(), 0u);
  EXPECT_EQ(rt_.heap().stats().objects_freed, 100u);
}

TEST_F(RuntimeFixture, ReachableChainSurvives) {
  MakeList(50);
  rt_.heap().Collect();
  EXPECT_EQ(rt_.heap().live_objects(), 50u);
}

TEST_F(RuntimeFixture, LocalScopeRootsProtect) {
  LocalScope outer(rt_.heap());
  Object* kept = rt_.New(node_cls_);
  outer.Add(kept);
  {
    LocalScope inner(rt_.heap());
    inner.Add(rt_.New(node_cls_));
    rt_.heap().Collect();
    EXPECT_EQ(rt_.heap().live_objects(), 2u);
  }
  rt_.heap().Collect();
  EXPECT_EQ(rt_.heap().live_objects(), 1u);
}

TEST_F(RuntimeFixture, CyclesAreCollected) {
  {
    LocalScope scope(rt_.heap());
    Object* a = rt_.New(node_cls_);
    scope.Add(a);
    Object* b = rt_.New(node_cls_);
    ASSERT_TRUE(rt_.SetField(a, "next", Value::Ref(b)).ok());
    ASSERT_TRUE(rt_.SetField(b, "next", Value::Ref(a)).ok());
  }
  rt_.heap().Collect();
  EXPECT_EQ(rt_.heap().live_objects(), 0u);
}

TEST_F(RuntimeFixture, UsedBytesTracksAllocAndFree) {
  EXPECT_EQ(rt_.heap().used_bytes(), 0u);
  MakeList(10);
  size_t with_list = rt_.heap().used_bytes();
  EXPECT_GT(with_list, 10 * 64u);  // at least the payload bytes
  rt_.RemoveGlobal("head");
  rt_.heap().Collect();
  EXPECT_EQ(rt_.heap().used_bytes(), 0u);
}

TEST_F(RuntimeFixture, ScheduledGcBoundsFloatingGarbage) {
  // Allocate ~10 MiB of garbage; scheduled collections must keep the live
  // set bounded well below that.
  for (int i = 0; i < 100000; ++i) rt_.New(node_cls_);
  EXPECT_GT(rt_.heap().stats().collections, 0u);
  EXPECT_LT(rt_.heap().used_bytes(), 8u * 1024 * 1024);
}

// -------------------------------------------------------------- weakrefs --

TEST_F(RuntimeFixture, WeakRefClearsOnCollect) {
  WeakRef weak;
  {
    LocalScope scope(rt_.heap());
    Object* obj = rt_.New(node_cls_);
    scope.Add(obj);
    weak = rt_.heap().NewWeakRef(obj);
    rt_.heap().Collect();
    EXPECT_EQ(weak->get(), obj);  // still rooted
  }
  rt_.heap().Collect();
  EXPECT_EQ(weak->get(), nullptr);
  EXPECT_TRUE(weak->cleared());
  EXPECT_EQ(rt_.heap().stats().weakrefs_cleared, 1u);
}

TEST_F(RuntimeFixture, WeakRefDoesNotKeepAlive) {
  WeakRef weak = rt_.heap().NewWeakRef(rt_.New(node_cls_));
  rt_.heap().Collect();
  EXPECT_EQ(rt_.heap().live_objects(), 0u);
  EXPECT_TRUE(weak->cleared());
}

TEST_F(RuntimeFixture, DroppedWeakRefsArePruned) {
  for (int i = 0; i < 10; ++i) {
    WeakRef weak = rt_.heap().NewWeakRef(rt_.New(node_cls_));
    // dropped immediately
  }
  rt_.heap().Collect();
  // No crash and no stale growth: allocate again and collect again.
  rt_.New(node_cls_);
  rt_.heap().Collect();
  SUCCEED();
}

// ------------------------------------------------------------ finalizers --

TEST_F(RuntimeFixture, FinalizerRunsOnceOnDeath) {
  int runs = 0;
  const ClassInfo* fin_cls = *rt_.types().Register(
      ClassBuilder("Fin").OnFinalize([&runs](Object*) { ++runs; }));
  {
    LocalScope scope(rt_.heap());
    scope.Add(rt_.New(fin_cls));
    rt_.heap().Collect();
    EXPECT_EQ(runs, 0);  // still alive
  }
  rt_.heap().Collect();
  EXPECT_EQ(runs, 1);
  rt_.heap().Collect();
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(rt_.heap().stats().finalizers_run, 1u);
}

TEST_F(RuntimeFixture, FinalizerSeesObjectFields) {
  int64_t seen = 0;
  const ClassInfo* fin_cls = *rt_.types().Register(
      ClassBuilder("Fin2")
          .Field("tag", ValueKind::kInt)
          .OnFinalize([&seen](Object* obj) { seen = obj->RawSlot(0).as_int(); }));
  Object* obj = rt_.New(fin_cls);
  ASSERT_TRUE(rt_.SetField(obj, "tag", Value::Int(77)).ok());
  rt_.heap().Collect();
  EXPECT_EQ(seen, 77);
}

// ------------------------------------------------------ capacity/pressure --

TEST(HeapCapacityTest, AllocationFailsWhenFull) {
  Runtime rt(1, /*capacity_bytes=*/16 * 1024);
  const ClassInfo* cls =
      *rt.types().Register(ClassBuilder("Big").PayloadBytes(4096));
  LocalScope scope(rt.heap());
  // Fill the heap with rooted objects until exhaustion.
  Status last = OkStatus();
  int allocated = 0;
  for (int i = 0; i < 100; ++i) {
    auto result = rt.TryNew(cls);
    if (!result.ok()) {
      last = result.status();
      break;
    }
    scope.Add(*result);
    ++allocated;
  }
  EXPECT_EQ(last.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(allocated, 1);
  EXPECT_LT(allocated, 5);
}

TEST(HeapCapacityTest, CollectionMakesRoomForGarbage) {
  Runtime rt(1, /*capacity_bytes=*/64 * 1024);
  const ClassInfo* cls =
      *rt.types().Register(ClassBuilder("Big").PayloadBytes(4096));
  // Unrooted garbage: the capacity-triggered GC must reclaim it, so far more
  // than capacity/object_size allocations succeed.
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(rt.TryNew(cls).ok()) << i;
  }
  EXPECT_GT(rt.heap().stats().collections, 0u);
}

TEST(HeapCapacityTest, PressureHandlerIsCalledAndCanFreeMemory) {
  Runtime rt(1, /*capacity_bytes=*/64 * 1024);
  const ClassInfo* cls =
      *rt.types().Register(ClassBuilder("Big").PayloadBytes(8 * 1024));
  LocalScope scope(rt.heap());
  std::vector<Object**> pinned;
  for (;;) {
    auto result = rt.TryNew(cls);
    if (!result.ok()) break;
    pinned.push_back(scope.Add(*result));
  }
  // Handler releases one pinned object per call ("swap-out" stand-in).
  int pressure_calls = 0;
  rt.heap().SetPressureHandler([&](size_t) {
    ++pressure_calls;
    if (pinned.empty()) return false;
    *pinned.back() = nullptr;
    pinned.pop_back();
    return true;
  });
  auto result = rt.TryNew(cls);
  EXPECT_TRUE(result.ok());
  EXPECT_GT(pressure_calls, 0);
  EXPECT_GT(rt.heap().stats().pressure_events, 0u);
}

TEST(HeapCapacityTest, PressureHandlerGivingUpYieldsExhausted) {
  Runtime rt(1, /*capacity_bytes=*/32 * 1024);
  const ClassInfo* cls =
      *rt.types().Register(ClassBuilder("Big").PayloadBytes(8 * 1024));
  LocalScope scope(rt.heap());
  for (;;) {
    auto result = rt.TryNew(cls);
    if (!result.ok()) break;
    scope.Add(*result);
  }
  int calls = 0;
  rt.heap().SetPressureHandler([&](size_t) {
    ++calls;
    return false;
  });
  auto result = rt.TryNew(cls);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(calls, 1);
}

// ---------------------------------------------------------------- values --

TEST(ValueTest, Kinds) {
  EXPECT_TRUE(Value::Nil().is_nil());
  EXPECT_TRUE(Value::Int(1).is_int());
  EXPECT_TRUE(Value::Real(1.5).is_real());
  EXPECT_TRUE(Value::Str("s").is_str());
  EXPECT_EQ(Value::Int(1).as_int(), 1);
  EXPECT_DOUBLE_EQ(Value::Real(1.5).as_real(), 1.5);
  EXPECT_EQ(Value::Str("s").as_str(), "s");
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value::Nil(), Value::Nil());
  EXPECT_EQ(Value::Int(3), Value::Int(3));
  EXPECT_FALSE(Value::Int(3) == Value::Int(4));
  EXPECT_FALSE(Value::Int(3) == Value::Real(3.0));
  EXPECT_EQ(Value::Str("a"), Value::Str("a"));
}

// --------------------------------------------------------- middleware bits --

TEST_F(RuntimeFixture, AppendedSlotsAreTracedByGc) {
  // Replacement-objects hold outbound references in appended slots; those
  // must keep their targets alive.
  const ClassInfo* holder_cls =
      *rt_.types().Register(ClassBuilder("Holder"));
  LocalScope scope(rt_.heap());
  Object* holder = rt_.New(holder_cls);
  scope.Add(holder);
  Object* kept = rt_.New(node_cls_);
  holder->AppendSlot(Value::Ref(kept));
  rt_.heap().RefreshAccounting(holder);
  rt_.heap().Collect();
  EXPECT_EQ(rt_.heap().live_objects(), 2u);
  holder->RawSlotMutable(0).set_ref(nullptr);
  holder->RawSlotMutable(0) = Value::Nil();
  rt_.heap().Collect();
  EXPECT_EQ(rt_.heap().live_objects(), 1u);
}

TEST(MiddlewareAllocTest, OvercommitsPastCapacityWithoutPressure) {
  runtime::Runtime rt(1, /*capacity_bytes=*/8 * 1024);
  const ClassInfo* cls =
      *rt.types().Register(ClassBuilder("Big").PayloadBytes(4096));
  LocalScope scope(rt.heap());
  // Fill to capacity with application objects.
  for (;;) {
    auto result = rt.TryNew(cls);
    if (!result.ok()) break;
    scope.Add(*result);
  }
  int pressure_calls = 0;
  rt.heap().SetPressureHandler([&](size_t) {
    ++pressure_calls;
    return false;
  });
  // Application allocation fails (after consulting the handler)...
  EXPECT_FALSE(rt.TryNew(cls).ok());
  EXPECT_EQ(pressure_calls, 1);
  // ...but middleware allocation overcommits and never re-enters pressure.
  auto proxyish = rt.TryNewMiddleware(cls);
  EXPECT_TRUE(proxyish.ok());
  EXPECT_EQ(pressure_calls, 1);
  EXPECT_GT(rt.heap().used_bytes(), rt.heap().capacity_bytes());
}

TEST_F(RuntimeFixture, GlobalRefsSnapshotsOnlyReferences) {
  LocalScope scope(rt_.heap());
  Object* a = rt_.New(node_cls_);
  scope.Add(a);
  ASSERT_TRUE(rt_.SetGlobal("obj", Value::Ref(a)).ok());
  ASSERT_TRUE(rt_.SetGlobal("num", Value::Int(3)).ok());
  auto refs = rt_.GlobalRefs();
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0].first, "obj");
  EXPECT_EQ(refs[0].second, a);
}

TEST_F(RuntimeFixture, InterceptorMissingIsFailedPrecondition) {
  const ClassInfo* proxyish = *rt_.types().Register(
      ClassBuilder("Proxyish").Kind(runtime::ObjectKind::kSwapClusterProxy));
  LocalScope scope(rt_.heap());
  Object* obj = rt_.New(proxyish);
  scope.Add(obj);
  auto result = rt_.Invoke(obj, "anything");
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(RuntimeFixture, SameObjectDefaultsToPointerIdentity) {
  LocalScope scope(rt_.heap());
  Object* a = rt_.New(node_cls_);
  Object* b = rt_.New(node_cls_);
  scope.Add(a);
  scope.Add(b);
  EXPECT_TRUE(rt_.SameObject(a, a));
  EXPECT_FALSE(rt_.SameObject(a, b));
  EXPECT_FALSE(rt_.SameObject(a, nullptr));
  EXPECT_TRUE(rt_.SameObject(nullptr, nullptr));
}

TEST(ValueTest, KindNamesAreStable) {
  EXPECT_STREQ(ValueKindName(ValueKind::kNil), "nil");
  EXPECT_STREQ(ValueKindName(ValueKind::kRef), "ref");
  EXPECT_STREQ(ValueKindName(ValueKind::kInt), "int");
  EXPECT_STREQ(ValueKindName(ValueKind::kReal), "real");
  EXPECT_STREQ(ValueKindName(ValueKind::kStr), "str");
}

}  // namespace
}  // namespace obiswap::runtime
