// Fleet layer tests: the rendezvous placement directory (determinism,
// weighting, bounded rebalance, epochs, the bounded-load cap), the
// manager's directory-driven placement with its detached-mode parity, the
// incremental DurabilityMonitor's byte-identical equivalence with the
// legacy full scan, the fleet policy actions, and the FleetDriver
// simulation harness.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "test_support.h"

namespace obiswap {
namespace {

using fleet::FleetDriver;
using fleet::FleetOptions;
using fleet::FleetReport;
using fleet::PlacementDirectory;
using policy::PolicyEngine;
using policy::RegisterFleetActions;
using ::obiswap::testing::BuildClusteredList;
using ::obiswap::testing::MiddlewareWorld;
using ::obiswap::testing::RegisterNodeClass;
using ::obiswap::testing::SumList;

// ------------------------------------------------ placement directory --

TEST(PlacementDirectoryTest, SameViewGivesIdenticalTargetsAcrossRestarts) {
  // Two directories built in different insertion orders (a "process
  // restart" rebuilds the view from discovery in whatever order it
  // arrives) must agree on every key's full rank order.
  PlacementDirectory forward;
  PlacementDirectory backward;
  for (uint32_t id = 100; id < 120; ++id)
    forward.AddStore(DeviceId(id), 1.0 + (id % 3));
  for (uint32_t id = 119; id >= 100; --id)
    backward.AddStore(DeviceId(id), 1.0 + (id % 3));

  for (uint32_t cluster = 1; cluster <= 64; ++cluster) {
    uint64_t key = PlacementDirectory::KeyFor(DeviceId(7),
                                              SwapClusterId(cluster));
    EXPECT_EQ(forward.RankAll(key), backward.RankAll(key)) << cluster;
    EXPECT_EQ(forward.Targets(key, 3), backward.Targets(key, 3));
  }
  // Different owning devices must not collide on the same stores for the
  // same cluster ids (the key mixes the device in).
  uint64_t key_a = PlacementDirectory::KeyFor(DeviceId(1), SwapClusterId(1));
  uint64_t key_b = PlacementDirectory::KeyFor(DeviceId(2), SwapClusterId(1));
  EXPECT_NE(key_a, key_b);
}

TEST(PlacementDirectoryTest, LeaveAndJoinMoveOnlyTheirShareOfKeys) {
  constexpr size_t kStores = 20;
  constexpr size_t kKeys = 400;
  constexpr size_t kReplicas = 2;
  PlacementDirectory directory;
  for (uint32_t id = 0; id < kStores; ++id)
    directory.AddStore(DeviceId(100 + id));

  std::vector<uint64_t> keys;
  std::vector<std::vector<DeviceId>> before;
  for (size_t i = 0; i < kKeys; ++i) {
    keys.push_back(PlacementDirectory::KeyFor(
        DeviceId(1), SwapClusterId(static_cast<uint32_t>(i + 1))));
    before.push_back(directory.Targets(keys.back(), kReplicas));
  }

  const DeviceId leaver(107);
  ASSERT_TRUE(directory.RemoveStore(leaver));
  size_t moved = 0;
  for (size_t i = 0; i < kKeys; ++i) {
    std::vector<DeviceId> after = directory.Targets(keys[i], kReplicas);
    bool had_leaver = std::find(before[i].begin(), before[i].end(),
                                leaver) != before[i].end();
    if (!had_leaver) {
      // Keys that did not target the leaver keep their exact target set.
      EXPECT_EQ(after, before[i]) << i;
      continue;
    }
    ++moved;
    // A departed target costs exactly one replica slot: the surviving
    // target stays, one replacement appears.
    std::set<DeviceId> old_set(before[i].begin(), before[i].end());
    std::set<DeviceId> new_set(after.begin(), after.end());
    old_set.erase(leaver);
    size_t kept = 0;
    for (DeviceId device : old_set) kept += new_set.count(device);
    EXPECT_EQ(kept, kReplicas - 1) << i;
  }
  // Expected move fraction is K/N = 10%; allow slack but require both
  // "some keys moved" and "nowhere near fleet-wide reshuffle".
  EXPECT_GT(moved, 0u);
  EXPECT_LT(static_cast<double>(moved) / kKeys, 0.25);

  // Re-join restores every original target set exactly.
  ASSERT_TRUE(directory.AddStore(leaver));
  for (size_t i = 0; i < kKeys; ++i)
    EXPECT_EQ(directory.Targets(keys[i], kReplicas), before[i]) << i;
}

TEST(PlacementDirectoryTest, WeightShiftsWinsProportionally) {
  PlacementDirectory directory;
  directory.AddStore(DeviceId(1), 1.0);
  directory.AddStore(DeviceId(2), 3.0);
  size_t heavy_wins = 0;
  constexpr size_t kKeys = 2000;
  for (size_t i = 0; i < kKeys; ++i) {
    uint64_t key = PlacementDirectory::KeyFor(
        DeviceId(9), SwapClusterId(static_cast<uint32_t>(i + 1)));
    if (directory.Targets(key, 1)[0] == DeviceId(2)) ++heavy_wins;
  }
  // Weighted rendezvous: expected win share is 3/4.
  double share = static_cast<double>(heavy_wins) / kKeys;
  EXPECT_GT(share, 0.65);
  EXPECT_LT(share, 0.85);
}

TEST(PlacementDirectoryTest, UnhealthyStoresRankLastAndEpochsTrackChanges) {
  PlacementDirectory directory;
  EXPECT_EQ(directory.view_epoch(), 0u);
  directory.AddStore(DeviceId(1));
  directory.AddStore(DeviceId(2));
  directory.AddStore(DeviceId(3));
  uint64_t epoch = directory.view_epoch();
  EXPECT_EQ(epoch, 3u);

  // No-op mutations must not bump the epoch (pollers diff against it).
  EXPECT_FALSE(directory.AddStore(DeviceId(2)));
  EXPECT_FALSE(directory.SetHealthy(DeviceId(2), true));
  EXPECT_FALSE(directory.SetWeight(DeviceId(2), 1.0));
  EXPECT_EQ(directory.view_epoch(), epoch);

  ASSERT_TRUE(directory.SetHealthy(DeviceId(2), false));
  EXPECT_EQ(directory.view_epoch(), epoch + 1);
  EXPECT_EQ(directory.healthy_count(), 2u);
  for (uint32_t cluster = 1; cluster <= 32; ++cluster) {
    uint64_t key = PlacementDirectory::KeyFor(DeviceId(5),
                                              SwapClusterId(cluster));
    std::vector<DeviceId> ranked = directory.RankAll(key);
    ASSERT_EQ(ranked.size(), 3u);
    // The sick store always sorts behind both healthy ones.
    EXPECT_EQ(ranked[2], DeviceId(2)) << cluster;
  }
  ASSERT_TRUE(directory.SetHealthy(DeviceId(2), true));
  ASSERT_TRUE(directory.SetWeight(DeviceId(2), 2.5));
  EXPECT_EQ(directory.WeightOf(DeviceId(2)), 2.5);
  ASSERT_TRUE(directory.RemoveStore(DeviceId(3)));
  EXPECT_EQ(directory.view_epoch(), epoch + 4);
  EXPECT_EQ(directory.stats().joins, 3u);
  EXPECT_EQ(directory.stats().leaves, 1u);
}

TEST(PlacementDirectoryTest, LoadBoundIsFlooredAndScalesWithMean) {
  PlacementDirectory directory;
  EXPECT_EQ(directory.LoadBound(0, 0), 4u);    // empty fleet: the floor
  EXPECT_EQ(directory.LoadBound(10, 10), 4u);  // mean 1 → capped by floor
  EXPECT_EQ(directory.LoadBound(100, 10), 12u);  // ceil(1.2 * 10)
  EXPECT_EQ(directory.LoadBound(101, 10), 13u);  // ceil rounds up
}

// ------------------------------------------- manager directory placement --

swap::SwappingManager::Options TwoReplicaOptions() {
  swap::SwappingManager::Options options;
  options.replication_factor = 2;
  return options;
}

TEST(FleetPlacementTest, SwapOutFollowsTheDirectoryRankOrder) {
  MiddlewareWorld world(TwoReplicaOptions());
  const runtime::ClassInfo* cls = RegisterNodeClass(world.rt);
  for (uint32_t id = 2; id <= 5; ++id) world.AddStore(id, 1 << 20);
  PlacementDirectory directory;
  for (uint32_t id = 2; id <= 5; ++id) directory.AddStore(DeviceId(id));
  world.manager.AttachPlacementDirectory(&directory);
  ASSERT_TRUE(world.manager.placement_via_directory());

  auto clusters =
      BuildClusteredList(world.rt, world.manager, cls, 24, 12, "head");
  for (SwapClusterId id : clusters) {
    ASSERT_TRUE(world.manager.SwapOut(id).ok());
    const swap::SwapClusterInfo* info = world.manager.registry().Find(id);
    ASSERT_EQ(info->replicas.size(), 2u);
    // Fresh stores are all under the load bound, so the placement is the
    // pure HRW rank prefix — reproducible from the directory alone.
    uint64_t key =
        PlacementDirectory::KeyFor(MiddlewareWorld::kDevice, id);
    std::vector<DeviceId> expected = directory.Targets(key, 2);
    EXPECT_EQ(info->replicas[0].device, expected[0]);
    EXPECT_EQ(info->replicas[1].device, expected[1]);
  }
  EXPECT_GT(world.manager.stats().fleet_selections, 0u);
  EXPECT_EQ(world.manager.stats().fleet_placements, 4u);
  EXPECT_EQ(world.manager.stats().fleet_placements,
            world.manager.stats().replicas_placed);

  // Traversal still round-trips through directory-placed replicas.
  EXPECT_EQ(*SumList(world.rt, "head"), 24 * 23 / 2);
}

TEST(FleetPlacementTest, DetachedAndWalkModeWorldsAreByteIdentical) {
  // Three configurations of the same scenario: no directory at all,
  // directory attached but switched to walk mode — the manager stats and
  // the virtual clock must not diverge, and the frozen stats snapshot
  // carries the (zeroed) fleet keys either way.
  auto run = [](MiddlewareWorld& world) {
    const runtime::ClassInfo* cls = RegisterNodeClass(world.rt);
    for (uint32_t id = 2; id <= 4; ++id) world.AddStore(id, 1 << 20);
    auto clusters =
        BuildClusteredList(world.rt, world.manager, cls, 24, 12, "head");
    swap::DurabilityMonitor monitor(world.manager, world.discovery,
                                    MiddlewareWorld::kDevice, world.bus);
    for (SwapClusterId id : clusters)
      OBISWAP_CHECK(world.manager.SwapOut(id).ok());
    monitor.Poll();
    OBISWAP_CHECK(world.manager.SwapIn(clusters[0]).ok());
    world.manager.MarkDirty(clusters[0]);
    OBISWAP_CHECK(world.manager.SwapOut(clusters[0]).ok());
    monitor.Poll();
  };

  MiddlewareWorld detached(TwoReplicaOptions());
  MiddlewareWorld walk(TwoReplicaOptions());
  PlacementDirectory directory;
  for (uint32_t id = 2; id <= 4; ++id) directory.AddStore(DeviceId(id));
  walk.manager.AttachPlacementDirectory(&directory);
  walk.manager.set_placement_via_directory(false);

  run(detached);
  run(walk);
  EXPECT_EQ(detached.manager.StatsJson(), walk.manager.StatsJson());
  EXPECT_EQ(detached.network.clock().now_us(),
            walk.network.clock().now_us());
  std::string json = detached.manager.StatsJson();
  EXPECT_NE(json.find("\"fleet_selections\":0"), std::string::npos);
  EXPECT_NE(json.find("\"fleet_placements\":0"), std::string::npos);
}

// ------------------------------------------- incremental durability scans --

/// Runs the equivalence scenario against one world; `incremental` wires
/// the monitor's fleet mode (with the manager pinned to walk placement so
/// only the *scan* strategy differs between the two worlds).
struct MonitorWorld {
  explicit MonitorWorld(bool incremental)
      : world(TwoReplicaOptions()),
        monitor(world.manager, world.discovery, MiddlewareWorld::kDevice,
                world.bus) {
    cls = RegisterNodeClass(world.rt);
    for (uint32_t id = 2; id <= 5; ++id) world.AddStore(id, 1 << 20);
    if (incremental) {
      world.manager.AttachPlacementDirectory(&directory);
      world.manager.set_placement_via_directory(false);
      monitor.AttachFleet(&directory);
    }
    clusters =
        BuildClusteredList(world.rt, world.manager, cls, 48, 12, "head");
  }

  MiddlewareWorld world;
  PlacementDirectory directory;
  swap::DurabilityMonitor monitor;
  const runtime::ClassInfo* cls = nullptr;
  std::vector<SwapClusterId> clusters;
};

TEST(IncrementalDurabilityTest, RepairSequenceMatchesLegacyByteForByte) {
  MonitorWorld legacy(false);
  MonitorWorld incremental(true);
  ASSERT_FALSE(legacy.monitor.incremental());
  ASSERT_TRUE(incremental.monitor.incremental());

  auto run = [](MonitorWorld& w) {
    for (SwapClusterId id : w.clusters)
      OBISWAP_CHECK(w.world.manager.SwapOut(id).ok());
    w.monitor.Poll();
    // Silent departure: the store with the first cluster's primary goes
    // dark (same device in both worlds — placement is identical).
    DeviceId victim =
        w.world.manager.registry().Find(w.clusters[0])->replicas[0].device;
    w.world.network.SetOnline(victim, false);
    for (int i = 0; i < 4; ++i) w.monitor.Poll();  // detect + re-replicate
    // Post-recovery activity: swap-in, dirty, swap-out, one more poll —
    // exercises the event-fed dirty-cluster queue.
    OBISWAP_CHECK(w.world.manager.SwapIn(w.clusters[0]).ok());
    w.world.manager.MarkDirty(w.clusters[0]);
    OBISWAP_CHECK(w.world.manager.SwapOut(w.clusters[0]).ok());
    w.monitor.Poll();
  };
  run(legacy);
  run(incremental);

  // The manager-visible world must be byte-identical: same stats snapshot,
  // same virtual clock, same repair effects.
  EXPECT_EQ(legacy.world.manager.StatsJson(),
            incremental.world.manager.StatsJson());
  EXPECT_EQ(legacy.world.network.clock().now_us(),
            incremental.world.network.clock().now_us());
  EXPECT_EQ(legacy.monitor.stats().stores_departed,
            incremental.monitor.stats().stores_departed);
  EXPECT_EQ(legacy.monitor.stats().replicas_lost,
            incremental.monitor.stats().replicas_lost);
  EXPECT_EQ(legacy.monitor.stats().clusters_re_replicated,
            incremental.monitor.stats().clusters_re_replicated);
  EXPECT_EQ(legacy.monitor.stats().replicas_re_replicated,
            incremental.monitor.stats().replicas_re_replicated);

  // Same work, fewer records examined: that is the whole point.
  EXPECT_GT(legacy.monitor.stats().scan_replicas, 0u);
  EXPECT_LT(incremental.monitor.stats().scan_replicas,
            legacy.monitor.stats().scan_replicas);
  EXPECT_EQ(legacy.monitor.stats().full_scan_replicas,
            incremental.monitor.stats().full_scan_replicas);
}

TEST(IncrementalDurabilityTest, QuietPollsExamineNothingAfterTheRebuild) {
  MonitorWorld w(true);
  for (SwapClusterId id : w.clusters)
    OBISWAP_CHECK(w.world.manager.SwapOut(id).ok());
  w.monitor.Poll();  // first poll: one honest rebuild scan
  uint64_t after_rebuild = w.monitor.stats().scan_replicas;
  EXPECT_GT(after_rebuild, 0u);
  for (int i = 0; i < 10; ++i) w.monitor.Poll();
  // Ten quiet polls: the full-scan denominator keeps growing, the actual
  // examined count does not move at all.
  EXPECT_EQ(w.monitor.stats().scan_replicas, after_rebuild);
  EXPECT_GT(w.monitor.stats().full_scan_replicas, 10 * after_rebuild);
}

TEST(IncrementalDurabilityTest, LegacyScanCountersAdvanceInLockstep) {
  MonitorWorld w(false);
  for (SwapClusterId id : w.clusters)
    OBISWAP_CHECK(w.world.manager.SwapOut(id).ok());
  for (int i = 0; i < 5; ++i) w.monitor.Poll();
  // Without churn the legacy sweep examines exactly what a full scan
  // examines — the meter proves the O(clusters) cost, poll after poll.
  EXPECT_GT(w.monitor.stats().scan_replicas, 0u);
  EXPECT_EQ(w.monitor.stats().scan_replicas,
            w.monitor.stats().full_scan_replicas);
  EXPECT_EQ(w.monitor.stats().dirty_stores, 0u);
}

TEST(IncrementalDurabilityTest, FleetPollSyncsTheDirectoryFromDiscovery) {
  MonitorWorld w(true);
  context::PropertyRegistry props;
  swap::DurabilityMonitor monitor(w.world.manager, w.world.discovery,
                                  MiddlewareWorld::kDevice, w.world.bus,
                                  &props);
  monitor.AttachFleet(&w.directory);
  monitor.Poll();
  // Discovery announced stores 2..5; the sync pulled them all in.
  EXPECT_EQ(w.directory.size(), 4u);
  for (uint32_t id = 2; id <= 5; ++id)
    EXPECT_TRUE(w.directory.Contains(DeviceId(id))) << id;
  EXPECT_EQ(*props.GetInt("fleet.stores"), 4);
  EXPECT_GT(*props.GetInt("fleet.view_epoch"), 0);

  // A withdrawn store leaves the view on the next poll.
  w.world.discovery.Withdraw(DeviceId(5));
  monitor.Poll();
  EXPECT_EQ(w.directory.size(), 3u);
  EXPECT_FALSE(w.directory.Contains(DeviceId(5)));
  EXPECT_GE(*props.GetInt("durability.dirty_stores"), 1);
}

// ----------------------------------------------------------- policy hooks --

TEST(FleetPolicyTest, ActionsEditTheViewAndSwitchPlacementModes)
{
  MiddlewareWorld world(TwoReplicaOptions());
  PlacementDirectory directory;
  world.manager.AttachPlacementDirectory(&directory);
  context::PropertyRegistry props;
  PolicyEngine engine(world.bus, props);
  ASSERT_TRUE(
      RegisterFleetActions(engine, world.manager, directory).ok());
  auto added = engine.LoadXml(R"(
    <policies>
      <policy name="join-big-store" on="store-found">
        <action name="set-fleet">
          <param name="op" value="join"/>
          <param name="store" value="42"/>
          <param name="weight" value="5"/>
        </action>
      </policy>
      <policy name="quarantine" on="store-sick">
        <action name="set-fleet">
          <param name="op" value="healthy"/>
          <param name="store" value="42"/>
          <param name="healthy" value="0"/>
        </action>
      </policy>
      <policy name="fall-back" on="fleet-trouble">
        <action name="set-placement-mode">
          <param name="mode" value="walk"/>
        </action>
      </policy>
      <policy name="restore" on="fleet-ok">
        <action name="set-placement-mode">
          <param name="mode" value="directory"/>
        </action>
      </policy>
    </policies>)");
  ASSERT_TRUE(added.ok()) << added.status().ToString();

  world.bus.Publish(context::Event("store-found"));
  EXPECT_TRUE(directory.Contains(DeviceId(42)));
  EXPECT_EQ(directory.WeightOf(DeviceId(42)), 5.0);
  world.bus.Publish(context::Event("store-sick"));
  EXPECT_FALSE(directory.IsHealthy(DeviceId(42)));
  world.bus.Publish(context::Event("fleet-trouble"));
  EXPECT_FALSE(world.manager.placement_via_directory());
  world.bus.Publish(context::Event("fleet-ok"));
  EXPECT_TRUE(world.manager.placement_via_directory());
  EXPECT_EQ(engine.stats().action_failures, 0u);
}

TEST(FleetPolicyTest, DirectoryModeWithoutADirectoryFailsLoudly) {
  MiddlewareWorld world;  // nothing attached
  PlacementDirectory directory;
  context::PropertyRegistry props;
  PolicyEngine engine(world.bus, props);
  ASSERT_TRUE(
      RegisterFleetActions(engine, world.manager, directory).ok());
  auto added = engine.LoadXml(R"(
    <policies>
      <policy name="impossible" on="tick">
        <action name="set-placement-mode">
          <param name="mode" value="directory"/>
        </action>
      </policy>
    </policies>)");
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  world.bus.Publish(context::Event("tick"));
  EXPECT_EQ(engine.stats().action_failures, 1u);
}

// ----------------------------------------------------------- fleet driver --

TEST(FleetDriverTest, SmallFleetBuildsRunsAndBalances) {
  FleetOptions options;
  options.devices = 6;
  options.stores = 9;
  options.clusters_per_device = 3;
  options.objects_per_cluster = 6;
  FleetDriver driver(options);
  ASSERT_TRUE(driver.Build().ok());
  EXPECT_EQ(driver.device_count(), 6u);
  EXPECT_EQ(driver.store_count(), 9u);
  ASSERT_TRUE(driver.RunRounds(3).ok());

  FleetReport report = driver.Report();
  EXPECT_EQ(report.clusters_lost, 0u);
  EXPECT_EQ(report.clusters_below_k, 0u);
  EXPECT_GT(report.swap_outs, 0u);
  EXPECT_GT(report.swap_ins, 0u);
  EXPECT_GT(report.fleet_placements, 0u);
  EXPECT_EQ(report.fleet_placements, report.replicas_placed);
  EXPECT_GE(report.balance_max_over_mean, 1.0);
  EXPECT_GT(report.swap_ops_per_s, 0.0);
}

TEST(FleetDriverTest, CorrelatedOutageRecoversEveryCluster) {
  FleetOptions options;
  options.devices = 8;
  options.stores = 10;
  options.clusters_per_device = 3;
  options.objects_per_cluster = 6;
  FleetDriver driver(options);
  ASSERT_TRUE(driver.Build().ok());
  ASSERT_TRUE(driver.RunRounds(1).ok());

  size_t killed = driver.InjectCorrelatedOutage(0.3);
  EXPECT_GE(killed, 2u);
  auto polls = driver.RunUntilRecovered(60);
  ASSERT_TRUE(polls.ok()) << polls.status().ToString();
  EXPECT_GT(*polls, 0);

  FleetReport report = driver.Report();
  EXPECT_EQ(report.clusters_below_k, 0u);
  EXPECT_EQ(report.clusters_lost, 0u);
  EXPECT_GT(report.stores_departed, 0u);
  EXPECT_GT(report.replicas_re_replicated, 0u);
  // The incremental monitors examined a fraction of the full-scan cost.
  EXPECT_LT(report.scan_replicas, report.full_scan_replicas);
}

TEST(FleetDriverTest, LegacyBaselineRunsWithoutTheDirectory) {
  FleetOptions options;
  options.devices = 4;
  options.stores = 6;
  options.clusters_per_device = 2;
  options.objects_per_cluster = 6;
  options.use_directory = false;
  FleetDriver driver(options);
  ASSERT_TRUE(driver.Build().ok());
  ASSERT_TRUE(driver.RunRounds(2).ok());
  FleetReport report = driver.Report();
  EXPECT_EQ(report.fleet_placements, 0u);
  EXPECT_GT(report.swap_outs, 0u);
  EXPECT_EQ(report.clusters_lost, 0u);
  // Legacy monitors pay the full scan every poll.
  EXPECT_EQ(report.scan_replicas, report.full_scan_replicas);
}

}  // namespace
}  // namespace obiswap
