// Degraded-mode resilience tests: the per-store HealthTracker's circuit
// breaker state machine, the StoreClient's breaker gate / capped jittered
// backoff / call deadline, the manager's hedged failover fetch, end-to-end
// operation deadlines, brownout entry/exit with re-replication debt, the
// bounded pending-drop queue, the degraded policy actions, and the parity
// guarantee that with every knob off the demand path is bit-identical.
#include <gtest/gtest.h>

#include "policy/engine.h"
#include "policy/standard_actions.h"
#include "swap/durability.h"
#include "test_support.h"

namespace obiswap {
namespace {

using runtime::Value;
using ::obiswap::testing::BuildClusteredList;
using ::obiswap::testing::MiddlewareWorld;
using ::obiswap::testing::RegisterNodeClass;
using ::obiswap::testing::SumList;

constexpr int kListLength = 12;
constexpr int64_t kListSum = kListLength * (kListLength - 1) / 2;
constexpr DeviceId kStore(99);

swap::SwappingManager::Options TwoReplicaOptions() {
  swap::SwappingManager::Options options;
  options.replication_factor = 2;
  return options;
}

/// The StoreNode a world-owned store list holds for `device`.
net::StoreNode* NodeFor(MiddlewareWorld& world, DeviceId device) {
  for (auto& store : world.stores) {
    if (store->device() == device) return store.get();
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// HealthTracker unit tests (virtual clock, no network)
// ---------------------------------------------------------------------------

TEST(BreakerTest, TripsOnConsecutiveFailuresAndRejects) {
  net::SimClock clock;
  net::HealthTracker tracker(&clock);
  for (int i = 0; i < 2; ++i) tracker.RecordOutcome(kStore, false, 1000);
  EXPECT_EQ(tracker.StateOf(kStore), net::BreakerState::kClosed);
  EXPECT_TRUE(tracker.IsHealthy(kStore));

  tracker.RecordOutcome(kStore, false, 1000);  // third consecutive: trip
  EXPECT_EQ(tracker.StateOf(kStore), net::BreakerState::kOpen);
  EXPECT_FALSE(tracker.IsHealthy(kStore));
  EXPECT_TRUE(tracker.IsOpen(kStore));
  EXPECT_FALSE(tracker.AllowRequest(kStore));  // cooldown not elapsed
  EXPECT_EQ(tracker.stats().trips, 1u);
  EXPECT_EQ(tracker.stats().rejections, 1u);
  EXPECT_EQ(tracker.open_count(), 1u);
}

TEST(BreakerTest, HalfOpenProbeClosesOnSuccess) {
  net::SimClock clock;
  net::HealthTracker tracker(&clock);
  for (int i = 0; i < 3; ++i) tracker.RecordOutcome(kStore, false, 1000);
  ASSERT_TRUE(tracker.IsOpen(kStore));

  clock.Advance(tracker.options().open_cooldown_us);
  EXPECT_TRUE(tracker.AllowRequest(kStore));  // the one half-open probe
  EXPECT_EQ(tracker.StateOf(kStore), net::BreakerState::kHalfOpen);
  EXPECT_FALSE(tracker.AllowRequest(kStore));  // probe already in flight
  EXPECT_EQ(tracker.stats().probes, 1u);

  tracker.RecordOutcome(kStore, true, 1000);  // probe succeeded
  EXPECT_EQ(tracker.StateOf(kStore), net::BreakerState::kClosed);
  EXPECT_TRUE(tracker.IsHealthy(kStore));
  EXPECT_EQ(tracker.stats().closes, 1u);
  EXPECT_EQ(tracker.Find(kStore)->consecutive_failures, 0u);
}

TEST(BreakerTest, HalfOpenProbeFailureReopens) {
  net::SimClock clock;
  net::HealthTracker tracker(&clock);
  for (int i = 0; i < 3; ++i) tracker.RecordOutcome(kStore, false, 1000);
  clock.Advance(tracker.options().open_cooldown_us);
  ASSERT_TRUE(tracker.AllowRequest(kStore));

  tracker.RecordOutcome(kStore, false, 1000);  // probe failed
  EXPECT_EQ(tracker.StateOf(kStore), net::BreakerState::kOpen);
  EXPECT_EQ(tracker.Find(kStore)->opens, 2u);
  // The cooldown restarts from the re-open instant.
  EXPECT_FALSE(tracker.AllowRequest(kStore));
}

TEST(BreakerTest, EwmaErrorRateTripsLossyStore) {
  net::SimClock clock;
  net::HealthTracker tracker(&clock);
  // fail fail ok fail fail: never three consecutive failures, but the
  // error EWMA crosses the trip threshold once enough attempts accrue.
  tracker.RecordOutcome(kStore, false, 1000);
  tracker.RecordOutcome(kStore, false, 1000);
  tracker.RecordOutcome(kStore, true, 1000);
  tracker.RecordOutcome(kStore, false, 1000);
  EXPECT_EQ(tracker.StateOf(kStore), net::BreakerState::kClosed);
  tracker.RecordOutcome(kStore, false, 1000);
  EXPECT_EQ(tracker.StateOf(kStore), net::BreakerState::kOpen);
  EXPECT_LT(tracker.Find(kStore)->consecutive_failures, 3u);
  EXPECT_GE(tracker.Find(kStore)->ewma_error_rate,
            tracker.options().error_rate_trip);
}

TEST(BreakerTest, DisabledTrackerObservesWithoutGating) {
  net::SimClock clock;
  net::HealthTracker::Options options;
  options.breakers_enabled = false;
  net::HealthTracker tracker(&clock, options);
  for (int i = 0; i < 10; ++i) tracker.RecordOutcome(kStore, false, 1000);
  // Scores accumulate, but nothing is ever refused or taken out of
  // rotation: the bit-identical parity mode.
  EXPECT_EQ(tracker.Find(kStore)->failures, 10u);
  EXPECT_TRUE(tracker.AllowRequest(kStore));
  EXPECT_TRUE(tracker.IsHealthy(kStore));
  EXPECT_FALSE(tracker.IsOpen(kStore));
  EXPECT_EQ(tracker.stats().rejections, 0u);
}

TEST(BreakerTest, HedgeDeadlineNeedsWarmSamples) {
  net::SimClock clock;
  net::HealthTracker tracker(&clock);
  for (int i = 0; i < 7; ++i) tracker.RecordOutcome(kStore, true, 30'000);
  EXPECT_EQ(tracker.HedgeDeadlineUs(), 0u);  // cold: hedging stays off
  tracker.RecordOutcome(kStore, true, 30'000);
  // p95 resolves to the upper bound of the bucket holding 30ms.
  EXPECT_EQ(tracker.HedgeDeadlineUs(), 32767u);
}

TEST(BreakerTest, DeadlineExceededStatusRoundTrip) {
  Status status = DeadlineExceededError("late");
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(std::string(StatusCodeName(StatusCode::kDeadlineExceeded)),
            "DEADLINE_EXCEEDED");
}

// ---------------------------------------------------------------------------
// StoreClient: breaker gate, capped + jittered backoff, call deadline
// ---------------------------------------------------------------------------

TEST(DegradedClientTest, FastFailsOnOpenBreakerWithoutRadioTraffic) {
  MiddlewareWorld world;
  world.AddStore(2, 1 << 20);
  net::HealthTracker tracker(&world.network.clock());
  world.client.AttachHealth(&tracker);
  world.network.SetOnline(DeviceId(2), false);

  EXPECT_FALSE(world.client.Fetch(DeviceId(2), SwapKey(7)).ok());
  ASSERT_TRUE(tracker.IsOpen(DeviceId(2)));

  uint64_t now = world.network.clock().now_us();
  uint64_t failures = world.network.stats().transfer_failures;
  Result<std::string> second = world.client.Fetch(DeviceId(2), SwapKey(7));
  EXPECT_EQ(second.status().code(), StatusCode::kUnavailable);
  // Refused before any radio traffic: no transfer attempted, no virtual
  // time burned on retries or backoff.
  EXPECT_EQ(world.network.stats().transfer_failures, failures);
  EXPECT_EQ(world.network.clock().now_us(), now);
  EXPECT_EQ(world.client.stats().breaker_rejections, 1u);
}

TEST(DegradedClientTest, BackoffShiftCappedAndBounded) {
  MiddlewareWorld world;
  world.AddStore(2, 1 << 20);
  world.network.SetOnline(DeviceId(2), false);
  // 40 attempts would shift the base left 39 bits without the cap —
  // far past overflow of base<<n growth into absurd virtual waits.
  net::StoreClient client(world.network, world.discovery,
                          MiddlewareWorld::kDevice, 40);
  EXPECT_FALSE(client.Fetch(DeviceId(2), SwapKey(7)).ok());
  EXPECT_EQ(client.stats().retries, 39u);
  // Every gap saturates at max_backoff_us (+ up to 50% jitter).
  uint64_t worst = 39u * (client.max_backoff_us() + client.max_backoff_us() / 2);
  EXPECT_LE(client.stats().backoff_us, worst);
  EXPECT_GE(client.stats().backoff_us, client.max_backoff_us());
  EXPECT_EQ(world.network.clock().now_us(), client.stats().backoff_us);
}

TEST(DegradedClientTest, BackoffJitterDeterministicPerKey) {
  auto backoff_for = [](uint64_t key) {
    MiddlewareWorld world;
    world.AddStore(2, 1 << 20);
    world.network.SetOnline(DeviceId(2), false);
    EXPECT_FALSE(world.client.Fetch(DeviceId(2), SwapKey(key)).ok());
    return world.client.stats().backoff_us;
  };
  // Same key: identical virtual schedule across runs. Different keys:
  // decorrelated gaps (retry herds against a shared store spread out).
  EXPECT_EQ(backoff_for(7), backoff_for(7));
  EXPECT_NE(backoff_for(7), backoff_for(8));
}

TEST(DegradedClientTest, CallDeadlineCapsVirtualTime) {
  MiddlewareWorld world;
  world.AddStore(2, 1 << 20);
  net::LinkParams slow;
  slow.latency_us = 200'000;
  world.network.SetLinkParams(MiddlewareWorld::kDevice, DeviceId(2), slow);

  uint64_t before = world.network.clock().now_us();
  Result<std::string> fetched =
      world.client.Fetch(DeviceId(2), SwapKey(7), 50'000);
  EXPECT_EQ(fetched.status().code(), StatusCode::kDeadlineExceeded);
  // The radio was held exactly as long as the budget allowed, no longer.
  EXPECT_EQ(world.network.clock().now_us() - before, 50'000u);
  EXPECT_EQ(world.client.stats().deadline_failures, 1u);
  EXPECT_EQ(world.client.stats().retries, 0u);
}

// ---------------------------------------------------------------------------
// SwappingManager: operation deadlines, hedged fetch, brownout
// ---------------------------------------------------------------------------

TEST(DegradedSwapTest, SwapOutDeadlineFailsFastKeepsClusterLoaded) {
  swap::SwappingManager::Options options;
  options.op_deadline_us = 100'000;
  MiddlewareWorld world(options);
  world.manager.AttachClock(&world.network.clock());
  const runtime::ClassInfo* node_cls = RegisterNodeClass(world.rt);
  world.AddStore(2, 1 << 20);
  net::LinkParams glacial;
  glacial.latency_us = 10'000'000;
  world.network.SetLinkParams(MiddlewareWorld::kDevice, DeviceId(2), glacial);
  auto clusters = BuildClusteredList(world.rt, world.manager, node_cls,
                                     kListLength, kListLength, "head");

  uint64_t before = world.network.clock().now_us();
  Result<SwapKey> swapped = world.manager.SwapOut(clusters[0]);
  EXPECT_EQ(swapped.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(world.manager.stats().deadline_aborts, 1u);
  EXPECT_EQ(world.manager.stats().swap_out_failures, 1u);
  // Budget, not the 10s link, bounds the stall.
  EXPECT_LE(world.network.clock().now_us() - before, 200'000u);
  // The cluster is untouched and fully usable.
  EXPECT_EQ(world.manager.StateOf(clusters[0]), swap::SwapState::kLoaded);
  EXPECT_EQ(*SumList(world.rt, "head"), kListSum);
}

/// Eight cheap RPCs against a healthy fleet give the tracker its minimum
/// hedge-deadline sample count (missing keys: transport succeeds, the
/// remote NOT_FOUND still scores the store healthy).
void WarmHedgeSamples(MiddlewareWorld& world, net::HealthTracker& tracker) {
  for (uint64_t i = 0; i < 8; ++i)
    (void)world.client.Fetch(DeviceId(2), SwapKey(1000 + i));
  ASSERT_GT(tracker.HedgeDeadlineUs(), 0u);
}

TEST(DegradedSwapTest, HedgedFetchBeatsSlowPrimary) {
  MiddlewareWorld world(TwoReplicaOptions());
  world.manager.AttachClock(&world.network.clock());
  const runtime::ClassInfo* node_cls = RegisterNodeClass(world.rt);
  world.AddStore(2, 1 << 20);
  world.AddStore(3, 1 << 20);
  net::HealthTracker tracker(&world.network.clock());
  world.client.AttachHealth(&tracker);
  world.manager.AttachHealth(&tracker);
  world.manager.set_hedged_fetch(true);
  WarmHedgeSamples(world, tracker);
  auto clusters = BuildClusteredList(world.rt, world.manager, node_cls,
                                     kListLength, kListLength, "head");

  ASSERT_TRUE(world.manager.SwapOut(clusters[0]).ok());
  const swap::SwapClusterInfo* info =
      world.manager.registry().Find(clusters[0]);
  ASSERT_EQ(info->replicas.size(), 2u);
  // The replica the fetch order tries first turns glacial after placement.
  net::LinkParams glacial;
  glacial.latency_us = 5'000'000;
  world.network.SetLinkParams(MiddlewareWorld::kDevice,
                              info->replicas[0].device, glacial);

  uint64_t before = world.network.clock().now_us();
  ASSERT_TRUE(world.manager.SwapIn(clusters[0]).ok());
  EXPECT_EQ(world.manager.stats().hedged_fetches, 1u);
  EXPECT_EQ(world.manager.stats().hedge_wins, 1u);
  EXPECT_EQ(world.manager.stats().hedge_wastes, 0u);
  // The stall is one hedge window plus the healthy replica's fetch — far
  // under the slow store's 5s setup latency alone.
  EXPECT_LT(world.network.clock().now_us() - before, 2'000'000u);
  EXPECT_EQ(*SumList(world.rt, "head"), kListSum);
}

TEST(DegradedSwapTest, HedgeFallsBackToAbandonedPrimaryForAvailability) {
  MiddlewareWorld world(TwoReplicaOptions());
  world.manager.AttachClock(&world.network.clock());
  const runtime::ClassInfo* node_cls = RegisterNodeClass(world.rt);
  world.AddStore(2, 1 << 20);
  world.AddStore(3, 1 << 20);
  net::HealthTracker tracker(&world.network.clock());
  world.client.AttachHealth(&tracker);
  world.manager.AttachHealth(&tracker);
  world.manager.set_hedged_fetch(true);
  WarmHedgeSamples(world, tracker);
  auto clusters = BuildClusteredList(world.rt, world.manager, node_cls,
                                     kListLength, kListLength, "head");

  ASSERT_TRUE(world.manager.SwapOut(clusters[0]).ok());
  const swap::SwapClusterInfo* info =
      world.manager.registry().Find(clusters[0]);
  ASSERT_EQ(info->replicas.size(), 2u);
  // Slow primary AND dead secondary: the hedge abandons the only working
  // copy, so the final uncapped retry of that copy must still serve it.
  net::LinkParams glacial;
  glacial.latency_us = 5'000'000;
  world.network.SetLinkParams(MiddlewareWorld::kDevice,
                              info->replicas[0].device, glacial);
  world.network.SetOnline(info->replicas[1].device, false);

  ASSERT_TRUE(world.manager.SwapIn(clusters[0]).ok());
  EXPECT_EQ(world.manager.stats().hedged_fetches, 1u);
  EXPECT_EQ(world.manager.stats().hedge_wins, 0u);
  EXPECT_EQ(world.manager.stats().hedge_wastes, 1u);
  EXPECT_EQ(*SumList(world.rt, "head"), kListSum);
}

TEST(DegradedSwapTest, BrownoutAutoEntryReducedPlacementAndDebtRepayment) {
  MiddlewareWorld world(TwoReplicaOptions());
  const runtime::ClassInfo* node_cls = RegisterNodeClass(world.rt);
  world.AddStore(2, 1 << 20);
  world.AddStore(3, 1 << 20);
  net::HealthTracker tracker(&world.network.clock());
  world.client.AttachHealth(&tracker);
  world.manager.AttachHealth(&tracker);
  swap::DurabilityMonitor monitor(world.manager, world.discovery,
                                  MiddlewareWorld::kDevice, world.bus);
  monitor.AttachHealth(&tracker);
  int entered = 0, exited = 0;
  world.bus.Subscribe(context::kEventBrownoutEntered,
                      [&](const context::Event&) { ++entered; });
  world.bus.Subscribe(context::kEventBrownoutExited,
                      [&](const context::Event&) { ++exited; });
  auto clusters = BuildClusteredList(world.rt, world.manager, node_cls,
                                     kListLength, kListLength / 2, "head");

  ASSERT_TRUE(world.manager.SwapOut(clusters[0]).ok());
  world.network.SetOnline(DeviceId(3), false);
  monitor.Poll();
  EXPECT_TRUE(world.manager.brownout());
  EXPECT_EQ(world.manager.EffectiveReplicationFactor(), 1u);
  EXPECT_EQ(monitor.stats().sweeps_deferred, 1u);
  EXPECT_EQ(entered, 1);

  // Degraded placement: one copy now, the shortfall becomes debt.
  ASSERT_TRUE(world.manager.SwapOut(clusters[1]).ok());
  const swap::SwapClusterInfo* info =
      world.manager.registry().Find(clusters[1]);
  EXPECT_EQ(info->replicas.size(), 1u);
  EXPECT_EQ(world.manager.stats().brownout_swap_outs, 1u);
  EXPECT_EQ(world.manager.stats().under_replicated_outs, 1u);

  // Recovery: brownout exits and the next sweep repays the debt.
  world.network.SetOnline(DeviceId(3), true);
  monitor.Poll();
  EXPECT_FALSE(world.manager.brownout());
  EXPECT_EQ(exited, 1);
  EXPECT_EQ(world.manager.stats().brownout_exits, 1u);
  EXPECT_GE(monitor.stats().clusters_re_replicated, 1u);
  EXPECT_EQ(info->replicas.size(), 2u);
  EXPECT_EQ(*SumList(world.rt, "head"), kListSum);
}

TEST(DegradedSwapTest, BrownoutPrefersCleanImageVictims) {
  MiddlewareWorld world;
  const runtime::ClassInfo* node_cls = RegisterNodeClass(world.rt);
  world.AddStore(2, 1 << 20);
  auto old_clusters = BuildClusteredList(world.rt, world.manager, node_cls,
                                         kListLength, kListLength, "old");
  auto clean_clusters = BuildClusteredList(world.rt, world.manager, node_cls,
                                           kListLength, kListLength, "clean");

  // Give the newer cluster a retained clean image (swap out, back in, read
  // only), and make it the most recently crossed — the LRU victim would be
  // the old cluster.
  ASSERT_TRUE(world.manager.SwapOut(clean_clusters[0]).ok());
  ASSERT_TRUE(world.manager.SwapIn(clean_clusters[0]).ok());
  EXPECT_EQ(*SumList(world.rt, "clean"), kListSum);

  world.manager.EnterBrownout("test");
  Result<SwapClusterId> victim = world.manager.SwapOutVictim();
  ASSERT_TRUE(victim.ok());
  // Brownout swaps the zero-transfer clean cluster, not the LRU one.
  EXPECT_EQ(*victim, clean_clusters[0]);
  EXPECT_EQ(world.manager.stats().clean_swap_outs, 1u);
  EXPECT_EQ(world.manager.StateOf(old_clusters[0]), swap::SwapState::kLoaded);
}

TEST(DegradedSwapTest, PendingDropQueueBoundedOnPermanentDeparture) {
  swap::SwappingManager::Options options;
  options.max_pending_drops = 4;
  MiddlewareWorld world(options);
  const runtime::ClassInfo* node_cls = RegisterNodeClass(world.rt);
  world.AddStore(2, 1 << 20);
  swap::DurabilityMonitor monitor(world.manager, world.discovery,
                                  MiddlewareWorld::kDevice, world.bus);
  auto clusters = BuildClusteredList(world.rt, world.manager, node_cls,
                                     kListLength, 2, "head");
  ASSERT_EQ(clusters.size(), 6u);
  for (SwapClusterId id : clusters)
    ASSERT_TRUE(world.manager.SwapOut(id).ok());

  // The store dies and never returns: three silent polls presume departure
  // and queue every orphaned key for a drop that can never be delivered.
  world.network.SetOnline(DeviceId(2), false);
  for (int i = 0; i < 3; ++i) monitor.Poll();
  EXPECT_EQ(monitor.stats().stores_departed, 1u);
  EXPECT_EQ(monitor.stats().replicas_lost, 6u);
  // The queue holds the cap; the oldest obligations were evicted, counted.
  EXPECT_EQ(world.manager.pending_drop_count(), 4u);
  EXPECT_EQ(world.manager.stats().pending_drop_overflow, 2u);

  // Further polls must not grow it.
  for (int i = 0; i < 5; ++i) monitor.Poll();
  EXPECT_LE(world.manager.pending_drop_count(), 4u);
}

// ---------------------------------------------------------------------------
// Policy actions
// ---------------------------------------------------------------------------

TEST(DegradedPolicyTest, DegradedKnobsAreActionTargets) {
  MiddlewareWorld world;
  context::PropertyRegistry props;
  policy::PolicyEngine engine(world.bus, props);
  ASSERT_TRUE(
      policy::RegisterSwapActions(engine, world.rt, world.manager).ok());

  auto fire = [&](const std::string& action, const std::string& key,
                  const std::string& value) {
    policy::PolicyRule rule;
    rule.name = action + "-rule-" + value;
    rule.on_event = "degrade-" + action + value;
    rule.action = action;
    rule.params[key] = value;
    ASSERT_TRUE(engine.AddRule(std::move(rule)).ok());
    world.bus.Publish(context::Event("degrade-" + action + value));
  };

  fire("set-hedged-fetch", "enabled", "1");
  EXPECT_TRUE(world.manager.options().hedged_fetch);
  fire("set-op-deadline", "us", "250000");
  EXPECT_EQ(world.manager.options().op_deadline_us, 250'000u);
  fire("set-brownout", "enabled", "1");
  EXPECT_TRUE(world.manager.brownout());
  EXPECT_EQ(world.manager.stats().brownout_entries, 1u);
  fire("set-brownout", "enabled", "0");
  EXPECT_FALSE(world.manager.brownout());
  EXPECT_EQ(engine.stats().action_failures, 0u);
}

// ---------------------------------------------------------------------------
// Parity: all knobs off == the pre-degraded-mode demand path, bit for bit
// ---------------------------------------------------------------------------

/// A churny lossy-link workload: swap every cluster out and back in for
/// three rounds with monitor polls in between, summing the list each round.
void RunParityWorkload(MiddlewareWorld& world,
                       swap::DurabilityMonitor& monitor) {
  const runtime::ClassInfo* node_cls = RegisterNodeClass(world.rt);
  auto clusters = BuildClusteredList(world.rt, world.manager, node_cls,
                                     kListLength, kListLength / 3, "head");
  for (int round = 0; round < 3; ++round) {
    for (SwapClusterId id : clusters) (void)world.manager.SwapOut(id);
    monitor.Poll();
    for (SwapClusterId id : clusters) (void)world.manager.SwapIn(id);
    monitor.Poll();
    ASSERT_EQ(*SumList(world.rt, "head"), kListSum);
  }
}

TEST(DegradedSwapTest, StatsParityWithMachineryDisabled) {
  net::LinkParams lossy;
  lossy.loss_rate = 0.25;

  // Baseline: no tracker anywhere (the PR-5 wiring).
  MiddlewareWorld plain(TwoReplicaOptions());
  plain.manager.AttachClock(&plain.network.clock());
  plain.AddStore(2, 1 << 20);
  plain.AddStore(3, 1 << 20);
  plain.network.SetLinkParams(MiddlewareWorld::kDevice, DeviceId(2), lossy);
  plain.network.SetLinkParams(MiddlewareWorld::kDevice, DeviceId(3), lossy);
  swap::DurabilityMonitor plain_monitor(plain.manager, plain.discovery,
                                        MiddlewareWorld::kDevice, plain.bus);
  RunParityWorkload(plain, plain_monitor);

  // Full degraded-mode wiring, every knob off: observation-only tracker,
  // hedging off, no deadline. Must replay the identical virtual history.
  MiddlewareWorld wired(TwoReplicaOptions());
  wired.manager.AttachClock(&wired.network.clock());
  wired.AddStore(2, 1 << 20);
  wired.AddStore(3, 1 << 20);
  wired.network.SetLinkParams(MiddlewareWorld::kDevice, DeviceId(2), lossy);
  wired.network.SetLinkParams(MiddlewareWorld::kDevice, DeviceId(3), lossy);
  net::HealthTracker::Options observe_only;
  observe_only.breakers_enabled = false;
  net::HealthTracker tracker(&wired.network.clock(), observe_only);
  wired.client.AttachHealth(&tracker);
  wired.manager.AttachHealth(&tracker);
  swap::DurabilityMonitor wired_monitor(wired.manager, wired.discovery,
                                        MiddlewareWorld::kDevice, wired.bus);
  wired_monitor.AttachHealth(&tracker);
  RunParityWorkload(wired, wired_monitor);

  EXPECT_EQ(plain.manager.StatsJson(), wired.manager.StatsJson());
  EXPECT_EQ(plain.network.clock().now_us(), wired.network.clock().now_us());
  EXPECT_EQ(plain.client.stats().retries, wired.client.stats().retries);
  EXPECT_EQ(plain.client.stats().backoff_us, wired.client.stats().backoff_us);
  EXPECT_GT(tracker.stats().outcomes_recorded, 0u);  // it really was wired
}

}  // namespace
}  // namespace obiswap
