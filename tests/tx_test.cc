// Tests for Transactional Support: local undo, optimistic validation at the
// master, conflicts, version plumbing through replication, swapping
// interplay, and the commit envelope transport.
#include <gtest/gtest.h>

#include "test_support.h"

namespace obiswap::tx {
namespace {

using runtime::LocalScope;
using runtime::Object;
using runtime::Value;
using ::obiswap::testing::MiddlewareWorld;
using ::obiswap::testing::RegisterNodeClass;
using ::obiswap::testing::SumList;

constexpr DeviceId kServerDev(100);

class TxFixture : public ::testing::Test {
 protected:
  TxFixture()
      : server_rt_(9),
        server_(server_rt_, /*cluster_size=*/5),
        master_(server_),
        link_(server_) {
    server_cls_ = RegisterNodeClass(server_rt_);
    RegisterNodeClass(world_.rt);
    world_.AddStore(2, 10 * 1024 * 1024);
    endpoint_ = std::make_unique<replication::DeviceEndpoint>(
        world_.rt, link_, MiddlewareWorld::kDevice, &world_.bus);
    tx_ = std::make_unique<TxManager>(world_.rt, *endpoint_, &world_.manager,
                                      DirectCommit(master_));
  }

  /// Publishes an n-node list and fully replicates it on the device.
  void PublishAndReplicate(int n) {
    LocalScope scope(server_rt_.heap());
    Object** head = scope.Add(nullptr);
    master_oids_.clear();
    for (int i = n - 1; i >= 0; --i) {
      Object* node = server_rt_.New(server_cls_);
      OBISWAP_CHECK(server_rt_.SetField(node, "value", Value::Int(i)).ok());
      if (*head != nullptr)
        OBISWAP_CHECK(
            server_rt_.SetField(node, "next", Value::Ref(*head)).ok());
      *head = node;
      master_oids_.insert(master_oids_.begin(), node->oid());
    }
    OBISWAP_CHECK(server_.PublishRoot("list", *head).ok());
    Object* root = *endpoint_->FetchRoot("list");
    OBISWAP_CHECK(world_.rt.SetGlobal("list", Value::Ref(root)).ok());
    OBISWAP_CHECK(SumList(world_.rt, "list").ok());
  }

  Object* Replica(int index) {
    return endpoint_->FindReplica(master_oids_[static_cast<size_t>(index)]);
  }
  Object* Master(int index) {
    Object* found = nullptr;
    server_rt_.heap().ForEachObject([&](Object* obj) {
      if (obj->oid() == master_oids_[static_cast<size_t>(index)]) found = obj;
    });
    return found;
  }

  runtime::Runtime server_rt_;
  replication::ReplicationServer server_;
  TxMaster master_;
  replication::DirectLink link_;
  MiddlewareWorld world_;
  std::unique_ptr<replication::DeviceEndpoint> endpoint_;
  std::unique_ptr<TxManager> tx_;
  const runtime::ClassInfo* server_cls_ = nullptr;
  std::vector<ObjectId> master_oids_;
};

// ----------------------------------------------------------- versioning --

TEST_F(TxFixture, VersionsTravelWithReplication) {
  PublishAndReplicate(5);
  for (ObjectId oid : master_oids_) {
    EXPECT_EQ(master_.VersionOf(oid), 1u);
    EXPECT_EQ(tx_->ReplicaVersionOf(oid), 1u);
  }
}

TEST_F(TxFixture, UnshippedObjectHasVersionZero) {
  EXPECT_EQ(master_.VersionOf(ObjectId(12345)), 0u);
  EXPECT_EQ(tx_->ReplicaVersionOf(ObjectId(12345)), 0u);
}

// ------------------------------------------------------------ local ops --

TEST_F(TxFixture, WriteAppliesLocallyAndCommitPropagates) {
  PublishAndReplicate(5);
  ASSERT_TRUE(tx_->Begin().ok());
  ASSERT_TRUE(tx_->Write(Replica(2), "value", Value::Int(777)).ok());
  // Local replica updated immediately.
  EXPECT_EQ(world_.rt.GetField(Replica(2), "value")->as_int(), 777);
  // Master untouched until commit.
  EXPECT_EQ(server_rt_.GetField(Master(2), "value")->as_int(), 2);
  ASSERT_TRUE(tx_->Commit().ok());
  EXPECT_EQ(server_rt_.GetField(Master(2), "value")->as_int(), 777);
  EXPECT_EQ(master_.VersionOf(master_oids_[2]), 2u);
  EXPECT_EQ(tx_->ReplicaVersionOf(master_oids_[2]), 2u);
  EXPECT_EQ(master_.stats().commits, 1u);
}

TEST_F(TxFixture, AbortRollsBackLocalWrites) {
  PublishAndReplicate(3);
  ASSERT_TRUE(tx_->Begin().ok());
  ASSERT_TRUE(tx_->Write(Replica(0), "value", Value::Int(100)).ok());
  ASSERT_TRUE(tx_->Write(Replica(1), "value", Value::Int(200)).ok());
  ASSERT_TRUE(tx_->Write(Replica(0), "value", Value::Int(300)).ok());
  EXPECT_EQ(world_.rt.GetField(Replica(0), "value")->as_int(), 300);
  ASSERT_TRUE(tx_->Abort().ok());
  EXPECT_EQ(world_.rt.GetField(Replica(0), "value")->as_int(), 0);
  EXPECT_EQ(world_.rt.GetField(Replica(1), "value")->as_int(), 1);
  EXPECT_EQ(master_.stats().commits, 0u);
}

TEST_F(TxFixture, ReadOnlyCommitSucceedsWithoutMasterRoundTrip) {
  PublishAndReplicate(3);
  ASSERT_TRUE(tx_->Begin().ok());
  EXPECT_EQ(tx_->Read(Replica(1), "value")->as_int(), 1);
  ASSERT_TRUE(tx_->Commit().ok());
  EXPECT_EQ(master_.stats().commits, 0u);  // nothing shipped
  EXPECT_EQ(tx_->stats().committed, 1u);
}

TEST_F(TxFixture, LifecycleErrors) {
  PublishAndReplicate(2);
  EXPECT_FALSE(tx_->Commit().ok());  // no open tx
  EXPECT_FALSE(tx_->Abort().ok());
  EXPECT_FALSE(tx_->Write(Replica(0), "value", Value::Int(1)).ok());
  ASSERT_TRUE(tx_->Begin().ok());
  EXPECT_FALSE(tx_->Begin().ok());  // nested
  EXPECT_FALSE(
      tx_->Write(Replica(0), "value", Value::Ref(Replica(1))).ok());
  EXPECT_FALSE(tx_->Write(Replica(0), "nope", Value::Int(1)).ok());
  ASSERT_TRUE(tx_->Abort().ok());
}

// ------------------------------------------------------------- conflicts --

TEST_F(TxFixture, ConflictRollsBackAndReports) {
  PublishAndReplicate(3);
  ASSERT_TRUE(tx_->Begin().ok());
  ASSERT_TRUE(tx_->Write(Replica(1), "value", Value::Int(500)).ok());
  // A second device commits to the same object first.
  WriteSet rival;
  rival.validations.emplace_back(master_oids_[1], 1);
  rival.updates.push_back(FieldUpdate{master_oids_[1], "value",
                                      Value::Int(999)});
  auto rival_result = master_.Commit(rival);
  ASSERT_TRUE(rival_result.ok());
  ASSERT_TRUE(rival_result->committed);

  Status commit = tx_->Commit();
  EXPECT_EQ(commit.code(), StatusCode::kFailedPrecondition);
  // Local write rolled back to the replicated value.
  EXPECT_EQ(world_.rt.GetField(Replica(1), "value")->as_int(), 1);
  // Master kept the rival's value.
  EXPECT_EQ(server_rt_.GetField(Master(1), "value")->as_int(), 999);
  EXPECT_EQ(master_.stats().conflicts, 1u);
  EXPECT_EQ(tx_->stats().conflicted, 1u);
}

TEST_F(TxFixture, ConflictAppliesNothingAtomically) {
  PublishAndReplicate(3);
  WriteSet mixed;
  mixed.validations.emplace_back(master_oids_[0], 1);   // fine
  mixed.validations.emplace_back(master_oids_[1], 42);  // stale
  mixed.updates.push_back(
      FieldUpdate{master_oids_[0], "value", Value::Int(111)});
  mixed.updates.push_back(
      FieldUpdate{master_oids_[1], "value", Value::Int(222)});
  auto result = master_.Commit(mixed);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->committed);
  ASSERT_EQ(result->conflicts.size(), 1u);
  EXPECT_EQ(result->conflicts[0], master_oids_[1]);
  // Nothing applied — not even the valid half.
  EXPECT_EQ(server_rt_.GetField(Master(0), "value")->as_int(), 0);
}

TEST_F(TxFixture, ReadValidationCatchesStaleReads) {
  PublishAndReplicate(3);
  ASSERT_TRUE(tx_->Begin().ok());
  EXPECT_EQ(tx_->Read(Replica(0), "value")->as_int(), 0);
  ASSERT_TRUE(tx_->Write(Replica(1), "value", Value::Int(5)).ok());
  // Rival bumps the object we only READ.
  WriteSet rival;
  rival.validations.emplace_back(master_oids_[0], 1);
  rival.updates.push_back(
      FieldUpdate{master_oids_[0], "value", Value::Int(9)});
  ASSERT_TRUE(master_.Commit(rival)->committed);
  // Our commit validates the read set too -> conflict.
  EXPECT_EQ(tx_->Commit().code(), StatusCode::kFailedPrecondition);
}

TEST_F(TxFixture, ConflictRecoveryViaRefresh) {
  PublishAndReplicate(3);
  ASSERT_TRUE(tx_->Begin().ok());
  ASSERT_TRUE(tx_->Write(Replica(1), "value", Value::Int(500)).ok());
  WriteSet rival;
  rival.validations.emplace_back(master_oids_[1], 1);
  rival.updates.push_back(
      FieldUpdate{master_oids_[1], "value", Value::Int(999)});
  ASSERT_TRUE(master_.Commit(rival)->committed);
  ASSERT_EQ(tx_->Commit().code(), StatusCode::kFailedPrecondition);

  // Recovery: refresh the conflicting replica (pulls value 999 and version
  // 2), then retry on top of the fresh state.
  auto version = endpoint_->RefreshValues(master_oids_[1]);
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, 2u);
  EXPECT_EQ(world_.rt.GetField(Replica(1), "value")->as_int(), 999);
  ASSERT_TRUE(tx_->Begin().ok());
  ASSERT_TRUE(tx_->Write(Replica(1), "value", Value::Int(1000)).ok());
  ASSERT_TRUE(tx_->Commit().ok());
  EXPECT_EQ(server_rt_.GetField(Master(1), "value")->as_int(), 1000);
  EXPECT_EQ(master_.VersionOf(master_oids_[1]), 3u);
}

// ------------------------------------------------------ swapping interplay --

TEST_F(TxFixture, WriteThroughSwappedClusterFaultsItIn) {
  PublishAndReplicate(10);  // 2 replication clusters -> 2 swap-clusters
  SwapClusterId victim = world_.manager.registry().Ids()[1];
  ASSERT_TRUE(world_.manager.SwapOut(victim).ok());
  world_.rt.heap().Collect();
  // Walk to a proxy that now points into the swapped cluster and write
  // through it.
  Object* cursor = world_.rt.GetGlobal("list")->ref();
  for (int i = 0; i < 7; ++i) {
    cursor = world_.rt.Invoke(cursor, "next")->ref();
    ASSERT_TRUE(world_.rt.SetGlobal("c", Value::Ref(cursor)).ok());
    cursor = world_.rt.GetGlobal("c")->ref();
  }
  ASSERT_TRUE(tx_->Begin().ok());
  ASSERT_TRUE(tx_->Write(cursor, "value", Value::Int(70)).ok());
  EXPECT_EQ(world_.manager.StateOf(victim), swap::SwapState::kLoaded);
  ASSERT_TRUE(tx_->Commit().ok());
  EXPECT_EQ(server_rt_.GetField(Master(7), "value")->as_int(), 70);
}

TEST_F(TxFixture, UncommittedWritesPinTheirCluster) {
  PublishAndReplicate(10);
  ASSERT_TRUE(tx_->Begin().ok());
  ASSERT_TRUE(tx_->Write(Replica(1), "value", Value::Int(11)).ok());
  SwapClusterId written_cluster = Replica(1)->swap_cluster();
  // Swap-out of the written cluster is vetoed while the tx is open.
  EXPECT_EQ(world_.manager.SwapOut(written_cluster).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(tx_->Commit().ok());
  EXPECT_TRUE(world_.manager.SwapOut(written_cluster).ok());
}

TEST_F(TxFixture, CommittedDataSurvivesSwapCycle) {
  PublishAndReplicate(10);
  ASSERT_TRUE(tx_->Begin().ok());
  ASSERT_TRUE(tx_->Write(Replica(3), "value", Value::Int(33)).ok());
  ASSERT_TRUE(tx_->Commit().ok());
  SwapClusterId cluster = Replica(3)->swap_cluster();
  ASSERT_TRUE(world_.manager.SwapOut(cluster).ok());
  world_.rt.heap().Collect();
  auto sum = SumList(world_.rt, "list");  // faults it back
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, 45 - 3 + 33);
  EXPECT_EQ(world_.rt.GetField(Replica(3), "value")->as_int(), 33);
}

// --------------------------------------------------------------- transport --

class TxTransportFixture : public TxFixture {
 protected:
  TxTransportFixture() : service_(master_) {
    world_.network.AddDevice(kServerDev);
    world_.network.SetInRange(MiddlewareWorld::kDevice, kServerDev, true);
    net_tx_ = std::make_unique<TxManager>(
        world_.rt, *endpoint_, &world_.manager,
        NetworkCommit(world_.network, MiddlewareWorld::kDevice, kServerDev,
                      service_));
  }

  TxService service_;
  std::unique_ptr<TxManager> net_tx_;
};

TEST_F(TxTransportFixture, CommitOverTheBridge) {
  PublishAndReplicate(5);
  // The base versions were recorded by tx_'s sink; mirror them into the
  // network manager (only one sink is active per endpoint).
  for (ObjectId oid : master_oids_) net_tx_->NoteReplicaVersion(oid, 1);
  ASSERT_TRUE(net_tx_->Begin().ok());
  // Type-checked: "value" is declared kInt, so a string write is rejected
  // without leaving transaction residue.
  EXPECT_FALSE(
      net_tx_->Write(Replica(4), "value", Value::Str("nope")).ok());
  ASSERT_TRUE(net_tx_->Write(Replica(4), "value", Value::Int(404)).ok());
  ASSERT_TRUE(net_tx_->Commit().ok());
  EXPECT_EQ(server_rt_.GetField(Master(4), "value")->as_int(), 404);
  EXPECT_GT(world_.network.stats().transfers, 0u);
}

TEST_F(TxTransportFixture, ServerUnreachableKeepsTransactionOpen) {
  PublishAndReplicate(3);
  for (ObjectId oid : master_oids_) net_tx_->NoteReplicaVersion(oid, 1);
  ASSERT_TRUE(net_tx_->Begin().ok());
  ASSERT_TRUE(net_tx_->Write(Replica(0), "value", Value::Int(77)).ok());
  world_.network.SetInRange(MiddlewareWorld::kDevice, kServerDev, false);
  Status commit = net_tx_->Commit();
  EXPECT_EQ(commit.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(net_tx_->in_transaction());  // still open: retry later
  EXPECT_EQ(world_.rt.GetField(Replica(0), "value")->as_int(), 77);
  // Connectivity returns; the same commit goes through.
  world_.network.SetInRange(MiddlewareWorld::kDevice, kServerDev, true);
  ASSERT_TRUE(net_tx_->Commit().ok());
  EXPECT_EQ(server_rt_.GetField(Master(0), "value")->as_int(), 77);
}

TEST_F(TxTransportFixture, MalformedEnvelopesRejected) {
  EXPECT_NE(service_.Handle("nonsense").find("INVALID_ARGUMENT"),
            std::string::npos);
  EXPECT_NE(service_.Handle("<request op=\"zap\"/>")
                .find("INVALID_ARGUMENT"),
            std::string::npos);
  EXPECT_NE(service_.Handle("<request op=\"commit\"><val/></request>")
                .find("INVALID_ARGUMENT"),
            std::string::npos);
}

TEST_F(TxTransportFixture, EnvelopeRoundTripsAllValueKinds) {
  WriteSet write_set;
  write_set.tx_id = 7;
  write_set.validations.emplace_back(ObjectId(1), 3);
  write_set.updates.push_back(FieldUpdate{ObjectId(1), "a", Value::Nil()});
  write_set.updates.push_back(
      FieldUpdate{ObjectId(1), "b", Value::Int(-42)});
  write_set.updates.push_back(
      FieldUpdate{ObjectId(1), "c", Value::Real(2.5)});
  write_set.updates.push_back(
      FieldUpdate{ObjectId(1), "d", Value::Str("x<&>\"y")});
  std::string encoded = EncodeCommitRequest(write_set);
  // The service decodes it; master rejects (unknown oid) which proves the
  // decode got past validation into apply.
  std::string response = service_.Handle(encoded);
  EXPECT_NE(response.find("committed=\"0\""), std::string::npos);
}

}  // namespace
}  // namespace obiswap::tx
