// Tests for src/common: Status/Result, ids, checksums, varint, RNG, strings.
#include <gtest/gtest.h>

#include <set>

#include "common/checksum.h"
#include "common/ids.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/varint.h"

namespace obiswap {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = NotFoundError("missing thing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "missing thing");
  EXPECT_EQ(status.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, AllErrorConstructorsSetTheirCode) {
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(DataLossError("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = InvalidArgumentError("nope");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 7);
}

Result<int> Half(int v) {
  if (v % 2 != 0) return InvalidArgumentError("odd");
  return v / 2;
}

Result<int> Quarter(int v) {
  OBISWAP_ASSIGN_OR_RETURN(int half, Half(v));
  OBISWAP_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(7).ok());
}

// ------------------------------------------------------------------- ids --

TEST(IdsTest, DefaultIsInvalid) {
  ClusterId id;
  EXPECT_FALSE(id.valid());
}

TEST(IdsTest, ValueRoundTrip) {
  SwapClusterId id(17);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 17u);
  EXPECT_EQ(id.ToString(), "17");
}

TEST(IdsTest, Comparison) {
  EXPECT_EQ(ClusterId(3), ClusterId(3));
  EXPECT_NE(ClusterId(3), ClusterId(4));
  EXPECT_LT(ClusterId(3), ClusterId(4));
}

TEST(IdsTest, HashUsableInSets) {
  std::set<ObjectId> ids;
  ids.insert(ObjectId(1));
  ids.insert(ObjectId(2));
  ids.insert(ObjectId(1));
  EXPECT_EQ(ids.size(), 2u);
}

TEST(IdsTest, SwapCluster0IsReserved) {
  EXPECT_TRUE(kSwapCluster0.valid());
  EXPECT_EQ(kSwapCluster0.value(), 0u);
}

// -------------------------------------------------------------- checksum --

TEST(ChecksumTest, Adler32KnownVector) {
  // Standard known value for "Wikipedia".
  EXPECT_EQ(Adler32("Wikipedia"), 0x11E60398u);
}

TEST(ChecksumTest, Adler32Empty) { EXPECT_EQ(Adler32(""), 1u); }

TEST(ChecksumTest, Adler32LargeInputDoesNotOverflow) {
  std::string data(1 << 20, '\xFF');
  uint32_t checksum = Adler32(data);
  EXPECT_NE(checksum, 0u);
  EXPECT_EQ(checksum, Adler32(data));  // deterministic
}

TEST(ChecksumTest, Crc32KnownVector) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
}

TEST(ChecksumTest, Crc32DetectsSingleBitFlip) {
  std::string a = "the quick brown fox";
  std::string b = a;
  b[3] ^= 0x01;
  EXPECT_NE(Crc32(a), Crc32(b));
}

TEST(ChecksumTest, Fnv1aDistinguishesInputs) {
  EXPECT_NE(Fnv1a64("a"), Fnv1a64("b"));
  EXPECT_NE(Fnv1a64(""), Fnv1a64(std::string_view("\0", 1)));
}

// ---------------------------------------------------------------- varint --

TEST(VarintTest, RoundTripBoundaries) {
  for (uint64_t v : {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull,
                     0xFFFFFFFFull, 0xFFFFFFFFFFFFFFFFull}) {
    std::string buf;
    PutVarint64(&buf, v);
    std::string_view view = buf;
    Result<uint64_t> decoded = GetVarint64(&view);
    ASSERT_TRUE(decoded.ok()) << v;
    EXPECT_EQ(*decoded, v);
    EXPECT_TRUE(view.empty());
  }
}

TEST(VarintTest, SmallValuesAreOneByte) {
  std::string buf;
  PutVarint64(&buf, 127);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(VarintTest, TruncatedFails) {
  std::string buf;
  PutVarint64(&buf, 300);
  std::string_view view(buf.data(), 1);
  EXPECT_FALSE(GetVarint64(&view).ok());
}

TEST(VarintTest, SequentialDecoding) {
  std::string buf;
  PutVarint64(&buf, 5);
  PutVarint64(&buf, 1000);
  PutVarint64(&buf, 0);
  std::string_view view = buf;
  EXPECT_EQ(*GetVarint64(&view), 5u);
  EXPECT_EQ(*GetVarint64(&view), 1000u);
  EXPECT_EQ(*GetVarint64(&view), 0u);
  EXPECT_TRUE(view.empty());
}

TEST(VarintTest, ZigZagRoundTrip) {
  for (int64_t v : std::initializer_list<int64_t>{0, -1, 1, -64, 63,
                                                  INT64_MIN, INT64_MAX}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
}

TEST(VarintTest, ZigZagSmallMagnitudeStaysSmall) {
  EXPECT_LT(ZigZagEncode(-1), 256u);
  EXPECT_LT(ZigZagEncode(1), 256u);
}

// ------------------------------------------------------------------- rng --

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBelow(10), 10u);
}

TEST(RngTest, NextIntIsInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoolExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, NextBoolRoughlyCalibrated) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBool(0.25) ? 1 : 0;
  EXPECT_GT(hits, 2200);
  EXPECT_LT(hits, 2800);
}

// --------------------------------------------------------------- strings --

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  std::vector<std::string> pieces = StrSplit("a,,b", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "");
  EXPECT_EQ(pieces[2], "b");
}

TEST(StringUtilTest, SplitSingle) {
  EXPECT_EQ(StrSplit("abc", ',').size(), 1u);
  EXPECT_EQ(StrSplit("", ',').size(), 1u);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(StrTrim("  x \t\n"), "x");
  EXPECT_EQ(StrTrim("x"), "x");
  EXPECT_EQ(StrTrim("   "), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StrStartsWith("swap-cluster", "swap"));
  EXPECT_FALSE(StrStartsWith("swap", "swap-cluster"));
  EXPECT_TRUE(StrEndsWith("object.xml", ".xml"));
  EXPECT_FALSE(StrEndsWith("xml", "object.xml"));
}

TEST(StringUtilTest, ParseInt64) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("-7"), -7);
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("999999999999999999999999").ok());
}

TEST(StringUtilTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(*ParseDouble("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.0junk").ok());
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StringUtilTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(1536), "1.5 KiB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.0 MiB");
}

}  // namespace
}  // namespace obiswap
