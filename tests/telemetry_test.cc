// Telemetry subsystem: histogram bucket edges, span nesting and export,
// journal wraparound, bus mirroring (including re-entrant publishes), the
// full swap pipeline's span coverage, and the telemetry-on/off stats parity
// guarantee.
#include <cctype>
#include <cstdio>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "test_support.h"

namespace obiswap {
namespace {

using swap::SwappingManager;
using telemetry::EventJournal;
using telemetry::Histogram;
using telemetry::MetricsRegistry;
using telemetry::SpanTracer;
using telemetry::Telemetry;
using testing::BuildClusteredList;
using testing::MiddlewareWorld;
using testing::RegisterNodeClass;
using testing::SumList;

// --------------------------------------------------- a mini JSON checker --
// Recursive-descent validator, enough to prove the exported trace and
// metrics documents are well-formed JSON without any external dependency.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    at_ = 0;
    bool ok = Value();
    SkipWs();
    return ok && at_ == text_.size();
  }

 private:
  void SkipWs() {
    while (at_ < text_.size() && std::isspace(
               static_cast<unsigned char>(text_[at_]))) {
      ++at_;
    }
  }
  bool Literal(const char* word) {
    size_t len = std::string(word).size();
    if (text_.compare(at_, len, word) != 0) return false;
    at_ += len;
    return true;
  }
  bool String() {
    if (text_[at_] != '"') return false;
    ++at_;
    while (at_ < text_.size() && text_[at_] != '"') {
      if (text_[at_] == '\\') ++at_;
      ++at_;
    }
    if (at_ >= text_.size()) return false;
    ++at_;  // closing quote
    return true;
  }
  bool Number() {
    size_t start = at_;
    if (at_ < text_.size() && (text_[at_] == '-' || text_[at_] == '+')) ++at_;
    while (at_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[at_])) ||
            text_[at_] == '.' || text_[at_] == 'e' || text_[at_] == 'E' ||
            text_[at_] == '-' || text_[at_] == '+')) {
      ++at_;
    }
    return at_ > start;
  }
  bool Value() {
    SkipWs();
    if (at_ >= text_.size()) return false;
    char c = text_[at_];
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }
  bool Object() {
    ++at_;  // '{'
    SkipWs();
    if (at_ < text_.size() && text_[at_] == '}') {
      ++at_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (at_ >= text_.size() || text_[at_] != ':') return false;
      ++at_;
      if (!Value()) return false;
      SkipWs();
      if (at_ < text_.size() && text_[at_] == ',') {
        ++at_;
        continue;
      }
      break;
    }
    if (at_ >= text_.size() || text_[at_] != '}') return false;
    ++at_;
    return true;
  }
  bool Array() {
    ++at_;  // '['
    SkipWs();
    if (at_ < text_.size() && text_[at_] == ']') {
      ++at_;
      return true;
    }
    for (;;) {
      if (!Value()) return false;
      SkipWs();
      if (at_ < text_.size() && text_[at_] == ',') {
        ++at_;
        continue;
      }
      break;
    }
    if (at_ >= text_.size() || text_[at_] != ']') return false;
    ++at_;
    return true;
  }

  const std::string& text_;
  size_t at_ = 0;
};

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

// ---------------------------------------------------------------- metrics --

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds exactly zero; bucket i holds [2^(i-1), 2^i - 1].
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  EXPECT_EQ(Histogram::BucketIndex(uint64_t{1} << 20), 21u);
  EXPECT_EQ(Histogram::BucketIndex((uint64_t{1} << 20) - 1), 20u);
  EXPECT_EQ(Histogram::BucketIndex(uint64_t{1} << 63), 64u);
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), 64u);

  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7u);
  EXPECT_EQ(Histogram::BucketUpperBound(64), UINT64_MAX);

  Histogram hist;
  hist.Record(0);
  hist.Record(1);
  hist.Record(UINT64_MAX);
  EXPECT_EQ(hist.bucket(0), 1u);
  EXPECT_EQ(hist.bucket(1), 1u);
  EXPECT_EQ(hist.bucket(64), 1u);
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_EQ(hist.min(), 0u);
  EXPECT_EQ(hist.max(), UINT64_MAX);
}

TEST(HistogramTest, PercentilesResolveToBucketUpperBounds) {
  Histogram hist;
  EXPECT_EQ(hist.ValueAtPercentile(50), 0u);  // empty
  for (uint64_t v = 1; v <= 100; ++v) hist.Record(v);
  EXPECT_EQ(hist.count(), 100u);
  EXPECT_EQ(hist.sum(), 5050u);
  EXPECT_EQ(hist.min(), 1u);
  EXPECT_EQ(hist.max(), 100u);
  // Rank 50 lands in [32,63] (cumulative 63); ranks 95/99 in [64,127].
  EXPECT_EQ(hist.ValueAtPercentile(50), 63u);
  EXPECT_EQ(hist.ValueAtPercentile(95), 127u);
  EXPECT_EQ(hist.ValueAtPercentile(99), 127u);
  EXPECT_EQ(hist.ValueAtPercentile(0), 1u);     // clamps to min
  EXPECT_EQ(hist.ValueAtPercentile(100), 127u);
}

TEST(MetricsRegistryTest, StableReferencesAndDeterministicJson) {
  MetricsRegistry registry;
  telemetry::Counter& swap_outs = registry.GetCounter("swap_outs");
  // Growth must not invalidate previously handed-out references.
  for (int i = 0; i < 100; ++i)
    registry.GetCounter("c" + std::to_string(i)).Increment();
  swap_outs.Increment(7);
  EXPECT_EQ(registry.GetCounter("swap_outs").value(), 7u);
  EXPECT_EQ(&registry.GetCounter("swap_outs"), &swap_outs);
  EXPECT_EQ(registry.FindCounter("never_touched"), nullptr);

  registry.GetGauge("depth").Set(-3);
  registry.GetHistogram("lat_us").Record(42);
  std::string first = registry.Json();
  std::string second = registry.Json();
  EXPECT_EQ(first, second);
  EXPECT_TRUE(JsonChecker(first).Valid()) << first;
  EXPECT_NE(first.find("\"swap_outs\":7"), std::string::npos);
  EXPECT_NE(first.find("\"depth\":-3"), std::string::npos);
  EXPECT_NE(first.find("\"lat_us\""), std::string::npos);
}

// ----------------------------------------------------------------- tracer --

TEST(SpanTracerTest, NestedSpansCompleteInLifoOrderWithVirtualTimestamps) {
  net::SimClock clock;
  SpanTracer tracer;
  tracer.AttachClock(&clock);

  clock.Advance(100);
  SpanTracer::SpanToken outer = tracer.Begin("outer", "test");
  clock.Advance(10);
  SpanTracer::SpanToken inner = tracer.Begin("inner", "test");
  clock.Advance(5);
  tracer.End(inner);
  clock.Advance(2);
  tracer.End(outer);

  ASSERT_EQ(tracer.completed_count(), 2u);
  const SpanTracer::CompletedSpan& first = tracer.completed(0);
  const SpanTracer::CompletedSpan& second = tracer.completed(1);
  EXPECT_EQ(first.name, "inner");
  EXPECT_EQ(first.start_us, 110u);
  EXPECT_EQ(first.dur_us, 5u);
  EXPECT_EQ(first.depth, 1u);
  EXPECT_EQ(second.name, "outer");
  EXPECT_EQ(second.start_us, 100u);
  EXPECT_EQ(second.dur_us, 17u);
  EXPECT_EQ(second.depth, 0u);
  EXPECT_EQ(tracer.unbalanced_closes(), 0u);
  EXPECT_EQ(tracer.open_depth(), 0u);
}

TEST(SpanTracerTest, UnbalancedClosesAreCountedNotFatal) {
  SpanTracer tracer;
  SpanTracer::SpanToken outer = tracer.Begin("outer", "test");
  tracer.Begin("leaked", "test");  // never explicitly ended
  tracer.End(outer);  // implicitly closes "leaked"
  EXPECT_EQ(tracer.completed_count(), 2u);
  EXPECT_EQ(tracer.unbalanced_closes(), 1u);

  tracer.End(outer);  // double close: counted no-op
  EXPECT_EQ(tracer.unbalanced_closes(), 2u);
  EXPECT_EQ(tracer.completed_count(), 2u);

  tracer.End(SpanTracer::kInvalidSpan);  // silent no-op (disabled-path token)
  EXPECT_EQ(tracer.unbalanced_closes(), 2u);
}

TEST(SpanTracerTest, DisabledTracerRecordsNothing) {
  SpanTracer tracer;
  tracer.set_enabled(false);
  SpanTracer::SpanToken token = tracer.Begin("quiet", "test");
  EXPECT_EQ(token, SpanTracer::kInvalidSpan);
  tracer.End(token);
  EXPECT_EQ(tracer.completed_count(), 0u);
  EXPECT_EQ(tracer.unbalanced_closes(), 0u);
}

TEST(SpanTracerTest, RingDropsOldestWhenFull) {
  SpanTracer tracer(4);
  for (int i = 0; i < 10; ++i) {
    SpanTracer::SpanToken token =
        tracer.Begin("span" + std::to_string(i), "test");
    tracer.End(token);
  }
  EXPECT_EQ(tracer.completed_count(), 4u);
  EXPECT_EQ(tracer.dropped_count(), 6u);
  EXPECT_EQ(tracer.completed(0).name, "span6");  // oldest retained
  EXPECT_EQ(tracer.completed(3).name, "span9");
}

TEST(SpanTracerTest, ChromeTraceJsonIsValidAndDeterministic) {
  auto run = [] {
    net::SimClock clock;
    SpanTracer tracer;
    tracer.AttachClock(&clock);
    tracer.BeginTrack("config \"a\"");  // label needs escaping
    clock.Advance(50);
    SpanTracer::SpanToken op = tracer.Begin("swap_out", "swap");
    clock.Advance(30);
    SpanTracer::SpanToken phase = tracer.Begin("ship", "swap");
    clock.Advance(20);
    tracer.End(phase);
    tracer.End(op);
    return tracer.ToChromeTraceJson();
  };
  std::string json = run();
  EXPECT_EQ(json, run());  // same workload, same virtual clock, same bytes
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // track metadata
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"swap_out\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":50"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":50"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

// ---------------------------------------------------------------- journal --

TEST(EventJournalTest, WraparoundKeepsNewestEntries) {
  EventJournal journal(4);
  for (int i = 0; i < 10; ++i)
    journal.Record("test", "entry" + std::to_string(i), "");
  EXPECT_EQ(journal.size(), 4u);
  EXPECT_EQ(journal.total_recorded(), 10u);
  EXPECT_EQ(journal.entry(0).what, "entry6");
  EXPECT_EQ(journal.entry(0).seq, 7u);
  EXPECT_EQ(journal.entry(3).what, "entry9");
  EXPECT_EQ(journal.entry(3).seq, 10u);

  std::string dump = journal.Dump();
  EXPECT_NE(dump.find("#7"), std::string::npos);
  EXPECT_NE(dump.find("entry9"), std::string::npos);
  EXPECT_EQ(dump.find("entry5"), std::string::npos);
}

TEST(EventJournalTest, MirrorsBusEventsWithSortedDetail) {
  MiddlewareWorld world;
  world.bus.Publish(context::Event("custom")
                        .Set("zebra", int64_t{1})
                        .Set("alpha", int64_t{2})
                        .Set("label", std::string("x")));
  const EventJournal& journal = world.manager.telemetry().journal();
  ASSERT_GE(journal.size(), 1u);
  const EventJournal::Entry& entry = journal.entry(journal.size() - 1);
  EXPECT_EQ(entry.kind, "event");
  EXPECT_EQ(entry.what, "custom");
  // Properties render sorted regardless of Set() order.
  EXPECT_EQ(entry.detail, "alpha=2 label=x zebra=1");
}

TEST(EventJournalTest, ReentrantPublishFromSubscriberIsJournaled) {
  MiddlewareWorld world;
  // A subscriber that publishes a follow-up event from inside delivery —
  // the journal's SubscribeAll mirror must survive the re-entrant publish.
  world.bus.Subscribe("ping", [&](const context::Event&) {
    world.bus.Publish(context::Event("pong"));
  });
  world.bus.Publish(context::Event("ping"));
  const EventJournal& journal = world.manager.telemetry().journal();
  ASSERT_EQ(journal.size(), 2u);
  // The re-entrant "pong" completes its delivery inside "ping"'s, so it is
  // recorded first; both entries must be present and ordered by seq.
  EXPECT_EQ(journal.entry(0).what, "pong");
  EXPECT_EQ(journal.entry(1).what, "ping");
  EXPECT_LT(journal.entry(0).seq, journal.entry(1).seq);
}

// --------------------------------------------------- pipeline integration --

SwappingManager::Options TwoReplicaOptions() {
  SwappingManager::Options options;
  options.replication_factor = 2;
  options.swap_in_cache_bytes = 1 << 20;
  return options;
}

TEST(TelemetryPipelineTest, SwapPipelineEmitsSpansWithVirtualTimestamps) {
  MiddlewareWorld world(TwoReplicaOptions());
  world.manager.AttachClock(&world.network.clock());
  world.client.AttachTelemetry(&world.manager.telemetry());
  const runtime::ClassInfo* node_cls = RegisterNodeClass(world.rt);
  world.AddStore(2, 1 << 20);
  auto clusters = BuildClusteredList(world.rt, world.manager, node_cls,
                                     30, 10, "head");

  // Swap-out: only one store is up, so clusters go out under-replicated.
  ASSERT_TRUE(world.manager.SwapOut(clusters[0]).ok());
  // Demand swap-in should exercise fetch/decompress, not the payload
  // cache; flush the cache first (budget to zero empties it).
  world.manager.set_swap_in_cache_bytes(0);
  world.manager.set_swap_in_cache_bytes(1 << 20);
  ASSERT_TRUE(world.manager.SwapIn(clusters[0]).ok());
  // Speculative swap-in of the second cluster.
  ASSERT_TRUE(world.manager.SwapOut(clusters[1]).ok());
  world.manager.set_swap_in_cache_bytes(0);
  world.manager.set_swap_in_cache_bytes(1 << 20);
  ASSERT_TRUE(world.manager.SwapIn(clusters[1], /*prefetch=*/true).ok());
  // The third cluster stays swapped out with one replica (K=2 unmet);
  // when a second store appears the DurabilityMonitor tops it up.
  ASSERT_TRUE(world.manager.SwapOut(clusters[2]).ok());
  swap::DurabilityMonitor monitor(world.manager, world.discovery,
                                  MiddlewareWorld::kDevice, world.bus);
  world.AddStore(3, 1 << 20);
  monitor.Poll();
  // Swapped-in clusters retain clean images on the store, so all three
  // clusters (not just the still-swapped-out one) get topped up to K=2.
  EXPECT_GE(monitor.stats().clusters_re_replicated, 1u);

  const SpanTracer& tracer = world.manager.telemetry().tracer();
  std::vector<std::string> names;
  for (size_t i = 0; i < tracer.completed_count(); ++i)
    names.push_back(tracer.completed(i).name);
  auto has = [&](const char* name) {
    for (const std::string& n : names)
      if (n == name) return true;
    return false;
  };
  // Swap-out phases.
  EXPECT_TRUE(has("swap_out"));
  EXPECT_TRUE(has("serialize"));
  EXPECT_TRUE(has("compress"));
  EXPECT_TRUE(has("ship"));
  EXPECT_TRUE(has("patch"));
  // Swap-in phases (demand and speculative hit the same code path).
  EXPECT_TRUE(has("swap_in"));
  EXPECT_TRUE(has("fetch"));
  EXPECT_TRUE(has("decompress"));
  EXPECT_TRUE(has("materialize"));
  // Store RPCs and durability maintenance.
  EXPECT_TRUE(has("rpc:store"));
  EXPECT_TRUE(has("rpc:fetch"));
  EXPECT_TRUE(has("rpc_attempt"));
  EXPECT_TRUE(has("durability_poll"));
  EXPECT_TRUE(has("re_replicate"));

  // Demand and speculative swap-ins carry distinct categories.
  bool demand_seen = false, speculative_seen = false;
  uint64_t last_ts = 0;
  for (size_t i = 0; i < tracer.completed_count(); ++i) {
    const SpanTracer::CompletedSpan& span = tracer.completed(i);
    if (span.name == "swap_in") {
      if (span.category == "swap") demand_seen = true;
      if (span.category == "prefetch") speculative_seen = true;
    }
    last_ts = span.start_us;
  }
  EXPECT_TRUE(demand_seen);
  EXPECT_TRUE(speculative_seen);
  // The simulated radio advanced the clock, and spans carry it.
  EXPECT_GT(last_ts, 0u);

  // Latency histograms populated from the same virtual clock.
  const MetricsRegistry& metrics = world.manager.telemetry().metrics();
  const Histogram* swap_out_us = metrics.FindHistogram("swap_out_us");
  ASSERT_NE(swap_out_us, nullptr);
  EXPECT_EQ(swap_out_us->count(), 3u);
  EXPECT_GT(swap_out_us->max(), 0u);
  const Histogram* demand_us = metrics.FindHistogram("swap_in_demand_us");
  ASSERT_NE(demand_us, nullptr);
  EXPECT_EQ(demand_us->count(), 1u);
  const Histogram* prefetch_us = metrics.FindHistogram("swap_in_prefetch_us");
  ASSERT_NE(prefetch_us, nullptr);
  EXPECT_EQ(prefetch_us->count(), 1u);
  EXPECT_GT(metrics.FindCounter("rpc_calls")->value(), 0u);

  // The whole run exports as valid Chrome trace JSON.
  std::string trace = world.manager.telemetry().tracer().ToChromeTraceJson();
  EXPECT_TRUE(JsonChecker(trace).Valid());
  EXPECT_EQ(CountOccurrences(trace, "\"ph\":\"X\""),
            tracer.completed_count());

  // The workload still behaves: a full traversal faults cluster 2 back
  // in through the mediated path (sum of 0..29).
  EXPECT_EQ(*SumList(world.rt, "head"), 435);
}

TEST(TelemetryPipelineTest, StatsJsonIsByteIdenticalWithTelemetryOff) {
  auto run = [](bool telemetry_enabled) {
    MiddlewareWorld world(TwoReplicaOptions());
    world.manager.telemetry().set_enabled(telemetry_enabled);
    world.manager.AttachClock(&world.network.clock());
    world.client.AttachTelemetry(&world.manager.telemetry());
    const runtime::ClassInfo* node_cls = RegisterNodeClass(world.rt);
    world.AddStore(2, 1 << 20);
    world.AddStore(3, 1 << 20);
    auto clusters = BuildClusteredList(world.rt, world.manager, node_cls,
                                       20, 10, "head");
    OBISWAP_CHECK(world.manager.SwapOut(clusters[0]).ok());
    OBISWAP_CHECK(world.manager.SwapIn(clusters[0]).ok());
    OBISWAP_CHECK(world.manager.SwapOut(clusters[1]).ok());
    OBISWAP_CHECK(*SumList(world.rt, "head") == 190);
    return world.manager.StatsJson();
  };
  std::string with_telemetry = run(true);
  std::string without_telemetry = run(false);
  // Same keys, same order, same values: the registry rebuild of
  // StatsSnapshot must not leak telemetry state into the stats contract.
  EXPECT_EQ(with_telemetry, without_telemetry);
  EXPECT_TRUE(JsonChecker(with_telemetry).Valid());
  EXPECT_NE(with_telemetry.find("\"swap_outs\":2"), std::string::npos);
  EXPECT_NE(with_telemetry.find("\"proxies_created\":"), std::string::npos);
  EXPECT_NE(with_telemetry.find("\"payload_cache_entries\":"),
            std::string::npos);
  // The crash-consistency stats ride the same contract (zero without a
  // journal attached, but always present and ordered).
  EXPECT_NE(with_telemetry.find("\"recoveries\":0"), std::string::npos);
  EXPECT_NE(with_telemetry.find("\"recovery_us\":0"), std::string::npos);
  EXPECT_NE(with_telemetry.find("\"journal_append_us\":0"), std::string::npos);
  EXPECT_NE(with_telemetry.find("\"journal_bytes\":0"), std::string::npos);
}

TEST(TelemetryPipelineTest, SharedBundleCollectsManagerAndClientSpans) {
  // Benches share one externally owned bundle between the manager and the
  // store client so RPC spans land in the same trace as swap phases.
  Telemetry shared;
  MiddlewareWorld world;
  world.manager.AttachTelemetry(&shared);
  world.manager.AttachClock(&world.network.clock());
  world.client.AttachTelemetry(&shared);
  const runtime::ClassInfo* node_cls = RegisterNodeClass(world.rt);
  world.AddStore(2, 1 << 20);
  auto clusters = BuildClusteredList(world.rt, world.manager, node_cls,
                                     10, 10, "head");
  ASSERT_TRUE(world.manager.SwapOut(clusters[0]).ok());
  bool swap_span = false, rpc_span = false;
  for (size_t i = 0; i < shared.tracer().completed_count(); ++i) {
    const std::string& name = shared.tracer().completed(i).name;
    if (name == "swap_out") swap_span = true;
    if (name == "rpc:store") rpc_span = true;
  }
  EXPECT_TRUE(swap_span);
  EXPECT_TRUE(rpc_span);
  // The manager's own (replaced) bundle saw nothing.
  EXPECT_GT(shared.tracer().completed_count(), 0u);
}

TEST(TelemetryPipelineTest, PolicyActionsToggleTelemetryAndDumpTrace) {
  MiddlewareWorld world;
  world.manager.AttachClock(&world.network.clock());
  context::PropertyRegistry props;
  policy::PolicyEngine engine(world.bus, props);
  ASSERT_TRUE(
      policy::RegisterSwapActions(engine, world.rt, world.manager).ok());

  policy::PolicyRule off;
  off.name = "telemetry-off";
  off.on_event = "quiesce";
  off.action = "set-telemetry";
  off.params["enabled"] = "0";
  ASSERT_TRUE(engine.AddRule(std::move(off)).ok());

  const std::string trace_path = ::testing::TempDir() + "/policy_trace.json";
  policy::PolicyRule dump;
  dump.name = "trace-dump";
  dump.on_event = "post-mortem";
  dump.action = "dump-trace";
  dump.params["path"] = trace_path;
  ASSERT_TRUE(engine.AddRule(std::move(dump)).ok());

  EXPECT_TRUE(world.manager.telemetry().enabled());
  world.bus.Publish(context::Event("quiesce"));
  EXPECT_FALSE(world.manager.telemetry().enabled());

  world.bus.Publish(context::Event("post-mortem"));
  std::FILE* f = std::fopen(trace_path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0)
    contents.append(buffer, n);
  std::fclose(f);
  std::remove(trace_path.c_str());
  EXPECT_TRUE(JsonChecker(contents).Valid()) << contents;
  EXPECT_NE(contents.find("\"traceEvents\""), std::string::npos);
}

TEST(TelemetryPipelineTest, DisabledTelemetryJournalsAndTracesNothing) {
  MiddlewareWorld world;
  world.manager.telemetry().set_enabled(false);
  const runtime::ClassInfo* node_cls = RegisterNodeClass(world.rt);
  world.AddStore(2, 1 << 20);
  auto clusters = BuildClusteredList(world.rt, world.manager, node_cls,
                                     10, 10, "head");
  ASSERT_TRUE(world.manager.SwapOut(clusters[0]).ok());
  EXPECT_EQ(world.manager.telemetry().tracer().completed_count(), 0u);
  EXPECT_EQ(world.manager.telemetry().journal().size(), 0u);
}

}  // namespace
}  // namespace obiswap
