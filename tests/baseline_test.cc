// Tests for the comparison baselines: naive per-object surrogates and
// in-heap compression.
#include <gtest/gtest.h>

#include "test_support.h"

namespace obiswap::baseline {
namespace {

using runtime::LocalScope;
using runtime::Object;
using runtime::ObjectKind;
using runtime::Value;
using ::obiswap::testing::RegisterNodeClass;
using ::obiswap::testing::SumList;

// ------------------------------------------------------------- naive -----

class NaiveFixture : public ::testing::Test {
 protected:
  NaiveFixture()
      : network_(3),
        discovery_(network_),
        store_(DeviceId(2), 10 * 1024 * 1024),
        client_(network_, discovery_, DeviceId(1)),
        manager_(rt_) {
    network_.AddDevice(DeviceId(1));
    network_.AddDevice(DeviceId(2));
    network_.SetInRange(DeviceId(1), DeviceId(2), true);
    discovery_.Announce(&store_);
    manager_.AttachStore(&client_, &discovery_);
    node_cls_ = RegisterNodeClass(rt_);
  }

  /// Builds a list with the naive manager's universal mediation.
  std::vector<Object*> BuildList(int n) {
    LocalScope scope(rt_.heap());
    Object** head = scope.Add(nullptr);
    std::vector<Object*> nodes;
    for (int i = n - 1; i >= 0; --i) {
      Object* node = rt_.New(node_cls_);
      scope.Add(node);
      nodes.push_back(node);
      OBISWAP_CHECK(rt_.SetField(node, "value", Value::Int(i)).ok());
      if (*head != nullptr)
        OBISWAP_CHECK(rt_.SetField(node, "next", Value::Ref(*head)).ok());
      *head = node;
    }
    OBISWAP_CHECK(rt_.SetGlobal("head", Value::Ref(*head)).ok());
    return nodes;
  }

  net::Network network_;
  net::Discovery discovery_;
  net::StoreNode store_;
  net::StoreClient client_;
  runtime::Runtime rt_;
  NaiveProxyManager manager_;
  const runtime::ClassInfo* node_cls_ = nullptr;
};

TEST_F(NaiveFixture, EveryStoredReferenceGetsASurrogate) {
  BuildList(10);
  // One surrogate per referenced object: 9 next-links + the head global.
  EXPECT_EQ(manager_.stats().proxies_created, 10u);
  EXPECT_EQ(manager_.LiveProxyCount(), 10u);
}

TEST_F(NaiveFixture, SurrogatesReusedPerTarget) {
  LocalScope scope(rt_.heap());
  Object* a = rt_.New(node_cls_);
  Object* b = rt_.New(node_cls_);
  Object* target = rt_.New(node_cls_);
  scope.Add(a);
  scope.Add(b);
  scope.Add(target);
  ASSERT_TRUE(rt_.SetField(a, "next", Value::Ref(target)).ok());
  ASSERT_TRUE(rt_.SetField(b, "next", Value::Ref(target)).ok());
  EXPECT_EQ(rt_.GetFieldAt(a, 0).ref(), rt_.GetFieldAt(b, 0).ref());
  EXPECT_EQ(manager_.stats().proxies_created, 1u);
}

TEST_F(NaiveFixture, InvocationIsAlwaysMediated) {
  BuildList(5);
  Object* head = rt_.GetGlobal("head")->ref();
  ASSERT_EQ(head->kind(), ObjectKind::kSwapClusterProxy);
  auto sum = SumList(rt_, "head");
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, 10);
  // Every hop was an indirection (5 get_value + 5 next).
  EXPECT_GE(manager_.stats().mediated_invocations, 10u);
}

TEST_F(NaiveFixture, PerObjectSwapRoundTrips) {
  std::vector<Object*> nodes = BuildList(6);
  ASSERT_TRUE(manager_.SwapOutObjects(nodes).ok());
  EXPECT_EQ(manager_.stats().objects_swapped_out, 6u);
  // One store round trip *per object* — the cost the paper's clustered
  // design avoids.
  EXPECT_EQ(manager_.stats().store_round_trips, 6u);
  EXPECT_EQ(store_.entry_count(), 6u);
  rt_.heap().Collect();
  // Surrogates survive the swap ("the proxies would still remain").
  EXPECT_EQ(manager_.LiveProxyCount(), 6u);
  auto sum = SumList(rt_, "head");
  ASSERT_TRUE(sum.ok()) << sum.status().ToString();
  EXPECT_EQ(*sum, 15);
  EXPECT_EQ(manager_.stats().objects_swapped_in, 6u);
}

TEST_F(NaiveFixture, SwappedObjectsFreeHeapButProxiesRemain) {
  std::vector<Object*> nodes = BuildList(50);
  rt_.heap().Collect();
  size_t objects_before = rt_.heap().live_objects();
  ASSERT_TRUE(manager_.SwapOutObjects(nodes).ok());
  rt_.heap().Collect();
  // 50 payload objects freed, but 50 surrogates remain resident.
  EXPECT_EQ(rt_.heap().live_objects(), objects_before - 50);
  EXPECT_EQ(manager_.LiveProxyCount(), 50u);
}

TEST_F(NaiveFixture, SwapWithoutStoreFails) {
  std::vector<Object*> nodes = BuildList(2);
  NaiveProxyManager detached(rt_);  // no store attached
  EXPECT_EQ(detached.SwapOutObjects(nodes).code(),
            StatusCode::kFailedPrecondition);
}

// ------------------------------------------------------- compression -----

class CompressionFixture : public ::testing::Test {
 protected:
  CompressionFixture() : swapper_(rt_, "lz77") {
    node_cls_ = RegisterNodeClass(rt_);
  }

  void BuildList(int n, const std::string& name) {
    LocalScope scope(rt_.heap());
    Object** head = scope.Add(nullptr);
    for (int i = n - 1; i >= 0; --i) {
      Object* node = rt_.New(node_cls_);
      OBISWAP_CHECK(rt_.SetField(node, "value", Value::Int(i)).ok());
      if (*head != nullptr)
        OBISWAP_CHECK(rt_.SetField(node, "next", Value::Ref(*head)).ok());
      *head = node;
    }
    OBISWAP_CHECK(rt_.SetGlobal(name, Value::Ref(*head)).ok());
  }

  runtime::Runtime rt_;
  CompressionSwapper swapper_;
  const runtime::ClassInfo* node_cls_ = nullptr;
};

TEST_F(CompressionFixture, CompressShrinksHeapButNotToZero) {
  BuildList(200, "data");
  rt_.heap().Collect();
  size_t before = rt_.heap().used_bytes();
  auto compressed = swapper_.CompressGlobal("data");
  ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
  rt_.heap().Collect();
  size_t after = rt_.heap().used_bytes();
  EXPECT_LT(after, before / 2);  // substantial saving
  EXPECT_GT(after, 0u);          // but the pool still occupies the heap
  EXPECT_TRUE(swapper_.IsCompressed("data"));
  EXPECT_FALSE(rt_.HasGlobal("data"));
}

TEST_F(CompressionFixture, DecompressRestoresTheGraphExactly) {
  BuildList(100, "data");
  ASSERT_TRUE(swapper_.CompressGlobal("data").ok());
  rt_.heap().Collect();
  ASSERT_TRUE(swapper_.DecompressGlobal("data").ok());
  EXPECT_FALSE(swapper_.IsCompressed("data"));
  auto sum = SumList(rt_, "data");
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, 100 * 99 / 2);
}

TEST_F(CompressionFixture, RepeatedCycleIsStable) {
  BuildList(50, "data");
  for (int round = 0; round < 5; ++round) {
    ASSERT_TRUE(swapper_.CompressGlobal("data").ok()) << round;
    rt_.heap().Collect();
    ASSERT_TRUE(swapper_.DecompressGlobal("data").ok()) << round;
  }
  EXPECT_EQ(*SumList(rt_, "data"), 50 * 49 / 2);
  EXPECT_EQ(swapper_.stats().compressions, 5u);
  EXPECT_EQ(swapper_.stats().decompressions, 5u);
}

TEST_F(CompressionFixture, Errors) {
  EXPECT_FALSE(swapper_.CompressGlobal("missing").ok());
  ASSERT_TRUE(rt_.SetGlobal("number", Value::Int(3)).ok());
  EXPECT_FALSE(swapper_.CompressGlobal("number").ok());
  EXPECT_FALSE(swapper_.DecompressGlobal("missing").ok());
}

TEST_F(CompressionFixture, CompressionRatioIsReported) {
  BuildList(300, "data");
  ASSERT_TRUE(swapper_.CompressGlobal("data").ok());
  EXPECT_GT(swapper_.stats().original_bytes,
            3 * swapper_.stats().compressed_bytes)
      << "XML of a uniform list should compress > 3x";
}

}  // namespace
}  // namespace obiswap::baseline
