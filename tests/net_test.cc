// Tests for the simulated wireless neighbourhood: links, store nodes,
// discovery, and the XML web-service bridge.
#include <gtest/gtest.h>

#include "net/bridge.h"
#include "net/network.h"
#include "net/store_node.h"

namespace obiswap::net {
namespace {

constexpr DeviceId kPda(1);
constexpr DeviceId kStoreA(2);
constexpr DeviceId kStoreB(3);

class NetworkFixture : public ::testing::Test {
 protected:
  NetworkFixture() {
    network_.AddDevice(kPda);
    network_.AddDevice(kStoreA);
    network_.SetInRange(kPda, kStoreA, true);
  }
  Network network_;
};

// --------------------------------------------------------------- network --

TEST_F(NetworkFixture, TransferAdvancesVirtualTime) {
  uint64_t before = network_.clock().now_us();
  auto elapsed = network_.Transfer(kPda, kStoreA, 700'000 / 8);  // 1s payload
  ASSERT_TRUE(elapsed.ok());
  // latency (30ms) + 87500B * 8 / 700kbps = 30ms + 1s
  EXPECT_EQ(*elapsed, 30'000u + 1'000'000u);
  EXPECT_EQ(network_.clock().now_us(), before + *elapsed);
}

TEST_F(NetworkFixture, DefaultLinkIsPaperBluetooth) {
  LinkParams link = network_.GetLinkParams(kPda, kStoreA);
  EXPECT_DOUBLE_EQ(link.bandwidth_bps, 700'000.0);
}

TEST_F(NetworkFixture, OutOfRangeFails) {
  network_.AddDevice(kStoreB);
  auto result = network_.Transfer(kPda, kStoreB, 10);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST_F(NetworkFixture, OfflineDeviceFails) {
  network_.SetOnline(kStoreA, false);
  EXPECT_FALSE(network_.Transfer(kPda, kStoreA, 10).ok());
  network_.SetOnline(kStoreA, true);
  EXPECT_TRUE(network_.Transfer(kPda, kStoreA, 10).ok());
}

TEST_F(NetworkFixture, RangeIsSymmetric) {
  EXPECT_TRUE(network_.InRange(kStoreA, kPda));
  network_.SetInRange(kStoreA, kPda, false);
  EXPECT_FALSE(network_.InRange(kPda, kStoreA));
}

TEST_F(NetworkFixture, PerPairLinkOverride) {
  LinkParams fast;
  fast.bandwidth_bps = 7'000'000.0;
  fast.latency_us = 0;
  network_.SetLinkParams(kPda, kStoreA, fast);
  auto elapsed = network_.Transfer(kPda, kStoreA, 875);  // 1ms at 7Mbps
  ASSERT_TRUE(elapsed.ok());
  EXPECT_EQ(*elapsed, 1000u);
}

TEST_F(NetworkFixture, LossyLinkFailsSometimes) {
  LinkParams lossy;
  lossy.loss_rate = 0.5;
  network_.SetLinkParams(kPda, kStoreA, lossy);
  int failures = 0;
  for (int i = 0; i < 200; ++i) {
    if (!network_.Transfer(kPda, kStoreA, 1).ok()) ++failures;
  }
  EXPECT_GT(failures, 50);
  EXPECT_LT(failures, 150);
  EXPECT_EQ(network_.stats().transfer_failures,
            static_cast<uint64_t>(failures));
}

TEST_F(NetworkFixture, ReachableListsOnlineInRangeDevices) {
  network_.AddDevice(kStoreB);
  EXPECT_EQ(network_.Reachable(kPda).size(), 1u);
  network_.SetInRange(kPda, kStoreB, true);
  EXPECT_EQ(network_.Reachable(kPda).size(), 2u);
  network_.SetOnline(kStoreA, false);
  auto reachable = network_.Reachable(kPda);
  ASSERT_EQ(reachable.size(), 1u);
  EXPECT_EQ(reachable[0], kStoreB);
}

TEST_F(NetworkFixture, RemoveDeviceClearsLinks) {
  network_.RemoveDevice(kStoreA);
  EXPECT_FALSE(network_.HasDevice(kStoreA));
  EXPECT_FALSE(network_.InRange(kPda, kStoreA));
}

TEST_F(NetworkFixture, StatsAccumulate) {
  ASSERT_TRUE(network_.Transfer(kPda, kStoreA, 100).ok());
  ASSERT_TRUE(network_.Transfer(kStoreA, kPda, 50).ok());
  EXPECT_EQ(network_.stats().transfers, 2u);
  EXPECT_EQ(network_.stats().bytes_moved, 150u);
}

// ------------------------------------------------------------ store node --

TEST(StoreNodeTest, StoreFetchDrop) {
  StoreNode store(kStoreA, 1024);
  ASSERT_TRUE(store.Store(SwapKey(1), "<xml/>").ok());
  EXPECT_TRUE(store.Contains(SwapKey(1)));
  EXPECT_EQ(store.used_bytes(), 6u);
  auto fetched = store.Fetch(SwapKey(1));
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(*fetched, "<xml/>");
  ASSERT_TRUE(store.Drop(SwapKey(1)).ok());
  EXPECT_EQ(store.used_bytes(), 0u);
  EXPECT_FALSE(store.Contains(SwapKey(1)));
}

TEST(StoreNodeTest, DuplicateKeyRejected) {
  StoreNode store(kStoreA, 1024);
  ASSERT_TRUE(store.Store(SwapKey(1), "a").ok());
  EXPECT_EQ(store.Store(SwapKey(1), "b").code(), StatusCode::kAlreadyExists);
}

TEST(StoreNodeTest, CapacityEnforced) {
  StoreNode store(kStoreA, 10);
  EXPECT_TRUE(store.Store(SwapKey(1), "12345").ok());
  EXPECT_EQ(store.Store(SwapKey(2), "123456").code(),
            StatusCode::kResourceExhausted);
  EXPECT_TRUE(store.Store(SwapKey(2), "12345").ok());
  EXPECT_EQ(store.free_bytes(), 0u);
  EXPECT_EQ(store.stats().rejected_full, 1u);
}

TEST(StoreNodeTest, UnknownKeyErrors) {
  StoreNode store(kStoreA, 10);
  EXPECT_EQ(store.Fetch(SwapKey(9)).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Drop(SwapKey(9)).code(), StatusCode::kNotFound);
}

TEST(StoreNodeTest, KeysLists) {
  StoreNode store(kStoreA, 100);
  ASSERT_TRUE(store.Store(SwapKey(1), "a").ok());
  ASSERT_TRUE(store.Store(SwapKey(2), "b").ok());
  EXPECT_EQ(store.Keys().size(), 2u);
  EXPECT_EQ(store.entry_count(), 2u);
}

// ---------------------------------------------------------- bridge stack --

class BridgeFixture : public NetworkFixture {
 protected:
  BridgeFixture()
      : store_a_(kStoreA, 64 * 1024),
        store_b_(kStoreB, 64 * 1024),
        discovery_(network_),
        client_(network_, discovery_, kPda) {
    network_.AddDevice(kStoreB);
    discovery_.Announce(&store_a_);
  }

  StoreNode store_a_;
  StoreNode store_b_;
  Discovery discovery_;
  StoreClient client_;
};

TEST_F(BridgeFixture, StoreFetchDropThroughBridge) {
  std::string payload = "<swap-cluster id=\"2\">payload</swap-cluster>";
  ASSERT_TRUE(client_.Store(kStoreA, SwapKey(7), payload).ok());
  EXPECT_EQ(store_a_.entry_count(), 1u);
  auto fetched = client_.Fetch(kStoreA, SwapKey(7));
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(*fetched, payload);
  ASSERT_TRUE(client_.Drop(kStoreA, SwapKey(7)).ok());
  EXPECT_EQ(store_a_.entry_count(), 0u);
}

TEST_F(BridgeFixture, PayloadWithMarkupSurvivesEnvelope) {
  std::string payload = "<a x=\"1\">&amp; <b/> ]]></a>";
  ASSERT_TRUE(client_.Store(kStoreA, SwapKey(1), payload).ok());
  EXPECT_EQ(*client_.Fetch(kStoreA, SwapKey(1)), payload);
}

TEST_F(BridgeFixture, RemoteErrorsPropagateAsStatusCodes) {
  EXPECT_EQ(client_.Fetch(kStoreA, SwapKey(404)).status().code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(client_.Store(kStoreA, SwapKey(1), "x").ok());
  EXPECT_EQ(client_.Store(kStoreA, SwapKey(1), "y").code(),
            StatusCode::kAlreadyExists);
}

TEST_F(BridgeFixture, UnannouncedDeviceIsNotFound) {
  EXPECT_EQ(client_.Store(kStoreB, SwapKey(1), "x").code(),
            StatusCode::kNotFound);
}

TEST_F(BridgeFixture, OutOfRangeIsUnavailable) {
  discovery_.Announce(&store_b_);  // announced but not in range
  EXPECT_EQ(client_.Store(kStoreB, SwapKey(1), "x").code(),
            StatusCode::kUnavailable);
}

TEST_F(BridgeFixture, RetriesOvercomeLoss) {
  LinkParams lossy;
  lossy.loss_rate = 0.3;
  network_.SetLinkParams(kPda, kStoreA, lossy);
  int ok = 0;
  for (int i = 0; i < 50; ++i) {
    if (client_.Store(kStoreA, SwapKey(100 + i), "data").ok()) ++ok;
  }
  // 3 attempts at 30% loss per direction: >90% success expected.
  EXPECT_GT(ok, 40);
  EXPECT_GT(client_.stats().retries, 0u);
}

TEST_F(BridgeFixture, CallsCostTwoTransfers) {
  uint64_t before = network_.stats().transfers;
  ASSERT_TRUE(client_.Store(kStoreA, SwapKey(1), "x").ok());
  EXPECT_EQ(network_.stats().transfers, before + 2);
}

TEST_F(BridgeFixture, ServiceRejectsMalformedRequests) {
  StoreService* service = discovery_.ServiceFor(kStoreA);
  ASSERT_NE(service, nullptr);
  EXPECT_NE(service->Handle("not xml").find("INVALID_ARGUMENT"),
            std::string::npos);
  EXPECT_NE(service->Handle("<request/>").find("INVALID_ARGUMENT"),
            std::string::npos);
  EXPECT_NE(service->Handle("<request op=\"zap\" key=\"1\"/>")
                .find("INVALID_ARGUMENT"),
            std::string::npos);
  EXPECT_NE(service->Handle("<request op=\"store\" key=\"1\"/>")
                .find("missing payload"),
            std::string::npos);
}

// ------------------------------------------------------------- discovery --

TEST_F(BridgeFixture, NearbyStoresFiltersByRangeAndCapacity) {
  discovery_.Announce(&store_b_);
  EXPECT_EQ(discovery_.NearbyStores(kPda).size(), 1u);  // B out of range
  network_.SetInRange(kPda, kStoreB, true);
  EXPECT_EQ(discovery_.NearbyStores(kPda).size(), 2u);
  // Capacity filter.
  EXPECT_EQ(discovery_.NearbyStores(kPda, 128 * 1024).size(), 0u);
  // Fill A: B (more free) should sort first.
  ASSERT_TRUE(store_a_.Store(SwapKey(1), std::string(1000, 'x')).ok());
  auto stores = discovery_.NearbyStores(kPda);
  ASSERT_EQ(stores.size(), 2u);
  EXPECT_EQ(stores[0]->device(), kStoreB);
}

TEST_F(BridgeFixture, WithdrawRemovesStore) {
  discovery_.Withdraw(kStoreA);
  EXPECT_TRUE(discovery_.NearbyStores(kPda).empty());
  EXPECT_EQ(discovery_.ServiceFor(kStoreA), nullptr);
}

TEST_F(BridgeFixture, OfflineStoreDisappearsFromDiscovery) {
  network_.SetOnline(kStoreA, false);
  EXPECT_TRUE(discovery_.NearbyStores(kPda).empty());
}

}  // namespace
}  // namespace obiswap::net
