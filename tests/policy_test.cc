// Tests for the policy engine: expressions, rules, XML loading, standard
// actions driving the swapping layer.
#include <gtest/gtest.h>

#include "test_support.h"

namespace obiswap::policy {
namespace {

using ::obiswap::testing::BuildClusteredList;
using ::obiswap::testing::MiddlewareWorld;
using ::obiswap::testing::RegisterNodeClass;

// ----------------------------------------------------------- expressions --

class ExprFixture : public ::testing::Test {
 protected:
  ExprFixture() {
    props_.SetReal("mem.used_ratio", 0.9);
    props_.SetInt("net.nearby_stores", 2);
    props_.SetInt("zero", 0);
  }

  double Eval(const std::string& text) {
    auto expr = ParseExpr(text);
    OBISWAP_CHECK(expr.ok());
    auto value = (*expr)->Eval(props_);
    OBISWAP_CHECK(value.ok());
    return *value;
  }

  context::PropertyRegistry props_;
};

TEST_F(ExprFixture, Arithmetic) {
  EXPECT_DOUBLE_EQ(Eval("1 + 2 * 3"), 7.0);
  EXPECT_DOUBLE_EQ(Eval("(1 + 2) * 3"), 9.0);
  EXPECT_DOUBLE_EQ(Eval("10 / 4"), 2.5);
  EXPECT_DOUBLE_EQ(Eval("-3 + 1"), -2.0);
  EXPECT_DOUBLE_EQ(Eval("2 - 3 - 4"), -5.0);  // left associative
}

TEST_F(ExprFixture, Comparisons) {
  EXPECT_DOUBLE_EQ(Eval("1 < 2"), 1.0);
  EXPECT_DOUBLE_EQ(Eval("2 <= 2"), 1.0);
  EXPECT_DOUBLE_EQ(Eval("3 > 4"), 0.0);
  EXPECT_DOUBLE_EQ(Eval("4 >= 5"), 0.0);
  EXPECT_DOUBLE_EQ(Eval("1 == 1"), 1.0);
  EXPECT_DOUBLE_EQ(Eval("1 != 1"), 0.0);
}

TEST_F(ExprFixture, WordAliasesMatchSymbols) {
  EXPECT_DOUBLE_EQ(Eval("1 lt 2"), Eval("1 < 2"));
  EXPECT_DOUBLE_EQ(Eval("2 le 2"), Eval("2 <= 2"));
  EXPECT_DOUBLE_EQ(Eval("3 gt 4"), Eval("3 > 4"));
  EXPECT_DOUBLE_EQ(Eval("4 ge 5"), Eval("4 >= 5"));
  EXPECT_DOUBLE_EQ(Eval("1 eq 1"), Eval("1 == 1"));
  EXPECT_DOUBLE_EQ(Eval("1 ne 1"), Eval("1 != 1"));
}

TEST_F(ExprFixture, Logic) {
  EXPECT_DOUBLE_EQ(Eval("1 and 1"), 1.0);
  EXPECT_DOUBLE_EQ(Eval("1 and 0"), 0.0);
  EXPECT_DOUBLE_EQ(Eval("0 or 1"), 1.0);
  EXPECT_DOUBLE_EQ(Eval("not 0"), 1.0);
  EXPECT_DOUBLE_EQ(Eval("not 3"), 0.0);
  // Precedence: comparison binds tighter than and/or.
  EXPECT_DOUBLE_EQ(Eval("1 < 2 and 3 < 4"), 1.0);
  EXPECT_DOUBLE_EQ(Eval("1 > 2 or 3 < 4"), 1.0);
}

TEST_F(ExprFixture, ShortCircuitSkipsErrors) {
  // "zero != 0 and missing > 1" would fail on `missing`, but the left side
  // is false so the right side never evaluates.
  EXPECT_DOUBLE_EQ(Eval("zero != 0 and missing_prop > 1"), 0.0);
  EXPECT_DOUBLE_EQ(Eval("1 == 1 or missing_prop > 1"), 1.0);
}

TEST_F(ExprFixture, PropertiesResolve) {
  EXPECT_DOUBLE_EQ(Eval("mem.used_ratio ge 0.85"), 1.0);
  EXPECT_DOUBLE_EQ(Eval("net.nearby_stores gt 0 and mem.used_ratio lt 1"),
                   1.0);
}

TEST_F(ExprFixture, UnknownPropertyErrors) {
  auto expr = ParseExpr("missing_prop > 1");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->Eval(props_).status().code(), StatusCode::kNotFound);
}

TEST_F(ExprFixture, ParseErrors) {
  EXPECT_FALSE(ParseExpr("").ok());
  EXPECT_FALSE(ParseExpr("1 +").ok());
  EXPECT_FALSE(ParseExpr("(1").ok());
  EXPECT_FALSE(ParseExpr("1 = 2").ok());
  EXPECT_FALSE(ParseExpr("1 ? 2").ok());
  EXPECT_FALSE(ParseExpr("1 2").ok());
}

TEST_F(ExprFixture, DivisionByZeroIsAnEvalError) {
  auto expr = ParseExpr("1 / zero");
  ASSERT_TRUE(expr.ok());
  EXPECT_FALSE((*expr)->Eval(props_).ok());
}

TEST_F(ExprFixture, EvalConditionConvenience) {
  EXPECT_TRUE(*EvalCondition("mem.used_ratio > 0.5", props_));
  EXPECT_FALSE(*EvalCondition("mem.used_ratio > 0.95", props_));
}

// ---------------------------------------------------------------- engine --

class EngineFixture : public ::testing::Test {
 protected:
  EngineFixture() : engine_(bus_, props_) {
    OBISWAP_CHECK(engine_
                      .RegisterAction("count",
                                      [this](const context::Event&,
                                             const ActionParams& params) {
                                        ++fired_;
                                        last_params_ = params;
                                        return OkStatus();
                                      })
                      .ok());
    OBISWAP_CHECK(engine_
                      .RegisterAction("fail",
                                      [](const context::Event&,
                                         const ActionParams&) {
                                        return InternalError("boom");
                                      })
                      .ok());
  }

  PolicyRule Rule(const std::string& name, const std::string& on,
                  const std::string& when, const std::string& action) {
    PolicyRule rule;
    rule.name = name;
    rule.on_event = on;
    rule.action = action;
    if (!when.empty()) {
      rule.condition_text = when;
      rule.condition = std::move(ParseExpr(when)).value();
    }
    return rule;
  }

  context::EventBus bus_;
  context::PropertyRegistry props_;
  PolicyEngine engine_;
  int fired_ = 0;
  ActionParams last_params_;
};

TEST_F(EngineFixture, UnconditionalRuleFiresOnItsEvent) {
  ASSERT_TRUE(engine_.AddRule(Rule("r", "tick", "", "count")).ok());
  bus_.Publish(context::Event("tick"));
  bus_.Publish(context::Event("tock"));
  EXPECT_EQ(fired_, 1);
  EXPECT_EQ(engine_.stats().actions_fired, 1u);
}

TEST_F(EngineFixture, ConditionGatesAction) {
  props_.SetInt("load", 1);
  ASSERT_TRUE(engine_.AddRule(Rule("r", "tick", "load > 5", "count")).ok());
  bus_.Publish(context::Event("tick"));
  EXPECT_EQ(fired_, 0);
  EXPECT_EQ(engine_.stats().conditions_false, 1u);
  props_.SetInt("load", 9);
  bus_.Publish(context::Event("tick"));
  EXPECT_EQ(fired_, 1);
}

TEST_F(EngineFixture, ConditionErrorIsCountedNotFatal) {
  ASSERT_TRUE(engine_.AddRule(Rule("r", "tick", "ghost > 1", "count")).ok());
  bus_.Publish(context::Event("tick"));
  EXPECT_EQ(fired_, 0);
  EXPECT_EQ(engine_.stats().condition_errors, 1u);
}

TEST_F(EngineFixture, ActionFailureCounted) {
  ASSERT_TRUE(engine_.AddRule(Rule("r", "tick", "", "fail")).ok());
  bus_.Publish(context::Event("tick"));
  EXPECT_EQ(engine_.stats().action_failures, 1u);
}

TEST_F(EngineFixture, UnknownActionRejectedAtAddTime) {
  EXPECT_EQ(engine_.AddRule(Rule("r", "tick", "", "ghost-action")).code(),
            StatusCode::kNotFound);
}

TEST_F(EngineFixture, PriorityOrdersExecution) {
  std::vector<std::string> order;
  ASSERT_TRUE(engine_
                  .RegisterAction("a",
                                  [&](const context::Event&,
                                      const ActionParams&) {
                                    order.push_back("a");
                                    return OkStatus();
                                  })
                  .ok());
  ASSERT_TRUE(engine_
                  .RegisterAction("b",
                                  [&](const context::Event&,
                                      const ActionParams&) {
                                    order.push_back("b");
                                    return OkStatus();
                                  })
                  .ok());
  PolicyRule low = Rule("low", "tick", "", "a");
  low.priority = 1;
  PolicyRule high = Rule("high", "tick", "", "b");
  high.priority = 10;
  ASSERT_TRUE(engine_.AddRule(std::move(low)).ok());
  ASSERT_TRUE(engine_.AddRule(std::move(high)).ok());
  bus_.Publish(context::Event("tick"));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "b");
  EXPECT_EQ(order[1], "a");
}

TEST_F(EngineFixture, LoadsPoliciesFromXml) {
  const char* xml = R"(
    <policies>
      <policy name="one" on="tick" priority="5"
              when="mem.used_ratio ge 0.5">
        <action name="count">
          <param name="mode" value="gentle"/>
        </action>
      </policy>
      <policy name="two" on="tock">
        <action name="count"/>
      </policy>
    </policies>)";
  auto added = engine_.LoadXml(xml);
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  EXPECT_EQ(*added, 2u);
  props_.SetReal("mem.used_ratio", 0.9);
  bus_.Publish(context::Event("tick"));
  EXPECT_EQ(fired_, 1);
  EXPECT_EQ(last_params_.at("mode"), "gentle");
  bus_.Publish(context::Event("tock"));
  EXPECT_EQ(fired_, 2);
}

TEST_F(EngineFixture, XmlErrorsRejected) {
  EXPECT_FALSE(engine_.LoadXml("<wrong/>").ok());
  EXPECT_FALSE(engine_.LoadXml("<policies><policy/></policies>").ok());
  EXPECT_FALSE(engine_
                   .LoadXml("<policies><policy name=\"x\" on=\"t\">"
                            "</policy></policies>")
                   .ok());
  EXPECT_FALSE(engine_
                   .LoadXml("<policies><policy name=\"x\" on=\"t\" "
                            "when=\"1 +\"><action name=\"count\"/>"
                            "</policy></policies>")
                   .ok());
}

// ------------------------------------------- standard actions integration --

TEST(PolicyIntegrationTest, MemoryPressurePolicyDrivesSwapOut) {
  MiddlewareWorld world{swap::SwappingManager::Options(),
                        /*heap_capacity=*/200 * 1024};
  const runtime::ClassInfo* node_cls = RegisterNodeClass(world.rt);
  world.AddStore(2, 10 * 1024 * 1024);

  context::PropertyRegistry props;
  context::MemoryMonitor memory(world.rt.heap(), world.bus, props, 0.40,
                                0.30);
  PolicyEngine engine(world.bus, props);
  ASSERT_TRUE(RegisterSwapActions(engine, world.rt, world.manager).ok());
  auto added = engine.LoadXml(R"(
    <policies>
      <policy name="relieve-pressure" on="memory-pressure"
              when="net.nearby_stores gt 0">
        <action name="swap-out-victim"/>
      </policy>
    </policies>)");
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  props.SetInt("net.nearby_stores", 1);

  BuildClusteredList(world.rt, world.manager, node_cls, 400, 50, "head");
  memory.Poll();  // crosses the pressure threshold -> policy fires
  EXPECT_GT(engine.stats().actions_fired, 0u);
  EXPECT_GT(world.manager.stats().swap_outs, 0u);
  auto sum = ::obiswap::testing::SumList(world.rt, "head");
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, 400 * 399 / 2);
}

TEST(PolicyIntegrationTest, ExplicitSwapActionsWork) {
  MiddlewareWorld world;
  const runtime::ClassInfo* node_cls = RegisterNodeClass(world.rt);
  world.AddStore(2, 10 * 1024 * 1024);
  context::PropertyRegistry props;
  PolicyEngine engine(world.bus, props);
  ASSERT_TRUE(RegisterSwapActions(engine, world.rt, world.manager).ok());
  auto clusters =
      BuildClusteredList(world.rt, world.manager, node_cls, 10, 5, "head");
  std::string cluster_str = clusters[0].ToString();
  auto added = engine.LoadXml(
      "<policies><policy name=\"evict\" on=\"app-idle\">"
      "<action name=\"swap-out\"><param name=\"cluster\" value=\"" +
      cluster_str +
      "\"/></action></policy></policies>");
  ASSERT_TRUE(added.ok());
  world.bus.Publish(context::Event("app-idle"));
  EXPECT_EQ(world.manager.StateOf(clusters[0]), swap::SwapState::kSwapped);
}

TEST(PolicyIntegrationTest, SwapCacheBytesAction) {
  MiddlewareWorld world;
  context::PropertyRegistry props;
  PolicyEngine engine(world.bus, props);
  ASSERT_TRUE(RegisterSwapActions(engine, world.rt, world.manager).ok());
  ASSERT_EQ(world.manager.payload_cache().budget_bytes(), 0u);
  auto added = engine.LoadXml(R"(
    <policies>
      <policy name="warm-cache" on="app-idle">
        <action name="set-swap-cache-bytes">
          <param name="bytes" value="262144"/>
        </action>
      </policy>
    </policies>)");
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  world.bus.Publish(context::Event("app-idle"));
  EXPECT_EQ(world.manager.payload_cache().budget_bytes(), 262144u);
  EXPECT_EQ(world.manager.options().swap_in_cache_bytes, 262144u);
}

TEST(PolicyIntegrationTest, ReplicationClusterSizeAction) {
  runtime::Runtime server_rt(9);
  replication::ReplicationServer server(server_rt, 4);
  context::EventBus bus;
  context::PropertyRegistry props;
  PolicyEngine engine(bus, props);
  ASSERT_TRUE(RegisterReplicationActions(engine, server).ok());
  auto added = engine.LoadXml(R"(
    <policies>
      <policy name="bigger-grain" on="connectivity-changed"
              when="net.nearby_free_bytes gt 1000000">
        <action name="set-replication-cluster-size">
          <param name="size" value="64"/>
        </action>
      </policy>
    </policies>)");
  ASSERT_TRUE(added.ok());
  props.SetInt("net.nearby_free_bytes", 5'000'000);
  bus.Publish(context::Event(context::kEventConnectivityChanged));
  EXPECT_EQ(server.cluster_size(), 64u);
}

TEST(PolicyIntegrationTest, InjectFaultActionArmsTheInjector) {
  MiddlewareWorld world;
  const runtime::ClassInfo* node_cls = RegisterNodeClass(world.rt);
  world.AddStore(2, 10 * 1024 * 1024);
  swap::FaultInjector faults;
  world.manager.AttachFaultInjector(&faults);
  context::PropertyRegistry props;
  PolicyEngine engine(world.bus, props);
  ASSERT_TRUE(RegisterSwapActions(engine, world.rt, world.manager).ok());
  auto clusters =
      BuildClusteredList(world.rt, world.manager, node_cls, 10, 5, "head");
  auto added = engine.LoadXml(R"(
    <policies>
      <policy name="chaos-drill" on="chaos-drill">
        <action name="inject-fault">
          <param name="point" value="swap_out.ship_replica"/>
          <param name="kind" value="error"/>
          <param name="nth" value="1"/>
        </action>
      </policy>
    </policies>)");
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  ASSERT_EQ(faults.pending_scripts(), 0u);
  world.bus.Publish(context::Event("chaos-drill"));
  ASSERT_EQ(faults.pending_scripts(), 1u);

  // The armed one-shot fault fails the next swap-out through its normal
  // error path; the one after succeeds.
  EXPECT_FALSE(world.manager.SwapOut(clusters[0]).ok());
  EXPECT_EQ(faults.stats().errors, 1u);
  EXPECT_EQ(faults.pending_scripts(), 0u);
  EXPECT_TRUE(world.manager.SwapOut(clusters[0]).ok());
}

TEST(PolicyIntegrationTest, InjectFaultActionValidatesItsParams) {
  MiddlewareWorld world;
  context::PropertyRegistry props;
  PolicyEngine engine(world.bus, props);
  ASSERT_TRUE(RegisterSwapActions(engine, world.rt, world.manager).ok());
  // No injector attached: the action registers but refuses to fire.
  auto added = engine.LoadXml(R"(
    <policies>
      <policy name="no-injector" on="chaos-drill">
        <action name="inject-fault">
          <param name="point" value="swap_out.serialize"/>
          <param name="kind" value="crash"/>
        </action>
      </policy>
    </policies>)");
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  world.bus.Publish(context::Event("chaos-drill"));
  EXPECT_GT(engine.stats().action_failures, 0u);

  swap::FaultInjector faults;
  world.manager.AttachFaultInjector(&faults);
  auto bad_kind = engine.LoadXml(R"(
    <policies>
      <policy name="bad-kind" on="bad-kind">
        <action name="inject-fault">
          <param name="point" value="swap_out.serialize"/>
          <param name="kind" value="explode"/>
        </action>
      </policy>
    </policies>)");
  ASSERT_TRUE(bad_kind.ok());
  uint64_t failures = engine.stats().action_failures;
  world.bus.Publish(context::Event("bad-kind"));
  EXPECT_GT(engine.stats().action_failures, failures);
  EXPECT_EQ(faults.pending_scripts(), 0u);
}

}  // namespace
}  // namespace obiswap::policy
