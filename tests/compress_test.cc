// Tests for the compression codecs and the self-describing frame format.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "compress/codec.h"

namespace obiswap::compress {
namespace {

std::string RandomBytes(Rng& rng, size_t n) {
  std::string out(n, '\0');
  for (char& c : out) c = static_cast<char>(rng.NextBelow(256));
  return out;
}

std::string CompressibleText(Rng& rng, size_t n) {
  // Repetitive XML-ish text, similar to swapped payloads.
  static const char* kWords[] = {"<object ", "class=\"Node\"", "<f n=\"next\"",
                                 "</object>", "payload", "0123456789"};
  std::string out;
  while (out.size() < n) out += kWords[rng.NextBelow(6)];
  out.resize(n);
  return out;
}

// Compress is fallible (oversized inputs are rejected); everything in these
// tests is far below any limit, so unwrap.
std::string MustCompress(const Codec& codec, std::string_view input) {
  auto compressed = codec.Compress(input);
  EXPECT_TRUE(compressed.ok()) << compressed.status().ToString();
  return std::move(*compressed);
}

std::string MustFrame(const Codec& codec, std::string_view payload) {
  auto frame = FrameCompress(codec, payload);
  EXPECT_TRUE(frame.ok()) << frame.status().ToString();
  return std::move(*frame);
}

class CodecTest : public ::testing::TestWithParam<const char*> {
 protected:
  const Codec& codec() const { return *FindCodec(GetParam()); }
};

TEST_P(CodecTest, EmptyInputRoundTrips) {
  auto decoded = codec().Decompress(MustCompress(codec(), ""));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, "");
}

TEST_P(CodecTest, SingleByteRoundTrips) {
  auto decoded = codec().Decompress(MustCompress(codec(), "x"));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, "x");
}

TEST_P(CodecTest, BinaryDataRoundTrips) {
  Rng rng(42);
  for (size_t n : {16u, 1000u, 65536u}) {
    std::string data = RandomBytes(rng, n);
    auto decoded = codec().Decompress(MustCompress(codec(), data));
    ASSERT_TRUE(decoded.ok()) << codec().name() << " n=" << n;
    EXPECT_EQ(*decoded, data);
  }
}

TEST_P(CodecTest, RepetitiveTextRoundTrips) {
  Rng rng(7);
  std::string data = CompressibleText(rng, 50000);
  auto decoded = codec().Decompress(MustCompress(codec(), data));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, data);
}

TEST_P(CodecTest, EmbeddedNulsSurvive) {
  std::string data("a\0b\0\0c", 6);
  auto decoded = codec().Decompress(MustCompress(codec(), data));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, data);
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecTest,
                         ::testing::Values("identity", "rle", "lz77"));

TEST(RleTest, LongRunsShrink) {
  RleCodec rle;
  std::string runs(10000, 'a');
  EXPECT_LT(MustCompress(rle, runs).size(), 20u);
}

TEST(RleTest, TruncatedStreamFails) {
  RleCodec rle;
  std::string compressed = MustCompress(rle, "aaaabbbb");
  compressed.resize(compressed.size() - 1);
  EXPECT_FALSE(rle.Decompress(compressed).ok());
}

TEST(Lz77Test, RepetitiveTextCompressesWell) {
  Rng rng(3);
  Lz77Codec lz;
  std::string data = CompressibleText(rng, 100000);
  std::string compressed = MustCompress(lz, data);
  EXPECT_LT(compressed.size(), data.size() / 3)
      << "expected >3x on repetitive XML-ish text, got "
      << data.size() / static_cast<double>(compressed.size()) << "x";
}

TEST(Lz77Test, RandomDataExpandsOnlySlightly) {
  Rng rng(5);
  Lz77Codec lz;
  std::string data = RandomBytes(rng, 10000);
  std::string compressed = MustCompress(lz, data);
  EXPECT_LT(compressed.size(), data.size() + 64);
}

TEST(Lz77Test, CorruptTokenTagFails) {
  Lz77Codec lz;
  Rng rng(9);
  std::string compressed = MustCompress(lz, CompressibleText(rng, 2000));
  // Flip a byte somewhere past the header.
  compressed[compressed.size() / 2] = '\x7E';
  auto decoded = lz.Decompress(compressed);
  // Either a decode error or (rarely) wrong output caught by frame checksum;
  // here we only require no crash and no silent success with equal bytes.
  if (decoded.ok()) {
    EXPECT_NE(*decoded, CompressibleText(rng, 2000));
  }
}

TEST(Lz77Test, RejectsInputsThatWouldTruncatePositions) {
  // The match finder's hash chains index positions as int32_t; an input of
  // 2 GiB or more would truncate positions and corrupt matches. Allocating
  // 2 GiB in a unit test is not practical, so fake the size: a string_view
  // with a huge length over a tiny buffer. The guard must fire on size()
  // alone, before any byte of the data is dereferenced.
  std::string small = "tiny";
  std::string_view fake(small.data(), size_t{0x80000001});
  Lz77Codec lz;
  auto compressed = lz.Compress(fake);
  ASSERT_FALSE(compressed.ok());
  EXPECT_EQ(compressed.status().code(), StatusCode::kInvalidArgument);
  // Exactly INT32_MAX bytes is still addressable; one past is not. (Only
  // checked via the boundary math here — the error message names the cap.)
  EXPECT_NE(compressed.status().ToString().find("lz77"), std::string::npos);
}

TEST(Lz77Test, MatchAtMaxDistance) {
  // Pattern, 32 KiB of noise-free filler, then the pattern again.
  std::string data = "HELLOWORLDHELLO";
  data += std::string(32 * 1024 - 10, 'x');
  data += "HELLOWORLDHELLO";
  Lz77Codec lz;
  auto decoded = lz.Decompress(MustCompress(lz, data));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, data);
}

TEST(Lz77Test, OverlappingMatchDecodes) {
  // "abcabcabc..." produces matches with distance < length (overlap copy).
  std::string data;
  for (int i = 0; i < 1000; ++i) data += "abc";
  Lz77Codec lz;
  auto decoded = lz.Decompress(MustCompress(lz, data));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, data);
}

// ----------------------------------------------------------------- frame --

TEST(FrameTest, RoundTripsEveryCodec) {
  Rng rng(21);
  std::string payload = CompressibleText(rng, 5000);
  for (const std::string& name : CodecNames()) {
    std::string frame = MustFrame(*FindCodec(name), payload);
    auto decoded = FrameDecompress(frame);
    ASSERT_TRUE(decoded.ok()) << name << ": " << decoded.status().ToString();
    EXPECT_EQ(*decoded, payload);
  }
}

TEST(FrameTest, DetectsCorruption) {
  std::string frame = MustFrame(*FindCodec("lz77"), "some payload data");
  // Corrupt the compressed body (last byte).
  frame.back() = static_cast<char>(frame.back() ^ 0x55);
  EXPECT_FALSE(FrameDecompress(frame).ok());
}

TEST(FrameTest, DetectsBadMagic) {
  std::string frame = MustFrame(*FindCodec("identity"), "x");
  frame[0] = 'Z';
  auto result = FrameDecompress(frame);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST(FrameTest, DetectsUnknownCodec) {
  // Hand-build a frame naming a codec that does not exist.
  std::string frame = MustFrame(*FindCodec("identity"), "x");
  // "identity" begins right after magic + 1-byte varint length (8).
  frame[5] = 'X';
  EXPECT_FALSE(FrameDecompress(frame).ok());
}

TEST(FrameTest, TruncatedFrameFails) {
  std::string frame = MustFrame(*FindCodec("rle"), "aaaa");
  for (size_t cut : {0u, 3u, 6u, 10u}) {
    if (cut >= frame.size()) continue;
    EXPECT_FALSE(FrameDecompress(frame.substr(0, cut)).ok()) << cut;
  }
}

// ------------------------------------------------------------------ fuzz --
//
// Deterministic-RNG fuzzing: every codec (raw and framed) must round-trip
// a spread of corpora, and a damaged frame must either fail cleanly or —
// never — succeed with bytes that differ from the original. Truncation and
// bit-flips go through the frame layer because the identity codec happily
// "round-trips" a truncated raw stream; the frame checksum is what makes
// damage detectable for every codec uniformly.

std::vector<std::string> FuzzCorpora() {
  Rng rng(1234);
  std::vector<std::string> corpora;
  corpora.push_back("");                          // empty
  corpora.push_back("x");                         // single byte
  corpora.push_back(std::string(300, 'q'));       // one long run
  corpora.push_back(RandomBytes(rng, 257));       // incompressible
  corpora.push_back(CompressibleText(rng, 600));  // XML-like
  return corpora;
}

TEST_P(CodecTest, FuzzCorporaRoundTripRawAndFramed) {
  for (const std::string& data : FuzzCorpora()) {
    auto raw = codec().Decompress(MustCompress(codec(), data));
    ASSERT_TRUE(raw.ok()) << codec().name() << " n=" << data.size();
    EXPECT_EQ(*raw, data);
    auto framed = FrameDecompress(MustFrame(codec(), data));
    ASSERT_TRUE(framed.ok()) << codec().name() << " n=" << data.size();
    EXPECT_EQ(*framed, data);
  }
}

TEST_P(CodecTest, FrameTruncationAtEveryPrefixFails) {
  for (const std::string& data : FuzzCorpora()) {
    std::string frame = MustFrame(codec(), data);
    for (size_t cut = 0; cut < frame.size(); ++cut) {
      EXPECT_FALSE(FrameDecompress(frame.substr(0, cut)).ok())
          << codec().name() << " n=" << data.size() << " cut=" << cut;
    }
  }
}

TEST_P(CodecTest, FrameSingleBitFlipNeverYieldsWrongBytes) {
  for (const std::string& data : FuzzCorpora()) {
    std::string frame = MustFrame(codec(), data);
    for (size_t byte = 0; byte < frame.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string damaged = frame;
        damaged[byte] = static_cast<char>(damaged[byte] ^ (1 << bit));
        auto decoded = FrameDecompress(damaged);
        // Almost every flip is a clean error. A flip may legitimately
        // decode (e.g. a body flip the codec maps back to the same bytes,
        // so the checksum passes) — but it must never silently produce
        // *different* bytes.
        if (decoded.ok()) {
          EXPECT_EQ(*decoded, data)
              << codec().name() << " n=" << data.size() << " byte=" << byte
              << " bit=" << bit;
        }
      }
    }
  }
}

TEST(CodecRegistryTest, FindCodec) {
  EXPECT_NE(FindCodec("lz77"), nullptr);
  EXPECT_NE(FindCodec("rle"), nullptr);
  EXPECT_NE(FindCodec("identity"), nullptr);
  EXPECT_EQ(FindCodec("zstd"), nullptr);
  EXPECT_EQ(CodecNames().size(), 3u);
}

}  // namespace
}  // namespace obiswap::compress
