// Tests for XML class schemas (the paper's class-file shipping role).
#include <gtest/gtest.h>

#include "serialization/schema_xml.h"
#include "swap/manager.h"
#include "xml/parser.h"

namespace obiswap::serialization {
namespace {

using runtime::Object;
using runtime::Runtime;
using runtime::Value;
using runtime::ValueKind;

const char* kSchema = R"(
  <classes>
    <class name="Node" payload="64">
      <field name="next" type="ref"/>
      <field name="value" type="int"/>
      <field name="tag"/>
      <method name="get_value"/>
    </class>
    <class name="Blob">
      <field name="bytes" type="str"/>
      <field name="weight" type="real"/>
    </class>
  </classes>)";

NativeMethods Methods() {
  NativeMethods methods;
  methods["Node.get_value"] = [](Runtime& rt, Object* self,
                                 std::vector<Value>&) {
    return Result<Value>(rt.GetFieldAt(self, 1));
  };
  return methods;
}

TEST(SchemaXmlTest, LoadsClassesWithFieldsAndMethods) {
  Runtime rt;
  NativeMethods methods = Methods();
  auto count = LoadClassesXml(rt, kSchema, &methods);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, 2u);

  const runtime::ClassInfo* node = rt.types().Find("Node");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->payload_bytes(), 64u);
  EXPECT_EQ(node->fields().size(), 3u);
  EXPECT_EQ(node->fields()[0].kind, ValueKind::kRef);
  EXPECT_EQ(node->fields()[1].kind, ValueKind::kInt);
  EXPECT_EQ(node->fields()[2].kind, ValueKind::kNil);  // "any"

  runtime::LocalScope scope(rt.heap());
  Object* obj = rt.New(node);
  scope.Add(obj);
  ASSERT_TRUE(rt.SetField(obj, "value", Value::Int(7)).ok());
  EXPECT_EQ(rt.Invoke(obj, "get_value")->as_int(), 7);
}

TEST(SchemaXmlTest, MissingNativeMethodRejected) {
  Runtime rt;
  auto count = LoadClassesXml(rt, kSchema, nullptr);
  ASSERT_FALSE(count.ok());
  EXPECT_EQ(count.status().code(), StatusCode::kNotFound);
}

TEST(SchemaXmlTest, DuplicateClassRejected) {
  Runtime rt;
  NativeMethods methods = Methods();
  ASSERT_TRUE(LoadClassesXml(rt, kSchema, &methods).ok());
  EXPECT_EQ(LoadClassesXml(rt, kSchema, &methods).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(SchemaXmlTest, MalformedSchemasRejected) {
  Runtime rt;
  EXPECT_FALSE(LoadClassesXml(rt, "<wrong/>").ok());
  EXPECT_FALSE(LoadClassesXml(rt, "<classes><class/></classes>").ok());
  EXPECT_FALSE(
      LoadClassesXml(rt,
                     "<classes><class name=\"X\"><field name=\"f\" "
                     "type=\"zap\"/></class></classes>")
          .ok());
  EXPECT_FALSE(
      LoadClassesXml(rt,
                     "<classes><class name=\"X\" "
                     "payload=\"-5\"/></classes>")
          .ok());
}

TEST(SchemaXmlTest, DumpLoadRoundTrip) {
  Runtime source;
  NativeMethods methods = Methods();
  ASSERT_TRUE(LoadClassesXml(source, kSchema, &methods).ok());
  std::string dumped = DumpClassesXml(source.types());

  Runtime target;
  auto count = LoadClassesXml(target, dumped, &methods);
  ASSERT_TRUE(count.ok()) << count.status().ToString() << "\n" << dumped;
  EXPECT_EQ(*count, 2u);
  const runtime::ClassInfo* node = target.types().Find("Node");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->payload_bytes(), 64u);
  EXPECT_EQ(node->FieldIndex("value"), 1u);
}

TEST(SchemaXmlTest, DumpSkipsMiddlewareClasses) {
  Runtime rt;
  swap::SwappingManager manager(rt);  // registers proxy + replacement classes
  std::string dumped = DumpClassesXml(rt.types());
  EXPECT_EQ(dumped.find("SwapClusterProxy"), std::string::npos);
  EXPECT_EQ(dumped.find("Replacement"), std::string::npos);
}

}  // namespace
}  // namespace obiswap::serialization
