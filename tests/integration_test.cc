// End-to-end integration: the paper's Figure-2 scenario. A PDA replicates a
// large object graph from a server over the simulated wireless network,
// hits its heap capacity, and the policy engine swaps least-recently-used
// swap-clusters to nearby store devices; traversal transparently faults
// clusters back in; DGC releases what the device no longer holds; store
// devices wander in and out of range.
#include <gtest/gtest.h>

#include "test_support.h"

namespace obiswap {
namespace {

using runtime::LocalScope;
using runtime::Object;
using runtime::Value;
using ::obiswap::testing::CheckMediationInvariant;
using ::obiswap::testing::MiddlewareWorld;
using ::obiswap::testing::RegisterNodeClass;
using ::obiswap::testing::SumList;

class FullStackFixture : public ::testing::Test {
 protected:
  static constexpr int kListSize = 400;
  static constexpr size_t kHeapCapacity = 96 * 1024;

  FullStackFixture()
      : server_rt_(9),
        server_(server_rt_, /*cluster_size=*/25),
        dgc_server_(server_),
        world_(MakeOptions(), kHeapCapacity),
        link_(server_),
        endpoint_(world_.rt, link_, MiddlewareWorld::kDevice, &world_.bus),
        dgc_client_(world_.rt, endpoint_, &world_.manager,
                    dgc::DirectRelease(server_)),
        engine_(world_.bus, props_),
        memory_(world_.rt.heap(), world_.bus, props_, 0.85, 0.60),
        connectivity_(world_.network, world_.discovery,
                      MiddlewareWorld::kDevice, world_.bus, props_) {
    RegisterNodeClass(server_rt_);
    RegisterNodeClass(world_.rt);
    world_.AddStore(2, 10 * 1024 * 1024);
    world_.AddStore(3, 10 * 1024 * 1024);
    world_.manager.InstallPressureHandler();

    OBISWAP_CHECK(
        policy::RegisterSwapActions(engine_, world_.rt, world_.manager).ok());
    OBISWAP_CHECK(engine_
                      .LoadXml(R"(
      <policies>
        <policy name="relieve-pressure" on="memory-pressure" priority="10"
                when="net.nearby_stores gt 0">
          <action name="swap-out-victim"/>
        </policy>
      </policies>)")
                      .ok());
    connectivity_.Poll();

    // Publish the server-side list.
    LocalScope scope(server_rt_.heap());
    Object** head = scope.Add(nullptr);
    const runtime::ClassInfo* cls = server_rt_.types().Find("Node");
    for (int i = kListSize - 1; i >= 0; --i) {
      Object* node = server_rt_.New(cls);
      OBISWAP_CHECK(server_rt_.SetField(node, "value", Value::Int(i)).ok());
      if (*head != nullptr)
        OBISWAP_CHECK(
            server_rt_.SetField(node, "next", Value::Ref(*head)).ok());
      *head = node;
    }
    OBISWAP_CHECK(server_.PublishRoot("list", *head).ok());
  }

  static swap::SwappingManager::Options MakeOptions() {
    swap::SwappingManager::Options options;
    options.clusters_per_swap_cluster = 2;  // 50 objects per swap-cluster
    options.codec = "lz77";
    return options;
  }

  runtime::Runtime server_rt_;
  replication::ReplicationServer server_;
  dgc::DgcServer dgc_server_;
  MiddlewareWorld world_;
  replication::DirectLink link_;
  replication::DeviceEndpoint endpoint_;
  dgc::DgcClient dgc_client_;
  context::PropertyRegistry props_;
  policy::PolicyEngine engine_;
  context::MemoryMonitor memory_;
  context::ConnectivityMonitor connectivity_;
};

TEST_F(FullStackFixture, ReplicateTraverseUnderMemoryPressure) {
  // The full list occupies well over the device's 180 KiB heap; replicating
  // and traversing it end-to-end requires pressure-driven swap-outs.
  Object* root = *endpoint_.FetchRoot("list");
  ASSERT_TRUE(world_.rt.SetGlobal("list", Value::Ref(root)).ok());

  auto sum = SumList(world_.rt, "list");
  ASSERT_TRUE(sum.ok()) << sum.status().ToString();
  EXPECT_EQ(*sum, kListSize * (kListSize - 1) / 2);
  EXPECT_EQ(endpoint_.stats().objects_replicated,
            static_cast<uint64_t>(kListSize));
  EXPECT_GT(world_.manager.stats().swap_outs, 0u);
  EXPECT_EQ(CheckMediationInvariant(world_.rt), "");
  // The device heap stayed within its budget (plus middleware overcommit).
  EXPECT_LE(world_.rt.heap().used_bytes(), kHeapCapacity + 64 * 1024);
}

TEST_F(FullStackFixture, RepeatedTraversalsThrashCorrectly) {
  Object* root = *endpoint_.FetchRoot("list");
  ASSERT_TRUE(world_.rt.SetGlobal("list", Value::Ref(root)).ok());
  const int64_t expected = kListSize * (kListSize - 1) / 2;
  for (int round = 0; round < 3; ++round) {
    auto sum = SumList(world_.rt, "list");
    ASSERT_TRUE(sum.ok()) << "round " << round << ": "
                          << sum.status().ToString();
    EXPECT_EQ(*sum, expected) << "round " << round;
  }
  // Re-traversals force swap-ins of previously evicted clusters.
  EXPECT_GT(world_.manager.stats().swap_ins, 0u);
}

TEST_F(FullStackFixture, MutationsSurviveSwapCycles) {
  Object* root = *endpoint_.FetchRoot("list");
  ASSERT_TRUE(world_.rt.SetGlobal("list", Value::Ref(root)).ok());
  // Write i*2 into every node (mediated traversal), with pressure swapping
  // underneath.
  {
    Value cursor = *world_.rt.GetGlobal("list");
    int i = 0;
    while (cursor.is_ref() && cursor.ref() != nullptr) {
      ASSERT_TRUE(world_.rt
                      .Invoke(cursor.ref(), "set_value",
                              {Value::Int(int64_t{2} * i)})
                      .ok());
      cursor = *world_.rt.Invoke(cursor.ref(), "next");
      ++i;
    }
    ASSERT_EQ(i, kListSize);
  }
  auto sum = SumList(world_.rt, "list");
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, int64_t{kListSize} * (kListSize - 1));
}

TEST_F(FullStackFixture, StoreDeviceChurnIsTolerated) {
  Object* root = *endpoint_.FetchRoot("list");
  ASSERT_TRUE(world_.rt.SetGlobal("list", Value::Ref(root)).ok());
  ASSERT_TRUE(SumList(world_.rt, "list").ok());

  // One store leaves; swapped clusters on the other remain reachable, and
  // swap-ins needing the departed store fail cleanly until it returns.
  DeviceId leaver = world_.stores[0]->device();
  world_.network.SetOnline(leaver, false);
  connectivity_.Poll();
  auto sum = SumList(world_.rt, "list");
  if (!sum.ok()) {
    EXPECT_EQ(sum.status().code(), StatusCode::kUnavailable);
    world_.network.SetOnline(leaver, true);
    connectivity_.Poll();
    sum = SumList(world_.rt, "list");
  }
  ASSERT_TRUE(sum.ok()) << sum.status().ToString();
  EXPECT_EQ(*sum, kListSize * (kListSize - 1) / 2);
}

TEST_F(FullStackFixture, DgcReleasesDroppedGraph) {
  Object* root = *endpoint_.FetchRoot("list");
  ASSERT_TRUE(world_.rt.SetGlobal("list", Value::Ref(root)).ok());
  ASSERT_TRUE(SumList(world_.rt, "list").ok());
  ASSERT_TRUE(dgc_client_.RunCycle().ok());
  EXPECT_EQ(dgc_server_.ScionCount(MiddlewareWorld::kDevice),
            static_cast<size_t>(kListSize));

  // Drop the device's graph entirely: every scion must be released and the
  // stores must end up empty (replacement finalizers drop swapped XML).
  world_.rt.RemoveGlobal("list");
  world_.rt.heap().Collect();
  world_.rt.heap().Collect();
  auto released = dgc_client_.RunCycle();
  ASSERT_TRUE(released.ok());
  EXPECT_EQ(dgc_server_.ScionCount(MiddlewareWorld::kDevice), 0u);
  size_t store_entries = 0;
  for (const auto& store : world_.stores) {
    store_entries += store->entry_count();
  }
  EXPECT_EQ(store_entries, 0u);
}

TEST_F(FullStackFixture, VirtualTimeReflectsLinkCosts) {
  Object* root = *endpoint_.FetchRoot("list");
  ASSERT_TRUE(world_.rt.SetGlobal("list", Value::Ref(root)).ok());
  ASSERT_TRUE(SumList(world_.rt, "list").ok());
  uint64_t moved = world_.network.stats().bytes_moved;
  EXPECT_GT(moved, 0u);
  // At 700 Kbps, moving those bytes must have consumed at least the
  // corresponding virtual time.
  double min_seconds = static_cast<double>(moved) * 8.0 / 700'000.0;
  EXPECT_GE(world_.network.clock().now_us(),
            static_cast<uint64_t>(min_seconds * 1e6));
}

}  // namespace
}  // namespace obiswap
