// Shared helpers for obiswap tests: a paper-style Node class, list-workload
// builders, a fully wired middleware world, and graph invariant checkers.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "obiswap/obiswap.h"

namespace obiswap::testing {

/// Registers the micro-benchmark's list-node class (paper §5: "a list of
/// 10000 64-byte objects" with "simple (quasi-empty) methods"):
///   next            — returns the next-element reference
///   get_value       — returns the int payload
///   step(depth)     — test A1's recursion: step along the list,
///                     incrementing depth; returns final depth
///   probe(remaining)— test A2's inner recursion: walk up to `remaining`
///                     elements ahead, return a reference to the object
///                     reached (no graph mutation)
inline const runtime::ClassInfo* RegisterNodeClass(runtime::Runtime& rt) {
  using runtime::Object;
  using runtime::Value;
  return *rt.types().Register(
      runtime::ClassBuilder("Node")
          .Field("next", runtime::ValueKind::kRef)
          .Field("value", runtime::ValueKind::kInt)
          .PayloadBytes(64)
          .Method("next",
                  [](runtime::Runtime& r, Object* self, std::vector<Value>&) {
                    return Result<Value>(r.GetFieldAt(self, 0));
                  })
          .Method("get_value",
                  [](runtime::Runtime& r, Object* self, std::vector<Value>&) {
                    return Result<Value>(r.GetFieldAt(self, 1));
                  })
          .Method("set_value",
                  [](runtime::Runtime& r, Object* self,
                     std::vector<Value>& args) -> Result<Value> {
                    OBISWAP_RETURN_IF_ERROR(
                        r.SetFieldAt(self, 1, args[0]));
                    return Value::Nil();
                  })
          .Method("step",
                  [](runtime::Runtime& r, Object* self,
                     std::vector<Value>& args) -> Result<Value> {
                    int64_t depth = args.empty() ? 0 : args[0].as_int();
                    const Value& next = r.GetFieldAt(self, 0);
                    if (!next.is_ref() || next.ref() == nullptr)
                      return Value::Int(depth);
                    return r.Invoke(next.ref(), "step",
                                    {Value::Int(depth + 1)});
                  })
          .Method("probe",
                  [](runtime::Runtime& r, Object* self,
                     std::vector<Value>& args) -> Result<Value> {
                    int64_t remaining = args.empty() ? 0 : args[0].as_int();
                    const Value& next = r.GetFieldAt(self, 0);
                    if (remaining <= 0 || !next.is_ref() ||
                        next.ref() == nullptr)
                      return Value::Ref(self);
                    return r.Invoke(next.ref(), "probe",
                                    {Value::Int(remaining - 1)});
                  })
          .Method("walk",  // test A2's outer recursion: probe(10) per step
                  [](runtime::Runtime& r, Object* self,
                     std::vector<Value>& args) -> Result<Value> {
                    int64_t depth = args.empty() ? 0 : args[0].as_int();
                    OBISWAP_ASSIGN_OR_RETURN(
                        Value reached,
                        r.Invoke(self, "probe", {Value::Int(10)}));
                    (void)reached;
                    const Value& next = r.GetFieldAt(self, 0);
                    if (!next.is_ref() || next.ref() == nullptr)
                      return Value::Int(depth);
                    return r.Invoke(next.ref(), "walk",
                                    {Value::Int(depth + 1)});
                  }));
}

/// Builds an n-element list, placing every `per_cluster` consecutive nodes
/// in a fresh swap-cluster, and publishes the head under `global`. Node i
/// has value i. Returns the created swap-cluster ids in list order.
inline std::vector<SwapClusterId> BuildClusteredList(
    runtime::Runtime& rt, swap::SwappingManager& manager,
    const runtime::ClassInfo* node_cls, int n, int per_cluster,
    const std::string& global) {
  using runtime::Value;
  std::vector<SwapClusterId> clusters;
  int cluster_count = (n + per_cluster - 1) / per_cluster;
  for (int i = 0; i < cluster_count; ++i)
    clusters.push_back(manager.NewSwapCluster());

  runtime::LocalScope scope(rt.heap());
  runtime::Object** head_slot = scope.Add(nullptr);
  for (int i = n - 1; i >= 0; --i) {
    runtime::Object* node = rt.New(node_cls);
    OBISWAP_CHECK(manager.Place(node, clusters[i / per_cluster]).ok());
    OBISWAP_CHECK(rt.SetField(node, "value", Value::Int(i)).ok());
    if (*head_slot != nullptr) {
      OBISWAP_CHECK(rt.SetField(node, "next", Value::Ref(*head_slot)).ok());
    }
    *head_slot = node;
  }
  OBISWAP_CHECK(rt.SetGlobal(global, Value::Ref(*head_slot)).ok());
  return clusters;
}

/// A fully wired device-side middleware stack: simulated network with the
/// mobile device, discovery, store client, event bus, swapping manager.
struct MiddlewareWorld {
  explicit MiddlewareWorld(
      swap::SwappingManager::Options options = swap::SwappingManager::Options(),
      size_t heap_capacity = SIZE_MAX)
      : network(7),
        discovery(network),
        rt(1, heap_capacity),
        client(network, discovery, kDevice),
        manager(rt, options) {
    network.AddDevice(kDevice);
    manager.AttachStore(&client, &discovery);
    manager.AttachBus(&bus);
  }

  /// Adds an in-range store device with the given capacity.
  net::StoreNode* AddStore(uint32_t device_value, size_t capacity) {
    DeviceId device(device_value);
    network.AddDevice(device);
    network.SetInRange(kDevice, device, true);
    stores.push_back(std::make_unique<net::StoreNode>(device, capacity));
    discovery.Announce(stores.back().get());
    return stores.back().get();
  }

  static constexpr DeviceId kDevice = DeviceId(1);

  net::Network network;
  net::Discovery discovery;
  std::vector<std::unique_ptr<net::StoreNode>> stores;
  context::EventBus bus;
  runtime::Runtime rt;
  net::StoreClient client;
  swap::SwappingManager manager;
};

/// Checks the paper's mediation invariant over the whole heap: every
/// reference held by a regular object either stays inside its swap-cluster
/// or goes through a swap-cluster-proxy whose source is the holder's
/// cluster. Returns a description of the first violation, or "".
inline std::string CheckMediationInvariant(runtime::Runtime& rt) {
  std::string violation;
  rt.heap().ForEachObject([&](runtime::Object* holder) {
    if (!violation.empty()) return;
    if (holder->kind() != runtime::ObjectKind::kRegular) return;
    for (size_t i = 0; i < holder->slot_count(); ++i) {
      const runtime::Value& slot = holder->RawSlot(i);
      if (!slot.is_ref() || slot.ref() == nullptr) continue;
      runtime::Object* target = slot.ref();
      switch (target->kind()) {
        case runtime::ObjectKind::kRegular:
          if (target->swap_cluster() != holder->swap_cluster()) {
            violation = "raw cross-cluster ref from oid " +
                        holder->oid().ToString() + " to oid " +
                        target->oid().ToString();
          }
          break;
        case runtime::ObjectKind::kSwapClusterProxy:
          if (swap::ProxySource(target) != holder->swap_cluster()) {
            violation = "proxy with wrong source held by oid " +
                        holder->oid().ToString();
          }
          break;
        case runtime::ObjectKind::kReplicationProxy:
          break;  // raw replication proxies are legal anywhere
        case runtime::ObjectKind::kReplacement:
          violation = "application object references a replacement-object";
          break;
      }
    }
  });
  return violation;
}

/// Sums `get_value` along a list by repeated mediated invocation starting
/// from global `name`; verifies transparent traversal end-to-end. The
/// cursor lives in a global (the paper's iteration pattern: variables are
/// swap-cluster-0 members), which also makes it a GC root — plain C++
/// locals are not roots, so middleware activity between invocations could
/// otherwise collect the cursor's proxy.
inline Result<int64_t> SumList(runtime::Runtime& rt,
                               const std::string& global) {
  using runtime::Value;
  OBISWAP_ASSIGN_OR_RETURN(Value start, rt.GetGlobal(global));
  OBISWAP_RETURN_IF_ERROR(rt.SetGlobal("__sum_cursor", start));
  int64_t sum = 0;
  int guard = 0;
  for (;;) {
    Value cursor = *rt.GetGlobal("__sum_cursor");
    if (!cursor.is_ref() || cursor.ref() == nullptr) break;
    OBISWAP_ASSIGN_OR_RETURN(Value value,
                             rt.Invoke(cursor.ref(), "get_value"));
    sum += value.as_int();
    OBISWAP_ASSIGN_OR_RETURN(Value next, rt.Invoke(cursor.ref(), "next"));
    OBISWAP_RETURN_IF_ERROR(rt.SetGlobal("__sum_cursor", next));
    if (++guard > 1000000)
      return InternalError("list traversal did not terminate");
  }
  rt.RemoveGlobal("__sum_cursor");
  return sum;
}

}  // namespace obiswap::testing
