// Multi-device scenarios: several PDAs sharing the same store devices and
// the same replication master, and swapping interacting with still-lazy
// (unreplicated) graph regions.
#include <gtest/gtest.h>

#include <set>

#include "test_support.h"

namespace obiswap {
namespace {

using runtime::LocalScope;
using runtime::Object;
using runtime::ObjectKind;
using runtime::Value;
using ::obiswap::testing::BuildClusteredList;
using ::obiswap::testing::RegisterNodeClass;
using ::obiswap::testing::SumList;

/// One device stack sharing an external network/discovery.
struct Device {
  Device(net::Network& network, net::Discovery& discovery, uint32_t id)
      : device(id),
        rt(static_cast<uint16_t>(id)),
        client(network, discovery, device),
        manager(rt) {
    network.AddDevice(device);
    manager.AttachStore(&client, &discovery);
  }

  DeviceId device;
  runtime::Runtime rt;
  net::StoreClient client;
  swap::SwappingManager manager;
};

TEST(MultiDeviceTest, TwoDevicesShareOneStoreWithoutKeyCollisions) {
  net::Network network;
  net::Discovery discovery(network);
  DeviceId shelf(99);
  network.AddDevice(shelf);
  net::StoreNode store(shelf, 8 * 1024 * 1024);
  discovery.Announce(&store);

  Device a(network, discovery, 1);
  Device b(network, discovery, 2);
  network.SetInRange(a.device, shelf, true);
  network.SetInRange(b.device, shelf, true);

  const runtime::ClassInfo* cls_a = RegisterNodeClass(a.rt);
  const runtime::ClassInfo* cls_b = RegisterNodeClass(b.rt);
  auto clusters_a = BuildClusteredList(a.rt, a.manager, cls_a, 30, 10, "la");
  auto clusters_b = BuildClusteredList(b.rt, b.manager, cls_b, 30, 10, "lb");

  // Interleaved swap-outs from both devices to the same shelf.
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(a.manager.SwapOut(clusters_a[i]).ok());
    ASSERT_TRUE(b.manager.SwapOut(clusters_b[i]).ok());
  }
  EXPECT_EQ(store.entry_count(), 6u);

  // Both reload everything, in opposite orders.
  auto sum_a = SumList(a.rt, "la");
  ASSERT_TRUE(sum_a.ok()) << sum_a.status().ToString();
  EXPECT_EQ(*sum_a, 435);
  auto sum_b = SumList(b.rt, "lb");
  ASSERT_TRUE(sum_b.ok()) << sum_b.status().ToString();
  EXPECT_EQ(*sum_b, 435);
  // Reloaded-but-unwritten clusters retain their shelf entries as clean
  // images; dirtying every cluster releases all six without collisions.
  EXPECT_EQ(store.entry_count(), 6u);
  for (size_t i = 0; i < 3; ++i) {
    a.manager.MarkDirty(clusters_a[i]);
    b.manager.MarkDirty(clusters_b[i]);
  }
  EXPECT_EQ(store.entry_count(), 0u);
}

TEST(MultiDeviceTest, StoreCapacitySharedFairlyEnough) {
  net::Network network;
  net::Discovery discovery(network);
  DeviceId shelf(99);
  network.AddDevice(shelf);
  // Tiny store: fits ~2 swapped clusters.
  net::StoreNode store(shelf, 6000);
  discovery.Announce(&store);
  Device a(network, discovery, 1);
  network.SetInRange(a.device, shelf, true);
  const runtime::ClassInfo* cls = RegisterNodeClass(a.rt);
  auto clusters = BuildClusteredList(a.rt, a.manager, cls, 60, 20, "l");
  int succeeded = 0;
  for (SwapClusterId id : clusters) {
    if (a.manager.SwapOut(id).ok()) ++succeeded;
  }
  EXPECT_GT(succeeded, 0);
  EXPECT_LT(succeeded, 3);  // the store filled up
  // Discovery's capacity filter rejects the later clusters before any
  // transfer happens (the store itself never sees an oversized request).
  EXPECT_GT(a.manager.stats().swap_out_failures, 0u);
  // Everything still traverses (loaded + reloadable clusters).
  auto sum = SumList(a.rt, "l");
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*sum, 60 * 59 / 2);
}

TEST(MultiDeviceTest, SwappedClusterWithUnreplicatedTailReloadsAndFaults) {
  // A partially replicated list: the replicated prefix is swapped out with
  // an outbound replication proxy inside the replacement-object; swap-in
  // restores it and traversal then faults the unreplicated tail.
  runtime::Runtime server_rt(9);
  const runtime::ClassInfo* server_cls = RegisterNodeClass(server_rt);
  replication::ReplicationServer server(server_rt, /*cluster_size=*/10);
  {
    LocalScope scope(server_rt.heap());
    Object** head = scope.Add(nullptr);
    for (int i = 29; i >= 0; --i) {
      Object* node = server_rt.New(server_cls);
      OBISWAP_CHECK(server_rt.SetField(node, "value", Value::Int(i)).ok());
      if (*head != nullptr)
        OBISWAP_CHECK(
            server_rt.SetField(node, "next", Value::Ref(*head)).ok());
      *head = node;
    }
    OBISWAP_CHECK(server.PublishRoot("list", *head).ok());
  }

  ::obiswap::testing::MiddlewareWorld world;
  RegisterNodeClass(world.rt);
  world.AddStore(2, 8 * 1024 * 1024);
  replication::DirectLink link(server);
  replication::DeviceEndpoint endpoint(
      world.rt, link, ::obiswap::testing::MiddlewareWorld::kDevice,
      &world.bus);

  // Replicate only the first cluster (touch the head once).
  Object* root = *endpoint.FetchRoot("list");
  ASSERT_TRUE(world.rt.SetGlobal("list", Value::Ref(root)).ok());
  ASSERT_TRUE(
      world.rt.Invoke(world.rt.GetGlobal("list")->ref(), "get_value").ok());
  EXPECT_EQ(endpoint.stats().clusters_replicated, 1u);

  // The single swap-cluster holds the replicated prefix, whose last node
  // references a replication proxy for the unreplicated tail.
  ASSERT_EQ(world.manager.registry().size(), 1u);
  SwapClusterId prefix = world.manager.registry().Ids()[0];
  ASSERT_TRUE(world.manager.SwapOut(prefix).ok());
  world.rt.heap().Collect();
  EXPECT_EQ(world.manager.StateOf(prefix), swap::SwapState::kSwapped);

  // Full traversal: swap-in the prefix, then fault the tail from the
  // server, cluster by cluster.
  auto sum = SumList(world.rt, "list");
  ASSERT_TRUE(sum.ok()) << sum.status().ToString();
  EXPECT_EQ(*sum, 30 * 29 / 2);
  EXPECT_EQ(endpoint.stats().clusters_replicated, 3u);
  EXPECT_EQ(::obiswap::testing::CheckMediationInvariant(world.rt), "");
}

TEST(MultiDeviceTest, TwoDevicesReplicateIndependentlyFromOneMaster) {
  runtime::Runtime server_rt(9);
  const runtime::ClassInfo* server_cls = RegisterNodeClass(server_rt);
  replication::ReplicationServer server(server_rt, 5);
  {
    LocalScope scope(server_rt.heap());
    Object** head = scope.Add(nullptr);
    for (int i = 9; i >= 0; --i) {
      Object* node = server_rt.New(server_cls);
      OBISWAP_CHECK(server_rt.SetField(node, "value", Value::Int(i)).ok());
      if (*head != nullptr)
        OBISWAP_CHECK(
            server_rt.SetField(node, "next", Value::Ref(*head)).ok());
      *head = node;
    }
    OBISWAP_CHECK(server.PublishRoot("list", *head).ok());
  }
  replication::DirectLink link(server);

  runtime::Runtime rt1(1), rt2(2);
  RegisterNodeClass(rt1);
  RegisterNodeClass(rt2);
  replication::DeviceEndpoint e1(rt1, link, DeviceId(1), nullptr);
  replication::DeviceEndpoint e2(rt2, link, DeviceId(2), nullptr);
  Object* r1 = *e1.FetchRoot("list");
  Object* r2 = *e2.FetchRoot("list");
  ASSERT_TRUE(rt1.SetGlobal("list", Value::Ref(r1)).ok());
  ASSERT_TRUE(rt2.SetGlobal("list", Value::Ref(r2)).ok());
  EXPECT_EQ(*SumList(rt1, "list"), 45);
  EXPECT_EQ(*SumList(rt2, "list"), 45);
  EXPECT_EQ(server.SentCount(DeviceId(1)), 10u);
  EXPECT_EQ(server.SentCount(DeviceId(2)), 10u);
  EXPECT_EQ(e1.stats().objects_replicated, 10u);
  EXPECT_EQ(e2.stats().objects_replicated, 10u);
}

TEST(MultiDeviceTest, ManyDevicesShareAPoolWithoutCollisionsAndInBalance) {
  // A dozen devices, six shared stores, directory placement: every stored
  // key must be globally unique (SwapKeys embed the minting device), and
  // the rendezvous spread must keep any one store from soaking up the
  // pool's load.
  fleet::FleetOptions options;
  options.devices = 12;
  options.stores = 6;
  options.clusters_per_device = 3;
  options.objects_per_cluster = 8;
  fleet::FleetDriver driver(options);
  ASSERT_TRUE(driver.Build().ok());
  ASSERT_TRUE(driver.RunRounds(2).ok());

  fleet::FleetReport report = driver.Report();
  // 12 devices × 3 clusters × K=2 replicas, all placed.
  EXPECT_EQ(report.replicas_placed, 12u * 3u * 2u);
  EXPECT_EQ(report.clusters_below_k, 0u);
  EXPECT_EQ(report.clusters_lost, 0u);
  // Balance bound: with bounded-load placement no store exceeds ~1.5× the
  // mean fill even at this small scale (the fleet_scale bench gates the
  // tighter 1.35 at 200 stores, where the law of large numbers helps).
  EXPECT_GE(report.balance_max_over_mean, 1.0);
  EXPECT_LE(report.balance_max_over_mean, 1.6);
  EXPECT_GT(report.swap_ins, 0u);

  // No cross-device key collisions: every key stored anywhere in the pool
  // appears exactly once (SwapKey = minting device << 32 | counter).
  std::set<SwapKey> seen;
  size_t total_entries = 0;
  for (size_t i = 0; i < driver.store_count(); ++i) {
    for (SwapKey key : driver.store_at(i)->Keys()) {
      EXPECT_TRUE(seen.insert(key).second) << "duplicate key";
      ++total_entries;
    }
  }
  EXPECT_EQ(seen.size(), total_entries);
  EXPECT_EQ(total_entries, 12u * 3u * 2u);
}

}  // namespace
}  // namespace obiswap
