// Context Management (paper §2): "abstracts resources and manages the
// corresponding properties whose values vary during applications execution.
// In particular, it is responsible for monitoring available memory and
// network connectivity."
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "context/events.h"
#include "net/bridge.h"
#include "net/network.h"
#include "runtime/heap.h"

namespace obiswap::context {

/// Named properties the policy engine's conditions can reference
/// (e.g. "mem.used_ratio", "net.nearby_stores").
class PropertyRegistry {
 public:
  void SetInt(const std::string& name, int64_t value) {
    ints_[name] = value;
  }
  void SetReal(const std::string& name, double value) {
    reals_[name] = value;
  }
  void SetString(const std::string& name, std::string value) {
    strings_[name] = std::move(value);
  }

  Result<int64_t> GetInt(const std::string& name) const;
  Result<double> GetReal(const std::string& name) const;
  Result<std::string> GetString(const std::string& name) const;

  /// Numeric lookup usable by policy expressions: ints and reals both
  /// resolve; kNotFound otherwise.
  Result<double> GetNumeric(const std::string& name) const;

  bool Has(const std::string& name) const;

 private:
  std::unordered_map<std::string, int64_t> ints_;
  std::unordered_map<std::string, double> reals_;
  std::unordered_map<std::string, std::string> strings_;
};

/// Watches heap occupancy and publishes edge-triggered memory-pressure /
/// memory-relief events. Thresholds are fractions of heap capacity.
class MemoryMonitor {
 public:
  MemoryMonitor(runtime::Heap& heap, EventBus& bus, PropertyRegistry& props,
                double pressure_threshold = 0.85,
                double relief_threshold = 0.70);

  /// Samples the heap; publishes on threshold crossings and refreshes
  /// "mem.used_bytes", "mem.capacity_bytes", "mem.used_ratio".
  void Poll();

  bool under_pressure() const { return under_pressure_; }
  double used_ratio() const;

 private:
  runtime::Heap& heap_;
  EventBus& bus_;
  PropertyRegistry& props_;
  double pressure_threshold_;
  double relief_threshold_;
  bool under_pressure_ = false;
};

/// Watches which announced store devices are reachable and publishes
/// connectivity-changed when the set changes. Refreshes
/// "net.nearby_stores" and "net.nearby_free_bytes".
class ConnectivityMonitor {
 public:
  ConnectivityMonitor(net::Network& network, net::Discovery& discovery,
                      DeviceId self, EventBus& bus, PropertyRegistry& props);

  void Poll();

  const std::vector<DeviceId>& nearby() const { return nearby_; }

 private:
  net::Network& network_;
  net::Discovery& discovery_;
  DeviceId self_;
  EventBus& bus_;
  PropertyRegistry& props_;
  std::vector<DeviceId> nearby_;
  bool first_poll_ = true;
};

}  // namespace obiswap::context
