#include "context/context.h"

#include <algorithm>

namespace obiswap::context {

Result<int64_t> PropertyRegistry::GetInt(const std::string& name) const {
  auto it = ints_.find(name);
  if (it == ints_.end()) return NotFoundError("no int property '" + name + "'");
  return it->second;
}

Result<double> PropertyRegistry::GetReal(const std::string& name) const {
  auto it = reals_.find(name);
  if (it == reals_.end())
    return NotFoundError("no real property '" + name + "'");
  return it->second;
}

Result<std::string> PropertyRegistry::GetString(const std::string& name) const {
  auto it = strings_.find(name);
  if (it == strings_.end())
    return NotFoundError("no string property '" + name + "'");
  return it->second;
}

Result<double> PropertyRegistry::GetNumeric(const std::string& name) const {
  auto real_it = reals_.find(name);
  if (real_it != reals_.end()) return real_it->second;
  auto int_it = ints_.find(name);
  if (int_it != ints_.end()) return static_cast<double>(int_it->second);
  return NotFoundError("no numeric property '" + name + "'");
}

bool PropertyRegistry::Has(const std::string& name) const {
  return ints_.count(name) > 0 || reals_.count(name) > 0 ||
         strings_.count(name) > 0;
}

MemoryMonitor::MemoryMonitor(runtime::Heap& heap, EventBus& bus,
                             PropertyRegistry& props,
                             double pressure_threshold,
                             double relief_threshold)
    : heap_(heap),
      bus_(bus),
      props_(props),
      pressure_threshold_(pressure_threshold),
      relief_threshold_(relief_threshold) {
  OBISWAP_CHECK(relief_threshold_ <= pressure_threshold_);
}

double MemoryMonitor::used_ratio() const {
  if (heap_.capacity_bytes() == 0 || heap_.capacity_bytes() == SIZE_MAX)
    return 0.0;
  return static_cast<double>(heap_.used_bytes()) /
         static_cast<double>(heap_.capacity_bytes());
}

void MemoryMonitor::Poll() {
  double ratio = used_ratio();
  props_.SetInt("mem.used_bytes", static_cast<int64_t>(heap_.used_bytes()));
  props_.SetInt("mem.capacity_bytes",
                heap_.capacity_bytes() == SIZE_MAX
                    ? -1
                    : static_cast<int64_t>(heap_.capacity_bytes()));
  props_.SetReal("mem.used_ratio", ratio);
  if (!under_pressure_ && ratio >= pressure_threshold_) {
    under_pressure_ = true;
    bus_.Publish(Event(kEventMemoryPressure)
                     .Set("used_bytes",
                          static_cast<int64_t>(heap_.used_bytes()))
                     .Set("ratio_pct", static_cast<int64_t>(ratio * 100)));
  } else if (under_pressure_ && ratio <= relief_threshold_) {
    under_pressure_ = false;
    bus_.Publish(Event(kEventMemoryRelief)
                     .Set("used_bytes",
                          static_cast<int64_t>(heap_.used_bytes()))
                     .Set("ratio_pct", static_cast<int64_t>(ratio * 100)));
  }
}

ConnectivityMonitor::ConnectivityMonitor(net::Network& network,
                                         net::Discovery& discovery,
                                         DeviceId self, EventBus& bus,
                                         PropertyRegistry& props)
    : network_(network),
      discovery_(discovery),
      self_(self),
      bus_(bus),
      props_(props) {}

void ConnectivityMonitor::Poll() {
  std::vector<net::StoreNode*> stores = discovery_.NearbyStores(self_);
  std::vector<DeviceId> now;
  int64_t free_bytes = 0;
  now.reserve(stores.size());
  for (net::StoreNode* store : stores) {
    now.push_back(store->device());
    free_bytes += static_cast<int64_t>(store->free_bytes());
  }
  std::sort(now.begin(), now.end());
  props_.SetInt("net.nearby_stores", static_cast<int64_t>(now.size()));
  props_.SetInt("net.nearby_free_bytes", free_bytes);
  bool changed = first_poll_ ? !now.empty() : now != nearby_;
  first_poll_ = false;
  if (changed) {
    Event event(kEventConnectivityChanged);
    event.Set("nearby_count", static_cast<int64_t>(now.size()));
    event.Set("nearby_free_bytes", free_bytes);
    nearby_ = std::move(now);
    bus_.Publish(event);
  } else {
    nearby_ = std::move(now);
  }
}

}  // namespace obiswap::context
