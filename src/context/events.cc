#include "context/events.h"

#include <algorithm>

namespace obiswap::context {

Result<std::string> Event::GetString(const std::string& key) const {
  auto it = strings_.find(key);
  if (it == strings_.end())
    return NotFoundError("event '" + type_ + "' has no string '" + key + "'");
  return it->second;
}

Result<int64_t> Event::GetInt(const std::string& key) const {
  auto it = ints_.find(key);
  if (it == ints_.end())
    return NotFoundError("event '" + type_ + "' has no int '" + key + "'");
  return it->second;
}

int64_t Event::GetIntOr(const std::string& key, int64_t fallback) const {
  auto it = ints_.find(key);
  return it == ints_.end() ? fallback : it->second;
}

uint64_t EventBus::Subscribe(const std::string& type, EventHandler handler) {
  uint64_t token = next_token_++;
  by_type_[type].push_back(Subscription{token, std::move(handler)});
  return token;
}

uint64_t EventBus::SubscribeAll(EventHandler handler) {
  uint64_t token = next_token_++;
  all_.push_back(Subscription{token, std::move(handler)});
  return token;
}

void EventBus::Unsubscribe(uint64_t token) {
  auto drop = [token](std::vector<Subscription>& subs) {
    subs.erase(std::remove_if(subs.begin(), subs.end(),
                              [token](const Subscription& s) {
                                return s.token == token;
                              }),
               subs.end());
  };
  for (auto& [type, subs] : by_type_) drop(subs);
  drop(all_);
}

void EventBus::Publish(const Event& event) {
  ++published_;
  // Copy handler lists: a handler may (un)subscribe while we iterate.
  auto it = by_type_.find(event.type());
  if (it != by_type_.end()) {
    std::vector<Subscription> subs = it->second;
    for (const Subscription& sub : subs) sub.handler(event);
  }
  std::vector<Subscription> all = all_;
  for (const Subscription& sub : all) sub.handler(event);
}

}  // namespace obiswap::context
