#include "compress/codec.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>

#include "common/checksum.h"
#include "common/varint.h"

namespace obiswap::compress {

// --------------------------------------------------------------------------
// RLE
// --------------------------------------------------------------------------
// Token stream: (byte, varint run_length)*. Prefixed with varint total size.

Result<std::string> RleCodec::Compress(std::string_view input) const {
  std::string out;
  PutVarint64(&out, input.size());
  size_t i = 0;
  while (i < input.size()) {
    char byte = input[i];
    size_t run = 1;
    while (i + run < input.size() && input[i + run] == byte) ++run;
    out.push_back(byte);
    PutVarint64(&out, run);
    i += run;
  }
  return out;
}

Result<std::string> RleCodec::Decompress(std::string_view input) const {
  std::string_view rest = input;
  OBISWAP_ASSIGN_OR_RETURN(uint64_t total, GetVarint64(&rest));
  std::string out;
  // `total` comes off the wire: cap the upfront reservation so a corrupt
  // header cannot make reserve() itself throw. Growth past the cap is
  // amortized as usual (and bounded by the run-length checks below).
  out.reserve(static_cast<size_t>(std::min<uint64_t>(total, 1 << 20)));
  while (out.size() < total) {
    if (rest.empty()) return DataLossError("rle: truncated stream");
    char byte = rest[0];
    rest.remove_prefix(1);
    OBISWAP_ASSIGN_OR_RETURN(uint64_t run, GetVarint64(&rest));
    if (run == 0 || out.size() + run > total)
      return DataLossError("rle: bad run length");
    out.append(run, byte);
  }
  if (!rest.empty()) return DataLossError("rle: trailing bytes");
  return out;
}

// --------------------------------------------------------------------------
// LZ77
// --------------------------------------------------------------------------
// Token stream (after a varint original-size header):
//   0x00, varint len, <len literal bytes>     -- literal run
//   0x01, varint distance, varint length      -- match (copy from window)

namespace {
constexpr size_t kWindowSize = 32 * 1024;
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = 1 << 16;
constexpr size_t kHashBits = 15;
constexpr size_t kMaxChain = 32;

inline uint32_t HashAt(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}
}  // namespace

Result<std::string> Lz77Codec::Compress(std::string_view input) const {
  // The hash chains below (`head`/`prev`) store positions as int32_t; a
  // position at or past 2^31 would truncate and make the match finder copy
  // from the wrong offset — silent corruption. Refuse before touching the
  // data; callers see a clear error instead of a bad stream.
  if (input.size() > static_cast<size_t>(INT32_MAX))
    return InvalidArgumentError(
        "lz77: input too large (" + std::to_string(input.size()) +
        " bytes; positions are 32-bit, max " + std::to_string(INT32_MAX) +
        ")");
  std::string out;
  PutVarint64(&out, input.size());
  const size_t n = input.size();
  if (n == 0) return out;

  // head[h] = most recent position with hash h; prev[i] = previous position
  // in the same chain.
  std::vector<int32_t> head(size_t{1} << kHashBits, -1);
  std::vector<int32_t> prev(n, -1);

  std::string literals;
  auto flush_literals = [&]() {
    if (literals.empty()) return;
    out.push_back(0x00);
    PutVarint64(&out, literals.size());
    out += literals;
    literals.clear();
  };

  size_t i = 0;
  while (i < n) {
    size_t best_len = 0;
    size_t best_dist = 0;
    if (i + kMinMatch <= n) {
      uint32_t h = HashAt(input.data() + i);
      int32_t candidate = head[h];
      size_t chain = 0;
      while (candidate >= 0 && chain < kMaxChain &&
             i - static_cast<size_t>(candidate) <= kWindowSize) {
        size_t len = 0;
        size_t max_len = n - i;
        if (max_len > kMaxMatch) max_len = kMaxMatch;
        const char* a = input.data() + candidate;
        const char* b = input.data() + i;
        while (len < max_len && a[len] == b[len]) ++len;
        if (len >= kMinMatch && len > best_len) {
          best_len = len;
          best_dist = i - static_cast<size_t>(candidate);
          if (len == max_len) break;
        }
        candidate = prev[candidate];
        ++chain;
      }
      // Insert current position into the chain.
      prev[i] = head[h];
      head[h] = static_cast<int32_t>(i);
    }
    if (best_len >= kMinMatch) {
      flush_literals();
      out.push_back(0x01);
      PutVarint64(&out, best_dist);
      PutVarint64(&out, best_len);
      // Insert skipped positions into the hash chains (cheap, improves
      // later matches).
      size_t end = i + best_len;
      for (size_t j = i + 1; j < end && j + kMinMatch <= n; ++j) {
        uint32_t h = HashAt(input.data() + j);
        prev[j] = head[h];
        head[h] = static_cast<int32_t>(j);
      }
      i = end;
    } else {
      literals.push_back(input[i]);
      ++i;
    }
  }
  flush_literals();
  return out;
}

Result<std::string> Lz77Codec::Decompress(std::string_view input) const {
  std::string_view rest = input;
  OBISWAP_ASSIGN_OR_RETURN(uint64_t total, GetVarint64(&rest));
  std::string out;
  // Same wire-sourced-size caution as RLE: never let a corrupt total make
  // reserve() throw.
  out.reserve(static_cast<size_t>(std::min<uint64_t>(total, 1 << 20)));
  while (out.size() < total) {
    if (rest.empty()) return DataLossError("lz77: truncated stream");
    uint8_t tag = static_cast<uint8_t>(rest[0]);
    rest.remove_prefix(1);
    if (tag == 0x00) {
      OBISWAP_ASSIGN_OR_RETURN(uint64_t len, GetVarint64(&rest));
      if (len == 0 || len > rest.size() || out.size() + len > total)
        return DataLossError("lz77: bad literal run");
      out.append(rest.substr(0, len));
      rest.remove_prefix(len);
    } else if (tag == 0x01) {
      OBISWAP_ASSIGN_OR_RETURN(uint64_t dist, GetVarint64(&rest));
      OBISWAP_ASSIGN_OR_RETURN(uint64_t len, GetVarint64(&rest));
      if (dist == 0 || dist > out.size() || len < kMinMatch ||
          out.size() + len > total)
        return DataLossError("lz77: bad match token");
      const size_t start = out.size() - dist;
      const size_t old_size = out.size();
      out.resize(old_size + len);
      if (dist >= len) {
        // Source and destination cannot overlap: one bulk copy. Pointers
        // are taken after the resize — it may reallocate.
        std::memcpy(out.data() + old_size, out.data() + start, len);
      } else {
        // Overlapping match (dist < len): the copy must read bytes it
        // itself produced, byte order is semantic (e.g. dist=1 replicates
        // the previous byte len times).
        for (uint64_t k = 0; k < len; ++k) out[old_size + k] = out[start + k];
      }
    } else {
      return DataLossError("lz77: unknown token tag");
    }
  }
  if (!rest.empty()) return DataLossError("lz77: trailing bytes");
  return out;
}

// --------------------------------------------------------------------------
// Registry and framing
// --------------------------------------------------------------------------

const Codec* FindCodec(std::string_view name) {
  static const IdentityCodec identity;
  static const RleCodec rle;
  static const Lz77Codec lz77;
  if (name == "identity") return &identity;
  if (name == "rle") return &rle;
  if (name == "lz77") return &lz77;
  return nullptr;
}

std::vector<std::string> CodecNames() { return {"identity", "rle", "lz77"}; }

// Frame: "OSWC" magic, varint name-length, name, varint original size,
// 4-byte little-endian Adler-32 of original, compressed payload.
Result<std::string> FrameCompress(const Codec& codec,
                                  std::string_view payload) {
  OBISWAP_ASSIGN_OR_RETURN(std::string compressed, codec.Compress(payload));
  std::string out = "OSWC";
  std::string name = codec.name();
  PutVarint64(&out, name.size());
  out += name;
  PutVarint64(&out, payload.size());
  uint32_t checksum = Adler32(payload);
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((checksum >> (8 * i)) & 0xFF));
  out += compressed;
  return out;
}

Result<std::string> FrameDecompress(std::string_view frame) {
  if (frame.substr(0, 4) != "OSWC")
    return DataLossError("frame: bad magic");
  std::string_view rest = frame.substr(4);
  OBISWAP_ASSIGN_OR_RETURN(uint64_t name_len, GetVarint64(&rest));
  if (name_len > rest.size()) return DataLossError("frame: truncated name");
  std::string name(rest.substr(0, name_len));
  rest.remove_prefix(name_len);
  OBISWAP_ASSIGN_OR_RETURN(uint64_t original_size, GetVarint64(&rest));
  if (rest.size() < 4) return DataLossError("frame: truncated checksum");
  uint32_t expected = 0;
  for (int i = 0; i < 4; ++i)
    expected |= static_cast<uint32_t>(static_cast<unsigned char>(rest[i]))
                << (8 * i);
  rest.remove_prefix(4);
  const Codec* codec = FindCodec(name);
  if (codec == nullptr)
    return DataLossError("frame: unknown codec '" + name + "'");
  OBISWAP_ASSIGN_OR_RETURN(std::string payload, codec->Decompress(rest));
  if (payload.size() != original_size)
    return DataLossError("frame: size mismatch");
  if (Adler32(payload) != expected)
    return DataLossError("frame: checksum mismatch");
  return payload;
}

}  // namespace obiswap::compress
