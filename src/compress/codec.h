// Compression codecs.
//
// These are the substrate for the heap-compression *baseline* (related work
// [2] Chen et al. OOPSLA'03 and [3] Chihaia & Gross), which the paper argues
// against: compression saves memory but burns CPU/energy. They are also
// available as an optional transform for swapped XML payloads.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace obiswap::compress {

/// A lossless byte codec. Implementations are stateless and thread-safe.
class Codec {
 public:
  virtual ~Codec() = default;

  /// Stable codec name ("rle", "lz77", "identity").
  virtual const char* name() const = 0;

  /// Compresses `input` (worst case expands slightly). kInvalidArgument if
  /// the input exceeds what the codec's internal indexing can address.
  virtual Result<std::string> Compress(std::string_view input) const = 0;

  /// Decompresses a buffer produced by Compress. kDataLoss on corruption.
  virtual Result<std::string> Decompress(std::string_view input) const = 0;
};

/// Pass-through codec (for ablation: swapping without compression).
class IdentityCodec : public Codec {
 public:
  const char* name() const override { return "identity"; }
  Result<std::string> Compress(std::string_view input) const override {
    return std::string(input);
  }
  Result<std::string> Decompress(std::string_view input) const override {
    return std::string(input);
  }
};

/// Byte run-length encoding with varint run lengths. Cheap, weak.
class RleCodec : public Codec {
 public:
  const char* name() const override { return "rle"; }
  Result<std::string> Compress(std::string_view input) const override;
  Result<std::string> Decompress(std::string_view input) const override;
};

/// LZ77 with a hash-chain match finder, 32 KiB window, varint token stream.
/// Roughly deflate-shaped cost profile: compression is CPU-heavy relative to
/// decompression — exactly the asymmetry the paper's related-work argument
/// relies on. The hash chains index positions as int32_t, so inputs of
/// 2 GiB or more are rejected with kInvalidArgument rather than silently
/// corrupted by position truncation.
class Lz77Codec : public Codec {
 public:
  const char* name() const override { return "lz77"; }
  Result<std::string> Compress(std::string_view input) const override;
  Result<std::string> Decompress(std::string_view input) const override;
};

/// Looks up a codec by name; nullptr if unknown. Returned pointer is a
/// process-lifetime singleton.
const Codec* FindCodec(std::string_view name);

/// Names of all registered codecs.
std::vector<std::string> CodecNames();

/// Wraps `payload` in a self-describing frame: codec name, original size and
/// Adler-32 of the original, so swap-in can verify integrity end-to-end.
/// Propagates the codec's Compress error (e.g. oversized input).
Result<std::string> FrameCompress(const Codec& codec,
                                  std::string_view payload);

/// Inverse of FrameCompress: detects codec from the frame, verifies checksum.
Result<std::string> FrameDecompress(std::string_view frame);

}  // namespace obiswap::compress
