// Write-ahead intent journal for the swap pipeline.
//
// Every multi-step swap operation (swap-out, clean swap-out, swap-in, GC
// drop, replica maintenance) mutates shared state in several places: store
// entries on remote devices, the replacement-object, every inbound proxy,
// the registry record. A process kill between any two of those steps leaves
// the heap torn and — worse — leaks store keys nobody remembers. The
// journal makes each operation recoverable by persisting its *intent*
// before the side effects happen:
//
//   begin(op, cluster, swap_epoch, checksum, member oids, proxy oids)
//   replica-intent(device, key)   — BEFORE the store RPC, one per replica
//   progress(marker)              — optional stage breadcrumbs
//   commit / abort                — the operation's durable outcome
//
// An uncommitted operation found at restart is rolled back or forward by
// SwappingManager::Recover() using exactly these records (see the recovery
// decision table in ARCHITECTURE.md). Because every replica intent is
// journaled before the matching Store RPC, an orphaned store entry is
// always reclaimable.
//
// Persistence rides persist::FlashStore's dumb store/fetch/drop contract
// under one reserved key — the journal pays flash wear and virtual-time
// write costs like any other flash client (that cost is the "journal
// overhead" bench/crash_recovery bounds at ≤5% of the swap hot path).
// The on-flash image is:
//
//   "OBJL" varint(version) varint(fence_epoch)   — header
//   { varint(body_len) body crc32_le(body) }*    — records
//
// Records are CRC-guarded and epoch-fenced: a torn tail (truncation,
// bit-flip) fails its CRC or length check and parsing stops there — the
// intact prefix is recovered, never a crash; a record whose epoch differs
// from the header's is skipped as stale. Each restart bumps the fence
// epoch. Committed/aborted operations are compacted away once the record
// count passes a bound, so the image stays proportional to in-flight work.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "persist/flash_store.h"
#include "swap/swap_cluster.h"

namespace obiswap::swap {

/// The journaled operation kinds.
enum class IntentOp : uint8_t {
  kSwapOut = 1,
  kCleanSwapOut = 2,
  kSwapIn = 3,
  kDrop = 4,
  kReplicaMaintenance = 5,  ///< re-replication / evacuation placements
  /// Swap-out shipping a binary delta against a retained base image. The
  /// replica intents are the DELTA placements only: the base replicas
  /// already exist (journaled by the swap that placed them) and survive in
  /// the cluster's registry record, which recovery runs against in-process.
  kDeltaSwapOut = 6,
};

const char* IntentOpName(IntentOp op);

enum class RecordType : uint8_t {
  kBegin = 1,
  kReplicaIntent = 2,
  kProgress = 3,
  kCommit = 4,
  kAbort = 5,
};

/// One decoded journal record. Every field is always encoded (they are
/// small varints); unused ones are zero.
struct JournalRecord {
  uint64_t epoch = 0;  ///< fence epoch the record was written under
  uint64_t seq = 0;    ///< operation sequence id (shared by an op's records)
  RecordType type = RecordType::kBegin;
  IntentOp op = IntentOp::kSwapOut;  ///< meaningful on kBegin
  uint32_t cluster = 0;
  uint64_t swap_epoch = 0;
  uint32_t payload_checksum = 0;
  uint64_t device = 0;    ///< kReplicaIntent
  uint64_t key = 0;       ///< kReplicaIntent
  uint64_t progress = 0;  ///< kProgress stage marker
  std::vector<uint64_t> member_oids;  ///< kBegin: serialized member identity
  std::vector<uint64_t> proxy_oids;   ///< kBegin: inbound proxies to restore
  /// kBegin, kDeltaSwapOut only: the payload epoch and Adler-32 of the full
  /// base document the shipped delta applies to. Absent (zero) in records
  /// written by format version 1.
  uint64_t base_epoch = 0;
  uint32_t base_checksum = 0;
};

class IntentJournal {
 public:
  struct Options {
    /// Reserved flash key the image persists under. High bits set so it
    /// can never collide with SwappingManager::NextKey (device<<32 | n).
    SwapKey key = SwapKey(0xFFFFFFFFFFFF0001ull);
    /// Compaction threshold: once the in-memory image holds more than this
    /// many records, records of completed (committed/aborted) operations
    /// are dropped at the next completion. The default (0) compacts at
    /// every completion, keeping the image — and every flash write of it —
    /// proportional to in-flight work; that bound is what keeps the
    /// journal inside the hot path's overhead budget (a begin record
    /// carries every member oid, so retained history is expensive to
    /// rewrite). Raise it only to keep completed history inspectable.
    size_t compact_record_limit = 0;
  };

  struct Stats {
    uint64_t appends = 0;           ///< records appended
    uint64_t persists = 0;          ///< flash writes of the image
    uint64_t persisted_bytes = 0;   ///< bytes written to flash, cumulative
    uint64_t persist_failures = 0;  ///< flash rejected the image
    uint64_t compactions = 0;
    uint64_t append_us = 0;  ///< virtual flash time spent persisting
    uint64_t records_skipped = 0;   ///< bad/stale records seen by loads
    uint64_t bad_tail_bytes = 0;    ///< torn bytes discarded by loads
  };

  /// The folded view of one operation that never committed: everything
  /// Recover() needs to roll it back or forward.
  struct PendingOp {
    uint64_t seq = 0;
    IntentOp op = IntentOp::kSwapOut;
    SwapClusterId cluster;
    uint64_t swap_epoch = 0;
    uint32_t payload_checksum = 0;
    std::vector<ObjectId> member_oids;
    std::vector<ObjectId> proxy_oids;
    std::vector<ReplicaLocation> replica_intents;
    uint64_t progress = 0;  ///< last progress marker, 0 if none
    uint64_t base_epoch = 0;     ///< kDeltaSwapOut: base payload epoch
    uint32_t base_checksum = 0;  ///< kDeltaSwapOut: base payload Adler-32
  };

  explicit IntentJournal(persist::FlashStore* store);
  IntentJournal(persist::FlashStore* store, Options options);

  // --- write path ---------------------------------------------------------
  // Appends buffer in memory; Persist() writes the image through to flash.
  // The manager persists at WAL boundaries: after begin+intents (before
  // the first side effect) and on commit/abort.

  /// Opens a new operation; returns its seq. The base fields are only
  /// meaningful for kDeltaSwapOut (zero otherwise).
  uint64_t BeginOp(IntentOp op, SwapClusterId cluster, uint64_t swap_epoch,
                   uint32_t payload_checksum,
                   std::vector<uint64_t> member_oids,
                   std::vector<uint64_t> proxy_oids, uint64_t base_epoch = 0,
                   uint32_t base_checksum = 0);
  /// Records the intent to place a replica. MUST be persisted before the
  /// matching Store RPC or the key can leak.
  void NoteReplicaIntent(uint64_t seq, DeviceId device, SwapKey key);
  void NoteProgress(uint64_t seq, uint64_t marker);
  /// Seals the operation as done (Commit) or cleanly unwound (Abort) and
  /// persists; both make Recover() ignore it. Compaction may run here.
  Status Commit(uint64_t seq);
  Status Abort(uint64_t seq);
  /// Writes the buffered image to flash if dirty.
  Status Persist();

  // --- recovery path ------------------------------------------------------
  /// Loads the persisted image (tolerating a torn tail), folds uncommitted
  /// operations, resets the in-memory state to empty, and bumps the fence
  /// epoch past the stored one. Degrades gracefully: an unreadable or
  /// corrupt image yields an empty op list (counted in stats), never an
  /// error-crash. kNotFound (no image) is not an error.
  Result<std::vector<PendingOp>> LoadForRecovery();
  /// Empties the journal and removes the flash entry (post-recovery).
  Status Clear();

  // --- introspection / fuzz hooks -----------------------------------------
  static void EncodeRecord(const JournalRecord& record, std::string* out);
  struct ParseResult {
    uint64_t epoch = 0;  ///< header fence epoch (0 if header unreadable)
    std::vector<JournalRecord> records;
    uint64_t skipped = 0;         ///< CRC/decode/stale-epoch rejects
    uint64_t bad_tail_bytes = 0;  ///< bytes abandoned after the last good record
  };
  /// Pure parser over raw image bytes; never fails, returns what survived.
  static ParseResult Parse(std::string_view bytes);

  uint64_t epoch() const { return epoch_; }
  size_t record_count() const { return records_.size(); }
  const Stats& stats() const { return stats_; }
  SwapKey flash_key() const { return options_.key; }

 private:
  void Append(JournalRecord record);
  void CompactIfOversized();
  std::string EncodeImage() const;

  persist::FlashStore* store_;
  Options options_;
  uint64_t epoch_ = 1;
  uint64_t next_seq_ = 1;
  bool dirty_ = false;
  std::vector<JournalRecord> records_;
  Stats stats_;
};

}  // namespace obiswap::swap
