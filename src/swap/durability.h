// DurabilityMonitor: keeps swapped clusters alive under store churn.
//
// The paper's store devices are "any nearby device with wireless
// connectivity and available storage" — exactly the devices most likely to
// wander off. The monitor closes the durability loop around the
// SwappingManager's K-replica placement: it polls the discovery directory
// (mirroring ConnectivityMonitor's Poll idiom), treats a withdrawn
// announcement — or a store unreachable for `miss_threshold` consecutive
// polls — as a permanent departure, forgets the replicas that died with it
// (publishing "replica-lost"), and tops under-replicated clusters back up
// to K from a surviving copy (publishing "re-replicated"). A store that
// announces a *graceful* withdrawal can instead be evacuated proactively
// while it is still reachable. Each poll also drains the manager's
// deferred-drop queue and refreshes policy-visible gauges
// ("swap.store_churn", "swap.under_replicated", "swap.pending_drops") so
// rules can, e.g., raise the replication factor when churn is high.
//
// Two scan modes:
//
//  * Legacy (default): every poll walks every registered cluster — once per
//    departure, once for the re-replication sweep — O(clusters × replicas)
//    per poll regardless of how much actually changed.
//  * Incremental (AttachFleet): the monitor keeps a per-store reverse index
//    (store → clusters holding a replica there) plus an ordered under-
//    replicated set, both fed by a dirty-cluster queue hooked to the bus's
//    cluster-swapped-out/in/dropped events and by the monitor's own
//    repairs. A departure then touches only the departed store's indexed
//    clusters and the sweep only the under-replicated set, so poll cost
//    scales with *changed* stores, not fleet size. The index is maintained
//    as a superset (every handler re-checks registry state before acting),
//    so a stale entry costs one lookup and never a wrong repair; the
//    resulting repair sequence is byte-identical to the legacy scan's.
//    AttachFleet also hands the monitor the fleet's PlacementDirectory to
//    keep in sync with discovery: announced stores join (weighted by
//    capacity), departed stores leave, and an attached HealthTracker
//    drives the per-store healthy bit.
//
// Both modes meter their work: `scan_replicas` counts replica records the
// poll actually examined and `full_scan_replicas` what one full scan would
// have examined, so the sub-linear claim is measurable (and, detached, the
// two advance in lockstep minus churn).
#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "context/context.h"
#include "context/events.h"
#include "net/bridge.h"
#include "swap/manager.h"

namespace obiswap::fleet {
class PlacementDirectory;
}  // namespace obiswap::fleet

namespace obiswap::swap {

class DurabilityMonitor {
 public:
  struct Options {
    /// Consecutive polls a store may stay announced-but-unreachable before
    /// it is presumed departed (radio silence = departure, eventually).
    int miss_threshold = 3;
    /// AIMD pacing of the re-replication sweep: each poll is one window,
    /// repairs past the cap wait for the next poll, and store pushback
    /// halves the cap — a recovery storm stops flooding the surviving
    /// stores with K×clusters repair traffic at once. Disabled by default.
    AimdPacer::Options repair_pacer;
  };

  struct Stats {
    uint64_t polls = 0;
    uint64_t stores_departed = 0;
    uint64_t replicas_lost = 0;          ///< replica records forgotten
    uint64_t clusters_re_replicated = 0;  ///< clusters topped back up to K
    uint64_t replicas_re_replicated = 0;  ///< replicas placed by the sweeps
    uint64_t evacuated_replicas = 0;
    uint64_t drops_drained = 0;
    uint64_t clean_images_reaped = 0;  ///< dead retained images released
    uint64_t sweeps_deferred = 0;  ///< re-replication skipped in brownout
    uint64_t repairs_paced = 0;    ///< sweep repairs deferred by the AIMD cap
    // --- scan-cost visibility (both modes) ----------------------------------
    uint64_t scan_replicas = 0;      ///< replica records actually examined
    uint64_t full_scan_replicas = 0;  ///< records a full scan would examine
    uint64_t dirty_stores = 0;  ///< departed/withdrawn/breaker-flip stores
                                ///< processed
  };

  DurabilityMonitor(SwappingManager& manager, net::Discovery& discovery,
                    DeviceId self, context::EventBus& bus,
                    context::PropertyRegistry* props, Options options);
  DurabilityMonitor(SwappingManager& manager, net::Discovery& discovery,
                    DeviceId self, context::EventBus& bus,
                    context::PropertyRegistry* props = nullptr)
      : DurabilityMonitor(manager, discovery, self, bus, props, Options()) {}
  ~DurabilityMonitor();

  DurabilityMonitor(const DurabilityMonitor&) = delete;
  DurabilityMonitor& operator=(const DurabilityMonitor&) = delete;

  /// One maintenance round: departure detection, replica-loss bookkeeping,
  /// re-replication sweep, deferred-drop drain, gauge refresh.
  void Poll();

  /// Graceful-withdrawal path: the store told us it is leaving while still
  /// reachable, so its replicas are copied off before they are lost.
  /// Returns the number of replicas moved.
  Result<size_t> OnStoreWithdrawing(DeviceId device);

  /// Per-store health view (usually the tracker the StoreClient feeds).
  /// Each poll then counts *healthy* stores — reachable AND breaker-closed
  /// — and drives the manager's brownout automatically: entered when the
  /// healthy count drops below the replication factor, exited (debt repaid
  /// by the next sweep) once it recovers. Also refreshes the
  /// "swap.healthy_stores" / "swap.open_breakers" gauges.
  void AttachHealth(net::HealthTracker* health) { health_ = health; }

  /// Switches the monitor to incremental scanning (see file comment) and —
  /// when `directory` is non-null — keeps that placement directory's
  /// membership/health view synced with discovery each poll. The repair
  /// sequence stays byte-identical to the legacy scan's; only the poll's
  /// examined-record count shrinks.
  void AttachFleet(fleet::PlacementDirectory* directory);
  bool incremental() const { return incremental_; }

  const Stats& stats() const { return stats_; }

 private:
  void HandleDeparture(DeviceId device);
  void ReReplicationSweep();

  // --- incremental-mode internals -------------------------------------------
  bool FleetActive() const { return incremental_; }
  /// Records currently backing `info` (the active replica list's size).
  static size_t ReplicaRecords(const SwapClusterInfo* info);
  /// Re-reads one cluster's registry state into the reverse index, the
  /// record totals and the under-replicated set (removing it everywhere
  /// when it no longer holds store replicas).
  void RefreshCluster(SwapClusterId id);
  /// Drops every trace of `id` from the index structures.
  void EvictClusterFromIndex(SwapClusterId id);
  /// Full rebuild: one honest O(clusters) pass (attach, recovery,
  /// replication-factor change).
  void RebuildIndex();
  /// Drains the event-fed dirty-cluster queue into RefreshCluster calls,
  /// plus a pending full rebuild if one is queued.
  void DrainDirtyClusters();
  /// Keeps the fleet directory's membership/weights/health in step with
  /// discovery announcements and the health tracker.
  void SyncDirectory(const std::vector<DeviceId>& announced);

  SwappingManager& manager_;
  net::Discovery& discovery_;
  DeviceId self_;
  context::EventBus& bus_;
  context::PropertyRegistry* props_;
  Options options_;

  std::vector<DeviceId> last_announced_;
  /// device → consecutive polls spent announced-but-unreachable.
  std::unordered_map<DeviceId, int> misses_;
  net::HealthTracker* health_ = nullptr;
  Stats stats_;
  /// AIMD cap on sweep repairs per poll (options_.repair_pacer).
  AimdPacer repair_pacer_;

  // --- incremental-mode state ----------------------------------------------
  bool incremental_ = false;
  fleet::PlacementDirectory* directory_ = nullptr;
  std::vector<uint64_t> bus_tokens_;
  /// store → clusters believed to hold a replica there (superset; ordered
  /// so departure repairs run in ascending-cluster order, matching the
  /// legacy full scan).
  std::unordered_map<DeviceId, std::set<SwapClusterId>> index_;
  /// cluster → devices it is indexed under, for cheap index updates.
  std::unordered_map<SwapClusterId, std::vector<DeviceId>> cluster_devices_;
  /// cluster → active replica records at last refresh.
  std::unordered_map<SwapClusterId, size_t> cluster_records_;
  uint64_t total_records_ = 0;
  /// Clusters below K at last refresh (ordered: the sweep visits them in
  /// the legacy scan's ascending order).
  std::set<SwapClusterId> under_replicated_;
  /// Bus-fed queue of clusters whose replica state changed since the last
  /// poll (ordered set: drained ascending, deduplicated).
  std::set<SwapClusterId> dirty_clusters_;
  /// Bus-fed queue of stores whose breaker flipped since the last poll.
  std::set<DeviceId> dirty_stores_;
  bool rebuild_pending_ = false;
  size_t last_want_ = 0;
  uint64_t last_recoveries_ = 0;
};

}  // namespace obiswap::swap
