// DurabilityMonitor: keeps swapped clusters alive under store churn.
//
// The paper's store devices are "any nearby device with wireless
// connectivity and available storage" — exactly the devices most likely to
// wander off. The monitor closes the durability loop around the
// SwappingManager's K-replica placement: it polls the discovery directory
// (mirroring ConnectivityMonitor's Poll idiom), treats a withdrawn
// announcement — or a store unreachable for `miss_threshold` consecutive
// polls — as a permanent departure, forgets the replicas that died with it
// (publishing "replica-lost"), and tops under-replicated clusters back up
// to K from a surviving copy (publishing "re-replicated"). A store that
// announces a *graceful* withdrawal can instead be evacuated proactively
// while it is still reachable. Each poll also drains the manager's
// deferred-drop queue and refreshes policy-visible gauges
// ("swap.store_churn", "swap.under_replicated", "swap.pending_drops") so
// rules can, e.g., raise the replication factor when churn is high.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "context/context.h"
#include "context/events.h"
#include "net/bridge.h"
#include "swap/manager.h"

namespace obiswap::swap {

class DurabilityMonitor {
 public:
  struct Options {
    /// Consecutive polls a store may stay announced-but-unreachable before
    /// it is presumed departed (radio silence = departure, eventually).
    int miss_threshold = 3;
  };

  struct Stats {
    uint64_t polls = 0;
    uint64_t stores_departed = 0;
    uint64_t replicas_lost = 0;          ///< replica records forgotten
    uint64_t clusters_re_replicated = 0;  ///< clusters topped back up to K
    uint64_t replicas_re_replicated = 0;  ///< replicas placed by the sweeps
    uint64_t evacuated_replicas = 0;
    uint64_t drops_drained = 0;
    uint64_t clean_images_reaped = 0;  ///< dead retained images released
    uint64_t sweeps_deferred = 0;  ///< re-replication skipped in brownout
  };

  DurabilityMonitor(SwappingManager& manager, net::Discovery& discovery,
                    DeviceId self, context::EventBus& bus,
                    context::PropertyRegistry* props, Options options);
  DurabilityMonitor(SwappingManager& manager, net::Discovery& discovery,
                    DeviceId self, context::EventBus& bus,
                    context::PropertyRegistry* props = nullptr)
      : DurabilityMonitor(manager, discovery, self, bus, props, Options()) {}

  /// One maintenance round: departure detection, replica-loss bookkeeping,
  /// re-replication sweep, deferred-drop drain, gauge refresh.
  void Poll();

  /// Graceful-withdrawal path: the store told us it is leaving while still
  /// reachable, so its replicas are copied off before they are lost.
  /// Returns the number of replicas moved.
  Result<size_t> OnStoreWithdrawing(DeviceId device);

  /// Per-store health view (usually the tracker the StoreClient feeds).
  /// Each poll then counts *healthy* stores — reachable AND breaker-closed
  /// — and drives the manager's brownout automatically: entered when the
  /// healthy count drops below the replication factor, exited (debt repaid
  /// by the next sweep) once it recovers. Also refreshes the
  /// "swap.healthy_stores" / "swap.open_breakers" gauges.
  void AttachHealth(net::HealthTracker* health) { health_ = health; }

  const Stats& stats() const { return stats_; }

 private:
  void HandleDeparture(DeviceId device);
  void ReReplicationSweep();

  SwappingManager& manager_;
  net::Discovery& discovery_;
  DeviceId self_;
  context::EventBus& bus_;
  context::PropertyRegistry* props_;
  Options options_;

  std::vector<DeviceId> last_announced_;
  /// device → consecutive polls spent announced-but-unreachable.
  std::unordered_map<DeviceId, int> misses_;
  net::HealthTracker* health_ = nullptr;
  Stats stats_;
};

}  // namespace obiswap::swap
