#include "swap/manager.h"

#include <algorithm>
#include <unordered_set>

#include "common/checksum.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "compress/codec.h"
#include "fleet/placement.h"
#include "serialization/graph_binary.h"
#include "serialization/graph_xml.h"

namespace obiswap::swap {

using runtime::ClassBuilder;
using runtime::ClassInfo;
using runtime::LocalScope;
using runtime::Object;
using runtime::ObjectKind;
using runtime::Value;
using runtime::ValueKind;

namespace {
/// Event properties live in unordered maps; the journal renders them with
/// sorted keys so post-mortem dumps are byte-identical across runs.
std::string RenderEventDetail(const context::Event& event) {
  std::vector<std::string> parts;
  parts.reserve(event.ints().size() + event.strings().size());
  for (const auto& [key, value] : event.ints())
    parts.push_back(key + "=" + std::to_string(value));
  for (const auto& [key, value] : event.strings())
    parts.push_back(key + "=" + value);
  std::sort(parts.begin(), parts.end());
  std::string out;
  for (const std::string& part : parts) {
    if (!out.empty()) out += " ";
    out += part;
  }
  return out;
}
}  // namespace

SwappingManager::SwappingManager(runtime::Runtime& rt, Options options)
    : rt_(rt),
      options_(std::move(options)),
      own_telemetry_(std::make_unique<telemetry::Telemetry>()),
      telemetry_(own_telemetry_.get()),
      cache_(options_.swap_in_cache_bytes),
      write_back_pacer_(options_.write_back_pacer),
      alive_(std::make_shared<SwappingManager*>(this)) {
  OBISWAP_CHECK(options_.clusters_per_swap_cluster > 0);
  OBISWAP_CHECK(compress::FindCodec(options_.codec) != nullptr);

  std::shared_ptr<SwappingManager*> alive = alive_;
  auto proxy_finalizer = [alive](Object* obj) {
    if (*alive != nullptr) (*alive)->OnProxyFinalized(obj);
  };
  auto replacement_finalizer = [alive](Object* obj) {
    if (*alive != nullptr) (*alive)->OnReplacementFinalized(obj);
  };

  const ClassInfo* existing = rt_.types().Find(kSwapProxyClassName);
  if (existing != nullptr) {
    proxy_cls_ = existing;
    replacement_cls_ = rt_.types().Find(kReplacementClassName);
    OBISWAP_CHECK(replacement_cls_ != nullptr);
  } else {
    proxy_cls_ = *rt_.types().Register(
        ClassBuilder(kSwapProxyClassName)
            .Kind(ObjectKind::kSwapClusterProxy)
            .Field("target", ValueKind::kRef)
            .Field("source", ValueKind::kInt)
            .Field("target_sc", ValueKind::kInt)
            .Field("target_oid", ValueKind::kInt)
            .Field("assigned", ValueKind::kInt)
            .OnFinalize(proxy_finalizer));
    replacement_cls_ = *rt_.types().Register(
        ClassBuilder(kReplacementClassName)
            .Kind(ObjectKind::kReplacement)
            .Field("cluster", ValueKind::kInt)
            .Field("epoch", ValueKind::kInt)
            .OnFinalize(replacement_finalizer));
  }

  rt_.SetInterceptor(ObjectKind::kSwapClusterProxy, this);
  rt_.SetInterceptor(ObjectKind::kReplacement, this);
  rt_.SetStoreMediator(this);
  rt_.SetIdentityHook(this);
}

SwappingManager::~SwappingManager() {
  *alive_ = nullptr;
  rt_.SetInterceptor(ObjectKind::kSwapClusterProxy, nullptr);
  rt_.SetInterceptor(ObjectKind::kReplacement, nullptr);
  rt_.SetStoreMediator(nullptr);
  rt_.SetIdentityHook(nullptr);
  if (bus_ != nullptr) {
    bus_->Unsubscribe(bus_token_);
    bus_->Unsubscribe(conn_token_);
    bus_->Unsubscribe(journal_token_);
  }
}

void SwappingManager::AttachStore(net::StoreClient* client,
                                  net::Discovery* discovery) {
  store_ = client;
  discovery_ = discovery;
}

void SwappingManager::AttachTelemetry(telemetry::Telemetry* t) {
  if (t == nullptr) return;
  telemetry_ = t;
  if (clock_ != nullptr) telemetry_->AttachClock(clock_);
}

void SwappingManager::AttachHealth(net::HealthTracker* health) {
  health_ = health;
  if (health_ == nullptr) return;
  // The manager owns the bus and the journal, so it relays every breaker
  // transition for the tracker (which links only net + telemetry).
  health_->SetTransitionObserver([this](DeviceId device,
                                        net::BreakerState from,
                                        net::BreakerState to) {
    telemetry_->journal().Record(
        "degraded", "breaker-transition",
        "device=" + std::to_string(device.value()) + " " +
            net::BreakerStateName(from) + "->" + net::BreakerStateName(to));
    telemetry_->metrics()
        .GetGauge("swap.open_breakers")
        .Set(static_cast<int64_t>(health_->open_count()));
    if (bus_ != nullptr) {
      bus_->Publish(context::Event(context::kEventBreakerTransition)
                        .Set("device", static_cast<int64_t>(device.value()))
                        .Set("from", std::string(net::BreakerStateName(from)))
                        .Set("to", std::string(net::BreakerStateName(to))));
    }
  });
}

// ---------------------------------------------------------------------------
// Degraded mode (brownout)
// ---------------------------------------------------------------------------

size_t SwappingManager::EffectiveReplicationFactor() const {
  size_t full = options_.replication_factor > 0 ? options_.replication_factor
                                                : size_t{1};
  if (!brownout_) return full;
  size_t reduced = options_.brownout_replication_factor > 0
                       ? options_.brownout_replication_factor
                       : size_t{1};
  return std::min(full, reduced);
}

void SwappingManager::EnterBrownout(const char* reason) {
  if (brownout_) return;
  brownout_ = true;
  ++stats_.brownout_entries;
  telemetry_->metrics().GetGauge("swap.brownout").Set(1);
  telemetry_->journal().Record("degraded", "brownout-entered", reason);
  if (bus_ != nullptr) {
    bus_->Publish(
        context::Event(context::kEventBrownoutEntered)
            .Set("reason", std::string(reason))
            .Set("effective_k",
                 static_cast<int64_t>(EffectiveReplicationFactor())));
  }
}

void SwappingManager::ExitBrownout() {
  if (!brownout_) return;
  brownout_ = false;
  ++stats_.brownout_exits;
  telemetry_->metrics().GetGauge("swap.brownout").Set(0);
  telemetry_->journal().Record("degraded", "brownout-exited", "");
  if (bus_ != nullptr) {
    bus_->Publish(
        context::Event(context::kEventBrownoutExited)
            .Set("effective_k",
                 static_cast<int64_t>(EffectiveReplicationFactor())));
  }
}

uint64_t SwappingManager::OpBudgetLeft(uint64_t op_start_us) const {
  if (options_.op_deadline_us == 0 || clock_ == nullptr) return UINT64_MAX;
  uint64_t used = clock_->now_us() - op_start_us;
  return used >= options_.op_deadline_us ? 0
                                         : options_.op_deadline_us - used;
}

bool SwappingManager::EnqueuePendingDrop(DeviceId device, SwapKey key) {
  for (const PendingDrop& pending : pending_drops_) {
    if (pending.device == device && pending.key == key) return false;
  }
  if (options_.max_pending_drops > 0 &&
      pending_drops_.size() >= options_.max_pending_drops) {
    // A store that never returns must not grow the queue forever: the
    // oldest obligation is abandoned (its entry leaks on that store — the
    // store will reconcile it if it ever rejoins with state intact).
    pending_drops_.erase(pending_drops_.begin());
    ++stats_.pending_drop_overflow;
  }
  pending_drops_.push_back(PendingDrop{device, key});
  return true;
}

void SwappingManager::AttachBus(context::EventBus* bus) {
  bus_ = bus;
  bus_token_ = bus_->Subscribe(
      context::kEventClusterReplicated,
      [this](const context::Event& event) { OnClusterReplicated(event); });
  // Reconnection is the moment to deliver drop notifications that failed
  // while their store was out of range.
  conn_token_ = bus_->Subscribe(
      context::kEventConnectivityChanged,
      [this](const context::Event&) { FlushPendingDrops(); });
  // Mirror every bus event into the telemetry journal; a post-mortem dump
  // then interleaves middleware events with the spans around them. Record
  // only appends to a preallocated ring, so handlers that publish further
  // events (delivered re-entrantly) are safe.
  journal_token_ = bus_->SubscribeAll([this](const context::Event& event) {
    telemetry_->journal().Record("event", event.type(),
                                 RenderEventDetail(event));
  });
}

void SwappingManager::InstallPressureHandler() {
  rt_.heap().SetPressureHandler([this](size_t needed) {
    (void)needed;
    Result<SwapClusterId> victim = SwapOutVictim();
    if (!victim.ok()) {
      OBISWAP_LOG(kWarn) << "pressure: no swappable victim: "
                         << victim.status().ToString();
      return false;
    }
    OBISWAP_LOG(kInfo) << "pressure: swapped out cluster "
                       << victim->ToString();
    return true;
  });
}

Status SwappingManager::Place(Object* obj, SwapClusterId id) {
  OBISWAP_RETURN_IF_ERROR(registry_.AddMember(rt_.heap(), obj, id));
  registry_.Touch(id, ++crossing_seq_);
  // A membership change is a mutation: any retained image lacks `obj`.
  MarkDirty(id);
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Clean-image tracking
// ---------------------------------------------------------------------------

void SwappingManager::MarkDirty(SwapClusterId id) {
  SwapClusterInfo* info = registry_.Find(id);
  // Writes can only hit resident objects; a swapped cluster cannot dirty.
  if (info == nullptr || info->state != SwapState::kLoaded) return;
  info->dirty = true;
  if (info->clean_image.has_value() && !DeltaRetainsImages()) {
    // First write since the round-trip: the store copies no longer mirror
    // the resident state. Stale, not garbage — not counted as GC drops.
    // (Under delta swap-out the image is retained instead: its base
    // document is what the next swap-out diffs against.)
    InvalidateCleanImage(info, /*count_as_drop=*/false);
  }
}

void SwappingManager::ObserveFieldWrite(runtime::Runtime& rt, Object* holder,
                                        size_t slot) {
  (void)rt;
  if (holder == nullptr || holder->kind() != ObjectKind::kRegular) return;
  SwapClusterId id = holder->swap_cluster();
  MarkDirty(id);
  // Per-field dirty accounting (telemetry/gating only — the delta itself
  // is computed document-to-document at swap-out). Saturating: slots ≥ 64
  // share the top bit.
  if (SwapClusterInfo* info = registry_.Find(id);
      info != nullptr && info->state == SwapState::kLoaded &&
      info->clean_image.has_value()) {
    info->dirty_fields[holder->oid().value()] |=
        uint64_t{1} << (slot < 64 ? slot : 63);
    ++stats_.fields_marked_dirty;
  }
}

void SwappingManager::InvalidateCleanImage(SwapClusterInfo* info,
                                           bool count_as_drop) {
  if (!info->clean_image.has_value()) return;
  if (store_ != nullptr || local_ != nullptr) {
    JournaledRelease(info->id, info->clean_image->replicas, count_as_drop);
    if (info->clean_image->HasDelta())
      JournaledRelease(info->id, info->clean_image->base_replicas,
                       count_as_drop);
  }
  // The tier copy of this exact payload generation dies with the image
  // (epoch-scoped: a fresh swap-out's just-admitted newer entry survives).
  if (tier_ != nullptr)
    tier_->Release(info->id, info->clean_image->payload_epoch,
                   info->clean_image->payload_checksum);
  info->clean_image.reset();
  info->dirty_fields.clear();
  cache_.Invalidate(info->id);
  ++stats_.clean_image_invalidations;
}

size_t SwappingManager::ReapDeadCleanImages() {
  size_t reaped = 0;
  for (SwapClusterId id : registry_.Ids()) {
    SwapClusterInfo* info = registry_.Find(id);
    if (info == nullptr || info->state != SwapState::kLoaded) continue;
    if (!info->clean_image.has_value()) continue;
    if (!registry_.LiveMembers(id).empty()) continue;
    // Every member died while loaded: the image backs garbage. This is the
    // GC analogue of the replacement-finalizer drop, so it counts as one.
    InvalidateCleanImage(info, /*count_as_drop=*/true);
    ++stats_.clean_images_reaped;
    ++reaped;
  }
  return reaped;
}

void SwappingManager::set_swap_in_cache_bytes(size_t bytes) {
  options_.swap_in_cache_bytes = bytes;
  cache_.set_budget_bytes(bytes);
}

SwapState SwappingManager::StateOf(SwapClusterId id) const {
  const SwapClusterInfo* info = registry_.Find(id);
  return info == nullptr ? SwapState::kLoaded : info->state;
}

size_t SwappingManager::InboundProxyCount(SwapClusterId id) {
  auto it = inbound_.find(id);
  if (it == inbound_.end()) return 0;
  size_t write = 0;
  size_t live = 0;
  auto& list = it->second;
  for (size_t read = 0; read < list.size(); ++read) {
    Object* proxy = list[read]->get();
    if (proxy == nullptr) continue;
    // A patched assigned-proxy may have moved on to another target cluster.
    if (ProxyTargetSc(proxy) != id) continue;
    ++live;
    list[write++] = list[read];
  }
  list.resize(write);
  return live;
}

// ---------------------------------------------------------------------------
// Resolution and proxy lifecycle
// ---------------------------------------------------------------------------

bool SwappingManager::ResolveUltimate(Object* value, Resolved* out) const {
  if (value == nullptr) return false;
  switch (value->kind()) {
    case ObjectKind::kRegular:
      *out = Resolved{value, value->swap_cluster(), value->oid()};
      return true;
    case ObjectKind::kSwapClusterProxy:
      *out = Resolved{ProxyTarget(value), ProxyTargetSc(value),
                      ProxyTargetOid(value)};
      return true;
    case ObjectKind::kReplicationProxy:
    case ObjectKind::kReplacement:
      return false;  // not swap-mediated
  }
  return false;
}

Object* SwappingManager::FindReusableProxy(SwapClusterId source,
                                           ObjectId oid) {
  auto it = reuse_.find(ReuseKey{source.value(), oid.value()});
  if (it == reuse_.end()) return nullptr;
  Object* proxy = it->second->get();
  if (proxy == nullptr) {
    reuse_.erase(it);
    return nullptr;
  }
  return proxy;
}

void SwappingManager::RegisterProxy(Object* proxy, SwapClusterId target_sc,
                                    ObjectId target_oid,
                                    SwapClusterId source) {
  runtime::WeakRef weak = rt_.heap().NewWeakRef(proxy);
  inbound_[target_sc].push_back(weak);
  reuse_[ReuseKey{source.value(), target_oid.value()}] = weak;
}

Result<Object*> SwappingManager::CreateProxy(SwapClusterId source,
                                             const Resolved& resolved) {
  // Root the target across the allocation (which may collect).
  LocalScope scope(rt_.heap());
  scope.Add(resolved.target);
  OBISWAP_ASSIGN_OR_RETURN(Object * proxy, rt_.TryNewMiddleware(proxy_cls_));
  proxy->set_swap_cluster(source);
  proxy->RawSlotMutable(kProxySlotTarget) = Value::Ref(resolved.target);
  proxy->RawSlotMutable(kProxySlotSource) =
      Value::Int(static_cast<int64_t>(source.value()));
  proxy->RawSlotMutable(kProxySlotTargetSc) =
      Value::Int(static_cast<int64_t>(resolved.sc.value()));
  proxy->RawSlotMutable(kProxySlotTargetOid) =
      Value::Int(static_cast<int64_t>(resolved.oid.value()));
  proxy->RawSlotMutable(kProxySlotAssigned) = Value::Int(0);
  RegisterProxy(proxy, resolved.sc, resolved.oid, source);
  ++stats_.proxies_created;
  return proxy;
}

Result<Object*> SwappingManager::ResolveForContext(SwapClusterId context,
                                                   Object* value) {
  Resolved resolved;
  if (!ResolveUltimate(value, &resolved)) return value;  // pass-through kinds

  if (IsSwapProxy(value) && ProxySource(value) == context) {
    // Already the right mediation for this context.
    ++stats_.proxies_reused;
    return value;
  }
  if (resolved.sc == context) {
    // Rule iii: a reference into the holder's own swap-cluster is stored
    // raw (dismantle any proxy).
    if (IsSwapProxy(value)) ++stats_.proxies_dismantled;
    return resolved.target;
  }
  // Rules i/ii: reuse the proxy for this (source, target) pair or create
  // one.
  if (Object* reusable = FindReusableProxy(context, resolved.oid);
      reusable != nullptr) {
    ++stats_.proxies_reused;
    return reusable;
  }
  return CreateProxy(context, resolved);
}

Object* SwappingManager::MediateStore(runtime::Runtime& rt, Object* holder,
                                      Object* value) {
  (void)rt;
  SwapClusterId context =
      holder == nullptr ? kSwapCluster0 : holder->swap_cluster();
  if (!context.valid()) context = kSwapCluster0;
  // A reference store mutates the holder's cluster (belt to the write
  // barrier's braces — SetGlobal, for one, never raises the barrier).
  MarkDirty(context);
  if (holder != nullptr && holder->kind() == ObjectKind::kRegular) {
    // The mediated store does not name a slot: saturate the holder's mask.
    if (SwapClusterInfo* info = registry_.Find(context);
        info != nullptr && info->state == SwapState::kLoaded &&
        info->clean_image.has_value()) {
      info->dirty_fields[holder->oid().value()] = ~uint64_t{0};
    }
  }
  Result<Object*> mediated = ResolveForContext(context, value);
  if (!mediated.ok()) {
    // Allocation of the mediating proxy failed; store the raw reference —
    // referential integrity beats mediation (and the cluster then simply
    // cannot swap until memory recovers).
    OBISWAP_LOG(kWarn) << "store mediation failed: "
                       << mediated.status().ToString();
    return value;
  }
  return *mediated;
}

bool SwappingManager::SameObject(const Object* a, const Object* b) {
  auto identity = [](const Object* obj) -> uint64_t {
    switch (obj->kind()) {
      case ObjectKind::kRegular:
        return obj->oid().value();
      case ObjectKind::kSwapClusterProxy:
        return ProxyTargetOid(obj).value();
      case ObjectKind::kReplicationProxy:
        // Slot 0 of a replication proxy is the remote oid.
        return static_cast<uint64_t>(obj->RawSlot(0).as_int());
      case ObjectKind::kReplacement:
        return obj->oid().value();
    }
    return obj->oid().value();
  };
  return identity(a) == identity(b);
}

Status SwappingManager::Assign(Object* proxy) {
  if (!IsSwapProxy(proxy))
    return InvalidArgumentError("assign() takes a swap-cluster-proxy");
  if (ProxySource(proxy) != kSwapCluster0)
    return FailedPreconditionError(
        "assign() is only valid for proxies with source in swap-cluster-0");
  proxy->RawSlotMutable(kProxySlotAssigned) = Value::Int(1);
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Adaptive regrouping
// ---------------------------------------------------------------------------

Status SwappingManager::MergeSwapClusters(SwapClusterId into,
                                          SwapClusterId from) {
  if (into == from) return InvalidArgumentError("merge of a cluster with itself");
  SwapClusterInfo* into_info = registry_.Find(into);
  SwapClusterInfo* from_info = registry_.Find(from);
  if (into_info == nullptr || from_info == nullptr)
    return NotFoundError("unknown swap-cluster in merge");
  if (into_info->state != SwapState::kLoaded ||
      from_info->state != SwapState::kLoaded)
    return FailedPreconditionError("merge requires both clusters loaded");
  for (SwapClusterId active : rt_.context_stack()) {
    if (active == into || active == from)
      return FailedPreconditionError("merge of an executing swap-cluster");
  }
  if (victim_filter_ && (victim_filter_(into) || victim_filter_(from)))
    return FailedPreconditionError("merge of a pinned swap-cluster");

  // A merge changes both memberships: neither retained image survives.
  MarkDirty(into);
  MarkDirty(from);
  cache_.Invalidate(from);

  // 1. Relabel every object of `from` (registered or method-created) and
  //    fold membership into `into`.
  rt_.heap().ForEachObject([&](Object* obj) {
    if (obj->kind() != ObjectKind::kRegular) return;
    if (obj->swap_cluster() != from) return;
    obj->set_swap_cluster(into);
    into_info->members.push_back(rt_.heap().NewWeakRef(obj));
  });

  // 2. Relabel proxies: targets into `from` now target `into`; proxies
  //    sourced in `from` now speak for `into`.
  rt_.heap().ForEachObject([&](Object* proxy) {
    if (proxy->kind() != ObjectKind::kSwapClusterProxy) return;
    if (ProxyTargetSc(proxy) == from) {
      proxy->RawSlotMutable(kProxySlotTargetSc) =
          Value::Int(static_cast<int64_t>(into.value()));
      inbound_[into].push_back(rt_.heap().NewWeakRef(proxy));
    }
    if (ProxySource(proxy) == from) {
      proxy->RawSlotMutable(kProxySlotSource) =
          Value::Int(static_cast<int64_t>(into.value()));
      proxy->set_swap_cluster(into);
      ReuseKey old_key{from.value(), ProxyTargetOid(proxy).value()};
      auto it = reuse_.find(old_key);
      if (it != reuse_.end() && it->second->get() == proxy) {
        runtime::WeakRef weak = it->second;
        reuse_.erase(it);
        reuse_.emplace(
            ReuseKey{into.value(), ProxyTargetOid(proxy).value()}, weak);
      }
    }
  });

  // 3. Dismantle proxies that became internal: any slot in the merged
  //    cluster holding an into->into proxy reverts to the raw reference —
  //    "there are no further indirections ... the application runs at
  //    full-speed".
  rt_.heap().ForEachObject([&](Object* holder) {
    if (holder->kind() != ObjectKind::kRegular) return;
    if (holder->swap_cluster() != into) return;
    for (size_t i = 0; i < holder->slot_count(); ++i) {
      const Value& slot = holder->RawSlot(i);
      if (!slot.is_ref() || !IsSwapProxy(slot.ref())) continue;
      Object* proxy = slot.ref();
      if (ProxySource(proxy) == into && ProxyTargetSc(proxy) == into) {
        holder->RawSlotMutable(i).set_ref(ProxyTarget(proxy));
        ++stats_.proxies_dismantled;
      }
    }
  });

  // 4. Fold bookkeeping and retire `from`.
  into_info->crossing_count += from_info->crossing_count;
  into_info->last_crossing_seq =
      std::max(into_info->last_crossing_seq, from_info->last_crossing_seq);
  into_info->replication_clusters.insert(
      into_info->replication_clusters.end(),
      from_info->replication_clusters.begin(),
      from_info->replication_clusters.end());
  registry_.Remove(from);
  inbound_.erase(from);
  // `from` no longer exists; whatever speculative state it carried is
  // neither hit nor waste — just gone.
  staged_.erase(from);
  speculative_loaded_.erase(from);
  ++stats_.merges;
  return OkStatus();
}

Result<SwapClusterId> SwappingManager::SplitSwapCluster(
    SwapClusterId id, const std::vector<Object*>& members_to_move) {
  SwapClusterInfo* info = registry_.Find(id);
  if (info == nullptr) return NotFoundError("unknown swap-cluster in split");
  if (info->state != SwapState::kLoaded)
    return FailedPreconditionError("split requires a loaded cluster");
  if (members_to_move.empty())
    return InvalidArgumentError("split with no members to move");
  for (SwapClusterId active : rt_.context_stack()) {
    if (active == id)
      return FailedPreconditionError("split of an executing swap-cluster");
  }
  if (victim_filter_ && victim_filter_(id))
    return FailedPreconditionError("split of a pinned swap-cluster");
  std::unordered_set<const Object*> moving;
  std::unordered_set<uint64_t> moving_oids;
  for (Object* member : members_to_move) {
    if (member == nullptr || member->kind() != ObjectKind::kRegular ||
        member->swap_cluster() != id)
      return InvalidArgumentError(
          "split members must be regular objects of the split cluster");
    moving.insert(member);
    moving_oids.insert(member->oid().value());
  }

  // Members leave `id`: its retained image (if any) is stale. The fresh
  // cluster is born dirty (default), as it has never been serialized.
  MarkDirty(id);

  SwapClusterId fresh = registry_.Create();
  SwapClusterInfo* fresh_info = registry_.Find(fresh);
  for (Object* member : members_to_move) {
    member->set_swap_cluster(fresh);
    fresh_info->members.push_back(rt_.heap().NewWeakRef(member));
  }

  // Existing proxies whose ultimate target moved now mediate into the new
  // cluster.
  rt_.heap().ForEachObject([&](Object* proxy) {
    if (proxy->kind() != ObjectKind::kSwapClusterProxy) return;
    if (ProxyTargetSc(proxy) != id) return;
    if (moving_oids.count(ProxyTargetOid(proxy).value()) == 0) return;
    proxy->RawSlotMutable(kProxySlotTargetSc) =
        Value::Int(static_cast<int64_t>(fresh.value()));
    inbound_[fresh].push_back(rt_.heap().NewWeakRef(proxy));
  });

  // Raw references that now cross the new boundary acquire proxies, in
  // both directions ("for every reference linking two different
  // swap-clusters ... a special proxy always remains in the way").
  // Two phases: mediation allocates (and may collect), which must not
  // happen while iterating the heap's object list.
  struct PendingMediation {
    Object* holder;
    size_t slot;
    Object* target;
  };
  std::vector<PendingMediation> pending;
  rt_.heap().ForEachObject([&](Object* holder) {
    if (holder->kind() != ObjectKind::kRegular) return;
    SwapClusterId holder_sc = holder->swap_cluster();
    if (holder_sc != id && holder_sc != fresh) return;
    for (size_t i = 0; i < holder->slot_count(); ++i) {
      const Value& slot = holder->RawSlot(i);
      if (!slot.is_ref() || slot.ref() == nullptr) continue;
      Object* target = slot.ref();
      if (target->kind() != ObjectKind::kRegular) continue;
      if (target->swap_cluster() == holder_sc) continue;
      pending.push_back(PendingMediation{holder, i, target});
    }
  });
  LocalScope scope(rt_.heap());
  for (const PendingMediation& entry : pending) {
    scope.Add(entry.holder);
    scope.Add(entry.target);
  }
  for (const PendingMediation& entry : pending) {
    OBISWAP_ASSIGN_OR_RETURN(
        Object * mediated,
        ResolveForContext(entry.holder->swap_cluster(), entry.target));
    entry.holder->RawSlotMutable(entry.slot).set_ref(mediated);
  }

  registry_.Touch(id, ++crossing_seq_);
  registry_.Touch(fresh, crossing_seq_);
  ++stats_.splits;
  return fresh;
}

// ---------------------------------------------------------------------------
// Invocation interception
// ---------------------------------------------------------------------------

Result<Value> SwappingManager::Invoke(runtime::Runtime& rt, Object* receiver,
                                      std::string_view method,
                                      std::vector<Value>& args) {
  (void)rt;
  if (IsReplacement(receiver)) {
    return FailedPreconditionError(
        "direct invocation on a replacement-object: applications reach a "
        "swapped cluster only through swap-cluster-proxies");
  }
  return ProxyInvoke(receiver, method, args);
}

Result<Value> SwappingManager::ProxyInvoke(Object* proxy,
                                           std::string_view method,
                                           std::vector<Value>& args) {
  // The mediated cluster may be swapped out: fault it back in as a whole
  // ("since one of the objects enclosed ... becomes needed again, there
  // is a high probability that the others will be as well"). A loop, not a
  // single attempt: the crossing observer below may run prefetch work whose
  // allocations pressure-swap the very cluster being entered, requiring a
  // second fault-in.
  Object* target = nullptr;
  auto fault_in = [&]() -> Status {
    for (int attempt = 0; attempt < 4; ++attempt) {
      target = ProxyTarget(proxy);
      if (target == nullptr)
        return InternalError("swap-cluster-proxy with null target");
      if (!IsReplacement(target)) return OkStatus();
      OBISWAP_RETURN_IF_ERROR(SwapIn(ReplacementCluster(target)));
    }
    return InternalError("swap-in did not patch the faulting proxy");
  };
  OBISWAP_RETURN_IF_ERROR(fault_in());

  SwapClusterId target_sc = ProxyTargetSc(proxy);
  ++stats_.boundary_crossings;
  registry_.RecordCrossing(target_sc, ++crossing_seq_);
  NoteClusterEntered(target_sc);
  OBISWAP_RETURN_IF_ERROR(fault_in());  // observer work may have re-swapped it

  // Mediate reference arguments into the target's context (the generated
  // proxy code "verifies references being passed as parameters").
  for (Value& arg : args) {
    if (!arg.is_ref() || arg.ref() == nullptr) continue;
    OBISWAP_ASSIGN_OR_RETURN(Object * mediated,
                             ResolveForContext(target_sc, arg.ref()));
    arg.set_ref(mediated);
  }

  Result<Value> result = rt_.Invoke(target, method, std::move(args));
  if (!result.ok()) return result;
  return MediateReturn(proxy, *std::move(result));
}

Result<Value> SwappingManager::MediateReturn(Object* proxy, Value result) {
  if (!result.is_ref() || result.ref() == nullptr) return result;

  // Root the returned object: mediation may allocate.
  LocalScope scope(rt_.heap());
  scope.Add(result.ref());

  Resolved resolved;
  if (!ResolveUltimate(result.ref(), &resolved)) return result;

  SwapClusterId source = ProxySource(proxy);
  if (resolved.sc == source) {
    // Returning home: hand the raw object back (rule iii).
    if (IsSwapProxy(result.ref())) ++stats_.proxies_dismantled;
    result.set_ref(resolved.target);
    return result;
  }

  if (ProxyAssigned(proxy)) {
    // assign() optimization (§4): "instead of creating a new
    // swap-cluster-proxy to be returned to application code (discarding
    // itself), it patches itself."
    ObjectId old_oid = ProxyTargetOid(proxy);
    auto it = reuse_.find(ReuseKey{source.value(), old_oid.value()});
    if (it != reuse_.end() && it->second->get() == proxy) reuse_.erase(it);
    proxy->RawSlotMutable(kProxySlotTarget) = Value::Ref(resolved.target);
    proxy->RawSlotMutable(kProxySlotTargetSc) =
        Value::Int(static_cast<int64_t>(resolved.sc.value()));
    proxy->RawSlotMutable(kProxySlotTargetOid) =
        Value::Int(static_cast<int64_t>(resolved.oid.value()));
    inbound_[resolved.sc].push_back(rt_.heap().NewWeakRef(proxy));
    ++stats_.assigned_patches;
    result.set_ref(proxy);
    return result;
  }

  // Default path: a fresh proxy mediates the returned reference (paper's
  // tests A2/B1 — "an additional swap-cluster-proxy is created ... later
  // reclaimed by the LGC").
  OBISWAP_ASSIGN_OR_RETURN(Object * fresh, CreateProxy(source, resolved));
  result.set_ref(fresh);
  return result;
}

// ---------------------------------------------------------------------------
// Swap-out / swap-in
// ---------------------------------------------------------------------------

SwapKey SwappingManager::NextKey() {
  uint64_t self = store_ != nullptr ? store_->self().value() : 0;
  return SwapKey((self << 32) | next_key_++);
}

Status SwappingManager::StoreAt(DeviceId device, SwapKey key,
                                const std::string& payload,
                                uint64_t deadline_us) {
  if (IsLocalDevice(device)) return local_->Store(key, payload);
  OBISWAP_CHECK(store_ != nullptr);
  return store_->Store(device, key, payload, deadline_us, call_priority_);
}

Result<std::string> SwappingManager::FetchFrom(DeviceId device, SwapKey key,
                                               uint64_t deadline_us) {
  if (IsLocalDevice(device)) return local_->Fetch(key);
  if (store_ == nullptr)
    return FailedPreconditionError("no store client attached");
  return store_->Fetch(device, key, deadline_us, call_priority_);
}

Status SwappingManager::DropAt(DeviceId device, SwapKey key) {
  if (IsLocalDevice(device)) return local_->Drop(key);
  if (store_ == nullptr)
    return FailedPreconditionError("no store client attached");
  return store_->Drop(device, key, /*deadline_us=*/0, call_priority_);
}

// ---------------------------------------------------------------------------
// Crash consistency: fault points + write-ahead intent journaling
// ---------------------------------------------------------------------------

Status SwappingManager::CheckFaultPoint(const char* point) {
  if (faults_ == nullptr) return OkStatus();
  FaultInjector::Outcome outcome = faults_->Hit(point);
  switch (outcome.action) {
    case FaultInjector::Action::kError:
      return UnavailableError(std::string("injected fault at ") + point);
    case FaultInjector::Action::kCrash:
      // The operation is abandoned at this instruction boundary: heap,
      // flash and remote stores keep whatever the op mutated so far, and
      // every entry point refuses until Recover().
      crashed_ = true;
      telemetry_->journal().Record("fault", "crash", point);
      return InternalError(std::string("simulated crash at ") + point);
    case FaultInjector::Action::kNone:
    case FaultInjector::Action::kDelay:
      break;  // delays already advanced the injector's clock
  }
  return OkStatus();
}

namespace {
Status CrashedError() {
  return FailedPreconditionError(
      "manager crashed mid-operation; Recover() required");
}

/// Journal progress marker: the op's payload was placed in the volatile
/// RAM tier — nothing durable holds it, so recovery must not trust the
/// placement.
constexpr uint64_t kProgressTierRamPlacement = 1;
}  // namespace

Result<bool> SwappingManager::TryTierAdmit(SwapClusterInfo* info, uint64_t seq,
                                           uint32_t wire_checksum,
                                           const std::string& payload,
                                           SwapKey* tier_key) {
  const SwapClusterId id = info->id;
  const uint64_t epoch = info->swap_epoch + 1;
  if (tier_->ram_enabled()) {
    if (Status fault = CheckFaultPoint("swap_out.tier_ram"); !fault.ok()) {
      if (crashed_) return fault;
      // Injected clean error: skip the RAM tier this once, fall through.
    } else if (tier_->AdmitRam(id, epoch, wire_checksum, payload)) {
      // RAM placement leaves a progress breadcrumb on the op record: if
      // the op stays torn, recovery sees a payload that lived nowhere
      // durable and rolls the cluster back off the live heap.
      if (journal_ != nullptr) {
        journal_->NoteProgress(seq, kProgressTierRamPlacement);
        (void)journal_->Persist();
      }
      // Caller-visible identity only — nothing is stored under this key.
      *tier_key = NextKey();
      return true;
    }
  }
  if (tier_->flash_enabled()) {
    const SwapKey key = NextKey();
    if (journal_ != nullptr) {
      // Intent before the flash write, exactly like a remote replica: a
      // crash inside the write leaves the key reclaimable.
      journal_->NoteReplicaIntent(seq, tier_->flash_device(), key);
      (void)journal_->Persist();
    }
    if (Status fault = CheckFaultPoint("swap_out.tier_flash"); !fault.ok()) {
      if (crashed_) return fault;
      return false;  // clean error: the orphan intent unwinds with the op
    }
    if (tier_->AdmitFlash(id, epoch, wire_checksum, key, payload).ok()) {
      *tier_key = key;
      return true;
    }
  }
  return false;
}

void SwappingManager::MaybeCompleteTierWriteBack(SwapClusterInfo* info) {
  if (tier_ == nullptr || !tier_->PendingWriteBack(info->id)) return;
  const std::vector<ReplicaLocation>* active = info->ActiveReplicas();
  if (active == nullptr) return;
  const size_t want = options_.replication_factor > 0
                          ? options_.replication_factor
                          : size_t{1};
  // Only off-device copies count toward durability: a local-flash replica
  // (or the tier's own key adopted by recovery) is still this device.
  size_t remote = 0;
  for (const ReplicaLocation& replica : *active) {
    if (IsLocalDevice(replica.device)) continue;
    if (tier_->flash_device().valid() &&
        replica.device == tier_->flash_device())
      continue;
    ++remote;
  }
  if (remote >= want) tier_->MarkWrittenBack(info->id);
}

std::vector<uint64_t> SwappingManager::LiveInboundProxyOids(SwapClusterId id) {
  std::vector<uint64_t> oids;
  auto it = inbound_.find(id);
  if (it == inbound_.end()) return oids;
  for (const runtime::WeakRef& weak : it->second) {
    Object* proxy = weak->get();
    if (proxy == nullptr || ProxyTargetSc(proxy) != id) continue;
    oids.push_back(proxy->oid().value());
  }
  return oids;
}

std::vector<Object*> SwappingManager::HeapProxiesTargeting(SwapClusterId id) {
  std::vector<Object*> proxies;
  rt_.heap().ForEachObject([&](Object* obj) {
    if (obj->kind() != ObjectKind::kSwapClusterProxy) return;
    if (ProxyTargetSc(obj) != id) return;
    proxies.push_back(obj);
  });
  return proxies;
}

void SwappingManager::JournaledRelease(
    SwapClusterId id, const std::vector<ReplicaLocation>& replicas,
    bool count_as_drop) {
  if (replicas.empty()) return;
  uint64_t seq = 0;
  if (journal_ != nullptr) {
    seq = journal_->BeginOp(IntentOp::kDrop, id, /*swap_epoch=*/0,
                            /*payload_checksum=*/0, {}, {});
    for (const ReplicaLocation& replica : replicas)
      journal_->NoteReplicaIntent(seq, replica.device, replica.key);
    (void)journal_->Persist();
  }
  ReleaseReplicas(replicas, count_as_drop);
  if (crashed_) return;  // torn mid-release: recovery finishes from the seq
  if (journal_ != nullptr) (void)journal_->Commit(seq);
}

// ---------------------------------------------------------------------------
// Recovery (simulated restart)
// ---------------------------------------------------------------------------

namespace {
bool IntentsContain(const std::vector<ReplicaLocation>& intents,
                    const ReplicaLocation& replica) {
  for (const ReplicaLocation& intent : intents)
    if (intent == replica) return true;
  return false;
}
bool IntentsIntersect(const std::vector<ReplicaLocation>& a,
                      const std::vector<ReplicaLocation>& b) {
  for (const ReplicaLocation& replica : b)
    if (IntentsContain(a, replica)) return true;
  return false;
}
}  // namespace

void SwappingManager::EnqueueOrphanDrops(
    const std::vector<ReplicaLocation>& intents, RecoveryReport* report) {
  // Recovery never talks to stores beyond read-only verification; orphaned
  // keys go through the pending-drop queue and drain once the system is
  // healthy again.
  for (const ReplicaLocation& intent : intents) {
    if (!EnqueuePendingDrop(intent.device, intent.key)) continue;
    ++stats_.drops_deferred;
    ++report->orphan_drops_enqueued;
  }
}

const char* SwappingManager::RecoverTornSwapOut(
    const IntentJournal::PendingOp& op, SwapClusterInfo* info,
    RecoveryReport* report) {
  if (info == nullptr) {
    // The cluster record is gone (merged or removed since the journal was
    // written): only the journaled keys matter — reclaim them.
    EnqueueOrphanDrops(op.replica_intents, report);
    ++report->rolled_back;
    return "rolled_back";
  }
  std::unordered_map<uint64_t, Object*> members_by_oid;
  for (Object* member : registry_.LiveMembers(info->id))
    members_by_oid[member->oid().value()] = member;
  std::vector<Object*> proxies = HeapProxiesTargeting(info->id);

  // Roll back only if the heap still holds the whole cluster: every
  // journaled member alive, and every proxy the torn op patched can be
  // re-pointed at a live member.
  bool can_roll_back = true;
  for (ObjectId oid : op.member_oids) {
    if (members_by_oid.count(oid.value()) == 0) {
      can_roll_back = false;
      break;
    }
  }
  if (can_roll_back) {
    for (Object* proxy : proxies) {
      Object* target = ProxyTarget(proxy);
      if (target != nullptr && IsReplacement(target) &&
          members_by_oid.count(ProxyTargetOid(proxy).value()) == 0) {
        can_roll_back = false;
        break;
      }
    }
  }
  if (can_roll_back) {
    for (Object* proxy : proxies) {
      Object* target = ProxyTarget(proxy);
      if (target == nullptr || !IsReplacement(target)) continue;
      proxy->RawSlotMutable(kProxySlotTarget) = Value::Ref(
          members_by_oid.find(ProxyTargetOid(proxy).value())->second);
      ++report->proxies_restored;
    }
    info->state = SwapState::kLoaded;
    info->dirty = true;
    // The registry may list keys beyond the journaled intents: committed
    // maintenance ops (re-replication, evacuation) run between the torn
    // swap-out and the restart. Rolling back retires every one of them —
    // including a delta swap-out's carried base group; the next swap-out
    // ships a full payload.
    EnqueueOrphanDrops(info->replicas, report);
    info->replicas.clear();
    EnqueueOrphanDrops(info->base_replicas, report);
    info->base_replicas.clear();
    info->base_epoch = 0;
    info->base_checksum = 0;
    info->base_payload_bytes = 0;
    info->merged_checksum = 0;
    info->swapped_oids.clear();
    info->replacement = runtime::WeakRef();
    if (info->clean_image.has_value()) {
      EnqueueOrphanDrops(info->clean_image->replicas, report);
      EnqueueOrphanDrops(info->clean_image->base_replicas, report);
      info->clean_image->replicas.clear();
      info->clean_image.reset();
      ++stats_.clean_image_invalidations;
    }
    info->dirty_fields.clear();
    cache_.Invalidate(info->id);
    EnqueueOrphanDrops(op.replica_intents, report);
    ++report->rolled_back;
    return "rolled_back";
  }

  // Roll forward: the heap copy is gone; adopt the journaled replicas —
  // plus any keys committed maintenance ops added to the registry after
  // the torn op, which carry the same payload — if one of them verifiably
  // serves the journaled payload.
  std::vector<ReplicaLocation> intents;
  for (const ReplicaLocation& intent : op.replica_intents)
    if (!IntentsContain(intents, intent)) intents.push_back(intent);
  for (const ReplicaLocation& replica : info->replicas)
    if (!IntentsContain(intents, replica)) intents.push_back(replica);
  size_t verified_bytes = 0;
  bool verified = false;
  for (const ReplicaLocation& replica : ReplicaFetchOrder(intents)) {
    Result<std::string> fetched = FetchFrom(replica.device, replica.key);
    if (!fetched.ok()) continue;
    Result<std::string> xml_text = compress::FrameDecompress(*fetched);
    if (!xml_text.ok() || Adler32(*xml_text) != op.payload_checksum)
      continue;
    verified_bytes = fetched->size();
    verified = true;
    break;
  }
  // A torn delta swap-out is only recoverable if a full base document also
  // survives: the journaled base epoch/checksum identify it, and its keys
  // live in the registry record — base_replicas if the state transition
  // happened, otherwise the retained image's base group (which is the
  // image's own replicas when the image held a full payload).
  std::vector<ReplicaLocation> base_intents;
  bool base_verified = true;
  if (op.op == IntentOp::kDeltaSwapOut) {
    for (const ReplicaLocation& replica : info->base_replicas)
      if (!IntentsContain(base_intents, replica))
        base_intents.push_back(replica);
    if (info->clean_image.has_value()) {
      const CleanImage& image = *info->clean_image;
      const std::vector<ReplicaLocation>& group =
          image.HasDelta() ? image.base_replicas : image.replicas;
      for (const ReplicaLocation& replica : group)
        if (!IntentsContain(base_intents, replica))
          base_intents.push_back(replica);
    }
    base_verified = false;
    for (const ReplicaLocation& replica : ReplicaFetchOrder(base_intents)) {
      Result<std::string> fetched = FetchFrom(replica.device, replica.key);
      if (!fetched.ok()) continue;
      Result<std::string> text = compress::FrameDecompress(*fetched);
      if (!text.ok() || Adler32(*text) != op.base_checksum) continue;
      base_verified = true;
      break;
    }
  }
  // The torn op's replacement survives as the heap object labelled with
  // this cluster id — found by scan, since the crash may have hit before
  // any proxy was patched to reference it.
  Object* replacement = nullptr;
  rt_.heap().ForEachObject([&](Object* obj) {
    if (replacement == nullptr && IsReplacement(obj) &&
        ReplacementCluster(obj) == info->id) {
      replacement = obj;
    }
  });
  if (!verified || !base_verified || replacement == nullptr) {
    // Either no candidate replica holds a usable copy (for a delta: of the
    // delta or of its base), or there is no replacement to carry the
    // outbound references a future swap-in would need. With the heap copy
    // also gone, the cluster is lost.
    EnqueueOrphanDrops(intents, report);
    EnqueueOrphanDrops(base_intents, report);
    info->state = SwapState::kDropped;
    info->replicas.clear();
    info->base_replicas.clear();
    info->base_epoch = 0;
    info->base_checksum = 0;
    info->base_payload_bytes = 0;
    info->merged_checksum = 0;
    info->swapped_oids.clear();
    info->replacement = runtime::WeakRef();
    if (info->clean_image.has_value()) {
      EnqueueOrphanDrops(info->clean_image->replicas, report);
      EnqueueOrphanDrops(info->clean_image->base_replicas, report);
      info->clean_image->replicas.clear();
      info->clean_image.reset();
      ++stats_.clean_image_invalidations;
    }
    cache_.Invalidate(info->id);
    ++report->clusters_lost;
    return "lost";
  }
  for (Object* proxy : proxies) {
    Object* target = ProxyTarget(proxy);
    if (target != nullptr && !IsReplacement(target)) {
      // Finish the torn patch: un-patched proxies join the swapped state.
      proxy->RawSlotMutable(kProxySlotTarget) = Value::Ref(replacement);
      ++report->proxies_restored;
    }
  }
  info->state = SwapState::kSwapped;
  info->replicas = std::move(intents);  // the sweep prunes unverifiable ones
  info->swap_epoch = std::max(info->swap_epoch, op.swap_epoch);
  if (op.op == IntentOp::kSwapOut || op.op == IntentOp::kDeltaSwapOut)
    info->payload_epoch = op.swap_epoch;
  info->payload_checksum = op.payload_checksum;
  info->swapped_oids = op.member_oids;
  info->swapped_object_count = op.member_oids.size();
  info->swapped_payload_bytes = verified_bytes;
  info->replacement = rt_.heap().NewWeakRef(replacement);
  replacement->RawSlotMutable(kReplSlotEpoch) =
      Value::Int(static_cast<int64_t>(info->swap_epoch));
  if (op.op == IntentOp::kDeltaSwapOut) {
    // Adopt the verified base group alongside the delta; the sweep prunes
    // whatever fails verification against the journaled base checksum.
    info->base_replicas = std::move(base_intents);
    info->base_epoch = op.base_epoch;
    info->base_checksum = op.base_checksum;
    info->base_payload_bytes = 0;  // unknown after a crash; telemetry only
  } else {
    info->base_replicas.clear();
    info->base_epoch = 0;
    info->base_checksum = 0;
    info->base_payload_bytes = 0;
  }
  // The merged document's checksum cannot be recomputed from the journal;
  // a zero sends the next swap-in down the verified fetch path.
  info->merged_checksum = 0;
  if (info->clean_image.has_value()) {
    // Any image replica not adopted above (into the delta or base group)
    // serves a stale payload now.
    std::vector<ReplicaLocation> remnants;
    for (const ReplicaLocation& replica : info->clean_image->replicas)
      if (!IntentsContain(info->replicas, replica) &&
          !IntentsContain(info->base_replicas, replica))
        remnants.push_back(replica);
    for (const ReplicaLocation& replica : info->clean_image->base_replicas)
      if (!IntentsContain(info->replicas, replica) &&
          !IntentsContain(info->base_replicas, replica))
        remnants.push_back(replica);
    EnqueueOrphanDrops(remnants, report);
    info->clean_image->replicas.clear();
    info->clean_image.reset();
    ++stats_.clean_image_invalidations;
  }
  ++report->rolled_forward;
  return "rolled_forward";
}

const char* SwappingManager::RecoverTornSwapIn(
    const IntentJournal::PendingOp& op, SwapClusterInfo* info,
    RecoveryReport* report) {
  if (info == nullptr) {
    EnqueueOrphanDrops(op.replica_intents, report);
    ++report->rolled_back;
    return "rolled_back";
  }
  if (info->state != SwapState::kSwapped) {
    // The swap-in finalized before the crash; only the commit (and, when
    // no image was retained, the stale-replica release) is missing. Any
    // journaled key the cluster no longer accounts for is an orphan.
    std::vector<ReplicaLocation> orphans;
    for (const ReplicaLocation& intent : op.replica_intents) {
      bool kept =
          IntentsContain(info->replicas, intent) ||
          IntentsContain(info->base_replicas, intent) ||
          (info->clean_image.has_value() &&
           (IntentsContain(info->clean_image->replicas, intent) ||
            IntentsContain(info->clean_image->base_replicas, intent)));
      if (!kept) orphans.push_back(intent);
    }
    EnqueueOrphanDrops(orphans, report);
    ++report->rolled_forward;
    return "rolled_forward";
  }
  std::vector<Object*> proxies = HeapProxiesTargeting(info->id);
  Object* replacement =
      info->replacement != nullptr ? info->replacement->get() : nullptr;
  if (replacement != nullptr) {
    // Roll back: any proxy already patched to a fresh object returns to
    // the replacement; the half-materialized objects become garbage.
    for (Object* proxy : proxies) {
      Object* target = ProxyTarget(proxy);
      if (target == nullptr || IsReplacement(target)) continue;
      proxy->RawSlotMutable(kProxySlotTarget) = Value::Ref(replacement);
      ++report->proxies_restored;
    }
    ++report->rolled_back;
    return "rolled_back";
  }
  // Replacement dead: every proxy was already patched (a proxy's strong
  // ref would otherwise keep the replacement alive), so the swap-in went
  // too far to unwind. Complete it from the heap — the patched proxies
  // kept the materialized objects alive; members no proxy's graph reaches
  // were never reachable to the application anyway.
  info->members.clear();
  rt_.heap().ForEachObject([&](Object* obj) {
    if (obj->kind() != ObjectKind::kRegular) return;
    if (obj->swap_cluster() != info->id) return;
    info->members.push_back(rt_.heap().NewWeakRef(obj));
  });
  std::vector<ReplicaLocation> stale = std::move(info->replicas);
  for (const ReplicaLocation& replica : info->base_replicas)
    stale.push_back(replica);
  info->state = SwapState::kLoaded;
  info->dirty = true;
  info->replicas.clear();
  info->base_replicas.clear();
  info->base_epoch = 0;
  info->base_checksum = 0;
  info->base_payload_bytes = 0;
  info->merged_checksum = 0;
  info->swapped_oids.clear();
  info->replacement = runtime::WeakRef();
  EnqueueOrphanDrops(stale, report);
  cache_.Invalidate(info->id);
  registry_.RecordCrossing(info->id, ++crossing_seq_);
  ++report->rolled_forward;
  return "rolled_forward";
}

const char* SwappingManager::RecoverTornDrop(
    const IntentJournal::PendingOp& op, SwapClusterInfo* info,
    RecoveryReport* report) {
  // A drop's outcome was decided before its first RPC; finish reclaiming.
  EnqueueOrphanDrops(op.replica_intents, report);
  if (info != nullptr) {
    if (info->clean_image.has_value() &&
        (IntentsIntersect(op.replica_intents, info->clean_image->replicas) ||
         IntentsIntersect(op.replica_intents,
                          info->clean_image->base_replicas))) {
      // Torn image release: the journaled keys are queued above, but a
      // delta image releases its two groups as separate drop ops — queue
      // whichever group keys the torn op's intents missed, then drop the
      // remnant without re-releasing.
      std::vector<ReplicaLocation> rest;
      for (const ReplicaLocation& replica : info->clean_image->replicas)
        if (!IntentsContain(op.replica_intents, replica))
          rest.push_back(replica);
      for (const ReplicaLocation& replica : info->clean_image->base_replicas)
        if (!IntentsContain(op.replica_intents, replica))
          rest.push_back(replica);
      EnqueueOrphanDrops(rest, report);
      info->clean_image->replicas.clear();
      info->clean_image.reset();
      cache_.Invalidate(info->id);
      ++stats_.clean_image_invalidations;
    }
    if (info->state == SwapState::kSwapped &&
        (IntentsIntersect(op.replica_intents, info->replicas) ||
         IntentsIntersect(op.replica_intents, info->base_replicas))) {
      // Torn GC drop (the replacement died): finish retiring the cluster,
      // both payload groups included.
      std::vector<ReplicaLocation> rest;
      for (const ReplicaLocation& replica : info->replicas)
        if (!IntentsContain(op.replica_intents, replica))
          rest.push_back(replica);
      for (const ReplicaLocation& replica : info->base_replicas)
        if (!IntentsContain(op.replica_intents, replica))
          rest.push_back(replica);
      EnqueueOrphanDrops(rest, report);
      info->state = SwapState::kDropped;
      info->replicas.clear();
      info->base_replicas.clear();
      info->base_epoch = 0;
      info->base_checksum = 0;
      info->base_payload_bytes = 0;
      info->merged_checksum = 0;
      info->replacement = runtime::WeakRef();
      cache_.Invalidate(info->id);
    } else if (info->state == SwapState::kDropped) {
      info->replicas.clear();
      info->base_replicas.clear();
    }
  }
  ++report->rolled_forward;
  return "rolled_forward";
}

const char* SwappingManager::RecoverTornMaintenance(
    const IntentJournal::PendingOp& op, SwapClusterInfo* info,
    RecoveryReport* report) {
  // Keys a replica list adopted before the crash stay; the rest (placed
  // but never adopted, or evacuated away) are orphans.
  std::vector<ReplicaLocation> orphans;
  for (const ReplicaLocation& intent : op.replica_intents) {
    bool adopted = false;
    if (info != nullptr) {
      adopted =
          IntentsContain(info->replicas, intent) ||
          IntentsContain(info->base_replicas, intent) ||
          (info->clean_image.has_value() &&
           (IntentsContain(info->clean_image->replicas, intent) ||
            IntentsContain(info->clean_image->base_replicas, intent)));
    }
    if (!adopted) orphans.push_back(intent);
  }
  EnqueueOrphanDrops(orphans, report);
  ++report->rolled_back;
  return "rolled_back";
}

void SwappingManager::RecoverOp(const IntentJournal::PendingOp& op,
                                RecoveryReport* report) {
  SwapClusterInfo* info =
      op.cluster.valid() ? registry_.Find(op.cluster) : nullptr;
  const char* action = "ignored";
  switch (op.op) {
    case IntentOp::kSwapOut:
    case IntentOp::kCleanSwapOut:
    case IntentOp::kDeltaSwapOut:
      action = RecoverTornSwapOut(op, info, report);
      break;
    case IntentOp::kSwapIn:
      action = RecoverTornSwapIn(op, info, report);
      break;
    case IntentOp::kDrop:
      action = RecoverTornDrop(op, info, report);
      break;
    case IntentOp::kReplicaMaintenance:
      action = RecoverTornMaintenance(op, info, report);
      break;
  }
  telemetry_->journal().Record("recovery", IntentOpName(op.op), action);
  if (bus_ != nullptr) {
    bus_->Publish(
        context::Event(context::kEventRecoveryOp)
            .Set("swap_cluster", static_cast<int64_t>(op.cluster.value()))
            .Set("op", std::string(IntentOpName(op.op)))
            .Set("action", std::string(action)));
  }
}

void SwappingManager::VerifySwappedClusters(RecoveryReport* report) {
  for (SwapClusterId id : registry_.Ids()) {
    SwapClusterInfo* info = registry_.Find(id);
    if (info == nullptr || info->state != SwapState::kSwapped) continue;
    // Each group verifies against its own checksum: the shipped payload
    // (full document or delta) and — for a delta-swapped cluster — the
    // base document the delta applies to.
    auto verify_group = [&](std::vector<ReplicaLocation>& group,
                            uint32_t checksum) -> bool {
      const bool was_nonempty = !group.empty();
      std::vector<ReplicaLocation> keep;
      bool any_unverifiable = false;
      for (const ReplicaLocation& replica : group) {
        Result<std::string> fetched = FetchFrom(replica.device, replica.key);
        if (!fetched.ok()) {
          if (fetched.status().code() == StatusCode::kNotFound) {
            // The store is reachable and the key is gone: forget it.
            ++report->replicas_discarded;
          } else {
            // Out of range (or no client attached): unverifiable — the
            // benefit of the doubt, like the failover fetch gives it.
            keep.push_back(replica);
            any_unverifiable = true;
          }
          continue;
        }
        Result<std::string> xml_text = compress::FrameDecompress(*fetched);
        if (xml_text.ok() && Adler32(*xml_text) == checksum) {
          keep.push_back(replica);
          ++report->replicas_verified;
        } else {
          // Corrupt bytes under a live key: reclaim them.
          ++stats_.data_loss_failovers;
          ++report->replicas_discarded;
          if (EnqueuePendingDrop(replica.device, replica.key))
            ++stats_.drops_deferred;
        }
      }
      group = std::move(keep);
      // Every copy gone (none left unverifiable): the swap-in will fail.
      return group.empty() && !any_unverifiable && was_nonempty;
    };
    bool lost = verify_group(info->replicas, info->payload_checksum);
    if (verify_group(info->base_replicas, info->base_checksum)) lost = true;
    // A flash-tier copy (already re-verified by the tier reconcile, which
    // runs first) still holds the payload: the probe serves it and the
    // durability sweep re-replicates from it — not lost.
    if (lost && tier_ != nullptr &&
        tier_->HasFlashCopy(id, info->payload_epoch, info->payload_checksum))
      lost = false;
    if (lost) ++report->clusters_lost;
  }
}

void SwappingManager::ReconcileCleanImages(RecoveryReport* report) {
  const bool can_check = store_ != nullptr && discovery_ != nullptr;
  for (SwapClusterId id : registry_.Ids()) {
    SwapClusterInfo* info = registry_.Find(id);
    if (info == nullptr || info->state != SwapState::kLoaded) continue;
    if (!info->clean_image.has_value()) continue;
    CleanImage& image = *info->clean_image;
    const bool had_delta = image.HasDelta();
    auto prune = [&](std::vector<ReplicaLocation>& group) {
      std::vector<ReplicaLocation> live;
      for (const ReplicaLocation& replica : group) {
        if (IsLocalDevice(replica.device)) {
          if (local_ != nullptr && local_->Contains(replica.key)) {
            live.push_back(replica);
          } else {
            if (EnqueuePendingDrop(replica.device, replica.key))
              ++stats_.drops_deferred;
          }
          continue;
        }
        net::StoreNode* node =
            can_check && discovery_->IsNearby(store_->self(), replica.device)
                ? discovery_->NodeFor(replica.device)
                : nullptr;
        if (node == nullptr) {
          live.push_back(replica);  // out of range: benefit of the doubt
          continue;
        }
        if (!node->crashed() && node->Contains(replica.key)) {
          live.push_back(replica);
        } else {
          if (EnqueuePendingDrop(replica.device, replica.key))
            ++stats_.drops_deferred;
        }
      }
      group = std::move(live);
    };
    prune(image.replicas);
    prune(image.base_replicas);
    // A verified flash-tier copy backs a replica-less image the same way a
    // store copy would (the tier probe serves the next swap-in and the
    // durability sweep re-replicates from it) — delta images excluded, the
    // tiers only hold full payloads.
    const bool tier_backed =
        !had_delta && tier_ != nullptr &&
        tier_->HasFlashCopy(id, image.payload_epoch, image.payload_checksum);
    // A delta image is only usable as a pair: losing every base copy (or
    // every delta copy) strands whatever survived in the other group.
    if ((image.replicas.empty() && !tier_backed) ||
        (had_delta && image.base_replicas.empty())) {
      for (const ReplicaLocation& replica : image.replicas)
        if (EnqueuePendingDrop(replica.device, replica.key))
          ++stats_.drops_deferred;
      for (const ReplicaLocation& replica : image.base_replicas)
        if (EnqueuePendingDrop(replica.device, replica.key))
          ++stats_.drops_deferred;
      if (tier_ != nullptr)
        tier_->Release(id, image.payload_epoch, image.payload_checksum);
      info->clean_image.reset();
      cache_.Invalidate(id);
      ++stats_.clean_image_invalidations;
      ++report->clean_images_dropped;
    }
  }
}

void SwappingManager::ReconcilePayloadCache() {
  if (cache_.budget_bytes() == 0) return;
  for (SwapClusterId id : registry_.Ids()) {
    SwapClusterInfo* info = registry_.Find(id);
    if (info == nullptr) continue;
    uint64_t epoch = 0;
    uint32_t checksum = 0;
    if (info->state == SwapState::kSwapped) {
      // A delta-swapped cluster's legitimate cache entry is the BASE
      // document under the base epoch, not the shipped delta.
      epoch = info->DeltaSwapped() ? info->base_epoch : info->payload_epoch;
      checksum =
          info->DeltaSwapped() ? info->base_checksum : info->payload_checksum;
    } else if (info->state == SwapState::kLoaded &&
               info->clean_image.has_value()) {
      epoch = info->clean_image->BaseEpoch();
      checksum = info->clean_image->BaseChecksum();
    } else {
      cache_.Invalidate(id);
      continue;
    }
    const std::string* cached = cache_.Get(id, epoch);
    if (cached != nullptr && Adler32(*cached) != checksum)
      cache_.Invalidate(id);
  }
}

Result<SwappingManager::RecoveryReport> SwappingManager::Recover() {
  telemetry::ScopedSpan span(telemetry_, "recover", "recovery",
                             telemetry::Hist(telemetry_, "recovery_us"));
  const uint64_t begin_us = clock_ != nullptr ? clock_->now_us() : 0;
  RecoveryReport report;

  std::vector<IntentJournal::PendingOp> pending;
  if (journal_ != nullptr) {
    OBISWAP_ASSIGN_OR_RETURN(pending, journal_->LoadForRecovery());
    report.journal_records_skipped = journal_->stats().records_skipped;
    report.journal_bad_tail_bytes = journal_->stats().bad_tail_bytes;
  }
  report.pending_ops = pending.size();
  // The strictest restart assumption for the tier stack: the compressed
  // RAM pool is volatile and did not survive. Flash-tier entries are
  // reconciled below, after replay has settled the registry.
  if (tier_ != nullptr)
    report.tier_ram_entries_lost = tier_->DropRamPoolForRecovery();
  // Newest first: a nested operation (the pressure handler's swap-out
  // firing inside another op's allocation) must unwind before the op that
  // triggered it.
  for (auto it = pending.rbegin(); it != pending.rend(); ++it)
    RecoverOp(*it, &report);

  if (tier_ != nullptr) {
    // Flash-tier reconcile, both directions: entries whose cluster rolled
    // back, dropped, or re-swapped at another epoch are retired (slots
    // freed — a subsequent pending drop of the key tolerates kNotFound),
    // and entries whose flash bytes are gone or corrupt are discarded.
    // Survivors are re-verified and stay pinned, so the durability sweep
    // re-queues their write-back. Runs before VerifySwappedClusters so a
    // verified flash copy can veto a loss verdict below.
    tier::TierManager::ReconcileOutcome outcome = tier_->ReconcileAfterRestart(
        [this](SwapClusterId id, uint64_t epoch, uint32_t checksum) {
          const SwapClusterInfo* info = registry_.Find(id);
          if (info == nullptr) return false;
          if (info->state == SwapState::kSwapped)
            return !info->DeltaSwapped() && info->payload_epoch == epoch &&
                   info->payload_checksum == checksum;
          if (info->state == SwapState::kLoaded &&
              info->clean_image.has_value())
            return !info->clean_image->HasDelta() &&
                   info->clean_image->payload_epoch == epoch &&
                   info->clean_image->payload_checksum == checksum;
          return false;
        });
    report.tier_flash_verified = outcome.verified;
    report.tier_flash_discarded = outcome.discarded;
    // A torn flash-tier admission replays like any replica intent, so
    // roll-forward may have adopted the tier's own flash key into the
    // cluster's replica list. When the tier entry also survived reconcile,
    // the one flash entry would be owned twice — and the first owner to
    // drop it would strand the other with a dangling key. The tier keeps
    // it (its copy is the verified, wear-accounted one); the replica-list
    // alias is removed.
    for (SwapClusterId id : registry_.Ids()) {
      SwapClusterInfo* info = registry_.Find(id);
      if (info == nullptr) continue;
      const SwapKey tier_key = tier_->FlashKey(id);
      if (!tier_key.valid()) continue;
      auto alias = [&](const ReplicaLocation& replica) {
        return replica.device == tier_->flash_device() &&
               replica.key == tier_key;
      };
      std::erase_if(info->replicas, alias);
      if (info->clean_image.has_value())
        std::erase_if(info->clean_image->replicas, alias);
    }
    // A swapped cluster whose every copy was the RAM tier is gone: RAM
    // does not survive a restart and write-back had not reached anything
    // durable. VerifySwappedClusters never counts empty groups (they were
    // never non-empty to begin with), so the loss is counted here — before
    // the verify sweep, so a cluster whose replica list it empties is not
    // counted twice.
    for (SwapClusterId id : registry_.Ids()) {
      SwapClusterInfo* info = registry_.Find(id);
      if (info == nullptr || info->state != SwapState::kSwapped) continue;
      if (!info->replicas.empty() || !info->base_replicas.empty()) continue;
      if (tier_->HasFlashCopy(id, info->payload_epoch,
                              info->payload_checksum))
        continue;
      ++report.clusters_lost;
    }
  }
  VerifySwappedClusters(&report);
  ReconcileCleanImages(&report);
  ReconcilePayloadCache();

  if (journal_ != nullptr) OBISWAP_RETURN_IF_ERROR(journal_->Clear());
  crashed_ = false;
  ++stats_.recoveries;
  if (clock_ != nullptr) stats_.recovery_us += clock_->now_us() - begin_us;
  if (bus_ != nullptr) {
    bus_->Publish(
        context::Event(context::kEventRecoveryCompleted)
            .Set("pending_ops", static_cast<int64_t>(report.pending_ops))
            .Set("rolled_back", static_cast<int64_t>(report.rolled_back))
            .Set("rolled_forward",
                 static_cast<int64_t>(report.rolled_forward))
            .Set("proxies_restored",
                 static_cast<int64_t>(report.proxies_restored))
            .Set("orphan_drops",
                 static_cast<int64_t>(report.orphan_drops_enqueued))
            .Set("clusters_lost",
                 static_cast<int64_t>(report.clusters_lost)));
  }
  return report;
}

Status SwappingManager::set_wire_format(const std::string& format) {
  if (format != "xml" && format != "binary")
    return InvalidArgumentError("wire format must be \"xml\" or \"binary\": " +
                                format);
  options_.wire_format = format;
  return OkStatus();
}

Result<serialization::SerializedCluster> SwappingManager::SerializeForWire(
    uint32_t cluster_attr_id, const std::vector<Object*>& members,
    const serialization::DescribeExternalFn& describe) {
  if (options_.wire_format == "binary")
    return serialization::SerializeClusterBinary(rt_, cluster_attr_id,
                                                 members, describe);
  return serialization::SerializeCluster(rt_, cluster_attr_id, members,
                                         describe);
}

Result<SwapKey> SwappingManager::SwapOut(SwapClusterId id) {
  if (crashed_) return CrashedError();
  PriorityScope priority_scope(this, net::Priority::kSwapOut);
  telemetry::ScopedSpan op_span(telemetry_, "swap_out", "swap",
                                telemetry::Hist(telemetry_, "swap_out_us"));
  const uint64_t op_begin_us = clock_ != nullptr ? clock_->now_us() : 0;
  SwapClusterInfo* info = registry_.Find(id);
  if (info == nullptr)
    return NotFoundError("no swap-cluster " + id.ToString());
  if (info->state != SwapState::kLoaded)
    return FailedPreconditionError("swap-cluster " + id.ToString() + " is " +
                                   SwapStateName(info->state));
  if ((store_ == nullptr || discovery_ == nullptr) && local_ == nullptr)
    return FailedPreconditionError("no store client or local store attached");
  for (SwapClusterId active : rt_.context_stack()) {
    if (active == id)
      return FailedPreconditionError("swap-cluster " + id.ToString() +
                                     " is currently executing");
  }
  if (victim_filter_ && victim_filter_(id)) {
    return FailedPreconditionError("swap-cluster " + id.ToString() +
                                   " is pinned (uncommitted transactional "
                                   "writes)");
  }

  std::vector<Object*> members = registry_.LiveMembers(id);
  if (members.empty())
    return FailedPreconditionError("swap-cluster " + id.ToString() +
                                   " has no live members");

  // Zero-transfer fast path: a cluster untouched since its last swap-in
  // whose store copies still exist reuses them — no serialize, no compress,
  // no bytes on the radio.
  if (info->LoadedClean()) {
    if (std::optional<Result<SwapKey>> fast = TryCleanSwapOut(info))
      return *std::move(fast);
    // The image was unusable (dead outbound proxy or every replica lost)
    // and has been invalidated; fall through to a full serialize+ship.
  }

  // Objects allocated inside a member's methods inherit the cluster label
  // without explicit registration; fold every same-cluster object reachable
  // from the registered members into the swap unit.
  {
    std::unordered_set<const Object*> seen(members.begin(), members.end());
    for (size_t scan = 0; scan < members.size(); ++scan) {
      Object* member = members[scan];
      for (size_t i = 0; i < member->slot_count(); ++i) {
        const Value& slot = member->RawSlot(i);
        if (!slot.is_ref() || slot.ref() == nullptr) continue;
        Object* target = slot.ref();
        if (target->kind() != ObjectKind::kRegular) continue;
        if (target->swap_cluster() != id) continue;
        if (!seen.insert(target).second) continue;
        members.push_back(target);
        info->members.push_back(rt_.heap().NewWeakRef(target));
      }
    }
  }
  LocalScope scope(rt_.heap());
  for (Object* member : members) scope.Add(member);

  // Serialize. External targets must be mediation machinery — a raw
  // reference to another swap-cluster would violate the §3 invariant.
  auto describe =
      [](Object* external) -> Result<serialization::ExternalRef> {
    if (external->kind() != ObjectKind::kSwapClusterProxy &&
        external->kind() != ObjectKind::kReplicationProxy) {
      return InternalError(
          "raw cross-swap-cluster reference found during swap-out "
          "(mediation invariant violated): target class " +
          external->cls().name());
    }
    serialization::ExternalRef ref;
    ref.oid = external->oid();
    ref.class_name = external->cls().name();
    return ref;
  };
  serialization::SerializedCluster serialized;
  {
    telemetry::ScopedSpan span(
        telemetry_, "serialize", "swap",
        telemetry::Hist(telemetry_, "swap_out_serialize_us"));
    OBISWAP_RETURN_IF_ERROR(CheckFaultPoint("swap_out.serialize"));
    OBISWAP_ASSIGN_OR_RETURN(
        serialized, SerializeForWire(id.value(), members, describe));
  }

  // Delta attempt: a dirty cluster whose clean image was retained (delta
  // mode) diffs the fresh document against the image's base document (still
  // in the payload cache) and ships only the difference. The base replicas
  // already on the stores are carried over; only the delta is placed.
  bool ship_delta = false;
  std::string wire_doc;  // what actually goes on the link
  uint64_t ship_base_epoch = 0;
  uint32_t ship_base_checksum = 0;
  size_t ship_base_payload_bytes = 0;
  std::vector<ReplicaLocation> base_group;       // carried base replicas
  std::vector<ReplicaLocation> old_delta_group;  // superseded delta replicas
  if (DeltaRetainsImages() && info->clean_image.has_value() &&
      serialization::IsBinaryClusterPayload(serialized.payload)) {
    const CleanImage& image = *info->clean_image;
    OBISWAP_RETURN_IF_ERROR(CheckFaultPoint("swap_out.diff"));
    const std::string* base = cache_.Get(id, image.BaseEpoch());
    if (base != nullptr && serialization::IsBinaryClusterPayload(*base) &&
        Adler32(*base) == image.BaseChecksum()) {
      ++stats_.delta_base_cache_hits;
      auto delta =
          serialization::DiffClusterPayloads(*base, serialized.payload);
      if (delta.ok() && delta->size() < serialized.payload.size()) {
        // Pre-ship insurance: the merged document must be byte-identical
        // to the fresh serialization before the delta may replace it.
        auto merged = serialization::ApplyClusterDelta(*base, *delta);
        if (merged.ok() && *merged == serialized.payload) {
          ship_delta = true;
          wire_doc = *std::move(delta);
          ship_base_epoch = image.BaseEpoch();
          ship_base_checksum = image.BaseChecksum();
          if (image.HasDelta()) {
            base_group = image.base_replicas;
            ship_base_payload_bytes = image.base_payload_bytes;
            old_delta_group = image.replicas;
          } else {
            base_group = image.replicas;
            ship_base_payload_bytes = image.payload_bytes;
          }
        }
      }
    }
    if (!ship_delta) ++stats_.delta_fallbacks;
  }
  if (!ship_delta) wire_doc = serialized.payload;

  std::string payload;
  {
    telemetry::ScopedSpan span(
        telemetry_, "compress", "swap",
        telemetry::Hist(telemetry_, "swap_out_compress_us"));
    OBISWAP_RETURN_IF_ERROR(CheckFaultPoint("swap_out.compress"));
    const compress::Codec* codec = compress::FindCodec(options_.codec);
    OBISWAP_ASSIGN_OR_RETURN(payload,
                             compress::FrameCompress(*codec, wire_doc));
  }
  // Checksum of the decompressed bytes actually shipped (delta or full) —
  // what fetch verification and failover check replica-by-replica.
  const uint32_t wire_checksum = Adler32(wire_doc);

  // WAL boundary: the operation's identity (new epoch, checksum, member and
  // proxy oids) is journaled before any side effect; each replica key is
  // journaled — and persisted — before its store RPC, so an orphaned store
  // entry is always reclaimable.
  uint64_t seq = 0;
  if (journal_ != nullptr) {
    std::vector<uint64_t> member_oids;
    member_oids.reserve(members.size());
    for (Object* member : members)
      member_oids.push_back(member->oid().value());
    seq = journal_->BeginOp(
        ship_delta ? IntentOp::kDeltaSwapOut : IntentOp::kSwapOut, id,
        info->swap_epoch + 1, wire_checksum, std::move(member_oids),
        LiveInboundProxyOids(id), ship_base_epoch, ship_base_checksum);
  }
  if (Status fault = CheckFaultPoint("swap_out.journal_begin"); !fault.ok()) {
    // A clean (non-crash) error must seal the op or the dangling begin
    // record would be persisted by a later operation and replayed.
    if (!crashed_ && journal_ != nullptr) (void)journal_->Abort(seq);
    return fault;
  }

  // Tiered hierarchy: the payload lands in the fastest local tier with
  // headroom; the remote replicas become write-back debt the durability
  // sweep repays on its virtual-time ticks (remote stores stay the sole
  // durability tier). A delta ship bypasses the tiers — a delta is useless
  // without its remote base group, so it takes the normal placement path.
  bool tier_admitted = false;
  SwapKey tier_key;
  if (TierActive() && !ship_delta) {
    Result<bool> admit =
        TryTierAdmit(info, seq, wire_checksum, payload, &tier_key);
    if (!admit.ok()) return admit.status();  // injected crash mid-admission
    tier_admitted = *admit;
  }

  // Place the payload on up to `replication_factor` nearby stores, each on
  // a distinct device under its own key ("stores the swapped objects in any
  // nearby device with wireless connectivity and available storage"). The
  // first placement is mandatory; extra replicas are best-effort durability
  // against store departure. The local flash is last resort only — it is
  // part of the device's own scarce resources.
  size_t need = payload.size();
  if (need < options_.store_min_free_bytes)
    need = options_.store_min_free_bytes;
  // Brownout lowers the placement target; the shortfall is re-replication
  // debt the DurabilityMonitor repays once the neighborhood recovers.
  const size_t full_want = options_.replication_factor > 0
                               ? options_.replication_factor
                               : size_t{1};
  size_t want = EffectiveReplicationFactor();
  std::vector<ReplicaLocation> placed;
  Status stored = UnavailableError("no nearby store device with " +
                                   FormatBytes(need) + " free");
  telemetry::ScopedSpan ship_span(
      telemetry_, "ship", "swap",
      telemetry::Hist(telemetry_, "swap_out_ship_us"));
  if (!tier_admitted && store_ != nullptr && discovery_ != nullptr) {
    // A key minted for a failed store attempt is reused for the next
    // candidate (the failed store never recorded it) — the key space is not
    // burned by flaky placements. A run of consecutive failures aborts the
    // loop: every candidate failing in a row means the network is sick, and
    // retrying down a long discovery list only stalls the caller.
    const bool via_directory = DirectoryActive();
    std::vector<net::StoreNode*> candidates =
        via_directory ? DirectoryCandidates(id, want, need)
                      : discovery_->NearbyStores(store_->self(), need);
    if (health_ != nullptr) {
      // Healthy stores first (most-free order within each group); stores
      // with a tripped breaker sink to the back — still reachable as
      // last-resort probe pressure, never the first choice.
      std::stable_partition(candidates.begin(), candidates.end(),
                            [this](net::StoreNode* node) {
                              return health_->IsHealthy(node->device());
                            });
    }
    SwapKey key;
    bool key_minted = false;
    size_t consecutive_failures = 0;
    for (net::StoreNode* candidate : candidates) {
      if (placed.size() >= want) break;
      if (consecutive_failures >= options_.max_consecutive_store_failures)
        break;
      uint64_t budget = OpBudgetLeft(op_begin_us);
      if (budget == 0) {
        // The operation's end-to-end budget is spent: fail fast rather
        // than stacking retries across the remaining candidates. A partial
        // placement still completes the swap-out (under-replicated).
        stored = DeadlineExceededError("swap-out budget exhausted after " +
                                       std::to_string(placed.size()) +
                                       " replicas");
        break;
      }
      if (!key_minted) {
        key = NextKey();
        key_minted = true;
      }
      if (journal_ != nullptr) {
        // Intent before RPC: if the crash lands inside the store call, the
        // persisted intent is the only record this key ever existed.
        journal_->NoteReplicaIntent(seq, candidate->device(), key);
        (void)journal_->Persist();
      }
      Status attempt = CheckFaultPoint("swap_out.ship_replica");
      if (attempt.ok())
        attempt = store_->Store(candidate->device(), key, payload,
                                budget == UINT64_MAX ? 0 : budget);
      if (crashed_) return attempt;
      if (attempt.ok()) {
        placed.push_back(ReplicaLocation{candidate->device(), key});
        if (via_directory) ++stats_.fleet_placements;
        key_minted = false;
        consecutive_failures = 0;
      } else {
        stored = attempt;
        ++consecutive_failures;
      }
    }
  }
  if (!tier_admitted && placed.empty() && local_ != nullptr &&
      local_->free_bytes() >= payload.size()) {
    SwapKey key = NextKey();
    if (journal_ != nullptr) {
      journal_->NoteReplicaIntent(seq, local_->device(), key);
      (void)journal_->Persist();
    }
    stored = CheckFaultPoint("swap_out.local_store");
    if (stored.ok()) stored = local_->Store(key, payload);
    if (crashed_) return stored;
    if (stored.ok()) {
      placed.push_back(ReplicaLocation{local_->device(), key});
      ++stats_.local_swap_outs;
    }
  }
  ship_span.Close();
  if (!tier_admitted && placed.empty()) {
    // Clean placement failure: every journaled key is known-unstored (the
    // failed stores never recorded them); seal the op as unwound.
    if (journal_ != nullptr) (void)journal_->Abort(seq);
    ++stats_.swap_out_failures;
    if (stored.code() == StatusCode::kDeadlineExceeded)
      ++stats_.deadline_aborts;
    return stored;
  }
  if (tier_admitted) {
    // Tier placement is not under-replication debt in the brownout sense:
    // the write-back obligation is tracked by the tier's pinned entries
    // and repaid by the durability sweep.
    ++stats_.tier_swap_outs;
  } else {
    stats_.replicas_placed += placed.size();
    // Under-replication is always measured against the configured K: a
    // brownout placement at reduced K is still debt to repay.
    if (placed.size() < full_want) ++stats_.under_replicated_outs;
    if (brownout_ && want < full_want) ++stats_.brownout_swap_outs;
  }

  telemetry::ScopedSpan patch_span(
      telemetry_, "patch", "swap",
      telemetry::Hist(telemetry_, "swap_out_patch_us"));
  // Build the replacement-object: "simply an array of references ... filled
  // with references to every swap-cluster-proxy referenced by" the cluster.
  Result<Object*> replacement_or(nullptr);
  if (Status fault = CheckFaultPoint("swap_out.build_replacement");
      !fault.ok()) {
    if (crashed_) return fault;
    replacement_or = fault;  // injected allocation failure
  } else {
    replacement_or = rt_.TryNewMiddleware(replacement_cls_);
  }
  if (!replacement_or.ok()) {
    // Roll back the store entries; the cluster stays loaded. Failed drops
    // (store out of range) are queued for retry — a placed replica must
    // never leak just because the rollback could not reach its store.
    ReleaseReplicas(placed, /*count_as_drop=*/false);
    if (tier_admitted) tier_->Release(id);
    if (crashed_) return InternalError("simulated crash during rollback");
    if (journal_ != nullptr) (void)journal_->Abort(seq);
    ++stats_.swap_out_failures;
    return replacement_or.status();
  }
  Object* replacement = *replacement_or;
  scope.Add(replacement);
  ++info->swap_epoch;
  replacement->RawSlotMutable(kReplSlotCluster) =
      Value::Int(static_cast<int64_t>(id.value()));
  replacement->RawSlotMutable(kReplSlotEpoch) =
      Value::Int(static_cast<int64_t>(info->swap_epoch));
  for (Object* outbound : serialized.outbound) {
    replacement->AppendSlot(Value::Ref(outbound));
  }
  rt_.heap().RefreshAccounting(replacement);

  // Patch every inbound swap-cluster-proxy to target the replacement
  // ("every swap-cluster referencing objects contained in swap-cluster-2
  // will be made to reference ReplacementObject-2 instead").
  auto& inbound = inbound_[id];
  size_t write = 0;
  std::vector<std::pair<Object*, Object*>> patched;  // (proxy, old target)
  Status patch_fault = OkStatus();
  for (size_t read = 0; read < inbound.size(); ++read) {
    Object* proxy = inbound[read]->get();
    if (proxy == nullptr) continue;
    if (ProxyTargetSc(proxy) == id && patch_fault.ok()) {
      patch_fault = CheckFaultPoint("swap_out.patch_proxy");
      if (patch_fault.ok()) {
        patched.emplace_back(proxy, proxy->RawSlot(kProxySlotTarget).ref());
        proxy->RawSlotMutable(kProxySlotTarget) = Value::Ref(replacement);
      }
    }
    inbound[write++] = inbound[read];
  }
  inbound.resize(write);
  if (patch_fault.ok()) patch_fault = CheckFaultPoint("swap_out.finalize");
  if (!patch_fault.ok()) {
    // A crash leaves the patch torn for Recover(); a clean error unwinds
    // it here — proxies back to their members, placements released.
    if (crashed_) return patch_fault;
    for (const auto& [proxy, old_target] : patched)
      proxy->RawSlotMutable(kProxySlotTarget) = Value::Ref(old_target);
    ReleaseReplicas(placed, /*count_as_drop=*/false);
    if (tier_admitted) tier_->Release(id);
    if (crashed_) return InternalError("simulated crash during rollback");
    if (journal_ != nullptr) (void)journal_->Abort(seq);
    ++stats_.swap_out_failures;
    return patch_fault;
  }
  patch_span.Close();

  info->state = SwapState::kSwapped;
  info->replicas = placed;
  info->replacement = rt_.heap().NewWeakRef(replacement);
  info->swapped_object_count = members.size();
  info->swapped_payload_bytes = payload.size();
  info->swapped_oids.clear();
  info->swapped_oids.reserve(members.size());
  for (Object* member : members) info->swapped_oids.push_back(member->oid());
  info->payload_epoch = info->swap_epoch;
  info->payload_checksum = wire_checksum;
  // For a delta ship, the cache below holds the fresh full document; its
  // own checksum is what the next swap-in's cache probe must verify
  // (payload_checksum is the delta's).
  info->merged_checksum = ship_delta ? Adler32(serialized.payload) : 0;
  if (ship_delta) {
    // `placed` hold the delta; the base document stays on the stores that
    // already had it (adopted from the retained image).
    info->base_replicas = std::move(base_group);
    info->base_epoch = ship_base_epoch;
    info->base_checksum = ship_base_checksum;
    info->base_payload_bytes = ship_base_payload_bytes;
  } else {
    info->base_replicas.clear();
    info->base_epoch = 0;
    info->base_checksum = 0;
    info->base_payload_bytes = 0;
  }
  ++info->swap_out_count;

  // Commit-last: once this record persists, recovery treats the swap-out
  // as fully applied. A crash here replays as a torn (uncommitted) op and
  // rolls forward off the verified replicas.
  OBISWAP_RETURN_IF_ERROR(CheckFaultPoint("swap_out.journal_commit"));
  if (journal_ != nullptr) (void)journal_->Commit(seq);

  // A retained (dirty) image is consumed now, after commit. Delta ship
  // adopted its base group above and merely drops a superseded previous
  // delta; a full ship supersedes the whole image (replicas released,
  // cached base evicted).
  if (info->clean_image.has_value()) {
    if (ship_delta) {
      if (!old_delta_group.empty())
        JournaledRelease(id, old_delta_group, /*count_as_drop=*/false);
      info->clean_image.reset();
      info->dirty_fields.clear();
    } else {
      InvalidateCleanImage(info, /*count_as_drop=*/false);
    }
  }

  ++stats_.swap_outs;
  stats_.bytes_swapped_out += payload.size();
  if (ship_delta) {
    ++stats_.delta_swap_outs;
    stats_.delta_bytes_shipped += payload.size();
    // Uncompressed document bytes the delta kept off the serialize path.
    stats_.delta_bytes_saved += serialized.payload.size() - wire_doc.size();
  }
  // A speculatively loaded cluster evicted before the application touched
  // it was a wasted guess.
  NotePrefetchDiscard(id);
  // The decompressed payload just shipped is the likeliest next swap-in.
  // A delta ship caches the fresh full document it reconstructs (so the
  // next swap-in skips the link entirely) while pinning the base document
  // at base_epoch — what the next delta swap-out diffs against.
  if (!ship_delta) {
    cache_.Put(id, info->payload_epoch, std::move(serialized.payload));
  } else {
    cache_.Put(id, info->payload_epoch, std::move(serialized.payload),
               /*keep_epoch=*/ship_base_epoch);
  }
  if (bus_ != nullptr) {
    bus_->Publish(
        context::Event(context::kEventClusterSwappedOut)
            .Set("swap_cluster", static_cast<int64_t>(id.value()))
            .Set("objects", static_cast<int64_t>(members.size()))
            .Set("bytes", static_cast<int64_t>(payload.size()))
            .Set("device",
                 tier_admitted
                     ? (tier_->flash_device().valid()
                            ? static_cast<int64_t>(tier_->flash_device().value())
                            : int64_t{0})
                     : static_cast<int64_t>(placed.front().device.value()))
            .Set("replicas", static_cast<int64_t>(placed.size()))
            .Set("tier", tier_admitted ? int64_t{1} : int64_t{0})
            .Set("delta", ship_delta ? int64_t{1} : int64_t{0}));
  }
  // The members are now detached from the application graph; the next
  // collection reclaims them (the LocalScope roots die with this frame).
  return tier_admitted ? tier_key : placed.front().key;
}

std::optional<Result<SwapKey>> SwappingManager::TryCleanSwapOut(
    SwapClusterInfo* info) {
  telemetry::ScopedSpan span(
      telemetry_, "clean_swap_out", "swap",
      telemetry::Hist(telemetry_, "clean_swap_out_us"));
  const SwapClusterId id = info->id;
  CleanImage& image = *info->clean_image;
  if (Status fault = CheckFaultPoint("clean_swap_out.revalidate");
      !fault.ok()) {
    // Nothing mutated yet: the cluster stays loaded and keeps its image.
    return Result<SwapKey>(fault);
  }

  // The retained payload resolves its external references by index through
  // the outbound proxies recorded at serialization time; if any has been
  // collected, the image can no longer back a replacement.
  LocalScope scope(rt_.heap());
  std::vector<Object*> outbound;
  outbound.reserve(image.outbound.size());
  for (const runtime::WeakRef& weak : image.outbound) {
    Object* proxy = weak->get();
    if (proxy == nullptr) {
      InvalidateCleanImage(info, /*count_as_drop=*/false);
      return std::nullopt;
    }
    scope.Add(proxy);
    outbound.push_back(proxy);
  }

  // Revalidate the store entries: churn since the swap-in may have eaten
  // them without a departure event reaching us. A replica that cannot be
  // confirmed keeps its drop obligation (the store may merely be out of
  // range) but is not trusted to serve a fetch.
  const bool can_check = store_ != nullptr && discovery_ != nullptr;
  auto revalidate = [&](std::vector<ReplicaLocation>& replicas) {
    std::vector<ReplicaLocation> live;
    for (const ReplicaLocation& replica : replicas) {
      bool confirmed = false;
      if (IsLocalDevice(replica.device)) {
        confirmed = local_ != nullptr && local_->Contains(replica.key);
      } else {
        net::StoreNode* node =
            can_check && discovery_->IsNearby(store_->self(), replica.device)
                ? discovery_->NodeFor(replica.device)
                : nullptr;
        confirmed = node != nullptr && !node->crashed() &&
                    node->Contains(replica.key);
      }
      if (confirmed) {
        live.push_back(replica);
      } else {
        if (EnqueuePendingDrop(replica.device, replica.key))
          ++stats_.drops_deferred;
      }
    }
    replicas = std::move(live);
    return !replicas.empty();
  };
  // A delta image needs BOTH groups alive: the delta payload is useless
  // without its base document. (The obligations of unconfirmable replicas
  // were queued above, so the lists are cleared of them before any
  // invalidation — no double drops.)
  if (!revalidate(image.replicas) ||
      (image.HasDelta() && !revalidate(image.base_replicas))) {
    InvalidateCleanImage(info, /*count_as_drop=*/false);
    return std::nullopt;
  }

  // WAL boundary: a clean swap-out re-uses existing store bytes, so the
  // journaled intents are the retained image's replicas — a torn op's
  // recovery must know which keys the cluster was about to re-adopt.
  uint64_t seq = 0;
  if (journal_ != nullptr) {
    std::vector<uint64_t> member_oids;
    member_oids.reserve(image.oids.size());
    for (ObjectId oid : image.oids) member_oids.push_back(oid.value());
    // Re-adopting a delta image journals as a delta swap-out (the base
    // fields tell recovery which base document the payload applies to);
    // the intents are the delta replicas being re-adopted.
    seq = journal_->BeginOp(
        image.HasDelta() ? IntentOp::kDeltaSwapOut : IntentOp::kCleanSwapOut,
        id, info->swap_epoch + 1, image.payload_checksum,
        std::move(member_oids), LiveInboundProxyOids(id), image.base_epoch,
        image.base_checksum);
    for (const ReplicaLocation& replica : image.replicas)
      journal_->NoteReplicaIntent(seq, replica.device, replica.key);
    (void)journal_->Persist();
  }

  // From here the image is usable: failures are real swap-out failures,
  // not fall-through-to-full-path conditions (the cluster stays loaded and
  // keeps its image).
  Result<Object*> replacement_or(nullptr);
  if (Status fault = CheckFaultPoint("clean_swap_out.build_replacement");
      !fault.ok()) {
    if (crashed_) return Result<SwapKey>(fault);
    replacement_or = fault;
  } else {
    replacement_or = rt_.TryNewMiddleware(replacement_cls_);
  }
  if (!replacement_or.ok()) {
    if (journal_ != nullptr) (void)journal_->Abort(seq);
    ++stats_.swap_out_failures;
    return Result<SwapKey>(replacement_or.status());
  }
  Object* replacement = *replacement_or;
  scope.Add(replacement);
  // Fresh swap incarnation (stale replacement finalizers stay harmless),
  // same payload epoch: the store bytes and the cache entry still serve.
  ++info->swap_epoch;
  replacement->RawSlotMutable(kReplSlotCluster) =
      Value::Int(static_cast<int64_t>(id.value()));
  replacement->RawSlotMutable(kReplSlotEpoch) =
      Value::Int(static_cast<int64_t>(info->swap_epoch));
  for (Object* proxy : outbound) replacement->AppendSlot(Value::Ref(proxy));
  rt_.heap().RefreshAccounting(replacement);

  auto& inbound = inbound_[id];
  size_t write = 0;
  std::vector<std::pair<Object*, Object*>> patched;  // (proxy, old target)
  Status patch_fault = OkStatus();
  for (size_t read = 0; read < inbound.size(); ++read) {
    Object* proxy = inbound[read]->get();
    if (proxy == nullptr) continue;
    if (ProxyTargetSc(proxy) == id && patch_fault.ok()) {
      patch_fault = CheckFaultPoint("clean_swap_out.patch_proxy");
      if (patch_fault.ok()) {
        patched.emplace_back(proxy, proxy->RawSlot(kProxySlotTarget).ref());
        proxy->RawSlotMutable(kProxySlotTarget) = Value::Ref(replacement);
      }
    }
    inbound[write++] = inbound[read];
  }
  inbound.resize(write);
  if (patch_fault.ok())
    patch_fault = CheckFaultPoint("clean_swap_out.finalize");
  if (!patch_fault.ok()) {
    if (crashed_) return Result<SwapKey>(patch_fault);
    for (const auto& [proxy, old_target] : patched)
      proxy->RawSlotMutable(kProxySlotTarget) = Value::Ref(old_target);
    if (journal_ != nullptr) (void)journal_->Abort(seq);
    ++stats_.swap_out_failures;
    return Result<SwapKey>(patch_fault);
  }

  info->state = SwapState::kSwapped;
  info->replicas = std::move(image.replicas);
  info->replacement = rt_.heap().NewWeakRef(replacement);
  info->swapped_object_count = image.object_count;
  info->swapped_payload_bytes = image.payload_bytes;
  info->swapped_oids = std::move(image.oids);
  info->payload_epoch = image.payload_epoch;
  info->payload_checksum = image.payload_checksum;
  // A delta image re-adopts its base group too (the stored payload is a
  // delta against it); a plain image clears the delta facet.
  info->base_replicas = std::move(image.base_replicas);
  info->base_epoch = image.base_epoch;
  info->base_checksum = image.base_checksum;
  info->base_payload_bytes = image.base_payload_bytes;
  info->merged_checksum = image.merged_checksum;
  ++info->swap_out_count;
  info->clean_image.reset();  // `image` is dead from here
  info->dirty_fields.clear();
  info->dirty = true;

  if (Status fault = CheckFaultPoint("clean_swap_out.journal_commit");
      !fault.ok()) {
    return Result<SwapKey>(fault);
  }
  if (journal_ != nullptr) (void)journal_->Commit(seq);

  size_t want = options_.replication_factor > 0 ? options_.replication_factor
                                                : size_t{1};
  if (info->replicas.size() < want) ++stats_.under_replicated_outs;
  ++stats_.swap_outs;
  ++stats_.clean_swap_outs;
  NotePrefetchDiscard(id);
  // Every replica the full path would have re-shipped stayed put.
  stats_.bytes_swap_transfer_saved +=
      info->swapped_payload_bytes * info->replicas.size();
  if (bus_ != nullptr) {
    bus_->Publish(
        context::Event(context::kEventClusterSwappedOut)
            .Set("swap_cluster", static_cast<int64_t>(id.value()))
            .Set("objects",
                 static_cast<int64_t>(info->swapped_object_count))
            .Set("bytes", int64_t{0})
            .Set("device",
                 static_cast<int64_t>(info->replicas.front().device.value()))
            .Set("replicas", static_cast<int64_t>(info->replicas.size()))
            .Set("clean", int64_t{1}));
  }
  return Result<SwapKey>(info->replicas.front().key);
}

Result<SwapClusterId> SwappingManager::SwapOutVictim() {
  if (crashed_) return CrashedError();
  std::vector<SwapClusterId> exclude = rt_.context_stack();
  if (brownout_) {
    // Degraded neighborhood: prefer victims with a retained clean image —
    // their swap-out reuses the existing store copies (zero transfer) and
    // asks nothing of the sick stores. Pure preference: any failure falls
    // through to the normal LRU walk below.
    std::vector<SwapClusterId> skipped = exclude;
    for (;;) {
      SwapClusterId victim = registry_.PickLruVictim(skipped);
      if (!victim.valid()) break;
      skipped.push_back(victim);
      SwapClusterInfo* info = registry_.Find(victim);
      if (info == nullptr || !info->LoadedClean()) continue;
      Result<SwapKey> key = SwapOut(victim);
      if (key.ok()) return victim;
    }
  }
  for (;;) {
    SwapClusterId victim = registry_.PickLruVictim(exclude);
    if (!victim.valid())
      return FailedPreconditionError("no eligible swap-out victim");
    Result<SwapKey> key = SwapOut(victim);
    if (key.ok()) return victim;
    // No placement target at all means every further victim would pay the
    // serialize+compress cost only to hit the same dead network; fail fast.
    if (key.status().code() == StatusCode::kUnavailable &&
        !AnyStoreReachable()) {
      return key.status();
    }
    // This victim failed (e.g. store full for its payload); try the next.
    exclude.push_back(victim);
    if (key.status().code() == StatusCode::kFailedPrecondition ||
        key.status().code() == StatusCode::kResourceExhausted ||
        key.status().code() == StatusCode::kUnavailable) {
      continue;
    }
    return key.status();
  }
}

Result<std::string> SwappingManager::ResolveDeltaBase(
    SwapClusterInfo* info, const std::string& delta_payload,
    uint64_t op_start_us) {
  telemetry::ScopedSpan span(
      telemetry_, "resolve_delta_base", "swap",
      telemetry::Hist(telemetry_, "swap_in_delta_base_us"));
  // The payload cache holds full base documents under the base epoch (the
  // delta swap-out that shipped this delta relied on the same entry).
  std::string base;
  bool have_base = false;
  if (const std::string* cached = cache_.Get(info->id, info->base_epoch);
      cached != nullptr && Adler32(*cached) == info->base_checksum) {
    ++stats_.delta_base_cache_hits;
    base = *cached;
    have_base = true;
  }
  if (!have_base) {
    Status last = UnavailableError("swap-cluster " + info->id.ToString() +
                                   " has no base replicas to fetch from");
    for (const ReplicaLocation& replica :
         ReplicaFetchOrder(info->base_replicas)) {
      uint64_t budget_left = OpBudgetLeft(op_start_us);
      if (budget_left == 0) {
        return DeadlineExceededError(
            "swap-in budget exhausted fetching the delta base of "
            "swap-cluster " +
            info->id.ToString());
      }
      Result<std::string> fetched{std::string()};
      if (Status fault = CheckFaultPoint("swap_in.fetch_base"); !fault.ok()) {
        if (crashed_) return fault;
        fetched = fault;  // injected base-fetch failure: fail over
      } else {
        fetched = FetchFrom(replica.device, replica.key,
                            budget_left == UINT64_MAX ? 0 : budget_left);
      }
      if (!fetched.ok()) {
        last = fetched.status();
        continue;
      }
      Result<std::string> text = compress::FrameDecompress(*fetched);
      if (!text.ok()) {
        ++stats_.data_loss_failovers;
        last = text.status();
        continue;
      }
      if (Adler32(*text) != info->base_checksum) {
        ++stats_.data_loss_failovers;
        last = DataLossError("delta base checksum mismatch for swap-cluster " +
                             info->id.ToString());
        continue;
      }
      stats_.bytes_swapped_in += fetched->size();
      base = std::move(*text);
      have_base = true;
      break;
    }
    if (!have_base) return last;
    // Keep the base around: the retained image's next delta swap-out (and
    // the next delta swap-in) diff/merge against this exact entry.
    cache_.Put(info->id, info->base_epoch, base);
  }
  // The merge verifies the embedded digests end-to-end: a wrong or damaged
  // base (or delta) surfaces as kDataLoss and the caller fails over.
  return serialization::ApplyClusterDelta(base, delta_payload);
}

Status SwappingManager::SwapIn(SwapClusterId id, bool prefetch) {
  if (crashed_) return CrashedError();
  PriorityScope priority_scope(this, prefetch
                                         ? net::Priority::kPrefetch
                                         : net::Priority::kDemandSwapIn);
  const uint64_t begin_us = clock_ != nullptr ? clock_->now_us() : 0;
  // Demand faults and speculative loads get distinct categories and
  // histograms: the trace separates application stall from prefetch work.
  const char* span_category = prefetch ? "prefetch" : "swap";
  telemetry::ScopedSpan op_span(
      telemetry_, "swap_in", span_category,
      telemetry::Hist(telemetry_, prefetch ? "swap_in_prefetch_us"
                                           : "swap_in_demand_us"));
  SwapClusterInfo* info = registry_.Find(id);
  if (info == nullptr) return NotFoundError("no swap-cluster " + id.ToString());
  if (info->state != SwapState::kSwapped)
    return FailedPreconditionError("swap-cluster " + id.ToString() + " is " +
                                   SwapStateName(info->state));
  Object* replacement = info->replacement->get();
  if (replacement == nullptr)
    return InternalError("swap-in of cluster " + id.ToString() +
                         " whose replacement-object is dead");
  LocalScope scope(rt_.heap());
  scope.Add(replacement);

  // Outbound proxies were kept alive by the replacement; they resolve the
  // document's external references by index.
  auto resolve = [replacement](const serialization::ExternalRef& ref)
      -> Result<Object*> {
    size_t slot = kReplSlotFirstOutbound + ref.index;
    if (slot >= replacement->slot_count())
      return DataLossError("external ref index out of range");
    Object* target = replacement->RawSlot(slot).ref();
    if (target == nullptr)
      return InternalError("replacement outbound slot is null");
    return target;
  };
  serialization::DeserializeOptions options;
  options.expected_id = static_cast<int64_t>(id.value());
  options.assign_swap_cluster = id;

  Status last = UnavailableError("swap-cluster " + id.ToString() +
                                 " has no replicas to fetch from");
  std::vector<Object*> members;
  std::string decompressed;   // kept to feed the cache on the fetch path
  size_t fetched_bytes = 0;   // compressed bytes actually transferred
  bool restored = false;
  bool from_cache = false;
  bool via_delta = false;  // payload was a delta merged over a fetched base

  // Swap-in payload cache: a retained decompressed payload for this exact
  // (cluster, payload epoch) skips both the radio and the codec. The
  // checksum must still match — a stale or damaged copy falls through to
  // the fetch path below. A delta-swapped cluster's entry at the payload
  // epoch is the full MERGED document (cached when the delta shipped), so
  // it verifies against merged_checksum, not the delta's own.
  const uint32_t cache_checksum =
      info->DeltaSwapped() ? info->merged_checksum : info->payload_checksum;
  if (const std::string* cached = cache_.Get(id, info->payload_epoch)) {
    if (cache_checksum != 0 && Adler32(*cached) == cache_checksum) {
      telemetry::ScopedSpan span(
          telemetry_, "materialize", span_category,
          telemetry::Hist(telemetry_, "swap_in_materialize_us"));
      Status fault = CheckFaultPoint("swap_in.materialize");
      if (crashed_) return fault;
      if (fault.ok()) {
        Result<std::vector<Object*>> members_or = serialization::
            DeserializeClusterAny(rt_, *cached, options, resolve);
        if (members_or.ok()) {
          members = std::move(*members_or);
          restored = true;
          from_cache = true;
        }
      }
    }
    // A delta-swapped cluster's cache entry is the BASE document under
    // base_epoch (the lookup above misses by epoch) — evicting it here
    // would force a base refetch on the delta path below.
    if (!from_cache && !info->DeltaSwapped()) cache_.Invalidate(id);
  }

  // Tier probe: RAM then flash, fastest-first, before any radio traffic.
  // A flash hit is promoted into the RAM pool so the next re-fault of the
  // same cluster is served at memory speed. A delta-swapped cluster never
  // probes — the tiers only ever hold full payloads.
  bool from_tier = false;
  if (!restored && TierActive() && !info->DeltaSwapped()) {
    const uint64_t tier_begin_us = clock_ != nullptr ? clock_->now_us() : 0;
    telemetry::ScopedSpan tier_span(
        telemetry_, "tier_fetch", span_category,
        telemetry::Hist(telemetry_, "tier_fetch_us"));
    tier::TierHit hit = tier::TierHit::kNone;
    Result<std::string> probed =
        tier_->Probe(id, info->payload_epoch, info->payload_checksum, &hit);
    if (probed.ok()) {
      if (Status fault = CheckFaultPoint("swap_in.tier_fetch"); !fault.ok()) {
        if (crashed_) return fault;
        last = fault;  // injected miss: fall through to the replica fetch
      } else {
        Result<std::string> xml_text = compress::FrameDecompress(*probed);
        if (xml_text.ok() && Adler32(*xml_text) == info->payload_checksum) {
          Result<std::vector<Object*>> members_or =
              serialization::DeserializeClusterAny(rt_, *xml_text, options,
                                                   resolve);
          if (members_or.ok()) {
            members = std::move(*members_or);
            decompressed = std::move(*xml_text);
            restored = true;
            from_tier = true;
            if (hit == tier::TierHit::kFlash) {
              // Promote the compressed payload up a tier (volatile-only —
              // crash-safe at any instruction; the flash copy stays).
              if (Status fault = CheckFaultPoint("tier.promote");
                  !fault.ok()) {
                if (crashed_) return fault;
              } else {
                tier_->PromoteToRam(id, *probed);
              }
            }
          } else {
            last = members_or.status();
          }
        } else {
          // Stale or damaged behind the tier's metadata: retire the copy
          // so it cannot shadow the authoritative replicas again.
          tier_->Release(id, info->payload_epoch, info->payload_checksum);
          last = xml_text.ok()
                     ? DataLossError("tier payload checksum mismatch for "
                                     "swap-cluster " +
                                     id.ToString())
                     : xml_text.status();
        }
      }
    }
    tier_span.Close();
    if (from_tier && clock_ != nullptr) {
      telemetry::Histogram* per_tier = telemetry::Hist(
          telemetry_, hit == tier::TierHit::kRam ? "tier_ram_fetch_us"
                                                 : "tier_flash_fetch_us");
      if (per_tier != nullptr)
        per_tier->Record(clock_->now_us() - tier_begin_us);
    }
  }

  // Failover fetch: try each replica (reachable ones first) until one
  // yields a payload that survives the frame checksum AND deserializes. A
  // partially-deserialized attempt leaves only unrooted objects behind —
  // the next collection reclaims them.
  //
  // Hedged fetch (demand faults only): the first attempt is capped at the
  // HealthTracker's p95-derived deadline; past it the fetch is abandoned
  // and the next healthy replica tried immediately, with the abandoned
  // replica re-queued at the back for one final uncapped attempt — a slow
  // primary costs one hedge window, never the full retry pyramid, and
  // availability matches the sequential walk's.
  std::vector<ReplicaLocation> order = ReplicaFetchOrder(info->replicas);
  const uint64_t hedge_deadline_us =
      (options_.hedged_fetch && !prefetch && health_ != nullptr &&
       order.size() > 1)
          ? health_->HedgeDeadlineUs()
          : 0;
  bool hedge_fired = false;
  size_t hedge_retry_index = SIZE_MAX;
  for (size_t attempt = 0; attempt < order.size() && !restored; ++attempt) {
    const ReplicaLocation replica = order[attempt];
    uint64_t budget_left = OpBudgetLeft(begin_us);
    if (budget_left == 0) {
      // End-to-end budget spent: fail fast and cleanly (no journal op has
      // begun yet — heap patching only starts after a successful fetch).
      last = DeadlineExceededError("swap-in budget exhausted at replica " +
                                   std::to_string(attempt));
      ++stats_.deadline_aborts;
      break;
    }
    uint64_t fetch_cap = budget_left;
    bool hedge_capped = false;
    if (attempt == 0 && hedge_deadline_us > 0 &&
        hedge_deadline_us < fetch_cap) {
      fetch_cap = hedge_deadline_us;
      hedge_capped = true;
    }
    // The first replica tried is the plain fetch; every further attempt is
    // a failover (the previous replica was unreachable or corrupt), except
    // the fetch launched by a fired hedge, which gets its own span name.
    const char* attempt_name =
        attempt == 0 ? "fetch"
                     : (hedge_fired && attempt == 1 ? "hedged_fetch"
                                                    : "failover_fetch");
    telemetry::ScopedSpan attempt_span(
        telemetry_, attempt_name, span_category,
        telemetry::Hist(telemetry_, "swap_in_fetch_us"));
    // A fired hedge is speculative work: it demotes from demand class so a
    // saturated failover target sheds it before anyone's blocking fault.
    std::optional<PriorityScope> hedge_priority;
    if (hedge_fired && attempt == 1)
      hedge_priority.emplace(this, net::Priority::kHedgedFetch);
    Status failure = OkStatus();
    Result<std::string> fetched{std::string()};
    if (Status fault = CheckFaultPoint("swap_in.fetch"); !fault.ok()) {
      if (crashed_) return fault;
      fetched = fault;  // injected fetch failure: fail over like any other
    } else {
      fetched = FetchFrom(replica.device, replica.key,
                          fetch_cap == UINT64_MAX ? 0 : fetch_cap);
    }
    if (!fetched.ok()) {
      failure = fetched.status();
    } else {
      telemetry::ScopedSpan decompress_span(
          telemetry_, "decompress", span_category,
          telemetry::Hist(telemetry_, "swap_in_decompress_us"));
      Result<std::string> xml_text{std::string()};
      if (Status fault = CheckFaultPoint("swap_in.decompress"); !fault.ok()) {
        if (crashed_) return fault;
        xml_text = fault;
      } else {
        xml_text = compress::FrameDecompress(*fetched);
      }
      decompress_span.Close();
      // A delta payload is merged over its full base document (from the
      // payload cache or a base-replica fetch) before it can materialize;
      // the merged text then flows through exactly like a full payload.
      bool merged_delta = false;
      if (xml_text.ok() &&
          serialization::IsClusterDeltaPayload(*xml_text)) {
        Result<std::string> full =
            ResolveDeltaBase(info, *xml_text, begin_us);
        if (crashed_) return full.status();
        xml_text = std::move(full);
        merged_delta = xml_text.ok();
      }
      if (!xml_text.ok()) {
        failure = xml_text.status();
      } else {
        telemetry::ScopedSpan materialize_span(
            telemetry_, "materialize", span_category,
            telemetry::Hist(telemetry_, "swap_in_materialize_us"));
        Result<std::vector<Object*>> members_or(std::vector<Object*>{});
        if (Status fault = CheckFaultPoint("swap_in.materialize");
            !fault.ok()) {
          if (crashed_) return fault;
          members_or = fault;
        } else {
          members_or = serialization::DeserializeClusterAny(
              rt_, *xml_text, options, resolve);
        }
        materialize_span.Close();
        if (!members_or.ok()) {
          failure = members_or.status();
        } else {
          fetched_bytes = fetched->size();
          decompressed = std::move(*xml_text);
          members = std::move(*members_or);
          restored = true;
          via_delta = merged_delta;
          if (attempt > 0) ++stats_.failover_fetches;
          if (hedge_fired) {
            // Served by the re-queued primary after all: the hedge only
            // burned its window. Served by anyone else: the hedge won.
            if (attempt == hedge_retry_index)
              ++stats_.hedge_wastes;
            else
              ++stats_.hedge_wins;
          }
        }
      }
    }
    if (!restored) {
      if (failure.code() == StatusCode::kDataLoss)
        ++stats_.data_loss_failovers;
      if (hedge_capped && failure.code() == StatusCode::kDeadlineExceeded) {
        // The hedge deadline fired (not the op budget): move on to the
        // next replica now and give this one a final uncapped shot later.
        hedge_fired = true;
        ++stats_.hedged_fetches;
        hedge_retry_index = order.size();
        order.push_back(replica);
      } else if (failure.code() == StatusCode::kDeadlineExceeded) {
        ++stats_.deadline_aborts;
        last = failure;
        break;
      }
      OBISWAP_LOG(kWarn) << "replica of swap-cluster " << id.ToString()
                         << " on device " << replica.device.value()
                         << " unusable: " << failure.ToString();
      last = failure;
    }
  }
  if (!restored && hedge_fired) ++stats_.hedge_wastes;
  if (!restored) return last;
  for (Object* member : members) scope.Add(member);

  std::unordered_map<uint64_t, Object*> by_oid;
  for (Object* member : members) by_oid[member->oid().value()] = member;

  telemetry::ScopedSpan patch_span(telemetry_, "patch", span_category);
  // All-or-nothing: every live inbound proxy must resolve against the
  // restored payload BEFORE anything is mutated. Bailing out mid-patch
  // would leave the cluster torn — membership clobbered, some proxies
  // pointing at fresh replicas, others still at the replacement. The
  // restored objects are unrooted past this frame; the collector reclaims
  // them on failure.
  auto& inbound = inbound_[id];
  for (const runtime::WeakRef& weak : inbound) {
    Object* proxy = weak->get();
    if (proxy == nullptr || ProxyTargetSc(proxy) != id) continue;
    if (by_oid.count(ProxyTargetOid(proxy).value()) == 0) {
      return InternalError(
          "inbound proxy targets an oid missing from the swapped payload");
    }
  }

  // WAL boundary: journal the swap-in's identity before the first heap
  // mutation. The member oids let recovery find the half-materialized
  // objects (patched proxies keep them alive); the proxy oids are the
  // patch set to cross-check.
  uint64_t seq = 0;
  if (journal_ != nullptr) {
    std::vector<uint64_t> member_oids;
    member_oids.reserve(info->swapped_oids.size());
    for (ObjectId oid : info->swapped_oids)
      member_oids.push_back(oid.value());
    seq = journal_->BeginOp(IntentOp::kSwapIn, id, info->swap_epoch,
                            info->payload_checksum, std::move(member_oids),
                            LiveInboundProxyOids(id));
    // The current replicas ride along as intents: if the swap-in ends up
    // releasing them (no image retained) and crashes first, recovery can
    // still tell which keys the cluster stopped accounting for. A delta
    // swap-in accounts for both groups — delta and base.
    for (const ReplicaLocation& replica : info->replicas)
      journal_->NoteReplicaIntent(seq, replica.device, replica.key);
    for (const ReplicaLocation& replica : info->base_replicas)
      journal_->NoteReplicaIntent(seq, replica.device, replica.key);
    (void)journal_->Persist();
  }
  if (Status fault = CheckFaultPoint("swap_in.journal_begin"); !fault.ok()) {
    if (!crashed_ && journal_ != nullptr) (void)journal_->Abort(seq);
    return fault;
  }

  // Patch all inbound proxies back to the fresh replicas ("their internal
  // references are patched in order to target the corresponding object
  // replicas being swapped-in"), then rebuild membership — proxies first,
  // so a torn patch can always be rolled back to the replacement without
  // having clobbered the members list.
  size_t write = 0;
  std::vector<Object*> patched;
  Status patch_fault = OkStatus();
  for (size_t read = 0; read < inbound.size(); ++read) {
    Object* proxy = inbound[read]->get();
    if (proxy == nullptr) continue;
    if (ProxyTargetSc(proxy) == id && patch_fault.ok()) {
      patch_fault = CheckFaultPoint("swap_in.patch_proxy");
      if (patch_fault.ok()) {
        proxy->RawSlotMutable(kProxySlotTarget) =
            Value::Ref(by_oid.find(ProxyTargetOid(proxy).value())->second);
        patched.push_back(proxy);
      }
    }
    inbound[write++] = inbound[read];
  }
  inbound.resize(write);
  if (patch_fault.ok()) patch_fault = CheckFaultPoint("swap_in.finalize");
  if (!patch_fault.ok()) {
    if (crashed_) return patch_fault;
    // Clean error: unwind to the replacement; the materialized objects are
    // unrooted past this frame and die at the next collection.
    for (Object* proxy : patched)
      proxy->RawSlotMutable(kProxySlotTarget) = Value::Ref(replacement);
    if (journal_ != nullptr) (void)journal_->Abort(seq);
    return patch_fault;
  }
  info->members.clear();
  for (Object* member : members)
    info->members.push_back(rt_.heap().NewWeakRef(member));
  patch_span.Close();

  // Clean-image retention: the store copies are byte-identical to the
  // resident objects until the first write, so keep them (plus what is
  // needed to rebuild a replacement) instead of dropping them. An untouched
  // cluster then re-swaps-out without shipping a single byte. The
  // DurabilityMonitor keeps maintaining the retained replicas.
  bool retain = true;
  std::vector<runtime::WeakRef> outbound_refs;
  outbound_refs.reserve(replacement->slot_count() - kReplSlotFirstOutbound);
  for (size_t slot = kReplSlotFirstOutbound;
       slot < replacement->slot_count(); ++slot) {
    Object* out_proxy = replacement->RawSlot(slot).ref();
    if (out_proxy == nullptr) {
      retain = false;  // index-resolution would break; do not retain
      break;
    }
    outbound_refs.push_back(rt_.heap().NewWeakRef(out_proxy));
  }
  std::vector<ReplicaLocation> stale_replicas;
  // A failed swap-out commit write leaves the cluster swapped with the
  // superseded retained image still recorded (the image is normally
  // consumed post-commit). Overwriting the image slot below would leak its
  // keys — retire every one the incoming groups do not carry forward.
  if (info->clean_image.has_value()) {
    for (const ReplicaLocation& replica : info->clean_image->replicas) {
      if (!IntentsContain(info->replicas, replica) &&
          !IntentsContain(info->base_replicas, replica))
        stale_replicas.push_back(replica);
    }
    for (const ReplicaLocation& replica : info->clean_image->base_replicas) {
      if (!IntentsContain(info->replicas, replica) &&
          !IntentsContain(info->base_replicas, replica))
        stale_replicas.push_back(replica);
    }
    if (tier_ != nullptr)
      tier_->Release(id, info->clean_image->payload_epoch,
                     info->clean_image->payload_checksum);
    info->clean_image->replicas.clear();
    info->clean_image.reset();
    ++stats_.clean_image_invalidations;
  }
  if (retain) {
    CleanImage image;
    image.replicas = std::move(info->replicas);
    image.payload_epoch = info->payload_epoch;
    image.payload_checksum = info->payload_checksum;
    image.payload_bytes = info->swapped_payload_bytes;
    image.object_count = info->swapped_object_count;
    image.oids = std::move(info->swapped_oids);
    image.outbound = std::move(outbound_refs);
    // A delta swap-in retains both groups: the delta it just applied (the
    // image's payload) and the base it applied it over — the next dirty
    // swap-out diffs against that same base.
    image.base_replicas = std::move(info->base_replicas);
    image.base_epoch = info->base_epoch;
    image.base_checksum = info->base_checksum;
    image.base_payload_bytes = info->base_payload_bytes;
    image.merged_checksum = info->merged_checksum;
    info->clean_image = std::move(image);
    info->dirty = false;
  } else {
    // Every store copy is stale with no image to account for it; the
    // drops are broadcast after the commit (as their own journaled op) so
    // a crash mid-release cannot leave half the keys forgotten. The tier
    // copy of the now-dead payload goes the same way — left behind it
    // would sit pinned forever (nothing loaded-dirty is ever written
    // back).
    if (tier_ != nullptr)
      tier_->Release(id, info->payload_epoch, info->payload_checksum);
    stale_replicas = std::move(info->replicas);
    for (const ReplicaLocation& replica : info->base_replicas)
      stale_replicas.push_back(replica);
    info->dirty = true;
  }

  const uint64_t merged_base_epoch =
      via_delta && info->clean_image.has_value()
          ? info->clean_image->base_epoch
          : 0;
  info->state = SwapState::kLoaded;
  info->replicas.clear();
  info->base_replicas.clear();
  info->base_epoch = 0;
  info->base_checksum = 0;
  info->base_payload_bytes = 0;
  info->merged_checksum = 0;
  info->dirty_fields.clear();
  info->replacement = runtime::WeakRef();
  info->swapped_oids.clear();
  ++info->swap_in_count;
  registry_.RecordCrossing(id, ++crossing_seq_);

  OBISWAP_RETURN_IF_ERROR(CheckFaultPoint("swap_in.journal_commit"));
  if (journal_ != nullptr) (void)journal_->Commit(seq);
  if (!stale_replicas.empty()) {
    JournaledRelease(id, stale_replicas, /*count_as_drop=*/false);
    if (crashed_)
      return InternalError("simulated crash releasing stale replicas");
  }

  ++stats_.swap_ins;
  if (from_cache) {
    ++stats_.cache_hits;
    // The compressed payload would otherwise have crossed the radio.
    stats_.bytes_swap_transfer_saved += info->swapped_payload_bytes;
  } else if (from_tier) {
    ++stats_.tier_swap_ins;
    // Tier bytes never touch the radio either; per-tier hit counters live
    // in the TierManager's own stats.
    stats_.bytes_swap_transfer_saved += info->swapped_payload_bytes;
    cache_.Put(id, info->payload_epoch, std::move(decompressed));
  } else {
    stats_.bytes_swapped_in += fetched_bytes;
    // A delta merge caches the merged text under the payload epoch while
    // pinning the base document ResolveDeltaBase cached at base_epoch —
    // the next swap-in decodes from the cache, the next diff still finds
    // its base. Without a retained image there is no future diff, so the
    // merged text simply replaces whatever the cluster had cached.
    if (via_delta && merged_base_epoch != 0) {
      cache_.Put(id, info->payload_epoch, std::move(decompressed),
                 /*keep_epoch=*/merged_base_epoch);
    } else {
      cache_.Put(id, info->payload_epoch, std::move(decompressed));
    }
  }

  // Prefetch accounting. A demand fault that finds its payload staged in
  // the cache consumed the guess (hit); one that misses — the staging was
  // evicted before use — wasted it. A speculative swap-in of a staged
  // cluster merely upgrades the guess from "staged" to "loaded".
  const bool was_staged = staged_.erase(id) > 0;
  if (prefetch) {
    ++stats_.prefetched_swap_ins;
    speculative_loaded_.insert(id);
    if (clock_ != nullptr)
      stats_.prefetch_fetch_us += clock_->now_us() - begin_us;
  } else {
    if (was_staged) {
      if (from_cache) {
        ++stats_.prefetch_hits;
        PublishPrefetchEvent(context::kEventPrefetchHit, id, "staged");
      } else {
        ++stats_.prefetch_wastes;
        PublishPrefetchEvent(context::kEventPrefetchWaste, id, "staged");
      }
    }
    if (clock_ != nullptr)
      stats_.demand_fault_stall_us += clock_->now_us() - begin_us;
  }

  if (bus_ != nullptr) {
    bus_->Publish(context::Event(context::kEventClusterSwappedIn)
                      .Set("swap_cluster", static_cast<int64_t>(id.value()))
                      .Set("objects", static_cast<int64_t>(members.size()))
                      .Set("prefetch", prefetch ? int64_t{1} : int64_t{0})
                      .Set("cache", from_cache ? int64_t{1} : int64_t{0}));
  }
  // The replacement-object is now unreferenced: "as it is no longer needed,
  // [it] becomes eligible for local reclamation."
  return OkStatus();
}

Status SwappingManager::PrefetchStage(SwapClusterId id) {
  if (crashed_) return CrashedError();
  PriorityScope priority_scope(this, net::Priority::kPrefetch);
  telemetry::ScopedSpan op_span(
      telemetry_, "prefetch_stage", "prefetch",
      telemetry::Hist(telemetry_, "prefetch_stage_us"));
  SwapClusterInfo* info = registry_.Find(id);
  if (info == nullptr) return NotFoundError("no swap-cluster " + id.ToString());
  if (info->state != SwapState::kSwapped)
    return FailedPreconditionError("swap-cluster " + id.ToString() + " is " +
                                   SwapStateName(info->state));
  if (cache_.budget_bytes() == 0)
    return FailedPreconditionError(
        "payload staging requires the swap-in payload cache (see "
        "set_swap_in_cache_bytes)");
  // A delta-swapped cluster's cache slot is reserved for its base document
  // (base-only convention); staging the delta text would evict the base
  // and make the eventual swap-in strictly slower.
  if (info->DeltaSwapped())
    return FailedPreconditionError("swap-cluster " + id.ToString() +
                                   " is delta-swapped; its cache slot "
                                   "holds the base document");
  // Already resident (e.g. the swap-out just populated it): nothing to
  // fetch, and not the prefetcher's doing — no staging claimed.
  if (cache_.Get(id, info->payload_epoch) != nullptr) return OkStatus();

  const uint64_t begin_us = clock_ != nullptr ? clock_->now_us() : 0;
  Status last = UnavailableError("swap-cluster " + id.ToString() +
                                 " has no replicas to fetch from");
  // Tier-served staging: a tier-resident payload fills the cache without
  // touching the radio, making speculation nearly free. Any tier problem
  // simply falls through to the replica fetch below.
  if (TierActive()) {
    tier::TierHit hit = tier::TierHit::kNone;
    Result<std::string> probed =
        tier_->Probe(id, info->payload_epoch, info->payload_checksum, &hit);
    if (probed.ok()) {
      Result<std::string> xml_text = compress::FrameDecompress(*probed);
      if (xml_text.ok() && Adler32(*xml_text) == info->payload_checksum) {
        OBISWAP_RETURN_IF_ERROR(CheckFaultPoint("prefetch_stage.stage"));
        size_t payload_bytes = xml_text->size();
        cache_.Put(id, info->payload_epoch, std::move(*xml_text));
        if (cache_.Get(id, info->payload_epoch) == nullptr) {
          return ResourceExhaustedError("staged payload (" +
                                        FormatBytes(payload_bytes) +
                                        ") exceeds the cache budget");
        }
        staged_.insert(id);
        ++stats_.prefetch_stages;
        stats_.prefetch_stage_bytes += payload_bytes;
        if (clock_ != nullptr)
          stats_.prefetch_fetch_us += clock_->now_us() - begin_us;
        return OkStatus();
      }
    }
  }
  for (const ReplicaLocation& replica : ReplicaFetchOrder(info->replicas)) {
    Result<std::string> fetched{std::string()};
    if (Status fault = CheckFaultPoint("prefetch_stage.fetch"); !fault.ok()) {
      if (crashed_) return fault;
      fetched = fault;
    } else {
      fetched = FetchFrom(replica.device, replica.key);
    }
    if (!fetched.ok()) {
      last = fetched.status();
      continue;
    }
    Result<std::string> xml_text{std::string()};
    if (Status fault = CheckFaultPoint("prefetch_stage.decompress");
        !fault.ok()) {
      if (crashed_) return fault;
      xml_text = fault;
    } else {
      xml_text = compress::FrameDecompress(*fetched);
    }
    if (!xml_text.ok()) {
      ++stats_.data_loss_failovers;
      last = xml_text.status();
      continue;
    }
    if (Adler32(*xml_text) != info->payload_checksum) {
      ++stats_.data_loss_failovers;
      last = DataLossError("staged payload checksum mismatch for "
                           "swap-cluster " +
                           id.ToString());
      continue;
    }
    OBISWAP_RETURN_IF_ERROR(CheckFaultPoint("prefetch_stage.stage"));
    size_t payload_bytes = xml_text->size();
    cache_.Put(id, info->payload_epoch, std::move(*xml_text));
    if (cache_.Get(id, info->payload_epoch) == nullptr) {
      // The cache refused it (payload alone exceeds the budget).
      return ResourceExhaustedError("staged payload (" +
                                    FormatBytes(payload_bytes) +
                                    ") exceeds the cache budget");
    }
    staged_.insert(id);
    ++stats_.prefetch_stages;
    stats_.prefetch_stage_bytes += payload_bytes;
    if (clock_ != nullptr)
      stats_.prefetch_fetch_us += clock_->now_us() - begin_us;
    return OkStatus();
  }
  return last;
}

void SwappingManager::NoteClusterEntered(SwapClusterId id) {
  if (speculative_loaded_.erase(id) > 0) {
    // First application touch of a speculatively loaded cluster: the guess
    // paid off — the fault this crossing would have taken never happened.
    ++stats_.prefetch_hits;
    PublishPrefetchEvent(context::kEventPrefetchHit, id, "loaded");
  }
  if (crossing_observer_) crossing_observer_(id);
}

void SwappingManager::NotePrefetchDiscard(SwapClusterId id) {
  if (speculative_loaded_.erase(id) > 0) {
    ++stats_.prefetch_wastes;
    PublishPrefetchEvent(context::kEventPrefetchWaste, id, "loaded");
  }
  if (staged_.erase(id) > 0) {
    ++stats_.prefetch_wastes;
    PublishPrefetchEvent(context::kEventPrefetchWaste, id, "staged");
  }
}

void SwappingManager::PublishPrefetchEvent(const char* type, SwapClusterId id,
                                           const char* kind) {
  if (bus_ == nullptr) return;
  bus_->Publish(context::Event(type)
                    .Set("swap_cluster", static_cast<int64_t>(id.value()))
                    .Set("kind", std::string(kind)));
}

// ---------------------------------------------------------------------------
// Replica durability (churn maintenance; driven by the DurabilityMonitor)
// ---------------------------------------------------------------------------

void SwappingManager::set_replication_factor(size_t k) {
  options_.replication_factor = k > 0 ? k : size_t{1};
}

bool SwappingManager::AnyStoreReachable() const {
  if (store_ != nullptr && discovery_ != nullptr &&
      !discovery_->NearbyStores(store_->self(), options_.store_min_free_bytes)
           .empty()) {
    return true;
  }
  return local_ != nullptr && local_->free_bytes() > 0;
}

std::vector<ReplicaLocation> SwappingManager::ReplicaFetchOrder(
    const std::vector<ReplicaLocation>& replicas) const {
  // O(1) per replica: a K-replica fetch must not pay an O(fleet) discovery
  // walk just to order K candidates.
  const bool can_check = store_ != nullptr && discovery_ != nullptr;
  auto in_reach = [&](const ReplicaLocation& replica) {
    return IsLocalDevice(replica.device) ||
           (can_check &&
            discovery_->IsNearby(store_->self(), replica.device));
  };
  auto healthy = [&](const ReplicaLocation& replica) {
    return health_ == nullptr || IsLocalDevice(replica.device) ||
           health_->IsHealthy(replica.device);
  };
  std::vector<ReplicaLocation> order;
  order.reserve(replicas.size());
  // Three tiers, placement order within each: reachable-and-healthy,
  // reachable with a tripped breaker (still worth a try — it fails fast at
  // the breaker gate and carries the half-open probe), then unreachable.
  // Unreachable replicas still get a try at the end — discovery lags the
  // radio, and a doomed fetch only costs a fast kUnavailable.
  for (const ReplicaLocation& replica : replicas)
    if (in_reach(replica) && healthy(replica)) order.push_back(replica);
  for (const ReplicaLocation& replica : replicas)
    if (in_reach(replica) && !healthy(replica)) order.push_back(replica);
  for (const ReplicaLocation& replica : replicas)
    if (!in_reach(replica)) order.push_back(replica);
  return order;
}

Result<std::string> SwappingManager::FetchVerifiedPayload(
    SwapClusterId id, const std::vector<ReplicaLocation>& replicas) {
  Status last = UnavailableError("no fetchable replica for swap-cluster " +
                                 id.ToString());
  for (const ReplicaLocation& replica : ReplicaFetchOrder(replicas)) {
    Result<std::string> fetched = FetchFrom(replica.device, replica.key);
    if (!fetched.ok()) {
      last = fetched.status();
      continue;
    }
    // Never copy a corrupted payload onto fresh replicas: the frame
    // checksum must hold before this copy is allowed to propagate.
    Result<std::string> verified = compress::FrameDecompress(*fetched);
    if (verified.ok()) return std::move(*fetched);
    ++stats_.data_loss_failovers;
    last = verified.status();
  }
  return last;
}

Result<ReplicaLocation> SwappingManager::PlaceReplica(
    SwapClusterId id, const std::string& payload,
    const std::vector<ReplicaLocation>& existing, DeviceId exclude,
    uint64_t journal_seq, const char* fault_point) {
  size_t need = payload.size();
  if (need < options_.store_min_free_bytes)
    need = options_.store_min_free_bytes;
  Status last = UnavailableError("no nearby store device with " +
                                 FormatBytes(need) + " free");
  if (store_ == nullptr || discovery_ == nullptr) return last;
  const bool via_directory = DirectoryActive();
  std::vector<net::StoreNode*> candidates =
      via_directory
          ? DirectoryCandidates(id, options_.replication_factor, need)
          : discovery_->NearbyStores(store_->self(), need);
  if (health_ != nullptr) {
    // Same health-aware preference as the swap-out placement walk.
    std::stable_partition(candidates.begin(), candidates.end(),
                          [this](net::StoreNode* node) {
                            return health_->IsHealthy(node->device());
                          });
  }
  for (net::StoreNode* candidate : candidates) {
    DeviceId device = candidate->device();
    if (device == exclude) continue;
    bool taken = false;
    for (const ReplicaLocation& replica : existing) {
      if (replica.device == device) {
        taken = true;
        break;
      }
    }
    if (taken) continue;
    SwapKey key = NextKey();
    if (journal_ != nullptr && journal_seq != 0) {
      journal_->NoteReplicaIntent(journal_seq, device, key);
      (void)journal_->Persist();
    }
    Status stored = CheckFaultPoint(fault_point);
    if (stored.ok()) stored = store_->Store(device, key, payload);
    if (crashed_) return stored;
    if (stored.ok()) {
      if (via_directory) ++stats_.fleet_placements;
      return ReplicaLocation{device, key};
    }
    last = stored;
  }
  return last;
}

bool SwappingManager::DirectoryActive() const {
  return directory_ != nullptr && placement_via_directory_ &&
         directory_->size() > 0 && store_ != nullptr && discovery_ != nullptr;
}

std::vector<net::StoreNode*> SwappingManager::DirectoryCandidates(
    SwapClusterId id, size_t k, size_t need) {
  // Rank the whole fleet for this cluster's placement key, keep the
  // reachable stores with room, then apply the bounded-load rule against
  // actual store fill: while the first k slots are being chosen, a store
  // at or over the cap is deferred behind the under-cap candidates (never
  // dropped — a full fleet still places somewhere) so pure-HRW hot spots
  // flatten out while the order stays deterministic for a given view.
  const uint64_t key = fleet::PlacementDirectory::KeyFor(store_->self(), id);
  std::vector<net::StoreNode*> ranked;
  uint64_t total_load = 0;
  for (DeviceId device : directory_->RankAll(key)) {
    if (device == store_->self()) continue;
    if (!discovery_->IsNearby(store_->self(), device)) continue;
    net::StoreNode* node = discovery_->NodeFor(device);
    if (node == nullptr || node->free_bytes() < need) continue;
    ranked.push_back(node);
    total_load += node->entry_count();
  }
  ++stats_.fleet_selections;
  const uint64_t bound = directory_->LoadBound(total_load, ranked.size());
  std::vector<net::StoreNode*> out;
  std::vector<net::StoreNode*> deferred;
  out.reserve(ranked.size());
  uint64_t skips = 0;
  for (net::StoreNode* node : ranked) {
    if (out.size() < k && node->entry_count() >= bound) {
      deferred.push_back(node);
      ++skips;
    } else {
      out.push_back(node);
    }
  }
  out.insert(out.end(), deferred.begin(), deferred.end());
  if (skips > 0) directory_->NoteBoundedSkips(skips);
  return out;
}

void SwappingManager::ReleaseReplicas(
    const std::vector<ReplicaLocation>& replicas, bool count_as_drop) {
  // Drops are reclamation, never on the stall path: lowest shedding class.
  PriorityScope priority_scope(this, net::Priority::kMaintenance);
  for (const ReplicaLocation& replica : replicas) {
    Status dropped = CheckFaultPoint("drop.release_replica");
    if (crashed_) return;  // abandon mid-release; recovery reclaims the rest
    if (dropped.ok()) dropped = DropAt(replica.device, replica.key);
    if (dropped.ok()) {
      if (count_as_drop) ++stats_.drops;
      continue;
    }
    if (dropped.code() == StatusCode::kNotFound) continue;  // already gone
    ++stats_.drop_failures;
    if (dropped.code() == StatusCode::kUnavailable ||
        net::IsPushback(dropped)) {
      // Store out of range (or shedding maintenance load) right now: park
      // the obligation; the queue drains on a later poll or reconnection.
      if (EnqueuePendingDrop(replica.device, replica.key))
        ++stats_.drops_deferred;
    } else {
      OBISWAP_LOG(kWarn) << "store drop failed: " << dropped.ToString();
    }
  }
}

size_t SwappingManager::ForgetReplica(SwapClusterId id, DeviceId device) {
  SwapClusterInfo* info = registry_.Find(id);
  if (info == nullptr) return 0;
  std::vector<std::vector<ReplicaLocation>*> groups;
  bool image_backed = false;
  bool image_had_delta = false;
  if (info->state == SwapState::kSwapped) {
    groups.push_back(&info->replicas);
    groups.push_back(&info->base_replicas);
  } else if (info->state == SwapState::kLoaded &&
             info->clean_image.has_value()) {
    groups.push_back(&info->clean_image->replicas);
    groups.push_back(&info->clean_image->base_replicas);
    image_backed = true;
    image_had_delta = info->clean_image->HasDelta();
  } else {
    return 0;
  }
  size_t forgotten = 0;
  for (std::vector<ReplicaLocation>* replicas : groups) {
    size_t write = 0;
    for (size_t read = 0; read < replicas->size(); ++read) {
      if ((*replicas)[read].device == device) {
        // Should the store ever return, its now-orphaned payload must still
        // be reclaimed — keep the drop obligation alive.
        (void)EnqueuePendingDrop(device, (*replicas)[read].key);
        ++forgotten;
        continue;
      }
      (*replicas)[write++] = (*replicas)[read];
    }
    replicas->resize(write);
  }
  stats_.replicas_forgotten += forgotten;
  if (image_backed &&
      (info->clean_image->replicas.empty() ||
       (image_had_delta && info->clean_image->base_replicas.empty()))) {
    // Not a single backing store entry left for one of the image's groups:
    // the image can no longer serve a zero-transfer re-swap-out (a delta
    // image needs both the delta and its base). The drop obligations for
    // the forgotten keys were queued above; invalidation releases the rest.
    InvalidateCleanImage(info, /*count_as_drop=*/false);
  }
  return forgotten;
}

Result<size_t> SwappingManager::ReReplicate(SwapClusterId id) {
  if (crashed_) return CrashedError();
  PriorityScope priority_scope(this, net::Priority::kMaintenance);
  telemetry::ScopedSpan op_span(
      telemetry_, "re_replicate", "durability",
      telemetry::Hist(telemetry_, "re_replicate_us"));
  SwapClusterInfo* info = registry_.Find(id);
  if (info == nullptr)
    return NotFoundError("no swap-cluster " + id.ToString());
  // Both store groups get the same durability maintenance: the shipped
  // payload (full or delta) and — for delta-swapped state or a delta image
  // — the base document group the delta is useless without.
  struct Group {
    std::vector<ReplicaLocation>* replicas;
    uint64_t epoch;
    uint32_t checksum;
  };
  std::vector<Group> groups;
  if (info->state == SwapState::kSwapped) {
    groups.push_back(
        {&info->replicas, info->payload_epoch, info->payload_checksum});
    if (!info->base_replicas.empty())
      groups.push_back(
          {&info->base_replicas, info->base_epoch, info->base_checksum});
  } else if (info->LoadedClean()) {
    // Retained clean images get the same durability maintenance as swapped
    // payloads — a re-swap-out must find enough surviving replicas.
    CleanImage& image = *info->clean_image;
    groups.push_back(
        {&image.replicas, image.payload_epoch, image.payload_checksum});
    if (image.HasDelta())
      groups.push_back(
          {&image.base_replicas, image.base_epoch, image.base_checksum});
  } else {
    return FailedPreconditionError("swap-cluster " + id.ToString() +
                                   " holds no store replicas (" +
                                   SwapStateName(info->state) + ")");
  }
  size_t want = options_.replication_factor > 0 ? options_.replication_factor
                                                : size_t{1};
  size_t added_total = 0;
  for (const Group& group : groups) {
    std::vector<ReplicaLocation>* replicas = group.replicas;
    if (replicas->size() >= want) continue;
    // The tier write-back path: a tier-placed payload has no remote
    // replicas at all, and the tier (not the stores) is the fetch source
    // for its top-up. Also the second chance for a group whose last store
    // copy died while a tier read-cache copy survives.
    std::string tier_payload;
    bool tier_sourced = false;
    if (replicas->empty()) {
      if (tier_ != nullptr) {
        // AIMD write-back pacing: past this poll's cap the write-back
        // waits for a later sweep. Nothing is lost by deferring — the
        // tier still pins the payload until the group reaches K.
        if (write_back_pacer_.enabled() && !write_back_pacer_.Admit()) {
          ++stats_.write_backs_paced;
          break;
        }
        OBISWAP_RETURN_IF_ERROR(CheckFaultPoint("tier.write_back"));
        Result<std::string> from_tier =
            tier_->PayloadForWriteBack(id, group.epoch, group.checksum);
        if (from_tier.ok()) {
          tier_payload = *std::move(from_tier);
          tier_sourced = true;
        }
      }
      if (!tier_sourced)
        return DataLossError("swap-cluster " + id.ToString() +
                             " has no surviving replica");
    }
    Result<std::string> payload_or{std::string()};
    if (tier_sourced) {
      payload_or = std::move(tier_payload);
    } else {
      OBISWAP_RETURN_IF_ERROR(CheckFaultPoint("re_replicate.fetch"));
      payload_or = FetchVerifiedPayload(id, *replicas);
    }
    if (!payload_or.ok()) {
      if (added_total > 0) break;  // partial progress across groups counts
      return payload_or.status();
    }
    const std::string& payload = *payload_or;
    // Maintenance intents: each fresh key is journaled before its store
    // RPC; an uncommitted maintenance op's keys that never made it into
    // the replica list are dropped at recovery.
    uint64_t seq = 0;
    if (journal_ != nullptr) {
      seq = journal_->BeginOp(IntentOp::kReplicaMaintenance, id,
                              info->swap_epoch, info->payload_checksum, {},
                              {});
    }
    size_t added = 0;
    Status place_failure = OkStatus();
    // Pacer feedback reads pushback-counter deltas, not statuses —
    // PlaceReplica folds per-store failures into its fallback walk.
    const net::StoreClient::Stats* client = StoreClientStats();
    const uint64_t pushbacks_before = client != nullptr ? client->pushbacks
                                                        : 0;
    while (replicas->size() < want) {
      Result<ReplicaLocation> fresh = PlaceReplica(
          id, payload, *replicas, DeviceId(), seq, "re_replicate.place");
      if (crashed_) return fresh.status();
      if (!fresh.ok()) {
        // A partial top-up still counts as progress.
        place_failure = fresh.status();
        break;
      }
      replicas->push_back(*fresh);
      ++added;
      ++stats_.re_replications;
      stats_.bytes_re_replicated += payload.size();
    }
    if (tier_sourced && write_back_pacer_.enabled()) {
      if (client != nullptr && client->pushbacks > pushbacks_before)
        write_back_pacer_.OnPushback();
      else if (added > 0)
        write_back_pacer_.OnSuccess();
    }
    if (added == 0 && !place_failure.ok()) {
      if (journal_ != nullptr) (void)journal_->Abort(seq);
      if (added_total > 0) break;
      return place_failure;
    }
    if (journal_ != nullptr) (void)journal_->Commit(seq);
    added_total += added;
  }
  // The remote group may have just reached K: the tier entry stops being
  // the payload's only home and becomes an evictable read cache.
  MaybeCompleteTierWriteBack(info);
  return added_total;
}

Result<size_t> SwappingManager::EvacuateReplicas(DeviceId leaving) {
  if (crashed_) return CrashedError();
  PriorityScope priority_scope(this, net::Priority::kMaintenance);
  telemetry::ScopedSpan op_span(telemetry_, "evacuate_replicas",
                                "durability");
  size_t moved = 0;
  for (SwapClusterId id : registry_.Ids()) {
    SwapClusterInfo* info = registry_.Find(id);
    if (info == nullptr) continue;
    // Both store groups evacuate: a base document stranded on a departing
    // store would make every delta shipped against it unrecoverable.
    std::vector<std::vector<ReplicaLocation>*> groups;
    if (info->state == SwapState::kSwapped) {
      groups.push_back(&info->replicas);
      if (!info->base_replicas.empty())
        groups.push_back(&info->base_replicas);
    } else if (info->LoadedClean()) {
      groups.push_back(&info->clean_image->replicas);
      if (info->clean_image->HasDelta())
        groups.push_back(&info->clean_image->base_replicas);
    } else {
      continue;
    }
    for (std::vector<ReplicaLocation>* replicas : groups) {
      size_t at = 0;
      while (at < replicas->size() && !((*replicas)[at].device == leaving)) {
        ++at;
      }
      if (at == replicas->size()) continue;
      const ReplicaLocation old = (*replicas)[at];
      // Prefer copying straight off the withdrawing store — a graceful
      // withdrawal means it is still reachable; fall back to any replica.
      Result<std::string> payload = FetchFrom(old.device, old.key);
      if (payload.ok()) {
        Result<std::string> verified = compress::FrameDecompress(*payload);
        if (!verified.ok()) payload = verified.status();
      }
      if (!payload.ok()) payload = FetchVerifiedPayload(id, *replicas);
      if (!payload.ok()) {
        OBISWAP_LOG(kWarn) << "cannot evacuate swap-cluster " << id.ToString()
                           << ": " << payload.status().ToString();
        continue;
      }
      // One maintenance op per move. The old key is journaled up-front
      // while it is still in the replica list (recovery keeps listed keys),
      // so every crash window resolves: before the list update the fresh
      // copy is the orphan to drop; after it, the old copy is.
      uint64_t seq = 0;
      if (journal_ != nullptr) {
        seq = journal_->BeginOp(IntentOp::kReplicaMaintenance, id,
                                info->swap_epoch, info->payload_checksum, {},
                                {});
        journal_->NoteReplicaIntent(seq, old.device, old.key);
      }
      Result<ReplicaLocation> fresh = PlaceReplica(
          id, *payload, *replicas, leaving, seq, "evacuate.place");
      if (crashed_) return fresh.status();
      if (!fresh.ok()) {
        if (journal_ != nullptr) (void)journal_->Abort(seq);
        OBISWAP_LOG(kWarn) << "no evacuation target for swap-cluster "
                           << id.ToString() << ": "
                           << fresh.status().ToString();
        continue;
      }
      (*replicas)[at] = *fresh;
      Status dropped = CheckFaultPoint("evacuate.drop_old");
      if (crashed_) return dropped;
      if (dropped.ok()) dropped = DropAt(old.device, old.key);
      if (!dropped.ok() && dropped.code() != StatusCode::kNotFound) {
        if (EnqueuePendingDrop(old.device, old.key))
          ++stats_.drops_deferred;
      }
      if (journal_ != nullptr) (void)journal_->Commit(seq);
      ++moved;
      ++stats_.evacuated_replicas;
    }
  }
  return moved;
}

size_t SwappingManager::FlushPendingDrops() {
  if (crashed_) return 0;  // no store traffic while torn; Recover() first
  if (pending_drops_.empty()) return 0;
  // Deferred drops are reclamation: lowest shedding class, first refused.
  PriorityScope priority_scope(this, net::Priority::kMaintenance);
  size_t drained = 0;
  size_t write = 0;
  for (size_t read = 0; read < pending_drops_.size(); ++read) {
    const PendingDrop pending = pending_drops_[read];
    Status dropped = DropAt(pending.device, pending.key);
    if (dropped.ok() || dropped.code() == StatusCode::kNotFound) {
      ++drained;
      ++stats_.drops_drained;
      continue;
    }
    if (dropped.code() == StatusCode::kUnavailable ||
        net::IsPushback(dropped)) {
      // Out of range or shed by a saturated store: the obligation stands,
      // retry on a later poll.
      pending_drops_[write++] = pending;
      continue;
    }
    OBISWAP_LOG(kWarn) << "deferred drop failed permanently: "
                       << dropped.ToString();
  }
  pending_drops_.resize(write);
  return drained;
}

// ---------------------------------------------------------------------------
// GC cooperation and event handling
// ---------------------------------------------------------------------------

void SwappingManager::OnProxyFinalized(Object* proxy) {
  // Paper §4: "When a swap-cluster-proxy becomes unreachable, its finalizer
  // invokes code that eliminates entries referring to it."
  ++stats_.proxies_finalized;
  ReuseKey key{ProxySource(proxy).value(), ProxyTargetOid(proxy).value()};
  auto it = reuse_.find(key);
  if (it != reuse_.end() && it->second->get() == nullptr) reuse_.erase(it);
  // inbound_ entries are weak and pruned lazily on traversal.
}

void SwappingManager::OnReplacementFinalized(Object* replacement) {
  // "When a replacement-object ... becomes unreachable, this means that all
  // object replicas enclosed in it are already unreachable ... the swapping
  // device may be instructed to discard the XML text."
  SwapClusterId id = ReplacementCluster(replacement);
  uint64_t epoch = ReplacementEpoch(replacement);
  SwapClusterInfo* info = registry_.Find(id);
  if (info == nullptr || info->state != SwapState::kSwapped ||
      info->swap_epoch != epoch) {
    return;  // already swapped back in (or re-swapped in a newer epoch)
  }
  info->state = SwapState::kDropped;
  info->replacement = runtime::WeakRef();
  if (store_ != nullptr || local_ != nullptr) {
    // One journaled release covers both groups: the shipped payload and —
    // for a delta-swapped cluster — the base document it applied to.
    std::vector<ReplicaLocation> all = info->replicas;
    for (const ReplicaLocation& replica : info->base_replicas)
      all.push_back(replica);
    JournaledRelease(id, all, /*count_as_drop=*/true);
  }
  // A dead cluster's tier copies (and their flash slots) go with it.
  if (tier_ != nullptr) tier_->Release(id);
  info->replicas.clear();
  info->base_replicas.clear();
  info->base_epoch = 0;
  info->base_checksum = 0;
  info->base_payload_bytes = 0;
  info->merged_checksum = 0;
  NotePrefetchDiscard(id);  // a staged payload for a dropped cluster is waste
  cache_.Invalidate(id);
  if (bus_ != nullptr) {
    bus_->Publish(context::Event(context::kEventClusterDropped)
                      .Set("swap_cluster", static_cast<int64_t>(id.value())));
  }
}

namespace {
/// The snapshot's key order and spelling are frozen — benches and scripts
/// parse them — so the list lives in one table mapping each key to its
/// Stats field.
struct StatFieldSpec {
  const char* name;
  uint64_t SwappingManager::Stats::*field;
};
constexpr StatFieldSpec kStatFields[] = {
    {"proxies_created", &SwappingManager::Stats::proxies_created},
    {"proxies_reused", &SwappingManager::Stats::proxies_reused},
    {"proxies_dismantled", &SwappingManager::Stats::proxies_dismantled},
    {"proxies_finalized", &SwappingManager::Stats::proxies_finalized},
    {"boundary_crossings", &SwappingManager::Stats::boundary_crossings},
    {"assigned_patches", &SwappingManager::Stats::assigned_patches},
    {"swap_outs", &SwappingManager::Stats::swap_outs},
    {"swap_ins", &SwappingManager::Stats::swap_ins},
    {"drops", &SwappingManager::Stats::drops},
    {"drop_failures", &SwappingManager::Stats::drop_failures},
    {"swap_out_failures", &SwappingManager::Stats::swap_out_failures},
    {"bytes_swapped_out", &SwappingManager::Stats::bytes_swapped_out},
    {"bytes_swapped_in", &SwappingManager::Stats::bytes_swapped_in},
    {"local_swap_outs", &SwappingManager::Stats::local_swap_outs},
    {"merges", &SwappingManager::Stats::merges},
    {"splits", &SwappingManager::Stats::splits},
    {"replicas_placed", &SwappingManager::Stats::replicas_placed},
    {"under_replicated_outs",
     &SwappingManager::Stats::under_replicated_outs},
    {"failover_fetches", &SwappingManager::Stats::failover_fetches},
    {"data_loss_failovers", &SwappingManager::Stats::data_loss_failovers},
    {"replicas_forgotten", &SwappingManager::Stats::replicas_forgotten},
    {"re_replications", &SwappingManager::Stats::re_replications},
    {"bytes_re_replicated", &SwappingManager::Stats::bytes_re_replicated},
    {"evacuated_replicas", &SwappingManager::Stats::evacuated_replicas},
    {"drops_deferred", &SwappingManager::Stats::drops_deferred},
    {"drops_drained", &SwappingManager::Stats::drops_drained},
    {"clean_swap_outs", &SwappingManager::Stats::clean_swap_outs},
    {"clean_image_invalidations",
     &SwappingManager::Stats::clean_image_invalidations},
    {"clean_images_reaped", &SwappingManager::Stats::clean_images_reaped},
    {"cache_hits", &SwappingManager::Stats::cache_hits},
    {"bytes_swap_transfer_saved",
     &SwappingManager::Stats::bytes_swap_transfer_saved},
    {"prefetched_swap_ins", &SwappingManager::Stats::prefetched_swap_ins},
    {"prefetch_stages", &SwappingManager::Stats::prefetch_stages},
    {"prefetch_stage_bytes", &SwappingManager::Stats::prefetch_stage_bytes},
    {"prefetch_hits", &SwappingManager::Stats::prefetch_hits},
    {"prefetch_wastes", &SwappingManager::Stats::prefetch_wastes},
    {"demand_fault_stall_us",
     &SwappingManager::Stats::demand_fault_stall_us},
    {"prefetch_fetch_us", &SwappingManager::Stats::prefetch_fetch_us},
    {"recoveries", &SwappingManager::Stats::recoveries},
    {"recovery_us", &SwappingManager::Stats::recovery_us},
    {"journal_append_us", &SwappingManager::Stats::journal_append_us},
    {"journal_bytes", &SwappingManager::Stats::journal_bytes},
    {"hedged_fetches", &SwappingManager::Stats::hedged_fetches},
    {"hedge_wins", &SwappingManager::Stats::hedge_wins},
    {"hedge_wastes", &SwappingManager::Stats::hedge_wastes},
    {"deadline_aborts", &SwappingManager::Stats::deadline_aborts},
    {"brownout_entries", &SwappingManager::Stats::brownout_entries},
    {"brownout_exits", &SwappingManager::Stats::brownout_exits},
    {"brownout_swap_outs", &SwappingManager::Stats::brownout_swap_outs},
    {"pending_drop_overflow",
     &SwappingManager::Stats::pending_drop_overflow},
    {"delta_swap_outs", &SwappingManager::Stats::delta_swap_outs},
    {"delta_fallbacks", &SwappingManager::Stats::delta_fallbacks},
    {"delta_bytes_shipped", &SwappingManager::Stats::delta_bytes_shipped},
    {"delta_bytes_saved", &SwappingManager::Stats::delta_bytes_saved},
    {"delta_base_cache_hits",
     &SwappingManager::Stats::delta_base_cache_hits},
    {"fields_marked_dirty", &SwappingManager::Stats::fields_marked_dirty},
    {"tier_swap_outs", &SwappingManager::Stats::tier_swap_outs},
    {"tier_swap_ins", &SwappingManager::Stats::tier_swap_ins},
    {"fleet_selections", &SwappingManager::Stats::fleet_selections},
    {"fleet_placements", &SwappingManager::Stats::fleet_placements},
    {"write_backs_paced", &SwappingManager::Stats::write_backs_paced},
};

/// Overload-control keys exported from the attached StoreClient's counters
/// (zeros while no remote store is attached). Emitted unconditionally so
/// JSON key sets stay uniform across configurations, like the tier keys.
constexpr const char* kOverloadKeys[] = {
    "net.pushbacks",
    "net.pushback_retries",
    "net.retry_budget_exhausted",
    "net.retry_budget_earned",
    "net.retry_budget_spent",
    "net.shed_demand",
    "net.shed_swap_out",
    "net.shed_hedge",
    "net.shed_prefetch",
    "net.shed_maintenance",
    "store_queue_depth",
};
}  // namespace

std::vector<std::pair<std::string, uint64_t>> SwappingManager::StatsSnapshot()
    const {
  // The hot paths bump the plain Stats struct; export time syncs every
  // field into the registry's named counters, then renders the snapshot
  // from the registry — so the registry is the single read path while the
  // keys (spelling and order) stay exactly as before the registry existed.
  telemetry::MetricsRegistry& metrics = telemetry_->metrics();
  for (const StatFieldSpec& spec : kStatFields)
    metrics.GetCounter(spec.name).Set(stats_.*spec.field);
  if (journal_ != nullptr) {
    // Journal costs accrue inside the IntentJournal; exported under the
    // manager's keys so the WAL overhead shows up next to swap latency.
    metrics.GetCounter("journal_append_us").Set(journal_->stats().append_us);
    metrics.GetCounter("journal_bytes").Set(journal_->stats().persisted_bytes);
  }
  const PayloadCache::Stats& cache = cache_.stats();
  metrics.GetCounter("payload_cache_hits").Set(cache.hits);
  metrics.GetCounter("payload_cache_misses").Set(cache.misses);
  metrics.GetCounter("payload_cache_insertions").Set(cache.insertions);
  metrics.GetCounter("payload_cache_evictions").Set(cache.evictions);
  metrics.GetCounter("payload_cache_invalidations").Set(cache.invalidations);
  metrics.GetCounter("payload_cache_bytes")
      .Set(static_cast<uint64_t>(cache_.bytes()));
  metrics.GetCounter("payload_cache_entries")
      .Set(static_cast<uint64_t>(cache_.entry_count()));

  static constexpr const char* kCacheKeys[] = {
      "payload_cache_hits",        "payload_cache_misses",
      "payload_cache_insertions",  "payload_cache_evictions",
      "payload_cache_invalidations", "payload_cache_bytes",
      "payload_cache_entries",
  };
  // Tier keys are emitted whether or not a TierManager is attached — zeros
  // when detached — so JSON key sets stay uniform across configurations.
  const std::vector<std::string_view>& tier_keys =
      tier::TierManager::StatKeys();
  if (tier_ != nullptr) {
    for (const auto& [key, value] : tier_->StatsSnapshot())
      metrics.GetCounter(std::string(key)).Set(value);
  } else {
    for (std::string_view key : tier_keys)
      metrics.GetCounter(std::string(key)).Set(0);
  }

  // Overload-control keys, same uniform-key-set contract: the client-side
  // view of admission control (pushbacks received, per-class sheds, retry
  // budget flow, deepest store queue observed). All zero while the knobs
  // are off or no remote store is attached.
  {
    const net::StoreClient::Stats* client = StoreClientStats();
    static const net::StoreClient::Stats kZeroClientStats{};
    const net::StoreClient::Stats& c =
        client != nullptr ? *client : kZeroClientStats;
    metrics.GetCounter("net.pushbacks").Set(c.pushbacks);
    metrics.GetCounter("net.pushback_retries").Set(c.pushback_retries);
    metrics.GetCounter("net.retry_budget_exhausted")
        .Set(c.retry_budget_exhausted);
    metrics.GetCounter("net.retry_budget_earned").Set(c.retry_budget_earned);
    metrics.GetCounter("net.retry_budget_spent").Set(c.retry_budget_spent);
    metrics.GetCounter("net.shed_demand").Set(c.pushbacks_by_class[0]);
    metrics.GetCounter("net.shed_swap_out").Set(c.pushbacks_by_class[1]);
    metrics.GetCounter("net.shed_hedge").Set(c.pushbacks_by_class[2]);
    metrics.GetCounter("net.shed_prefetch").Set(c.pushbacks_by_class[3]);
    metrics.GetCounter("net.shed_maintenance").Set(c.pushbacks_by_class[4]);
    metrics.GetCounter("store_queue_depth").Set(c.max_store_queue_depth);
  }

  std::vector<std::pair<std::string, uint64_t>> snapshot;
  snapshot.reserve(std::size(kStatFields) + std::size(kCacheKeys) +
                   tier_keys.size() + std::size(kOverloadKeys));
  for (const StatFieldSpec& spec : kStatFields)
    snapshot.emplace_back(spec.name, metrics.GetCounter(spec.name).value());
  for (const char* key : kCacheKeys)
    snapshot.emplace_back(key, metrics.GetCounter(key).value());
  for (std::string_view key : tier_keys) {
    std::string name(key);
    snapshot.emplace_back(name, metrics.GetCounter(name).value());
  }
  for (const char* key : kOverloadKeys)
    snapshot.emplace_back(key, metrics.GetCounter(key).value());
  return snapshot;
}

std::string SwappingManager::StatsJson() const {
  std::string json = "{";
  bool first = true;
  for (const auto& [name, value] : StatsSnapshot()) {
    if (!first) json += ",";
    first = false;
    json += "\"" + name + "\":" + std::to_string(value);
  }
  json += "}";
  return json;
}

void SwappingManager::OnClusterReplicated(const context::Event& event) {
  int64_t cluster_value = event.GetIntOr("cluster", -1);
  if (cluster_value < 0) return;
  ClusterId cluster(static_cast<uint32_t>(cluster_value));

  // Fold the arriving replication cluster into the current swap-cluster
  // group; start a new group every clusters_per_swap_cluster clusters.
  if (!current_group_.valid() ||
      clusters_in_group_ >= options_.clusters_per_swap_cluster) {
    current_group_ = registry_.Create();
    clusters_in_group_ = 0;
  }
  SwapClusterInfo* info = registry_.Find(current_group_);
  info->replication_clusters.push_back(cluster);
  ++clusters_in_group_;

  // Label the fresh replicas (they arrive without a swap-cluster).
  rt_.heap().ForEachObject([&](Object* obj) {
    if (obj->kind() != ObjectKind::kRegular) return;
    if (obj->cluster() != cluster) return;
    if (obj->swap_cluster().valid()) return;
    Status placed = Place(obj, current_group_);
    if (!placed.ok()) {
      OBISWAP_LOG(kWarn) << "placing replica failed: " << placed.ToString();
    }
  });
}

}  // namespace obiswap::swap
