#include "swap/payload_cache.h"

namespace obiswap::swap {

void PayloadCache::set_budget_bytes(size_t bytes) {
  budget_ = bytes;
  EvictToBudget();
}

void PayloadCache::Put(SwapClusterId id, uint64_t epoch,
                       std::string payload) {
  Invalidate(id);  // at most one epoch per cluster is ever current
  if (budget_ == 0 || payload.size() > budget_) return;
  bytes_ += payload.size();
  lru_.push_front(Entry{id, epoch, std::move(payload)});
  index_[id] = lru_.begin();
  ++stats_.insertions;
  EvictToBudget();
}

const std::string* PayloadCache::Get(SwapClusterId id, uint64_t epoch) {
  auto it = index_.find(id);
  if (it == index_.end() || it->second->epoch != epoch) {
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return &lru_.front().payload;
}

void PayloadCache::Invalidate(SwapClusterId id) {
  auto it = index_.find(id);
  if (it == index_.end()) return;
  bytes_ -= it->second->payload.size();
  lru_.erase(it->second);
  index_.erase(it);
  ++stats_.invalidations;
}

void PayloadCache::EvictToBudget() {
  while (bytes_ > budget_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.payload.size();
    index_.erase(victim.id);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

}  // namespace obiswap::swap
