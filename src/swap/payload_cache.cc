#include "swap/payload_cache.h"

#include <algorithm>

namespace obiswap::swap {

void PayloadCache::set_budget_bytes(size_t bytes) {
  budget_ = bytes;
  EvictToBudget();
}

void PayloadCache::Put(SwapClusterId id, uint64_t epoch,
                       std::string payload) {
  PutImpl(id, epoch, std::move(payload), /*keep_epoch=*/nullptr);
}

void PayloadCache::Put(SwapClusterId id, uint64_t epoch, std::string payload,
                       uint64_t keep_epoch) {
  PutImpl(id, epoch, std::move(payload), &keep_epoch);
}

void PayloadCache::PutImpl(SwapClusterId id, uint64_t epoch,
                           std::string payload, const uint64_t* keep_epoch) {
  // Drop every entry of the cluster the insert supersedes: all of them,
  // except the pinned base epoch (if any) — which the new entry must not
  // duplicate either.
  if (auto it = index_.find(id); it != index_.end()) {
    std::vector<std::list<Entry>::iterator> slots = it->second;
    for (auto entry : slots) {
      if (keep_epoch != nullptr && entry->epoch == *keep_epoch &&
          entry->epoch != epoch) {
        continue;
      }
      Erase(entry);
    }
  }
  if (budget_ == 0 || payload.size() > budget_) return;
  bytes_ += payload.size();
  lru_.push_front(Entry{id, epoch, std::move(payload)});
  index_[id].push_back(lru_.begin());
  ++stats_.insertions;
  EvictToBudget();
}

const std::string* PayloadCache::Get(SwapClusterId id, uint64_t epoch) {
  auto it = index_.find(id);
  if (it != index_.end()) {
    for (auto entry : it->second) {
      if (entry->epoch == epoch) {
        lru_.splice(lru_.begin(), lru_, entry);
        ++stats_.hits;
        return &lru_.front().payload;
      }
    }
  }
  ++stats_.misses;
  return nullptr;
}

void PayloadCache::Invalidate(SwapClusterId id) {
  auto it = index_.find(id);
  if (it == index_.end()) return;
  std::vector<std::list<Entry>::iterator> slots = std::move(it->second);
  for (auto entry : slots) {
    bytes_ -= entry->payload.size();
    lru_.erase(entry);
    ++stats_.invalidations;
  }
  index_.erase(id);
}

void PayloadCache::Erase(std::list<Entry>::iterator it) {
  auto slot = index_.find(it->id);
  if (slot != index_.end()) {
    auto& entries = slot->second;
    entries.erase(std::remove(entries.begin(), entries.end(), it),
                  entries.end());
    if (entries.empty()) index_.erase(slot);
  }
  bytes_ -= it->payload.size();
  lru_.erase(it);
  ++stats_.invalidations;
}

void PayloadCache::EvictToBudget() {
  while (bytes_ > budget_ && !lru_.empty()) {
    auto victim = std::prev(lru_.end());
    auto slot = index_.find(victim->id);
    if (slot != index_.end()) {
      auto& entries = slot->second;
      entries.erase(std::remove(entries.begin(), entries.end(), victim),
                    entries.end());
      if (entries.empty()) index_.erase(slot);
    }
    bytes_ -= victim->payload.size();
    lru_.pop_back();
    ++stats_.evictions;
  }
}

}  // namespace obiswap::swap
