// SwappingManager: the paper's core contribution, orchestrated.
//
// The manager plugs into the runtime purely through its user-level hooks —
// no VM modification, mirroring the paper's portability argument:
//
//   * StoreMediator — every reference store is resolved for the holder's
//     swap-cluster context: same-cluster stores stay raw (full speed, §1),
//     cross-cluster stores get a swap-cluster-proxy (created or reused —
//     "when there are multiple references to the same object, across the
//     same pair of swap-clusters, only a swap-cluster-proxy is required").
//   * Interceptor (kSwapClusterProxy) — boundary invocations: forwards to
//     the real object (faulting the whole swap-cluster back in if the
//     target is a replacement-object), mediates reference arguments into
//     the target's context and the returned reference into the source's
//     context (rules i–iii, §4), and records recency/frequency.
//   * Interceptor (kReplacement) — direct invocation of a replacement is a
//     middleware error: applications only ever reach one through a proxy.
//   * IdentityHook — reference identity through proxies (the C# operator==
//     overload; §4 "Enforcing Object Identity").
//   * Heap pressure handler (optional) — swap out the LRU victim when an
//     allocation does not fit.
//   * EventBus (optional) — listens to cluster-replicated events to fold
//     arriving replication clusters into swap-clusters ("a number (also
//     adaptable) of chained object clusters as a single macro-object"), and
//     publishes swap-out/swap-in/drop events.
//
// Bookkeeping follows §4's SwappingManager: hash tables over weak
// references, with proxy and replacement finalizers removing dead entries.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/aimd.h"
#include "common/ids.h"
#include "common/status.h"
#include "context/events.h"
#include "net/bridge.h"
#include "net/sim_clock.h"
#include "persist/flash_store.h"
#include "runtime/runtime.h"
#include "serialization/graph_xml.h"
#include "swap/fault_injector.h"
#include "swap/intent_journal.h"
#include "swap/payload_cache.h"
#include "swap/proxy.h"
#include "swap/swap_cluster.h"
#include "telemetry/telemetry.h"
#include "tier/tier.h"

namespace obiswap::fleet {
class PlacementDirectory;
}  // namespace obiswap::fleet

namespace obiswap::swap {

class SwappingManager final : public runtime::Interceptor,
                              public runtime::StoreMediator,
                              public runtime::IdentityHook {
 public:
  struct Options {
    /// Replication clusters folded into each swap-cluster (adaptable).
    size_t clusters_per_swap_cluster = 1;
    /// Codec applied to swapped payloads ("identity", "rle", "lz77").
    std::string codec = "identity";
    /// Cluster document wire format: "xml" (the paper's text format) or
    /// "binary" (the compact OSWB encoding, graph_binary.h). Swap-in
    /// sniffs the payload, so the flag can change while clusters are
    /// swapped out. Policy: "set-wire-format".
    std::string wire_format = "xml";
    /// Binary wire format only: a dirty re-swap-out of a cluster whose
    /// clean image is still retained (and whose base document is still in
    /// the payload cache) ships an OSWD delta — only the fields that
    /// changed plus membership adds/removes — instead of the full payload.
    /// Member writes then retain the clean image (dirty, but diffable)
    /// rather than invalidating it. Policy: "set-wire-format" param
    /// "delta".
    bool delta_swap_out = false;
    /// Free bytes a store must advertise before being chosen.
    size_t store_min_free_bytes = 0;
    /// Stores a swap-out places the payload on (K, distinct devices).
    /// Nearby stores wander off permanently, so K > 1 buys durability at
    /// the cost of K transfers per swap-out. The first placement must
    /// succeed; further replicas are best-effort (the durability monitor
    /// tops up under-replicated clusters later). Adaptable at runtime —
    /// the "set-replication-factor" policy action raises it when store
    /// churn is high.
    size_t replication_factor = 1;
    /// Byte budget of the swap-in payload cache (decompressed XML kept in
    /// device memory so a quick fault-in after an eviction skips fetch and
    /// decompress). 0 disables — the cache competes with the application
    /// heap. Adaptable via the "set-swap-cache-bytes" policy action.
    size_t swap_in_cache_bytes = 0;
    /// Swap-out placement gives up after this many consecutive failed
    /// store attempts (stores that advertise space but fail the write —
    /// crashed, racing another device, flaky link). Successes reset the
    /// count. Guards against walking an arbitrarily long candidate list
    /// when the neighborhood is sick.
    size_t max_consecutive_store_failures = 4;
    /// Hedged failover fetch: a demand swap-in whose first replica fetch
    /// exceeds the HealthTracker's p95-derived hedge deadline abandons it
    /// and tries the next healthy replica immediately, instead of waiting
    /// out full retry exhaustion. The abandoned replica is re-queued for
    /// one final uncapped attempt so availability never drops below the
    /// sequential walk's. Needs AttachHealth. Policy: "set-hedged-fetch".
    bool hedged_fetch = false;
    /// End-to-end virtual-time budget per swap-out / swap-in (0 = none):
    /// past it the operation fails kDeadlineExceeded, aborting its journal
    /// intent cleanly, rather than stacking worst-case retries across K
    /// replicas. Policy: "set-op-deadline".
    uint64_t op_deadline_us = 0;
    /// Effective replication factor while in brownout (floored at 1):
    /// degraded placement ships fewer copies now and queues the re-
    /// replication debt for the DurabilityMonitor to repay on recovery.
    size_t brownout_replication_factor = 1;
    /// Bound on the deferred-drop retry queue. At the cap the oldest
    /// obligation is evicted (counted as pending_drop_overflow) — a store
    /// that never returns must not grow the queue forever.
    size_t max_pending_drops = 1024;
    /// AIMD pacing of tier write-backs (ReReplicate's tier-sourced branch):
    /// each durability poll is one window; write-backs past the cap wait
    /// for the next poll, and store pushback halves the cap. Disabled by
    /// default — byte-parity.
    AimdPacer::Options write_back_pacer;
  };

  struct Stats {
    uint64_t proxies_created = 0;
    uint64_t proxies_reused = 0;
    uint64_t proxies_dismantled = 0;
    uint64_t proxies_finalized = 0;
    uint64_t boundary_crossings = 0;
    uint64_t assigned_patches = 0;
    uint64_t swap_outs = 0;
    uint64_t swap_ins = 0;
    uint64_t drops = 0;
    uint64_t drop_failures = 0;
    uint64_t swap_out_failures = 0;
    uint64_t bytes_swapped_out = 0;
    uint64_t bytes_swapped_in = 0;
    uint64_t local_swap_outs = 0;  ///< clusters parked on the local flash
    uint64_t merges = 0;
    uint64_t splits = 0;
    // --- durability layer ---------------------------------------------------
    uint64_t replicas_placed = 0;      ///< store placements, incl. primaries
    uint64_t under_replicated_outs = 0;  ///< swap-outs that got < K replicas
    uint64_t failover_fetches = 0;   ///< swap-ins that skipped ≥1 replica
    uint64_t data_loss_failovers = 0;  ///< replicas skipped: checksum mismatch
    uint64_t replicas_forgotten = 0;   ///< replica records lost to departure
    uint64_t re_replications = 0;      ///< replicas placed to restore K
    uint64_t bytes_re_replicated = 0;
    uint64_t evacuated_replicas = 0;   ///< replicas moved off a leaving store
    uint64_t drops_deferred = 0;       ///< drop ops parked in the retry queue
    uint64_t drops_drained = 0;        ///< deferred drops completed later
    // --- clean-image swap cache ---------------------------------------------
    uint64_t clean_swap_outs = 0;  ///< swap-outs served by a retained image
    uint64_t clean_image_invalidations = 0;  ///< images released (write,
                                             ///< churn, merge/split, GC)
    uint64_t clean_images_reaped = 0;  ///< images of fully-dead clusters
    uint64_t cache_hits = 0;       ///< swap-ins served from the payload cache
    uint64_t bytes_swap_transfer_saved = 0;  ///< link bytes those avoided
    // --- predictive prefetch ------------------------------------------------
    uint64_t prefetched_swap_ins = 0;  ///< swap-ins marked speculative
    uint64_t prefetch_stages = 0;      ///< payloads staged into the cache
    uint64_t prefetch_stage_bytes = 0;
    uint64_t prefetch_hits = 0;    ///< speculative work the app consumed
    uint64_t prefetch_wastes = 0;  ///< speculative work discarded untouched
    uint64_t demand_fault_stall_us = 0;  ///< virtual time in demand SwapIns
    uint64_t prefetch_fetch_us = 0;      ///< virtual time in speculative work
    // --- crash consistency ----------------------------------------------------
    uint64_t recoveries = 0;         ///< Recover() completions
    uint64_t recovery_us = 0;        ///< virtual time spent recovering
    uint64_t journal_append_us = 0;  ///< flash time persisting the journal
    uint64_t journal_bytes = 0;      ///< journal bytes written to flash
    // --- degraded mode --------------------------------------------------------
    uint64_t hedged_fetches = 0;   ///< first fetches abandoned at the hedge
    uint64_t hedge_wins = 0;       ///< hedges served by another replica
    uint64_t hedge_wastes = 0;     ///< hedges that fell back to replica 0
    uint64_t deadline_aborts = 0;  ///< ops abandoned at their budget
    uint64_t brownout_entries = 0;
    uint64_t brownout_exits = 0;
    uint64_t brownout_swap_outs = 0;  ///< placements at reduced K
    uint64_t pending_drop_overflow = 0;  ///< oldest obligations evicted
    // --- binary deltas --------------------------------------------------------
    uint64_t delta_swap_outs = 0;   ///< swap-outs that shipped an OSWD delta
    uint64_t delta_fallbacks = 0;   ///< delta-eligible outs that shipped full
    uint64_t delta_bytes_shipped = 0;  ///< compressed delta bytes placed
    uint64_t delta_bytes_saved = 0;    ///< full-payload bytes those avoided
    uint64_t delta_base_cache_hits = 0;  ///< delta swap-ins with cached base
    uint64_t fields_marked_dirty = 0;  ///< write-barrier slot notifications
    // --- tiered swap hierarchy ------------------------------------------------
    uint64_t tier_swap_outs = 0;  ///< swap-outs placed in a local tier
    uint64_t tier_swap_ins = 0;   ///< swap-ins served from a local tier
    // --- fleet placement directory --------------------------------------------
    uint64_t fleet_selections = 0;  ///< placement walks served by the directory
    uint64_t fleet_placements = 0;  ///< replicas placed on directory targets
    // --- overload controls ----------------------------------------------------
    uint64_t write_backs_paced = 0;  ///< tier write-backs deferred by AIMD cap
  };

  /// What Recover() found and did — the restart post-mortem.
  struct RecoveryReport {
    size_t pending_ops = 0;       ///< uncommitted journal operations found
    size_t rolled_back = 0;       ///< torn ops undone (heap restored)
    size_t rolled_forward = 0;    ///< torn ops completed from the journal
    size_t proxies_restored = 0;  ///< proxy targets re-pointed
    size_t orphan_drops_enqueued = 0;  ///< journaled keys queued for drop
    size_t replicas_verified = 0;   ///< replicas whose checksum re-verified
    size_t replicas_discarded = 0;  ///< replicas gone or corrupt at restart
    size_t clean_images_dropped = 0;  ///< images invalidated by reconcile
    size_t clusters_lost = 0;  ///< swapped clusters with no usable copy left
    uint64_t journal_records_skipped = 0;  ///< bad/stale records tolerated
    uint64_t journal_bad_tail_bytes = 0;   ///< torn tail bytes discarded
    size_t tier_ram_entries_lost = 0;   ///< RAM-tier payloads gone at restart
    size_t tier_flash_verified = 0;     ///< flash-tier entries that survived
    size_t tier_flash_discarded = 0;    ///< flash-tier entries reconciled away
  };

  /// Installs the mediation hooks on `rt` and registers the proxy and
  /// replacement classes. The manager must outlive every collection of
  /// `rt`'s heap (its finalizers call back into the manager).
  explicit SwappingManager(runtime::Runtime& rt)
      : SwappingManager(rt, Options()) {}
  SwappingManager(runtime::Runtime& rt, Options options);
  ~SwappingManager() override;

  SwappingManager(const SwappingManager&) = delete;
  SwappingManager& operator=(const SwappingManager&) = delete;

  // --- wiring (each optional) ---------------------------------------------
  /// Enables actual swap-out/in through nearby store devices.
  void AttachStore(net::StoreClient* client, net::Discovery* discovery);
  /// Local-persistence fallback (Figure 1's Persistence module / the .Net
  /// Micro flash approach): used when no nearby store can take a cluster.
  /// Remote stores are always preferred — flash wears out and is part of
  /// the device's own scarce resources.
  void AttachLocalStore(persist::FlashStore* store) { local_ = store; }
  /// Joins the middleware event bus (replication grouping + swap events).
  void AttachBus(context::EventBus* bus);
  /// Makes heap exhaustion swap out LRU victims automatically.
  void InstallPressureHandler();
  /// Virtual time source for the stall/prefetch timing counters (the same
  /// clock the simulated network advances). Optional; without it the
  /// *_us counters stay 0 and telemetry spans are stamped 0.
  void AttachClock(const net::SimClock* clock) {
    clock_ = clock;
    telemetry_->AttachClock(clock);
  }
  /// Shares an externally owned telemetry bundle (benches pass one bundle
  /// to the manager and the store client so RPC spans land in the same
  /// trace). The manager keeps its own bundle otherwise; attach before
  /// AttachClock/AttachBus so spans and journal mirroring land in `t`.
  void AttachTelemetry(telemetry::Telemetry* t);
  /// Per-store health scores and circuit breakers (usually the same
  /// tracker the StoreClient feeds). Placement and fetch rotation then
  /// prefer healthy stores, hedged fetch gets its deadline from the
  /// tracker, and every breaker transition is journaled and published on
  /// the bus as a breaker-transition event.
  void AttachHealth(net::HealthTracker* health);
  net::HealthTracker* health() const { return health_; }
  /// Rendezvous placement directory over the store fleet. While attached,
  /// populated and in "directory" placement mode, SwapOut / ReReplicate /
  /// EvacuateReplicas pick replica targets from the directory's weighted-
  /// HRW rank (bounded-load order against actual store fill) instead of
  /// walking every nearby store most-free-first — O(fleet) sorts and
  /// free-byte-sensitive orders are gone from the placement path. With the
  /// directory detached, empty, or the mode set to "walk"
  /// (set_placement_via_directory(false), policy "set-placement-mode"),
  /// behavior is byte-identical to before.
  void AttachPlacementDirectory(fleet::PlacementDirectory* directory) {
    directory_ = directory;
  }
  fleet::PlacementDirectory* placement_directory() const {
    return directory_;
  }
  void set_placement_via_directory(bool enabled) {
    placement_via_directory_ = enabled;
  }
  bool placement_via_directory() const { return placement_via_directory_; }

  // --- swap-cluster management ----------------------------------------------
  /// Creates a fresh swap-cluster for locally built graphs.
  SwapClusterId NewSwapCluster() { return registry_.Create(); }
  /// Adds `obj` to a swap-cluster (labels it and registers weak
  /// membership). Placing counts as a "touch" for LRU victim selection, so
  /// a cluster under construction is never the next swap-out victim.
  Status Place(runtime::Object* obj, SwapClusterId id);

  SwapClusterRegistry& registry() { return registry_; }
  const SwapClusterRegistry& registry() const { return registry_; }

  // --- swapping ----------------------------------------------------------------
  /// Detaches swap-cluster `id`, ships its XML to up to
  /// `replication_factor` nearby stores (distinct devices, local flash only
  /// as last resort), installs the replacement-object and patches inbound
  /// proxies. Returns the primary replica's store key. The freed memory is
  /// reclaimed by the next collection.
  Result<SwapKey> SwapOut(SwapClusterId id);

  /// Swap-out the least-recently-crossed eligible cluster (not executing,
  /// loaded, non-empty). Returns the victim's id.
  Result<SwapClusterId> SwapOutVictim();

  /// Fetches a swapped cluster back, re-creates its objects, patches every
  /// inbound proxy to the fresh replicas and retires the replacement.
  /// Failover fetch: replicas are tried in nearness order; an unreachable
  /// store or a corrupted payload (checksum mismatch → kDataLoss, counted)
  /// falls through to the next replica. Fails only when no replica yields
  /// an intact payload. The store copies are NOT dropped: they are retained
  /// as a clean image until the first member write, so an untouched cluster
  /// re-swaps out with zero transfer (see SwapClusterInfo::clean_image).
  /// With `prefetch` set the swap-in is speculative (the prefetcher's
  /// doing, not an application touch): it is tracked for hit/waste
  /// accounting and its cluster-swapped-in event carries "prefetch"=1 so
  /// listeners can tell it from a demand fault.
  Status SwapIn(SwapClusterId id, bool prefetch = false);

  /// The cheap prefetch tier: fetches and decompresses a swapped cluster's
  /// payload into the swap-in payload cache WITHOUT creating any heap
  /// objects, so the later demand fault skips the radio and the codec.
  /// Uses the same reachable-first failover fetch as SwapIn. Requires the
  /// payload cache to be enabled; fails kResourceExhausted if the payload
  /// does not fit the cache budget.
  Status PrefetchStage(SwapClusterId id);

  /// Clusters currently carrying un-consumed speculative work (staged
  /// payloads + speculatively loaded clusters) — the prefetcher's budget
  /// gate measures this.
  size_t PrefetchOutstanding() const {
    return staged_.size() + speculative_loaded_.size();
  }

  /// Called on every boundary crossing with the entered cluster's id
  /// (after hit accounting). The prefetch recorder learns fault order from
  /// this. The observer may trigger swapping; the invocation path
  /// re-validates its target afterwards.
  using CrossingObserver = std::function<void(SwapClusterId)>;
  void SetCrossingObserver(CrossingObserver observer) {
    crossing_observer_ = std::move(observer);
  }

  /// The assign() iteration optimization (§4): marks a swap-cluster-proxy
  /// whose source is swap-cluster-0 so that boundary-crossing returns patch
  /// the proxy in place instead of creating a proxy per reference.
  Status Assign(runtime::Object* proxy);

  // --- adaptive regrouping (paper §3: "a number (ALSO ADAPTABLE) of
  // --- chained object clusters as a single macro-object") -----------------
  /// Merges two loaded swap-clusters: `from`'s members join `into`, every
  /// proxy between the two is dismantled (their references become raw
  /// intra-cluster links again — full speed), and proxies from/to other
  /// clusters are relabeled. `from` ceases to exist.
  Status MergeSwapClusters(SwapClusterId into, SwapClusterId from);

  /// Splits `members_to_move` (all members of `id`) out of a loaded
  /// swap-cluster into a fresh one; references that now cross the new
  /// boundary acquire swap-cluster-proxies. Returns the new cluster's id.
  Result<SwapClusterId> SplitSwapCluster(
      SwapClusterId id, const std::vector<runtime::Object*>& members_to_move);

  /// Optional veto on swap-out (e.g. transactional support pins clusters
  /// with uncommitted writes). Return true to forbid swapping `id` now.
  using VictimFilter = std::function<bool(SwapClusterId)>;
  void SetVictimFilter(VictimFilter filter) {
    victim_filter_ = std::move(filter);
  }

  // --- clean-image tracking -------------------------------------------------
  /// Marks a loaded cluster dirty, invalidating (and releasing) any
  /// retained clean image. Driven by the runtime's write barrier; exposed
  /// for layers that mutate members behind the runtime's back.
  void MarkDirty(SwapClusterId id);

  /// Releases the clean images of loaded clusters whose members have all
  /// died (the GC analogue of the replacement-finalizer drop: the image
  /// backs garbage). Swept by the DurabilityMonitor. Returns images reaped.
  size_t ReapDeadCleanImages();

  /// Resizes the swap-in payload cache at runtime (0 disables; policy
  /// action "set-swap-cache-bytes").
  void set_swap_in_cache_bytes(size_t bytes);
  const PayloadCache& payload_cache() const { return cache_; }

  // --- durability (replica maintenance under store churn) ------------------
  /// Adapts the replication factor at runtime (policy action target).
  /// Existing swapped clusters are topped up lazily by ReReplicate.
  void set_replication_factor(size_t k);

  /// Discards the replica records `id` holds on `device` (the store is
  /// gone) — swapped-state replicas and retained clean-image replicas
  /// alike. The orphaned store entries are queued as pending drops, so if
  /// the device ever returns its stale payloads are reclaimed. A clean
  /// image that loses its last replica is invalidated (the next swap-out
  /// re-serializes — never a stale fetch). Returns records forgotten.
  size_t ForgetReplica(SwapClusterId id, DeviceId device);

  /// Restores up to `replication_factor` replicas for a swapped cluster by
  /// copying the payload from a surviving replica to additional nearby
  /// stores. Returns the number of new replicas placed (0 if already at
  /// K or no eligible store is in range); fails only when the payload
  /// cannot be read back from any replica.
  Result<size_t> ReReplicate(SwapClusterId id);

  /// Proactive evacuation: moves every replica held by `leaving` (which
  /// announced its withdrawal and is still reachable) onto other nearby
  /// stores. Returns the number of replicas moved; clusters whose payload
  /// could not be re-homed keep their replica on `leaving`.
  Result<size_t> EvacuateReplicas(DeviceId leaving);

  /// Retries queued drop notifications (stores that were unreachable when
  /// their entry became stale). Returns the number drained; entries whose
  /// store is still unreachable stay queued.
  size_t FlushPendingDrops();
  size_t pending_drop_count() const { return pending_drops_.size(); }

  /// True if any placement target (nearby store with ≥1 free byte, or the
  /// local flash) is currently available.
  bool AnyStoreReachable() const;

  // --- degraded mode (brownout) ---------------------------------------------
  /// Enters brownout: swap-outs place only brownout_replication_factor
  /// replicas (the shortfall is queued as re-replication debt), victim
  /// selection prefers clusters with a retained clean image (zero-transfer
  /// swap-out), and the DurabilityMonitor defers its re-replication sweep.
  /// Idempotent; publishes brownout-entered and journals the transition.
  /// Entered automatically by the DurabilityMonitor when the healthy-store
  /// count drops below the replication factor, or by the "set-brownout"
  /// policy action.
  void EnterBrownout(const char* reason);
  /// Leaves brownout (idempotent): the next DurabilityMonitor sweep repays
  /// the queued re-replication debt. Publishes brownout-exited.
  void ExitBrownout();
  bool brownout() const { return brownout_; }
  /// Replicas a swap-out aims for right now: replication_factor normally,
  /// min(replication_factor, brownout_replication_factor) in brownout
  /// (both floored at 1).
  size_t EffectiveReplicationFactor() const;

  /// Runtime toggles for the degraded-mode machinery (policy targets).
  void set_hedged_fetch(bool enabled) { options_.hedged_fetch = enabled; }
  void set_op_deadline_us(uint64_t us) { options_.op_deadline_us = us; }

  // --- wire format ----------------------------------------------------------
  /// Switches the cluster document format for future swap-outs ("xml" or
  /// "binary"); already-swapped payloads self-describe and keep working.
  /// Policy action "set-wire-format".
  Status set_wire_format(const std::string& format);
  const std::string& wire_format() const { return options_.wire_format; }
  /// Enables/disables delta swap-out (effective only under "binary").
  void set_delta_swap_out(bool enabled) {
    options_.delta_swap_out = enabled;
  }
  bool delta_swap_out() const { return options_.delta_swap_out; }

  // --- crash consistency ----------------------------------------------------
  /// Write-ahead intent journal: every multi-step pipeline operation logs
  /// its intents (replica keys before the store RPC, proxy/member oids
  /// before heap patching) so a crash anywhere leaves a recoverable trail.
  /// Attach before swapping activity; without one the manager behaves
  /// exactly as before (no journal writes, no recovery trail).
  void AttachIntentJournal(IntentJournal* journal) { journal_ = journal; }
  IntentJournal* intent_journal() const { return journal_; }
  /// Tiered swap hierarchy: a compressed-RAM pool and a flash-slot
  /// partition in front of the remote stores. Swap-outs then land in the
  /// fastest tier with headroom (remote replicas stay the durability tier
  /// — the durability sweep writes tier-resident payloads back to K), and
  /// demand faults probe the tiers before touching the radio. The tier's
  /// flash partition should be the same FlashStore passed to
  /// AttachLocalStore so recovery can reach tier keys through the normal
  /// local fetch/drop paths. With no tier attached — or the tier mode set
  /// to "off" before any admission — behavior is identical to before.
  void AttachTierManager(tier::TierManager* tier) {
    tier_ = tier;
    // The tier mints flash keys from the manager's key space when it
    // demotes an evicted RAM-only entry down to flash, so demoted keys can
    // never collide with replica or journal keys.
    if (tier_ != nullptr)
      tier_->set_key_source([this] { return NextKey(); });
  }
  tier::TierManager* tier_manager() const { return tier_; }
  /// Deterministic fault injection: named points threaded through every
  /// pipeline stage consult the injector's scripts (crash / error / delay
  /// at the Nth hit). Scriptable at runtime via the "inject-fault" policy
  /// action.
  void AttachFaultInjector(FaultInjector* faults) { faults_ = faults; }
  FaultInjector* fault_injector() const { return faults_; }
  /// True after an injected crash abandoned an operation mid-flight: the
  /// heap and stores hold torn state and every swapping entry point
  /// refuses with kFailedPrecondition until Recover() runs.
  bool crashed() const { return crashed_; }
  /// Evaluates the named fault point (free no-op without an injector).
  /// kCrash marks the manager crashed and returns kInternal — the caller
  /// must abandon its operation at that instruction boundary. kError
  /// returns kUnavailable (routed through the stage's normal error path).
  /// kDelay advances the injector's clock and returns OK. Public so layers
  /// above the manager (the DurabilityMonitor) share the same scripts.
  Status CheckFaultPoint(const char* point);
  /// Simulated-restart recovery: replays the intent journal against the
  /// store fleet. Torn operations are rolled back when the heap still
  /// holds a live copy (proxies re-pointed from the journaled list, orphan
  /// replicas queued for drop) and rolled forward when only the journaled
  /// replicas survive (checksum-verified). Then every swapped cluster's
  /// replicas are re-verified against the journal's checksums, clean
  /// images and the payload cache are reconciled, the journal is cleared
  /// and the crashed flag drops. Idempotent; safe to call on a clean
  /// manager (empty report).
  Result<RecoveryReport> Recover();

  // --- runtime hooks ---------------------------------------------------------
  Result<runtime::Value> Invoke(runtime::Runtime& rt,
                                runtime::Object* receiver,
                                std::string_view method,
                                std::vector<runtime::Value>& args) override;
  runtime::Object* MediateStore(runtime::Runtime& rt, runtime::Object* holder,
                                runtime::Object* value) override;
  void ObserveFieldWrite(runtime::Runtime& rt, runtime::Object* holder,
                         size_t slot) override;
  bool SameObject(const runtime::Object* a,
                  const runtime::Object* b) override;

  /// Resolves `value` for use from `context`: raw if same cluster,
  /// dismantled if it is a proxy back into `context`, otherwise a (reused
  /// or fresh) proxy. Exposed for tests and the baselines.
  Result<runtime::Object*> ResolveForContext(SwapClusterId context,
                                             runtime::Object* value);

  // --- introspection ------------------------------------------------------------
  const Stats& stats() const { return stats_; }
  /// The manager's telemetry bundle (own or attached): metrics registry,
  /// span tracer, post-mortem event journal. Always valid.
  telemetry::Telemetry& telemetry() const { return *telemetry_; }
  /// Every manager counter plus the payload cache's, as ordered
  /// (name, value) pairs — the single source benches and tests dump
  /// instead of hand-rolling counter lists.
  std::vector<std::pair<std::string, uint64_t>> StatsSnapshot() const;
  /// StatsSnapshot rendered as a flat JSON object.
  std::string StatsJson() const;
  const Options& options() const { return options_; }
  /// The attached StoreClient's counters (retry budgets, pushbacks, wire
  /// attempts); nullptr while no remote store is attached. Pacers and
  /// benches read pushback deltas from here — remote op statuses fold
  /// pushback into fallback logic, the counters do not lie.
  const net::StoreClient::Stats* StoreClientStats() const {
    return store_ == nullptr ? nullptr : &store_->stats();
  }
  /// The tier write-back pacer (see Options::write_back_pacer). The
  /// durability monitor begins its window each poll.
  AimdPacer& write_back_pacer() { return write_back_pacer_; }
  SwapState StateOf(SwapClusterId id) const;
  /// Live proxies currently targeting cluster `id` (prunes dead entries).
  size_t InboundProxyCount(SwapClusterId id);

 private:
  struct ReuseKey {
    uint32_t source;
    uint64_t oid;
    bool operator==(const ReuseKey& other) const {
      return source == other.source && oid == other.oid;
    }
  };
  struct ReuseKeyHash {
    size_t operator()(const ReuseKey& key) const {
      return std::hash<uint64_t>()(key.oid * 1000003u + key.source);
    }
  };

  /// (ultimate target object, its swap-cluster, its identity) of a value.
  struct Resolved {
    runtime::Object* target;
    SwapClusterId sc;
    ObjectId oid;
  };
  /// nullopt-style: returns false if `value` is not swap-managed
  /// (replication proxies pass through raw).
  bool ResolveUltimate(runtime::Object* value, Resolved* out) const;

  Result<runtime::Object*> CreateProxy(SwapClusterId source,
                                       const Resolved& resolved);
  runtime::Object* FindReusableProxy(SwapClusterId source, ObjectId oid);
  void RegisterProxy(runtime::Object* proxy, SwapClusterId target_sc,
                     ObjectId target_oid, SwapClusterId source);

  Result<runtime::Value> ProxyInvoke(runtime::Object* proxy,
                                     std::string_view method,
                                     std::vector<runtime::Value>& args);
  Result<runtime::Value> MediateReturn(runtime::Object* proxy,
                                       runtime::Value result);

  void OnClusterReplicated(const context::Event& event);
  void OnProxyFinalized(runtime::Object* proxy);
  void OnReplacementFinalized(runtime::Object* replacement);

  /// Boundary-crossing bookkeeping for prefetch: consumes a speculative
  /// load as a hit, then notifies the crossing observer.
  void NoteClusterEntered(SwapClusterId id);
  /// Un-consumed speculative state of `id` is being thrown away (swap-out,
  /// drop, merge): count and publish the waste.
  void NotePrefetchDiscard(SwapClusterId id);
  void PublishPrefetchEvent(const char* type, SwapClusterId id,
                            const char* kind);

  SwapKey NextKey();

  runtime::Runtime& rt_;
  Options options_;
  SwapClusterRegistry registry_;
  const runtime::ClassInfo* proxy_cls_ = nullptr;
  const runtime::ClassInfo* replacement_cls_ = nullptr;

  /// Store plumbing shared by swap-out, swap-in and the drop path.
  /// `deadline_us` caps the RPC's virtual time (0 = none; the local flash
  /// ignores it — flash writes are not subject to link weather). Every
  /// remote op ships the manager's current priority class (call_priority_,
  /// scoped per operation) so saturated stores shed the right traffic.
  Status StoreAt(DeviceId device, SwapKey key, const std::string& payload,
                 uint64_t deadline_us = 0);
  Result<std::string> FetchFrom(DeviceId device, SwapKey key,
                                uint64_t deadline_us = 0);
  Status DropAt(DeviceId device, SwapKey key);

  /// RAII priority scope: the manager's operations nest (a swap-in can
  /// trigger an eviction swap-out, a sweep calls ReReplicate), so the
  /// class rides a member, set on operation entry and restored on exit.
  class PriorityScope {
   public:
    PriorityScope(SwappingManager* manager, net::Priority priority)
        : manager_(manager), saved_(manager->call_priority_) {
      manager_->call_priority_ = priority;
    }
    ~PriorityScope() { manager_->call_priority_ = saved_; }
    PriorityScope(const PriorityScope&) = delete;
    PriorityScope& operator=(const PriorityScope&) = delete;

   private:
    SwappingManager* manager_;
    net::Priority saved_;
  };
  bool IsLocalDevice(DeviceId device) const {
    return local_ != nullptr && local_->device() == device;
  }

  /// Replica try order for fetches: reachable stores first (placement order
  /// within each group) — the failover path and re-replication share it.
  std::vector<ReplicaLocation> ReplicaFetchOrder(
      const std::vector<ReplicaLocation>& replicas) const;
  /// Fetches the payload from any of `replicas`, verifying frame
  /// integrity; used by re-replication and evacuation (swap-in has its own
  /// loop so it can also fail over on deserialization errors). Works for
  /// swapped replicas and retained clean-image replicas alike.
  Result<std::string> FetchVerifiedPayload(
      SwapClusterId id, const std::vector<ReplicaLocation>& replicas);
  /// Stores `payload` on one nearby store not in `exclude_devices` under a
  /// fresh key. kUnavailable if no eligible store accepts it. The minted
  /// key is journaled under `journal_seq` (0 = unjournaled) before the
  /// store RPC; `fault_point` is consulted before each attempt. `id` names
  /// the owning cluster so directory placement ranks against its key.
  Result<ReplicaLocation> PlaceReplica(
      SwapClusterId id, const std::string& payload,
      const std::vector<ReplicaLocation>& existing, DeviceId exclude,
      uint64_t journal_seq, const char* fault_point);

  /// Directory placement is attached, populated, and switched on.
  bool DirectoryActive() const;
  /// Store candidates for placing `k` replicas of cluster `id`: the
  /// directory's HRW rank filtered to reachable stores with `need` free
  /// bytes, bounded-load candidates first.
  std::vector<net::StoreNode*> DirectoryCandidates(SwapClusterId id, size_t k,
                                                   size_t need);
  /// Drop notification to every replica; failures against unreachable
  /// stores are parked in the retry queue. `count_as_drop` selects whether
  /// successful ops bump stats_.drops (GC path) or not (swap-in path).
  void ReleaseReplicas(const std::vector<ReplicaLocation>& replicas,
                       bool count_as_drop);

  /// Drops a clean image: releases its store replicas (`count_as_drop`
  /// follows the GC-vs-staleness distinction above) and evicts the cached
  /// payload. No-op without an image.
  void InvalidateCleanImage(SwapClusterInfo* info, bool count_as_drop);

  // --- crash-consistency internals ------------------------------------------
  /// Oids of live inbound proxies currently targeting `id` (journaled at
  /// BeginOp so recovery can cross-check the patched set).
  std::vector<uint64_t> LiveInboundProxyOids(SwapClusterId id);
  /// Heap scan for swap-cluster-proxies targeting `id` — recovery trusts
  /// the heap, not the manager's (possibly torn) maps.
  std::vector<runtime::Object*> HeapProxiesTargeting(SwapClusterId id);
  /// ReleaseReplicas wrapped in a journaled kDrop op: the keys are intents
  /// before the first drop RPC, so a crash mid-release leaves every
  /// remaining key reclaimable.
  void JournaledRelease(SwapClusterId id,
                        const std::vector<ReplicaLocation>& replicas,
                        bool count_as_drop);
  void EnqueueOrphanDrops(const std::vector<ReplicaLocation>& intents,
                          RecoveryReport* report);
  void RecoverOp(const IntentJournal::PendingOp& op, RecoveryReport* report);
  const char* RecoverTornSwapOut(const IntentJournal::PendingOp& op,
                                 SwapClusterInfo* info,
                                 RecoveryReport* report);
  const char* RecoverTornSwapIn(const IntentJournal::PendingOp& op,
                                SwapClusterInfo* info, RecoveryReport* report);
  const char* RecoverTornDrop(const IntentJournal::PendingOp& op,
                              SwapClusterInfo* info, RecoveryReport* report);
  const char* RecoverTornMaintenance(const IntentJournal::PendingOp& op,
                                     SwapClusterInfo* info,
                                     RecoveryReport* report);
  /// Post-replay sweep: fetches and checksums every swapped cluster's
  /// replicas, pruning dead or corrupt copies (unreachable stores get the
  /// benefit of the doubt).
  void VerifySwappedClusters(RecoveryReport* report);
  /// Confirms retained clean-image replicas still exist; invalidates
  /// images left with none.
  void ReconcileCleanImages(RecoveryReport* report);
  /// Drops cached payloads that no longer match any live epoch/checksum.
  void ReconcilePayloadCache();
  /// The zero-transfer swap-out fast path. nullopt = image unusable
  /// (invalidated; caller falls through to the full serialize+ship path);
  /// otherwise the definitive swap-out result.
  std::optional<Result<SwapKey>> TryCleanSwapOut(SwapClusterInfo* info);

  // --- binary delta internals -----------------------------------------------
  /// True when member writes should retain (not invalidate) clean images:
  /// the next swap-out may diff against the image's base document.
  bool DeltaRetainsImages() const {
    return options_.delta_swap_out && options_.wire_format == "binary";
  }
  /// Serializes per options_.wire_format (XML or OSWB binary).
  Result<serialization::SerializedCluster> SerializeForWire(
      uint32_t cluster_attr_id, const std::vector<runtime::Object*>& members,
      const serialization::DescribeExternalFn& describe);
  /// Fetches and decompresses the base document of a delta-swapped
  /// cluster (payload cache first, then base replica failover) and
  /// applies `delta_payload` to it. Also re-primes the payload cache with
  /// the base. Returns the merged full OSWB document.
  Result<std::string> ResolveDeltaBase(SwapClusterInfo* info,
                                       const std::string& delta_payload,
                                       uint64_t op_start_us);

  struct PendingDrop {
    DeviceId device;
    SwapKey key;
  };

  /// Queues a drop obligation (deduplicated; bounded by max_pending_drops
  /// — at the cap the oldest entry is evicted and counted). Returns true
  /// if the obligation was newly queued.
  bool EnqueuePendingDrop(DeviceId device, SwapKey key);

  /// Remaining virtual time of the operation that started at
  /// `op_start_us`; UINT64_MAX when no deadline is configured (or no
  /// clock), 0 when the budget is spent.
  uint64_t OpBudgetLeft(uint64_t op_start_us) const;

  // --- tiered-hierarchy internals -------------------------------------------
  /// A tier is attached and admitting: every tier code path on the hot
  /// pipeline is gated on this so a detached (or mode-off) tier leaves the
  /// pipeline byte-identical to before.
  bool TierActive() const { return tier_ != nullptr && tier_->enabled(); }
  /// Tier placement for a freshly serialized payload: RAM first, flash as
  /// spill, journaled before any flash write. True when a tier took the
  /// payload (the caller then skips remote placement; the durability sweep
  /// owes the write-back). `tier_key` gets the caller-visible key.
  Result<bool> TryTierAdmit(SwapClusterInfo* info, uint64_t seq,
                            uint32_t wire_checksum, const std::string& payload,
                            SwapKey* tier_key);
  /// Unpins the tier entry once the cluster's active replica group has
  /// reached the full replication factor (write-back complete).
  void MaybeCompleteTierWriteBack(SwapClusterInfo* info);

  net::StoreClient* store_ = nullptr;
  net::Discovery* discovery_ = nullptr;
  persist::FlashStore* local_ = nullptr;
  context::EventBus* bus_ = nullptr;
  uint64_t bus_token_ = 0;
  uint64_t conn_token_ = 0;
  uint64_t journal_token_ = 0;

  /// Owned bundle unless AttachTelemetry() swapped in a shared one.
  /// Held by pointer so const methods (StatsSnapshot) can sync counters.
  std::unique_ptr<telemetry::Telemetry> own_telemetry_;
  telemetry::Telemetry* telemetry_;

  /// Drop notifications that could not be delivered (store unreachable);
  /// drained on reconnection.
  std::vector<PendingDrop> pending_drops_;

  /// (source swap-cluster, target oid) → proxy, for stored-reference reuse.
  std::unordered_map<ReuseKey, runtime::WeakRef, ReuseKeyHash> reuse_;
  /// target swap-cluster → proxies currently mediating into it.
  std::unordered_map<SwapClusterId, std::vector<runtime::WeakRef>> inbound_;

  /// Grouping state for replication-driven swap-cluster formation.
  SwapClusterId current_group_;
  size_t clusters_in_group_ = 0;

  uint64_t crossing_seq_ = 0;
  uint64_t next_key_ = 1;
  VictimFilter victim_filter_;
  PayloadCache cache_;
  Stats stats_;

  /// Shedding class stamped on the next remote op (see PriorityScope).
  /// Demand by default: unscoped calls get the most protected class.
  net::Priority call_priority_ = net::Priority::kDemandSwapIn;
  /// AIMD cap on tier write-backs per durability poll (options_.write_back_pacer).
  AimdPacer write_back_pacer_;

  /// Prefetch bookkeeping: clusters whose payload was staged into the
  /// cache speculatively, and clusters speculatively swapped in but not
  /// yet touched by the application.
  std::unordered_set<SwapClusterId> staged_;
  std::unordered_set<SwapClusterId> speculative_loaded_;
  CrossingObserver crossing_observer_;
  const net::SimClock* clock_ = nullptr;

  /// Crash-consistency wiring (both optional; null = zero-cost).
  FaultInjector* faults_ = nullptr;
  IntentJournal* journal_ = nullptr;
  /// Set by an injected kCrash; cleared only by Recover().
  bool crashed_ = false;

  /// Degraded-mode wiring (optional; null = the PR-5 behavior).
  net::HealthTracker* health_ = nullptr;
  bool brownout_ = false;

  /// Tiered swap hierarchy (optional; null = remote-only placement).
  tier::TierManager* tier_ = nullptr;

  /// Fleet placement directory (optional; null = nearby-store walk).
  fleet::PlacementDirectory* directory_ = nullptr;
  bool placement_via_directory_ = true;

  /// Finalizers capture this handle; the destructor nulls it so a GC after
  /// manager teardown cannot call into a dead manager.
  std::shared_ptr<SwappingManager*> alive_;
};

}  // namespace obiswap::swap
