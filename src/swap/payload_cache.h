// Bounded LRU cache of decompressed swap payloads.
//
// A fault-in that happens shortly after an eviction (thrash under heap
// pressure) pays the full fetch + decompress cost even though the bytes
// just left the device. The swapping manager inserts the decompressed XML
// text here at swap-out (and at swap-in, on the fetch path), keyed by
// (swap-cluster, payload epoch); a later SwapIn of the same epoch skips the
// radio and the codec entirely. The budget is a hard byte cap — the cache
// competes with the application heap for the device's scarce memory, so it
// defaults to 0 (disabled) and is adapted at runtime through the
// "set-swap-cache-bytes" policy action.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "common/ids.h"

namespace obiswap::swap {

class PayloadCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;      ///< entries pushed out by the byte budget
    uint64_t invalidations = 0;  ///< entries dropped because stale
  };

  explicit PayloadCache(size_t budget_bytes = 0) : budget_(budget_bytes) {}

  /// Shrinking the budget evicts LRU entries immediately; 0 empties and
  /// disables the cache.
  void set_budget_bytes(size_t bytes);
  size_t budget_bytes() const { return budget_; }
  size_t bytes() const { return bytes_; }
  size_t entry_count() const { return lru_.size(); }
  const Stats& stats() const { return stats_; }

  /// Caches `payload` for (`id`, `epoch`), replacing any older epoch of the
  /// same cluster (only one serialization per cluster is ever current).
  /// No-op when disabled or when the payload alone exceeds the budget.
  void Put(SwapClusterId id, uint64_t epoch, std::string payload);

  /// Like Put, but preserves the cluster's entry at `keep_epoch`: a
  /// delta-swapped cluster keeps its full base document (diffed and merged
  /// against) alongside the current merged document.
  void Put(SwapClusterId id, uint64_t epoch, std::string payload,
           uint64_t keep_epoch);

  /// The cached payload for exactly (`id`, `epoch`), or nullptr. A hit
  /// refreshes recency. The pointer is valid until the next mutating call.
  const std::string* Get(SwapClusterId id, uint64_t epoch);

  /// Drops whatever is cached for `id` (image invalidated, cluster dropped
  /// or re-serialized under a new epoch).
  void Invalidate(SwapClusterId id);

 private:
  struct Entry {
    SwapClusterId id;
    uint64_t epoch;
    std::string payload;
  };

  void PutImpl(SwapClusterId id, uint64_t epoch, std::string payload,
               const uint64_t* keep_epoch);
  void Erase(std::list<Entry>::iterator it);
  void EvictToBudget();

  size_t budget_;
  size_t bytes_ = 0;
  /// Front = most recently used. At most two entries per cluster (the
  /// current document, plus the pinned base of a delta-swapped cluster).
  std::list<Entry> lru_;
  std::unordered_map<SwapClusterId, std::vector<std::list<Entry>::iterator>>
      index_;
  Stats stats_;
};

}  // namespace obiswap::swap
