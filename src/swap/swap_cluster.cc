#include "swap/swap_cluster.h"

#include <algorithm>
#include <unordered_set>

namespace obiswap::swap {

const char* SwapStateName(SwapState state) {
  switch (state) {
    case SwapState::kLoaded:
      return "loaded";
    case SwapState::kSwapped:
      return "swapped";
    case SwapState::kDropped:
      return "dropped";
  }
  return "?";
}

SwapClusterId SwapClusterRegistry::Create() {
  SwapClusterId id(next_id_++);
  SwapClusterInfo info;
  info.id = id;
  clusters_.emplace(id, std::move(info));
  return id;
}

SwapClusterInfo* SwapClusterRegistry::Find(SwapClusterId id) {
  auto it = clusters_.find(id);
  return it == clusters_.end() ? nullptr : &it->second;
}

const SwapClusterInfo* SwapClusterRegistry::Find(SwapClusterId id) const {
  auto it = clusters_.find(id);
  return it == clusters_.end() ? nullptr : &it->second;
}

Status SwapClusterRegistry::AddMember(runtime::Heap& heap,
                                      runtime::Object* obj,
                                      SwapClusterId id) {
  if (obj == nullptr) return InvalidArgumentError("null member");
  if (obj->kind() != runtime::ObjectKind::kRegular)
    return InvalidArgumentError(
        "only regular application objects join swap-clusters");
  SwapClusterInfo* info = Find(id);
  if (info == nullptr)
    return NotFoundError("no swap-cluster " + id.ToString());
  if (info->state != SwapState::kLoaded)
    return FailedPreconditionError("swap-cluster " + id.ToString() +
                                   " is not loaded");
  obj->set_swap_cluster(id);
  info->members.push_back(heap.NewWeakRef(obj));
  return OkStatus();
}

std::vector<runtime::Object*> SwapClusterRegistry::LiveMembers(
    SwapClusterId id) {
  std::vector<runtime::Object*> out;
  SwapClusterInfo* info = Find(id);
  if (info == nullptr) return out;
  std::unordered_set<const runtime::Object*> seen;
  size_t write = 0;
  for (size_t read = 0; read < info->members.size(); ++read) {
    runtime::Object* target = info->members[read]->get();
    if (target == nullptr) continue;           // collected: prune
    if (!seen.insert(target).second) continue;  // duplicate registration
    out.push_back(target);
    info->members[write++] = info->members[read];
  }
  info->members.resize(write);
  return out;
}

void SwapClusterRegistry::RecordCrossing(SwapClusterId id, uint64_t seq) {
  SwapClusterInfo* info = Find(id);
  if (info == nullptr) return;
  ++info->crossing_count;
  info->last_crossing_seq = seq;
}

void SwapClusterRegistry::Touch(SwapClusterId id, uint64_t seq) {
  SwapClusterInfo* info = Find(id);
  if (info != nullptr) info->last_crossing_seq = seq;
}

SwapClusterId SwapClusterRegistry::PickLruVictim(
    const std::vector<SwapClusterId>& exclude) {
  SwapClusterId best;
  uint64_t best_seq = 0;
  bool found = false;
  for (auto& [id, info] : clusters_) {
    if (info.state != SwapState::kLoaded) continue;
    if (std::find(exclude.begin(), exclude.end(), id) != exclude.end())
      continue;
    // Skip clusters with no live members: nothing to free.
    bool any_live = false;
    for (const auto& weak : info.members) {
      if (weak->get() != nullptr) {
        any_live = true;
        break;
      }
    }
    if (!any_live) continue;
    if (!found || info.last_crossing_seq < best_seq ||
        (info.last_crossing_seq == best_seq && id < best)) {
      best = id;
      best_seq = info.last_crossing_seq;
      found = true;
    }
  }
  return best;
}

std::vector<SwapClusterId> SwapClusterRegistry::Ids() const {
  std::vector<SwapClusterId> ids;
  ids.reserve(clusters_.size());
  for (const auto& [id, info] : clusters_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace obiswap::swap
