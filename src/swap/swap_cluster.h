// Swap-cluster bookkeeping.
//
// "A swap-cluster is the basic unit of swapping. Each one contains all the
// objects comprised in a group of one or more object clusters, previously
// replicated" (§3). The registry tracks, per swap-cluster: membership (weak
// — the LGC stays in charge of lifetime), load state, the store location of
// a swapped-out cluster, and the recency/frequency signals gathered as the
// application crosses boundaries (used by victim selection).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "runtime/heap.h"
#include "runtime/object.h"

namespace obiswap::swap {

enum class SwapState : uint8_t {
  kLoaded,   ///< members resident in the device heap
  kSwapped,  ///< members serialized on a store device, replacement in place
  kDropped,  ///< became unreachable while swapped; store told to discard
};

const char* SwapStateName(SwapState state);

/// One placement of a swapped cluster's payload. A swapped cluster holds up
/// to Options::replication_factor of these, on distinct devices, each under
/// its own store key; the first is the primary (placed first, tried first).
struct ReplicaLocation {
  DeviceId device;
  SwapKey key;

  bool operator==(const ReplicaLocation& other) const {
    return device == other.device && key == other.key;
  }
};

/// The retained store image of a cluster that swapped back in and has not
/// been written since (the loaded-clean facet). While it exists, the store
/// copies listed in `replicas` are byte-identical to the resident objects,
/// so the next swap-out can reuse them instead of serializing, compressing
/// and shipping the cluster again. Invalidated (and the replicas released)
/// by the first member write, by merge/split, or when every member dies.
struct CleanImage {
  /// The store entries still holding the payload, placement order.
  std::vector<ReplicaLocation> replicas;
  /// swap_epoch under which the payload was serialized — the epoch the
  /// store keys and the payload-cache entry belong to. A zero-transfer
  /// re-swap-out bumps the cluster's swap_epoch (replacement finalizers
  /// stay guarded) but keeps serving this payload epoch.
  uint64_t payload_epoch = 0;
  /// Adler-32 of the decompressed payload (the frame checksum): lets a
  /// cached copy be verified without refetching.
  uint32_t payload_checksum = 0;
  size_t payload_bytes = 0;  ///< compressed size on the store
  size_t object_count = 0;
  /// Identity of the serialized members, document order.
  std::vector<ObjectId> oids;
  /// The outbound swap-cluster-proxies of the serialized document, in
  /// external-ref index order (the payload resolves references by index).
  /// Weak: if any dies, the image can no longer back a replacement.
  std::vector<runtime::WeakRef> outbound;

  // --- delta facet (binary wire format + delta swap-out only) --------------
  /// When the last swap-out shipped a delta, the image is two store groups:
  /// `replicas` above hold the DELTA payload (what a re-adopting
  /// TryCleanSwapOut or the next swap-in fetches alongside the base) and
  /// these hold the full BASE document the delta was diffed against. Empty
  /// when the image is a plain full payload.
  std::vector<ReplicaLocation> base_replicas;
  uint64_t base_epoch = 0;        ///< payload epoch of the base document
  uint32_t base_checksum = 0;     ///< Adler-32 of the decompressed base
  size_t base_payload_bytes = 0;  ///< compressed base size on the store
  /// Adler-32 of the full merged document the delta reconstructs — what a
  /// payload-cache copy of the merged text verifies against on the next
  /// swap-in (payload_checksum above is the delta's own). 0 when unknown.
  uint32_t merged_checksum = 0;

  bool HasDelta() const { return !base_replicas.empty(); }

  /// Epoch/checksum of the full base *document* a delta swap-out must diff
  /// against: the base group's for a delta image, the image's own for a
  /// plain full-payload image.
  uint64_t BaseEpoch() const { return HasDelta() ? base_epoch : payload_epoch; }
  uint32_t BaseChecksum() const {
    return HasDelta() ? base_checksum : payload_checksum;
  }
};

struct SwapClusterInfo {
  SwapClusterId id;
  SwapState state = SwapState::kLoaded;

  /// Replication clusters folded into this swap-cluster (empty for
  /// locally-built graphs).
  std::vector<ClusterId> replication_clusters;

  /// Weak membership: dead members drop out automatically.
  std::vector<runtime::WeakRef> members;

  // --- boundary-crossing signals (paper: "basic data w.r.t. recency and
  // --- frequency, as these boundaries are transversed") -------------------
  uint64_t crossing_count = 0;
  uint64_t last_crossing_seq = 0;  ///< logical time of last crossing

  // --- swapped state -------------------------------------------------------
  /// Where the payload lives while swapped: one entry per replica, in
  /// placement order (first = primary). Empty while loaded. Departure and
  /// re-replication mutate this list while the cluster stays swapped.
  std::vector<ReplicaLocation> replicas;
  /// Monotonic swap incarnation: bumped by every swap-out, recorded in the
  /// replacement-object, so a stale replacement finalizer (from a previous
  /// swap of the same cluster) never drops the current replicas.
  uint64_t swap_epoch = 0;
  /// Epoch under which the on-store payload was serialized (≤ swap_epoch:
  /// a clean re-swap-out bumps swap_epoch but reuses the payload).
  uint64_t payload_epoch = 0;
  /// Frame checksum (Adler-32 of the decompressed payload) of that payload.
  uint32_t payload_checksum = 0;
  runtime::WeakRef replacement;       ///< the stand-in, while swapped
  size_t swapped_object_count = 0;
  size_t swapped_payload_bytes = 0;
  /// Identity of the members while swapped: these objects are *held* by the
  /// device (on the store) even though not resident — DGC must not release
  /// them to the server.
  std::vector<ObjectId> swapped_oids;

  // --- delta-swapped state (binary wire format + delta swap-out only) ------
  /// When the last swap-out shipped a delta, `replicas` above hold the
  /// DELTA payload (payload_checksum is the delta's, so the generic fetch /
  /// verify / failover machinery works unchanged) and these hold the full
  /// BASE document the delta applies to. Swap-in must fetch one of each.
  std::vector<ReplicaLocation> base_replicas;
  uint64_t base_epoch = 0;        ///< payload epoch of the base document
  uint32_t base_checksum = 0;     ///< Adler-32 of the decompressed base
  size_t base_payload_bytes = 0;  ///< compressed base size on the store
  /// Adler-32 of the full merged document the delta reconstructs (the
  /// payload-cache copy of the merged text); 0 when unknown (e.g. after a
  /// crash recovery, which cannot recompute it) — a zero never matches, so
  /// the swap-in cache probe falls through to the fetch path.
  uint32_t merged_checksum = 0;

  bool DeltaSwapped() const {
    return state == SwapState::kSwapped && !base_replicas.empty();
  }

  uint64_t swap_out_count = 0;
  uint64_t swap_in_count = 0;

  // --- clean-image facet ---------------------------------------------------
  /// Set by the first member write since the last swap round-trip (the
  /// runtime's write barrier reports every SetField/SetFieldAt); a dirty
  /// cluster must re-serialize on its next swap-out.
  bool dirty = true;
  /// Present between a swap-in and the first write (or churn/GC
  /// invalidation): the store copies that still mirror the resident state.
  /// Under delta swap-out the image survives member writes (dirty=true,
  /// image retained) so the next swap-out can diff against its base.
  std::optional<CleanImage> clean_image;

  /// Which fields have been written since the image was captured, per
  /// member oid: bit `min(slot, 63)` per written slot, all-ones when the
  /// slot is unknown (reference stores mediated without a slot). Purely a
  /// telemetry/gating signal — the delta itself is computed document-to-
  /// document, so this never affects correctness. Cleared with the image.
  std::unordered_map<uint64_t, uint64_t> dirty_fields;

  /// The loaded-clean facet: resident, untouched, image still live.
  bool LoadedClean() const {
    return state == SwapState::kLoaded && !dirty && clean_image.has_value();
  }

  /// Replica list currently backed by store entries: the swapped-state list
  /// while kSwapped, the retained clean image's while loaded; else null.
  /// The durability layer maintains both the same way.
  const std::vector<ReplicaLocation>* ActiveReplicas() const {
    if (state == SwapState::kSwapped) return &replicas;
    if (state == SwapState::kLoaded && clean_image.has_value())
      return &clean_image->replicas;
    return nullptr;
  }

  bool HasReplicaOn(DeviceId device) const {
    const std::vector<ReplicaLocation>* active = ActiveReplicas();
    if (active == nullptr) return false;
    for (const ReplicaLocation& replica : *active) {
      if (replica.device == device) return true;
    }
    return false;
  }
};

class SwapClusterRegistry {
 public:
  /// Creates a fresh (loaded, empty) swap-cluster. Ids start at 1 —
  /// swap-cluster-0 is the implicit roots cluster and is never registered.
  SwapClusterId Create();

  /// Info lookup; nullptr for unknown ids (including 0).
  SwapClusterInfo* Find(SwapClusterId id);
  const SwapClusterInfo* Find(SwapClusterId id) const;

  /// Registers `obj` as a member of `id` and labels the object. The
  /// cluster must exist and be loaded.
  Status AddMember(runtime::Heap& heap, runtime::Object* obj,
                   SwapClusterId id);

  /// Live members of a cluster (pruning cleared weak refs as it goes).
  std::vector<runtime::Object*> LiveMembers(SwapClusterId id);

  /// Records a boundary crossing into `id` at logical time `seq`.
  void RecordCrossing(SwapClusterId id, uint64_t seq);

  /// Updates recency only (no crossing count) — e.g. membership changes.
  void Touch(SwapClusterId id, uint64_t seq);

  /// Loaded, non-empty cluster with the oldest last crossing, excluding ids
  /// in `exclude`; invalid id if none qualifies.
  SwapClusterId PickLruVictim(const std::vector<SwapClusterId>& exclude);

  /// All registered ids (ascending).
  std::vector<SwapClusterId> Ids() const;

  /// Removes a cluster's record entirely (merge absorbs it).
  void Remove(SwapClusterId id) { clusters_.erase(id); }

  size_t size() const { return clusters_.size(); }

 private:
  std::unordered_map<SwapClusterId, SwapClusterInfo> clusters_;
  uint32_t next_id_ = 1;
};

}  // namespace obiswap::swap
