// Swap-cluster bookkeeping.
//
// "A swap-cluster is the basic unit of swapping. Each one contains all the
// objects comprised in a group of one or more object clusters, previously
// replicated" (§3). The registry tracks, per swap-cluster: membership (weak
// — the LGC stays in charge of lifetime), load state, the store location of
// a swapped-out cluster, and the recency/frequency signals gathered as the
// application crosses boundaries (used by victim selection).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "runtime/heap.h"
#include "runtime/object.h"

namespace obiswap::swap {

enum class SwapState : uint8_t {
  kLoaded,   ///< members resident in the device heap
  kSwapped,  ///< members serialized on a store device, replacement in place
  kDropped,  ///< became unreachable while swapped; store told to discard
};

const char* SwapStateName(SwapState state);

/// One placement of a swapped cluster's payload. A swapped cluster holds up
/// to Options::replication_factor of these, on distinct devices, each under
/// its own store key; the first is the primary (placed first, tried first).
struct ReplicaLocation {
  DeviceId device;
  SwapKey key;

  bool operator==(const ReplicaLocation& other) const {
    return device == other.device && key == other.key;
  }
};

struct SwapClusterInfo {
  SwapClusterId id;
  SwapState state = SwapState::kLoaded;

  /// Replication clusters folded into this swap-cluster (empty for
  /// locally-built graphs).
  std::vector<ClusterId> replication_clusters;

  /// Weak membership: dead members drop out automatically.
  std::vector<runtime::WeakRef> members;

  // --- boundary-crossing signals (paper: "basic data w.r.t. recency and
  // --- frequency, as these boundaries are transversed") -------------------
  uint64_t crossing_count = 0;
  uint64_t last_crossing_seq = 0;  ///< logical time of last crossing

  // --- swapped state -------------------------------------------------------
  /// Where the payload lives while swapped: one entry per replica, in
  /// placement order (first = primary). Empty while loaded. Departure and
  /// re-replication mutate this list while the cluster stays swapped.
  std::vector<ReplicaLocation> replicas;
  /// Monotonic swap incarnation: bumped by every swap-out, recorded in the
  /// replacement-object, so a stale replacement finalizer (from a previous
  /// swap of the same cluster) never drops the current replicas.
  uint64_t swap_epoch = 0;
  runtime::WeakRef replacement;       ///< the stand-in, while swapped
  size_t swapped_object_count = 0;
  size_t swapped_payload_bytes = 0;
  /// Identity of the members while swapped: these objects are *held* by the
  /// device (on the store) even though not resident — DGC must not release
  /// them to the server.
  std::vector<ObjectId> swapped_oids;

  uint64_t swap_out_count = 0;
  uint64_t swap_in_count = 0;

  bool HasReplicaOn(DeviceId device) const {
    for (const ReplicaLocation& replica : replicas) {
      if (replica.device == device) return true;
    }
    return false;
  }
};

class SwapClusterRegistry {
 public:
  /// Creates a fresh (loaded, empty) swap-cluster. Ids start at 1 —
  /// swap-cluster-0 is the implicit roots cluster and is never registered.
  SwapClusterId Create();

  /// Info lookup; nullptr for unknown ids (including 0).
  SwapClusterInfo* Find(SwapClusterId id);
  const SwapClusterInfo* Find(SwapClusterId id) const;

  /// Registers `obj` as a member of `id` and labels the object. The
  /// cluster must exist and be loaded.
  Status AddMember(runtime::Heap& heap, runtime::Object* obj,
                   SwapClusterId id);

  /// Live members of a cluster (pruning cleared weak refs as it goes).
  std::vector<runtime::Object*> LiveMembers(SwapClusterId id);

  /// Records a boundary crossing into `id` at logical time `seq`.
  void RecordCrossing(SwapClusterId id, uint64_t seq);

  /// Updates recency only (no crossing count) — e.g. membership changes.
  void Touch(SwapClusterId id, uint64_t seq);

  /// Loaded, non-empty cluster with the oldest last crossing, excluding ids
  /// in `exclude`; invalid id if none qualifies.
  SwapClusterId PickLruVictim(const std::vector<SwapClusterId>& exclude);

  /// All registered ids (ascending).
  std::vector<SwapClusterId> Ids() const;

  /// Removes a cluster's record entirely (merge absorbs it).
  void Remove(SwapClusterId id) { clusters_.erase(id); }

  size_t size() const { return clusters_.size(); }

 private:
  std::unordered_map<SwapClusterId, SwapClusterInfo> clusters_;
  uint32_t next_id_ = 1;
};

}  // namespace obiswap::swap
