#include "swap/fault_injector.h"

namespace obiswap::swap {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kError:
      return "error";
    case FaultKind::kDelay:
      return "delay";
  }
  return "unknown";
}

Result<FaultKind> ParseFaultKind(std::string_view name) {
  if (name == "crash") return FaultKind::kCrash;
  if (name == "error") return FaultKind::kError;
  if (name == "delay") return FaultKind::kDelay;
  return InvalidArgumentError("unknown fault kind '" + std::string(name) +
                              "' (want crash|error|delay)");
}

void FaultInjector::Arm(std::string point, FaultKind kind, uint64_t at_hit,
                        uint64_t delay_us) {
  if (at_hit == 0) at_hit = 1;
  scripts_[std::move(point)].push_back(Script{kind, at_hit, delay_us});
}

void FaultInjector::Reset() {
  scripts_.clear();
  hits_.clear();
}

FaultInjector::Outcome FaultInjector::Hit(std::string_view point) {
  ++stats_.hits;
  auto hit_it = hits_.find(point);
  if (hit_it == hits_.end())
    hit_it = hits_.emplace(std::string(point), uint64_t{0}).first;
  const uint64_t ordinal = ++hit_it->second;

  Outcome outcome;
  outcome.hit = ordinal;
  auto script_it = scripts_.find(point);
  if (script_it == scripts_.end()) return outcome;
  for (Script& script : script_it->second) {
    if (script.fired || script.at_hit != ordinal) continue;
    script.fired = true;
    switch (script.kind) {
      case FaultKind::kCrash:
        ++stats_.crashes;
        outcome.action = Action::kCrash;
        return outcome;
      case FaultKind::kError:
        ++stats_.errors;
        outcome.action = Action::kError;
        return outcome;
      case FaultKind::kDelay:
        ++stats_.delays;
        if (clock_ != nullptr) clock_->Advance(script.delay_us);
        outcome.action = Action::kDelay;
        return outcome;
    }
  }
  return outcome;
}

uint64_t FaultInjector::hits(std::string_view point) const {
  auto it = hits_.find(point);
  return it == hits_.end() ? 0 : it->second;
}

size_t FaultInjector::pending_scripts() const {
  size_t pending = 0;
  for (const auto& [point, scripts] : scripts_) {
    for (const Script& script : scripts)
      if (!script.fired) ++pending;
  }
  return pending;
}

}  // namespace obiswap::swap
