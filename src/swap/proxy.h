// Swap-cluster-proxy and replacement-object layouts.
//
// The original system's `obicomp` compiler generated one proxy class per
// application class; here a single metadata-driven proxy class mediates any
// target (see DESIGN.md §4). A swap-cluster-proxy permanently mediates one
// reference crossing from a *source* swap-cluster into a *target*
// swap-cluster; its target slot points at the real object while the target
// cluster is loaded, and at the cluster's replacement-object while swapped.
//
// A replacement-object "is simply an array of references" (§3): a fixed
// header (cluster id, swap epoch) plus one appended slot per outbound proxy
// of the swapped cluster — keeping downstream clusters reachable (Figure
// 4's 2→4 proxies survive through ReplacementObject-2). The store locations
// themselves live in the registry's replica list: a swapped cluster may be
// re-replicated to different devices while the replacement stands in, so
// the replacement records only *which incarnation* of the swap it belongs
// to (the epoch), letting a stale finalizer recognize itself.
#pragma once

#include <cstdint>

#include "common/ids.h"
#include "runtime/object.h"

namespace obiswap::swap {

inline constexpr const char* kSwapProxyClassName = "obiwan.SwapClusterProxy";
inline constexpr const char* kReplacementClassName = "obiwan.Replacement";

// --- SwapClusterProxy slot layout -----------------------------------------
inline constexpr size_t kProxySlotTarget = 0;     ///< ref: object/replacement
inline constexpr size_t kProxySlotSource = 1;     ///< int: source swap-cluster
inline constexpr size_t kProxySlotTargetSc = 2;   ///< int: target swap-cluster
inline constexpr size_t kProxySlotTargetOid = 3;  ///< int: ultimate target oid
inline constexpr size_t kProxySlotAssigned = 4;   ///< int: assign() flag (§4)

// --- Replacement slot layout ------------------------------------------------
inline constexpr size_t kReplSlotCluster = 0;        ///< int: swap-cluster id
inline constexpr size_t kReplSlotEpoch = 1;          ///< int: swap incarnation
inline constexpr size_t kReplSlotFirstOutbound = 2;  ///< refs appended from here

// --- typed accessors ---------------------------------------------------------

inline bool IsSwapProxy(const runtime::Object* obj) {
  return obj != nullptr &&
         obj->kind() == runtime::ObjectKind::kSwapClusterProxy;
}
inline bool IsReplacement(const runtime::Object* obj) {
  return obj != nullptr && obj->kind() == runtime::ObjectKind::kReplacement;
}

inline runtime::Object* ProxyTarget(const runtime::Object* proxy) {
  return proxy->RawSlot(kProxySlotTarget).ref();
}
inline SwapClusterId ProxySource(const runtime::Object* proxy) {
  return SwapClusterId(
      static_cast<uint32_t>(proxy->RawSlot(kProxySlotSource).as_int()));
}
inline SwapClusterId ProxyTargetSc(const runtime::Object* proxy) {
  return SwapClusterId(
      static_cast<uint32_t>(proxy->RawSlot(kProxySlotTargetSc).as_int()));
}
inline ObjectId ProxyTargetOid(const runtime::Object* proxy) {
  return ObjectId(
      static_cast<uint64_t>(proxy->RawSlot(kProxySlotTargetOid).as_int()));
}
inline bool ProxyAssigned(const runtime::Object* proxy) {
  return proxy->RawSlot(kProxySlotAssigned).as_int() != 0;
}

inline SwapClusterId ReplacementCluster(const runtime::Object* repl) {
  return SwapClusterId(
      static_cast<uint32_t>(repl->RawSlot(kReplSlotCluster).as_int()));
}
inline uint64_t ReplacementEpoch(const runtime::Object* repl) {
  return static_cast<uint64_t>(repl->RawSlot(kReplSlotEpoch).as_int());
}

}  // namespace obiswap::swap
