// Deterministic fault injection for the swap pipeline.
//
// The paper's detach/fault protocol assumes the middleware never dies
// mid-operation; real mobile processes are killed at arbitrary instruction
// boundaries. The FaultInjector names each boundary worth killing at — one
// fault point per pipeline stage (serialize, ship-replica, patch-proxy,
// journal-commit, decompress, ...) — and lets tests script exactly which
// hit of which point misbehaves:
//
//   * kCrash — the middleware "dies": the running operation is abandoned
//     with whatever shared-state mutations it already made left torn, and
//     the manager refuses further work until SwappingManager::Recover().
//     The device heap and every store survive (a process kill loses RAM
//     bookkeeping consistency, not flash or remote store contents).
//   * kError — the stage fails through its normal error path (exercises
//     rollback/unwind code without a restart).
//   * kDelay — the stage stalls for `delay_us` of virtual time (advances
//     the attached SimClock) and then proceeds.
//
// Every Hit() is counted per point whether or not a script is armed, so a
// chaos harness can run an operation once cleanly, read hit_counts(), and
// then enumerate every (point, nth-hit) pair exhaustively — the
// "crash-everywhere" sweep. Scripts fire once (one-shot) on their Nth hit.
//
// Scriptable at runtime through the "inject-fault" policy action.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "net/sim_clock.h"

namespace obiswap::swap {

enum class FaultKind : uint8_t {
  kCrash,  ///< abandon the op mid-mutation; Recover() required
  kError,  ///< fail the stage through its normal error path
  kDelay,  ///< advance the virtual clock, then proceed
};

const char* FaultKindName(FaultKind kind);
Result<FaultKind> ParseFaultKind(std::string_view name);

class FaultInjector {
 public:
  /// What the pipeline must do at a fault point.
  enum class Action : uint8_t { kNone, kCrash, kError, kDelay };

  struct Outcome {
    Action action = Action::kNone;
    uint64_t hit = 0;  ///< 1-based hit ordinal of this point
  };

  struct Stats {
    uint64_t hits = 0;     ///< fault points traversed
    uint64_t crashes = 0;  ///< scripted crashes fired
    uint64_t errors = 0;   ///< scripted errors fired
    uint64_t delays = 0;   ///< scripted delays fired
  };

  /// Arms one scripted fault: the `at_hit`-th traversal of `point`
  /// (1-based, counted from the last Reset) fires `kind` once. Multiple
  /// scripts may target the same point.
  void Arm(std::string point, FaultKind kind, uint64_t at_hit = 1,
           uint64_t delay_us = 0);

  /// Clears every script and every hit counter.
  void Reset();

  /// Called by the pipeline at each named boundary. Counts the hit, fires
  /// a matching un-fired script if any (applying a kDelay to the attached
  /// clock itself), and tells the caller how to proceed.
  Outcome Hit(std::string_view point);

  /// Clock advanced by kDelay scripts. Optional; without it delays are
  /// recorded but time does not move.
  void AttachClock(net::SimClock* clock) { clock_ = clock; }

  /// Hit count of one point since the last Reset (0 if never traversed).
  uint64_t hits(std::string_view point) const;

  /// Every point ever traversed since the last Reset, with counts, in
  /// deterministic (sorted) order — the chaos harness's point universe.
  const std::map<std::string, uint64_t, std::less<>>& hit_counts() const {
    return hits_;
  }

  /// Scripts armed but not yet fired.
  size_t pending_scripts() const;

  const Stats& stats() const { return stats_; }

 private:
  struct Script {
    FaultKind kind;
    uint64_t at_hit;
    uint64_t delay_us;
    bool fired = false;
  };

  std::map<std::string, std::vector<Script>, std::less<>> scripts_;
  std::map<std::string, uint64_t, std::less<>> hits_;
  net::SimClock* clock_ = nullptr;
  Stats stats_;
};

}  // namespace obiswap::swap
