#include "swap/intent_journal.h"

#include <algorithm>
#include <unordered_map>

#include "common/checksum.h"
#include "common/logging.h"
#include "common/varint.h"

namespace obiswap::swap {

namespace {
constexpr char kMagic[4] = {'O', 'B', 'J', 'L'};
// Version 2 appends the delta-swap-out base fields (base_epoch,
// base_checksum) to record bodies and admits IntentOp::kDeltaSwapOut.
// Version-1 images (no base fields) still parse: the fields are optional
// at end-of-body.
constexpr uint64_t kFormatVersion = 2;

void PutFixed32(std::string* out, uint32_t value) {
  out->push_back(static_cast<char>(value & 0xFF));
  out->push_back(static_cast<char>((value >> 8) & 0xFF));
  out->push_back(static_cast<char>((value >> 16) & 0xFF));
  out->push_back(static_cast<char>((value >> 24) & 0xFF));
}

bool GetFixed32(std::string_view* in, uint32_t* value) {
  if (in->size() < 4) return false;
  const auto* bytes = reinterpret_cast<const unsigned char*>(in->data());
  *value = static_cast<uint32_t>(bytes[0]) |
           (static_cast<uint32_t>(bytes[1]) << 8) |
           (static_cast<uint32_t>(bytes[2]) << 16) |
           (static_cast<uint32_t>(bytes[3]) << 24);
  in->remove_prefix(4);
  return true;
}

bool DecodeBody(std::string_view body, JournalRecord* record) {
  auto take = [&body](uint64_t* out) {
    Result<uint64_t> value = GetVarint64(&body);
    if (!value.ok()) return false;
    *out = *value;
    return true;
  };
  uint64_t type = 0;
  uint64_t op = 0;
  uint64_t cluster = 0;
  uint64_t checksum = 0;
  if (!take(&record->epoch) || !take(&record->seq) || !take(&type) ||
      !take(&op) || !take(&cluster) || !take(&record->swap_epoch) ||
      !take(&checksum) || !take(&record->device) || !take(&record->key) ||
      !take(&record->progress)) {
    return false;
  }
  if (type < 1 || type > 5 || op < 1 || op > 6) return false;
  record->type = static_cast<RecordType>(type);
  record->op = static_cast<IntentOp>(op);
  record->cluster = static_cast<uint32_t>(cluster);
  record->payload_checksum = static_cast<uint32_t>(checksum);
  uint64_t member_count = 0;
  if (!take(&member_count) || member_count > body.size()) return false;
  record->member_oids.clear();
  record->member_oids.reserve(member_count);
  for (uint64_t i = 0; i < member_count; ++i) {
    uint64_t oid = 0;
    if (!take(&oid)) return false;
    record->member_oids.push_back(oid);
  }
  uint64_t proxy_count = 0;
  if (!take(&proxy_count) || proxy_count > body.size() + 1) return false;
  record->proxy_oids.clear();
  record->proxy_oids.reserve(proxy_count);
  for (uint64_t i = 0; i < proxy_count; ++i) {
    uint64_t oid = 0;
    if (!take(&oid)) return false;
    record->proxy_oids.push_back(oid);
  }
  record->base_epoch = 0;
  record->base_checksum = 0;
  if (!body.empty()) {  // version-2 trailer; absent in version-1 records
    uint64_t base_checksum = 0;
    if (!take(&record->base_epoch) || !take(&base_checksum)) return false;
    record->base_checksum = static_cast<uint32_t>(base_checksum);
  }
  return body.empty();  // trailing garbage fails the record
}
}  // namespace

const char* IntentOpName(IntentOp op) {
  switch (op) {
    case IntentOp::kSwapOut:
      return "swap_out";
    case IntentOp::kCleanSwapOut:
      return "clean_swap_out";
    case IntentOp::kSwapIn:
      return "swap_in";
    case IntentOp::kDrop:
      return "drop";
    case IntentOp::kReplicaMaintenance:
      return "replica_maintenance";
    case IntentOp::kDeltaSwapOut:
      return "delta_swap_out";
  }
  return "unknown";
}

IntentJournal::IntentJournal(persist::FlashStore* store)
    : IntentJournal(store, Options()) {}

IntentJournal::IntentJournal(persist::FlashStore* store, Options options)
    : store_(store), options_(options) {
  OBISWAP_CHECK(store_ != nullptr);
  if (options_.compact_record_limit == 0) options_.compact_record_limit = 1;
}

void IntentJournal::EncodeRecord(const JournalRecord& record,
                                 std::string* out) {
  std::string body;
  PutVarint64(&body, record.epoch);
  PutVarint64(&body, record.seq);
  PutVarint64(&body, static_cast<uint64_t>(record.type));
  PutVarint64(&body, static_cast<uint64_t>(record.op));
  PutVarint64(&body, record.cluster);
  PutVarint64(&body, record.swap_epoch);
  PutVarint64(&body, record.payload_checksum);
  PutVarint64(&body, record.device);
  PutVarint64(&body, record.key);
  PutVarint64(&body, record.progress);
  PutVarint64(&body, record.member_oids.size());
  for (uint64_t oid : record.member_oids) PutVarint64(&body, oid);
  PutVarint64(&body, record.proxy_oids.size());
  for (uint64_t oid : record.proxy_oids) PutVarint64(&body, oid);
  PutVarint64(&body, record.base_epoch);
  PutVarint64(&body, record.base_checksum);

  PutVarint64(out, body.size());
  out->append(body);
  PutFixed32(out, Crc32(body));
}

IntentJournal::ParseResult IntentJournal::Parse(std::string_view bytes) {
  ParseResult result;
  std::string_view in = bytes;
  if (in.size() < sizeof(kMagic) ||
      in.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) {
    result.bad_tail_bytes = in.size();
    return result;
  }
  in.remove_prefix(sizeof(kMagic));
  Result<uint64_t> version = GetVarint64(&in);
  if (!version.ok() || *version < 1 || *version > kFormatVersion) {
    result.bad_tail_bytes = in.size();
    return result;
  }
  Result<uint64_t> epoch = GetVarint64(&in);
  if (!epoch.ok()) {
    result.bad_tail_bytes = in.size();
    return result;
  }
  result.epoch = *epoch;

  while (!in.empty()) {
    std::string_view mark = in;
    Result<uint64_t> body_len = GetVarint64(&in);
    if (!body_len.ok() || *body_len + 4 > in.size()) {
      // Torn tail: a record length that cannot fit means everything from
      // here on is untrustworthy.
      result.bad_tail_bytes = mark.size();
      break;
    }
    std::string_view body = in.substr(0, *body_len);
    in.remove_prefix(*body_len);
    uint32_t stored_crc = 0;
    (void)GetFixed32(&in, &stored_crc);  // length was pre-checked above
    if (Crc32(body) != stored_crc) {
      // A flipped bit inside one record: skip it, keep reading — the
      // framing (length prefix) is still trusted because the next record
      // either parses and checksums or terminates the scan.
      ++result.skipped;
      continue;
    }
    JournalRecord record;
    if (!DecodeBody(body, &record)) {
      ++result.skipped;
      continue;
    }
    if (record.epoch != result.epoch) {
      ++result.skipped;  // fenced: stale record from an older incarnation
      continue;
    }
    result.records.push_back(std::move(record));
  }
  return result;
}

std::string IntentJournal::EncodeImage() const {
  std::string image(kMagic, sizeof(kMagic));
  PutVarint64(&image, kFormatVersion);
  PutVarint64(&image, epoch_);
  for (const JournalRecord& record : records_)
    EncodeRecord(record, &image);
  return image;
}

void IntentJournal::Append(JournalRecord record) {
  record.epoch = epoch_;
  records_.push_back(std::move(record));
  dirty_ = true;
  ++stats_.appends;
}

uint64_t IntentJournal::BeginOp(IntentOp op, SwapClusterId cluster,
                                uint64_t swap_epoch,
                                uint32_t payload_checksum,
                                std::vector<uint64_t> member_oids,
                                std::vector<uint64_t> proxy_oids,
                                uint64_t base_epoch, uint32_t base_checksum) {
  JournalRecord record;
  record.seq = next_seq_++;
  record.type = RecordType::kBegin;
  record.op = op;
  record.cluster = cluster.value();
  record.swap_epoch = swap_epoch;
  record.payload_checksum = payload_checksum;
  record.member_oids = std::move(member_oids);
  record.proxy_oids = std::move(proxy_oids);
  record.base_epoch = base_epoch;
  record.base_checksum = base_checksum;
  const uint64_t seq = record.seq;
  Append(std::move(record));
  return seq;
}

void IntentJournal::NoteReplicaIntent(uint64_t seq, DeviceId device,
                                      SwapKey key) {
  JournalRecord record;
  record.seq = seq;
  record.type = RecordType::kReplicaIntent;
  record.device = device.value();
  record.key = key.value();
  Append(std::move(record));
}

void IntentJournal::NoteProgress(uint64_t seq, uint64_t marker) {
  JournalRecord record;
  record.seq = seq;
  record.type = RecordType::kProgress;
  record.progress = marker;
  Append(std::move(record));
}

Status IntentJournal::Commit(uint64_t seq) {
  JournalRecord record;
  record.seq = seq;
  record.type = RecordType::kCommit;
  Append(std::move(record));
  CompactIfOversized();
  return Persist();
}

Status IntentJournal::Abort(uint64_t seq) {
  JournalRecord record;
  record.seq = seq;
  record.type = RecordType::kAbort;
  Append(std::move(record));
  CompactIfOversized();
  return Persist();
}

void IntentJournal::CompactIfOversized() {
  if (records_.size() <= options_.compact_record_limit) return;
  std::unordered_map<uint64_t, bool> completed;
  for (const JournalRecord& record : records_) {
    if (record.type == RecordType::kCommit ||
        record.type == RecordType::kAbort) {
      completed[record.seq] = true;
    }
  }
  if (completed.empty()) return;  // all in-flight: nothing compactable
  size_t write = 0;
  for (size_t read = 0; read < records_.size(); ++read) {
    if (completed.count(records_[read].seq) > 0) continue;
    if (write != read) records_[write] = std::move(records_[read]);
    ++write;
  }
  records_.resize(write);
  dirty_ = true;
  ++stats_.compactions;
}

Status IntentJournal::Persist() {
  if (!dirty_) return OkStatus();
  const std::string image = EncodeImage();
  const uint64_t busy_before = store_->stats().busy_us;
  Status stored = store_->Store(options_.key, image);
  if (!stored.ok()) {
    // The journal is best-effort durability: a full flash costs crash
    // recoverability, not correctness of the live run. Stay dirty so the
    // next boundary retries.
    ++stats_.persist_failures;
    OBISWAP_LOG(kWarn) << "intent journal persist failed: "
                       << stored.ToString();
    return stored;
  }
  dirty_ = false;
  ++stats_.persists;
  stats_.persisted_bytes += image.size();
  stats_.append_us += store_->stats().busy_us - busy_before;
  return OkStatus();
}

Result<std::vector<IntentJournal::PendingOp>>
IntentJournal::LoadForRecovery() {
  records_.clear();
  dirty_ = false;

  uint64_t stored_epoch = 0;
  std::vector<JournalRecord> loaded;
  Result<std::string> image = store_->Fetch(options_.key);
  if (image.ok()) {
    ParseResult parsed = Parse(*image);
    stored_epoch = parsed.epoch;
    loaded = std::move(parsed.records);
    stats_.records_skipped += parsed.skipped;
    stats_.bad_tail_bytes += parsed.bad_tail_bytes;
  } else if (image.status().code() != StatusCode::kNotFound) {
    // Unreadable image: recover with what we have (nothing) rather than
    // wedging the restart path.
    OBISWAP_LOG(kWarn) << "intent journal unreadable: "
                       << image.status().ToString();
  }
  // Fence: everything this incarnation writes outranks the stored epoch.
  epoch_ = std::max(epoch_, stored_epoch) + 1;

  std::unordered_map<uint64_t, PendingOp> open;
  std::vector<uint64_t> order;
  uint64_t max_seq = 0;
  for (JournalRecord& record : loaded) {
    max_seq = std::max(max_seq, record.seq);
    switch (record.type) {
      case RecordType::kBegin: {
        PendingOp pending;
        pending.seq = record.seq;
        pending.op = record.op;
        pending.cluster = SwapClusterId(record.cluster);
        pending.swap_epoch = record.swap_epoch;
        pending.payload_checksum = record.payload_checksum;
        pending.base_epoch = record.base_epoch;
        pending.base_checksum = record.base_checksum;
        for (uint64_t oid : record.member_oids)
          pending.member_oids.push_back(ObjectId(oid));
        for (uint64_t oid : record.proxy_oids)
          pending.proxy_oids.push_back(ObjectId(oid));
        if (open.emplace(record.seq, std::move(pending)).second)
          order.push_back(record.seq);
        break;
      }
      case RecordType::kReplicaIntent: {
        auto it = open.find(record.seq);
        if (it == open.end()) {
          // Orphan intent (its begin record was damaged): the device/key
          // pair must still be reclaimable — fold it as a maintenance op,
          // whose recovery drops placements no cluster accounts for.
          PendingOp pending;
          pending.seq = record.seq;
          pending.op = IntentOp::kReplicaMaintenance;
          it = open.emplace(record.seq, std::move(pending)).first;
          order.push_back(record.seq);
        }
        it->second.replica_intents.push_back(ReplicaLocation{
            DeviceId(static_cast<uint32_t>(record.device)),
            SwapKey(record.key)});
        break;
      }
      case RecordType::kProgress: {
        auto it = open.find(record.seq);
        if (it != open.end()) it->second.progress = record.progress;
        break;
      }
      case RecordType::kCommit:
      case RecordType::kAbort: {
        auto it = open.find(record.seq);
        if (it != open.end()) open.erase(it);
        break;
      }
    }
  }
  next_seq_ = std::max(next_seq_, max_seq + 1);

  std::vector<PendingOp> pending;
  pending.reserve(open.size());
  for (uint64_t seq : order) {
    auto it = open.find(seq);
    if (it != open.end()) pending.push_back(std::move(it->second));
  }
  std::sort(pending.begin(), pending.end(),
            [](const PendingOp& a, const PendingOp& b) {
              return a.seq < b.seq;
            });
  return pending;
}

Status IntentJournal::Clear() {
  records_.clear();
  dirty_ = false;
  Status dropped = store_->Drop(options_.key);
  if (dropped.code() == StatusCode::kNotFound) return OkStatus();
  return dropped;
}

}  // namespace obiswap::swap
